package sarmany_test

import (
	"math"
	"path/filepath"
	"testing"

	"sarmany"
)

func smallSystem() (sarmany.Params, sarmany.SceneBox) {
	p := sarmany.DefaultParams()
	p.NumPulses = 128
	p.NumBins = 161
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -25, UMax: 25, YMin: 510, YMax: 570, ThetaPad: 0.05}
	return p, box
}

func TestPublicImagingPipeline(t *testing.T) {
	p, box := smallSystem()
	tg := sarmany.Target{U: 10, Y: 540, Amp: 1}
	data := sarmany.Simulate(p, []sarmany.Target{tg}, nil)

	img, grid, err := sarmany.FFBP(data, p, box, sarmany.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if img.Rows != p.NumPulses || img.Cols != p.NumBins {
		t.Fatalf("image %dx%d", img.Rows, img.Cols)
	}
	// The peak must be near the target's polar position.
	m := sarmany.Magnitude(img)
	var pr, pc int
	var pv float32
	for r := 0; r < m.Rows; r++ {
		for c, v := range m.Row(r) {
			if v > pv {
				pr, pc, pv = r, c, v
			}
		}
	}
	wr := int(math.Round(grid.ThetaIndex(math.Atan2(tg.Y, tg.U))))
	wc := int(math.Round(grid.RangeIndex(math.Hypot(tg.U, tg.Y))))
	if absInt(pr-wr) > 6 || absInt(pc-wc) > 2 {
		t.Errorf("peak (%d,%d), want near (%d,%d)", pr, pc, wr, wc)
	}

	// GBP on the matching grid correlates strongly with cubic FFBP.
	g := sarmany.GBP(data, p, sarmany.FullApertureGrid(p, box), sarmany.Linear, 0)
	fc, _, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if corr := sarmany.ImageCorrelation(sarmany.Magnitude(g), sarmany.Magnitude(fc)); corr < 0.8 {
		t.Errorf("GBP/FFBP correlation %v", corr)
	}
}

func TestPublicChirpFrontEnd(t *testing.T) {
	p, _ := smallSystem()
	ch := p.DefaultChirp()
	tg := []sarmany.Target{{U: 0, Y: 540, Amp: 1}}
	comp := sarmany.Compress(p, ch, sarmany.SimulateRaw(p, ch, tg, nil))
	direct := sarmany.Simulate(p, tg, nil)
	if comp.Rows != direct.Rows || comp.Cols != direct.Cols {
		t.Fatalf("compressed %dx%d, direct %dx%d", comp.Rows, comp.Cols, direct.Rows, direct.Cols)
	}
}

func TestPublicAutofocus(t *testing.T) {
	// Build two blocks from a shifted scene and recover the shift.
	p, box := smallSystem()
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 540, Amp: 1}}, nil)
	img, grid, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr := int(math.Round(grid.ThetaIndex(math.Pi / 2)))
	pc := int(math.Round(grid.RangeIndex(540.0)))
	a, err := sarmany.BlockFrom(img, pr-3, pc-3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sarmany.BlockFrom(img, pr-3, pc-4) // content shifted one column
	if err != nil {
		t.Fatal(err)
	}
	best, all, err := sarmany.SearchCompensation(&a, &b, sarmany.RangeSweep(-2, 2, 21))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 21 {
		t.Fatalf("%d results", len(all))
	}
	// b's content sits one column later, so the compensating shift ~ +1.
	if math.Abs(best.Shift.DRange-1) > 0.45 {
		t.Errorf("best shift %v, want ~1", best.Shift.DRange)
	}
	if got := sarmany.Criterion(&a, &b, best.Shift); got != best.Score {
		t.Errorf("Criterion disagrees with Search: %v vs %v", got, best.Score)
	}
}

func TestPublicMachineModels(t *testing.T) {
	p, box := smallSystem()
	data := sarmany.Simulate(p, []sarmany.Target{{U: 5, Y: 545, Amp: 1}}, nil)

	cpu := sarmany.NewReferenceCPU()
	refImg, _, err := sarmany.ReferenceFFBP(cpu, data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Seconds() <= 0 {
		t.Error("reference CPU recorded no time")
	}

	chip := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	parImg, _, err := sarmany.EpiphanyFFBP(chip, 16, data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	if chip.Time() <= 0 {
		t.Error("chip recorded no time")
	}
	if !refImg.Equal(parImg) {
		t.Error("reference and Epiphany images differ")
	}

	chipSeq := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	seqImg, _, err := sarmany.EpiphanySeqFFBP(chipSeq, data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	if !seqImg.Equal(parImg) {
		t.Error("sequential and parallel Epiphany images differ")
	}
	if chipSeq.Cores[0].Cycles() <= chip.MaxCycles() {
		t.Error("parallel run not faster than sequential")
	}
}

func TestPublicAutofocusMachines(t *testing.T) {
	cfg := sarmany.SmallExperiment()
	pairs := make([]sarmany.BlockPair, 2)
	p, box := smallSystem()
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 540, Amp: 1}}, nil)
	img, _, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		m, err := sarmany.BlockFrom(img, 40+i, 60)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := sarmany.BlockFrom(img, 40+i, 61)
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = sarmany.BlockPair{Minus: m, Plus: pl}
	}
	shifts := sarmany.RangeSweep(-1, 1, 5)

	cpu := sarmany.NewReferenceCPU()
	ref, err := sarmany.ReferenceAutofocus(cpu, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	chip := sarmany.NewEpiphany(cfg.Epiphany)
	par, err := sarmany.EpiphanyAutofocus(chip, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	chipSeq := sarmany.NewEpiphany(cfg.Epiphany)
	seq, err := sarmany.EpiphanySeqAutofocus(chipSeq, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range ref[i] {
			if ref[i][j] != par[i][j] || ref[i][j] != seq[i][j] {
				t.Errorf("scores disagree at (%d,%d)", i, j)
			}
		}
	}
}

func TestPublicExperimentHarness(t *testing.T) {
	tab, err := sarmany.RunTable1(sarmany.SmallExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if tab.FFBP[2].Speedup <= 1 {
		t.Errorf("parallel FFBP speedup %v", tab.FFBP[2].Speedup)
	}

	metrics, imgs, err := sarmany.RunFigure7(sarmany.SmallExperiment())
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range imgs {
		if img == nil || img.Rows == 0 {
			t.Fatalf("figure 7 image %d empty", i)
		}
	}
	if metrics.IntelEpiphanyCorr < 0.999 {
		t.Errorf("Intel/Epiphany FFBP correlation %v, want ~1", metrics.IntelEpiphanyCorr)
	}
	if metrics.GBPSharpness <= metrics.FFBPSharpness {
		t.Errorf("GBP sharpness %v not above FFBP %v", metrics.GBPSharpness, metrics.FFBPSharpness)
	}

	dir := t.TempDir()
	if err := sarmany.SaveImage(filepath.Join(dir, "img.png"), imgs[1], 50); err != nil {
		t.Fatal(err)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
