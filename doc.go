// Package sarmany is a library for energy-efficient synthetic-aperture
// radar (SAR) processing on manycore architectures, reproducing
// Zain-ul-Abdin, Åhlander and Svensson, "Energy-Efficient
// Synthetic-Aperture Radar Processing on a Manycore Architecture"
// (ICPP 2013).
//
// It provides, end to end:
//
//   - a stripmap SAR front end: scene/platform modelling, point-target
//     raw-echo synthesis, LFM chirp generation and pulse compression
//     ([Simulate], [SimulateRaw], [Compress]);
//   - time-domain image formation: exact global back-projection ([GBP])
//     and the fast factorized back-projection of the paper's
//     memory-intensive case study ([FFBP]), with selectable interpolation
//     kernels;
//   - the autofocus criterion calculation of the paper's compute-intensive
//     case study ([Criterion], [SearchCompensation]);
//   - cycle-accounting models of the two machines the paper compares — a
//     16-core Adapteva Epiphany ([NewEpiphany]) and a sequential Intel
//     Core i7 reference ([NewReferenceCPU]) — plus the paper's kernels
//     mapped onto them ([EpiphanyFFBP], [EpiphanyAutofocus], ...);
//   - the evaluation harness that regenerates the paper's Table I,
//     Fig. 7, and energy-efficiency results ([RunTable1], [RunFigure7]);
//   - a concurrent experiment runner with a content-addressed result
//     cache for batch sweeps over all of the above ([RunSweep]).
//
// See the examples/ directory for runnable walkthroughs, ARCHITECTURE.md
// for the package map and dataflow, and DESIGN.md for the system
// inventory and experiment index.
package sarmany
