package sarmany_test

import (
	"math"
	"testing"

	"sarmany"
)

func TestPublicFrontEndChain(t *testing.T) {
	// Raw chirp echoes -> RFI contamination -> notch filter -> windowed
	// compression: the full pre-back-projection chain through the public
	// API.
	p, _ := smallSystem()
	ch := p.DefaultChirp()
	tg := []sarmany.Target{{U: 0, Y: 540, Amp: 1}}
	raw := sarmany.SimulateRaw(p, ch, tg, nil)
	sarmany.InjectRFI(raw, 0.21, 2, 0.5)
	notched, err := sarmany.NotchFilter(raw, 5)
	if err != nil {
		t.Fatal(err)
	}
	if notched == 0 {
		t.Error("notch filter found no interference")
	}
	comp := sarmany.CompressWindowed(p, ch, raw, sarmany.TaylorWindow)
	if comp.Rows != p.NumPulses || comp.Cols != p.NumBins {
		t.Fatalf("compressed dims %dx%d", comp.Rows, comp.Cols)
	}
	// The target must be recoverable after the whole chain.
	m := sarmany.Magnitude(comp)
	res, err := sarmany.MeasurePointResponse(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak < 0.4 {
		t.Errorf("target peak %v after RFI + notch + compression", res.Peak)
	}
	// Taylor weighting keeps range sidelobes low.
	if res.RangePSLR > -20 {
		t.Errorf("range PSLR %v dB with Taylor weighting", res.RangePSLR)
	}
}

func TestPublicNoiseAndGain(t *testing.T) {
	p, box := smallSystem()
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 540, Amp: 1}}, nil)
	sarmany.AddNoise(data, 0.3, 7)
	img, _, err := sarmany.FFBP(data, p, box, sarmany.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := sarmany.Magnitude(img)
	var peak float32
	for r := 0; r < m.Rows; r++ {
		for _, v := range m.Row(r) {
			if v > peak {
				peak = v
			}
		}
	}
	// 128 pulses of coherent gain: the image peak integrates far above
	// one pulse's amplitude.
	if float64(peak) < 0.4*float64(p.NumPulses) {
		t.Errorf("peak %v too low for %d pulses", peak, p.NumPulses)
	}
}

func TestPublicGroundProjection(t *testing.T) {
	p, box := smallSystem()
	tg := sarmany.Target{U: 12, Y: 545, Amp: 1}
	data := sarmany.Simulate(p, []sarmany.Target{tg}, nil)
	img, grid, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sarmany.GroundSpecFor(box, 1)
	if err != nil {
		t.Fatal(err)
	}
	ground := sarmany.ToGround(img, grid, 0, spec, sarmany.Linear)
	m := sarmany.Magnitude(ground)
	var pr, pc int
	var pv float32
	for r := 0; r < m.Rows; r++ {
		for c, v := range m.Row(r) {
			if v > pv {
				pr, pc, pv = r, c, v
			}
		}
	}
	wr := int(math.Round((tg.Y - spec.Y0) / spec.Res))
	wc := int(math.Round((tg.U - spec.X0) / spec.Res))
	// Azimuth resolution is metres wide; range tight.
	if absInt(pr-wr) > 2 || absInt(pc-wc) > 6 {
		t.Errorf("ground peak at (%d,%d), want (%d,%d)", pr, pc, wr, wc)
	}
}

func TestPublicFocusedFFBP(t *testing.T) {
	p, box := smallSystem()
	drift := func(u float64) float64 {
		if u > 0 {
			return 0.4
		}
		return 0
	}
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 540, Amp: 1}}, drift)
	img, _, history, err := sarmany.FocusedFFBP(data, p, box, sarmany.DefaultFocusConfig(p.NumPulses))
	if err != nil {
		t.Fatal(err)
	}
	if img.Rows != p.NumPulses {
		t.Fatalf("image %dx%d", img.Rows, img.Cols)
	}
	if len(history) != 1 || len(history[0]) != 1 {
		t.Fatalf("history shape %v", history)
	}
	if history[0][0].DRange >= 0 {
		t.Errorf("compensation %v, want negative", history[0][0].DRange)
	}
}

func TestPublicMultiPipelineAndEnergy(t *testing.T) {
	pairs := make([]sarmany.BlockPair, 8)
	for i := range pairs {
		var m, pl sarmany.Block
		for r := 0; r < 6; r++ {
			for c := 0; c < 6; c++ {
				dr, dc := float64(r)-2.5, float64(c)-2.5
				a := float32(math.Exp(-(dr*dr + dc*dc) / 3))
				m[r][c] = complex(a, 0)
				pl[r][c] = complex(a*0.9, a/5)
			}
		}
		pairs[i] = sarmany.BlockPair{Minus: m, Plus: pl}
	}
	shifts := sarmany.RangeSweep(-1, 1, 7)

	chip := sarmany.NewEpiphany(sarmany.EpiphanyE64())
	scores, err := sarmany.EpiphanyAutofocusMulti(chip, 4, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 8 || len(scores[0]) != 7 {
		t.Fatalf("scores %dx%d", len(scores), len(scores[0]))
	}
	b := sarmany.MeasureEnergy(chip)
	if b.Total() <= 0 {
		t.Errorf("energy %v", b.Total())
	}
	if b.AveragePower(chip.Time()) <= 0 {
		t.Error("no average power")
	}
}
