package sarmany_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sarmany"
)

func TestPublicRDAAndMocomp(t *testing.T) {
	p, _ := smallSystem()
	tg := sarmany.Target{U: 10, Y: 540, Amp: 1}
	drift := func(u float64) float64 {
		if u > 0 {
			return 0.6
		}
		return 0
	}
	dirty := sarmany.Simulate(p, []sarmany.Target{tg}, drift)

	img, err := sarmany.RDA(dirty, p)
	if err != nil {
		t.Fatal(err)
	}
	if img.Rows != p.NumPulses || img.Cols != p.NumBins {
		t.Fatalf("RDA image %dx%d", img.Rows, img.Cols)
	}
	comp := sarmany.MotionCompensate(dirty, p, drift)
	compImg, err := sarmany.RDA(comp, p)
	if err != nil {
		t.Fatal(err)
	}
	// Motion compensation concentrates the image: lower entropy.
	ed := sarmany.ImageEntropy(sarmany.Magnitude(img))
	ec := sarmany.ImageEntropy(sarmany.Magnitude(compImg))
	if ec >= ed {
		t.Errorf("compensated entropy %v not below uncompensated %v", ec, ed)
	}
}

func TestPublicFFBPBase(t *testing.T) {
	p, box := smallSystem() // 128 pulses: not a power of 4
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 540, Amp: 1}}, nil)
	if _, _, err := sarmany.FFBPBase(data, p, box, sarmany.Nearest, 4); err == nil {
		t.Error("base 4 on 128 pulses accepted")
	}
	img2, _, err := sarmany.FFBPBase(data, p, box, sarmany.Nearest, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := sarmany.FFBP(data, p, box, sarmany.Nearest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !img2.Equal(ref) {
		t.Error("FFBPBase(2) differs from FFBP")
	}
}

func TestPublicWriteFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation skipped in -short mode")
	}
	dir := t.TempDir()
	var buf strings.Builder
	if err := sarmany.WriteFigure7(&buf, sarmany.SmallExperiment(), dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig7a_raw.png", "fig7b_gbp.png", "fig7c_ffbp_intel.png", "fig7d_ffbp_epiphany.png"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestPublicUpsampleAndSinc8(t *testing.T) {
	p, box := smallSystem()
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 540, Amp: 1}}, nil)
	up, q, err := sarmany.UpsampleRange(data, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.DR != p.DR/2 {
		t.Errorf("upsampled DR %v", q.DR)
	}
	img, _, err := sarmany.FFBP(up, q, box, sarmany.Sinc8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if img.Rows != q.NumPulses || img.Cols != q.NumBins {
		t.Fatalf("image %dx%d", img.Rows, img.Cols)
	}
}

func TestPublicRandomScene(t *testing.T) {
	a := sarmany.RandomScene(10, 42, -50, 50, 500, 600)
	b := sarmany.RandomScene(10, 42, -50, 50, 500, 600)
	if len(a) != 10 {
		t.Fatalf("%d targets", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
		if a[i].U < -50 || a[i].U > 50 || a[i].Y < 500 || a[i].Y > 600 {
			t.Fatalf("target %d outside bounds: %+v", i, a[i])
		}
		if a[i].Amp < 0.5 || a[i].Amp > 1 {
			t.Fatalf("target %d amplitude %v", i, a[i].Amp)
		}
	}
}
