package sarmany_test

import (
	"fmt"
	"math"

	"sarmany"
)

// ExampleFFBP forms an image from a synthetic scene and locates the
// target in it.
func ExampleFFBP() {
	p := sarmany.DefaultParams()
	p.NumPulses = 128
	p.NumBins = 161
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -25, UMax: 25, YMin: 510, YMax: 570, ThetaPad: 0.05}
	tg := sarmany.Target{U: 0, Y: 540, Amp: 1}

	data := sarmany.Simulate(p, []sarmany.Target{tg}, nil)
	img, grid, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := sarmany.Magnitude(img)
	var pr, pc int
	var pv float32
	for r := 0; r < m.Rows; r++ {
		for c, v := range m.Row(r) {
			if v > pv {
				pr, pc, pv = r, c, v
			}
		}
	}
	wantR := int(math.Round(grid.ThetaIndex(math.Pi / 2)))
	wantC := int(math.Round(grid.RangeIndex(540)))
	fmt.Printf("image %dx%d; peak at target pixel: %v\n",
		img.Rows, img.Cols, pr == wantR && pc == wantC)
	// Output:
	// image 128x161; peak at target pixel: true
}

// ExampleSearchCompensation recovers a known sub-pixel displacement
// between two image blocks with the focus criterion.
func ExampleSearchCompensation() {
	blob := func(cc float64) sarmany.Block {
		var b sarmany.Block
		for r := 0; r < 6; r++ {
			for c := 0; c < 6; c++ {
				dr, dc := float64(r)-2.5, float64(c)-cc
				b[r][c] = complex(float32(math.Exp(-(dr*dr+dc*dc)/3)), 0)
			}
		}
		return b
	}
	fMinus := blob(2.5)
	fPlus := blob(2.5 + 0.5) // displaced half a pixel in range

	best, _, err := sarmany.SearchCompensation(&fMinus, &fPlus,
		sarmany.RangeSweep(-1, 1, 17))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("compensation within an eighth pixel of truth: %v\n",
		math.Abs(best.Shift.DRange-0.5) <= 0.130)
	// Output:
	// compensation within an eighth pixel of truth: true
}

// ExampleNewEpiphany runs the parallel FFBP kernel on the simulated chip
// and reports whether the 16-core mapping beat the sequential one.
func ExampleNewEpiphany() {
	p := sarmany.DefaultParams()
	p.NumPulses = 64
	p.NumBins = 101
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -15, UMax: 15, YMin: 510, YMax: 545, ThetaPad: 0.05}
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 525, Amp: 1}}, nil)

	seq := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	seqImg, _, _ := sarmany.EpiphanySeqFFBP(seq, data, p, box)
	par := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	parImg, _, _ := sarmany.EpiphanyFFBP(par, 16, data, p, box)

	fmt.Printf("identical images: %v; parallel faster: %v\n",
		seqImg.Equal(parImg), par.Time() < seq.Cores[0].Cycles()/1e9)
	// Output:
	// identical images: true; parallel faster: true
}
