// Top-level benchmark suite: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md's experiment index). Each benchmark
// reruns the corresponding experiment on the machine models; wall-clock
// ns/op measures the simulator, while the custom metrics report the
// *modeled* quantities the paper tabulates (model_ms, px_per_s,
// speedup_x, ratio_x).
//
// Run everything:   go test -bench=. -benchmem
// Paper scale:      go test -bench=Table1 -benchtime=1x
package sarmany_test

import (
	"context"
	"testing"

	"sarmany"
	"sarmany/internal/autofocus"
	"sarmany/internal/bench"
	"sarmany/internal/emu"
	"sarmany/internal/ffbp"
	"sarmany/internal/gbp"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/kernels"
	"sarmany/internal/refcpu"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// benchCfg returns the workload for benchmarks: the full paper scale in
// normal runs, reduced under -short.
func benchCfg(b *testing.B) report.Config {
	b.Helper()
	if testing.Short() {
		return report.Small()
	}
	return report.Default()
}

// BenchmarkTable1 reruns each implementation row of the paper's Table I.
func BenchmarkTable1(b *testing.B) {
	cfg := benchCfg(b)
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	pairs := report.AutofocusWorkload(cfg)
	shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)
	imgPx := float64(cfg.Params.NumPulses * cfg.Params.NumBins)
	afPx := float64(len(pairs) * len(shifts) * autofocus.PixelsProcessed())

	b.Run("FFBP/seq-intel", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			cpu := refcpu.New(cfg.Intel)
			if _, _, err := kernels.SeqFFBP(cpu, cpu.Mem(), data, cfg.Params, cfg.Box); err != nil {
				b.Fatal(err)
			}
			sec = cpu.Seconds()
		}
		b.ReportMetric(sec*1e3, "model_ms")
		b.ReportMetric(imgPx/sec, "px_per_s")
	})
	b.Run("FFBP/seq-epiphany", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			ch := emu.New(cfg.Epiphany)
			if _, _, err := kernels.SeqFFBP(ch.Cores[0], ch.Ext(), data, cfg.Params, cfg.Box); err != nil {
				b.Fatal(err)
			}
			sec = ch.Cores[0].Cycles() / cfg.Epiphany.Clock
		}
		b.ReportMetric(sec*1e3, "model_ms")
		b.ReportMetric(imgPx/sec, "px_per_s")
	})
	b.Run("FFBP/par-epiphany", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			ch := emu.New(cfg.Epiphany)
			if _, _, err := kernels.ParFFBP(ch, cfg.FFBPCores, data, cfg.Params, cfg.Box); err != nil {
				b.Fatal(err)
			}
			sec = ch.Time()
		}
		b.ReportMetric(sec*1e3, "model_ms")
		b.ReportMetric(imgPx/sec, "px_per_s")
	})
	b.Run("Autofocus/seq-intel", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			cpu := refcpu.New(cfg.Intel)
			if _, err := kernels.SeqAutofocus(cpu, cpu.Mem(), pairs, shifts); err != nil {
				b.Fatal(err)
			}
			sec = cpu.Seconds()
		}
		b.ReportMetric(sec*1e3, "model_ms")
		b.ReportMetric(afPx/sec, "px_per_s")
	})
	b.Run("Autofocus/seq-epiphany", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			ch := emu.New(cfg.Epiphany)
			if _, err := kernels.SeqAutofocus(ch.Cores[0], ch.Ext(), pairs, shifts); err != nil {
				b.Fatal(err)
			}
			sec = ch.Cores[0].Cycles() / cfg.Epiphany.Clock
		}
		b.ReportMetric(sec*1e3, "model_ms")
		b.ReportMetric(afPx/sec, "px_per_s")
	})
	b.Run("Autofocus/par-epiphany", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			ch := emu.New(cfg.Epiphany)
			if _, err := kernels.ParAutofocus(ch, pairs, shifts); err != nil {
				b.Fatal(err)
			}
			sec = ch.Time()
		}
		b.ReportMetric(sec*1e3, "model_ms")
		b.ReportMetric(afPx/sec, "px_per_s")
	})
}

// BenchmarkEnergy reruns the Sec. VI-A energy-efficiency comparison
// (throughput per watt of parallel Epiphany vs sequential Intel; paper:
// 38x for FFBP, 78x for autofocus).
func BenchmarkEnergy(b *testing.B) {
	cfg := benchCfg(b)
	var tab *report.Table1
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = report.RunTable1(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("report", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tab
		}
		b.ReportMetric(tab.FFBPEnergyRatio, "ffbp_ratio_x")
		b.ReportMetric(tab.AutofocusEnergyRatio, "autofocus_ratio_x")
	})
}

// BenchmarkFigure7 regenerates the Fig. 7 image set and reports the
// quality relations the paper states (GBP sharper than FFBP; the two FFBP
// implementations equivalent).
func BenchmarkFigure7(b *testing.B) {
	cfg := report.Small() // GBP at paper scale is minutes; Small keeps CI fast
	var res bench.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = bench.RunFigure7(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GBPSharpness, "gbp_sharpness")
	b.ReportMetric(res.FFBPSharpness, "ffbp_sharpness")
	b.ReportMetric(res.IntelEpiphanyCorr, "intel_epi_corr")
}

// BenchmarkScaling measures parallel FFBP vs core count (1..64), the
// ablation behind the paper's 64-core outlook.
func BenchmarkScaling(b *testing.B) {
	cfg := report.Small()
	var pts []bench.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunScaling(context.Background(), cfg, []int{1, 2, 4, 8, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		if pt.Cores == 16 {
			b.ReportMetric(pt.Speedup, "speedup16_x")
		}
		if pt.Cores == 64 {
			b.ReportMetric(pt.Speedup, "speedup64_x")
		}
	}
}

// BenchmarkBandwidthRatio sweeps the off-chip bandwidth, showing FFBP
// bandwidth-bound and the autofocus pipeline insensitive (paper Sec. VI's
// on-chip-vs-off-chip bandwidth argument).
func BenchmarkBandwidthRatio(b *testing.B) {
	cfg := report.Small()
	var pts []bench.BandwidthPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunBandwidth(context.Background(), cfg, []float64{0.25, 1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Sensitivity: time(low BW) / time(high BW).
	b.ReportMetric(pts[0].FFBPSeconds/pts[2].FFBPSeconds, "ffbp_sensitivity_x")
	b.ReportMetric(pts[0].AFSeconds/pts[2].AFSeconds, "autofocus_sensitivity_x")
}

// BenchmarkInterpolation measures FFBP quality per interpolation kernel
// against the GBP reference (the paper's image-quality discussion).
func BenchmarkInterpolation(b *testing.B) {
	cfg := report.Small()
	var pts []bench.InterpPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunInterp(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		b.ReportMetric(pt.GBPCorr, pt.Kind.String()+"_gbp_corr")
	}
}

// BenchmarkPipelines measures autofocus throughput vs pipeline replicas
// on the 64-core device (the Sec. VII outlook applied to the MPMD
// mapping).
func BenchmarkPipelines(b *testing.B) {
	cfg := report.Small()
	var pts []bench.PipelinePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunPipelines(context.Background(), cfg, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[1].Speedup, "pipes4_speedup_x")
}

// BenchmarkGBPvsFFBPModel compares the modeled sequential times of exact
// GBP and FFBP on the reference CPU — the paper's "FFBP is much faster
// than GBP".
func BenchmarkGBPvsFFBPModel(b *testing.B) {
	cfg := report.Small()
	var g, f float64
	for i := 0; i < b.N; i++ {
		var err error
		g, f, err = bench.RunGBPvsFFBP(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(g*1e3, "gbp_model_ms")
	b.ReportMetric(f*1e3, "ffbp_model_ms")
	b.ReportMetric(g/f, "ratio_x")
}

// BenchmarkMotivation reruns the Sec. I frequency-vs-time-domain argument
// (gain kept under a non-linear flight path).
func BenchmarkMotivation(b *testing.B) {
	cfg := report.Small()
	var r bench.MotivationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunMotivation(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RDAKept, "rda_kept")
	b.ReportMetric(r.FocusedFFBPKept, "focused_ffbp_kept")
	b.ReportMetric(r.MocompRDAKept, "mocomp_rda_kept")
}

// BenchmarkBases measures FFBP quality vs factorization base.
func BenchmarkBases(b *testing.B) {
	cfg := report.Small()
	cfg.Params.NumPulses = 256
	cfg.Box = report.DefaultBox(cfg.Params)
	var pts []bench.BasePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunBases(context.Background(), cfg, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Sharpness, "base2_sharpness")
	b.ReportMetric(pts[1].Sharpness, "base4_sharpness")
}

// BenchmarkHostFFBP measures the real (wall-clock) host implementation —
// the library's own throughput rather than the model's.
func BenchmarkHostFFBP(b *testing.B) {
	p := sarmany.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	data := sarmany.Simulate(p, sarmany.SixTargetScene(p), nil)
	for _, kind := range []interp.Kind{interp.Nearest, interp.Cubic} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sarmany.FFBP(data, p, box, kind, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHostGBPvsFFBP contrasts the real cost of exact GBP with FFBP —
// the complexity gap that motivates factorization.
func BenchmarkHostGBPvsFFBP(b *testing.B) {
	p := sarmany.DefaultParams()
	p.NumPulses = 128
	p.NumBins = 161
	p.R0 = 500
	box := geom.SceneBox{UMin: -25, UMax: 25, YMin: 510, YMax: 570, ThetaPad: 0.05}
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	grid := box.GridFor(geom.Aperture{Center: 0, Length: p.ApertureLength()},
		p.NumPulses, p.NumBins, p.R0, p.DR)
	b.Run("GBP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gbp.Image(data, p, grid, gbp.Config{Interp: interp.Nearest})
		}
	})
	b.Run("FFBP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ffbp.Image(data, p, box, ffbp.Config{Interp: interp.Nearest}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
