module sarmany

go 1.22
