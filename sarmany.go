// This file is the facade: type aliases and thin wrappers over the
// internal packages. The package doc comment lives in doc.go.
package sarmany

import (
	"context"
	"encoding/json"
	"io"
	"time"

	"sarmany/internal/autofocus"
	"sarmany/internal/bench"
	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/fault"
	"sarmany/internal/ffbp"
	"sarmany/internal/fft"
	"sarmany/internal/gbp"
	"sarmany/internal/geom"
	"sarmany/internal/imageio"
	"sarmany/internal/interp"
	"sarmany/internal/kernels"
	"sarmany/internal/mat"
	"sarmany/internal/obs"
	"sarmany/internal/profile"
	"sarmany/internal/quality"
	"sarmany/internal/rda"
	"sarmany/internal/refcpu"
	"sarmany/internal/report"
	"sarmany/internal/sar"
	"sarmany/internal/serve"
	"sarmany/internal/sizing"
	"sarmany/internal/sweep"
	"sarmany/internal/telemetry"
)

// Radar front end.
type (
	// Params describes the radar system and collection geometry.
	Params = sar.Params
	// Target is a point scatterer in the scene.
	Target = sar.Target
	// PathError gives the platform's cross-track displacement vs track
	// position (nil = perfectly linear flight).
	PathError = sar.PathError
	// Chirp describes the transmitted LFM pulse.
	Chirp = sar.Chirp
)

// Imaging geometry and data containers.
type (
	// SceneBox bounds the imaged area.
	SceneBox = geom.SceneBox
	// PolarGrid is the sampling grid of a (sub)aperture image.
	PolarGrid = geom.PolarGrid
	// Image is a dense complex-valued image (rows = beams/pulses,
	// cols = range bins).
	Image = mat.C
	// MagImage is a dense real-valued (magnitude) image.
	MagImage = mat.F
)

// InterpKind selects an interpolation kernel for back-projection.
type InterpKind = interp.Kind

// Interpolation kernels: the paper's FFBP uses Nearest; its autofocus uses
// Cubic (Neville's algorithm).
const (
	Nearest = interp.Nearest
	Linear  = interp.Linear
	Cubic   = interp.Cubic
	// Sinc8 is the eight-tap windowed-sinc kernel — highest fidelity on
	// band-limited data, at twice Cubic's taps.
	Sinc8 = interp.Sinc8
)

// DefaultParams returns the paper-scale system: 1024 pulses x 1001 range
// bins of low-frequency stripmap SAR.
func DefaultParams() Params { return sar.DefaultParams() }

// SixTargetScene returns the paper's six-point-target validation scene.
func SixTargetScene(p Params) []Target { return sar.SixTargetScene(p) }

// RandomScene returns n deterministic pseudo-random point targets inside
// the given azimuth and range intervals.
func RandomScene(n int, seed int64, uMin, uMax, yMin, yMax float64) []Target {
	return sar.RandomScene(n, seed, uMin, uMax, yMin, yMax)
}

// DefaultSceneBox returns an imaged-area box matching the default scene.
func DefaultSceneBox(p Params) SceneBox { return report.DefaultBox(p) }

// Simulate synthesizes pulse-compressed radar data for targets observed
// with parameters p, optionally under a flight-path error.
func Simulate(p Params, targets []Target, pathErr PathError) *Image {
	return sar.Simulate(p, targets, pathErr)
}

// SimulateRaw synthesizes uncompressed chirp echoes; Compress
// matched-filters them back to range profiles.
func SimulateRaw(p Params, ch Chirp, targets []Target, pathErr PathError) *Image {
	return sar.SimulateRaw(p, ch, targets, pathErr)
}

// Compress matched-filters raw echo data against the chirp replica.
func Compress(p Params, ch Chirp, raw *Image) *Image { return sar.Compress(p, ch, raw) }

// WindowKind selects an amplitude taper for sidelobe control.
type WindowKind = fft.WindowKind

// Amplitude tapers for CompressWindowed.
const (
	RectWindow    = fft.Rect
	HannWindow    = fft.Hann
	HammingWindow = fft.Hamming
	TaylorWindow  = fft.Taylor
)

// CompressWindowed matched-filters raw echoes against an amplitude-
// weighted replica, trading mainlobe width for lower range sidelobes
// (e.g. ~-35 dB with TaylorWindow vs ~-13 dB unweighted).
func CompressWindowed(p Params, ch Chirp, raw *Image, kind WindowKind) *Image {
	return sar.CompressWindowed(p, ch, raw, kind)
}

// AddNoise adds circular complex white Gaussian noise (deviation sigma
// per sample) to data in place, deterministically from seed.
func AddNoise(data *Image, sigma float64, seed int64) *Image {
	return sar.AddNoise(data, sigma, seed)
}

// InjectRFI adds a narrowband interference tone (normalized frequency in
// cycles/sample, amplitude amp, per-pulse phase drift dphase) to every
// pulse of data — the contamination low-frequency SAR suffers from
// broadcast transmitters.
func InjectRFI(data *Image, freq float64, amp float32, dphase float64) *Image {
	return sar.InjectRFI(data, freq, amp, dphase)
}

// UpsampleRange band-limit-interpolates every range profile by an integer
// factor (FFT zero-padding), returning the finer data and adjusted
// parameters. Oversampling shrinks the nearest-neighbour quantization —
// and with it the phase noise FFBP's simplified interpolation accumulates
// per merge iteration — by the same factor.
func UpsampleRange(data *Image, p Params, factor int) (*Image, Params, error) {
	return sar.UpsampleRange(data, p, factor)
}

// NotchFilter excises anomalous narrowband spectral lines from every
// pulse (threshold times the median spectral magnitude; typical 4-8),
// returning how many bins were notched.
func NotchFilter(data *Image, threshold float64) (int, error) {
	return sar.NotchFilter(data, threshold)
}

// FFBP forms an image by fast factorized back-projection (merge base 2)
// and returns it with its polar grid. kind selects the child-image
// interpolation (the paper uses Nearest); workers <= 0 uses all CPUs.
func FFBP(data *Image, p Params, box SceneBox, kind InterpKind, workers int) (*Image, PolarGrid, error) {
	return ffbp.Image(data, p, box, ffbp.Config{Interp: kind, Workers: workers})
}

// RDA forms an image with the frequency-domain range-Doppler algorithm —
// the computationally cheap method the paper's introduction contrasts
// with time-domain back-projection; it structurally assumes a linear
// constant-speed track. Output rows are azimuth positions (TrackPos
// order), columns slant-range bins.
func RDA(data *Image, p Params) (*Image, error) {
	return rda.Image(data, p, rda.Config{RCMC: Linear})
}

// MotionCompensate references pulse-compressed data collected on a known
// non-linear path back to the nominal straight track (per-pulse range
// resampling + carrier phase restoration) — the GPS/INS-based
// compensation of the paper's Sec. II-A.
func MotionCompensate(data *Image, p Params, pathErr PathError) *Image {
	return sar.MotionCompensate(data, p, pathErr)
}

// FFBPBase forms an image with a generalized factorization base k >= 2
// (NumPulses must be a power of k): higher bases run fewer merge levels —
// less accumulated interpolation noise, more lookups per level. FFBPBase
// with k=2 matches FFBP.
func FFBPBase(data *Image, p Params, box SceneBox, kind InterpKind, k int) (*Image, PolarGrid, error) {
	return ffbp.ImageK(data, p, box, ffbp.Config{Interp: kind}, k)
}

// GBP forms an image by exact global back-projection on the given grid
// (use FullApertureGrid). It is the quality reference FFBP approximates.
func GBP(data *Image, p Params, grid PolarGrid, kind InterpKind, workers int) *Image {
	return gbp.Image(data, p, grid, gbp.Config{Interp: kind, Workers: workers})
}

// FocusConfig controls autofocused FFBP image formation.
type FocusConfig = ffbp.FocusConfig

// DefaultFocusConfig returns the standard autofocus configuration for an
// np-pulse aperture: the compensation estimated at the final merge with a
// 21-candidate sweep (set FromLevel lower to autofocus more levels).
func DefaultFocusConfig(np int) FocusConfig { return ffbp.DefaultFocusConfig(np) }

// FocusedFFBP forms an image by FFBP with integrated autofocus: before
// each merge from fc.FromLevel on, the flight-path compensation of every
// subaperture pair is estimated with the focus criterion and applied
// during element combining (paper Sec. II-A). It returns the image, its
// grid, and the estimated compensations per autofocused level.
func FocusedFFBP(data *Image, p Params, box SceneBox, fc FocusConfig) (*Image, PolarGrid, [][]Shift, error) {
	return ffbp.FocusedImage(data, p, box, fc)
}

// FullApertureGrid returns the polar grid of the final full-aperture
// image over box: NumPulses beams x NumBins range bins.
func FullApertureGrid(p Params, box SceneBox) PolarGrid {
	full := geom.Aperture{Center: 0, Length: p.ApertureLength()}
	return box.GridFor(full, p.NumPulses, p.NumBins, p.R0, p.DR)
}

// Autofocus criterion calculation.
type (
	// Block is a 6x6 pixel block from a subaperture image.
	Block = autofocus.Block
	// Shift is a trial flight-path compensation in image pixels.
	Shift = autofocus.Shift
	// FocusResult is one evaluated compensation candidate.
	FocusResult = autofocus.Result
)

// BlockFrom extracts the 6x6 block of img with top-left corner (r0, c0).
func BlockFrom(img *Image, r0, c0 int) (Block, error) { return autofocus.BlockFrom(img, r0, c0) }

// Criterion evaluates the paper's focus criterion (eq. 6) for a block
// pair under a trial compensation; higher means better focus.
func Criterion(fMinus, fPlus *Block, s Shift) float64 {
	return autofocus.Criterion(fMinus, fPlus, s)
}

// SearchCompensation evaluates all candidate compensations and returns
// the best one plus every score.
func SearchCompensation(fMinus, fPlus *Block, candidates []Shift) (FocusResult, []FocusResult, error) {
	return autofocus.Search(fMinus, fPlus, candidates)
}

// RangeSweep returns n candidate compensations with range shifts evenly
// spaced in [lo, hi] pixels.
func RangeSweep(lo, hi float64, n int) []Shift { return autofocus.RangeSweep(lo, hi, n) }

// Machine models.
type (
	// Epiphany is a simulated Adapteva Epiphany chip.
	Epiphany = emu.Chip
	// EpiphanyParams configures the chip model.
	EpiphanyParams = emu.Params
	// ReferenceCPU is the simulated sequential Intel i7 reference.
	ReferenceCPU = refcpu.CPU
	// BlockPair is one autofocus work item (the f- and f+ blocks).
	BlockPair = kernels.BlockPair
)

// EpiphanyE16G3 returns the paper's 16-core chip configuration at 1 GHz.
func EpiphanyE16G3() EpiphanyParams { return emu.E16G3() }

// EpiphanyE64 returns a 64-core configuration (the paper's outlook).
func EpiphanyE64() EpiphanyParams { return emu.E64() }

// NewEpiphany constructs a simulated chip. A chip is single-shot: run one
// workload, then read Time() and TotalStats().
func NewEpiphany(p EpiphanyParams) *Epiphany { return emu.New(p) }

// NewReferenceCPU constructs the sequential Intel i7-M620 model.
func NewReferenceCPU() *ReferenceCPU { return refcpu.New(refcpu.I7M620()) }

// EpiphanyFFBP runs the paper's parallel SPMD FFBP implementation on
// nCores cores of chip (0 = all) and returns the image; chip.Time() then
// gives the modeled execution time.
func EpiphanyFFBP(chip *Epiphany, nCores int, data *Image, p Params, box SceneBox) (*Image, PolarGrid, error) {
	return kernels.ParFFBP(chip, nCores, data, p, box)
}

// EpiphanySeqFFBP runs FFBP sequentially on one core of chip with the
// image data in external SDRAM (the paper's sequential Epiphany variant).
func EpiphanySeqFFBP(chip *Epiphany, data *Image, p Params, box SceneBox) (*Image, PolarGrid, error) {
	return kernels.SeqFFBP(chip.Cores[0], chip.Ext(), data, p, box)
}

// ReferenceFFBP runs FFBP sequentially on the Intel reference model.
func ReferenceFFBP(cpu *ReferenceCPU, data *Image, p Params, box SceneBox) (*Image, PolarGrid, error) {
	return kernels.SeqFFBP(cpu, cpu.Mem(), data, p, box)
}

// EpiphanyAutofocus runs the paper's 13-core MPMD streaming autofocus
// pipeline: Scores[pair][shift] is the criterion of each pair under each
// candidate compensation.
func EpiphanyAutofocus(chip *Epiphany, pairs []BlockPair, shifts []Shift) ([][]float64, error) {
	return kernels.ParAutofocus(chip, pairs, shifts)
}

// EpiphanyAutofocusMulti replicates the 13-core pipeline n times across a
// larger mesh (four replicas fit the 64-core device), splitting the
// block-pair stream across them.
func EpiphanyAutofocusMulti(chip *Epiphany, n int, pairs []BlockPair, shifts []Shift) ([][]float64, error) {
	return kernels.ParAutofocusMulti(chip, n, pairs, shifts)
}

// EpiphanySeqAutofocus runs the same workload on one Epiphany core.
func EpiphanySeqAutofocus(chip *Epiphany, pairs []BlockPair, shifts []Shift) ([][]float64, error) {
	return kernels.SeqAutofocus(chip.Cores[0], chip.Ext(), pairs, shifts)
}

// ReferenceAutofocus runs the same workload on the Intel reference model.
func ReferenceAutofocus(cpu *ReferenceCPU, pairs []BlockPair, shifts []Shift) ([][]float64, error) {
	return kernels.SeqAutofocus(cpu, cpu.Mem(), pairs, shifts)
}

// CheckChip verifies the structural invariants of a completed chip run —
// cycle identities, stall breakdowns, phase tiling and barrier
// resolution, link balance, off-chip channel drain, trace monotonicity,
// and (when the chip was traced) the profiler's critical-path and energy
// accounting. It returns nil when every invariant holds and an error
// naming each violation otherwise. Call it after any Epiphany* run, never
// concurrently with one.
func CheckChip(chip *Epiphany) error { return conform.CheckAll(chip).Err() }

// Evaluation harness.
type (
	// ExperimentConfig selects workload scale and machine parameters.
	ExperimentConfig = report.Config
	// Table1 is the reproduced paper Table I plus energy ratios.
	Table1 = report.Table1
	// Fig7Metrics carries the Fig. 7 quality comparison.
	Fig7Metrics = bench.Fig7Result
)

// PaperExperiment returns the paper-scale experiment configuration;
// SmallExperiment a fast reduced-scale one.
func PaperExperiment() ExperimentConfig { return report.Default() }

// SmallExperiment returns a reduced-scale experiment configuration.
func SmallExperiment() ExperimentConfig { return report.Small() }

// RunTable1 reruns all six Table I implementations.
func RunTable1(cfg ExperimentConfig) (*Table1, error) {
	return report.RunTable1(context.Background(), cfg)
}

// RunTable1Ctx is RunTable1 with a caller-supplied context: cancellation
// (or a deadline) stops the experiment at the next simulation boundary.
func RunTable1Ctx(ctx context.Context, cfg ExperimentConfig) (*Table1, error) {
	return report.RunTable1(ctx, cfg)
}

// RunFigure7 recomputes the Fig. 7 image set (raw data, GBP, FFBP on both
// machines) and its quality metrics.
func RunFigure7(cfg ExperimentConfig) (Fig7Metrics, [4]*Image, error) {
	return bench.RunFigure7(context.Background(), cfg)
}

// WriteFigure7 writes the Fig. 7 images as PNGs into dir and the metrics
// to w.
func WriteFigure7(w io.Writer, cfg ExperimentConfig, dir string) error {
	return bench.Figure7(context.Background(), w, cfg, dir)
}

// Concurrent experiment sweeps.
type (
	// SweepJob is one simulation of a sweep: a workload selector (a
	// benchtab experiment key, or any label a custom runner interprets)
	// applied to one experiment configuration, with optional Extra
	// workload parameters.
	SweepJob = sweep.Job
	// SweepOptions configures a sweep run: worker count, result cache
	// directory, per-job timeout, metrics registry, and runner override.
	SweepOptions = sweep.Options
	// SweepJobResult is one job's outcome, returned at the same index as
	// its job regardless of completion order.
	SweepJobResult = sweep.JobResult
	// BenchResult is the machine-readable experiment envelope
	// (the BENCH_<name>.json form).
	BenchResult = bench.Result
	// MetricsRegistry collects named counters, gauges, and histograms;
	// see SweepOptions.Metrics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's metrics
	// (MetricsRegistry.Snapshot): the input of WritePrometheus,
	// WriteExpvar, and the ledger's metric maps.
	MetricsSnapshot = obs.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry (for
// SweepOptions.Metrics and the other instrumented subsystems).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RunSweep fans the jobs out across a bounded worker pool and returns
// their results in input order. Each job runs with panic recovery and an
// optional timeout; with SweepOptions.CacheDir set, completed envelopes
// are cached by a content address of their configuration and replayed
// byte-identically on reruns.
func RunSweep(ctx context.Context, jobs []SweepJob, opt SweepOptions) ([]SweepJobResult, error) {
	return sweep.Run(ctx, jobs, opt)
}

// Serving layer (cmd/sarserve; see docs/API.md and docs/OPERATIONS.md).
type (
	// JobServer is the SAR-as-a-service core: batching, admission
	// control, content-addressed job store, and the HTTP handler set
	// (Handler). cmd/sarserve wraps it in a daemon.
	JobServer = serve.Server
	// JobServerOptions configures a JobServer: worker pool, cache
	// directory, batching policy, queue bound, tenant quotas, job
	// timeout, and ledger directory.
	JobServerOptions = serve.Options
	// JobServerSpec is one submission: experiment key, scale, tenant,
	// tag, and optional timeout — the POST /v1/jobs body.
	JobServerSpec = serve.JobSpec
	// JobServerInfo is a job's externally visible record: its
	// content-addressed ID, status, timing, and run-ledger reference.
	JobServerInfo = serve.JobInfo
	// TenantQuota is the per-tenant token-bucket admission budget.
	TenantQuota = serve.QuotaConfig
)

// NewJobServer assembles a job server; mount its Handler on an
// http.Server and call Drain on shutdown.
func NewJobServer(opt JobServerOptions) *JobServer { return serve.NewServer(opt) }

// SweepData returns a sweep result's experiment data as its concrete
// type, decoding the raw payload when the envelope was replayed from the
// cache (e.g. a "t1" job yields *Table1 either way). It only understands
// the built-in benchtab envelopes; custom runners decode their own.
func SweepData(r SweepJobResult) (any, error) {
	if raw, ok := r.Result.Data.(json.RawMessage); ok {
		return bench.DecodeData(r.Result.Name, raw)
	}
	return r.Result.Data, nil
}

// SaveImage renders a complex image (magnitude, dB scale) to a .png or
// .pgm file.
func SaveImage(path string, img *Image, dynamicRangeDB float64) error {
	return imageio.Save(path, img, dynamicRangeDB)
}

// Magnitude returns the magnitude image of img.
func Magnitude(img *Image) *MagImage { return quality.Mag(img) }

// Sharpness returns the normalized fourth-power sharpness of a magnitude
// image (a standard focus-quality measure).
func Sharpness(m *MagImage) float64 { return quality.Sharpness(m) }

// ImageCorrelation returns the normalized correlation of two magnitude
// images.
func ImageCorrelation(a, b *MagImage) float64 { return quality.NormCorr(a, b) }

// ImageEntropy returns the Shannon entropy of the image's power
// distribution — the entropy-minimization focus measure (lower = more
// concentrated = better focused).
func ImageEntropy(m *MagImage) float64 { return quality.Entropy(m) }

// PointResponse carries the -3 dB widths and peak-to-sidelobe ratios of a
// point-target response.
type PointResponse = quality.PointResponse

// MeasurePointResponse analyses the impulse response around the brightest
// pixel of a magnitude image: range/azimuth IRW (pixels) and PSLR (dB).
func MeasurePointResponse(m *MagImage) (PointResponse, error) {
	return quality.MeasurePointResponse(m)
}

// GroundSpec describes a Cartesian ground raster for geocoded display.
type GroundSpec = imageio.GroundSpec

// GroundSpecFor returns a raster covering box at the given resolution (m).
func GroundSpecFor(box SceneBox, res float64) (GroundSpec, error) {
	return imageio.GroundSpecFor(box, res)
}

// ToGround resamples a polar image (grid g, subaperture centred at track
// position center — 0 for full-aperture images) onto a Cartesian ground
// raster.
func ToGround(img *Image, g PolarGrid, center float64, spec GroundSpec, kind InterpKind) *Image {
	return imageio.ToGround(img, g, center, spec, kind)
}

// Real-time deployment sizing (the paper's motivating constraint).
type (
	// Requirement is the real-time processing constraint of a collection.
	Requirement = sizing.Requirement
	// Capability is one processing device's throughput and power.
	Capability = sizing.Capability
	// Plan is a sized deployment for one device type.
	Plan = sizing.Plan
)

// RequirementFor derives the real-time requirement from radar parameters
// and platform speed (m/s).
func RequirementFor(p Params, speedMS float64) (Requirement, error) {
	return sizing.RequirementFor(p, speedMS)
}

// SizeDeployment sizes each candidate device against the requirement.
func SizeDeployment(r Requirement, devices []Capability) ([]Plan, error) {
	return sizing.Compare(r, devices)
}

// EnergyBreakdown decomposes an Epiphany run's energy into architectural
// components (compute, local memory, mesh, eLink, static).
type EnergyBreakdown = energy.Breakdown

// MeasureEnergy estimates the energy breakdown of a completed chip run.
func MeasureEnergy(chip *Epiphany) EnergyBreakdown {
	return energy.EpiphanyBreakdown(chip.TotalStats(), chip.Time())
}

// Trace-driven profiling.
type (
	// Tracer records per-core span tracks during a simulation; attach one
	// with Epiphany.SetTracer before running a kernel. Attaching a tracer
	// never changes modeled time.
	Tracer = obs.Tracer
	// RunProfile is the post-hoc analysis of a traced chip run: critical
	// path with per-cause attribution, per-phase energy rows, roofline
	// classification, and mesh heatmaps. WriteText and WriteHTML render
	// it; cmd/sarprof is the CLI front end.
	RunProfile = profile.Profile
)

// NewTracer returns a span tracer for a machine clocked at clockHz.
func NewTracer(clockHz float64) *Tracer { return obs.NewTracer(clockHz) }

// ProfileChip analyzes a completed traced run (the chip must have had a
// tracer attached before the kernel ran).
func ProfileChip(chip *Epiphany) (*RunProfile, error) { return profile.AnalyzeChip(chip) }

// Deterministic fault injection.
type (
	// FaultPlan is one declarative fault scenario: hard-halted cores,
	// per-core frequency derates, an SDRAM bandwidth cut, and seeded
	// probabilistic link/DMA faults. The zero plan injects nothing.
	FaultPlan = fault.Plan
	// FaultInjector is a compiled, validated plan ready to attach to an
	// Epiphany chip with Epiphany.SetFaults. The same injector replayed
	// over the same workload is bit-identical.
	FaultInjector = fault.Injector
	// LinkFault, DMAFault and CoreDerate are the plan's entry types.
	LinkFault  = fault.LinkFault
	DMAFault   = fault.DMAFault
	CoreDerate = fault.Derate
	// DegradationReport is the profiler's fault-cost section: per-target
	// rows for retransmission, DMA timeouts, derating and remapping that
	// sum to the measured whole-run overhead (RunProfile.Faults).
	DegradationReport = profile.Degradation
	// ChaosPoint is one fault-severity measurement of RunChaosSweep.
	ChaosPoint = bench.ChaosPoint
)

// ParseFaultPlan reads the line-oriented fault-plan text format (see
// internal/fault: "halt 5", "derate 3 1.5", "link 0 1 0.1 timeout 500",
// "dma * 0.02", "ext-derate 0.5", "seed 42").
func ParseFaultPlan(text string) (FaultPlan, error) { return fault.Parse(text) }

// ParseFaultPlanFile reads and parses a fault-plan file.
func ParseFaultPlanFile(path string) (FaultPlan, error) { return fault.ParseFile(path) }

// CompileFaultPlan validates a plan and compiles it into an injector;
// attach the result with Epiphany.SetFaults before running a kernel. An
// empty plan compiles to a no-op injector: the run is bit-identical to an
// uninjected one.
func CompileFaultPlan(p FaultPlan) (*FaultInjector, error) { return p.Compile() }

// ChaosFaultPlan builds the canonical chaos-sweep plan for a severity in
// [0, 1] on a run using the given core count: severity-scaled link and
// DMA fault rates, a derated core, a throttled SDRAM channel, and — at
// severity 1 — one hard-halted core.
func ChaosFaultPlan(severity float64, cores int) FaultPlan {
	return bench.ChaosPlan(severity, cores)
}

// RunChaosSweep measures parallel FFBP under a grid of fault severities —
// the degradation curve of graceful completion. Every point records
// modeled time, energy, retry/remap counts and whether the degraded run
// still passed the conformance checker.
func RunChaosSweep(ctx context.Context, cfg ExperimentConfig, severities []float64) ([]ChaosPoint, error) {
	return bench.RunChaos(ctx, cfg, severities)
}

// Run ledger and telemetry exposition.
type (
	// RunLedger is the append-only, content-addressed store of run
	// manifests the CLIs write under out/runs/; query it programmatically
	// or with cmd/sarlog.
	RunLedger = telemetry.Ledger
	// RunManifest is one ledger entry: the full provenance of a run
	// (parameters, seed, fault plan, code version, host) plus its metric
	// snapshot and optional bench envelope.
	RunManifest = telemetry.Entry
	// FlightRecorder samples a live chip's per-core progress on a
	// heartbeat, renders a status line, and dumps a post-mortem when a
	// stall watchdog or wall-clock deadline fires.
	FlightRecorder = telemetry.Recorder
	// FlightRecorderOptions configures the recorder: the progress probe,
	// heartbeat interval, stall/deadline watchdogs, status writer, and
	// post-mortem path.
	FlightRecorderOptions = telemetry.Options
)

// OpenRunLedger opens (lazily creating) the run ledger in dir.
func OpenRunLedger(dir string) *RunLedger { return telemetry.Open(dir) }

// NewRunManifest assembles the shared provenance fields of a manifest:
// tool, args, wall clock, code version, host shape, and the
// content-hashed configuration document.
func NewRunManifest(tool string, start time.Time, config any, args ...string) (RunManifest, error) {
	return telemetry.NewEntry(tool, start, config, args...)
}

// RecordRun appends a manifest to the ledger in dir and returns the run
// ID; an empty dir disables recording and returns an empty ID.
func RecordRun(dir string, e RunManifest) (string, error) { return telemetry.Record(dir, e) }

// StartFlightRecorder starts the heartbeat goroutine; call Stop on the
// returned recorder when the run completes. Attach the chip's progress
// probe by enabling Epiphany progress cells first (EnableProgress).
func StartFlightRecorder(opt FlightRecorderOptions) *FlightRecorder {
	return telemetry.Start(opt)
}

// WritePrometheus renders a metric snapshot in Prometheus text
// exposition format (histograms as cumulative buckets with p50/p90/p99
// quantile gauges alongside).
func WritePrometheus(w io.Writer, snap MetricsSnapshot, namespace string) error {
	return telemetry.WritePrometheus(w, snap, namespace)
}

// WriteExpvar renders a metric snapshot as one expvar-compatible JSON
// object.
func WriteExpvar(w io.Writer, snap MetricsSnapshot) error { return telemetry.WriteExpvar(w, snap) }
