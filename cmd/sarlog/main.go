// Sarlog queries the run ledger: the append-only, content-addressed
// history of simulation runs that epirun, benchtab, sarsim, sarprof,
// backproject and autofocus write under out/runs/.
//
// Usage:
//
//	sarlog list [-dir out/runs] [-n 20]
//	sarlog show [-dir out/runs] <ref>
//	sarlog diff [-dir out/runs] [-tol 0] [-gate] <refA> <refB>
//	sarlog trend [-dir out/runs] [-n 0] <leaf-path>
//	sarlog trace [-dir out/runs] [-perfetto out.json] <ref|job-id|trace-id>
//
// A <ref> is "@-1" (the most recent run), "@-2" (the one before), or an
// unambiguous run-ID prefix. Leaf paths use the dotted form the diff
// prints, e.g. "metrics.emu.cycles.total" or "envelope.data.speedup".
//
// trace renders the span tree a traced run embedded in its ledger
// entry: per-stage wall-clock timings from admission through queue
// wait, batch formation, execution and ledger write (see
// docs/OPERATIONS.md). Besides ledger refs it accepts the sarserve job
// ID or the W3C trace ID (a prefix will do) printed in the X-Trace-Id
// response header, and -perfetto additionally exports the tree in
// Chrome trace-event form for the Perfetto UI.
//
// diff compares every leaf of the two manifests with the same relative
// tolerance and advisory semantics as the benchdiff regression gate:
// wall-clock and host-shape leaves are reported but never gate. With
// -gate the exit status is 2 when any non-advisory leaf diverges beyond
// -tol — the CI contract: two runs of the same code and parameters must
// agree on every cycle and every nanojoule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sarmany/internal/bench"
	"sarmany/internal/obs"
	"sarmany/internal/telemetry"
)

// exitGateFail is the pinned exit status for a -gate diff that found
// non-advisory divergence, distinct from usage errors (status 1).
const exitGateFail = 2

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarlog: ")

	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(args)
	case "show":
		err = cmdShow(args)
	case "diff":
		err = cmdDiff(args)
	case "trend":
		err = cmdTrend(args)
	case "trace":
		err = cmdTrace(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		usage()
		log.Fatalf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  sarlog list  [-dir out/runs] [-n 20]
  sarlog show  [-dir out/runs] <ref>
  sarlog diff  [-dir out/runs] [-tol 0] [-gate] <refA> <refB>
  sarlog trend [-dir out/runs] [-n 0] <leaf-path>
  sarlog trace [-dir out/runs] [-perfetto out.json] <ref|job-id|trace-id>

refs: @-1 (latest), @-2, ... or a run-id prefix
`)
}

// dirFlag registers the shared -dir flag on a subcommand flag set.
func dirFlag(fs *flag.FlagSet) *string {
	return fs.String("dir", telemetry.DefaultDir, "ledger directory")
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dir := dirFlag(fs)
	n := fs.Int("n", 20, "show at most n most recent runs (0 = all)")
	fs.Parse(args)

	entries, err := telemetry.Open(*dir).List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Printf("no runs recorded in %s\n", *dir)
		return nil
	}
	if *n > 0 && len(entries) > *n {
		entries = entries[len(entries)-*n:]
	}
	fmt.Printf("%-13s %-20s %-12s %9s  %-12s %s\n", "ID", "START", "TOOL", "WALL", "VERSION", "ARGS")
	for _, e := range entries {
		args := ""
		if len(e.Args) > 0 {
			for i, a := range e.Args {
				if i > 0 {
					args += " "
				}
				args += a
			}
		}
		fmt.Printf("%-13s %-20s %-12s %8.2fs  %-12s %s\n",
			e.ID, e.Start.Format("2006-01-02 15:04:05"), e.Tool, e.WallSeconds, e.Version, args)
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	dir := dirFlag(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("show needs exactly one run reference")
	}
	l := telemetry.Open(*dir)
	e, err := l.Resolve(fs.Arg(0))
	if err != nil {
		return err
	}
	// Read re-verifies the content address and returns the stored bytes.
	_, raw, err := l.Read(e.ID)
	if err != nil {
		return err
	}
	os.Stdout.Write(raw)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	dir := dirFlag(fs)
	tol := fs.Float64("tol", 0, "relative tolerance for numeric leaves")
	gate := fs.Bool("gate", false, "exit 2 when non-advisory leaves diverge")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two run references")
	}
	l := telemetry.Open(*dir)
	a, err := l.Resolve(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := l.Resolve(fs.Arg(1))
	if err != nil {
		return err
	}
	findings, err := telemetry.DiffEntries(a, b, bench.DiffOptions{Tolerance: *tol})
	if err != nil {
		return err
	}
	fmt.Printf("diff %s (%s) -> %s (%s): %d differing leaves, %d regressions\n",
		a.ID, a.Start.Format("2006-01-02 15:04:05"),
		b.ID, b.Start.Format("2006-01-02 15:04:05"),
		len(findings), bench.Regressions(findings))
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
	if *gate && bench.Regressions(findings) > 0 {
		log.Printf("gate: %d non-advisory leaves diverged", bench.Regressions(findings))
		os.Exit(exitGateFail)
	}
	return nil
}

// cmdTrace finds a traced run and renders its embedded span tree.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	dir := dirFlag(fs)
	perfetto := fs.String("perfetto", "", "also write the trace in Chrome trace-event JSON to this file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("trace needs exactly one reference (ledger ref, job id or trace id)")
	}
	e, err := resolveTraced(telemetry.Open(*dir), fs.Arg(0))
	if err != nil {
		return err
	}
	if len(e.Trace) == 0 {
		return fmt.Errorf("run %s (trace %s) has no embedded span tree — was the request sampled? (sarserve -trace-sample, traceparent flags)",
			e.ID, orDash(e.TraceID))
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(e.Trace, &doc); err != nil {
		return fmt.Errorf("run %s: decoding embedded trace: %w", e.ID, err)
	}
	fmt.Printf("run %s · %s · %s\n", e.ID, e.Tool, e.Start.Format("2006-01-02 15:04:05"))
	if err := doc.WriteTree(os.Stdout); err != nil {
		return err
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			return err
		}
		if err := doc.WriteTraceEvent(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *perfetto)
	}
	return nil
}

// resolveTraced maps a trace reference onto a ledger entry. Ledger refs
// (@-1, run-ID prefixes) resolve as everywhere else; failing that, the
// argument is matched as a sarserve job ID, then as a trace-ID prefix,
// most recent entry first — so the ID from an X-Trace-Id response
// header or a `sarlog list` line both work.
func resolveTraced(l *telemetry.Ledger, ref string) (telemetry.Entry, error) {
	if e, err := l.Resolve(ref); err == nil {
		return e, nil
	}
	entries, err := l.List()
	if err != nil {
		return telemetry.Entry{}, err
	}
	for i := len(entries) - 1; i >= 0; i-- {
		if id, ok := entries[i].Extra["job_id"].(string); ok && id == ref {
			return entries[i], nil
		}
	}
	if len(ref) >= 4 {
		for i := len(entries) - 1; i >= 0; i-- {
			if strings.HasPrefix(entries[i].TraceID, strings.ToLower(ref)) {
				return entries[i], nil
			}
		}
	}
	return telemetry.Entry{}, fmt.Errorf("no run matches %q as a ledger ref, job id or trace id", ref)
}

// orDash substitutes "-" for an empty field in human output.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func cmdTrend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	dir := dirFlag(fs)
	n := fs.Int("n", 0, "use at most the n most recent runs (0 = all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("trend needs exactly one leaf path (e.g. metrics.emu.cycles.total)")
	}
	path := fs.Arg(0)
	entries, err := telemetry.Open(*dir).List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no runs recorded in %s", *dir)
	}
	if *n > 0 && len(entries) > *n {
		entries = entries[len(entries)-*n:]
	}
	pts := make([]telemetry.TrendPoint, 0, len(entries))
	for _, e := range entries {
		v, ok := telemetry.LeafValue(e, path)
		pts = append(pts, telemetry.TrendPoint{
			ID:    e.ID,
			Start: e.Start.Format("2006-01-02 15:04:05"),
			Value: v,
			OK:    ok,
		})
	}
	return telemetry.WriteTrend(os.Stdout, path, pts)
}
