package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sarmany/internal/obs"
	"sarmany/internal/telemetry"
)

// TestMain lets the test re-execute this binary as sarlog itself.
func TestMain(m *testing.M) {
	if os.Getenv("SARLOG_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSarlog(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SARLOG_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// seedLedger stores three runs: two with identical simulation results
// and one with doubled cycles (a changed parameter).
func seedLedger(t *testing.T) (dir string, ids []string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "runs")
	l := telemetry.Open(dir)
	mk := func(start time.Time, cycles float64, pulses string) telemetry.Entry {
		reg := obs.NewRegistry()
		reg.Counter("emu.cycles.total").Add(cycles)
		reg.Gauge("energy.total_mj").Set(cycles / 1e6)
		return telemetry.Entry{
			Tool:        "epirun",
			Args:        []string{"kernel=ffbp"},
			Start:       start,
			WallSeconds: 1.0,
			Version:     "abc123",
			Host:        telemetry.CurrentHost(),
			Config:      json.RawMessage(`{"pulses": ` + pulses + `}`),
			Metrics:     telemetry.MetricsMap(reg.Snapshot()),
		}
	}
	t0 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	for _, e := range []telemetry.Entry{
		mk(t0, 1e6, "128"),
		mk(t0.Add(time.Minute), 1e6, "128"),
		mk(t0.Add(2*time.Minute), 2e6, "256"),
	} {
		id, _, err := l.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return dir, ids
}

func TestListAndShow(t *testing.T) {
	dir, ids := seedLedger(t)
	code, out := runSarlog(t, "list", "-dir", dir)
	if code != 0 {
		t.Fatalf("list exit %d:\n%s", code, out)
	}
	for _, id := range ids {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "epirun") || !strings.Contains(out, "kernel=ffbp") {
		t.Errorf("list output:\n%s", out)
	}

	code, out = runSarlog(t, "show", "-dir", dir, "@-1")
	if code != 0 {
		t.Fatalf("show exit %d:\n%s", code, out)
	}
	var e telemetry.Entry
	if err := json.Unmarshal([]byte(out), &e); err != nil {
		t.Fatalf("show output not a valid entry: %v\n%s", err, out)
	}
	if e.ID != ids[2] {
		t.Errorf("show @-1 = %s, want latest %s", e.ID, ids[2])
	}

	code, out = runSarlog(t, "show", "-dir", dir, ids[0][:6])
	if code != 0 || !strings.Contains(out, ids[0]) {
		t.Errorf("show by prefix: exit %d\n%s", code, out)
	}
}

// TestDiffIdenticalRunsGatePasses is the ledgersmoke contract: two runs
// with identical simulation results exit 0 under -gate, with a
// non-empty delta table (the advisory id/start rows).
func TestDiffIdenticalRunsGatePasses(t *testing.T) {
	dir, _ := seedLedger(t)
	code, out := runSarlog(t, "diff", "-dir", dir, "-gate", "@-3", "@-2")
	if code != 0 {
		t.Fatalf("identical runs failed the gate (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "0 regressions") {
		t.Errorf("diff header:\n%s", out)
	}
	if !strings.Contains(out, "(advisory)") {
		t.Errorf("delta table empty — want advisory id/start rows:\n%s", out)
	}
	if strings.Contains(out, "metrics.emu.cycles.total:") {
		t.Errorf("cycle leaf diverged between identical runs:\n%s", out)
	}
}

// TestDiffChangedParamGateFails pins the other half: a changed Param
// produces a correctly attributed non-zero delta and -gate exits 2.
func TestDiffChangedParamGateFails(t *testing.T) {
	dir, _ := seedLedger(t)
	code, out := runSarlog(t, "diff", "-dir", dir, "-gate", "@-2", "@-1")
	if code != exitGateFail {
		t.Fatalf("exit %d, want %d:\n%s", code, exitGateFail, out)
	}
	for _, want := range []string{
		"metrics.emu.cycles.total: 1000000 -> 2000000 (+100.0%)",
		"metrics.energy.total_mj",
		"config.pulses",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
	// Without -gate the same diff exits 0 (reporting, not gating).
	code, _ = runSarlog(t, "diff", "-dir", dir, "@-2", "@-1")
	if code != 0 {
		t.Errorf("ungated diff exit %d, want 0", code)
	}
}

func TestTrend(t *testing.T) {
	dir, _ := seedLedger(t)
	code, out := runSarlog(t, "trend", "-dir", dir, "metrics.emu.cycles.total")
	if code != 0 {
		t.Fatalf("trend exit %d:\n%s", code, out)
	}
	for _, want := range []string{"across 3 runs", "1e+06", "2e+06", "min 1e+06, max 2e+06"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	dir, _ := seedLedger(t)
	if code, _ := runSarlog(t); code == 0 {
		t.Error("no-command invocation exited 0")
	}
	if code, _ := runSarlog(t, "bogus"); code == 0 {
		t.Error("unknown command exited 0")
	}
	if code, _ := runSarlog(t, "diff", "-dir", dir, "@-1"); code == 0 {
		t.Error("one-ref diff exited 0")
	}
	if code, out := runSarlog(t, "show", "-dir", dir, "zzzz"); code == 0 || !strings.Contains(out, "no run matches") {
		t.Errorf("bad ref: exit %d\n%s", code, out)
	}
	if code, _ := runSarlog(t, "list", "-dir", filepath.Join(dir, "missing")); code != 0 {
		t.Error("empty ledger list should succeed")
	}
}

// seedTracedRun appends a sarserve.job entry carrying an embedded span
// tree, the shape sarserve records for sampled submissions.
func seedTracedRun(t *testing.T, dir string) (traceID, jobID string) {
	t.Helper()
	tr := obs.NewReqTrace(obs.NewTraceID())
	root := tr.StartSpan("request")
	for _, stage := range []string{"admission", "queue.wait", "execute"} {
		root.Child(stage).End()
	}
	root.End()
	raw, err := json.Marshal(tr.Doc())
	if err != nil {
		t.Fatal(err)
	}
	jobID = "deadbeefcafef00d"
	e := telemetry.Entry{
		Tool:        "sarserve.job",
		Start:       time.Date(2026, 8, 8, 11, 0, 0, 0, time.UTC),
		WallSeconds: 0.1,
		Version:     "abc123",
		Host:        telemetry.CurrentHost(),
		Extra:       map[string]any{"job_id": jobID},
		TraceID:     tr.TraceID().String(),
		Trace:       raw,
	}
	if _, _, err := telemetry.Open(dir).Append(e); err != nil {
		t.Fatal(err)
	}
	return tr.TraceID().String(), jobID
}

// TestTrace drives the trace subcommand end to end: render by ledger
// ref, by sarserve job ID and by trace-ID prefix, refuse untraced runs,
// and export Perfetto JSON.
func TestTrace(t *testing.T) {
	dir, _ := seedLedger(t)
	traceID, jobID := seedTracedRun(t, dir)

	code, out := runSarlog(t, "trace", "-dir", dir, "@-1")
	if code != 0 {
		t.Fatalf("trace @-1 exit %d:\n%s", code, out)
	}
	for _, want := range []string{"trace " + traceID, "request", "admission", "queue.wait", "execute", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}

	if code, byJob := runSarlog(t, "trace", "-dir", dir, jobID); code != 0 || !strings.Contains(byJob, "trace "+traceID) {
		t.Errorf("trace by job id: exit %d\n%s", code, byJob)
	}
	if code, byPrefix := runSarlog(t, "trace", "-dir", dir, traceID[:8]); code != 0 || !strings.Contains(byPrefix, "trace "+traceID) {
		t.Errorf("trace by trace-id prefix: exit %d\n%s", code, byPrefix)
	}

	// The seeded epirun entries carry no span tree.
	if code, out := runSarlog(t, "trace", "-dir", dir, "@-2"); code == 0 || !strings.Contains(out, "no embedded span tree") {
		t.Errorf("untraced run: exit %d\n%s", code, out)
	}
	if code, out := runSarlog(t, "trace", "-dir", dir, "nosuchref"); code == 0 || !strings.Contains(out, "no run matches") {
		t.Errorf("bad ref: exit %d\n%s", code, out)
	}

	pf := filepath.Join(t.TempDir(), "trace.json")
	if code, out := runSarlog(t, "trace", "-dir", dir, "-perfetto", pf, jobID); code != 0 {
		t.Fatalf("perfetto export exit %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	var pdoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &pdoc); err != nil {
		t.Fatalf("perfetto file not JSON: %v", err)
	}
	if len(pdoc.TraceEvents) < 4 {
		t.Errorf("perfetto file has %d events, want >= 4", len(pdoc.TraceEvents))
	}
}
