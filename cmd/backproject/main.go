// Backproject forms a SAR image from pulse-compressed data (produced by
// sarsim) using either global back-projection (GBP, the exact reference)
// or fast factorized back-projection (FFBP, the paper's case study), and
// writes the result as a picture and/or a data container.
//
// Usage:
//
//	backproject -i data.sar -algo ffbp -o img.png
//	backproject -i data.sar -algo ffbp -interp cubic -o img.png
//	backproject -i data.sar -algo gbp -o gbp.png
//	backproject -i data.sar -algo ffbp -data img.sar   # keep complex image
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"
	"time"

	"sarmany/internal/autofocus"
	"sarmany/internal/dataio"
	"sarmany/internal/ffbp"
	"sarmany/internal/gbp"
	"sarmany/internal/geom"
	"sarmany/internal/imageio"
	"sarmany/internal/interp"
	"sarmany/internal/logx"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/report"
	"sarmany/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backproject: ")

	var (
		in      = flag.String("i", "data.sar", "input data file from sarsim")
		algo    = flag.String("algo", "ffbp", "algorithm: ffbp, ffbp-autofocus or gbp")
		kindStr = flag.String("interp", "nearest", "interpolation: nearest, linear or cubic")
		out     = flag.String("o", "image.png", "output picture (.png or .pgm; empty to skip)")
		outData = flag.String("data", "", "optional output data container with the complex image")
		dynDB   = flag.Float64("db", 50, "rendering dynamic range in dB")
		workers = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		ground  = flag.Float64("ground", 0, "also write a geocoded ground raster at this resolution in metres (suffix _ground)")
		ledgerD = flag.String("ledger", telemetry.DefaultDir, "run-ledger directory; empty disables recording")
	)
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg := logCfg.MustNew("backproject")
	wallStart := time.Now()

	p, data, err := dataio.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	box := report.DefaultBox(p)

	var kind interp.Kind
	switch *kindStr {
	case "nearest":
		kind = interp.Nearest
	case "linear":
		kind = interp.Linear
	case "cubic":
		kind = interp.Cubic
	default:
		log.Fatalf("unknown interpolation %q", *kindStr)
	}

	var img *mat.C
	var grid geom.PolarGrid
	start := time.Now()
	switch *algo {
	case "ffbp":
		var err error
		img, grid, err = ffbp.Image(data, p, box, ffbp.Config{Interp: kind, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
	case "ffbp-autofocus":
		fc := ffbp.DefaultFocusConfig(p.NumPulses)
		fc.Interp = kind
		fc.Workers = *workers
		var history [][]autofocus.Shift
		var err error
		img, grid, history, err = ffbp.FocusedImage(data, p, box, fc)
		if err != nil {
			log.Fatal(err)
		}
		for lvl, comps := range history {
			fmt.Printf("autofocus level %d compensations:", lvl)
			for _, c := range comps {
				fmt.Printf(" %+.2f", c.DRange)
			}
			fmt.Println(" (range pixels)")
		}
	case "gbp":
		full := geom.Aperture{Center: 0, Length: p.ApertureLength()}
		grid = box.GridFor(full, p.NumPulses, p.NumBins, p.R0, p.DR)
		img = gbp.Image(data, p, grid, gbp.Config{Interp: kind, Workers: *workers})
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	elapsed := time.Since(start)

	m := quality.Mag(img)
	pr, pc, pv := quality.Peak(m)
	fmt.Printf("%s/%s: %dx%d image in %v; peak %.1f at (beam %d, bin %d); sharpness %.1f\n",
		*algo, kind, img.Rows, img.Cols, elapsed.Round(time.Millisecond), pv, pr, pc, quality.Sharpness(m))

	// Record the image formation in the run ledger: input identity,
	// algorithm configuration, and the deterministic quality scalars —
	// peak position/value and sharpness — that sarlog diff can gate on.
	if *ledgerD != "" {
		e, lerr := telemetry.NewEntry("backproject", wallStart, map[string]any{
			"algo":   *algo,
			"interp": *kindStr,
			"params": p,
		}, "algo="+*algo, "interp="+*kindStr)
		if lerr != nil {
			log.Printf("ledger: %v", lerr)
		} else {
			e.Extra = map[string]any{
				"input":      *in,
				"rows":       img.Rows,
				"cols":       img.Cols,
				"peak_beam":  pr,
				"peak_bin":   pc,
				"peak_value": pv,
				"sharpness":  quality.Sharpness(m),
				"seconds":    elapsed.Seconds(),
			}
			if id, lerr := telemetry.Record(*ledgerD, e); lerr != nil {
				lg.Warn("ledger append failed", "err", lerr)
			} else {
				lg.Info(fmt.Sprintf("run %s recorded in %s", id, *ledgerD), "run_id", id)
			}
		}
	}

	if *out != "" {
		if err := imageio.Save(*out, img, *dynDB); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *outData != "" {
		if err := dataio.WriteFile(*outData, p, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outData)
	}
	if *ground > 0 && *out != "" {
		spec, err := imageio.GroundSpecFor(box, *ground)
		if err != nil {
			log.Fatal(err)
		}
		g := imageio.ToGround(img, grid, 0, spec, interp.Linear)
		ext := filepath.Ext(*out)
		path := strings.TrimSuffix(*out, ext) + "_ground" + ext
		if err := imageio.Save(path, g, *dynDB); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%dx%d @ %.2g m/px)\n", path, g.Rows, g.Cols, *ground)
	}
}
