// Autofocus demonstrates the paper's autofocus criterion calculation on a
// defocused data set: it simulates a scene with a known flight-path error,
// forms the two half-aperture subaperture images of the final FFBP merge,
// extracts 6x6 blocks around the brightest point, and sweeps candidate
// flight-path compensations, printing the criterion curve. The criterion
// maximum should fall at the compensation matching the injected error.
//
// Usage:
//
//	autofocus                     # built-in demo scene
//	autofocus -error 1.0          # inject a 1 m path displacement
//	autofocus -sweep 31 -max 2.5  # 31 candidates over +/-2.5 pixels
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"sarmany/internal/autofocus"
	"sarmany/internal/ffbp"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/logx"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
	"sarmany/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autofocus: ")

	var (
		errM = flag.Float64("error", 0.75, "injected cross-track path displacement of the second half-aperture (m)")
		n    = flag.Int("sweep", 21, "number of candidate compensations")
		// The 4-tap Neville window supports shifts up to ~1.5 pixels;
		// beyond that the cubic extrapolates and the criterion is
		// meaningless.
		maxPx   = flag.Float64("max", 1.5, "sweep half-range in range pixels (<= 1.5)")
		ledgerD = flag.String("ledger", telemetry.DefaultDir, "run-ledger directory; empty disables recording")
	)
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg := logCfg.MustNew("autofocus")
	start := time.Now()

	p := sar.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := geom.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	tg := sar.Target{U: 0, Y: 555, Amp: 1}

	// A step path error over the second half of the aperture: the two
	// contributing subapertures of the final merge see the scene displaced
	// relative to each other — the situation autofocus must detect.
	displacement := *errM
	pathErr := func(u float64) float64 {
		if u > 0 {
			return displacement
		}
		return 0
	}
	data := sar.Simulate(p, []sar.Target{tg}, pathErr)

	fMinus, fPlus, grid, err := halfApertureBlocks(data, p, box)
	if err != nil {
		log.Fatal(err)
	}

	cands := autofocus.RangeSweep(-*maxPx, *maxPx, *n)
	best, all, err := autofocus.Search(&fMinus, &fPlus, cands)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("injected path error: %.2f m (%.2f range pixels)\n", displacement, displacement/p.DR)
	fmt.Printf("%10s  %14s\n", "shift(px)", "criterion")
	_, _, peak := maxScore(all)
	for _, r := range all {
		bar := strings.Repeat("#", int(40*r.Score/peak))
		fmt.Printf("%10.2f  %14.5g  %s\n", r.Shift.DRange, r.Score, bar)
	}
	fmt.Printf("best compensation: %.2f pixels (%.2f m)\n", best.Shift.DRange, best.Shift.DRange*p.DR)
	_ = grid

	// Record the criterion sweep in the run ledger: the injected error
	// and sweep shape as config, the best compensation and its score as
	// deterministic extras a sarlog diff can gate on.
	if *ledgerD != "" {
		e, lerr := telemetry.NewEntry("autofocus", start, map[string]any{
			"error_m": displacement,
			"sweep":   *n,
			"max_px":  *maxPx,
			"params":  p,
		}, fmt.Sprintf("error=%g", displacement), fmt.Sprintf("sweep=%d", *n))
		if lerr != nil {
			log.Printf("ledger: %v", lerr)
		} else {
			e.Extra = map[string]any{
				"best_shift_px": best.Shift.DRange,
				"best_shift_m":  best.Shift.DRange * p.DR,
				"best_score":    best.Score,
			}
			if id, lerr := telemetry.Record(*ledgerD, e); lerr != nil {
				lg.Warn("ledger append failed", "err", lerr)
			} else {
				lg.Info(fmt.Sprintf("run %s recorded in %s", id, *ledgerD), "run_id", id)
			}
		}
	}
}

func maxScore(rs []autofocus.Result) (int, autofocus.Result, float64) {
	bi, bv := 0, math.Inf(-1)
	for i, r := range rs {
		if r.Score > bv {
			bi, bv = i, r.Score
		}
	}
	return bi, rs[bi], bv
}

// halfApertureBlocks runs FFBP up to the last merge, producing the two
// contributing half-aperture images, and extracts a 6x6 block around the
// brightest pixel of each (at the same nominal position).
func halfApertureBlocks(data *mat.C, p sar.Params, box geom.SceneBox) (m, q autofocus.Block, g geom.PolarGrid, err error) {
	s, err := ffbp.InitialStage(data, p, box)
	if err != nil {
		return m, q, g, err
	}
	cfg := ffbp.Config{Interp: interp.Cubic}
	for s.NumSubapertures() > 2 {
		if s, err = ffbp.Merge(s, box, cfg); err != nil {
			return m, q, g, err
		}
	}
	a, b := s.Images[0], s.Images[1]
	ra, ca, _ := quality.Peak(quality.Mag(a))
	// Use the same window in both images so a shift appears as content
	// displacement, and clamp so the 6x6 block stays inside.
	r0 := clamp(ra-autofocus.BlockSize/2, 0, a.Rows-autofocus.BlockSize)
	c0 := clamp(ca-autofocus.BlockSize/2, 0, a.Cols-autofocus.BlockSize)
	if m, err = autofocus.BlockFrom(a, r0, c0); err != nil {
		return m, q, g, err
	}
	if q, err = autofocus.BlockFrom(b, r0, c0); err != nil {
		return m, q, g, err
	}
	return m, q, s.Grids[0], nil
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
