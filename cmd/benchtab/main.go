// Benchtab regenerates the paper's evaluation artifacts: Table I
// (performance and power of the FFBP and autofocus implementations), the
// Sec. VI-A energy-efficiency ratios, the Fig. 7 image set, and the
// ablation sweeps listed in DESIGN.md.
//
// Experiments run through the internal/sweep engine: independent
// experiments fan out across -j workers, and with -cache-dir each
// result envelope is cached by a content address of its configuration,
// so a repeated run only simulates what changed.
//
// Usage:
//
//	benchtab -exp t1                 # Table I + energy ratios (paper scale)
//	benchtab -exp t1 -small          # reduced scale (fast)
//	benchtab -exp t1 -json           # also write BENCH_table1.json
//	benchtab -exp fig7 -out dir      # Fig. 7a-d images + quality metrics
//	benchtab -exp scaling            # FFBP speedup vs core count
//	benchtab -exp bw                 # autofocus throughput vs off-chip bandwidth
//	benchtab -exp interp             # FFBP quality vs interpolation kernel
//	benchtab -exp kernels            # fused vs reference hot-path throughput
//	benchtab -exp scale              # FFBP + autofocus across 64/256/1024-core devices
//	benchtab -exp all                # everything
//	benchtab -exp all -j 8           # everything, eight experiments at a time
//	benchtab -exp all -cache-dir .benchcache   # skip unchanged experiments
//	benchtab -exp all -timeout 10m   # bound each experiment's run time
//	benchtab -exp all -metrics m.json          # sweep progress counters
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<name>.json envelope into -jsondir (default "."). Cached and
// fresh runs write byte-identical envelopes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/logx"
	"sarmany/internal/obs"
	"sarmany/internal/report"
	"sarmany/internal/sweep"
	"sarmany/internal/telemetry"
)

// experiments maps -exp keys to display titles, in -exp all order.
var experiments = []struct{ key, title string }{
	{"t1", "Table I"},
	{"fig7", "Figure 7"},
	{"scaling", "Core scaling"},
	{"bw", "Bandwidth sweep"},
	{"interp", "Interpolation ablation"},
	{"pipes", "Pipeline replication"},
	{"gbp", "GBP vs FFBP"},
	{"base", "Factorization base"},
	{"rda", "Frequency vs time domain"},
	{"upsample", "Range oversampling"},
	{"chaos", "Fault-severity degradation"},
	{"kernels", "Fused kernel throughput"},
	{"scale", "Manycore scale-up sweep"},
}

func main() {
	exp := flag.String("exp", "t1", "experiment: t1, fig7, scaling, bw, interp, pipes, gbp, base, rda, upsample, chaos, kernels, scale, all")
	small := flag.Bool("small", false, "run at reduced scale")
	out := flag.String("out", "out", "output directory for images")
	jsonOut := flag.Bool("json", false, "also write machine-readable BENCH_<name>.json results")
	jsonDir := flag.String("jsondir", ".", "directory for BENCH_<name>.json files (with -json)")
	jobs := flag.Int("j", 0, "concurrent experiments (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (empty = no caching)")
	timeout := flag.Duration("timeout", 0, "per-experiment timeout (0 = none)")
	metricF := flag.String("metrics", "", "write a sweep metrics snapshot JSON file")
	ledgerD := flag.String("ledger", telemetry.DefaultDir, "run-ledger directory; empty disables recording")
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg := logCfg.MustNew("benchtab")
	start := time.Now()

	cfg := report.Default()
	if *small {
		cfg = report.Small()
	}

	selected := experiments
	if *exp != "all" {
		selected = nil
		for _, e := range experiments {
			if e.key == *exp {
				selected = []struct{ key, title string }{e}
			}
		}
		if selected == nil {
			lg.Error("unknown experiment", "exp", *exp)
			os.Exit(2)
		}
	}

	sweepJobs := make([]sweep.Job, len(selected))
	for i, e := range selected {
		sweepJobs[i] = sweep.Job{Name: e.title, Exp: e.key, Config: cfg}
	}

	reg := obs.NewRegistry()
	imgDir := *out
	results, err := sweep.Run(context.Background(), sweepJobs, sweep.Options{
		Workers:  *jobs,
		CacheDir: *cacheDir,
		Timeout:  *timeout,
		Metrics:  reg,
		Run: func(ctx context.Context, j sweep.Job) (bench.Result, error) {
			return bench.Compute(ctx, j.Exp, j.Config, imgDir)
		},
	})
	if err != nil {
		lg.Error("sweep failed", "err", err)
		os.Exit(1)
	}

	failed := false
	for _, r := range results {
		header := fmt.Sprintf("== %s ==", r.Job.Name)
		if r.Cached {
			header += " (cached)"
		}
		fmt.Println(header)
		if r.Err != nil {
			failed = true
			lg.Error(r.Job.Name+" failed", "err", r.Err)
			continue
		}
		if r.Job.Exp == "fig7" && !r.Cached {
			fmt.Printf("wrote %s\n", imgDir)
		}
		if err := bench.PrintResult(os.Stdout, r.Result); err != nil {
			lg.Error(r.Job.Name+" failed", "err", err)
			os.Exit(1)
		}
		if *jsonOut {
			path, err := bench.WriteFileRaw(*jsonDir, r.Result.Name, r.Raw)
			if err != nil {
				lg.Error(r.Job.Name+" failed", "err", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	// Record the invocation in the run ledger: parameters, the sweep
	// metric snapshot (sweep.job.seconds p50/p99 ride along), and — for a
	// single-experiment run — the bench envelope itself, so sarlog diff
	// can attribute result drift leaf by leaf.
	if *ledgerD != "" {
		cached := 0
		for _, r := range results {
			if r.Cached {
				cached++
			}
		}
		e, err := telemetry.NewEntry("benchtab", start, map[string]any{
			"exp":    *exp,
			"small":  *small,
			"params": cfg.Params,
		}, "exp="+*exp, fmt.Sprintf("small=%v", *small))
		if err != nil {
			lg.Warn("ledger entry failed", "err", err)
		} else {
			e.Metrics = telemetry.MetricsMap(reg.Snapshot())
			e.Extra = map[string]any{
				"experiments": len(results),
				"cached":      cached,
				"failed":      failed,
			}
			if len(results) == 1 && results[0].Err == nil && len(results[0].Raw) > 0 {
				e.Envelope = results[0].Raw
			}
			if id, err := telemetry.Record(*ledgerD, e); err != nil {
				lg.Warn("ledger append failed", "err", err)
			} else {
				lg.Info(fmt.Sprintf("run %s recorded in %s", id, *ledgerD), "run_id", id)
			}
		}
	}

	if *metricF != "" {
		f, err := os.Create(*metricF)
		if err != nil {
			lg.Error("metrics snapshot failed", "err", err)
			os.Exit(1)
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			lg.Error("metrics snapshot failed", "err", err)
			os.Exit(1)
		}
		f.Close()
	}
	if failed {
		os.Exit(1)
	}
}
