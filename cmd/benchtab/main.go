// Benchtab regenerates the paper's evaluation artifacts: Table I
// (performance and power of the FFBP and autofocus implementations), the
// Sec. VI-A energy-efficiency ratios, the Fig. 7 image set, and the
// ablation sweeps listed in DESIGN.md.
//
// Usage:
//
//	benchtab -exp t1                 # Table I + energy ratios (paper scale)
//	benchtab -exp t1 -small          # reduced scale (fast)
//	benchtab -exp t1 -json           # also write BENCH_table1.json
//	benchtab -exp fig7 -out dir      # Fig. 7a-d images + quality metrics
//	benchtab -exp scaling            # FFBP speedup vs core count
//	benchtab -exp bw                 # autofocus throughput vs off-chip bandwidth
//	benchtab -exp interp             # FFBP quality vs interpolation kernel
//	benchtab -exp all                # everything
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<name>.json envelope into -jsondir (default ".").
package main

import (
	"flag"
	"fmt"
	"os"

	"sarmany/internal/bench"
	"sarmany/internal/report"
)

// experiments maps -exp keys to display titles, in -exp all order.
var experiments = []struct{ key, title string }{
	{"t1", "Table I"},
	{"fig7", "Figure 7"},
	{"scaling", "Core scaling"},
	{"bw", "Bandwidth sweep"},
	{"interp", "Interpolation ablation"},
	{"pipes", "Pipeline replication"},
	{"gbp", "GBP vs FFBP"},
	{"base", "Factorization base"},
	{"rda", "Frequency vs time domain"},
	{"upsample", "Range oversampling"},
}

func main() {
	exp := flag.String("exp", "t1", "experiment: t1, fig7, scaling, bw, interp, pipes, gbp, base, rda, upsample, all")
	small := flag.Bool("small", false, "run at reduced scale")
	out := flag.String("out", "out", "output directory for images")
	jsonOut := flag.Bool("json", false, "also write machine-readable BENCH_<name>.json results")
	jsonDir := flag.String("jsondir", ".", "directory for BENCH_<name>.json files (with -json)")
	flag.Parse()

	cfg := report.Default()
	if *small {
		cfg = report.Small()
	}
	dir := ""
	if *jsonOut {
		dir = *jsonDir
	}

	run := func(key, title string) {
		fmt.Printf("== %s ==\n", title)
		if err := bench.Experiment(key, os.Stdout, cfg, dir, *out); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", title, err)
			os.Exit(1)
		}
	}

	if *exp == "all" {
		for _, e := range experiments {
			run(e.key, e.title)
		}
		return
	}
	for _, e := range experiments {
		if e.key == *exp {
			run(e.key, e.title)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", *exp)
	os.Exit(2)
}
