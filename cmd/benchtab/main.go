// Benchtab regenerates the paper's evaluation artifacts: Table I
// (performance and power of the FFBP and autofocus implementations), the
// Sec. VI-A energy-efficiency ratios, the Fig. 7 image set, and the
// ablation sweeps listed in DESIGN.md.
//
// Usage:
//
//	benchtab -exp t1                 # Table I + energy ratios (paper scale)
//	benchtab -exp t1 -small          # reduced scale (fast)
//	benchtab -exp fig7 -out dir      # Fig. 7a-d images + quality metrics
//	benchtab -exp scaling            # FFBP speedup vs core count
//	benchtab -exp bw                 # autofocus throughput vs off-chip bandwidth
//	benchtab -exp interp             # FFBP quality vs interpolation kernel
//	benchtab -exp all                # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"sarmany/internal/bench"
	"sarmany/internal/report"
)

func main() {
	exp := flag.String("exp", "t1", "experiment: t1, fig7, scaling, bw, interp, pipes, gbp, base, rda, upsample, all")
	small := flag.Bool("small", false, "run at reduced scale")
	out := flag.String("out", "out", "output directory for images")
	flag.Parse()

	cfg := report.Default()
	if *small {
		cfg = report.Small()
	}

	run := func(name string, f func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	switch *exp {
	case "t1":
		run("Table I", func() error { return bench.Table1(os.Stdout, cfg) })
	case "fig7":
		run("Figure 7", func() error { return bench.Figure7(os.Stdout, cfg, *out) })
	case "scaling":
		run("Core scaling", func() error { return bench.Scaling(os.Stdout, cfg) })
	case "bw":
		run("Bandwidth sweep", func() error { return bench.Bandwidth(os.Stdout, cfg) })
	case "interp":
		run("Interpolation ablation", func() error { return bench.Interp(os.Stdout, cfg) })
	case "pipes":
		run("Pipeline replication", func() error { return bench.Pipelines(os.Stdout, cfg) })
	case "gbp":
		run("GBP vs FFBP", func() error { return bench.GBPvsFFBP(os.Stdout, cfg) })
	case "base":
		run("Factorization base", func() error { return bench.Bases(os.Stdout, cfg) })
	case "rda":
		run("Frequency vs time domain", func() error { return bench.Motivation(os.Stdout, cfg) })
	case "upsample":
		run("Range oversampling", func() error { return bench.Upsample(os.Stdout, cfg) })
	case "all":
		run("Table I", func() error { return bench.Table1(os.Stdout, cfg) })
		run("Figure 7", func() error { return bench.Figure7(os.Stdout, cfg, *out) })
		run("Core scaling", func() error { return bench.Scaling(os.Stdout, cfg) })
		run("Bandwidth sweep", func() error { return bench.Bandwidth(os.Stdout, cfg) })
		run("Interpolation ablation", func() error { return bench.Interp(os.Stdout, cfg) })
		run("Pipeline replication", func() error { return bench.Pipelines(os.Stdout, cfg) })
		run("GBP vs FFBP", func() error { return bench.GBPvsFFBP(os.Stdout, cfg) })
		run("Factorization base", func() error { return bench.Bases(os.Stdout, cfg) })
		run("Frequency vs time domain", func() error { return bench.Motivation(os.Stdout, cfg) })
		run("Range oversampling", func() error { return bench.Upsample(os.Stdout, cfg) })
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
