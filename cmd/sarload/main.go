// Sarload is the load generator for a running sarserve daemon: it
// submits synchronous (?wait=1) jobs at a fixed offered rate and
// reports the end-to-end latency distribution, achieved throughput,
// and how much of the work the server absorbed without fresh
// simulation (dedup + cache).
//
// Usage:
//
//	sarload -url http://localhost:8357            # 60 jobs at 10/s
//	sarload -n 240 -rate 50                       # heavier offered load
//	sarload -exp gbp -scale small                 # the job every request submits
//	sarload -distinct 8                           # tag cardinality (dedup ratio)
//	sarload -tenant team-a                        # quota bucket to draw from
//	sarload -tag-prefix run7                      # disjoint tags across runs
//
// Each request carries one of -distinct tags, so on a cold cache only
// -distinct of the -n submissions need a fresh simulation; the rest
// single-flight onto them, and a warm rerun needs none. That absorption
// is a server-side fact (an attached request's record describes the
// shared job, not the attach), so sarload snapshots /debug/vars before
// and after the run and reports the counter deltas. Rejected requests
// (429/503) are counted and retried never — sarload measures the
// server's admission behavior rather than hiding it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sarmany/internal/logx"
)

// jobOutcome is one request's fate as sarload saw it.
type jobOutcome struct {
	status  int
	latency time.Duration
	trace   string // X-Trace-Id response header, for log correlation
	err     error
}

// serverCounters is the slice of /debug/vars sarload diffs across the
// run to report what the server absorbed without fresh simulation.
type serverCounters struct {
	completed, deduplicated, executed float64
	ok                                bool
}

// scrapeCounters reads the daemon's expvar endpoint; ok is false when
// the endpoint is unreachable (some other backend) and the server-side
// report is skipped.
func scrapeCounters(url string) serverCounters {
	resp, err := http.Get(url + "/debug/vars")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return serverCounters{}
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return serverCounters{}
	}
	num := func(key string) float64 {
		v, _ := vars[key].(float64)
		return v
	}
	return serverCounters{
		completed:    num("serve.jobs.completed"),
		deduplicated: num("serve.jobs.deduplicated"),
		executed:     num("sweep.jobs.executed"),
		ok:           true,
	}
}

// finalRecord is the slice of the server's job record sarload needs.
type finalRecord struct {
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

func main() {
	url := flag.String("url", "http://localhost:8357", "sarserve base URL")
	n := flag.Int("n", 60, "total jobs to submit")
	rate := flag.Float64("rate", 10, "offered jobs per second")
	exp := flag.String("exp", "gbp", "experiment key to submit")
	scale := flag.String("scale", "small", "experiment scale (small or paper)")
	distinct := flag.Int("distinct", 8, "distinct job tags (controls dedup ratio)")
	tenant := flag.String("tenant", "", "tenant name for quota accounting")
	tagPrefix := flag.String("tag-prefix", "load", "tag prefix (vary to defeat the cache)")
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg := logCfg.MustNew("sarload")
	if *n <= 0 || *rate <= 0 || *distinct <= 0 {
		lg.Error("-n, -rate and -distinct must be positive")
		os.Exit(2)
	}

	before := scrapeCounters(*url)
	interval := time.Duration(float64(time.Second) / *rate)
	outcomes := make([]jobOutcome, *n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * interval)
			outcomes[i] = submit(*url, *exp, *scale, *tenant,
				fmt.Sprintf("%s-%02d", *tagPrefix, i%*distinct))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	after := scrapeCounters(*url)

	var ok, rejected, failed int
	var latencies []float64
	for _, o := range outcomes {
		switch {
		case o.err != nil:
			failed++
			lg.Error("request failed", "err", o.err, "trace_id", o.trace)
		case o.status == http.StatusTooManyRequests || o.status == http.StatusServiceUnavailable:
			rejected++
		case o.status == http.StatusOK:
			ok++
			latencies = append(latencies, o.latency.Seconds())
		default:
			failed++
			lg.Error("unexpected status", "status", o.status, "trace_id", o.trace)
		}
	}

	fmt.Printf("offered   %8.1f jobs/s (%d jobs, %d distinct)\n", *rate, *n, *distinct)
	fmt.Printf("achieved  %8.1f jobs/s over %.2fs\n", float64(ok)/wall.Seconds(), wall.Seconds())
	fmt.Printf("ok %d  rejected %d  failed %d\n", ok, rejected, failed)
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		fmt.Printf("latency   p50 %.3fs  p99 %.3fs  max %.3fs\n",
			latencies[len(latencies)/2],
			latencies[(len(latencies)*99)/100],
			latencies[len(latencies)-1])
	}
	if before.ok && after.ok {
		served := (after.completed - before.completed) + (after.deduplicated - before.deduplicated)
		executed := after.executed - before.executed
		if served > 0 {
			fmt.Printf("cache-hit ratio %.3f (server ran %.0f simulations for %.0f served jobs)\n",
				1-executed/served, executed, served)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// submit POSTs one synchronous job and reports its outcome. A 200
// answer carries the final job record, which must have ended done.
func submit(url, exp, scale, tenant, tag string) jobOutcome {
	spec := map[string]string{"exp": exp, "tag": tag}
	if scale != "" {
		spec["scale"] = scale
	}
	if tenant != "" {
		spec["tenant"] = tenant
	}
	body, _ := json.Marshal(spec)
	t0 := time.Now()
	resp, err := http.Post(url+"/v1/jobs?wait=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return jobOutcome{err: err}
	}
	defer resp.Body.Close()
	o := jobOutcome{status: resp.StatusCode, latency: time.Since(t0),
		trace: resp.Header.Get("X-Trace-Id")}
	if resp.StatusCode == http.StatusOK {
		var rec finalRecord
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			o.err = fmt.Errorf("decode record: %w", err)
			return o
		}
		if rec.Status != "done" {
			o.err = fmt.Errorf("job ended %s: %s", rec.Status, rec.Error)
			return o
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return o
}
