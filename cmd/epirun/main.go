// Epirun executes the paper's mapped kernels on the simulated machines
// and reports modeled execution time, per-core cycle breakdowns, and
// traffic statistics — the tool for exploring how the implementations
// spend their time.
//
// Usage:
//
//	epirun -kernel ffbp-par                 # 16-core SPMD FFBP
//	epirun -kernel ffbp-par -cores 8
//	epirun -kernel ffbp-seq                 # one Epiphany core
//	epirun -kernel ffbp-intel               # Intel reference model
//	epirun -kernel af-par                   # 13-core autofocus pipeline
//	epirun -kernel af-seq | af-intel
//	epirun -kernel ffbp-par -mesh 8x8 -cores 64
//	epirun -small                           # reduced workload
//	epirun -trace out.json                  # Perfetto/Chrome trace of the run
//	epirun -metrics metrics.json            # metrics-registry snapshot
//	epirun -json                            # machine-readable summary on stdout
//	epirun -check                           # verify run invariants afterwards
//	epirun -faults plan.txt                 # inject a deterministic fault plan
//
// A -faults plan (see internal/fault for the format) degrades the run:
// halted cores have their tile work remapped to live neighbors, faulty
// links retransmit with backoff, DMA engines time out, derated cores run
// slower. The run completes with the overhead priced in cycles and
// energy; -check verifies the fault accounting. When the conformance
// check fails, epirun exits with status 2.
//
// A -trace file loads in ui.perfetto.dev or chrome://tracing: one thread
// per core with compute and stall spans, plus a phase track for SPMD
// kernels.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sarmany/internal/autofocus"
	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/fault"
	"sarmany/internal/kernels"
	"sarmany/internal/obs"
	"sarmany/internal/refcpu"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// summary is the -json output: identity, modeled time, and the full
// metrics snapshot of the run.
type summary struct {
	Kernel  string       `json:"kernel"`
	Machine string       `json:"machine"`
	Cores   int          `json:"cores"`
	ClockHz float64      `json:"clock_hz"`
	Cycles  float64      `json:"cycles"`
	Seconds float64      `json:"seconds"`
	Metrics obs.Snapshot `json:"metrics"`
}

// exitConformFail is the pinned exit status for a failed -check pass, so
// scripts can tell a conformance violation from an ordinary usage error
// (status 1).
const exitConformFail = 2

func main() {
	log.SetFlags(0)
	log.SetPrefix("epirun: ")

	var (
		kernel  = flag.String("kernel", "ffbp-par", "ffbp-par, ffbp-seq, ffbp-intel, af-par, af-seq, af-intel")
		cores   = flag.Int("cores", 16, "cores for ffbp-par")
		mesh    = flag.String("mesh", "4x4", "Epiphany mesh size RxC")
		small   = flag.Bool("small", false, "reduced workload")
		perCore = flag.Bool("percore", false, "print per-core statistics")
		phases  = flag.Bool("phases", false, "print the per-phase timeline (SPMD kernels)")
		power   = flag.Bool("power", false, "print the modeled energy breakdown")
		traceF  = flag.String("trace", "", "write a Perfetto/Chrome trace_event JSON file")
		traceN  = flag.Int("tracecap", obs.DefaultCapacity, "trace ring capacity in spans per track (oldest dropped beyond)")
		metricF = flag.String("metrics", "", "write a metrics-registry snapshot JSON file")
		jsonOut = flag.Bool("json", false, "print a machine-readable summary instead of tables")
		check   = flag.Bool("check", false, "run the conformance checker on the completed run (Epiphany kernels)")
		faultsF = flag.String("faults", "", "fault plan file to inject (Epiphany kernels)")
	)
	flag.Parse()

	cfg := report.Default()
	if *small {
		cfg = report.Small()
	}
	var r, c int
	if _, err := fmt.Sscanf(*mesh, "%dx%d", &r, &c); err != nil || r < 1 || c < 1 {
		log.Fatalf("bad mesh %q", *mesh)
	}
	cfg.Epiphany = cfg.Epiphany.WithMesh(r, c)

	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	pairs := report.AutofocusWorkload(cfg)
	shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)

	switch *kernel {
	case "ffbp-intel", "af-intel":
		if *check {
			log.Fatal("-check verifies the Epiphany model; it does not apply to the Intel reference kernels")
		}
		if *faultsF != "" {
			log.Fatal("-faults injects into the Epiphany model; it does not apply to the Intel reference kernels")
		}
		cpu := refcpu.New(cfg.Intel)
		var tracer *obs.Tracer
		if *traceF != "" {
			tracer = obs.NewTracer(cfg.Intel.Clock)
			tracer.SetCapacity(*traceN)
			cpu.SetTracer(tracer)
		}
		if *kernel == "ffbp-intel" {
			if _, _, err := kernels.SeqFFBP(cpu, cpu.Mem(), data, cfg.Params, cfg.Box); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, err := kernels.SeqAutofocus(cpu, cpu.Mem(), pairs, shifts); err != nil {
				log.Fatal(err)
			}
		}
		writeTrace(*traceF, tracer)
		// Metrics() builds the registry fresh each call, so publish the
		// tracer's span accounting into the one instance we snapshot.
		reg := cpu.Metrics()
		tracer.PublishMetrics(reg)
		writeMetrics(*metricF, reg.Snapshot())
		if *jsonOut {
			writeSummary(summary{Kernel: *kernel, Machine: "intel-i7", Cores: 1,
				ClockHz: cpu.P.Clock, Cycles: cpu.Cycles(), Seconds: cpu.Seconds(),
				Metrics: reg.Snapshot()})
			return
		}
		fmt.Printf("%s on Intel i7 model @ %.2f GHz\n", *kernel, cpu.P.Clock/1e9)
		fmt.Printf("  time: %.3f ms (%.0f cycles)\n", cpu.Seconds()*1e3, cpu.Cycles())
		s := cpu.Stats
		fmt.Printf("  ops: %d FMA, %d flop, %d iop, %d div, %d sqrt, %d trig\n",
			s.FMA, s.Flop, s.IOp, s.Div, s.Sqrt, s.Trig)
		total := s.Served[0] + s.Served[1] + s.Served[2] + s.Served[3]
		if total > 0 {
			fmt.Printf("  memory: %d accesses — L1 %.1f%%, L2 %.1f%%, L3 %.1f%%, DRAM %.1f%%\n",
				total,
				100*float64(s.Served[0])/float64(total),
				100*float64(s.Served[1])/float64(total),
				100*float64(s.Served[2])/float64(total),
				100*float64(s.Served[3])/float64(total))
		}
		return
	}

	ch := emu.New(cfg.Epiphany)
	var tracer *obs.Tracer
	if *traceF != "" {
		tracer = obs.NewTracer(cfg.Epiphany.Clock)
		tracer.SetCapacity(*traceN)
		ch.SetTracer(tracer)
	}
	if *faultsF != "" {
		plan, err := fault.ParseFile(*faultsF)
		if err != nil {
			log.Fatal(err)
		}
		if len(plan.Halts) > 0 && (*kernel == "ffbp-seq" || *kernel == "af-seq") {
			log.Fatal("the plan halts cores, but sequential kernels run directly on core 0 and cannot remap; use a mapped kernel")
		}
		inj, err := plan.Compile()
		if err != nil {
			log.Fatal(err)
		}
		ch.SetFaults(inj)
		fmt.Fprintf(os.Stderr, "epirun: fault plan %s: %d halt(s), %d derate(s), %d link fault(s), %d dma fault(s), seed %d\n",
			*faultsF, len(plan.Halts), len(plan.Derates), len(plan.Links), len(plan.DMAs), plan.Seed)
	}
	var used int
	switch *kernel {
	case "ffbp-par":
		used = *cores
		if _, _, err := kernels.ParFFBP(ch, *cores, data, cfg.Params, cfg.Box); err != nil {
			log.Fatal(err)
		}
	case "ffbp-seq":
		used = 1
		if _, _, err := kernels.SeqFFBP(ch.Cores[0], ch.Ext(), data, cfg.Params, cfg.Box); err != nil {
			log.Fatal(err)
		}
	case "af-par":
		used = 13
		if _, err := kernels.ParAutofocus(ch, pairs, shifts); err != nil {
			log.Fatal(err)
		}
	case "af-seq":
		used = 1
		if _, err := kernels.SeqAutofocus(ch.Cores[0], ch.Ext(), pairs, shifts); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	// EPIRUN_TAMPER corrupts one cycle counter before -check runs: the
	// test suite's way to pin the conformance-failure exit status without
	// a real accounting bug to trip over.
	if os.Getenv("EPIRUN_TAMPER") != "" {
		ch.Cores[0].Stats.ComputeCycles++
	}
	if *check {
		if rep := conform.CheckAll(ch); !rep.OK() {
			log.Println(rep.Err())
			os.Exit(exitConformFail)
		}
		fmt.Fprintln(os.Stderr, "epirun: conformance check passed")
	}

	writeTrace(*traceF, tracer)
	// Metrics() builds the registry fresh each call, so publish the
	// tracer's span accounting into the one instance we snapshot.
	reg := ch.Metrics()
	tracer.PublishMetrics(reg)
	writeMetrics(*metricF, reg.Snapshot())
	if *jsonOut {
		writeSummary(summary{Kernel: *kernel,
			Machine: fmt.Sprintf("epiphany-%dx%d", cfg.Epiphany.Rows, cfg.Epiphany.Cols),
			Cores:   used, ClockHz: cfg.Epiphany.Clock,
			Cycles: ch.MaxCycles(), Seconds: ch.Time(),
			Metrics: reg.Snapshot()})
		return
	}

	fmt.Printf("%s on Epiphany %dx%d @ %.1f GHz, %d cores used\n",
		*kernel, cfg.Epiphany.Rows, cfg.Epiphany.Cols, cfg.Epiphany.Clock/1e9, used)
	fmt.Printf("  time: %.3f ms (%.0f cycles)\n", ch.Time()*1e3, ch.MaxCycles())
	t := ch.TotalStats()
	fmt.Printf("  ops: %d FMA, %d flop, %d iop, %d div, %d sqrt, %d trig\n",
		t.FMA, t.Flop, t.IOp, t.Div, t.Sqrt, t.Trig)
	fmt.Printf("  local: %d loads, %d stores; remote: %d reads, %d writes (%d NoC bytes)\n",
		t.LocalLoads, t.LocalStores, t.RemoteReads, t.RemoteWrites, t.NoCBytes)
	fmt.Printf("  off-chip: %d reads (%d B), %d writes (%d B); %d DMA transfers (%d B)\n",
		t.ExtReads, t.ExtReadB, t.ExtWrites, t.ExtWriteB, t.DMATransfers, t.DMABytes)
	fmt.Printf("  cycles: %.0f compute, %.0f stalled\n", t.ComputeCycles, t.StallCycles)
	if inj := ch.Faults(); inj != nil && !inj.Empty() {
		fmt.Printf("  faults: %d link retries (%d B), %d dma retries, %.0f derate cycles, %d remapped slot(s), %d halted core(s)\n",
			t.LinkRetries, t.RetryBytes, t.DMARetries, t.DerateCycles,
			len(ch.Remaps()), len(inj.HaltedCores()))
	}

	if *perCore {
		fmt.Printf("  %4s %14s %14s %14s %12s\n", "core", "cycles", "compute", "stall", "ext bytes")
		for _, c := range ch.Cores[:used] {
			fmt.Printf("  %4d %14.0f %14.0f %14.0f %12d\n",
				c.ID, c.Cycles(), c.Stats.ComputeCycles, c.Stats.StallCycles,
				c.Stats.ExtReadB+c.Stats.ExtWriteB)
		}
	}
	if *phases {
		fmt.Println("  phase timeline:")
		ch.WritePhaseTable(os.Stdout)
	}
	if *power {
		b := energy.EpiphanyBreakdown(t, ch.Time())
		fmt.Printf("  modeled energy breakdown (avg %.2f W):\n%s", b.AveragePower(ch.Time()), b)
	}
	if strings.HasPrefix(*kernel, "ffbp") {
		fmt.Printf("  (image: %d x %d pixels, %d merge iterations)\n",
			cfg.Params.NumPulses, cfg.Params.NumBins, log2(cfg.Params.NumPulses))
	}
}

// writeTrace dumps the tracer to path as trace_event JSON; a no-op when
// either is unset.
func writeTrace(path string, tr *obs.Tracer) {
	if path == "" || tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteTraceEvent(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if n := tr.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "epirun: trace ring overflow: %d oldest spans dropped\n", n)
	}
}

// writeMetrics dumps a snapshot to path as JSON; a no-op when path is "".
func writeMetrics(path string, snap obs.Snapshot) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func writeSummary(s summary) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		log.Fatal(err)
	}
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
