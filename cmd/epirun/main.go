// Epirun executes the paper's mapped kernels on the simulated machines
// and reports modeled execution time, per-core cycle breakdowns, and
// traffic statistics — the tool for exploring how the implementations
// spend their time.
//
// Usage:
//
//	epirun -kernel ffbp-par                 # 16-core SPMD FFBP
//	epirun -kernel ffbp-par -cores 8
//	epirun -kernel ffbp-seq                 # one Epiphany core
//	epirun -kernel ffbp-intel               # Intel reference model
//	epirun -kernel af-par                   # 13-core autofocus pipeline
//	epirun -kernel af-seq | af-intel
//	epirun -kernel ffbp-par -mesh 8x8 -cores 64
//	epirun -small                           # reduced workload
//	epirun -trace out.json                  # Perfetto/Chrome trace of the run
//	epirun -metrics metrics.json            # metrics-registry snapshot
//	epirun -json                            # machine-readable summary on stdout
//	epirun -check                           # verify run invariants afterwards
//	epirun -faults plan.txt                 # inject a deterministic fault plan
//	epirun -watch                           # live per-core progress on stderr
//	epirun -stallafter 30s                  # watchdog: post-mortem if wedged
//	epirun -deadline 5m                     # post-mortem past the wall budget
//	epirun -ledger ''                       # skip the out/runs run ledger
//	epirun -log-format json                 # structured stderr diagnostics
//
// Every run appends a provenance manifest — parameters, fault plan,
// code version, metric snapshot, modeled energy — to the content-
// addressed run ledger under -ledger (default out/runs; empty
// disables). Query the history with sarlog (list/show/diff/trend).
//
// -watch drives a heartbeat goroutine that samples per-core progress
// (race-free atomic cells, no effect on modeled cycles) and renders a
// live status line. -stallafter and -deadline arm a watchdog on the
// same heartbeat: if the chip stops advancing (or the wall budget
// expires) it dumps the flight-recorder event ring and all goroutine
// stacks to a post-mortem file and the run is marked stalled.
//
// A -faults plan (see internal/fault for the format) degrades the run:
// halted cores have their tile work remapped to live neighbors, faulty
// links retransmit with backoff, DMA engines time out, derated cores run
// slower. The run completes with the overhead priced in cycles and
// energy; -check verifies the fault accounting. When the conformance
// check fails, epirun exits with status 2.
//
// A -trace file loads in ui.perfetto.dev or chrome://tracing: one thread
// per core with compute and stall spans, plus a phase track for SPMD
// kernels.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"strings"
	"time"

	"sarmany/internal/autofocus"
	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/fault"
	"sarmany/internal/kernels"
	"sarmany/internal/logx"
	"sarmany/internal/obs"
	"sarmany/internal/refcpu"
	"sarmany/internal/report"
	"sarmany/internal/sar"
	"sarmany/internal/telemetry"
)

// summary is the -json output: identity, modeled time, and the full
// metrics snapshot of the run.
type summary struct {
	Kernel  string       `json:"kernel"`
	Machine string       `json:"machine"`
	Cores   int          `json:"cores"`
	ClockHz float64      `json:"clock_hz"`
	Cycles  float64      `json:"cycles"`
	Seconds float64      `json:"seconds"`
	Metrics obs.Snapshot `json:"metrics"`
}

// exitConformFail is the pinned exit status for a failed -check pass, so
// scripts can tell a conformance violation from an ordinary usage error
// (status 1).
const exitConformFail = 2

// lg is the tool's structured logger (see internal/logx), built from
// -log-level/-log-format right after flag parsing.
var lg *slog.Logger

func main() {
	log.SetFlags(0)
	log.SetPrefix("epirun: ")

	var (
		kernel  = flag.String("kernel", "ffbp-par", "ffbp-par, ffbp-seq, ffbp-intel, af-par, af-seq, af-intel")
		cores   = flag.Int("cores", 16, "cores for ffbp-par")
		mesh    = flag.String("mesh", "4x4", "Epiphany mesh size RxC")
		small   = flag.Bool("small", false, "reduced workload")
		perCore = flag.Bool("percore", false, "print per-core statistics")
		phases  = flag.Bool("phases", false, "print the per-phase timeline (SPMD kernels)")
		power   = flag.Bool("power", false, "print the modeled energy breakdown")
		traceF  = flag.String("trace", "", "write a Perfetto/Chrome trace_event JSON file")
		traceN  = flag.Int("tracecap", obs.DefaultCapacity, "trace ring capacity in spans per track (oldest dropped beyond)")
		metricF = flag.String("metrics", "", "write a metrics-registry snapshot JSON file")
		jsonOut = flag.Bool("json", false, "print a machine-readable summary instead of tables")
		check   = flag.Bool("check", false, "run the conformance checker on the completed run (Epiphany kernels)")
		faultsF = flag.String("faults", "", "fault plan file to inject (Epiphany kernels)")
		watch   = flag.Bool("watch", false, "live per-core progress line on stderr (Epiphany kernels)")
		heartD  = flag.Duration("heartbeat", 200*time.Millisecond, "flight-recorder sampling interval for -watch/-stallafter/-deadline")
		stallD  = flag.Duration("stallafter", 0, "dump a post-mortem if the chip makes no progress for this long (0 = off)")
		deadlD  = flag.Duration("deadline", 0, "dump a post-mortem when the run exceeds this wall-clock budget (0 = off)")
		pmF     = flag.String("postmortem", "", "post-mortem dump path (default out/postmortem-<pid>.txt)")
		ledgerD = flag.String("ledger", telemetry.DefaultDir, "run-ledger directory; empty disables recording")
	)
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg = logCfg.MustNew("epirun")
	start := time.Now()

	// The run's request-domain trace: one root span covering the whole
	// invocation, with the simulator's cycle-domain tracks spliced in
	// before the ledger entry is sealed — so `sarlog trace @-1` renders
	// simulator runs with the same machinery as served requests.
	runTr := obs.NewReqTrace(obs.NewTraceID())
	runRoot := runTr.StartSpan("epirun")

	cfg := report.Default()
	if *small {
		cfg = report.Small()
	}
	var r, c int
	if _, err := fmt.Sscanf(*mesh, "%dx%d", &r, &c); err != nil || r < 1 || c < 1 {
		log.Fatalf("bad mesh %q", *mesh)
	}
	cfg.Epiphany = cfg.Epiphany.WithMesh(r, c)

	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	pairs := report.AutofocusWorkload(cfg)
	shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)

	switch *kernel {
	case "ffbp-intel", "af-intel":
		if *check {
			log.Fatal("-check verifies the Epiphany model; it does not apply to the Intel reference kernels")
		}
		if *faultsF != "" {
			log.Fatal("-faults injects into the Epiphany model; it does not apply to the Intel reference kernels")
		}
		if *watch || *stallD > 0 || *deadlD > 0 {
			log.Fatal("-watch/-stallafter/-deadline sample the Epiphany chip's progress cells; they do not apply to the Intel reference kernels")
		}
		cpu := refcpu.New(cfg.Intel)
		var tracer *obs.Tracer
		if *traceF != "" {
			tracer = obs.NewTracer(cfg.Intel.Clock)
			tracer.SetCapacity(*traceN)
			cpu.SetTracer(tracer)
		}
		if *kernel == "ffbp-intel" {
			if _, _, err := kernels.SeqFFBP(cpu, cpu.Mem(), data, cfg.Params, cfg.Box); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, err := kernels.SeqAutofocus(cpu, cpu.Mem(), pairs, shifts); err != nil {
				log.Fatal(err)
			}
		}
		writeTrace(*traceF, tracer)
		// Metrics() builds the registry fresh each call, so publish the
		// tracer's span accounting into the one instance we snapshot.
		reg := cpu.Metrics()
		tracer.PublishMetrics(reg)
		snap := reg.Snapshot()
		writeMetrics(*metricF, snap)
		e := ledgerEntry(start, cfg, snap, map[string]any{
			"machine": "intel-i7",
			"cycles":  cpu.Cycles(),
			"seconds": cpu.Seconds(),
		}, runArgs{kernel: *kernel, cores: 1, small: *small})
		sealRunTrace(&e, runTr, runRoot, tracer, start, *kernel, "intel-i7")
		recordRun(*ledgerD, e)
		if *jsonOut {
			writeSummary(summary{Kernel: *kernel, Machine: "intel-i7", Cores: 1,
				ClockHz: cpu.P.Clock, Cycles: cpu.Cycles(), Seconds: cpu.Seconds(),
				Metrics: snap})
			return
		}
		fmt.Printf("%s on Intel i7 model @ %.2f GHz\n", *kernel, cpu.P.Clock/1e9)
		fmt.Printf("  time: %.3f ms (%.0f cycles)\n", cpu.Seconds()*1e3, cpu.Cycles())
		s := cpu.Stats
		fmt.Printf("  ops: %d FMA, %d flop, %d iop, %d div, %d sqrt, %d trig\n",
			s.FMA, s.Flop, s.IOp, s.Div, s.Sqrt, s.Trig)
		total := s.Served[0] + s.Served[1] + s.Served[2] + s.Served[3]
		if total > 0 {
			fmt.Printf("  memory: %d accesses — L1 %.1f%%, L2 %.1f%%, L3 %.1f%%, DRAM %.1f%%\n",
				total,
				100*float64(s.Served[0])/float64(total),
				100*float64(s.Served[1])/float64(total),
				100*float64(s.Served[2])/float64(total),
				100*float64(s.Served[3])/float64(total))
		}
		return
	}

	ch := emu.New(cfg.Epiphany)
	var tracer *obs.Tracer
	if *traceF != "" {
		tracer = obs.NewTracer(cfg.Epiphany.Clock)
		tracer.SetCapacity(*traceN)
		ch.SetTracer(tracer)
	}
	var planText []byte
	var planSeed int64
	if *faultsF != "" {
		plan, err := fault.ParseFile(*faultsF)
		if err != nil {
			log.Fatal(err)
		}
		if len(plan.Halts) > 0 && (*kernel == "ffbp-seq" || *kernel == "af-seq") {
			log.Fatal("the plan halts cores, but sequential kernels run directly on core 0 and cannot remap; use a mapped kernel")
		}
		inj, err := plan.Compile()
		if err != nil {
			log.Fatal(err)
		}
		ch.SetFaults(inj)
		planText, err = os.ReadFile(*faultsF)
		if err != nil {
			log.Fatal(err)
		}
		planSeed = plan.Seed
		lg.Info("fault plan "+*faultsF,
			"halts", len(plan.Halts), "derates", len(plan.Derates),
			"links", len(plan.Links), "dmas", len(plan.DMAs), "seed", plan.Seed)
	}

	// The flight recorder: a heartbeat goroutine sampling the chip's
	// atomic progress cells, driving the -watch status line and the
	// stall/deadline watchdog. Progress publication never changes modeled
	// cycles (see emu/progress.go), so an instrumented run stays
	// cycle-identical to a plain one.
	var rec *telemetry.Recorder
	if *watch || *stallD > 0 || *deadlD > 0 {
		ch.EnableProgress()
		var statusW *os.File
		if *watch {
			statusW = os.Stderr
		}
		ring := obs.NewEventRing(obs.DefaultEventCapacity)
		if tracer != nil {
			ring = tracer.Events()
		}
		ring.Addf("run start: kernel=%s cores=%d mesh=%s", *kernel, *cores, *mesh)
		opts := telemetry.Options{
			Progress: func() telemetry.Sample {
				p, _ := ch.Progress()
				return telemetry.Sample{Total: p.TotalCycles(), Max: p.MaxCycles(), Phases: p.Phases, Cores: p.Cores}
			},
			Events:         ring,
			Interval:       *heartD,
			StallAfter:     *stallD,
			Deadline:       *deadlD,
			PostmortemPath: *pmF,
			OnDump: func(path, reason string) {
				fmt.Fprintln(os.Stderr) // break out of the \r status line
				lg.Warn("post-mortem written", "reason", reason, "path", path)
			},
		}
		if statusW != nil {
			opts.Status = statusW
		}
		rec = telemetry.Start(opts)
	}
	var used int
	switch *kernel {
	case "ffbp-par":
		used = *cores
		if _, _, err := kernels.ParFFBP(ch, *cores, data, cfg.Params, cfg.Box); err != nil {
			log.Fatal(err)
		}
	case "ffbp-seq":
		used = 1
		if _, _, err := kernels.SeqFFBP(ch.Cores[0], ch.Ext(), data, cfg.Params, cfg.Box); err != nil {
			log.Fatal(err)
		}
	case "af-par":
		used = 13
		if _, err := kernels.ParAutofocus(ch, pairs, shifts); err != nil {
			log.Fatal(err)
		}
	case "af-seq":
		used = 1
		if _, err := kernels.SeqAutofocus(ch.Cores[0], ch.Ext(), pairs, shifts); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	if rec != nil {
		rec.Stop()
	}

	// EPIRUN_TAMPER corrupts one cycle counter before -check runs: the
	// test suite's way to pin the conformance-failure exit status without
	// a real accounting bug to trip over.
	if os.Getenv("EPIRUN_TAMPER") != "" {
		ch.Cores[0].Stats.ComputeCycles++
	}
	if *check {
		if rep := conform.CheckAll(ch); !rep.OK() {
			log.Println(rep.Err())
			os.Exit(exitConformFail)
		}
		lg.Info("conformance check passed")
	}

	writeTrace(*traceF, tracer)
	// Metrics() builds the registry fresh each call, so publish the
	// tracer's span accounting into the one instance we snapshot. Energy
	// gauges ride along so the ledger diff covers nanojoules as well as
	// cycles.
	reg := ch.Metrics()
	tracer.PublishMetrics(reg)
	// The chip's makespan, named so "sarlog trend metrics.emu.cycles.total"
	// works out of the box.
	reg.Gauge("emu.cycles.total").Set(ch.MaxCycles())
	eb := energy.EpiphanyBreakdown(ch.TotalStats(), ch.Time())
	reg.Gauge("energy.total_j").Set(eb.Total())
	reg.Gauge("energy.compute_j").Set(eb.ComputeJ)
	reg.Gauge("energy.local_mem_j").Set(eb.LocalMemJ)
	reg.Gauge("energy.noc_j").Set(eb.NoCJ)
	reg.Gauge("energy.elink_j").Set(eb.ELinkJ)
	reg.Gauge("energy.static_j").Set(eb.StaticJ)
	reg.Gauge("energy.avg_w").Set(eb.AveragePower(ch.Time()))
	snap := reg.Snapshot()
	writeMetrics(*metricF, snap)

	machine := fmt.Sprintf("epiphany-%dx%d", cfg.Epiphany.Rows, cfg.Epiphany.Cols)
	extra := map[string]any{
		"machine": machine,
		"cycles":  ch.MaxCycles(),
		"seconds": ch.Time(),
	}
	if rec != nil && rec.Stalled() {
		extra["stalled"] = true
		extra["postmortem"] = rec.PostmortemFile()
	}
	e := ledgerEntry(start, cfg, snap, extra, runArgs{kernel: *kernel, cores: used, mesh: *mesh, small: *small})
	if planText != nil {
		planDoc, err := json.Marshal(string(planText))
		if err != nil {
			log.Fatal(err)
		}
		e.FaultPlan = planDoc
		e.FaultHash = telemetry.HashJSON(planText)
		e.Seed = planSeed
	}
	sealRunTrace(&e, runTr, runRoot, tracer, start, *kernel, machine)
	recordRun(*ledgerD, e)

	if *jsonOut {
		writeSummary(summary{Kernel: *kernel,
			Machine: machine,
			Cores:   used, ClockHz: cfg.Epiphany.Clock,
			Cycles: ch.MaxCycles(), Seconds: ch.Time(),
			Metrics: snap})
		return
	}

	fmt.Printf("%s on Epiphany %dx%d @ %.1f GHz, %d cores used\n",
		*kernel, cfg.Epiphany.Rows, cfg.Epiphany.Cols, cfg.Epiphany.Clock/1e9, used)
	fmt.Printf("  time: %.3f ms (%.0f cycles)\n", ch.Time()*1e3, ch.MaxCycles())
	t := ch.TotalStats()
	fmt.Printf("  ops: %d FMA, %d flop, %d iop, %d div, %d sqrt, %d trig\n",
		t.FMA, t.Flop, t.IOp, t.Div, t.Sqrt, t.Trig)
	fmt.Printf("  local: %d loads, %d stores; remote: %d reads, %d writes (%d NoC bytes)\n",
		t.LocalLoads, t.LocalStores, t.RemoteReads, t.RemoteWrites, t.NoCBytes)
	fmt.Printf("  off-chip: %d reads (%d B), %d writes (%d B); %d DMA transfers (%d B)\n",
		t.ExtReads, t.ExtReadB, t.ExtWrites, t.ExtWriteB, t.DMATransfers, t.DMABytes)
	fmt.Printf("  cycles: %.0f compute, %.0f stalled\n", t.ComputeCycles, t.StallCycles)
	if inj := ch.Faults(); inj != nil && !inj.Empty() {
		fmt.Printf("  faults: %d link retries (%d B), %d dma retries, %.0f derate cycles, %d remapped slot(s), %d halted core(s)\n",
			t.LinkRetries, t.RetryBytes, t.DMARetries, t.DerateCycles,
			len(ch.Remaps()), len(inj.HaltedCores()))
	}

	if *perCore {
		fmt.Printf("  %4s %14s %14s %14s %12s\n", "core", "cycles", "compute", "stall", "ext bytes")
		for _, c := range ch.Cores[:used] {
			fmt.Printf("  %4d %14.0f %14.0f %14.0f %12d\n",
				c.ID, c.Cycles(), c.Stats.ComputeCycles, c.Stats.StallCycles,
				c.Stats.ExtReadB+c.Stats.ExtWriteB)
		}
	}
	if *phases {
		fmt.Println("  phase timeline:")
		ch.WritePhaseTable(os.Stdout)
	}
	if *power {
		b := energy.EpiphanyBreakdown(t, ch.Time())
		fmt.Printf("  modeled energy breakdown (avg %.2f W):\n%s", b.AveragePower(ch.Time()), b)
	}
	if strings.HasPrefix(*kernel, "ffbp") {
		fmt.Printf("  (image: %d x %d pixels, %d merge iterations)\n",
			cfg.Params.NumPulses, cfg.Params.NumBins, log2(cfg.Params.NumPulses))
	}
}

// writeTrace dumps the tracer to path as trace_event JSON; a no-op when
// either is unset.
func writeTrace(path string, tr *obs.Tracer) {
	if path == "" || tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteTraceEvent(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if n := tr.Dropped(); n > 0 {
		lg.Warn("trace ring overflow", "dropped", n)
	}
}

// sealRunTrace closes the run's root span, splices the simulator trace
// under it (cycle domain converted to wall clock, anchored at the run
// start) and embeds the resulting span tree plus trace ID in the ledger
// entry. All trace leaves are advisory under ledger-diff semantics, so
// identical runs still agree exactly.
func sealRunTrace(e *telemetry.Entry, rt *obs.ReqTrace, root *obs.ReqSpan, sim *obs.Tracer, base time.Time, kernel, machine string) {
	root.SetAttr("kernel", kernel)
	root.SetAttr("machine", machine)
	root.AttachSim(sim, base)
	root.End()
	e.TraceID = rt.TraceID().String()
	if raw, err := json.Marshal(rt.Doc()); err == nil {
		e.Trace = raw
	}
}

// writeMetrics dumps a snapshot to path as JSON; a no-op when path is "".
func writeMetrics(path string, snap obs.Snapshot) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func writeSummary(s summary) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		log.Fatal(err)
	}
}

// runArgs carries the flag identity of a run for the ledger manifest.
type runArgs struct {
	kernel string
	cores  int
	mesh   string
	small  bool
}

// ledgerEntry assembles the provenance manifest of one run: the full
// parameter document (hashed for identity), code version, host shape,
// the metric snapshot in named-leaf form, and tool-specific extras.
func ledgerEntry(start time.Time, cfg report.Config, snap obs.Snapshot, extra map[string]any, a runArgs) telemetry.Entry {
	args := []string{
		"kernel=" + a.kernel,
		fmt.Sprintf("cores=%d", a.cores),
		fmt.Sprintf("small=%v", a.small),
	}
	if a.mesh != "" {
		args = append(args, "mesh="+a.mesh)
	}
	e, err := telemetry.NewEntry("epirun", start, map[string]any{
		"kernel": a.kernel,
		"cores":  a.cores,
		"mesh":   a.mesh,
		"small":  a.small,
		"params": cfg.Params,
	}, args...)
	if err != nil {
		log.Fatal(err)
	}
	e.Metrics = telemetry.MetricsMap(snap)
	e.Extra = extra
	return e
}

// recordRun appends the entry to the run ledger; -ledger ” disables.
// Ledger failures warn rather than fail the run — observability must
// never break the simulation it observes.
func recordRun(dir string, e telemetry.Entry) {
	id, err := telemetry.Record(dir, e)
	if err != nil {
		lg.Warn("ledger append failed", "err", err)
		return
	}
	if id != "" {
		lg.Info(fmt.Sprintf("run %s recorded in %s", id, dir), "run_id", id, "trace_id", e.TraceID)
	}
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
