package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test re-execute this binary as epirun itself: when
// EPIRUN_RUN_MAIN is set the process runs main() with the test binary's
// arguments instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("EPIRUN_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writePlan stores a small but non-trivial fault plan: a certain-to-fire
// link fault, a DMA fault, a derate and a halted core.
func writePlan(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.txt")
	plan := `seed 7
halt 15
derate 1 1.5
link 0 1 1 timeout 100 backoff 10 retries 2
dma * 0.5 timeout 50 retries 1
`
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runEpirun re-executes the test binary as epirun and returns its exit
// code and combined output.
func runEpirun(t *testing.T, tamper bool, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EPIRUN_RUN_MAIN=1")
	if tamper {
		cmd.Env = append(cmd.Env, "EPIRUN_TAMPER=1")
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestCheckPassesOnFaultedRun is the positive gate: a faulted, degraded
// FFBP run must still pass -check and exit 0.
func TestCheckPassesOnFaultedRun(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-par", "-small", "-check", "-faults", writePlan(t))
	if code != 0 {
		t.Fatalf("exit %d; want 0\n%s", code, out)
	}
	if !strings.Contains(out, "conformance check passed") {
		t.Fatalf("no conformance confirmation in output:\n%s", out)
	}
	if !strings.Contains(out, "remapped slot(s)") {
		t.Fatalf("no fault summary in output:\n%s", out)
	}
}

// TestCheckExitCodeOnConformanceFailure pins the exit status contract:
// when the conformance checker rejects a faulted run, epirun must exit
// with status 2 (not 1, the generic usage-error status) so automation can
// tell model bugs from bad invocations.
func TestCheckExitCodeOnConformanceFailure(t *testing.T) {
	code, out := runEpirun(t, true,
		"-kernel", "ffbp-par", "-small", "-check", "-faults", writePlan(t))
	if code != exitConformFail {
		t.Fatalf("exit %d; want %d (pinned conformance-failure status)\n%s",
			code, exitConformFail, out)
	}
	if !strings.Contains(out, "invariant violation") {
		t.Fatalf("failure output does not name the violation:\n%s", out)
	}
}

// TestFaultsRejectedForIntelKernels verifies the guard: fault plans only
// apply to the Epiphany model.
func TestFaultsRejectedForIntelKernels(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-intel", "-small", "-faults", writePlan(t))
	if code != 1 {
		t.Fatalf("exit %d; want 1\n%s", code, out)
	}
	if !strings.Contains(out, "Intel reference kernels") {
		t.Fatalf("unexpected error output:\n%s", out)
	}
}

// TestFaultsHaltRejectedForSeqKernels verifies that halts are refused for
// kernels that cannot remap work off a dead core.
func TestFaultsHaltRejectedForSeqKernels(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-seq", "-small", "-faults", writePlan(t))
	if code != 1 {
		t.Fatalf("exit %d; want 1\n%s", code, out)
	}
	if !strings.Contains(out, "cannot remap") {
		t.Fatalf("unexpected error output:\n%s", out)
	}
}
