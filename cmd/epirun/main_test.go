package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sarmany/internal/bench"
	"sarmany/internal/telemetry"
)

// TestMain lets the test re-execute this binary as epirun itself: when
// EPIRUN_RUN_MAIN is set the process runs main() with the test binary's
// arguments instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("EPIRUN_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writePlan stores a small but non-trivial fault plan: a certain-to-fire
// link fault, a DMA fault, a derate and a halted core.
func writePlan(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.txt")
	plan := `seed 7
halt 15
derate 1 1.5
link 0 1 1 timeout 100 backoff 10 retries 2
dma * 0.5 timeout 50 retries 1
`
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runEpirun re-executes the test binary as epirun and returns its exit
// code and combined output. A throwaway -ledger directory is injected
// first so tests never write into the repo's out/runs; later -ledger
// occurrences in args still win (flag.Parse keeps the last value).
func runEpirun(t *testing.T, tamper bool, args ...string) (int, string) {
	t.Helper()
	args = append([]string{"-ledger", t.TempDir()}, args...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EPIRUN_RUN_MAIN=1")
	if tamper {
		cmd.Env = append(cmd.Env, "EPIRUN_TAMPER=1")
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestCheckPassesOnFaultedRun is the positive gate: a faulted, degraded
// FFBP run must still pass -check and exit 0.
func TestCheckPassesOnFaultedRun(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-par", "-small", "-check", "-faults", writePlan(t))
	if code != 0 {
		t.Fatalf("exit %d; want 0\n%s", code, out)
	}
	if !strings.Contains(out, "conformance check passed") {
		t.Fatalf("no conformance confirmation in output:\n%s", out)
	}
	if !strings.Contains(out, "remapped slot(s)") {
		t.Fatalf("no fault summary in output:\n%s", out)
	}
}

// TestCheckExitCodeOnConformanceFailure pins the exit status contract:
// when the conformance checker rejects a faulted run, epirun must exit
// with status 2 (not 1, the generic usage-error status) so automation can
// tell model bugs from bad invocations.
func TestCheckExitCodeOnConformanceFailure(t *testing.T) {
	code, out := runEpirun(t, true,
		"-kernel", "ffbp-par", "-small", "-check", "-faults", writePlan(t))
	if code != exitConformFail {
		t.Fatalf("exit %d; want %d (pinned conformance-failure status)\n%s",
			code, exitConformFail, out)
	}
	if !strings.Contains(out, "invariant violation") {
		t.Fatalf("failure output does not name the violation:\n%s", out)
	}
}

// TestFaultsRejectedForIntelKernels verifies the guard: fault plans only
// apply to the Epiphany model.
func TestFaultsRejectedForIntelKernels(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-intel", "-small", "-faults", writePlan(t))
	if code != 1 {
		t.Fatalf("exit %d; want 1\n%s", code, out)
	}
	if !strings.Contains(out, "Intel reference kernels") {
		t.Fatalf("unexpected error output:\n%s", out)
	}
}

// TestLedgerIdenticalRunsAgree is the acceptance contract for the run
// ledger: two epirun invocations with identical parameters record
// entries whose cycle and energy leaves agree exactly — zero
// non-advisory delta under ledger-diff semantics.
func TestLedgerIdenticalRunsAgree(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	for i := 0; i < 2; i++ {
		code, out := runEpirun(t, false,
			"-kernel", "ffbp-par", "-small", "-ledger", dir)
		if code != 0 {
			t.Fatalf("run %d exit %d:\n%s", i, code, out)
		}
		if !strings.Contains(out, "recorded in "+dir) {
			t.Fatalf("run %d did not report a ledger record:\n%s", i, out)
		}
	}
	entries, err := telemetry.Open(dir).List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("ledger holds %d entries, want 2", len(entries))
	}
	a, b := entries[0], entries[1]
	if a.Tool != "epirun" || a.Salt == "" || a.ConfigHash == "" {
		t.Errorf("entry missing provenance: tool=%q salt=%q confighash=%q",
			a.Tool, a.Salt, a.ConfigHash)
	}
	if a.ConfigHash != b.ConfigHash {
		t.Errorf("identical invocations hashed configs %s vs %s", a.ConfigHash, b.ConfigHash)
	}
	findings, err := telemetry.DiffEntries(a, b, bench.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := bench.Regressions(findings); n != 0 {
		t.Errorf("identical runs diverged on %d non-advisory leaves:", n)
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}
	if len(findings) == 0 {
		t.Error("delta table empty — advisory id/start rows should always differ")
	}
	if v, ok := telemetry.LeafValue(a, "metrics.emu.cycles.total"); !ok || v <= 0 {
		t.Errorf("metrics.emu.cycles.total = %v, %v", v, ok)
	}
	if v, ok := telemetry.LeafValue(a, "metrics.energy.total_j"); !ok || v <= 0 {
		t.Errorf("metrics.energy.total_j = %v, %v", v, ok)
	}
}

// TestLedgerAttributesChangedParam pins the other half of the
// acceptance contract: changing a parameter produces a non-zero delta
// attributed to the config leaf and the cycle counters.
func TestLedgerAttributesChangedParam(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	for _, cores := range []string{"16", "4"} {
		if code, out := runEpirun(t, false,
			"-kernel", "ffbp-par", "-small", "-cores", cores, "-ledger", dir); code != 0 {
			t.Fatalf("cores=%s exit %d:\n%s", cores, code, out)
		}
	}
	entries, err := telemetry.Open(dir).List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("entries=%d err=%v", len(entries), err)
	}
	findings, err := telemetry.DiffEntries(entries[0], entries[1], bench.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bench.Regressions(findings) == 0 {
		t.Fatal("changed -cores produced no non-advisory delta")
	}
	text := ""
	for _, f := range findings {
		text += f.String() + "\n"
	}
	for _, want := range []string{"config.cores", "metrics.emu.cycles.total"} {
		if !strings.Contains(text, want) {
			t.Errorf("delta not attributed to %s:\n%s", want, text)
		}
	}
}

// TestLedgerDisabled checks that -ledger "" turns recording off.
func TestLedgerDisabled(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-par", "-small", "-ledger", "")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if strings.Contains(out, "recorded in") {
		t.Fatalf("-ledger \"\" still recorded a run:\n%s", out)
	}
}

// TestWatchLiveStatus drives the flight recorder's live display: with
// -watch and a fast heartbeat the run prints carriage-return status
// lines with per-core progress.
func TestWatchLiveStatus(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-par", "-watch", "-heartbeat", "1ms")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "\r") || !strings.Contains(out, "cores moving") {
		t.Fatalf("no live status line in -watch output:\n%s", out)
	}
}

// TestDeadlinePostmortem wedges a run against an impossible wall-clock
// budget and checks the watchdog dumps a post-mortem with the event
// ring and goroutine stacks, and that the ledger entry is marked
// stalled.
func TestDeadlinePostmortem(t *testing.T) {
	dir := t.TempDir()
	pm := filepath.Join(dir, "postmortem.txt")
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-par", "-ledger", filepath.Join(dir, "runs"),
		"-heartbeat", "1ms", "-deadline", "1ns", "-postmortem", pm)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "post-mortem") {
		t.Fatalf("watchdog did not announce the dump:\n%s", out)
	}
	data, err := os.ReadFile(pm)
	if err != nil {
		t.Fatalf("post-mortem file: %v", err)
	}
	text := string(data)
	for _, want := range []string{"deadline", "goroutine ", "run start"} {
		if !strings.Contains(text, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, text)
		}
	}
	entries, err := telemetry.Open(filepath.Join(dir, "runs")).List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries=%d err=%v", len(entries), err)
	}
	if entries[0].Extra["stalled"] != true {
		t.Errorf("ledger entry not marked stalled: %v", entries[0].Extra)
	}
}

// TestFaultsHaltRejectedForSeqKernels verifies that halts are refused for
// kernels that cannot remap work off a dead core.
func TestFaultsHaltRejectedForSeqKernels(t *testing.T) {
	code, out := runEpirun(t, false,
		"-kernel", "ffbp-seq", "-small", "-faults", writePlan(t))
	if code != 1 {
		t.Fatalf("exit %d; want 1\n%s", code, out)
	}
	if !strings.Contains(out, "cannot remap") {
		t.Fatalf("unexpected error output:\n%s", out)
	}
}
