// Sarsim generates synthetic pulse-compressed stripmap SAR data — the
// input of the back-projection stage (paper Fig. 7a). The scene is either
// the paper's six-point-target validation scenario or a custom target list
// given as "u,y,amp;u,y,amp;...". An optional sinusoidal flight-path error
// can be injected for autofocus experiments.
//
// Usage:
//
//	sarsim -o data.sar                        # paper-scale six-target scene
//	sarsim -pulses 256 -bins 241 -o data.sar  # reduced geometry
//	sarsim -targets "0,2250,1;-120,2190,0.7" -o data.sar
//	sarsim -patherr-amp 1.5 -patherr-period 400 -o data.sar
//	sarsim -o data.sar -png raw.png           # also render the raw data
//	sarsim -o data.sar -json                  # print dataset metadata as JSON
//	sarsim -j 8 -o data.sar                   # synthesize pulses on 8 workers
//	sarsim -cache-dir .sarcache -o data.sar   # reuse a previously built dataset
//
// -j fans the per-pulse synthesis across a worker pool (the output is
// bit-identical for any worker count). -cache-dir keys the finished
// dataset by a content address of every generation parameter, so
// repeating an invocation copies the cached file instead of resimulating.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"time"

	"sarmany/internal/dataio"
	"sarmany/internal/imageio"
	"sarmany/internal/logx"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
	"sarmany/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarsim: ")

	var (
		out      = flag.String("o", "data.sar", "output data file")
		pngOut   = flag.String("png", "", "optional PNG rendering of the raw data")
		pulses   = flag.Int("pulses", 0, "number of pulses (default: paper's 1024)")
		bins     = flag.Int("bins", 0, "range bins per pulse (default: paper's 1001)")
		r0       = flag.Float64("r0", 0, "near range of bin 0 in metres (default 2000)")
		targets  = flag.String("targets", "", `scene as "u,y,amp;..." (default: six-target scene)`)
		peAmp    = flag.Float64("patherr-amp", 0, "flight-path error amplitude (m)")
		pePer    = flag.Float64("patherr-period", 500, "flight-path error period (m)")
		chirp    = flag.Bool("chirp", false, "synthesize raw chirp echoes and pulse-compress them (slower) instead of direct synthesis")
		noise    = flag.Float64("noise", 0, "complex Gaussian noise deviation per sample")
		rfi      = flag.Float64("rfi", 0, "narrowband interference amplitude (0 = none)")
		rfiFreq  = flag.Float64("rfi-freq", 0.21, "interference frequency (cycles/sample)")
		notch    = flag.Float64("notch", 0, "notch-filter threshold (0 = no filtering; typical 4-8)")
		jsonOut  = flag.Bool("json", false, "print dataset metadata as JSON instead of text")
		workers  = flag.Int("j", 0, "pulse-synthesis workers (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "dataset cache directory (empty = no caching)")
		ledgerD  = flag.String("ledger", telemetry.DefaultDir, "run-ledger directory; empty disables recording")
	)
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg := logCfg.MustNew("sarsim")
	start := time.Now()

	p := sar.DefaultParams()
	if *pulses > 0 {
		p.NumPulses = *pulses
	}
	if *bins > 0 {
		p.NumBins = *bins
	}
	if *r0 > 0 {
		p.R0 = *r0
	}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	scene := sar.SixTargetScene(p)
	if *targets != "" {
		var err error
		scene, err = parseTargets(*targets)
		if err != nil {
			log.Fatal(err)
		}
	}

	var pathErr sar.PathError
	if *peAmp != 0 {
		amp, period := *peAmp, *pePer
		pathErr = func(u float64) float64 {
			return amp * math.Sin(2*math.Pi*u/period)
		}
	}

	// The cache key covers every parameter that shapes the dataset bytes;
	// -j deliberately stays out (synthesis is bit-identical per worker
	// count), as do output paths.
	key := ""
	if *cacheDir != "" {
		key = datasetKey(p, scene, *peAmp, *pePer, *chirp, *noise, *rfi, *rfiFreq, *notch)
	}

	var data *mat.C
	notched := 0
	cached := false
	if key != "" {
		if d, n, ok := loadCachedDataset(*cacheDir, key); ok {
			data, notched, cached = d, n, true
		}
	}
	if data == nil {
		if *chirp {
			ch := p.DefaultChirp()
			raw := sar.SimulateRawPar(p, ch, scene, pathErr, *workers)
			data = sar.Compress(p, ch, raw)
		} else {
			data = sar.SimulatePar(p, scene, pathErr, *workers)
		}
		if *rfi != 0 {
			sar.InjectRFI(data, *rfiFreq, float32(*rfi), 0.7)
		}
		if *noise > 0 {
			sar.AddNoise(data, *noise, 1)
		}
		if *notch > 0 {
			n, err := sar.NotchFilter(data, *notch)
			if err != nil {
				log.Fatal(err)
			}
			notched = n
		}
	}
	if *notch > 0 && !*jsonOut {
		fmt.Printf("notch filter excised %d spectral bins\n", notched)
	}

	if err := dataio.WriteFile(*out, p, data); err != nil {
		log.Fatal(err)
	}
	if key != "" && !cached {
		if err := storeCachedDataset(*cacheDir, key, p, data, notched); err != nil {
			log.Printf("cache store failed: %v", err)
		}
	}

	if *pngOut != "" {
		if err := imageio.Save(*pngOut, data, 50); err != nil {
			log.Fatal(err)
		}
	}

	// Record the generated dataset in the run ledger. The data_sha256
	// extra hashes the written file, so two sarsim runs with the same
	// parameters can prove bit-identical output via sarlog diff.
	if *ledgerD != "" {
		e, lerr := telemetry.NewEntry("sarsim", start, map[string]any{
			"params":         p,
			"targets":        scene,
			"patherr_amp":    *peAmp,
			"patherr_period": *pePer,
			"chirp":          *chirp,
			"noise":          *noise,
			"rfi":            *rfi,
			"rfi_freq":       *rfiFreq,
			"notch":          *notch,
		}, fmt.Sprintf("pulses=%d", p.NumPulses), fmt.Sprintf("bins=%d", p.NumBins))
		if lerr != nil {
			log.Printf("ledger: %v", lerr)
		} else {
			e.Extra = map[string]any{
				"file":         *out,
				"notched_bins": notched,
				"cached":       cached,
			}
			if b, rerr := os.ReadFile(*out); rerr == nil {
				sum := sha256.Sum256(b)
				e.Extra["data_sha256"] = hex.EncodeToString(sum[:])
			}
			if id, lerr := telemetry.Record(*ledgerD, e); lerr != nil {
				lg.Warn("ledger append failed", "err", lerr)
			} else {
				lg.Info(fmt.Sprintf("run %s recorded in %s", id, *ledgerD), "run_id", id)
			}
		}
	}

	if *jsonOut {
		meta := struct {
			File         string       `json:"file"`
			PNG          string       `json:"png,omitempty"`
			Pulses       int          `json:"pulses"`
			Bins         int          `json:"bins"`
			R0           float64      `json:"r0_m"`
			DR           float64      `json:"dr_m"`
			PulseSpacing float64      `json:"pulse_spacing_m"`
			Aperture     float64      `json:"aperture_m"`
			Targets      []sar.Target `json:"targets"`
			Chirp        bool         `json:"chirp"`
			PathErrAmp   float64      `json:"patherr_amp_m"`
			Noise        float64      `json:"noise"`
			NotchedBins  int          `json:"notched_bins,omitempty"`
		}{
			File: *out, PNG: *pngOut,
			Pulses: p.NumPulses, Bins: p.NumBins,
			R0: p.R0, DR: p.DR, PulseSpacing: p.PulseSpacing, Aperture: p.ApertureLength(),
			Targets: scene, Chirp: *chirp,
			PathErrAmp: *peAmp, Noise: *noise, NotchedBins: notched,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(meta); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("wrote %s: %d pulses x %d bins, %d targets\n", *out, p.NumPulses, p.NumBins, len(scene))
	if *pngOut != "" {
		fmt.Printf("wrote %s\n", *pngOut)
	}
}

// datasetKey content-addresses a dataset: a SHA-256 over the canonical
// JSON of every generation parameter. encoding/json marshals struct
// fields in declaration order, so equal parameter sets hash equally.
// The "v1" salt invalidates old entries if the synthesis code changes.
func datasetKey(p sar.Params, scene []sar.Target, peAmp, pePer float64, chirp bool, noise, rfi, rfiFreq, notch float64) string {
	b, err := json.Marshal(struct {
		Salt    string       `json:"salt"`
		Params  sar.Params   `json:"params"`
		Scene   []sar.Target `json:"scene"`
		PEAmp   float64      `json:"patherr_amp"`
		PEPer   float64      `json:"patherr_period"`
		Chirp   bool         `json:"chirp"`
		Noise   float64      `json:"noise"`
		RFI     float64      `json:"rfi"`
		RFIFreq float64      `json:"rfi_freq"`
		Notch   float64      `json:"notch"`
	}{"sarsim-v1", p, scene, peAmp, pePer, chirp, noise, rfi, rfiFreq, notch})
	if err != nil {
		log.Fatal(err) // plain-data structs; cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// cacheMeta is the sidecar record stored next to a cached dataset for
// byproducts that are not part of the .sar bytes.
type cacheMeta struct {
	NotchedBins int `json:"notched_bins"`
}

func cachePaths(dir, key string) (dataPath, metaPath string) {
	base := filepath.Join(dir, "sarsim-"+key)
	return base + ".sar", base + ".json"
}

// loadCachedDataset returns the cached dataset and its notched-bins
// count, or ok=false on any miss (absent, unreadable, or corrupt — the
// rerun overwrites it).
func loadCachedDataset(dir, key string) (*mat.C, int, bool) {
	dataPath, metaPath := cachePaths(dir, key)
	_, data, err := dataio.ReadFile(dataPath)
	if err != nil {
		return nil, 0, false
	}
	var meta cacheMeta
	mb, err := os.ReadFile(metaPath)
	if err != nil || json.Unmarshal(mb, &meta) != nil {
		return nil, 0, false
	}
	return data, meta.NotchedBins, true
}

// storeCachedDataset writes the dataset and its sidecar meta into the
// cache. The meta file lands last so a reader that sees it can rely on
// the dataset being complete.
func storeCachedDataset(dir, key string, p sar.Params, data *mat.C, notched int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dataPath, metaPath := cachePaths(dir, key)
	if err := dataio.WriteFile(dataPath, p, data); err != nil {
		return err
	}
	mb, err := json.Marshal(cacheMeta{NotchedBins: notched})
	if err != nil {
		return err
	}
	return os.WriteFile(metaPath, mb, 0o644)
}

func parseTargets(s string) ([]sar.Target, error) {
	var out []sar.Target
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ",")
		if len(f) != 3 {
			return nil, fmt.Errorf("target %q: want u,y,amp", part)
		}
		u, err1 := strconv.ParseFloat(strings.TrimSpace(f[0]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(f[1]), 64)
		a, err3 := strconv.ParseFloat(strings.TrimSpace(f[2]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("target %q: parse error", part)
		}
		out = append(out, sar.Target{U: u, Y: y, Amp: float32(a)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no targets in %q", s)
	}
	return out, nil
}
