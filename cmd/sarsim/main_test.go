package main

import "testing"

func TestParseTargets(t *testing.T) {
	ts, err := parseTargets("0,2250,1; -120 , 2190 , 0.7 ;120,2310,0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("%d targets", len(ts))
	}
	if ts[0].U != 0 || ts[0].Y != 2250 || ts[0].Amp != 1 {
		t.Errorf("target 0: %+v", ts[0])
	}
	if ts[1].U != -120 || ts[1].Y != 2190 || ts[1].Amp != 0.7 {
		t.Errorf("target 1: %+v", ts[1])
	}
}

func TestParseTargetsTrailingSeparator(t *testing.T) {
	ts, err := parseTargets("1,2,3;")
	if err != nil || len(ts) != 1 {
		t.Errorf("trailing separator: %v %v", ts, err)
	}
}

func TestParseTargetsErrors(t *testing.T) {
	for _, s := range []string{"", ";;", "1,2", "a,b,c", "1,2,3,4"} {
		if _, err := parseTargets(s); err == nil {
			t.Errorf("%q accepted", s)
		}
	}
}
