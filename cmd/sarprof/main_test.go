package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test re-execute this binary as sarprof itself: when
// SARPROF_RUN_MAIN is set the process runs main() with the test binary's
// arguments instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("SARPROF_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSarprof re-executes the test binary as sarprof and returns its exit
// code and combined output. A throwaway -ledger directory is injected
// first so tests never write into the repo's out/runs; later -ledger
// occurrences in args still win (flag.Parse keeps the last value).
func runSarprof(t *testing.T, tamper bool, args ...string) (int, string) {
	t.Helper()
	args = append([]string{"-ledger", t.TempDir()}, args...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SARPROF_RUN_MAIN=1")
	if tamper {
		cmd.Env = append(cmd.Env, "SARPROF_TAMPER=1")
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return ee.ExitCode(), string(out)
}

func writePlan(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.txt")
	plan := "seed 11\nhalt 3\nderate 1 2\ndma * 0.5 timeout 50 retries 1\n"
	if err := os.WriteFile(path, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestProfileFaultedRun verifies a degraded run profiles cleanly under
// -check and reports the fault degradation section.
func TestProfileFaultedRun(t *testing.T) {
	code, out := runSarprof(t, false,
		"-kernel", "ffbp-par", "-small", "-check", "-faults", writePlan(t))
	if code != 0 {
		t.Fatalf("exit %d; want 0\n%s", code, out)
	}
	if !strings.Contains(out, "conformance check passed") {
		t.Fatalf("no conformance confirmation in output:\n%s", out)
	}
	if !strings.Contains(out, "fault degradation") {
		t.Fatalf("no degradation section in report:\n%s", out)
	}
}

// TestCheckExitCodeOnConformanceFailure pins the exit status contract:
// a conformance failure on a faulted run must exit with status 2.
func TestCheckExitCodeOnConformanceFailure(t *testing.T) {
	code, out := runSarprof(t, true,
		"-kernel", "ffbp-par", "-small", "-check", "-faults", writePlan(t))
	if code != exitConformFail {
		t.Fatalf("exit %d; want %d (pinned conformance-failure status)\n%s",
			code, exitConformFail, out)
	}
	if !strings.Contains(out, "invariant violation") {
		t.Fatalf("failure output does not name the violation:\n%s", out)
	}
}
