// Sarprof runs one traced kernel on the simulated Epiphany and analyzes
// the trace with internal/profile: critical-path extraction with
// per-cause stall attribution, per-phase energy attribution against the
// power model, a roofline classification of every barrier phase, and a
// mesh heatmap of core utilization and link traffic.
//
// Usage:
//
//	sarprof -kernel ffbp-par                  # profile the 16-core FFBP
//	sarprof -kernel ffbp-par -cores 8 -small
//	sarprof -kernel af-par                    # the 13-core autofocus pipeline
//	sarprof -kernel ffbp-seq
//	sarprof -kernel ffbp-par -mesh 8x8 -cores 64
//	sarprof -html profile.html                # self-contained HTML report
//	sarprof -json profile.json                # machine-readable profile
//	sarprof -tracecap 262144                  # larger span rings
//	sarprof -check                            # verify run invariants first
//	sarprof -faults plan.txt                  # profile a degraded run
//
// A -faults plan (see internal/fault) degrades the run before profiling;
// the report then includes the fault degradation section with per-target
// retry, derate and remap costs. When -check fails, sarprof exits with
// status 2.
//
// The text report always goes to stdout. Only Epiphany kernels can be
// profiled: the analyzer consumes the chip's span tracks, dependency
// edges and phase records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"time"

	"sarmany/internal/autofocus"
	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/fault"
	"sarmany/internal/kernels"
	"sarmany/internal/logx"
	"sarmany/internal/obs"
	"sarmany/internal/profile"
	"sarmany/internal/report"
	"sarmany/internal/sar"
	"sarmany/internal/telemetry"
)

// exitConformFail is the pinned exit status for a failed -check pass, so
// scripts can tell a conformance violation from an ordinary usage error
// (status 1).
const exitConformFail = 2

// lg is the tool's structured logger (see internal/logx), built from
// -log-level/-log-format right after flag parsing.
var lg *slog.Logger

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarprof: ")

	var (
		kernel  = flag.String("kernel", "ffbp-par", "ffbp-par, ffbp-seq, af-par, af-seq")
		cores   = flag.Int("cores", 16, "cores for ffbp-par")
		mesh    = flag.String("mesh", "4x4", "Epiphany mesh size RxC")
		small   = flag.Bool("small", false, "reduced workload")
		traceN  = flag.Int("tracecap", obs.DefaultCapacity, "trace ring capacity in spans per track")
		htmlF   = flag.String("html", "", "also write a self-contained HTML report")
		jsonF   = flag.String("json", "", "also write the profile as JSON")
		check   = flag.Bool("check", false, "run the conformance checker on the completed run")
		faultF  = flag.String("faults", "", "fault plan file to inject before the run")
		ledgerD = flag.String("ledger", telemetry.DefaultDir, "run-ledger directory; empty disables recording")
	)
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	lg = logCfg.MustNew("sarprof")
	start := time.Now()

	cfg := report.Default()
	if *small {
		cfg = report.Small()
	}
	var r, c int
	if _, err := fmt.Sscanf(*mesh, "%dx%d", &r, &c); err != nil || r < 1 || c < 1 {
		log.Fatalf("bad mesh %q", *mesh)
	}
	cfg.Epiphany = cfg.Epiphany.WithMesh(r, c)

	ch := emu.New(cfg.Epiphany)
	tracer := obs.NewTracer(cfg.Epiphany.Clock)
	tracer.SetCapacity(*traceN)
	ch.SetTracer(tracer)
	if *faultF != "" {
		plan, err := fault.ParseFile(*faultF)
		if err != nil {
			log.Fatal(err)
		}
		if len(plan.Halts) > 0 && (*kernel == "ffbp-seq" || *kernel == "af-seq") {
			log.Fatal("the plan halts cores, but sequential kernels run directly on core 0 and cannot remap; use a mapped kernel")
		}
		inj, err := plan.Compile()
		if err != nil {
			log.Fatal(err)
		}
		ch.SetFaults(inj)
	}

	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	switch *kernel {
	case "ffbp-par":
		if _, _, err := kernels.ParFFBP(ch, *cores, data, cfg.Params, cfg.Box); err != nil {
			log.Fatal(err)
		}
	case "ffbp-seq":
		if _, _, err := kernels.SeqFFBP(ch.Cores[0], ch.Ext(), data, cfg.Params, cfg.Box); err != nil {
			log.Fatal(err)
		}
	case "af-par":
		pairs := report.AutofocusWorkload(cfg)
		shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)
		if _, err := kernels.ParAutofocus(ch, pairs, shifts); err != nil {
			log.Fatal(err)
		}
	case "af-seq":
		pairs := report.AutofocusWorkload(cfg)
		shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)
		if _, err := kernels.SeqAutofocus(ch.Cores[0], ch.Ext(), pairs, shifts); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown kernel %q (sarprof profiles Epiphany kernels only)", *kernel)
	}

	// SARPROF_TAMPER corrupts one cycle counter before -check runs: the
	// test suite's way to pin the conformance-failure exit status without
	// a real accounting bug to trip over.
	if os.Getenv("SARPROF_TAMPER") != "" {
		ch.Cores[0].Stats.ComputeCycles++
	}
	if *check {
		if rep := conform.CheckAll(ch); !rep.OK() {
			log.Println(rep.Err())
			os.Exit(exitConformFail)
		}
		lg.Info("conformance check passed")
	}

	p, err := profile.AnalyzeChip(ch)
	if err != nil {
		log.Fatal(err)
	}

	// Record the profiled run in the ledger: the same provenance shape as
	// epirun, so sarlog can diff a profile run against a plain run.
	if *ledgerD != "" {
		e, lerr := telemetry.NewEntry("sarprof", start, map[string]any{
			"kernel": *kernel,
			"cores":  *cores,
			"mesh":   *mesh,
			"small":  *small,
			"params": cfg.Params,
		}, "kernel="+*kernel, fmt.Sprintf("cores=%d", *cores), fmt.Sprintf("small=%v", *small), "mesh="+*mesh)
		if lerr != nil {
			log.Printf("ledger: %v", lerr)
		} else {
			reg := ch.Metrics()
			reg.Gauge("emu.cycles.total").Set(ch.MaxCycles())
			e.Metrics = telemetry.MetricsMap(reg.Snapshot())
			e.Extra = map[string]any{
				"machine": fmt.Sprintf("epiphany-%dx%d", r, c),
				"cycles":  ch.MaxCycles(),
				"seconds": ch.Time(),
			}
			if *faultF != "" {
				e.Extra["faults"] = *faultF
			}
			if id, lerr := telemetry.Record(*ledgerD, e); lerr != nil {
				lg.Warn("ledger append failed", "err", lerr)
			} else {
				lg.Info(fmt.Sprintf("run %s recorded in %s", id, *ledgerD), "run_id", id)
			}
		}
	}

	fmt.Printf("%s: ", *kernel)
	if err := p.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *htmlF != "" {
		writeTo(*htmlF, p.WriteHTML)
	}
	if *jsonF != "" {
		writeTo(*jsonF, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(p)
		})
	}
}

// writeTo creates path and streams one of the profile's exporters into it.
func writeTo(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	lg.Info("wrote " + path)
}
