// Sarserve is the long-running SAR-as-a-service daemon: it accepts
// image-formation and sweep jobs over HTTP/JSON, coalesces them into
// batches, executes them on the internal/sweep worker pool, and serves
// the resulting bench envelopes from a shared content-addressed cache
// (duplicate submissions single-flight across tenants).
//
// Endpoints (see docs/API.md for schemas and docs/OPERATIONS.md for the
// operator runbook):
//
//	POST /v1/jobs              submit a job (202; ?wait=1 blocks to 200)
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/result  result envelope
//	GET  /metrics              Prometheus text exposition
//	GET  /debug/vars           expvar-style JSON metrics
//	GET  /healthz              liveness
//	GET  /readyz               readiness (503 once draining)
//
// Usage:
//
//	sarserve                                   # listen on :8357, defaults
//	sarserve -addr :9000 -j 8                  # eight sweep workers
//	sarserve -cache-dir /var/cache/sarserve    # persistent result cache
//	sarserve -batch 16 -maxwait 50ms           # batching policy
//	sarserve -queue 512                        # admission queue bound
//	sarserve -qps 10 -burst 20                 # per-tenant quota
//	sarserve -timeout 5m                       # per-job deadline
//	sarserve -ledger out/runs                  # run-ledger directory
//	sarserve -drain-timeout 1m                 # max SIGTERM drain wait
//	sarserve -trace-sample 0.1                 # trace 10% of submissions
//	sarserve -slow-request 2s                  # warn-log slower requests
//	sarserve -log-format json -log-level debug # structured log output
//
// On SIGTERM or SIGINT the daemon stops admitting jobs (POST answers
// 503 + Retry-After, /readyz trips), flushes and finishes in-flight
// batches, writes a final run-ledger entry with a metrics snapshot, and
// exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sarmany/internal/logx"
	"sarmany/internal/serve"
	"sarmany/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8357", "HTTP listen address")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "sweep worker pool size")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (empty = no cache)")
	batch := flag.Int("batch", 8, "max jobs per batch")
	maxWait := flag.Duration("maxwait", 25*time.Millisecond, "max wait before flushing a partial batch")
	queue := flag.Int("queue", 256, "max queued jobs before 429")
	qps := flag.Float64("qps", 0, "per-tenant job admission rate (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-tenant burst allowance (0 = derived from -qps)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job execution deadline")
	ledger := flag.String("ledger", telemetry.DefaultDir, "run-ledger directory (empty = disabled)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs on shutdown")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of submissions to trace (0 = off; inbound traceparent always wins)")
	slowReq := flag.Duration("slow-request", 10*time.Second, "warn-log jobs slower than this (0 = never)")
	var logCfg logx.Config
	logCfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "sarserve: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	lg := logCfg.MustNew("sarserve")

	s := serve.NewServer(serve.Options{
		Workers:     *workers,
		CacheDir:    *cacheDir,
		BatchSize:   *batch,
		MaxWait:     *maxWait,
		QueueLimit:  *queue,
		Quota:       serve.QuotaConfig{JobsPerSec: *qps, Burst: *burst},
		JobTimeout:  *timeout,
		LedgerDir:   *ledger,
		TraceSample: *traceSample,
		SlowRequest: *slowReq,
		Log:         lg,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// Serve until SIGTERM/SIGINT, then drain: the signal context flips,
	// admission starts rejecting, and we wait for in-flight batches
	// before letting the HTTP listener close.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	lg.Info("listening on "+*addr,
		"workers", *workers, "batch", *batch, "maxwait", *maxWait,
		"queue", *queue, "trace_sample", *traceSample)

	select {
	case err := <-errCh:
		lg.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	lg.Info("draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		lg.Warn("shutdown", "err", err)
	}
	if drainErr != nil {
		lg.Error("drain failed", "err", drainErr)
		os.Exit(1)
	}
	lg.Info("drained cleanly")
}
