GO ?= go

.PHONY: all check fmt vet build test race bench chaos fuzzsmoke conform conformguard sweepbench profbench servebench kernelbench scalebench servesmoke tracesmoke benchdiff baseline docscheck ledgersmoke clean

all: check

# check runs the full verification gate: formatting, static analysis,
# build, package-doc coverage, the race-enabled test suite, the chaos
# (fault-injection) suite, a fuzz smoke pass over the fault-plan parser,
# the simulator conformance suite, the emu-coverage guard, the sweep,
# profiler, job-server and fused-kernel throughput measurements, the
# benchmark regression diff against the committed baselines, and the
# sarserve end-to-end and request-tracing smoke tests.
check: fmt vet build docscheck race chaos fuzzsmoke conform conformguard sweepbench profbench servebench kernelbench scalebench benchdiff servesmoke tracesmoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# chaos runs the fault-injection suite under the race detector: the
# deterministic injector unit tests, the golden chaos kernel runs with
# pinned retry/remap counts, the fault conformance and tamper-detection
# tests, and the CLI exit-code contract tests.
chaos:
	$(GO) test -race -count=1 ./internal/fault
	$(GO) test -race -count=1 -run 'Chaos|Fault|EmptyPlan' \
		./internal/emu ./internal/kernels ./internal/conform \
		./cmd/epirun ./cmd/sarprof

# fuzzsmoke gives the fault-plan parser fuzzer a short budget on top of
# replaying its committed corpus.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz FuzzParsePlan -fuzztime 10s ./internal/fault

# conform runs the simulator conformance harness under the race detector:
# the invariant checker over real kernel runs, the analytic differential
# microbenchmarks (exact closed-form cycle counts), and the seeded
# random-program determinism suite.
conform:
	$(GO) test -race -count=1 ./internal/conform

# conformguard fails when emulator model code changes without a
# conformance or emu test riding along (range: CONFORM_RANGE, default
# HEAD~1..HEAD).
conformguard:
	./scripts/checkconform.sh

# sweepbench exercises the concurrent sweep engine under the race
# detector and records its throughput as out/BENCH_sweep.json.
sweepbench:
	SWEEPBENCH_OUT=$(CURDIR)/out $(GO) test -race -run TestSweep -count=1 ./internal/sweep

# profbench runs the trace-driven profiler over a traced 16-core FFBP
# run and records its throughput as out/BENCH_profile.json.
profbench:
	PROFBENCH_OUT=$(CURDIR)/out $(GO) test -race -run TestProfile -count=1 ./internal/profile

# servebench measures the job server's saturation behavior (three
# offered loads plus a warm-cache rerun) under the race detector and
# records it as out/BENCH_serve.json.
servebench:
	SERVEBENCH_OUT=$(CURDIR)/out $(GO) test -race -run TestServeSaturation -count=1 ./internal/serve

# kernelbench measures the fused back-projection hot paths against their
# retained references at paper scale and records the result as
# out/BENCH_kernels.json. It runs without the race detector on purpose:
# the envelope's pixels/sec leaves are per-core throughput measurements
# and -race would distort them several-fold. The fused paths' correctness
# under -race is covered by the equivalence suites in the gbp and ffbp
# packages, which `race` already runs.
kernelbench:
	KERNELBENCH_OUT=$(CURDIR)/out $(GO) test -run TestKernelThroughput -count=1 ./internal/bench

# scalebench runs both parallel kernels across the 64-, 256- and
# 1024-core device generations (the last a 2x2 eLink-bridged chip array)
# and records modeled time, speedup and energy as out/BENCH_scale.json.
# Every leaf is deterministic simulator output, so the whole envelope
# gates in benchdiff. It runs without the race detector: the sweep is
# pure simulation whose -race coverage lives in the kernels and conform
# suites, and -race would multiply the 1024-core run's wall-clock.
scalebench:
	SCALEBENCH_OUT=$(CURDIR)/out $(GO) test -run TestScaleBench -count=1 ./internal/bench

# servesmoke is the sarserve end-to-end contract: build the daemon,
# submit a real job over HTTP (must answer 200 done), assert the run
# ledger recorded it, and SIGTERM must drain cleanly.
servesmoke:
	./scripts/servesmoke.sh

# tracesmoke is the request-tracing contract: a live sarserve submission
# must answer with a trace ID, and `sarlog trace <id>` must render a
# span tree covering admission, queue wait, batch formation, execution
# and the ledger write.
tracesmoke:
	./scripts/tracesmoke.sh

# benchdiff gates the envelopes recorded by sweepbench/profbench against
# the committed baselines. Modeled simulator output (cycles, span and
# segment counts, job counts) must stay within the tolerance; wall-clock
# and host-shape fields legitimately vary between machines and are
# advisory — printed when they move, never a failure.
BENCHDIFF_ADVISORY := data.seconds*,data.speedup,data.*_per_sec,data.host_cpus,data.analyze_seconds

# The serve envelope additionally treats wall-clock latency quantiles
# as advisory; its job accounting (completed/executed/cache-hit counts
# and ratios) is deterministic and gates.
SERVEDIFF_ADVISORY := $(BENCHDIFF_ADVISORY),data.*p50_seconds,data.*p99_seconds,data.*jobs_per_sec

# The kernels envelope is wall-clock throughput end to end, so every
# seconds/speedup leaf (including the nested per-merge-stage ones) is
# advisory; its deterministic leaves — gbp_equiv_ok, bit_identical and
# the shape counts — gate.
KERNELDIFF_ADVISORY := $(BENCHDIFF_ADVISORY),data.*seconds*,data.*speedup*

benchdiff:
	$(GO) run ./scripts/benchdiff.go -tol 0.02 -advisory '$(BENCHDIFF_ADVISORY)' \
		BENCH_sweep.json out/BENCH_sweep.json
	$(GO) run ./scripts/benchdiff.go -tol 0.02 -advisory '$(BENCHDIFF_ADVISORY)' \
		BENCH_profile.json out/BENCH_profile.json
	$(GO) run ./scripts/benchdiff.go -tol 0.02 -advisory '$(SERVEDIFF_ADVISORY)' \
		BENCH_serve.json out/BENCH_serve.json
	$(GO) run ./scripts/benchdiff.go -tol 0.02 -advisory '$(KERNELDIFF_ADVISORY)' \
		BENCH_kernels.json out/BENCH_kernels.json
	$(GO) run ./scripts/benchdiff.go -tol 0.02 -advisory '$(BENCHDIFF_ADVISORY)' \
		BENCH_scale.json out/BENCH_scale.json

# baseline refreshes the committed envelopes from freshly recorded runs.
# Use after an intentional change to modeled results, then commit the
# updated BENCH_*.json files.
baseline: sweepbench profbench servebench kernelbench scalebench
	cp out/BENCH_sweep.json BENCH_sweep.json
	cp out/BENCH_profile.json BENCH_profile.json
	cp out/BENCH_serve.json BENCH_serve.json
	cp out/BENCH_kernels.json BENCH_kernels.json
	cp out/BENCH_scale.json BENCH_scale.json

# docscheck fails when any package (cmd/ binaries included) lacks a doc
# comment, or when the serving layer exports an undocumented identifier.
docscheck:
	./scripts/checkdocs.sh

# ledgersmoke is the determinism contract of the run ledger end to end:
# two identical epirun invocations must record manifests whose every
# cycle and energy leaf agrees exactly (sarlog diff -gate exits 0), with
# the advisory id/start rows proving the delta table was not empty.
ledgersmoke:
	rm -rf out/ledgersmoke
	$(GO) run ./cmd/epirun -kernel ffbp-par -small -ledger out/ledgersmoke
	$(GO) run ./cmd/epirun -kernel ffbp-par -small -ledger out/ledgersmoke
	$(GO) run ./cmd/sarlog diff -dir out/ledgersmoke -gate @-2 @-1 > out/ledgersmoke.diff; \
		status=$$?; cat out/ledgersmoke.diff; exit $$status
	@grep -q '(advisory)' out/ledgersmoke.diff || \
		{ echo "ledgersmoke: delta table empty"; exit 1; }
	@grep -q ' 0 regressions' out/ledgersmoke.diff || \
		{ echo "ledgersmoke: non-advisory divergence between identical runs"; exit 1; }

clean:
	rm -rf out
