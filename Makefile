GO ?= go

.PHONY: all check fmt vet build test race bench clean

all: check

# check runs the full verification gate: formatting, static analysis,
# build, and the race-enabled test suite.
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	rm -rf out BENCH_*.json
