GO ?= go

.PHONY: all check fmt vet build test race bench sweepbench docscheck clean

all: check

# check runs the full verification gate: formatting, static analysis,
# build, package-doc coverage, the race-enabled test suite, and the
# sweep-engine throughput measurement.
check: fmt vet build docscheck race sweepbench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# sweepbench exercises the concurrent sweep engine under the race
# detector and records its throughput as BENCH_sweep.json.
sweepbench:
	SWEEPBENCH_OUT=$(CURDIR) $(GO) test -race -run TestSweep -count=1 ./internal/sweep

# docscheck fails when any package lacks a package doc comment.
docscheck:
	./scripts/checkdocs.sh

clean:
	rm -rf out BENCH_*.json
