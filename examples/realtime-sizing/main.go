// Realtime-sizing: the paper's motivating question — can the on-board
// processor keep up with the radar? The platform collects an aperture of
// data every few seconds; real-time image creation means processing it at
// least that fast, within the airframe's power budget. This example
// measures both machine models on the FFBP workload and sizes a
// deployment for each.
//
// The Table I measurement runs as a sweep job through the built-in
// benchtab runner: with -cache-dir set, a rerun replays the cached
// envelope instead of resimulating both machines.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"sarmany"
)

func main() {
	log.SetFlags(0)
	cacheDir := flag.String("cache-dir", "", "result cache directory (empty = no caching)")
	flag.Parse()

	cfg := sarmany.SmallExperiment()
	jobs := []sarmany.SweepJob{{Name: "Table I", Exp: "t1", Config: cfg}}
	results, err := sarmany.RunSweep(context.Background(), jobs, sarmany.SweepOptions{
		CacheDir: *cacheDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if results[0].Err != nil {
		log.Fatal(results[0].Err)
	}
	data, err := sarmany.SweepData(results[0])
	if err != nil {
		log.Fatal(err)
	}
	tab := data.(*sarmany.Table1)
	if results[0].Cached {
		fmt.Println("(Table I replayed from cache)")
	}

	req, err := sarmany.RequirementFor(cfg.Params, 120) // 120 m/s platform
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %.0f x %.0f pixels every %.2f s  ->  need %.0f px/s\n\n",
		float64(cfg.Params.NumPulses), float64(cfg.Params.NumBins),
		req.CollectionSeconds, req.RequiredPixelRate())

	devices := []sarmany.Capability{
		{Name: tab.FFBP[0].Impl, PixelsPerS: tab.FFBP[0].PixPerSec, Watts: tab.FFBP[0].PowerW},
		{Name: tab.FFBP[2].Impl, PixelsPerS: tab.FFBP[2].PixPerSec, Watts: tab.FFBP[2].PowerW},
	}
	plans, err := sarmany.SizeDeployment(req, devices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12s %8s %9s %10s\n", "device", "px/s", "margin", "devices", "power")
	for _, p := range plans {
		fmt.Printf("%-28s %12.0f %7.1fx %9d %9.1fW\n",
			p.Device.Name, p.Device.PixelsPerS, p.Margin, p.DevicesNeeded, p.SystemWatts)
	}
	fmt.Println("\nBoth meet real time here; the Epiphany does it at a fraction of")
	fmt.Println("the power — the paper's energy-efficiency argument as a deployment")
	fmt.Println("decision.")
}
