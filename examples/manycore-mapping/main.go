// Manycore-mapping: run the paper's two parallel implementations on the
// simulated 16-core Epiphany and inspect how the mappings behave — the
// SPMD FFBP with its DMA prefetch and off-chip traffic, and the MPMD
// 13-core autofocus pipeline that streams between neighbouring cores and
// barely touches off-chip memory.
package main

import (
	"fmt"
	"log"

	"sarmany"
)

func main() {
	log.SetFlags(0)

	p := sarmany.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	data := sarmany.Simulate(p, []sarmany.Target{{U: 0, Y: 555, Amp: 1}}, nil)

	// --- SPMD FFBP on 16 cores vs 1 core -------------------------------
	seq := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	if _, _, err := sarmany.EpiphanySeqFFBP(seq, data, p, box); err != nil {
		log.Fatal(err)
	}
	par := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	if _, _, err := sarmany.EpiphanyFFBP(par, 16, data, p, box); err != nil {
		log.Fatal(err)
	}

	fmt.Println("FFBP (SPMD, coarse-grained data partitioning):")
	fmt.Printf("  1 core:   %8.2f ms\n", seq.Time()*1e3)
	fmt.Printf("  16 cores: %8.2f ms  -> speedup %.1fx\n",
		par.Time()*1e3, seq.Time()/par.Time())
	st := par.TotalStats()
	fmt.Printf("  off-chip traffic: %.1f MB read, %.1f MB written, %d DMA prefetches\n",
		float64(st.ExtReadB)/1e6, float64(st.ExtWriteB)/1e6, st.DMATransfers)
	fmt.Printf("  cycles: %.0f compute vs %.0f stalled (memory-bound: %v)\n\n",
		st.ComputeCycles, st.StallCycles, st.StallCycles > st.ComputeCycles)

	// --- MPMD autofocus pipeline on 13 cores ---------------------------
	pairs := make([]sarmany.BlockPair, 16)
	img, _, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := range pairs {
		a, err := sarmany.BlockFrom(img, 100+i, 170)
		if err != nil {
			log.Fatal(err)
		}
		b, err := sarmany.BlockFrom(img, 100+i, 171)
		if err != nil {
			log.Fatal(err)
		}
		pairs[i] = sarmany.BlockPair{Minus: a, Plus: b}
	}
	shifts := sarmany.RangeSweep(-1.5, 1.5, 16)

	seqA := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	if _, err := sarmany.EpiphanySeqAutofocus(seqA, pairs, shifts); err != nil {
		log.Fatal(err)
	}
	parA := sarmany.NewEpiphany(sarmany.EpiphanyE16G3())
	if _, err := sarmany.EpiphanyAutofocus(parA, pairs, shifts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Autofocus criterion (MPMD, 13-core streaming pipeline):")
	fmt.Printf("  1 core:   %8.3f ms\n", seqA.Time()*1e3)
	fmt.Printf("  13 cores: %8.3f ms  -> speedup %.1fx\n",
		parA.Time()*1e3, seqA.Time()/parA.Time())
	sa := parA.TotalStats()
	fmt.Printf("  on-chip streaming: %.1f KB over the mesh; off-chip: %.1f KB\n",
		float64(sa.NoCBytes)/1e3, float64(sa.ExtReadB+sa.ExtWriteB)/1e3)
	fmt.Println("  (intermediate results never leave the chip — the key to the pipeline's efficiency)")
}
