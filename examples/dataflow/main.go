// Dataflow: the programmability story of the paper's Sec. VI-B. The MPMD
// autofocus mapping required "writing separate C programs for each
// individual core" with hand-managed synchronization; the paper's future
// work points at higher-level dataflow languages (their occam-pi work).
// This example expresses a processing pipeline as a declarative graph on
// the simulated chip — the wiring, back-pressure and synchronization are
// generated — and shows the per-core times that fall out.
package main

import (
	"fmt"
	"log"

	"sarmany/internal/cf"
	"sarmany/internal/emu"
	"sarmany/internal/flow"
)

func main() {
	log.SetFlags(0)

	const blocks = 200
	g := flow.NewGraph()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// A three-stage pipeline: generate -> filter (moving average) ->
	// detect (energy over threshold), each stage on its own core.
	var detections int
	must(g.Node("generate", func(c *flow.Ctx) {
		for i := 0; i < blocks; i++ {
			c.Core.FMA(64)
			block := make([]complex64, 16)
			for j := range block {
				block[j] = cf.Expi(float32(i*j) * 0.1)
			}
			c.Out("raw").Send(block)
		}
	}))
	must(g.Node("filter", func(c *flow.Ctx) {
		for i := 0; i < blocks; i++ {
			in := c.In("raw").Recv()
			out := make([]complex64, len(in))
			var acc complex64
			for j, v := range in {
				c.Core.FMA(4)
				acc = cf.MulAdd(acc, v, complex(0.25, 0))
				out[j] = acc
			}
			c.Out("filtered").Send(out)
		}
	}))
	must(g.Node("detect", func(c *flow.Ctx) {
		for i := 0; i < blocks; i++ {
			in := c.In("filtered").Recv()
			var e float32
			for _, v := range in {
				c.Core.FMA(2)
				e += cf.Abs2(v)
			}
			c.Core.Flop(1)
			if e > 2 {
				detections++
			}
		}
	}))
	must(g.Connect("generate", "raw", "filter", "raw", 4))
	must(g.Connect("filter", "filtered", "detect", "filtered", 4))

	ch := emu.New(emu.E16G3())
	// Neighbouring cores keep the mesh hops short, as the paper's custom
	// mapping does.
	must(g.Run(ch, []int{0, 1, 2}))

	fmt.Printf("pipeline processed %d blocks in %.1f µs of chip time (%d detections)\n",
		blocks, ch.Time()*1e6, detections)
	fmt.Printf("%8s %14s %14s %14s\n", "core", "cycles", "compute", "stalled")
	for _, c := range ch.Cores[:3] {
		fmt.Printf("%8d %14.0f %14.0f %14.0f\n", c.ID, c.Cycles(), c.Stats.ComputeCycles, c.Stats.StallCycles)
	}
	fmt.Println("\nThe same graph API expresses the paper's full 13-core autofocus")
	fmt.Println("pipeline (kernels.FlowAutofocus) with scores bit-identical to the")
	fmt.Println("hand-mapped implementation — synchronization generated, not written.")
}
