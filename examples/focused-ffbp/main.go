// Focused-ffbp: image formation from data collected on a non-linear
// flight path. The platform drifts cross-track mid-collection; plain FFBP
// (which assumes the nominal linear track) produces a defocused image,
// while FFBP with the integrated autofocus criterion (paper Sec. II-A)
// estimates and applies the compensation before the final merges and
// recovers the focus.
package main

import (
	"fmt"
	"log"

	"sarmany"
)

func main() {
	log.SetFlags(0)

	p := sarmany.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	targets := []sarmany.Target{{U: 0, Y: 555, Amp: 1}}

	// The platform drifts 0.5 m towards the scene halfway through the
	// collection — an error the GPS did not capture.
	drift := func(u float64) float64 {
		if u > 0 {
			return 0.5
		}
		return 0
	}
	data := sarmany.Simulate(p, targets, drift)

	plain, _, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		log.Fatal(err)
	}
	focused, _, history, err := sarmany.FocusedFFBP(data, p, box, sarmany.DefaultFocusConfig(p.NumPulses))
	if err != nil {
		log.Fatal(err)
	}

	sp := sarmany.Sharpness(sarmany.Magnitude(plain))
	sf := sarmany.Sharpness(sarmany.Magnitude(focused))
	fmt.Printf("image sharpness without autofocus: %8.1f\n", sp)
	fmt.Printf("image sharpness with autofocus:    %8.1f  (%.1fx better)\n", sf, sf/sp)
	fmt.Printf("\ntrue relative displacement at the final merge: %.2f range pixels\n", -0.5/p.DR)
	fmt.Println("estimated compensations (range pixels) per autofocused merge level:")
	for i, comps := range history {
		fmt.Printf("  level %d:", i)
		for _, c := range comps {
			fmt.Printf(" %+.2f", c.DRange)
		}
		fmt.Println()
	}

	if err := sarmany.SaveImage("defocused.png", plain, 50); err != nil {
		log.Fatal(err)
	}
	if err := sarmany.SaveImage("focused.png", focused, 50); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote defocused.png and focused.png")
}
