// Profile-run: the trace-driven profiler as a library. Runs the 16-core
// SPMD FFBP twice — at the E16G3's real off-chip bandwidth and at a
// hypothetical 4x — and compares what bound each run. At 1 byte/cycle
// the critical path is dominated by off-chip stalls plus the barrier
// drain of posted writes (the paper's Sec. VI bandwidth argument); at 4x
// the drain all but disappears and compute becomes the majority share —
// the profiler's view of why the paper concludes a 64-core part would
// not speed FFBP up without more off-chip bandwidth.
package main

import (
	"fmt"
	"log"

	"sarmany"
)

func main() {
	log.SetFlags(0)

	cfg := sarmany.SmallExperiment()
	data := sarmany.Simulate(cfg.Params, cfg.Targets, nil)

	run := func(bytesPerCycle float64) *sarmany.RunProfile {
		ep := cfg.Epiphany
		ep.ExtBytesPerCycle = bytesPerCycle
		chip := sarmany.NewEpiphany(ep)
		tr := sarmany.NewTracer(ep.Clock)
		tr.SetCapacity(1 << 16)
		chip.SetTracer(tr)
		if _, _, err := sarmany.EpiphanyFFBP(chip, 16, data, cfg.Params, cfg.Box); err != nil {
			log.Fatal(err)
		}
		p, err := sarmany.ProfileChip(chip)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	base := run(cfg.Epiphany.ExtBytesPerCycle)
	fast := run(cfg.Epiphany.ExtBytesPerCycle * 4)

	fmt.Printf("16-core FFBP, %.0f vs %.0f off-chip bytes/cycle:\n\n",
		cfg.Epiphany.ExtBytesPerCycle, cfg.Epiphany.ExtBytesPerCycle*4)
	fmt.Printf("  %-14s %14s %14s\n", "critical path", "1x bandwidth", "4x bandwidth")
	for _, cause := range base.Critical.Causes() {
		fmt.Printf("  %-14s %13.1f%% %13.1f%%\n", cause,
			100*base.Critical.ByCause[cause]/base.RunCycles,
			100*fast.Critical.ByCause[cause]/fast.RunCycles)
	}
	fmt.Printf("\n  run cycles     %14.0f %14.0f  (%.2fx faster)\n",
		base.RunCycles, fast.RunCycles, base.RunCycles/fast.RunCycles)
	fmt.Printf("  modeled energy %13.2fmJ %13.2fmJ\n",
		1e3*base.TotalEnergy.Total(), 1e3*fast.TotalEnergy.Total())

	bw, phases := 0, 0
	for _, ph := range base.Phases {
		if ph.Index < 0 {
			continue // synthetic tail row, not a barrier phase
		}
		phases++
		if ph.Bound == "bandwidth" {
			bw++
		}
	}
	fmt.Printf("\n  at 1x, %d of %d phases are bandwidth-bound; the off-chip channel,\n",
		bw, phases)
	fmt.Printf("  not the cores, sets FFBP's modeled time (paper Sec. VI).\n")
}
