// Scaling: how far does the paper's SPMD FFBP scale? The paper closes by
// noting that a 64-core Epiphany is now available; this example maps the
// same kernel onto growing meshes and shows where the shared off-chip
// memory bandwidth caps the speedup — the architectural limit the paper's
// Sec. VI analysis predicts.
package main

import (
	"fmt"
	"log"
	"strings"

	"sarmany"
)

func main() {
	log.SetFlags(0)

	p := sarmany.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	data := sarmany.Simulate(p, sarmany.SixTargetScene(p), nil)

	fmt.Println("FFBP on growing Epiphany meshes (same kernel, same data):")
	fmt.Printf("%6s %12s %9s %11s\n", "cores", "time (ms)", "speedup", "efficiency")
	var base float64
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		params := sarmany.EpiphanyE16G3()
		if n > 16 {
			params = sarmany.EpiphanyE64()
		}
		chip := sarmany.NewEpiphany(params)
		if _, _, err := sarmany.EpiphanyFFBP(chip, n, data, p, box); err != nil {
			log.Fatal(err)
		}
		t := chip.Time()
		if base == 0 {
			base = t
		}
		sp := base / t
		eff := sp / float64(n)
		fmt.Printf("%6d %12.2f %9.2f %10.0f%% %s\n",
			n, t*1e3, sp, 100*eff, strings.Repeat("#", int(sp)))
	}
	fmt.Println("\nSpeedup saturates once the shared off-chip channel is the")
	fmt.Println("bottleneck: FFBP reads its contributing subaperture data from")
	fmt.Println("SDRAM in every late merge iteration (paper Sec. VI).")
}
