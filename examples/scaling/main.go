// Scaling: how far does the paper's SPMD FFBP scale? The paper closes by
// noting that a 64-core Epiphany is now available; this example maps the
// same kernel onto growing meshes and shows where the shared off-chip
// memory bandwidth caps the speedup — the architectural limit the paper's
// Sec. VI analysis predicts.
//
// The per-core-count simulations are independent, so they run through
// the sweep engine: -j fans them across a worker pool, and -cache-dir
// makes a rerun replay cached results instead of resimulating.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strings"

	"sarmany"
)

// point is this example's envelope payload: the modeled FFBP run time on
// one mesh size.
type point struct {
	Cores   int     `json:"cores"`
	Seconds float64 `json:"seconds"`
}

func main() {
	log.SetFlags(0)
	workers := flag.Int("j", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (empty = no caching)")
	flag.Parse()

	p := sarmany.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	data := sarmany.Simulate(p, sarmany.SixTargetScene(p), nil)

	// One job per mesh size; Extra (the core count) distinguishes the
	// cache keys, since every job shares the same configuration.
	cfg := sarmany.ExperimentConfig{Params: p, Box: box}
	coreCounts := []int{1, 2, 4, 8, 16, 32, 64}
	jobs := make([]sarmany.SweepJob, len(coreCounts))
	for i, n := range coreCounts {
		jobs[i] = sarmany.SweepJob{
			Name: fmt.Sprintf("ffbp-%dcores", n), Exp: "example-scaling",
			Config: cfg, Extra: n,
		}
	}

	results, err := sarmany.RunSweep(context.Background(), jobs, sarmany.SweepOptions{
		Workers:  *workers,
		CacheDir: *cacheDir,
		Run: func(ctx context.Context, j sarmany.SweepJob) (sarmany.BenchResult, error) {
			n := j.Extra.(int)
			params := sarmany.EpiphanyE16G3()
			if n > 16 {
				params = sarmany.EpiphanyE64()
			}
			chip := sarmany.NewEpiphany(params)
			if _, _, err := sarmany.EpiphanyFFBP(chip, n, data, p, box); err != nil {
				return sarmany.BenchResult{}, err
			}
			return sarmany.BenchResult{
				Name: j.Name, Title: "FFBP scaling point",
				Pulses: p.NumPulses, Bins: p.NumBins,
				Data: point{Cores: n, Seconds: chip.Time()},
			}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FFBP on growing Epiphany meshes (same kernel, same data):")
	fmt.Printf("%6s %12s %9s %11s\n", "cores", "time (ms)", "speedup", "efficiency")
	var base float64
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		pt, err := decodePoint(r)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = pt.Seconds
		}
		sp := base / pt.Seconds
		eff := sp / float64(pt.Cores)
		fmt.Printf("%6d %12.2f %9.2f %10.0f%% %s\n",
			pt.Cores, pt.Seconds*1e3, sp, 100*eff, strings.Repeat("#", int(sp)))
	}
	fmt.Println("\nSpeedup saturates once the shared off-chip channel is the")
	fmt.Println("bottleneck: FFBP reads its contributing subaperture data from")
	fmt.Println("SDRAM in every late merge iteration (paper Sec. VI).")
}

// decodePoint unwraps a result's payload, which is the concrete point
// for a fresh run and raw JSON when replayed from the cache.
func decodePoint(r sarmany.SweepJobResult) (point, error) {
	switch v := r.Result.Data.(type) {
	case point:
		return v, nil
	case json.RawMessage:
		var pt point
		err := json.Unmarshal(v, &pt)
		return pt, err
	}
	return point{}, fmt.Errorf("unexpected payload %T", r.Result.Data)
}
