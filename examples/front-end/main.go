// Front-end: the full radar signal chain ahead of back-projection (the
// left side of the paper's Fig. 1 block diagram). Raw chirp echoes are
// contaminated with narrowband radio interference (the plague of
// low-frequency SAR), cleaned with a spectral notch filter, matched-
// filtered with a Taylor-weighted replica for low range sidelobes, and
// finally imaged with FFBP.
package main

import (
	"fmt"
	"log"

	"sarmany"
)

func main() {
	log.SetFlags(0)

	p := sarmany.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	targets := []sarmany.Target{{U: 0, Y: 555, Amp: 1}, {U: -25, Y: 530, Amp: 0.7}}
	chirp := p.DefaultChirp()

	// 1. Received echoes: chirped returns plus a strong interferer.
	raw := sarmany.SimulateRaw(p, chirp, targets, nil)
	sarmany.InjectRFI(raw, 0.21, 2.5, 0.6)
	fmt.Println("received raw echoes with narrowband RFI at 2.5x target amplitude")

	// 2. RFI suppression.
	n, err := sarmany.NotchFilter(raw, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("notch filter excised %d spectral bins\n", n)

	// 3. Pulse compression with Taylor weighting (-35 dB range sidelobes).
	data := sarmany.CompressWindowed(p, chirp, raw, sarmany.TaylorWindow)

	// 4. Image formation and point-response analysis.
	img, _, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sarmany.MeasurePointResponse(sarmany.Magnitude(img))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point response: range IRW %.1f px, range PSLR %.1f dB\n",
		res.RangeIRW, res.RangePSLR)
	if err := sarmany.SaveImage("frontend.png", img, 50); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote frontend.png")
}
