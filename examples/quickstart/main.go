// Quickstart: simulate a six-point-target scene, form the SAR image with
// fast factorized back-projection, and save it as a PNG — the minimal
// end-to-end use of the sarmany public API.
package main

import (
	"fmt"
	"log"

	"sarmany"
)

func main() {
	log.SetFlags(0)

	// A reduced geometry so the example runs in well under a second:
	// 256 pulses over a 256 m aperture imaging a 120 m swath at ~550 m.
	p := sarmany.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := sarmany.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}

	targets := []sarmany.Target{
		{U: -30, Y: 530, Amp: 1},
		{U: 0, Y: 555, Amp: 1},
		{U: 30, Y: 585, Amp: 0.8},
	}

	// 1. Pulse-compressed radar data (what the radar front end delivers).
	data := sarmany.Simulate(p, targets, nil)

	// 2. Image formation: FFBP with cubic interpolation, all CPUs.
	img, grid, err := sarmany.FFBP(data, p, box, sarmany.Cubic, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect and save.
	m := sarmany.Magnitude(img)
	fmt.Printf("formed a %d x %d pixel image (%d beams x %d range bins)\n",
		img.Rows, img.Cols, grid.NTheta, grid.NR)
	fmt.Printf("image sharpness: %.1f\n", sarmany.Sharpness(m))
	if err := sarmany.SaveImage("quickstart.png", img, 50); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png")
}
