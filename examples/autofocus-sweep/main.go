// Autofocus-sweep: the paper's autofocus criterion in action. Two 6x6
// image blocks are taken from the same scene, one displaced by a known
// sub-pixel shift (the effect of an unknown flight-path error on one
// contributing subaperture). A sweep of candidate compensations is
// evaluated with the focus criterion (paper eq. 6); the maximum recovers
// the displacement.
//
// The candidates are independent, so they run through the sweep engine —
// one job per candidate, fanned across -j workers and collected back in
// candidate order. This is exactly how the paper's 13-core pipeline
// parallelizes the criterion over (pair, shift) work items.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"sarmany"
)

func main() {
	log.SetFlags(0)
	workers := flag.Int("j", 0, "concurrent evaluations (0 = GOMAXPROCS)")
	flag.Parse()

	const truth = 0.6 // pixels of range displacement between the blocks

	fMinus := blob(2.5, 2.5)
	fPlus := blob(2.5, 2.5+truth)

	// One job per candidate compensation; Extra (the shift) distinguishes
	// the jobs. The runner scores a single candidate with the criterion.
	candidates := sarmany.RangeSweep(-1.5, 1.5, 25)
	jobs := make([]sarmany.SweepJob, len(candidates))
	for i, s := range candidates {
		jobs[i] = sarmany.SweepJob{
			Name: fmt.Sprintf("shift%+.3f", s.DRange), Exp: "example-autofocus",
			Extra: s,
		}
	}

	results, err := sarmany.RunSweep(context.Background(), jobs, sarmany.SweepOptions{
		Workers: *workers,
		Run: func(ctx context.Context, j sarmany.SweepJob) (sarmany.BenchResult, error) {
			s := j.Extra.(sarmany.Shift)
			score := sarmany.Criterion(&fMinus, &fPlus, s)
			return sarmany.BenchResult{
				Name: j.Name, Title: "focus criterion point",
				Data: sarmany.FocusResult{Shift: s, Score: score},
			}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Results come back in candidate order regardless of which worker
	// finished first, so the sweep table prints in shift order.
	all := make([]sarmany.FocusResult, len(results))
	var best sarmany.FocusResult
	var peak float64
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fr, err := decodeResult(r)
		if err != nil {
			log.Fatal(err)
		}
		all[i] = fr
		if fr.Score > peak {
			peak = fr.Score
		}
		if fr.Score > best.Score || i == 0 {
			best = fr
		}
	}

	fmt.Printf("true displacement: %+.2f px\n\n%10s  %12s\n", truth, "shift(px)", "criterion")
	for _, r := range all {
		fmt.Printf("%10.3f  %12.4g  %s\n", r.Shift.DRange, r.Score,
			strings.Repeat("#", int(40*r.Score/peak)))
	}
	fmt.Printf("\nbest compensation: %+.3f px (error %.3f px)\n",
		best.Shift.DRange, math.Abs(best.Shift.DRange-truth))
}

// decodeResult unwraps a result's payload, which is the concrete
// FocusResult for a fresh run and raw JSON when replayed from a cache.
func decodeResult(r sarmany.SweepJobResult) (sarmany.FocusResult, error) {
	switch v := r.Result.Data.(type) {
	case sarmany.FocusResult:
		return v, nil
	case json.RawMessage:
		var fr sarmany.FocusResult
		err := json.Unmarshal(v, &fr)
		return fr, err
	}
	return sarmany.FocusResult{}, fmt.Errorf("unexpected payload %T", r.Result.Data)
}

// blob samples a smooth complex Gaussian centred at (cr, cc) in block
// pixel coordinates, with a mild phase ramp — a stand-in for a bright
// point target in a subaperture image.
func blob(cr, cc float64) sarmany.Block {
	var b sarmany.Block
	for r := 0; r < len(b); r++ {
		for c := 0; c < len(b[r]); c++ {
			dr := float64(r) - cr
			dc := float64(c) - cc
			amp := math.Exp(-(dr*dr + dc*dc) / 3)
			phi := 0.25*dc - 0.15*dr
			b[r][c] = complex(float32(amp*math.Cos(phi)), float32(amp*math.Sin(phi)))
		}
	}
	return b
}
