// Autofocus-sweep: the paper's autofocus criterion in action. Two 6x6
// image blocks are taken from the same scene, one displaced by a known
// sub-pixel shift (the effect of an unknown flight-path error on one
// contributing subaperture). A sweep of candidate compensations is
// evaluated with the focus criterion (paper eq. 6); the maximum recovers
// the displacement.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"sarmany"
)

func main() {
	log.SetFlags(0)

	const truth = 0.6 // pixels of range displacement between the blocks

	fMinus := blob(2.5, 2.5)
	fPlus := blob(2.5, 2.5+truth)

	candidates := sarmany.RangeSweep(-1.5, 1.5, 25)
	best, all, err := sarmany.SearchCompensation(&fMinus, &fPlus, candidates)
	if err != nil {
		log.Fatal(err)
	}

	var peak float64
	for _, r := range all {
		if r.Score > peak {
			peak = r.Score
		}
	}
	fmt.Printf("true displacement: %+.2f px\n\n%10s  %12s\n", truth, "shift(px)", "criterion")
	for _, r := range all {
		fmt.Printf("%10.3f  %12.4g  %s\n", r.Shift.DRange, r.Score,
			strings.Repeat("#", int(40*r.Score/peak)))
	}
	fmt.Printf("\nbest compensation: %+.3f px (error %.3f px)\n",
		best.Shift.DRange, math.Abs(best.Shift.DRange-truth))
}

// blob samples a smooth complex Gaussian centred at (cr, cc) in block
// pixel coordinates, with a mild phase ramp — a stand-in for a bright
// point target in a subaperture image.
func blob(cr, cc float64) sarmany.Block {
	var b sarmany.Block
	for r := 0; r < len(b); r++ {
		for c := 0; c < len(b[r]); c++ {
			dr := float64(r) - cr
			dc := float64(c) - cc
			amp := math.Exp(-(dr*dr + dc*dc) / 3)
			phi := 0.25*dc - 0.15*dr
			b[r][c] = complex(float32(amp*math.Cos(phi)), float32(amp*math.Sin(phi)))
		}
	}
	return b
}
