// Chaos-sweep: the degradation curve of graceful fault tolerance. The
// parallel FFBP kernel runs under increasingly severe deterministic fault
// plans — flaky links that retransmit with backoff, DMA engines that time
// out, a derated core, a throttled SDRAM channel, and finally a dead core
// whose tile work remaps to its nearest live neighbor. Every degraded run
// still completes and still passes the conformance checker; the sweep
// quantifies what completion costs in time and energy.
//
// The severities are independent simulations, so they fan out through the
// sweep engine — one job per severity across -j workers, collected back
// in grid order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"sarmany"
)

// point is one severity's measurement.
type point struct {
	Severity float64                 `json:"severity"`
	Halted   int                     `json:"halted"`
	Remapped int                     `json:"remapped"`
	Seconds  float64                 `json:"seconds"`
	EnergyJ  float64                 `json:"energy_j"`
	Overhead float64                 `json:"overhead_cycles"`
	Conform  bool                    `json:"conform_ok"`
	Energy   sarmany.EnergyBreakdown `json:"energy"`
}

func main() {
	log.SetFlags(0)
	workers := flag.Int("j", 0, "concurrent severities (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := sarmany.SmallExperiment()
	data := sarmany.Simulate(cfg.Params, cfg.Targets, nil)
	severities := []float64{0, 0.25, 0.5, 0.75, 1}

	jobs := make([]sarmany.SweepJob, len(severities))
	for i, s := range severities {
		jobs[i] = sarmany.SweepJob{
			Name: fmt.Sprintf("severity%.2f", s), Exp: "example-chaos", Extra: s,
		}
	}

	results, err := sarmany.RunSweep(context.Background(), jobs, sarmany.SweepOptions{
		Workers: *workers,
		Run: func(ctx context.Context, j sarmany.SweepJob) (sarmany.BenchResult, error) {
			sev := j.Extra.(float64)
			plan := sarmany.ChaosFaultPlan(sev, cfg.FFBPCores)
			inj, err := sarmany.CompileFaultPlan(plan)
			if err != nil {
				return sarmany.BenchResult{}, err
			}
			chip := sarmany.NewEpiphany(cfg.Epiphany)
			chip.SetFaults(inj)
			if _, _, err := sarmany.EpiphanyFFBP(chip, cfg.FFBPCores, data, cfg.Params, cfg.Box); err != nil {
				return sarmany.BenchResult{}, err
			}
			t := chip.TotalStats()
			e := sarmany.MeasureEnergy(chip)
			return sarmany.BenchResult{
				Name: j.Name, Title: "chaos point",
				Data: point{
					Severity: sev,
					Halted:   len(plan.Halts),
					Remapped: len(chip.Remaps()),
					Seconds:  chip.Time(),
					EnergyJ:  e.Total(),
					Overhead: t.LinkRetryCycles + t.DMARetryCycles + t.DerateCycles,
					Conform:  sarmany.CheckChip(chip) == nil,
					Energy:   e,
				},
			}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	base := results[0].Result.Data.(point)
	fmt.Printf("%9s %6s %7s %12s %9s %12s %9s %8s\n",
		"severity", "halts", "remaps", "time (ms)", "slowdown", "energy (J)", "overhead", "conform")
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Job.Name, r.Err)
		}
		pt := r.Result.Data.(point)
		ok := "ok"
		if !pt.Conform {
			ok = "FAIL"
		}
		fmt.Printf("%9.2f %6d %7d %12.2f %9.3f %12.3e %9.0f %8s\n",
			pt.Severity, pt.Halted, pt.Remapped, pt.Seconds*1e3, pt.Seconds/base.Seconds,
			pt.EnergyJ, pt.Overhead, ok)
	}
	fmt.Println("\nevery degraded run completed and was conformance-checked:")
	fmt.Println("graceful degradation trades cycles and joules for fault tolerance,")
	fmt.Println("and the simulator prices that trade honestly.")
}
