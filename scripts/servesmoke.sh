#!/bin/sh
# servesmoke is the end-to-end smoke test of the sarserve daemon: build
# it, start it on a scratch port with a scratch ledger, submit one real
# job over HTTP and assert a 200 with a done record, then SIGTERM the
# process and assert a clean drain (exit 0) that left both the per-job
# and the drain-summary entries in the run ledger. Run via
# `make servesmoke`; wired into CI.
set -eu
cd "$(dirname "$0")/.."

ADDR="${SERVESMOKE_ADDR:-127.0.0.1:18357}"
WORK="out/servesmoke"
rm -rf "$WORK"
mkdir -p "$WORK"

go build -o "$WORK/sarserve" ./cmd/sarserve

"$WORK/sarserve" -addr "$ADDR" -j 2 -ledger "$WORK/runs" \
	-cache-dir "$WORK/cache" 2> "$WORK/sarserve.log" &
PID=$!
trap 'kill "$PID" 2> /dev/null || true' EXIT

# Wait for readiness (the daemon binds before readyz answers).
ready=0
for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/readyz" > /dev/null 2>&1; then
		ready=1
		break
	fi
	sleep 0.1
done
if [ "$ready" -ne 1 ]; then
	echo "servesmoke: daemon never became ready"
	cat "$WORK/sarserve.log"
	exit 1
fi

# Submit one synchronous job; the response must be a 200 done record.
status=$(curl -s -o "$WORK/job.json" -w '%{http_code}' \
	-X POST "http://$ADDR/v1/jobs?wait=1" \
	-H 'Content-Type: application/json' \
	-d '{"exp": "pipes", "tag": "smoke"}')
if [ "$status" != "200" ]; then
	echo "servesmoke: POST /v1/jobs?wait=1 answered $status, want 200"
	cat "$WORK/job.json"
	exit 1
fi
grep -q '"status": "done"' "$WORK/job.json" || {
	echo "servesmoke: job record is not done:"
	cat "$WORK/job.json"
	exit 1
}

# The completed job must have landed in the run ledger.
go run ./cmd/sarlog list -dir "$WORK/runs" > "$WORK/ledger.txt"
grep -q 'sarserve.job' "$WORK/ledger.txt" || {
	echo "servesmoke: no sarserve.job entry in the ledger:"
	cat "$WORK/ledger.txt"
	exit 1
}

# SIGTERM must drain cleanly: exit 0 and a final drain-summary entry.
kill -TERM "$PID"
drain_status=0
wait "$PID" || drain_status=$?
trap - EXIT
if [ "$drain_status" -ne 0 ]; then
	echo "servesmoke: daemon exited $drain_status on SIGTERM, want 0"
	cat "$WORK/sarserve.log"
	exit 1
fi
grep -q 'drained cleanly' "$WORK/sarserve.log" || {
	echo "servesmoke: no clean-drain message:"
	cat "$WORK/sarserve.log"
	exit 1
}
go run ./cmd/sarlog list -dir "$WORK/runs" > "$WORK/ledger.txt"
grep -q 'sarserve ' "$WORK/ledger.txt" || {
	echo "servesmoke: no sarserve drain summary in the ledger:"
	cat "$WORK/ledger.txt"
	exit 1
}

echo "servesmoke: submit 200, job ledgered, clean SIGTERM drain"
