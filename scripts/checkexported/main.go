// Checkexported fails when a package exports an undocumented
// identifier: every exported const, var, func, type, and method on an
// exported type must carry a doc comment. Run it with package
// directories as arguments:
//
//	go run ./scripts/checkexported internal/serve
//
// It is wired into scripts/checkdocs.sh (and therefore `make
// docscheck` / `make check`) for the packages whose exported surface
// is a public contract.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkexported <pkg-dir> [pkg-dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkexported: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "checkexported: %s: %s is exported but undocumented\n", dir, m)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// check parses one package directory and returns the names of exported
// identifiers that lack a doc comment.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		name := fi.Name()
		return len(name) < 8 || name[len(name)-8:] != "_test.go"
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, pkg := range pkgs {
		// doc.New reorganizes comments into the same model godoc uses,
		// so "documented" here means exactly what a reader would see.
		d := doc.New(pkg, dir, 0)
		for _, v := range d.Consts {
			missing = appendValueMissing(missing, "const", v)
		}
		for _, v := range d.Vars {
			missing = appendValueMissing(missing, "var", v)
		}
		for _, f := range d.Funcs {
			missing = appendFuncMissing(missing, f)
		}
		for _, t := range d.Types {
			if ast.IsExported(t.Name) && t.Doc == "" {
				missing = append(missing, "type "+t.Name)
			}
			for _, v := range t.Consts {
				missing = appendValueMissing(missing, "const", v)
			}
			for _, v := range t.Vars {
				missing = appendValueMissing(missing, "var", v)
			}
			for _, f := range append(t.Funcs, t.Methods...) {
				missing = appendFuncMissing(missing, f)
			}
		}
	}
	return missing, nil
}

// appendValueMissing flags an exported const/var group whose
// declaration carries no doc comment.
func appendValueMissing(missing []string, kind string, v *doc.Value) []string {
	if v.Doc != "" {
		return missing
	}
	for _, name := range v.Names {
		if ast.IsExported(name) {
			missing = append(missing, kind+" "+name)
		}
	}
	return missing
}

// appendFuncMissing flags an exported function or method without a doc
// comment (methods on exported receivers only — doc.New already hides
// the rest).
func appendFuncMissing(missing []string, f *doc.Func) []string {
	if f.Doc != "" || !ast.IsExported(f.Name) {
		return missing
	}
	name := "func " + f.Name
	if f.Recv != "" {
		name = fmt.Sprintf("method (%s).%s", f.Recv, f.Name)
	}
	return append(missing, name)
}
