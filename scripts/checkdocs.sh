#!/bin/sh
# checkdocs fails when the root package or any internal package lacks a
# package doc comment ("// Package <name> ..." above the package clause
# in a non-test file). Run via `make docscheck`; part of `make check`.
set -eu
cd "$(dirname "$0")/.."

missing=$(go list -f '{{.ImportPath}}|{{.Name}}|{{.Dir}}' . ./internal/... | \
while IFS='|' read -r path name dir; do
	found=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		if grep -q "^// Package $name " "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "$path (want '// Package $name ...')"
	fi
done)

if [ -n "$missing" ]; then
	echo "checkdocs: packages missing a package doc comment:"
	echo "$missing" | sed 's/^/  /'
	exit 1
fi
echo "checkdocs: all packages documented"
