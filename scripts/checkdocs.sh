#!/bin/sh
# checkdocs fails when any package lacks a doc comment: library packages
# need "// Package <name> ..." above the package clause, commands under
# cmd/ need a comment block directly above "package main" (the godoc
# synopsis for the binary). Packages whose exported surface is a public
# contract (internal/serve) additionally require a doc comment on every
# exported identifier, via scripts/checkexported. Run via `make
# docscheck`; part of `make check`.
set -eu
cd "$(dirname "$0")/.."

missing=$(go list -f '{{.ImportPath}}|{{.Name}}|{{.Dir}}' . ./internal/... | \
while IFS='|' read -r path name dir; do
	found=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		if grep -q "^// Package $name " "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "$path (want '// Package $name ...')"
	fi
done)

# Commands: some non-test file must carry a comment line directly above
# its "package main" clause.
cmd_missing=$(go list -f '{{.ImportPath}}|{{.Dir}}' ./cmd/... | \
while IFS='|' read -r path dir; do
	found=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		if awk 'prev ~ /^\/\// && /^package main$/ { found = 1 } { prev = $0 }
			END { exit !found }' "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "$path (want a '// ...' doc comment directly above 'package main')"
	fi
done)

if [ -n "$missing" ] || [ -n "$cmd_missing" ]; then
	echo "checkdocs: packages missing a package doc comment:"
	{ echo "$missing"; echo "$cmd_missing"; } | sed '/^$/d; s/^/  /'
	exit 1
fi

# Exported-identifier coverage for the serving layer's public surface.
go run ./scripts/checkexported internal/serve

echo "checkdocs: all packages and exported identifiers documented"
