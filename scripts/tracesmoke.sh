#!/bin/sh
# tracesmoke is the end-to-end contract of request tracing: build
# sarserve, start it with sampling fully on, submit one real job over
# HTTP, assert the response carries an X-Trace-Id that matches the job
# record's trace_id, then render the trace with `sarlog trace` and
# assert the span tree covers the serving pipeline stage by stage
# (admission, queue wait, batch formation, execution, ledger write).
# Run via `make tracesmoke`; wired into CI through `make check`.
set -eu
cd "$(dirname "$0")/.."

ADDR="${TRACESMOKE_ADDR:-127.0.0.1:18359}"
WORK="out/tracesmoke"
rm -rf "$WORK"
mkdir -p "$WORK"

go build -o "$WORK/sarserve" ./cmd/sarserve

"$WORK/sarserve" -addr "$ADDR" -j 2 -ledger "$WORK/runs" \
	-trace-sample 1 2> "$WORK/sarserve.log" &
PID=$!
trap 'kill "$PID" 2> /dev/null || true' EXIT

ready=0
for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/readyz" > /dev/null 2>&1; then
		ready=1
		break
	fi
	sleep 0.1
done
if [ "$ready" -ne 1 ]; then
	echo "tracesmoke: daemon never became ready"
	cat "$WORK/sarserve.log"
	exit 1
fi

# One synchronous job; capture headers and body separately.
status=$(curl -s -D "$WORK/headers.txt" -o "$WORK/job.json" -w '%{http_code}' \
	-X POST "http://$ADDR/v1/jobs?wait=1" \
	-H 'Content-Type: application/json' \
	-d '{"exp": "pipes", "tag": "tracesmoke"}')
if [ "$status" != "200" ]; then
	echo "tracesmoke: POST /v1/jobs?wait=1 answered $status, want 200"
	cat "$WORK/job.json"
	exit 1
fi

# The response must name its trace: a 32-hex X-Trace-Id header that the
# job record echoes as trace_id.
trace_id=$(tr -d '\r' < "$WORK/headers.txt" |
	awk -F': ' 'tolower($1) == "x-trace-id" { print $2 }')
case "$trace_id" in
*[!0-9a-f]* | '')
	echo "tracesmoke: bad X-Trace-Id header: '$trace_id'"
	cat "$WORK/headers.txt"
	exit 1
	;;
esac
if [ "${#trace_id}" -ne 32 ]; then
	echo "tracesmoke: X-Trace-Id '$trace_id' is not 32 hex chars"
	exit 1
fi
grep -q "\"trace_id\": \"$trace_id\"" "$WORK/job.json" || {
	echo "tracesmoke: job record does not carry trace_id $trace_id:"
	cat "$WORK/job.json"
	exit 1
}

# `sarlog trace <trace-id>` must render a non-empty span tree covering
# every pipeline stage with per-stage timings.
go run ./cmd/sarlog trace -dir "$WORK/runs" "$trace_id" > "$WORK/trace.txt" || {
	echo "tracesmoke: sarlog trace failed:"
	cat "$WORK/trace.txt"
	exit 1
}
for stage in request admission queue.wait batch.form execute ledger.write ms; do
	grep -q "$stage" "$WORK/trace.txt" || {
		echo "tracesmoke: span tree is missing '$stage':"
		cat "$WORK/trace.txt"
		exit 1
	}
done

kill -TERM "$PID"
wait "$PID" || {
	echo "tracesmoke: daemon did not drain cleanly"
	cat "$WORK/sarserve.log"
	exit 1
}
trap - EXIT

echo "tracesmoke: trace $trace_id spans the pipeline end to end"
