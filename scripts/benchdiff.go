// Benchdiff compares two BENCH_*.json envelopes and exits nonzero when a
// non-advisory leaf diverges beyond the tolerance — the regression gate
// `make benchdiff` runs against the committed baselines.
//
// Usage:
//
//	go run ./scripts/benchdiff.go [-tol 0.02] [-advisory pat,pat,...] baseline.json candidate.json
//
// Advisory patterns (path.Match against dotted leaf paths such as
// "data.seconds_j1") mark wall-clock and host-shape fields that vary
// between machines: they are printed when they change but never fail the
// gate. Everything else — modeled cycles, span counts, job counts — is
// deterministic simulator output and gates at the tolerance.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sarmany/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")

	var (
		tol      = flag.Float64("tol", 0.02, "relative tolerance for numeric leaves")
		advisory = flag.String("advisory", "", "comma-separated advisory path patterns (report, don't gate)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatalf("usage: benchdiff [-tol f] [-advisory pats] baseline.json candidate.json")
	}
	baseline, candidate := flag.Arg(0), flag.Arg(1)

	oldDoc, err := os.ReadFile(baseline)
	if err != nil {
		log.Fatal(err)
	}
	newDoc, err := os.ReadFile(candidate)
	if err != nil {
		log.Fatal(err)
	}

	opt := bench.DiffOptions{Tolerance: *tol}
	if *advisory != "" {
		for _, p := range strings.Split(*advisory, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opt.Advisory = append(opt.Advisory, p)
			}
		}
	}

	findings, err := bench.DiffEnvelopes(oldDoc, newDoc, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
	if n := bench.Regressions(findings); n > 0 {
		log.Fatalf("%s vs %s: %d regression(s) beyond %.0f%% tolerance", baseline, candidate, n, *tol*100)
	}
	fmt.Printf("benchdiff: %s vs %s: ok (%d advisory)\n", baseline, candidate, len(findings))
}
