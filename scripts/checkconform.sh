#!/bin/sh
# checkconform guards the emulator's conformance coverage: a commit range
# that changes internal/emu model code must also touch a conformance or
# emu test, so accounting changes always land with a test that pins them.
# Run via `make conformguard`; part of `make check`.
#
# The range defaults to the last commit (HEAD~1..HEAD); override with
# CONFORM_RANGE, e.g. CONFORM_RANGE=origin/main..HEAD for a whole branch.
set -eu
cd "$(dirname "$0")/.."

range="${CONFORM_RANGE:-HEAD~1..HEAD}"
if ! changed=$(git diff --name-only "$range" -- 2>/dev/null); then
	# Unborn or single-commit history: nothing to compare against.
	echo "checkconform: no commit range to inspect ($range); skipping"
	exit 0
fi

model=$(echo "$changed" | grep '^internal/emu/' | grep -v '_test\.go$' || true)
if [ -z "$model" ]; then
	echo "checkconform: no emulator model changes in $range"
	exit 0
fi

tests=$(echo "$changed" | grep -E '^(internal/conform/|internal/emu/[^/]*_test\.go)' || true)
if [ -z "$tests" ]; then
	echo "checkconform: emulator model files changed in $range without a conformance or emu test:"
	echo "$model" | sed 's/^/  /'
	echo "add or update a test under internal/conform/ or internal/emu/*_test.go"
	exit 1
fi

echo "checkconform: emulator changes in $range are covered by:"
echo "$tests" | sed 's/^/  /'

# Topology-model changes get a stricter gate: the mesh/array shape and
# its cycle pricing (hop, eLink bridge, per-chip SDRAM channel) are
# pinned by the conformance suite's exact analytic expectations, so a
# change to the topology files must ride with a conformance test — an
# emu unit test alone is not enough to re-pin the closed forms.
topomodel=$(echo "$changed" | grep -E '^internal/emu/(topology|params)\.go$' || true)
if [ -n "$topomodel" ]; then
	conformtests=$(echo "$changed" | grep -E '^internal/conform/[^/]*_test\.go$' || true)
	if [ -z "$conformtests" ]; then
		echo "checkconform: topology-model files changed in $range without a conformance test:"
		echo "$topomodel" | sed 's/^/  /'
		echo "add or update a test under internal/conform/ (the analytic suite pins"
		echo "mesh-distance and eLink-bridge cycle formulas exactly)"
		exit 1
	fi
	echo "checkconform: topology-model changes in $range are covered by:"
	echo "$conformtests" | sed 's/^/  /'
fi

# Fault-model changes get the same treatment: any non-test change under
# internal/fault/ or to the emulator's fault hooks must ride with a chaos
# or fault test, so injected costs stay pinned by goldens.
faultmodel=$(echo "$changed" | grep -E '^(internal/fault/|internal/emu/fault)' | grep -v '_test\.go$' || true)
if [ -n "$faultmodel" ]; then
	faulttests=$(echo "$changed" | grep -E '^(internal/fault/[^/]*_test\.go|internal/emu/fault_test\.go|internal/kernels/chaos_test\.go|internal/conform/faults_test\.go)' || true)
	if [ -z "$faulttests" ]; then
		echo "checkconform: fault-model files changed in $range without a chaos or fault test:"
		echo "$faultmodel" | sed 's/^/  /'
		echo "add or update a test under internal/fault/, internal/emu/fault_test.go,"
		echo "internal/kernels/chaos_test.go or internal/conform/faults_test.go"
		exit 1
	fi
	echo "checkconform: fault-model changes in $range are covered by:"
	echo "$faulttests" | sed 's/^/  /'
fi
