package conform

import (
	"fmt"
	"math"
	"testing"

	"sarmany/internal/emu"
	"sarmany/internal/machine"
	"sarmany/internal/obs"
)

// analyticCase pairs a small microbenchmark program with a closed-form
// expected cycle count derived from the Params alone. The expectation is
// compared EXACTLY (==): with the dyadic-rational timing constants these
// cases use, every quantity the model accumulates is exactly
// representable, so any deviation — however small — is an accounting
// change, not float noise.
type analyticCase struct {
	name string
	p    emu.Params
	run  func(ch *emu.Chip)
	want func(p emu.Params) float64
}

// bufc allocates or dies — the analytic programs are sized to fit.
func bufc(a machine.Alloc, n int) *machine.BufC {
	b, err := machine.NewBufC(a, n)
	if err != nil {
		panic(err)
	}
	return b
}

// wordsOf mirrors the model's 64-bit transfer count for n bytes.
func wordsOf(n int) float64 { return float64((n + 7) / 8) }

func analyticCases() []analyticCase {
	var cases []analyticCase

	// Local load/store loop dual-issued against FMA work: the committed
	// window costs the maximum of the two pipes.
	const localK, localFMA = 100, 150
	localLoop := func(ch *emu.Chip) {
		c := ch.Cores[0]
		buf := bufc(c.Bank(2), 64)
		for i := 0; i < localK; i++ {
			buf.Store(c, i%64, complex(float32(i), 0))
			buf.Load(c, i%64)
		}
		c.FMA(localFMA)
	}
	localWant := func(p emu.Params) float64 {
		return math.Max(localFMA, 2*localK*p.LocalAccessCycles)
	}
	cases = append(cases,
		analyticCase{name: "local-loop", p: emu.E16G3(), run: localLoop, want: localWant},
		analyticCase{name: "local-loop-8x8", p: emu.E64(), run: localLoop, want: localWant},
		analyticCase{name: "local-loop-16x16", p: emu.E256(), run: localLoop, want: localWant})
	lac2 := emu.E16G3()
	lac2.LocalAccessCycles = 2
	cases = append(cases,
		analyticCase{name: "local-loop-lac2", p: lac2, run: localLoop, want: localWant})

	// Stalling remote reads, parameterized by the exact mesh distance on
	// any topology: round-trip base, two hop terms per mesh hop, two eLink
	// terms per chip boundary the XY route crosses, and the NoC streaming
	// time of the payload.
	remoteRead := func(name string, p emu.Params, row, col int) analyticCase {
		tp := p.Topology()
		hops, bridges := tp.Dist(0, tp.IDOf(emu.Coord{Row: row, Col: col}))
		const k, nb = 10, 16
		return analyticCase{
			name: name, p: p,
			run: func(ch *emu.Chip) {
				c := ch.Cores[0]
				buf := bufc(ch.Cores[row*ch.P.GridCols()+col].Bank(0), nb/8)
				for i := 0; i < k; i++ {
					c.Load(buf.ElemAddr(0), nb)
				}
			},
			want: func(p emu.Params) float64 {
				return k * (p.RemoteReadBase +
					2*float64(hops)*p.RemoteHopCycles +
					2*float64(bridges)*p.ELinkHopCycles +
					wordsOf(nb)*8/p.NoCBytesPerCycle)
			},
		}
	}
	// The 4x4 mesh at every hop count it offers from core (0,0)...
	for hops := 1; hops <= 6; hops++ {
		row := hops
		if row > 3 {
			row = 3
		}
		cases = append(cases,
			remoteRead(fmt.Sprintf("remote-read-%dhop", hops), emu.E16G3(), row, hops-row))
	}
	// ...and the scaled, rectangular and eLink-bridged topologies at their
	// characteristic distances. On the 1x2 chip array of 4x4 chips the grid
	// is 4x8 and any route past column 3 crosses the bridge.
	twoChip := emu.E16G3().WithChips(1, 2)
	cases = append(cases,
		remoteRead("remote-read-8x8-mid", emu.E64(), 3, 4),
		remoteRead("remote-read-8x8-corner", emu.E64(), 7, 7),
		remoteRead("remote-read-16x16-corner", emu.E256(), 15, 15),
		remoteRead("remote-read-2x8-corner", emu.E16G3().WithMesh(2, 8), 1, 7),
		remoteRead("remote-read-cross-chip", twoChip, 0, 4),
		remoteRead("remote-read-cross-chip-far", twoChip, 3, 7),
	)

	// Stalling off-chip reads: full eLink+SDRAM round trip per access.
	const extK, extNB = 5, 64
	cases = append(cases, analyticCase{
		name: "ext-read-chain", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			c := ch.Cores[0]
			buf := bufc(ch.Ext(), extNB/8)
			for i := 0; i < extK; i++ {
				c.Load(buf.ElemAddr(0), extNB)
			}
		},
		want: func(p emu.Params) float64 {
			return extK * (p.ExtReadLatency + extNB/p.ExtBytesPerCycle)
		},
	})

	// Posted external writes under and over the shared-channel ceiling:
	// the barrier completes at the slower of the core's own finish time
	// and the channel drain of the phase's offered traffic.
	extWrite := func(stores, fma int) (func(ch *emu.Chip), func(p emu.Params) float64) {
		run := func(ch *emu.Chip) {
			buf := bufc(ch.Ext(), stores)
			ch.Run(1, func(c *emu.Core) {
				for i := 0; i < stores; i++ {
					buf.Store(c, i, 1)
				}
				c.FMA(fma)
				c.Barrier()
			})
		}
		want := func(p emu.Params) float64 {
			issue := float64(stores) * wordsOf(8) * 8 / p.NoCBytesPerCycle
			finish := math.Max(float64(fma), issue)
			drain := float64(stores) * 8 / p.ExtBytesPerCycle
			return math.Max(finish, drain)
		}
		return run, want
	}
	underRun, underWant := extWrite(10, 1000) // drain 80 ≪ compute 1000
	overRun, overWant := extWrite(200, 10)    // drain 1600 ≫ issue 200
	cases = append(cases,
		analyticCase{name: "ext-write-under-ceiling", p: emu.E16G3(), run: underRun, want: underWant},
		analyticCase{name: "ext-write-over-ceiling", p: emu.E16G3(), run: overRun, want: overWant})

	// A chain of external-read DMA descriptors: one engine, so transfers
	// serialize back-to-back after the per-descriptor setup cycles.
	const dmaM, dmaElems = 4, 128
	cases = append(cases, analyticCase{
		name: "dma-ext-read-chain", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			c := ch.Cores[0]
			ext := bufc(ch.Ext(), dmaM*dmaElems)
			local := bufc(c.Bank(2), dmaElems)
			var ds []emu.DMA
			for i := 0; i < dmaM; i++ {
				ds = append(ds, c.DMACopyC(local, 0, ext, i*dmaElems, dmaElems))
			}
			for _, d := range ds {
				c.DMAWait(d)
			}
		},
		want: func(p emu.Params) float64 {
			dur := p.ExtReadLatency + 8*dmaElems/p.ExtBytesPerCycle
			return p.DMASetupCycles + dmaM*dur
		},
	})

	// A posted external-write DMA burst: the engine streams the bytes at
	// channel bandwidth with no read round-trip latency (the write half of
	// the asymmetry the paper highlights).
	cases = append(cases, analyticCase{
		name: "dma-ext-write-posted", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			c := ch.Cores[0]
			ext := bufc(ch.Ext(), dmaElems)
			local := bufc(c.Bank(2), dmaElems)
			c.DMAWait(c.DMACopyC(ext, 0, local, 0, dmaElems))
		},
		want: func(p emu.Params) float64 {
			return p.DMASetupCycles + 8*dmaElems/p.ExtBytesPerCycle
		},
	})

	// Inter-core DMA to the far corner: the XY route's hop term prices
	// distance, so (0,0)->(3,3) is not neighbour-priced.
	const icElems = 64
	cases = append(cases, analyticCase{
		name: "dma-intercore-6hop", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			c := ch.Cores[0]
			far := bufc(ch.Cores[15].Bank(0), icElems)
			local := bufc(c.Bank(2), icElems)
			c.DMAWait(c.DMACopyC(far, 0, local, 0, icElems))
		},
		want: func(p emu.Params) float64 {
			return p.DMASetupCycles + p.RemoteReadBase +
				2*6*p.RemoteHopCycles + 8*icElems/p.DMABytesPerCycle
		},
	})

	// DMA fully overlapped by compute: the wait costs nothing beyond the
	// longer of the transfer and the work issued meanwhile.
	const ovFMA = 5000
	cases = append(cases, analyticCase{
		name: "dma-overlap-compute", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			c := ch.Cores[0]
			ext := bufc(ch.Ext(), dmaElems)
			local := bufc(c.Bank(2), dmaElems)
			d := c.DMACopyC(local, 0, ext, 0, dmaElems)
			c.FMA(ovFMA)
			c.DMAWait(d)
		},
		want: func(p emu.Params) float64 {
			dur := p.ExtReadLatency + 8*dmaElems/p.ExtBytesPerCycle
			return p.DMASetupCycles + math.Max(ovFMA, dur)
		},
	})

	// Link ping-pong between mesh neighbours: each round costs two
	// transfers plus both sides' issue, flag-poll and local-read cycles —
	// the steady state is exactly periodic.
	const ppRounds, ppW = 20, 16
	cases = append(cases, analyticCase{
		name: "link-pingpong", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			ab := ch.Connect(0, 1, 1)
			ba := ch.Connect(1, 0, 1)
			ch.Run(2, func(c *emu.Core) {
				block := make([]complex64, ppW)
				switch c.ID {
				case 0:
					for i := 0; i < ppRounds; i++ {
						ab.Send(c, block)
						ba.Recv(c)
					}
				case 1:
					for i := 0; i < ppRounds; i++ {
						ba.Send(c, ab.Recv(c))
					}
				}
			})
		},
		want: func(p emu.Params) float64 {
			w := wordsOf(ppW * 8)
			transit := p.RemoteHopCycles + w*8/p.NoCBytesPerCycle
			round := 2*transit + 2*w*p.LocalAccessCycles + 2*(w+1)
			return ppRounds * round
		},
	})

	// Barrier skew: every phase ends when its slowest core arrives; two
	// phases with opposite skew keep every core's clock in lockstep.
	const skewN, skewA = 4, 250
	cases = append(cases, analyticCase{
		name: "barrier-skew", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			ch.Run(skewN, func(c *emu.Core) {
				c.FMA(skewA * (c.ID + 1))
				c.Barrier()
				c.FMA(skewA * (skewN - c.ID))
				c.Barrier()
			})
		},
		want: func(p emu.Params) float64 { return 2 * skewN * skewA },
	})

	// Posted remote-write stream to a neighbour: issue cycles only.
	const rwK = 50
	cases = append(cases, analyticCase{
		name: "remote-write-stream", p: emu.E16G3(),
		run: func(ch *emu.Chip) {
			c := ch.Cores[0]
			buf := bufc(ch.Cores[1].Bank(0), 64)
			for i := 0; i < rwK; i++ {
				buf.Store(c, i%64, 1)
			}
		},
		want: func(p emu.Params) float64 {
			return rwK * wordsOf(8) * 8 / p.NoCBytesPerCycle
		},
	})

	// Link ping-pong across the eLink bridge: the same periodic steady
	// state as the neighbour case, with each crossing additionally paying
	// the bridge term. Cores 0 and 4 sit in mirrored positions of the two
	// chips: 4 hops, 1 bridge.
	cases = append(cases, analyticCase{
		name: "link-pingpong-cross-chip", p: twoChip,
		run: func(ch *emu.Chip) {
			ab := ch.Connect(0, 4, 1)
			ba := ch.Connect(4, 0, 1)
			ch.Run(5, func(c *emu.Core) {
				block := make([]complex64, ppW)
				switch c.ID {
				case 0:
					for i := 0; i < ppRounds; i++ {
						ab.Send(c, block)
						ba.Recv(c)
					}
				case 4:
					for i := 0; i < ppRounds; i++ {
						ba.Send(c, ab.Recv(c))
					}
				}
			})
		},
		want: func(p emu.Params) float64 {
			w := wordsOf(ppW * 8)
			transit := 4*p.RemoteHopCycles + p.ELinkHopCycles + w*8/p.NoCBytesPerCycle
			round := 2*transit + 2*w*p.LocalAccessCycles + 2*(w+1)
			return ppRounds * round
		},
	})

	// Inter-core DMA across the bridge: the descriptor pays the eLink
	// round trip on top of the hop term. (0,0)->(0,7): 7 hops, 1 bridge.
	cases = append(cases, analyticCase{
		name: "dma-intercore-cross-chip", p: twoChip,
		run: func(ch *emu.Chip) {
			c := ch.Cores[0]
			far := bufc(ch.Cores[7].Bank(0), icElems)
			local := bufc(c.Bank(2), icElems)
			c.DMAWait(c.DMACopyC(far, 0, local, 0, icElems))
		},
		want: func(p emu.Params) float64 {
			return p.DMASetupCycles + p.RemoteReadBase + 2*7*p.RemoteHopCycles +
				2*p.ELinkHopCycles + 8*icElems/p.DMABytesPerCycle
		},
	})

	// Per-chip SDRAM channels: one writer per chip posts the same burst,
	// and chip 1's channel is configured at half rate (a dyadic override,
	// so the expectation stays exact). The barrier completes when the
	// slower channel drains — not when a single shared channel would have
	// drained the combined traffic.
	slowChip1 := twoChip
	slowChip1.ExtBytesPerCycleByChip = []float64{0, 0.5}
	const pcStores = 100
	cases = append(cases, analyticCase{
		name: "ext-write-per-chip-channels", p: slowChip1,
		run: func(ch *emu.Chip) {
			buf := bufc(ch.Ext(), 2*pcStores)
			ch.Run(8, func(c *emu.Core) {
				if c.ID == 0 || c.ID == 4 { // one writer on each chip
					off := 0
					if c.ID == 4 {
						off = pcStores
					}
					for i := 0; i < pcStores; i++ {
						buf.Store(c, off+i, 1)
					}
				}
				c.Barrier()
			})
		},
		want: func(p emu.Params) float64 {
			issue := pcStores * wordsOf(8) * 8 / p.NoCBytesPerCycle
			drain0 := pcStores * 8 / p.ExtBytesPerCycle
			drain1 := pcStores * 8 / p.ExtBytesPerCycleByChip[1]
			return math.Max(issue, math.Max(drain0, drain1))
		},
	})

	// A stalling ext read from a chip-1 core pays that chip's own channel
	// bandwidth, not the default.
	cases = append(cases, analyticCase{
		name: "ext-read-slow-chip", p: slowChip1,
		run: func(ch *emu.Chip) {
			c := ch.Cores[4]
			buf := bufc(ch.Ext(), extNB/8)
			for i := 0; i < extK; i++ {
				c.Load(buf.ElemAddr(0), extNB)
			}
		},
		want: func(p emu.Params) float64 {
			return extK * (p.ExtReadLatency + extNB/p.ExtBytesPerCycleByChip[1])
		},
	})

	// Barrier skew on the chip array: no off-chip traffic, so the phase
	// algebra is identical to the single-chip case at twice the width.
	cases = append(cases, analyticCase{
		name: "barrier-skew-2chip", p: twoChip,
		run: func(ch *emu.Chip) {
			ch.Run(2*skewN, func(c *emu.Core) {
				c.FMA(skewA * (c.ID + 1))
				c.Barrier()
				c.FMA(skewA * (2*skewN - c.ID))
				c.Barrier()
			})
		},
		want: func(p emu.Params) float64 { return 2 * 2 * skewN * skewA },
	})

	return cases
}

// TestAnalyticDifferential runs every microbenchmark, compares the
// modeled cycle count exactly against the closed form, and requires a
// clean conformance report (including the profile invariants — every
// case runs traced).
func TestAnalyticDifferential(t *testing.T) {
	cases := analyticCases()
	if len(cases) < 25 {
		t.Fatalf("only %d analytic cases; the harness promises at least 25", len(cases))
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := emu.New(tc.p)
			ch.SetTracer(obs.NewTracer(tc.p.Clock))
			tc.run(ch)
			if got, want := ch.MaxCycles(), tc.want(tc.p); got != want {
				t.Errorf("modeled %v cycles, closed form says %v (diff %v)",
					got, want, got-want)
			}
			if rep := CheckAll(ch); !rep.OK() {
				t.Errorf("invariants: %v", rep.Err())
			}
		})
	}
}
