package conform

import (
	"sarmany/internal/emu"
)

// checkFaults verifies the fault-injection invariants of a completed run.
// With no injector attached (or an empty plan) it asserts the absence of
// fault state — every fault counter zero, no remaps — so accounting can
// never leak into clean runs. With a fault plan attached it verifies that
// retransmission, remapping and derating were booked honestly.
func checkFaults(rep *Report, ch *emu.Chip) {
	inj := ch.Faults()
	if inj == nil || inj.Empty() {
		checkFaultClean(rep, ch)
		return
	}
	rep.Checked++
	checkFaultLinks(rep, ch.LinkStats())
	checkRemaps(rep, ch)
	checkFaultAttribution(rep, ch)
	checkHaltedCores(rep, ch)
}

// checkFaultClean asserts that a run without injected faults carries no
// fault accounting at all.
func checkFaultClean(rep *Report, ch *emu.Chip) {
	rep.Checked++
	for _, c := range ch.Cores {
		s := &c.Stats
		if s.LinkRetries != 0 || s.DMARetries != 0 || s.RetryBytes != 0 ||
			s.LinkRetryCycles != 0 || s.DMARetryCycles != 0 || s.DerateCycles != 0 {
			rep.fail("fault.clean",
				"core %d carries fault accounting without a fault plan: %d link retries, %d dma retries, %d retry bytes, %v/%v/%v cycles",
				c.ID, s.LinkRetries, s.DMARetries, s.RetryBytes,
				s.LinkRetryCycles, s.DMARetryCycles, s.DerateCycles)
		}
	}
	for _, l := range ch.LinkStats() {
		if l.Retries != 0 || l.RetryBytes != 0 || l.RetryCycles != 0 {
			rep.fail("fault.clean",
				"link %d->%d carries %d retries without a fault plan", l.From, l.To, l.Retries)
		}
		if l.WireBlocks != l.Blocks || l.WireBytes != l.Bytes {
			rep.fail("fault.clean",
				"link %d->%d wire totals (%d blocks, %d bytes) differ from delivered (%d, %d) without a fault plan",
				l.From, l.To, l.WireBlocks, l.WireBytes, l.Blocks, l.Bytes)
		}
	}
	if n := len(ch.Remaps()); n != 0 {
		rep.fail("fault.clean", "%d slot remaps recorded without a fault plan", n)
	}
}

// checkFaultLinks verifies retransmission balance on every link: the wire
// totals are exactly the delivered traffic plus the retransmitted
// traffic, and the bytes that crossed the mesh are never fewer than the
// bytes the consumer received.
func checkFaultLinks(rep *Report, links []emu.LinkStat) {
	for _, l := range links {
		if l.WireBlocks != l.Blocks+l.Retries {
			rep.fail("fault.link-wire",
				"link %d->%d: %d wire blocks != %d delivered + %d retries",
				l.From, l.To, l.WireBlocks, l.Blocks, l.Retries)
		}
		if l.WireBytes != l.Bytes+l.RetryBytes {
			rep.fail("fault.link-wire",
				"link %d->%d: %d wire bytes != %d delivered + %d retransmitted",
				l.From, l.To, l.WireBytes, l.Bytes, l.RetryBytes)
		}
		if l.WireBytes < l.RecvBytes {
			rep.fail("fault.link-wire",
				"link %d->%d: %d bytes crossed the wire, fewer than the %d the consumer received",
				l.From, l.To, l.WireBytes, l.RecvBytes)
		}
		if l.RetryCycles < 0 {
			rep.fail("fault.link-wire",
				"link %d->%d: negative retry cycles %v", l.From, l.To, l.RetryCycles)
		}
	}
}

// checkRemaps verifies the recorded slot remaps: each one moves work off
// a dead core (halted individually or with its whole chip) onto a
// distinct live core, and no slot is remapped twice within a run —
// together with the kernel's identity assignment for healthy slots this
// guarantees the remapped tiles still partition the original tile set.
func checkRemaps(rep *Report, ch *emu.Chip) {
	seen := map[int]bool{}
	for _, m := range ch.Remaps() {
		if seen[m.Slot] {
			rep.fail("fault.remap", "slot %d remapped twice", m.Slot)
		}
		seen[m.Slot] = true
		if m.From == m.To {
			rep.fail("fault.remap", "slot %d remapped from core %d onto itself", m.Slot, m.From)
		}
		if m.From >= 0 && m.From < len(ch.Cores) && ch.Alive(m.From) {
			rep.fail("fault.remap",
				"slot %d moved off core %d, which the plan never halted", m.Slot, m.From)
		}
		if m.To < 0 || m.To >= len(ch.Cores) {
			rep.fail("fault.remap", "slot %d moved onto nonexistent core %d", m.Slot, m.To)
		} else if !ch.Alive(m.To) {
			rep.fail("fault.remap",
				"slot %d moved onto core %d, which the plan halted", m.Slot, m.To)
		}
	}
}

// checkFaultAttribution verifies that the fault-cost counters stay inside
// the cycle accounting they attribute: a retry's timeout+backoff is link
// stall and its re-issue is compute, so LinkRetryCycles can never exceed
// their sum; DerateCycles is by construction a subset of ComputeCycles.
// The cycle identity itself (compute+stall == clock) is checkCores' job
// and holds under faults unchanged.
func checkFaultAttribution(rep *Report, ch *emu.Chip) {
	n := ch.ActiveCount()
	for i := 0; i < n; i++ {
		s := &ch.Cores[i].Stats
		if s.LinkRetryCycles > s.LinkStallCycles+s.ComputeCycles+tolAt(s.LinkRetryCycles) {
			rep.fail("fault.attribution",
				"core %d: %v link-retry cycles exceed link stall %v + compute %v",
				i, s.LinkRetryCycles, s.LinkStallCycles, s.ComputeCycles)
		}
		if s.DerateCycles > s.ComputeCycles+tolAt(s.ComputeCycles) {
			rep.fail("fault.attribution",
				"core %d: %v derate cycles exceed compute cycles %v", i, s.DerateCycles, s.ComputeCycles)
		}
		if s.RetryBytes > s.NoCBytes {
			rep.fail("fault.attribution",
				"core %d: %d retransmitted bytes exceed total NoC bytes %d", i, s.RetryBytes, s.NoCBytes)
		}
		if s.LinkRetryCycles < 0 || s.DMARetryCycles < 0 || s.DerateCycles < 0 {
			rep.fail("fault.attribution",
				"core %d: negative fault cycle counter (%v/%v/%v)",
				i, s.LinkRetryCycles, s.DMARetryCycles, s.DerateCycles)
		}
	}
}

// checkHaltedCores verifies that hard-halted cores truly never ran —
// whether halted individually or via a whole-chip halt: their clocks
// never advanced and they accumulated no statistics.
func checkHaltedCores(rep *Report, ch *emu.Chip) {
	for id, c := range ch.Cores {
		if ch.Alive(id) {
			continue
		}
		if cy := c.Cycles(); cy != 0 {
			rep.fail("fault.halted", "halted core %d advanced to %v cycles", id, cy)
		}
		if c.Stats != (emu.CoreStats{}) {
			rep.fail("fault.halted", "halted core %d accumulated statistics", id)
		}
	}
}
