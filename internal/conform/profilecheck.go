package conform

import (
	"sarmany/internal/profile"
)

// CheckProfile verifies the structural invariants of a trace analysis:
// the critical path's segments are a chronological partition of
// [0, RunCycles] whose per-cause totals reconcile, and the per-phase
// energy rows tile the run and sum to the whole-run energy estimate
// exactly (the power model is linear, so any gap is an accounting bug in
// the attribution, not rounding).
func CheckProfile(p *profile.Profile) *Report {
	rep := &Report{}
	checkSegments(rep, p)
	checkEnergyRows(rep, p)
	checkDegradation(rep, p)
	return rep
}

// checkSegments verifies the critical-path partition and its per-cause
// accounting.
func checkSegments(rep *Report, p *profile.Profile) {
	rep.Checked++
	segs := p.Critical.Segments
	if len(segs) == 0 {
		if p.RunCycles > cycleEps {
			rep.fail("profile.segments", "no segments for a %v-cycle run", p.RunCycles)
		}
		return
	}
	if s := segs[0]; !closeCycles(s.Start, 0) {
		rep.fail("profile.segments", "first segment starts at %v, not 0", s.Start)
	}
	prevEnd := 0.0
	byCause := map[string]float64{}
	for i, s := range segs {
		if s.End < s.Start-cycleEps {
			rep.fail("profile.segments", "segment %d runs backward: [%v, %v]", i, s.Start, s.End)
		}
		if i > 0 && !closeCycles(s.Start, prevEnd) {
			rep.fail("profile.segments",
				"segment %d starts at %v, previous ended at %v (gap or overlap)",
				i, s.Start, prevEnd)
		}
		prevEnd = s.End
		byCause[s.Cause] += s.End - s.Start
	}
	if !closeCycles(prevEnd, p.RunCycles) {
		rep.fail("profile.segments",
			"segments end at %v, run is %v cycles — the path must partition the run",
			prevEnd, p.RunCycles)
	}
	for cause, want := range byCause {
		if got := p.Critical.ByCause[cause]; !closeCycles(got, want) {
			rep.fail("profile.by-cause",
				"cause %q: ByCause records %v cycles, segments sum to %v", cause, got, want)
		}
	}
	for cause, got := range p.Critical.ByCause {
		if _, ok := byCause[cause]; !ok && got > cycleEps {
			rep.fail("profile.by-cause", "cause %q has %v cycles but no segment", cause, got)
		}
	}
	if !closeCycles(p.Critical.Cycles(), p.RunCycles) {
		rep.fail("profile.by-cause",
			"per-cause totals sum to %v cycles, run is %v", p.Critical.Cycles(), p.RunCycles)
	}
}

// energyEps absorbs float rounding in joule comparisons (runs are in the
// microjoule-to-joule range; approx adds a 1e-9 relative term).
const energyEps = 1e-15

// checkEnergyRows verifies that the per-phase energy rows tile
// [0, RunCycles] and sum component-wise to the whole-run breakdown.
func checkEnergyRows(rep *Report, p *profile.Profile) {
	rep.Checked++
	rows := p.Phases
	if len(rows) == 0 {
		if p.RunCycles > cycleEps {
			rep.fail("profile.phase-rows", "no phase rows for a %v-cycle run", p.RunCycles)
		}
		return
	}
	if r := rows[0]; !closeCycles(r.Start, 0) {
		rep.fail("profile.phase-rows", "first row starts at %v, not 0", r.Start)
	}
	prevEnd := 0.0
	for i, r := range rows {
		if r.End < r.Start-cycleEps {
			rep.fail("profile.phase-rows", "row %d runs backward: [%v, %v]", i, r.Start, r.End)
		}
		if i > 0 && !closeCycles(r.Start, prevEnd) {
			rep.fail("profile.phase-rows",
				"row %d starts at %v, previous ended at %v (gap or overlap)", i, r.Start, prevEnd)
		}
		prevEnd = r.End
	}
	if !closeCycles(prevEnd, p.RunCycles) {
		rep.fail("profile.phase-rows",
			"rows end at %v, run is %v cycles — the rows must tile the run", prevEnd, p.RunCycles)
	}
	sum := profile.SumEnergy(rows)
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"compute", sum.ComputeJ, p.TotalEnergy.ComputeJ},
		{"local-mem", sum.LocalMemJ, p.TotalEnergy.LocalMemJ},
		{"noc", sum.NoCJ, p.TotalEnergy.NoCJ},
		{"elink", sum.ELinkJ, p.TotalEnergy.ELinkJ},
		{"static", sum.StaticJ, p.TotalEnergy.StaticJ},
	} {
		if !approx(c.got, c.want, energyEps) {
			rep.fail("profile.energy-sum",
				"%s: phase rows sum to %v J, whole-run estimate is %v J", c.name, c.got, c.want)
		}
	}
}

// checkDegradation verifies the fault report against the run's aggregate
// counters: the per-fault rows must sum — per mechanism and overall — to
// the whole-run overhead measured from the core statistics, the energy
// rows must sum to the priced overhead, and the remap rows must account
// for every recorded slot move. A profile without a fault report must not
// carry fault cycles in its aggregate statistics.
func checkDegradation(rep *Report, p *profile.Profile) {
	t := p.Total
	measured := t.LinkRetryCycles + t.DMARetryCycles + t.DerateCycles
	d := p.Faults
	if d == nil {
		if measured != 0 || t.RetryBytes != 0 {
			rep.fail("profile.degradation",
				"run carries %v fault cycles and %d retransmitted bytes but no degradation report",
				measured, t.RetryBytes)
		}
		return
	}
	rep.Checked++
	var byKind = map[string]float64{}
	var cycleSum, energySum float64
	var remapEvents uint64
	for i, r := range d.Rows {
		switch r.Kind {
		case "link-retry", "dma-retry", "derate", "remap":
		default:
			rep.fail("profile.degradation", "row %d has unknown kind %q", i, r.Kind)
		}
		if r.Cycles < 0 || r.EnergyJ < 0 {
			rep.fail("profile.degradation",
				"row %d (%s %s) has negative cost: %v cycles, %v J", i, r.Kind, r.Target, r.Cycles, r.EnergyJ)
		}
		if r.Kind == "remap" {
			remapEvents += r.Events
			if r.Cycles != 0 || r.EnergyJ != 0 {
				rep.fail("profile.degradation",
					"remap row %s carries cost (%v cycles, %v J); remapping itself is free",
					r.Target, r.Cycles, r.EnergyJ)
			}
		}
		byKind[r.Kind] += r.Cycles
		cycleSum += r.Cycles
		energySum += r.EnergyJ
	}
	for _, c := range []struct {
		kind string
		want float64
	}{
		{"link-retry", t.LinkRetryCycles},
		{"dma-retry", t.DMARetryCycles},
		{"derate", t.DerateCycles},
	} {
		if got := byKind[c.kind]; !closeCycles(got, c.want) {
			rep.fail("profile.degradation",
				"%s rows sum to %v cycles, aggregate counters measure %v", c.kind, got, c.want)
		}
	}
	if !closeCycles(cycleSum, d.OverheadCycles) {
		rep.fail("profile.degradation",
			"rows sum to %v cycles, report claims %v overhead", cycleSum, d.OverheadCycles)
	}
	if !closeCycles(d.OverheadCycles, measured) {
		rep.fail("profile.degradation",
			"report claims %v overhead cycles, aggregate counters measure %v", d.OverheadCycles, measured)
	}
	if !approx(energySum, d.OverheadEnergyJ, energyEps) {
		rep.fail("profile.degradation",
			"rows sum to %v J, report claims %v J overhead", energySum, d.OverheadEnergyJ)
	}
	if int(remapEvents) != d.RemappedSlots {
		rep.fail("profile.degradation",
			"remap rows account for %d slots, report claims %d", remapEvents, d.RemappedSlots)
	}
}
