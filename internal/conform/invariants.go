package conform

import (
	"math"

	"sarmany/internal/emu"
)

// checkCores verifies, for every core the aggregate views cover, the
// cycle identity (committed compute plus stall cycles reproduce the
// core's clock), the per-cause stall breakdown, and non-negativity of
// every cycle quantity.
func checkCores(rep *Report, ch *emu.Chip) {
	rep.Checked++
	n := ch.ActiveCount()
	for i := 0; i < n; i++ {
		c := ch.Cores[i]
		s := &c.Stats
		cy := c.Cycles()
		if cy < 0 {
			rep.fail("core.nonnegative", "core %d clock at %v cycles", c.ID, cy)
		}
		for _, q := range []struct {
			name string
			v    float64
		}{
			{"compute", s.ComputeCycles}, {"stall", s.StallCycles},
			{"stall.read", s.ReadStallCycles}, {"stall.ext", s.ExtStallCycles},
			{"stall.dma", s.DMAStallCycles}, {"stall.link", s.LinkStallCycles},
			{"stall.barrier", s.BarrierStallCycles},
		} {
			if q.v < 0 || math.IsNaN(q.v) || math.IsInf(q.v, 0) {
				rep.fail("core.nonnegative", "core %d %s = %v cycles", c.ID, q.name, q.v)
			}
		}
		if got := s.ComputeCycles + s.StallCycles; !closeCycles(got, cy) {
			rep.fail("core.cycle-identity",
				"core %d: compute %v + stall %v = %v cycles, clock at %v",
				c.ID, s.ComputeCycles, s.StallCycles, got, cy)
		}
		causes := s.ReadStallCycles + s.ExtStallCycles + s.DMAStallCycles +
			s.LinkStallCycles + s.BarrierStallCycles
		if !closeCycles(causes, s.StallCycles) {
			rep.fail("core.stall-breakdown",
				"core %d: per-cause stalls sum to %v cycles, StallCycles = %v",
				c.ID, causes, s.StallCycles)
		}
	}
}

// checkPhases verifies the barrier-phase trace: records tile the run from
// cycle zero with monotone non-overlapping spans, each barrier resolves
// at the later of the slowest core and the off-chip channel drain, the
// bound classification matches, and the channel is drained by the time
// every barrier completes.
func checkPhases(rep *Report, ch *emu.Chip) {
	phases := ch.Phases()
	if len(phases) == 0 {
		return
	}
	rep.Checked++
	end := ch.MaxCycles()
	if p := phases[0]; !closeCycles(p.Start, 0) {
		rep.fail("phase.tiling", "phase 0 starts at %v, not 0", p.Start)
	}
	prevEnd := 0.0
	for i, p := range phases {
		if p.End < p.Start-cycleEps {
			rep.fail("phase.tiling", "phase %d runs backward: [%v, %v]", i, p.Start, p.End)
		}
		if i > 0 && !closeCycles(p.Start, prevEnd) {
			rep.fail("phase.tiling",
				"phase %d starts at %v, previous phase ended at %v (gap or overlap)",
				i, p.Start, prevEnd)
		}
		prevEnd = p.End
		if p.SlowestCore < p.Start-cycleEps || p.SlowestCore > p.End+cycleEps {
			rep.fail("phase.resolution",
				"phase %d slowest-core time %v outside [%v, %v]",
				i, p.SlowestCore, p.Start, p.End)
		}
		if p.ExtBusy < 0 {
			rep.fail("phase.resolution", "phase %d negative ext busy %v", i, p.ExtBusy)
		}
		// The drain term is per SDRAM channel: on a single chip ExtBusy
		// is the one channel's service time; on a multi-chip array each
		// chip's channel drains independently and the barrier waits for
		// the slowest. maxBusy is the busiest channel's service time.
		maxBusy := p.ExtBusy
		if len(p.ExtBusyByChip) > 0 {
			maxBusy = 0
			var sum float64
			for k, b := range p.ExtBusyByChip {
				if b < 0 {
					rep.fail("phase.resolution", "phase %d chip %d negative ext busy %v", i, k, b)
				}
				sum += b
				if b > maxBusy {
					maxBusy = b
				}
			}
			if !closeCycles(sum, p.ExtBusy) {
				rep.fail("phase.resolution",
					"phase %d per-chip ext busy sums to %v, ExtBusy = %v", i, sum, p.ExtBusy)
			}
		}
		drain := p.Start + maxBusy
		want := p.SlowestCore
		if drain > want {
			want = drain
		}
		if !closeCycles(p.End, want) {
			rep.fail("phase.resolution",
				"phase %d ends at %v, want max(slowest %v, drain %v) = %v",
				i, p.End, p.SlowestCore, drain, want)
		}
		if p.BandwidthBound && drain < p.SlowestCore-cycleEps {
			rep.fail("phase.resolution",
				"phase %d marked bandwidth-bound but drain %v precedes slowest core %v",
				i, drain, p.SlowestCore)
		}
		if !p.BandwidthBound && drain > p.SlowestCore+cycleEps {
			rep.fail("phase.resolution",
				"phase %d marked compute-bound but drain %v exceeds slowest core %v",
				i, drain, p.SlowestCore)
		}
		// Drained at every barrier: the phase cannot end with off-chip
		// service time still owed on any channel beyond its own span.
		if maxBusy > p.End-p.Start+cycleEps {
			rep.fail("phase.ext-drain",
				"phase %d consumed %v service cycles on one channel in a %v-cycle span",
				i, maxBusy, p.End-p.Start)
		}
	}
	if prevEnd > end+tolAt(end) {
		rep.fail("phase.tiling", "last phase ends at %v, beyond the run end %v", prevEnd, end)
	}
}

// tolAt is approx's acceptance width at a given scale.
func tolAt(scale float64) float64 {
	if scale < 0 {
		scale = -scale
	}
	return cycleEps + 1e-9*scale
}

// checkPhaseStats reconciles the per-phase statistics deltas with the
// run totals: every field of every delta must be a genuine non-negative
// increment, and the deltas must sum to at most the totals (the residual
// is the post-final-barrier tail internal/profile accounts separately).
func checkPhaseStats(rep *Report, ch *emu.Chip) {
	phases := ch.Phases()
	if len(phases) == 0 {
		return
	}
	rep.Checked++
	sums := map[string]float64{}
	for i, p := range phases {
		emu.VisitStats(p.Stats, func(name string, v float64) {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				rep.fail("phase.stats-reconcile", "phase %d delta %s = %v", i, name, v)
			}
			sums[name] += v
		})
	}
	emu.VisitStats(ch.TotalStats(), func(name string, total float64) {
		if sum := sums[name]; sum > total+tolAt(total) {
			rep.fail("phase.stats-reconcile",
				"%s: phase deltas sum to %v, exceeding run total %v (wrapped or double-counted delta)",
				name, sum, total)
		}
	})
}

// checkLinks verifies streaming-link balance: the consumer received every
// block the producer sent, and both sides agree on the bytes moved.
func checkLinks(rep *Report, ch *emu.Chip) {
	links := ch.LinkStats()
	if len(links) == 0 {
		return
	}
	rep.Checked++
	for _, l := range links {
		if l.Blocks != l.Recvs {
			rep.fail("link.balance",
				"link %d->%d: %d blocks sent, %d received", l.From, l.To, l.Blocks, l.Recvs)
		}
		if l.Bytes != l.RecvBytes {
			rep.fail("link.balance",
				"link %d->%d: %d bytes sent, %d received", l.From, l.To, l.Bytes, l.RecvBytes)
		}
	}
}

// checkTrace verifies, when the run was traced, that every core's span
// stream is chronological and non-overlapping within [0, Cycles()] —
// the observable form of "core clocks never move backward".
func checkTrace(rep *Report, ch *emu.Chip) {
	if ch.Tracer() == nil {
		return
	}
	rep.Checked++
	n := ch.ActiveCount()
	for i := 0; i < n; i++ {
		tk := ch.CoreTrack(i)
		if tk == nil {
			continue
		}
		cy := ch.Cores[i].Cycles()
		prevEnd := 0.0
		for j, s := range tk.Spans() {
			if s.End <= s.Start {
				rep.fail("trace.monotone",
					"core %d span %d (%s) runs backward: [%v, %v]", i, j, s.Kind, s.Start, s.End)
			}
			if s.Start < -cycleEps {
				rep.fail("trace.monotone",
					"core %d span %d (%s) starts before cycle 0 at %v", i, j, s.Kind, s.Start)
			}
			if s.Start < prevEnd-cycleEps {
				rep.fail("trace.monotone",
					"core %d span %d (%s) starts at %v, before the previous span ended at %v (clock moved backward)",
					i, j, s.Kind, s.Start, prevEnd)
			}
			prevEnd = s.End
		}
		if prevEnd > cy+tolAt(cy) {
			rep.fail("trace.monotone",
				"core %d spans extend to %v, beyond its clock at %v", i, prevEnd, cy)
		}
	}
}
