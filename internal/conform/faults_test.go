package conform_test

import (
	"testing"

	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/fault"
	"sarmany/internal/machine"
	"sarmany/internal/obs"
	"sarmany/internal/profile"
)

// faultedPlan exercises every fault mechanism at once: a hard halt (slot 3
// must remap), a derate, a certain-to-fire link fault, and a
// certain-to-fire DMA fault.
func faultedPlan() fault.Plan {
	return fault.Plan{
		Seed:    99,
		Halts:   []int{3},
		Derates: []fault.Derate{{Core: 0, Factor: 2}},
		Links:   []fault.LinkFault{{From: 0, To: 1, Rate: 1, TimeoutCycles: 100, BackoffCycles: 10, MaxRetries: 2}},
		DMAs:    []fault.DMAFault{{Core: 0, Rate: 1, TimeoutCycles: 50, MaxRetries: 1}},
	}
}

// faultedRun executes a small 4-core workload (compute, an ext DMA burst,
// a streaming link, barriers) under faultedPlan, with the halted slot
// remapped, and returns the chip for the tamper tests to corrupt.
func faultedRun(t *testing.T) *emu.Chip {
	t.Helper()
	p := emu.E16G3()
	ch := emu.New(p)
	ch.SetTracer(obs.NewTracer(p.Clock))
	ch.SetFaults(fault.MustCompile(faultedPlan()))
	ext, err := machine.NewBufC(ch.Ext(), 256)
	if err != nil {
		t.Fatal(err)
	}
	link := ch.Connect(0, 1, 2)
	assign, err := ch.Assignments(4)
	if err != nil {
		t.Fatal(err)
	}
	slots := map[int]int{}
	for _, core := range assign {
		slots[core]++
	}
	ch.Run(4, func(c *emu.Core) {
		for i := 0; i < slots[c.ID]; i++ {
			c.FMA(100)
		}
		if c.ID == 0 {
			local, err := machine.NewBufC(c.Bank(2), 64)
			if err != nil {
				panic(err)
			}
			d := c.DMACopyC(local, 0, ext, 0, 64)
			c.DMAWait(d)
			link.Send(c, local.Data[:16])
		}
		if c.ID == 1 {
			link.Recv(c)
		}
		c.Barrier()
	})
	return ch
}

// TestConformFaultedRun is the positive gate: a run degraded by a full
// fault plan must still satisfy every invariant, including the profile
// degradation checks.
func TestConformFaultedRun(t *testing.T) {
	ch := faultedRun(t)
	rep := conform.CheckAll(ch)
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
	if len(ch.Remaps()) != 1 {
		t.Fatalf("remaps = %v; want exactly the halted slot moved", ch.Remaps())
	}
	p, err := profile.AnalyzeChip(ch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults == nil || len(p.Faults.Rows) == 0 {
		t.Fatal("faulted traced run produced no degradation report")
	}
}

// TestCheckDetectsFaultTampering corrupts each fault-accounting surface
// in turn and requires the checker to localize the damage.
func TestCheckDetectsFaultTampering(t *testing.T) {
	t.Run("clean-run-with-fault-counters", func(t *testing.T) {
		ch := smallRun()
		ch.Cores[0].Stats.LinkRetries = 1
		wantViolation(t, conform.Check(ch), "fault.clean")
	})
	t.Run("retry-bytes-exceed-noc", func(t *testing.T) {
		ch := faultedRun(t)
		ch.Cores[0].Stats.RetryBytes = ch.Cores[0].Stats.NoCBytes + 1
		wantViolation(t, conform.Check(ch), "fault.attribution")
	})
	t.Run("derate-exceeds-compute", func(t *testing.T) {
		ch := faultedRun(t)
		ch.Cores[0].Stats.DerateCycles = ch.Cores[0].Stats.ComputeCycles + 1
		wantViolation(t, conform.Check(ch), "fault.attribution")
	})
	t.Run("negative-fault-cycles", func(t *testing.T) {
		ch := faultedRun(t)
		ch.Cores[1].Stats.DMARetryCycles = -1
		wantViolation(t, conform.Check(ch), "fault.attribution")
	})
	t.Run("remap-from-live-core", func(t *testing.T) {
		ch := faultedRun(t)
		ch.Remaps()[0].From = 1 // core 1 was never halted
		wantViolation(t, conform.Check(ch), "fault.remap")
	})
	t.Run("remap-onto-halted-core", func(t *testing.T) {
		ch := faultedRun(t)
		ch.Remaps()[0].To = 3 // core 3 is halted
		wantViolation(t, conform.Check(ch), "fault.remap")
	})
	t.Run("halted-core-ran", func(t *testing.T) {
		ch := faultedRun(t)
		ch.Cores[3].Stats.FMA = 1
		wantViolation(t, conform.Check(ch), "fault.halted")
	})
}

// TestCheckDetectsChipFaultTampering runs a 1x2 chip array with chip 1
// hard-halted and corrupts the chip-level fault surfaces: the checker
// must reject remaps onto the dead chip, remaps claiming to move work
// off cores that are alive (or don't exist), and any sign the halted
// chip's cores ran.
func TestCheckDetectsChipFaultTampering(t *testing.T) {
	chipHaltedRun := func(t *testing.T) *emu.Chip {
		t.Helper()
		ch := emu.New(emu.E16G3().WithMesh(2, 2).WithChips(1, 2))
		ch.SetFaults(fault.MustCompile(fault.Plan{ChipHalts: []int{1}}))
		if _, err := ch.Assignments(8); err != nil {
			t.Fatal(err)
		}
		ch.Run(8, func(c *emu.Core) {
			c.FMA(100)
			c.Barrier()
		})
		return ch
	}
	t.Run("clean", func(t *testing.T) {
		ch := chipHaltedRun(t)
		if rep := conform.Check(ch); !rep.OK() {
			t.Fatal(rep.Err())
		}
		if len(ch.Remaps()) != 4 {
			t.Fatalf("remaps = %+v; want the halted chip's four slots moved", ch.Remaps())
		}
	})
	t.Run("remap-onto-halted-chip", func(t *testing.T) {
		ch := chipHaltedRun(t)
		ch.Remaps()[0].To = 3 // core 3 sits on the halted chip
		wantViolation(t, conform.Check(ch), "fault.remap")
	})
	t.Run("remap-from-live-chip", func(t *testing.T) {
		ch := chipHaltedRun(t)
		ch.Remaps()[0].From = 0 // chip 0 is alive
		wantViolation(t, conform.Check(ch), "fault.remap")
	})
	t.Run("remap-onto-nonexistent-core", func(t *testing.T) {
		ch := chipHaltedRun(t)
		ch.Remaps()[0].To = 99
		wantViolation(t, conform.Check(ch), "fault.remap")
	})
	t.Run("halted-chip-core-ran", func(t *testing.T) {
		ch := chipHaltedRun(t)
		ch.Cores[6].Stats.FMA = 1 // core 6 sits on the halted chip
		wantViolation(t, conform.Check(ch), "fault.halted")
	})
}

// TestCheckFaultLinksTampering feeds hand-corrupted link statistics to
// the retransmission-balance checker.
func TestCheckFaultLinksTampering(t *testing.T) {
	good := emu.LinkStat{
		From: 0, To: 1, Blocks: 4, Bytes: 512, Recvs: 4, RecvBytes: 512,
		Retries: 2, RetryBytes: 256, RetryCycles: 300,
		WireBlocks: 6, WireBytes: 768,
	}
	if rep := conform.CheckFaultLinksReport([]emu.LinkStat{good}); !rep.OK() {
		t.Fatalf("balanced faulty link flagged: %v", rep.Err())
	}
	cases := []struct {
		name   string
		mutate func(*emu.LinkStat)
	}{
		{"wire-blocks", func(l *emu.LinkStat) { l.WireBlocks-- }},
		{"wire-bytes", func(l *emu.LinkStat) { l.WireBytes += 64 }},
		{"wire-under-recv", func(l *emu.LinkStat) { l.WireBytes = 128; l.Bytes = 0; l.RetryBytes = 128 }},
		{"negative-retry-cycles", func(l *emu.LinkStat) { l.RetryCycles = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := good
			tc.mutate(&l)
			wantViolation(t, conform.CheckFaultLinksReport([]emu.LinkStat{l}), "fault.link-wire")
		})
	}
}

// TestCheckProfileDegradation tampers with the degradation report and
// requires CheckProfile to catch every inconsistency against the
// aggregate counters.
func TestCheckProfileDegradation(t *testing.T) {
	analyze := func(t *testing.T) *profile.Profile {
		t.Helper()
		p, err := profile.AnalyzeChip(faultedRun(t))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	t.Run("clean", func(t *testing.T) {
		if rep := conform.CheckProfile(analyze(t)); !rep.OK() {
			t.Fatal(rep.Err())
		}
	})
	t.Run("row-cycles", func(t *testing.T) {
		p := analyze(t)
		p.Faults.Rows[0].Cycles += 7
		wantViolation(t, conform.CheckProfile(p), "profile.degradation")
	})
	t.Run("overhead-claim", func(t *testing.T) {
		p := analyze(t)
		p.Faults.OverheadCycles *= 2
		wantViolation(t, conform.CheckProfile(p), "profile.degradation")
	})
	t.Run("overhead-energy", func(t *testing.T) {
		p := analyze(t)
		p.Faults.OverheadEnergyJ *= 2
		wantViolation(t, conform.CheckProfile(p), "profile.degradation")
	})
	t.Run("missing-report", func(t *testing.T) {
		p := analyze(t)
		p.Faults = nil
		wantViolation(t, conform.CheckProfile(p), "profile.degradation")
	})
	t.Run("remap-slot-count", func(t *testing.T) {
		p := analyze(t)
		p.Faults.RemappedSlots++
		wantViolation(t, conform.CheckProfile(p), "profile.degradation")
	})
	t.Run("costed-remap-row", func(t *testing.T) {
		p := analyze(t)
		for i := range p.Faults.Rows {
			if p.Faults.Rows[i].Kind == "remap" {
				p.Faults.Rows[i].EnergyJ = 1e-9
			}
		}
		wantViolation(t, conform.CheckProfile(p), "profile.degradation")
	})
}
