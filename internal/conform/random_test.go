package conform

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sarmany/internal/emu"
	"sarmany/internal/machine"
	"sarmany/internal/obs"
)

// randOp is one pre-generated instruction of a random program. Programs
// are generated BEFORE the run from a seeded source and then replayed
// inside the core goroutines: the generator never races, and the same
// seed always produces the same program.
type randOp struct {
	kind randKind
	n    int // op repeat count / transfer size, kind-dependent
	idx  int // buffer slot / peer selector, kind-dependent
}

type randKind int

const (
	opFMA randKind = iota
	opIOp
	opTrig
	opLocalLoad
	opLocalStore
	opRemoteRead
	opRemoteWrite
	opExtLoad
	opExtStore
	opDMAExtRead
	opDMAInterCore
	numRandKinds
)

const (
	randLocalLen = 32 // elements in each core's scratch buffer
	randExtPart  = 64 // elements of the ext buffer owned by each core
)

// randProgram is a complete multi-core program: per-core, per-round op
// lists separated by barriers.
type randProgram struct {
	cores  int
	rounds [][][]randOp // rounds[r][core] = op list
}

// genProgram draws a program from the seed. All shared state is
// partitioned so that, at run time, every mutable element is touched by
// exactly one goroutine: core i writes only its own scratch buffer, its
// own slot of the write mailbox, and its own partition of the external
// buffer; cross-core reads target buffers that are pre-filled before the
// run and read-only during it.
func genProgram(seed int64) randProgram {
	rng := rand.New(rand.NewSource(seed))
	p := randProgram{cores: 2 + rng.Intn(15)} // 2..16
	nRounds := 2 + rng.Intn(3)                // 2..4
	for r := 0; r < nRounds; r++ {
		round := make([][]randOp, p.cores)
		for c := range round {
			ops := make([]randOp, 5+rng.Intn(36)) // 5..40
			for i := range ops {
				k := randKind(rng.Intn(int(numRandKinds)))
				op := randOp{kind: k}
				switch k {
				case opFMA:
					op.n = 1 + rng.Intn(50)
				case opIOp:
					op.n = 1 + rng.Intn(20)
				case opTrig:
					op.n = 1 + rng.Intn(5)
				case opLocalLoad, opLocalStore:
					op.idx = rng.Intn(randLocalLen)
				case opRemoteRead:
					op.idx = rng.Intn(p.cores) // peer whose constants we read
				case opRemoteWrite:
					// target slot is always the core's own; nothing to draw
				case opExtLoad, opExtStore:
					op.idx = rng.Intn(randExtPart)
				case opDMAExtRead:
					op.n = 8 * (1 + rng.Intn(randLocalLen/8)) // bytes, multiple of 8
				case opDMAInterCore:
					op.n = 8 * (1 + rng.Intn(randLocalLen/8))
					op.idx = rng.Intn(p.cores)
				}
				ops[i] = op
			}
			round[c] = ops
		}
		p.rounds = append(p.rounds, round)
	}
	return p
}

// runProgram executes the program on a fresh traced chip and returns it.
func runProgram(t *testing.T, prog randProgram) *emu.Chip {
	t.Helper()
	par := emu.E16G3()
	ch := emu.New(par)
	ch.SetTracer(obs.NewTracer(par.Clock))

	// Pre-run allocation and fill: per-core scratch (mutable, owned),
	// per-core constant banks (read-only during the run), one write
	// mailbox with a slot per core, and a partitioned external buffer.
	scratch := make([]*machine.BufC, prog.cores)
	consts := make([]*machine.BufC, prog.cores)
	for i := 0; i < prog.cores; i++ {
		scratch[i] = bufc(ch.Cores[i].Bank(2), randLocalLen)
		consts[i] = bufc(ch.Cores[i].Bank(1), randLocalLen)
		for j := 0; j < randLocalLen; j++ {
			consts[i].Data[j] = complex(float32(i), float32(j))
		}
	}
	mailbox := bufc(ch.Cores[0].Bank(3), prog.cores)
	ext := bufc(ch.Ext(), prog.cores*randExtPart)

	ch.Run(prog.cores, func(c *emu.Core) {
		var pending []emu.DMA
		for _, round := range prog.rounds {
			for _, op := range round[c.ID] {
				switch op.kind {
				case opFMA:
					c.FMA(op.n)
				case opIOp:
					c.IOp(op.n)
				case opTrig:
					c.Trig(op.n)
				case opLocalLoad:
					scratch[c.ID].Load(c, op.idx)
				case opLocalStore:
					scratch[c.ID].Store(c, op.idx, complex(1, 0))
				case opRemoteRead:
					consts[op.idx].Load(c, c.ID%randLocalLen)
				case opRemoteWrite:
					mailbox.Store(c, c.ID, complex(float32(c.ID), 0))
				case opExtLoad:
					ext.Load(c, c.ID*randExtPart+op.idx)
				case opExtStore:
					ext.Store(c, c.ID*randExtPart+op.idx, 1)
				case opDMAExtRead:
					pending = append(pending,
						c.DMACopyC(scratch[c.ID], 0, ext, c.ID*randExtPart, op.n/8))
				case opDMAInterCore:
					pending = append(pending,
						c.DMACopyC(scratch[c.ID], 0, consts[op.idx], 0, op.n/8))
				}
			}
			for _, d := range pending {
				c.DMAWait(d)
			}
			pending = pending[:0]
			c.Barrier()
		}
	})
	return ch
}

// fingerprint reduces a completed run to a deterministic string: the run
// length, every core's clock and cycle split, the summed statistics, and
// the phase trace. Two runs of the same program must produce identical
// fingerprints.
func fingerprint(ch *emu.Chip) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "max=%v\n", ch.MaxCycles())
	for i := 0; i < ch.ActiveCount(); i++ {
		c := ch.Cores[i]
		fmt.Fprintf(&sb, "core%d cycles=%v compute=%v stall=%v\n",
			i, c.Cycles(), c.Stats.ComputeCycles, c.Stats.StallCycles)
	}
	emu.VisitStats(ch.TotalStats(), func(name string, v float64) {
		fmt.Fprintf(&sb, "%s=%v\n", name, v)
	})
	for i, p := range ch.Phases() {
		fmt.Fprintf(&sb, "phase%d [%v,%v] slowest=%v ext=%v bw=%v\n",
			i, p.Start, p.End, p.SlowestCore, p.ExtBusy, p.BandwidthBound)
	}
	return sb.String()
}

// TestRandomProgramsConform generates random multi-core programs from
// fixed seeds and requires every run to satisfy the full invariant set
// and to be bit-identical across repeated executions (run with -race in
// `make conform` — determinism must not come from accidental ordering).
func TestRandomProgramsConform(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := genProgram(seed)
			var first string
			for rep := 0; rep < 3; rep++ {
				ch := runProgram(t, prog)
				if rep := CheckAll(ch); !rep.OK() {
					t.Fatalf("invariants: %v", rep.Err())
				}
				fp := fingerprint(ch)
				if first == "" {
					first = fp
				} else if fp != first {
					t.Fatalf("run %d diverged from run 0:\n--- run 0 ---\n%s--- run %d ---\n%s",
						rep, first, rep, fp)
				}
			}
		})
	}
}

// TestLinkChainDeterminism pushes blocks down a 4-stage link pipeline —
// the concurrency pattern the FFBP flow engine uses — and requires the
// same fingerprint on every execution plus a clean conformance report.
func TestLinkChainDeterminism(t *testing.T) {
	const stages, blocks, blockLen, depth = 4, 25, 8, 2
	run := func() *emu.Chip {
		par := emu.E16G3()
		ch := emu.New(par)
		ch.SetTracer(obs.NewTracer(par.Clock))
		links := make([]*emu.Link, stages-1)
		for i := range links {
			links[i] = ch.Connect(i, i+1, depth)
		}
		ch.Run(stages, func(c *emu.Core) {
			switch {
			case c.ID == 0:
				block := make([]complex64, blockLen)
				for b := 0; b < blocks; b++ {
					c.FMA(10)
					links[0].Send(c, block)
				}
			case c.ID == stages-1:
				for b := 0; b < blocks; b++ {
					links[c.ID-1].Recv(c)
					c.FMA(25)
				}
			default:
				for b := 0; b < blocks; b++ {
					v := links[c.ID-1].Recv(c)
					c.FMA(15)
					links[c.ID].Send(c, v)
				}
			}
		})
		return ch
	}
	var first string
	for rep := 0; rep < 3; rep++ {
		ch := run()
		if rep := CheckAll(ch); !rep.OK() {
			t.Fatalf("invariants: %v", rep.Err())
		}
		fp := fingerprint(ch)
		if first == "" {
			first = fp
		} else if fp != first {
			t.Fatalf("pipeline run %d diverged:\n%s\nvs\n%s", rep, first, fp)
		}
	}
}
