package conform

import "sarmany/internal/emu"

// CheckFaultLinksReport exposes the link retransmission-balance checker
// to the external tamper tests: the real LinkStats are derived read-only
// state, so corrupted statistics have to be fed in directly.
func CheckFaultLinksReport(links []emu.LinkStat) *Report {
	rep := &Report{}
	checkFaultLinks(rep, links)
	return rep
}
