package conform_test

import (
	"strings"
	"sync"
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/kernels"
	"sarmany/internal/obs"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// tracedFFBP runs the 16-core FFBP at the reduced workload once, traced,
// and shares the chip across tests (read-only after Run).
var tracedFFBP = sync.OnceValue(func() *emu.Chip {
	cfg := report.Small()
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	ch := emu.New(cfg.Epiphany)
	tr := obs.NewTracer(cfg.Epiphany.Clock)
	tr.SetCapacity(1 << 16)
	ch.SetTracer(tr)
	if _, _, err := kernels.ParFFBP(ch, 16, data, cfg.Params, cfg.Box); err != nil {
		panic(err)
	}
	return ch
})

// TestConformFFBP is the end-to-end gate: the real 16-core FFBP workload
// (the paper's headline kernel) must satisfy every invariant, including
// the profile checks over its critical path and energy rows.
func TestConformFFBP(t *testing.T) {
	rep := conform.CheckAll(tracedFFBP())
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
	// Core, phase, phase-stats, trace, profile-segment and energy-row
	// groups all apply to a traced FFBP run (links don't — FFBP shares
	// through the mesh, not streaming links).
	if rep.Checked < 6 {
		t.Fatalf("only %d invariant groups evaluated on a traced FFBP run; want the full set", rep.Checked)
	}
}

// TestConformAutofocus runs the streaming autofocus kernel — the
// link-heavy workload — through the same gate.
func TestConformAutofocus(t *testing.T) {
	cfg := report.Small()
	pairs := report.AutofocusWorkload(cfg)
	shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)
	ch := emu.New(cfg.Epiphany)
	tr := obs.NewTracer(cfg.Epiphany.Clock)
	tr.SetCapacity(1 << 16)
	ch.SetTracer(tr)
	if _, err := kernels.ParAutofocus(ch, pairs, shifts); err != nil {
		t.Fatal(err)
	}
	rep := conform.CheckAll(ch)
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
}

// smallRun produces a fresh small run the tamper tests can corrupt.
func smallRun() *emu.Chip {
	p := emu.E16G3()
	ch := emu.New(p)
	ch.SetTracer(obs.NewTracer(p.Clock))
	ch.Run(4, func(c *emu.Core) {
		c.FMA(100 * (c.ID + 1))
		c.Barrier()
	})
	return ch
}

// wantViolation asserts that the report flags the named invariant.
func wantViolation(t *testing.T, rep *conform.Report, invariant string) {
	t.Helper()
	if rep.OK() {
		t.Fatalf("tampered run passed; want a %q violation", invariant)
	}
	for _, v := range rep.Violations {
		if v.Invariant == invariant {
			return
		}
	}
	t.Fatalf("no %q violation; got: %v", invariant, rep.Err())
}

// TestCheckDetectsTampering corrupts each accounting surface in turn and
// requires the checker to localize the damage to the right invariant —
// the checker's own regression suite.
func TestCheckDetectsTampering(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		if rep := conform.Check(smallRun()); !rep.OK() {
			t.Fatal(rep.Err())
		}
	})
	t.Run("cycle-identity", func(t *testing.T) {
		ch := smallRun()
		ch.Cores[0].Stats.ComputeCycles += 5
		wantViolation(t, conform.Check(ch), "core.cycle-identity")
	})
	t.Run("nonnegative", func(t *testing.T) {
		ch := smallRun()
		ch.Cores[1].Stats.StallCycles = -1
		wantViolation(t, conform.Check(ch), "core.nonnegative")
	})
	t.Run("stall-breakdown", func(t *testing.T) {
		ch := smallRun()
		ch.Cores[2].Stats.BarrierStallCycles += 3
		wantViolation(t, conform.Check(ch), "core.stall-breakdown")
	})
	t.Run("stats-reconcile", func(t *testing.T) {
		ch := smallRun()
		// Shrinking a run total below the phase-delta sum models a wrapped
		// or double-counted delta.
		ch.Cores[3].Stats.FMA = 1
		rep := conform.Check(ch)
		wantViolation(t, rep, "phase.stats-reconcile")
		if !strings.Contains(rep.Err().Error(), "ops.fma") {
			t.Fatalf("violation does not name the field: %v", rep.Err())
		}
	})
	t.Run("err-names-invariant", func(t *testing.T) {
		ch := smallRun()
		ch.Cores[0].Stats.ComputeCycles += 5
		err := conform.Check(ch).Err()
		if err == nil || !strings.Contains(err.Error(), "core.cycle-identity") {
			t.Fatalf("Err() must name the violated invariant, got: %v", err)
		}
	})
}

// TestCheckUntracedRun verifies the checker degrades gracefully when no
// tracer was attached: core/phase/stats invariants still run, trace and
// profile checks are skipped rather than failed.
func TestCheckUntracedRun(t *testing.T) {
	p := emu.E16G3()
	ch := emu.New(p)
	ch.Run(2, func(c *emu.Core) {
		c.FMA(50)
		c.Barrier()
	})
	rep := conform.CheckAll(ch)
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
	if rep.Checked == 0 {
		t.Fatal("no invariant groups evaluated")
	}
}
