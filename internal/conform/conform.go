// Package conform is the simulator conformance harness: it machine-checks
// the structural invariants a completed emu.Chip run must satisfy and (in
// its test suite) validates the discrete-event timing model against
// closed-form analytic expectations derived from Params alone.
//
// The whole reproduction rests on the emulator's cycle accounting — the
// profiler derives critical paths and per-phase energy from it, and the
// paper-scale speedup/efficiency tables are only as good as the
// stall/traffic bookkeeping. With no hardware to calibrate against, the
// equivalent of validating a timing model with measured microbenchmarks
// is twofold, and this package is both halves:
//
//   - Check verifies, after any Run, that the run's bookkeeping is
//     internally consistent: barrier phases tile the run without overlap,
//     every core's compute+stall cycles reproduce its clock, the
//     per-cause stall breakdown sums exactly, per-phase statistics deltas
//     reconcile with the run totals, streaming links are balanced
//     (producer and consumer agree on blocks and bytes), the off-chip
//     channel is drained at every barrier, and traced span streams are
//     monotone (core clocks never move backward). CheckProfile extends
//     the same discipline to internal/profile output: critical-path
//     segments and per-phase energy rows must partition the run exactly.
//
//   - The package's tests pair small parameterized microbenchmark
//     programs with closed-form expected cycle counts (local access
//     loops, stalling remote reads at varying hop counts, posted
//     off-chip writes under and over the bandwidth ceiling, DMA chains,
//     link ping-pong, barrier skew) compared exactly, plus a seeded
//     generator of random multi-core programs asserting the invariants
//     and run-to-run determinism under the race detector.
//
// Run the suite via `make conform` (part of `make check`); the facade
// exports Check as sarmany.CheckChip, and `epirun -check` / `sarprof
// -check` run it after real FFBP and autofocus workloads.
package conform

import (
	"errors"
	"fmt"
	"strings"

	"sarmany/internal/emu"
	"sarmany/internal/profile"
)

// Violation is one failed invariant.
type Violation struct {
	// Invariant is the machine name of the failed check, e.g.
	// "core.cycle-identity" or "phase.tiling".
	Invariant string
	// Detail locates and quantifies the failure.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Report is the outcome of a conformance pass: which invariant groups
// were evaluated and every violation found.
type Report struct {
	// Checked counts the invariant groups that were evaluated (groups
	// without applicable state — e.g. phase invariants of a barrier-free
	// run — are skipped, not passed).
	Checked int
	// Violations lists every failed invariant, in check order.
	Violations []Violation
}

// OK reports whether every evaluated invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, else one error naming every
// violation.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "conform: %d invariant violation(s):", len(r.Violations))
	for _, v := range r.Violations {
		sb.WriteString("\n  " + v.String())
	}
	return errors.New(sb.String())
}

// fail records a violation of the named invariant.
func (r *Report) fail(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// merge appends other's counts and violations.
func (r *Report) merge(other *Report) {
	r.Checked += other.Checked
	r.Violations = append(r.Violations, other.Violations...)
}

// approx reports a ≈ b within absEps plus a 1e-9 relative term at the
// scale of the larger magnitude.
func approx(a, b, absEps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	} else if -b > m {
		m = -b
	}
	return d <= absEps+1e-9*m
}

// cycleEps absorbs float rounding in cycle comparisons. Model times are
// sums of per-operation cycle quantities, so real violations are
// fractions of a cycle or more, far above accumulated ulps; the relative
// term in approx covers long runs whose totals reach 1e9+ cycles.
const cycleEps = 1e-6

// closeCycles reports that two cycle quantities agree.
func closeCycles(a, b float64) bool { return approx(a, b, cycleEps) }

// Check verifies the structural invariants of a completed run on ch. It
// must be called after Run (or after a directly driven kernel) has
// returned, never concurrently with one; it settles pending dual-issue
// windows (which does not change modeled time) and then only reads.
func Check(ch *emu.Chip) *Report {
	ch.Settle()
	rep := &Report{}
	checkCores(rep, ch)
	checkPhases(rep, ch)
	checkPhaseStats(rep, ch)
	checkLinks(rep, ch)
	checkFaults(rep, ch)
	checkTrace(rep, ch)
	return rep
}

// CheckAll runs Check and, when the chip was traced, analyzes the run
// with internal/profile and verifies the profile invariants too — the
// full pass behind sarmany.CheckChip and the -check CLI flags.
func CheckAll(ch *emu.Chip) *Report {
	rep := Check(ch)
	if ch.Tracer() == nil {
		return rep
	}
	p, err := profile.AnalyzeChip(ch)
	if err != nil {
		rep.fail("profile.analyze", "%v", err)
		return rep
	}
	rep.merge(CheckProfile(p))
	return rep
}
