package mat

import (
	"testing"
	"testing/quick"
)

func TestNewCZeroed(t *testing.T) {
	m := NewC(3, 4)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if m.At(r, c) != 0 {
				t.Fatalf("element (%d,%d) not zero", r, c)
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewC(2, 2)
	m.Set(1, 0, complex(1, 2))
	if got := m.At(1, 0); got != complex(1, 2) {
		t.Errorf("At = %v", got)
	}
	m.Add(1, 0, complex(2, -1))
	if got := m.At(1, 0); got != complex(3, 1) {
		t.Errorf("after Add = %v", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewC(2, 3)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, 3) },
		func() { m.At(-1, 0) },
		func() { m.Set(0, -1, 0) },
		func() { m.Row(2) },
		func() { m.View(1, 1, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := NewC(4, 5)
	v := m.View(1, 2, 2, 3)
	v.Set(0, 0, complex(7, 0))
	if m.At(1, 2) != complex(7, 0) {
		t.Error("view write not visible in parent")
	}
	m.Set(2, 4, complex(0, 9))
	if v.At(1, 2) != complex(0, 9) {
		t.Error("parent write not visible in view")
	}
	if v.Rows != 2 || v.Cols != 3 || v.Stride != 5 {
		t.Errorf("view shape %d %d stride %d", v.Rows, v.Cols, v.Stride)
	}
}

func TestViewOfView(t *testing.T) {
	m := NewC(6, 6)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			m.Set(r, c, complex(float32(r), float32(c)))
		}
	}
	v := m.View(1, 1, 4, 4).View(1, 1, 2, 2)
	if v.At(0, 0) != complex(2, 2) || v.At(1, 1) != complex(3, 3) {
		t.Errorf("nested view wrong: %v %v", v.At(0, 0), v.At(1, 1))
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewC(3, 3)
	m.Set(1, 1, 5)
	v := m.View(0, 0, 2, 2)
	cl := v.Clone()
	if !cl.Equal(v) {
		t.Fatal("clone differs from source")
	}
	cl.Set(1, 1, 9)
	if m.At(1, 1) != 5 {
		t.Error("clone writes leaked into parent")
	}
	if cl.Stride != cl.Cols {
		t.Error("clone not compact")
	}
}

func TestZeroFillThroughView(t *testing.T) {
	m := NewC(3, 3)
	m.Fill(complex(1, 1))
	v := m.View(1, 1, 2, 2)
	v.Zero()
	if m.At(0, 0) != complex(1, 1) {
		t.Error("Zero on view touched outside region")
	}
	if m.At(1, 1) != 0 || m.At(2, 2) != 0 {
		t.Error("Zero on view did not clear region")
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := NewC(2, 2)
	b := NewC(2, 2)
	if !a.Equal(b) {
		t.Error("zero matrices should be equal")
	}
	b.Set(1, 1, complex(0.5, -0.25))
	if a.Equal(b) {
		t.Error("different matrices reported equal")
	}
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v, want 0.5", d)
	}
	c := NewC(2, 3)
	if a.Equal(c) {
		t.Error("different shapes reported equal")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MaxAbsDiff shape mismatch should panic")
			}
		}()
		a.MaxAbsDiff(c)
	}()
}

func TestFMatrix(t *testing.T) {
	m := NewF(2, 3)
	m.Set(0, 1, 2.5)
	m.Set(1, 2, -1)
	if m.At(0, 1) != 2.5 {
		t.Errorf("At = %v", m.At(0, 1))
	}
	min, max := m.MinMax()
	if min != -1 || max != 2.5 {
		t.Errorf("MinMax = %v %v", min, max)
	}
	if len(m.Row(1)) != 3 {
		t.Error("Row length")
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	f := func(n, p uint8) bool {
		np := int(n)
		pp := int(p)%16 + 1
		slices := Partition(np, pp)
		if len(slices) != pp {
			return false
		}
		lo := 0
		for _, s := range slices {
			if s.Lo != lo || s.Hi < s.Lo {
				return false
			}
			lo = s.Hi
		}
		if lo != np {
			return false
		}
		// Balanced: sizes differ by at most one.
		min, max := slices[0].Len(), slices[0].Len()
		for _, s := range slices {
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionPaperConfig(t *testing.T) {
	// 1024 pulses over 16 cores: 64 rows each, exactly.
	slices := Partition(1024, 16)
	for i, s := range slices {
		if s.Len() != 64 {
			t.Fatalf("slice %d has %d rows, want 64", i, s.Len())
		}
	}
}

func TestPartitionInvalid(t *testing.T) {
	for _, c := range []struct{ n, p int }{{-1, 4}, {4, 0}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d,%d) should panic", c.n, c.p)
				}
			}()
			Partition(c.n, c.p)
		}()
	}
}
