// Package mat provides dense 2-D matrices of complex64 and float32 values
// backed by a single contiguous slice, together with the slicing and tiling
// operations the SAR chain uses to partition images across processing cores.
//
// The storage convention is row-major with the row index conventionally
// holding the pulse/azimuth/beam dimension and the column index the
// range-bin dimension, matching the paper's 1024 pulses x 1001 range bins
// data layout (each pixel is two 32-bit floats, so one pulse of 1001 bins
// occupies 8008 bytes — two pulses are the 16,016 bytes the paper stores in
// the two upper local-memory banks of each Epiphany core).
package mat

import "fmt"

// C is a dense row-major matrix of complex64 values.
type C struct {
	Rows, Cols int
	// Stride is the number of elements between vertically adjacent
	// elements. For a freshly allocated matrix Stride == Cols; views into
	// a larger matrix keep the parent's stride.
	Stride int
	Data   []complex64
}

// NewC allocates a zeroed rows x cols complex matrix.
func NewC(rows, cols int) *C {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &C{Rows: rows, Cols: cols, Stride: cols, Data: make([]complex64, rows*cols)}
}

// At returns the element at (r, c).
func (m *C) At(r, c int) complex64 {
	m.check(r, c)
	return m.Data[r*m.Stride+c]
}

// Set assigns the element at (r, c).
func (m *C) Set(r, c int, v complex64) {
	m.check(r, c)
	m.Data[r*m.Stride+c] = v
}

// Add accumulates v into the element at (r, c).
func (m *C) Add(r, c int, v complex64) {
	m.check(r, c)
	m.Data[r*m.Stride+c] += v
}

func (m *C) check(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", r, c, m.Rows, m.Cols))
	}
}

// Row returns the r-th row as a slice sharing the matrix storage.
func (m *C) Row(r int) []complex64 {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", r, m.Rows))
	}
	return m.Data[r*m.Stride : r*m.Stride+m.Cols]
}

// View returns a sub-matrix sharing storage with m, starting at (r, c) and
// extending rows x cols.
func (m *C) View(r, c, rows, cols int) *C {
	if r < 0 || c < 0 || rows < 0 || cols < 0 || r+rows > m.Rows || c+cols > m.Cols {
		panic(fmt.Sprintf("mat: view (%d,%d,%d,%d) out of range %dx%d", r, c, rows, cols, m.Rows, m.Cols))
	}
	return &C{
		Rows:   rows,
		Cols:   cols,
		Stride: m.Stride,
		Data:   m.Data[r*m.Stride+c : (r+rows-1)*m.Stride+c+cols],
	}
}

// Clone returns a compact deep copy of m (Stride == Cols).
func (m *C) Clone() *C {
	out := NewC(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r))
	}
	return out
}

// Zero sets every element of m (including through views) to zero.
func (m *C) Zero() {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *C) Fill(v complex64) {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] = v
		}
	}
}

// Equal reports whether m and n have the same shape and identical elements.
func (m *C) Equal(n *C) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		a, b := m.Row(r), n.Row(r)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the maximum over all elements of |m[i]-n[i]| measured
// as the max of the real and imaginary component differences. It panics if
// the shapes differ.
func (m *C) MaxAbsDiff(n *C) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	var max float64
	for r := 0; r < m.Rows; r++ {
		a, b := m.Row(r), n.Row(r)
		for i := range a {
			dr := abs64(float64(real(a[i]) - real(b[i])))
			di := abs64(float64(imag(a[i]) - imag(b[i])))
			if dr > max {
				max = dr
			}
			if di > max {
				max = di
			}
		}
	}
	return max
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// F is a dense row-major matrix of float32 values.
type F struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewF allocates a zeroed rows x cols float matrix.
func NewF(rows, cols int) *F {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &F{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// At returns the element at (r, c).
func (m *F) At(r, c int) float32 {
	m.check(r, c)
	return m.Data[r*m.Stride+c]
}

// Set assigns the element at (r, c).
func (m *F) Set(r, c int, v float32) {
	m.check(r, c)
	m.Data[r*m.Stride+c] = v
}

func (m *F) check(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", r, c, m.Rows, m.Cols))
	}
}

// Row returns the r-th row as a slice sharing the matrix storage.
func (m *F) Row(r int) []float32 {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", r, m.Rows))
	}
	return m.Data[r*m.Stride : r*m.Stride+m.Cols]
}

// MinMax returns the minimum and maximum element of m. It panics on an
// empty matrix.
func (m *F) MinMax() (min, max float32) {
	if m.Rows == 0 || m.Cols == 0 {
		panic("mat: MinMax of empty matrix")
	}
	min, max = m.At(0, 0), m.At(0, 0)
	for r := 0; r < m.Rows; r++ {
		for _, v := range m.Row(r) {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max
}

// Slice describes a contiguous band of rows [Lo, Hi) assigned to one
// processing core by coarse-grained data partitioning (paper Fig. 6).
type Slice struct {
	Lo, Hi int
}

// Len returns the number of rows in the slice.
func (s Slice) Len() int { return s.Hi - s.Lo }

// Partition splits n rows into p near-equal contiguous slices, the
// coarse-grained data partitioning of the parallel FFBP implementation.
// Earlier slices receive the remainder rows, so sizes differ by at most 1.
// It panics unless 0 < p and 0 <= n.
func Partition(n, p int) []Slice {
	if p <= 0 || n < 0 {
		panic(fmt.Sprintf("mat: invalid partition n=%d p=%d", n, p))
	}
	out := make([]Slice, p)
	base := n / p
	rem := n % p
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = Slice{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}
