package ffbp

import (
	"fmt"
	"runtime"
	"sync"

	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// Generalized factorization base. The paper's implementation uses merge
// base 2; Ulander et al.'s FFBP formulation allows any base k, combining k
// subapertures per merge and multiplying the angular resolution by k. The
// base trades work against quality: per output pixel the whole
// factorization performs k * log_k(N) interpolations (minimized near
// k = 3), while fewer merge levels mean fewer successive interpolations
// degrading the image — the knob behind the paper's observation that the
// simplified interpolation's noise accumulates "in the successive
// iterations".

// MergeK performs one base-k merge, combining subaperture groups
// (k*j .. k*j+k-1) into parents with k-fold angular resolution.
func MergeK(s *Stage, box geom.SceneBox, cfg Config, k int) (*Stage, error) {
	if k == 2 {
		return Merge(s, box, cfg)
	}
	if k < 2 || len(s.Images)%k != 0 {
		return nil, fmt.Errorf("ffbp: cannot merge %d subapertures with base %d", len(s.Images), k)
	}
	parents := geom.MergeStageK(s.Apertures, k)
	ntheta := s.Grids[0].NTheta * k
	nr := s.Grids[0].NR
	out := &Stage{
		Apertures: parents,
		Grids:     make([]geom.PolarGrid, len(parents)),
		Images:    make([]*mat.C, len(parents)),
	}
	for j, a := range parents {
		out.Grids[j] = box.GridFor(a, ntheta, nr, s.Grids[0].R0, s.Grids[0].DR)
		out.Images[j] = mat.NewC(ntheta, nr)
	}
	// Child centre offsets relative to the parent centre (same for every
	// parent of the stage).
	offsets := geom.ChildOffsets(k, s.Apertures[0].Length)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(parents) * ntheta
	var wg sync.WaitGroup
	for _, sl := range mat.Partition(total, workers) {
		if sl.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(sl mat.Slice) {
			defer wg.Done()
			for gb := sl.Lo; gb < sl.Hi; gb++ {
				j := gb / ntheta
				bt := gb % ntheta
				pg := out.Grids[j]
				theta := pg.Theta(bt)
				row := out.Images[j].Row(bt)
				for bi := 0; bi < nr; bi++ {
					r := pg.Range(bi)
					var acc complex64
					for i := 0; i < k; i++ {
						rc, thc := geom.ShiftCoords(r, theta, offsets[i])
						g := s.Grids[k*j+i]
						acc += interp.At2(s.Images[k*j+i], g.ThetaIndex(thc), g.RangeIndex(rc), cfg.Interp)
					}
					row[bi] = acc
				}
			}
		}(sl)
	}
	wg.Wait()
	return out, nil
}

// ImageK runs the complete base-k factorization. NumPulses must be a
// power of k. ImageK(_, _, _, cfg, 2) matches Image except that the
// single-threaded merge path is used.
func ImageK(data *mat.C, p sar.Params, box geom.SceneBox, cfg Config, k int) (*mat.C, geom.PolarGrid, error) {
	if k < 2 {
		return nil, geom.PolarGrid{}, fmt.Errorf("ffbp: merge base %d < 2", k)
	}
	if !isPowerOf(p.NumPulses, k) {
		return nil, geom.PolarGrid{}, fmt.Errorf("ffbp: NumPulses %d is not a power of %d", p.NumPulses, k)
	}
	s, err := InitialStage(data, p, box)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	for len(s.Images) > 1 {
		if s, err = MergeK(s, box, cfg, k); err != nil {
			return nil, geom.PolarGrid{}, err
		}
	}
	return s.Images[0], s.Grids[0], nil
}

func isPowerOf(n, k int) bool {
	if n < 1 {
		return false
	}
	for n%k == 0 {
		n /= k
	}
	return n == 1
}
