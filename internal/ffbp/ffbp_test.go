package ffbp

import (
	"math"
	"testing"

	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

// testParams returns a reduced geometry that still focuses well: 256
// pulses over a 256 m aperture imaging a scene around 550 m range.
func testParams() (sar.Params, geom.SceneBox) {
	p := sar.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	box := geom.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	return p, box
}

func TestNumIterations(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 1024: 10, 64: 6}
	for np, want := range cases {
		if got := NumIterations(np); got != want {
			t.Errorf("NumIterations(%d) = %d, want %d", np, got, want)
		}
	}
}

func TestInitialStageShape(t *testing.T) {
	p, box := testParams()
	data := sar.Simulate(p, nil, nil)
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSubapertures() != p.NumPulses {
		t.Fatalf("stage 0 has %d subapertures", s.NumSubapertures())
	}
	for i, img := range s.Images {
		if img.Rows != 1 || img.Cols != p.NumBins {
			t.Fatalf("subimage %d is %dx%d", i, img.Rows, img.Cols)
		}
		if s.Grids[i].NTheta != 1 {
			t.Fatalf("grid %d has %d beams", i, s.Grids[i].NTheta)
		}
	}
}

func TestInitialStageCarrierRemoval(t *testing.T) {
	// After carrier removal, a target bin's phase is the envelope residual:
	// near zero at the bin closest to the target range.
	p, box := testParams()
	tg := sar.Target{U: 0, Y: p.CenterRange(), Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	mid := p.NumPulses / 2
	r := sar.Range(p.TrackPos(mid), nil, tg)
	bin := int(math.Round((r - p.R0) / p.DR))
	v := s.Images[mid].At(0, bin)
	phase := math.Atan2(float64(imag(v)), float64(real(v)))
	// Residual phase = 4*pi*(binRange - r)/lambda, bounded by quantization.
	maxResidual := 4 * math.Pi * (p.DR / 2) / p.Wavelength
	if math.Abs(phase) > maxResidual+1e-3 {
		t.Errorf("residual phase %v exceeds bound %v", phase, maxResidual)
	}
}

func TestInitialStageErrors(t *testing.T) {
	p, box := testParams()
	if _, err := InitialStage(mat.NewC(3, 3), p, box); err == nil {
		t.Error("dimension mismatch not rejected")
	}
	p2 := p
	p2.NumPulses = 100 // not a power of two
	if _, _, err := Image(sar.Simulate(p2, nil, nil), p2, box, Config{}); err == nil {
		t.Error("non-power-of-two pulse count not rejected by Image")
	}
	p3 := p
	p3.DR = -1
	if _, err := InitialStage(mat.NewC(p.NumPulses, p.NumBins), p3, box); err == nil {
		t.Error("invalid params not rejected")
	}
}

func TestMergeHalvesSubapertures(t *testing.T) {
	p, box := testParams()
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumPulses
	ntheta := 1
	for n > 1 {
		s, err = Merge(s, box, Config{Interp: interp.Nearest})
		if err != nil {
			t.Fatal(err)
		}
		n /= 2
		ntheta *= 2
		if s.NumSubapertures() != n {
			t.Fatalf("expected %d subapertures, got %d", n, s.NumSubapertures())
		}
		if s.Grids[0].NTheta != ntheta {
			t.Fatalf("expected %d beams, got %d", ntheta, s.Grids[0].NTheta)
		}
	}
}

func TestMergeOddSubaperturesFails(t *testing.T) {
	s := &Stage{
		Apertures: make([]geom.Aperture, 3),
		Grids:     make([]geom.PolarGrid, 3),
		Images:    []*mat.C{mat.NewC(1, 4), mat.NewC(1, 4), mat.NewC(1, 4)},
	}
	if _, err := Merge(s, geom.SceneBox{}, Config{}); err == nil {
		t.Error("expected error for odd subaperture count")
	}
}

// targetPixel returns the expected (beam, range-bin) pixel of a target in
// the final full-aperture image.
func targetPixel(g geom.PolarGrid, tg sar.Target) (bt, bi int) {
	r := math.Hypot(tg.U, tg.Y)
	th := math.Atan2(tg.Y, tg.U)
	return int(math.Round(g.ThetaIndex(th))), int(math.Round(g.RangeIndex(r)))
}

func TestImageFocusesSingleTarget(t *testing.T) {
	p, box := testParams()
	tg := sar.Target{U: 10, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	img, g, err := Image(data, p, box, Config{Interp: interp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	if img.Rows != p.NumPulses || img.Cols != p.NumBins {
		t.Fatalf("image is %dx%d", img.Rows, img.Cols)
	}
	m := quality.Mag(img)
	pr, pc, pv := quality.Peak(m)
	wr, wc := targetPixel(g, tg)
	// The azimuth mainlobe spans many beam pixels on this grid (the image
	// is heavily oversampled in angle), so allow a wider beam tolerance.
	if abs(pr-wr) > 6 || abs(pc-wc) > 2 {
		t.Errorf("peak at (%d,%d), want (%d,%d)", pr, pc, wr, wc)
	}
	// Coherent gain: the peak must integrate a large fraction of the
	// pulses (>= 40% of perfect coherence with linear interpolation).
	if float64(pv) < 0.4*float64(p.NumPulses) {
		t.Errorf("peak %v too low for %d pulses", pv, p.NumPulses)
	}
	// Focus quality: peak well above background.
	db := quality.PeakToBackground(m, wr, wc, 6, [][2]int{{wr, wc}})
	if db < 20 {
		t.Errorf("peak-to-background %v dB, want >= 20", db)
	}
}

func TestImageFocusesMultipleTargets(t *testing.T) {
	p, box := testParams()
	targets := []sar.Target{
		{U: -30, Y: 530, Amp: 1},
		{U: 0, Y: 560, Amp: 1},
		{U: 30, Y: 590, Amp: 1},
	}
	data := sar.Simulate(p, targets, nil)
	img, g, err := Image(data, p, box, Config{Interp: interp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	m := quality.Mag(img)
	for i, tg := range targets {
		wr, wc := targetPixel(g, tg)
		pr, pc, pv := quality.PeakWithin(m, wr, wc, 8)
		if abs(pr-wr) > 6 || abs(pc-wc) > 2 {
			t.Errorf("target %d: peak at (%d,%d), want (%d,%d)", i, pr, pc, wr, wc)
		}
		if float64(pv) < 0.3*float64(p.NumPulses) {
			t.Errorf("target %d: peak %v too low", i, pv)
		}
	}
}

func TestSequentialAndParallelIdentical(t *testing.T) {
	// The goroutine-parallel merge partitions work but performs identical
	// arithmetic, so results must be bit-identical to Workers=1.
	p, box := testParams()
	p.NumPulses = 64
	p.NumBins = 101
	data := sar.Simulate(p, []sar.Target{{U: 5, Y: 545, Amp: 1}}, nil)
	seq, _, err := Image(data, p, box, Config{Interp: interp.Nearest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Image(data, p, box, Config{Interp: interp.Nearest, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(par) {
		t.Errorf("parallel image differs from sequential (max diff %v)", seq.MaxAbsDiff(par))
	}
}

func TestInterpolationQualityOrdering(t *testing.T) {
	// The paper attributes FFBP image degradation to the simplified
	// (nearest-neighbour) interpolation and notes that quality "could be
	// considerably improved by using more complex interpolation kernels
	// such as cubic interpolation". Verify the ordering: cubic sharper
	// than nearest, and cubic achieves higher coherent gain.
	p, box := testParams()
	tg := sar.Target{U: 0, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	var gain [3]float64
	var sharp [3]float64
	for i, k := range []interp.Kind{interp.Nearest, interp.Linear, interp.Cubic} {
		img, g, err := Image(data, p, box, Config{Interp: k})
		if err != nil {
			t.Fatal(err)
		}
		m := quality.Mag(img)
		wr, wc := targetPixel(g, tg)
		_, _, pv := quality.PeakWithin(m, wr, wc, 4)
		gain[i] = float64(pv)
		sharp[i] = quality.Sharpness(m)
	}
	if !(gain[2] > gain[0]) {
		t.Errorf("cubic gain %v not above nearest %v", gain[2], gain[0])
	}
	if !(sharp[2] > sharp[0]) {
		t.Errorf("cubic sharpness %v not above nearest %v", sharp[2], sharp[0])
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkImage256(b *testing.B) {
	p, box := testParams()
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Image(data, p, box, Config{Interp: interp.Nearest}); err != nil {
			b.Fatal(err)
		}
	}
}
