package ffbp

import (
	"math"
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

// stepError displaces the platform cross-track over the second half of
// the aperture — the error a final-merge compensation can correct.
func stepError(d float64) sar.PathError {
	return func(u float64) float64 {
		if u > 0 {
			return d
		}
		return 0
	}
}

func TestDefaultFocusConfig(t *testing.T) {
	fc := DefaultFocusConfig(1024)
	if fc.FromLevel != 9 {
		t.Errorf("FromLevel %d, want 9", fc.FromLevel)
	}
	if fc.Candidates < 2 || fc.MaxShift <= 0 || fc.MaxShift > 1.5 {
		t.Errorf("bad defaults %+v", fc)
	}
	if DefaultFocusConfig(2).FromLevel != 0 {
		t.Error("FromLevel not clamped for tiny apertures")
	}
}

func TestMergeCompensatedZeroEqualsMerge(t *testing.T) {
	p, box := testParams()
	data := sar.Simulate(p, []sar.Target{{U: 0, Y: 555, Amp: 1}}, nil)
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Interp: interp.Nearest, Workers: 1}
	plain, err := Merge(s, box, cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := MergeCompensated(s, box, cfg, make([]autofocus.Shift, len(s.Images)/2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Images {
		if !plain.Images[i].Equal(comp.Images[i]) {
			t.Fatalf("zero compensation changed image %d", i)
		}
	}
	// nil compensations are also the identity.
	nilComp, err := MergeCompensated(s, box, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Images[0].Equal(nilComp.Images[0]) {
		t.Error("nil compensation changed the merge")
	}
}

func TestMergeCompensatedWrongCount(t *testing.T) {
	p, box := testParams()
	data := sar.Simulate(p, nil, nil)
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCompensated(s, box, Config{}, make([]autofocus.Shift, 3)); err == nil {
		t.Error("wrong compensation count accepted")
	}
}

func TestMergeCompensatedShiftsPlusChild(t *testing.T) {
	// Applying a compensation of +1 range pixel to the plus child must,
	// for nearest-neighbour sampling, reproduce the result of shifting
	// the plus child image by one column.
	p, box := testParams()
	p.NumPulses = 4
	data := sar.Simulate(p, []sar.Target{{U: 0, Y: 555, Amp: 1}}, nil)
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	comps := make([]autofocus.Shift, 2)
	comps[0].DRange = 1
	comps[1].DRange = 1
	shifted, err := MergeCompensated(s, box, Config{Interp: interp.Nearest, Workers: 1}, comps)
	if err != nil {
		t.Fatal(err)
	}
	// Shift the plus children left by one column and merge plainly.
	for j := 0; j < 2; j++ {
		img := s.Images[2*j+1]
		row := img.Row(0)
		copy(row, row[1:])
		row[len(row)-1] = 0
	}
	manual, err := Merge(s, box, Config{Interp: interp.Nearest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Results agree except where the compensated version sampled column
	// NR-1+1 (out of range -> 0) while the manual shift wrote 0 there too.
	for j := range shifted.Images {
		if d := shifted.Images[j].MaxAbsDiff(manual.Images[j]); d > 1e-6 {
			t.Errorf("pair %d: compensated merge differs from manual shift by %v", j, d)
		}
	}
}

func TestEstimatePairShiftRecoversDisplacement(t *testing.T) {
	// Two half-aperture images of the same scene, the second formed from
	// data with a cross-track displacement: the estimator must find a
	// compensating range shift close to the displacement in pixels.
	p, box := testParams()
	const disp = 0.4 // metres = 0.8 range pixels
	data := sar.Simulate(p, []sar.Target{{U: 0, Y: 555, Amp: 1}}, stepError(disp))
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Interp: interp.Cubic}
	for s.NumSubapertures() > 2 {
		if s, err = Merge(s, box, cfg); err != nil {
			t.Fatal(err)
		}
	}
	frames := PairFrames{
		GridMinus:   s.Grids[0],
		GridPlus:    s.Grids[1],
		CenterMinus: s.Apertures[0].Center,
		CenterPlus:  s.Apertures[1].Center,
	}
	shift, score, err := EstimatePairShift(s.Images[0], s.Images[1], frames, 1.3, 31)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Errorf("criterion score %v", score)
	}
	// The displaced half sees shorter ranges; compensation is negative.
	want := -disp / p.DR
	if math.Abs(shift.DRange-want) > 0.45 {
		t.Errorf("estimated shift %v px, want ~%v", shift.DRange, want)
	}
}

func TestEstimatePairShiftTooSmall(t *testing.T) {
	tiny := newTinyImage()
	if _, _, err := EstimatePairShift(tiny, tiny, PairFrames{}, 1, 5); err == nil {
		t.Error("too-small image accepted")
	}
}

func TestFocusedImageImprovesDefocusedScene(t *testing.T) {
	p, box := testParams()
	const disp = 0.5
	data := sar.Simulate(p, []sar.Target{{U: 0, Y: 555, Amp: 1}}, stepError(disp))

	unfocused, _, err := Image(data, p, box, Config{Interp: interp.Cubic})
	if err != nil {
		t.Fatal(err)
	}
	fc := DefaultFocusConfig(p.NumPulses)
	focused, grid, history, err := FocusedImage(data, p, box, fc)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NTheta != p.NumPulses {
		t.Fatalf("grid %+v", grid)
	}
	if len(history) == 0 {
		t.Fatal("no compensations were estimated")
	}
	// The final-level compensation must point the right way (negative:
	// the displaced half-aperture saw shorter ranges).
	last := history[len(history)-1]
	if len(last) != 1 {
		t.Fatalf("final level has %d pairs", len(last))
	}
	if last[0].DRange >= 0 {
		t.Errorf("final compensation %v, want negative", last[0].DRange)
	}
	// Autofocus must improve focus quality.
	su := quality.Sharpness(quality.Mag(unfocused))
	sf := quality.Sharpness(quality.Mag(focused))
	if sf <= su {
		t.Errorf("focused sharpness %v not above unfocused %v", sf, su)
	}
	// And the focused peak must be higher (more coherent integration).
	_, _, pu := quality.Peak(quality.Mag(unfocused))
	_, _, pf := quality.Peak(quality.Mag(focused))
	if pf <= pu {
		t.Errorf("focused peak %v not above unfocused %v", pf, pu)
	}
	// Cross-check with the entropy-minimization criterion: focusing
	// concentrates energy, lowering image entropy.
	eu := quality.Entropy(quality.Mag(unfocused))
	ef := quality.Entropy(quality.Mag(focused))
	if ef >= eu {
		t.Errorf("focused entropy %v not below unfocused %v", ef, eu)
	}
}

func TestFocusedImageValidation(t *testing.T) {
	p, box := testParams()
	data := sar.Simulate(p, nil, nil)
	fc := DefaultFocusConfig(p.NumPulses)
	fc.Candidates = 0
	if _, _, _, err := FocusedImage(data, p, box, fc); err == nil {
		t.Error("zero candidates accepted")
	}
	fc = DefaultFocusConfig(p.NumPulses)
	fc.MaxShift = 3
	if _, _, _, err := FocusedImage(data, p, box, fc); err == nil {
		t.Error("out-of-window MaxShift accepted")
	}
}

func TestFocusedImageOnCleanDataStaysGood(t *testing.T) {
	// With no path error, autofocus must not noticeably damage the image:
	// estimated compensations stay small and quality stays comparable.
	p, box := testParams()
	p.NumPulses = 128
	data := sar.Simulate(p, []sar.Target{{U: 0, Y: 555, Amp: 1}}, nil)
	plain, _, err := Image(data, p, box, Config{Interp: interp.Cubic})
	if err != nil {
		t.Fatal(err)
	}
	focused, _, history, err := FocusedImage(data, p, box, DefaultFocusConfig(p.NumPulses))
	if err != nil {
		t.Fatal(err)
	}
	for lvl, comps := range history {
		for j, c := range comps {
			if math.Abs(c.DRange) > 0.7 {
				t.Errorf("level %d pair %d: spurious compensation %v on clean data", lvl, j, c.DRange)
			}
		}
	}
	sp := quality.Sharpness(quality.Mag(plain))
	sf := quality.Sharpness(quality.Mag(focused))
	if sf < 0.7*sp {
		t.Errorf("autofocus degraded clean image: %v vs %v", sf, sp)
	}
}

// newTinyImage builds a 2x2 image for size-validation tests.
func newTinyImage() *mat.C { return mat.NewC(2, 2) }
