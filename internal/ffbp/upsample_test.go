package ffbp

import (
	"testing"

	"sarmany/internal/interp"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

// TestUpsamplingRecoversNearestQuality verifies the standard
// countermeasure to the paper's interpolation-noise problem: FFBP with
// nearest-neighbour interpolation on 2x range-oversampled data focuses
// markedly better than on critically sampled data, because the
// per-iteration range quantization error (and its phase error) halves.
func TestUpsamplingRecoversNearestQuality(t *testing.T) {
	p, box := testParams()
	tg := sar.Target{U: 0, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)

	plain, _, err := Image(data, p, box, Config{Interp: interp.Nearest})
	if err != nil {
		t.Fatal(err)
	}
	up, q, err := sar.UpsampleRange(data, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := Image(up, q, box, Config{Interp: interp.Nearest})
	if err != nil {
		t.Fatal(err)
	}

	sp := quality.Sharpness(quality.Mag(plain))
	sf := quality.Sharpness(quality.Mag(fine))
	if sf <= sp {
		t.Errorf("2x oversampled sharpness %v not above critical %v", sf, sp)
	}
	_, _, pkPlain := quality.Peak(quality.Mag(plain))
	_, _, pkFine := quality.Peak(quality.Mag(fine))
	if float64(pkFine) < 1.05*float64(pkPlain) {
		t.Errorf("oversampling gain %v -> %v; expected a clear coherence improvement",
			pkPlain, pkFine)
	}
}
