// Package ffbp implements fast factorized back-projection (FFBP), the
// paper's memory-intensive case study. The whole aperture initially
// consists of single-pulse subapertures with one wide beam each; merge
// iterations pairwise combine subapertures, doubling the angular resolution
// each time (paper Fig. 3a), until one full-aperture image remains. With
// the paper's configuration — 1024 pulses x 1001 range bins, merge base 2 —
// that is ten iterations ending in a 1024x1001-pixel image.
//
// Each merge maps every parent pixel (r, theta) onto its two child images
// through the cosine-theorem geometry of geom.ChildCoords (paper eqs. 1-4)
// and combines the interpolated child samples (paper eq. 5). The
// interpolation kernel is configurable; the paper's implementation uses
// simplified nearest-neighbour interpolation, which is faster but degrades
// the image relative to GBP (paper Fig. 7).
package ffbp

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"sarmany/internal/autofocus"
	"sarmany/internal/cf"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// Config controls image formation.
type Config struct {
	// Interp selects the child-image interpolation kernel. The paper's
	// FFBP uses Nearest; Cubic markedly improves quality at higher cost.
	Interp interp.Kind
	// Workers is the number of goroutines used per merge stage; 0 means
	// GOMAXPROCS. Workers == 1 gives the sequential reference.
	Workers int

	// comps holds per-pair flight-path compensations applied to the plus
	// child's sampling positions; set through MergeCompensated.
	comps []autofocus.Shift
}

// Stage holds the state of the factorization after some number of merges:
// one polar image (and its grid) per remaining subaperture.
type Stage struct {
	Apertures []geom.Aperture
	Grids     []geom.PolarGrid
	Images    []*mat.C
}

// NumSubapertures returns the number of subapertures in the stage.
func (s *Stage) NumSubapertures() int { return len(s.Images) }

// InitialStage builds stage 0 of the factorization from pulse-compressed
// data: one single-beam image per pulse, with the two-way carrier phase
// removed (multiplication by exp(+i*4*pi*r/lambda)) so that subsequent
// merges combine coherently.
//
// Precision contract: the phase argument k*r is evaluated in float64 and
// rounded to float32 once, at the cf.Expi call. At paper-scale ranges
// (k*r up to ~4e3 rad) that single rounding costs at most half a float32
// ULP of the argument, ~2.5e-4 rad — two orders of magnitude below the
// merge interpolation error — and the downstream float32 pixels carry no
// further phase arithmetic. TestInitialStagePhaseContract pins this
// against the closed form; the simulator kernels (kernels.stage0Pixel)
// replicate the same evaluation bit for bit.
func InitialStage(data *mat.C, p sar.Params, box geom.SceneBox) (*Stage, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		return nil, fmt.Errorf("ffbp: data is %dx%d, params say %dx%d",
			data.Rows, data.Cols, p.NumPulses, p.NumBins)
	}
	aps := geom.Stage0(p.NumPulses, -p.ApertureLength()/2, p.PulseSpacing)
	s := &Stage{
		Apertures: aps,
		Grids:     make([]geom.PolarGrid, len(aps)),
		Images:    make([]*mat.C, len(aps)),
	}
	k := 4 * math.Pi / p.Wavelength
	for i, a := range aps {
		s.Grids[i] = box.GridFor(a, 1, p.NumBins, p.R0, p.DR)
		img := mat.NewC(1, p.NumBins)
		src := data.Row(i)
		dst := img.Row(0)
		for c := range dst {
			r := p.R0 + float64(c)*p.DR
			dst[c] = src[c] * cf.Expi(float32(k*r))
		}
		s.Images[i] = img
	}
	return s, nil
}

// Merge performs one merge-base-2 iteration, combining subaperture pairs
// (2j, 2j+1) into parents with doubled angular resolution. It runs the
// fused beam kernel (mergeBeam); MergeRef runs the retained reference.
func Merge(s *Stage, box geom.SceneBox, cfg Config) (*Stage, error) {
	return merge(s, box, cfg, mergeBeam)
}

// merge is the shared merge-iteration driver: grid/image setup and the
// flattened (parent, beam) fan-out, parameterized by the beam kernel.
func merge(s *Stage, box geom.SceneBox, cfg Config, beam func(s, out *Stage, j, bt int, kind interp.Kind, comp autofocus.Shift)) (*Stage, error) {
	if len(s.Images)%2 != 0 {
		return nil, fmt.Errorf("ffbp: cannot merge %d subapertures", len(s.Images))
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parents := geom.MergeStage(s.Apertures)
	ntheta := s.Grids[0].NTheta * 2
	nr := s.Grids[0].NR
	out := &Stage{
		Apertures: parents,
		Grids:     make([]geom.PolarGrid, len(parents)),
		Images:    make([]*mat.C, len(parents)),
	}
	for j, a := range parents {
		out.Grids[j] = box.GridFor(a, ntheta, nr, s.Grids[0].R0, s.Grids[0].DR)
		out.Images[j] = mat.NewC(ntheta, nr)
	}

	// Work unit: one (parent, beam) pair; partition the flattened list so
	// every stage parallelizes evenly regardless of how many parents
	// remain.
	total := len(parents) * ntheta
	var wg sync.WaitGroup
	for _, sl := range mat.Partition(total, workers) {
		if sl.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(sl mat.Slice) {
			defer wg.Done()
			for gb := sl.Lo; gb < sl.Hi; gb++ {
				j := gb / ntheta
				bt := gb % ntheta
				var comp autofocus.Shift
				if cfg.comps != nil {
					comp = cfg.comps[j]
				}
				beam(s, out, j, bt, cfg.Interp, comp)
			}
		}(sl)
	}
	wg.Wait()
	return out, nil
}

// mergeBeam computes beam bt of parent j: the element combining of paper
// eq. 5 along one output beam. comp displaces the plus child's sampling
// positions (in pixels) — the flight-path compensation of the autofocused
// merge; the zero Shift reproduces the plain merge.
//
// This is the fused hot path, bit-identical to mergeBeamRef (pinned by
// TestFusedMergeBitIdentical): the per-beam cos/sin of the parent angle is
// hoisted out of geom.ChildCoords — theta is constant along the beam, so
// the two calls per pixel collapse to two multiplies — and the paper's
// nearest-neighbour sampling of both children is inlined, eliminating the
// two interp.At2 calls per pixel. Every retained operation (hypot, atan2,
// the index divisions, the rounding) is exactly the reference's, which is
// what keeps the simulator kernels (internal/kernels) bit-identical to
// ffbp.Image.
func mergeBeam(s, out *Stage, j, bt int, kind interp.Kind, comp autofocus.Shift) {
	pg := out.Grids[j]
	img0, img1 := s.Images[2*j], s.Images[2*j+1]
	g0, g1 := s.Grids[2*j], s.Grids[2*j+1]
	l := s.Apertures[2*j].Length // child subaperture length
	theta := pg.Theta(bt)
	row := out.Images[j].Row(bt)

	// Hoisted from geom.ChildCoords: x = r*cos(theta), y = r*sin(theta)
	// with theta fixed along the beam, origin shifted ∓l/2 along track.
	ct, st := math.Cos(theta), math.Sin(theta)
	h := l / 2

	if kind == interp.Nearest {
		rows0, cols0 := img0.Rows, img0.Cols
		rows1, cols1 := img1.Rows, img1.Cols
		for bi := 0; bi < pg.NR; bi++ {
			r := pg.Range(bi)
			x := r * ct
			y := r * st
			xp, xm := x+h, x-h
			r1 := math.Hypot(xp, y)
			th1 := math.Atan2(y, xp)
			r2 := math.Hypot(xm, y)
			th2 := math.Atan2(y, xm)
			// Inlined interp.At2 Nearest on each child: round both
			// fractional indices, in-range sample or zero.
			var v1 complex64
			rr := int(math.Round((th1 - g0.Theta0) / g0.DTheta))
			cc := int(math.Round((r1 - g0.R0) / g0.DR))
			if uint(rr) < uint(rows0) && uint(cc) < uint(cols0) {
				v1 = img0.At(rr, cc)
			}
			var v2 complex64
			rr = int(math.Round((th2-g1.Theta0)/g1.DTheta + comp.DBeam))
			cc = int(math.Round((r2-g1.R0)/g1.DR + comp.DRange))
			if uint(rr) < uint(rows1) && uint(cc) < uint(cols1) {
				v2 = img1.At(rr, cc)
			}
			row[bi] = v1 + v2
		}
		return
	}
	for bi := 0; bi < pg.NR; bi++ {
		r := pg.Range(bi)
		x := r * ct
		y := r * st
		xp, xm := x+h, x-h
		r1 := math.Hypot(xp, y)
		th1 := math.Atan2(y, xp)
		r2 := math.Hypot(xm, y)
		th2 := math.Atan2(y, xm)
		v1 := interp.At2(img0, g0.ThetaIndex(th1), g0.RangeIndex(r1), kind)
		v2 := interp.At2(img1, g1.ThetaIndex(th2)+comp.DBeam, g1.RangeIndex(r2)+comp.DRange, kind)
		row[bi] = v1 + v2
	}
}

// mergeBeamRef is the retained unfused reference for mergeBeam: per-pixel
// geom.ChildCoords and interp.At2 calls, the literal transcription of
// paper eq. 5. The fused path is pinned bit-identical to it.
func mergeBeamRef(s, out *Stage, j, bt int, kind interp.Kind, comp autofocus.Shift) {
	pg := out.Grids[j]
	img0, img1 := s.Images[2*j], s.Images[2*j+1]
	g0, g1 := s.Grids[2*j], s.Grids[2*j+1]
	l := s.Apertures[2*j].Length // child subaperture length
	theta := pg.Theta(bt)
	row := out.Images[j].Row(bt)
	for bi := 0; bi < pg.NR; bi++ {
		r := pg.Range(bi)
		r1, th1, r2, th2 := geom.ChildCoords(r, theta, l)
		v1 := interp.At2(img0, g0.ThetaIndex(th1), g0.RangeIndex(r1), kind)
		v2 := interp.At2(img1, g1.ThetaIndex(th2)+comp.DBeam, g1.RangeIndex(r2)+comp.DRange, kind)
		row[bi] = v1 + v2
	}
}

// MergeRef is Merge running the retained unfused reference beam kernel
// (mergeBeamRef); the equivalence suite pins Merge bit-identical to it.
func MergeRef(s *Stage, box geom.SceneBox, cfg Config) (*Stage, error) {
	return merge(s, box, cfg, mergeBeamRef)
}

// Image runs the complete factorization: InitialStage followed by
// log2(NumPulses) merges. It returns the final full-aperture image (rows =
// beams, cols = range bins) and its polar grid, which is expressed relative
// to the aperture centre (track position 0) — directly comparable to
// gbp.Image on the same grid.
func Image(data *mat.C, p sar.Params, box geom.SceneBox, cfg Config) (*mat.C, geom.PolarGrid, error) {
	return image(data, p, box, cfg, Merge)
}

// ImageRef is Image running every merge through the retained reference
// beam kernel (MergeRef). Image is pinned bit-identical to it; ImageRef
// exists as the before side of the kernels benchmark and the oracle of
// the equivalence suite.
func ImageRef(data *mat.C, p sar.Params, box geom.SceneBox, cfg Config) (*mat.C, geom.PolarGrid, error) {
	return image(data, p, box, cfg, MergeRef)
}

func image(data *mat.C, p sar.Params, box geom.SceneBox, cfg Config,
	mergeFn func(*Stage, geom.SceneBox, Config) (*Stage, error)) (*mat.C, geom.PolarGrid, error) {
	if p.NumPulses&(p.NumPulses-1) != 0 {
		return nil, geom.PolarGrid{}, fmt.Errorf("ffbp: NumPulses %d is not a power of two (merge base 2)", p.NumPulses)
	}
	s, err := InitialStage(data, p, box)
	if err != nil {
		return nil, geom.PolarGrid{}, err
	}
	for len(s.Images) > 1 {
		s, err = mergeFn(s, box, cfg)
		if err != nil {
			return nil, geom.PolarGrid{}, err
		}
	}
	return s.Images[0], s.Grids[0], nil
}

// NumIterations returns the number of merge iterations FFBP performs for
// np pulses with merge base 2 (log2(np)); the paper's 1024-pulse data set
// takes ten.
func NumIterations(np int) int {
	n := 0
	for np > 1 {
		np >>= 1
		n++
	}
	return n
}
