package ffbp

import (
	"testing"

	"sarmany/internal/interp"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

func TestMergeKBase2MatchesMerge(t *testing.T) {
	p, box := testParams()
	p.NumPulses = 64
	data := sar.Simulate(p, []sar.Target{{U: 0, Y: 555, Amp: 1}}, nil)
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Merge(s, box, Config{Interp: interp.Nearest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MergeK(s, box, Config{Interp: interp.Nearest, Workers: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Images {
		if !a.Images[i].Equal(b.Images[i]) {
			t.Fatalf("base-2 MergeK differs from Merge at image %d", i)
		}
	}
}

func TestImageKBase4Focuses(t *testing.T) {
	p, box := testParams() // 256 = 4^4 pulses
	tg := sar.Target{U: 10, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	img, g, err := ImageK(data, p, box, Config{Interp: interp.Linear}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if img.Rows != p.NumPulses || img.Cols != p.NumBins {
		t.Fatalf("image %dx%d", img.Rows, img.Cols)
	}
	m := quality.Mag(img)
	pr, pc, pv := quality.Peak(m)
	wr, wc := targetPixel(g, tg)
	if abs(pr-wr) > 6 || abs(pc-wc) > 2 {
		t.Errorf("peak at (%d,%d), want (%d,%d)", pr, pc, wr, wc)
	}
	if float64(pv) < 0.4*float64(p.NumPulses) {
		t.Errorf("peak %v too low", pv)
	}
}

func TestBase4FewerStagesBetterNearestQuality(t *testing.T) {
	// With nearest-neighbour interpolation the resampling noise
	// accumulates per merge level; base 4 does 4 levels where base 2 does
	// 8, so its coherent gain should be at least as high.
	p, box := testParams()
	tg := sar.Target{U: 0, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	img2, g2, err := ImageK(data, p, box, Config{Interp: interp.Nearest}, 2)
	if err != nil {
		t.Fatal(err)
	}
	img4, g4, err := ImageK(data, p, box, Config{Interp: interp.Nearest}, 4)
	if err != nil {
		t.Fatal(err)
	}
	wr, wc := targetPixel(g2, tg)
	_, _, p2 := quality.PeakWithin(quality.Mag(img2), wr, wc, 6)
	wr, wc = targetPixel(g4, tg)
	_, _, p4 := quality.PeakWithin(quality.Mag(img4), wr, wc, 6)
	if float64(p4) < 0.9*float64(p2) {
		t.Errorf("base-4 gain %v well below base-2 %v", p4, p2)
	}
}

func TestMergeKParallelMatchesSequential(t *testing.T) {
	p, box := testParams()
	p.NumPulses = 64
	data := sar.Simulate(p, []sar.Target{{U: 5, Y: 540, Amp: 1}}, nil)
	seq, _, err := ImageK(data, p, box, Config{Interp: interp.Nearest, Workers: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ImageK(data, p, box, Config{Interp: interp.Nearest, Workers: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(par) {
		t.Errorf("parallel base-4 image differs (max diff %v)", seq.MaxAbsDiff(par))
	}
}

func TestImageKValidation(t *testing.T) {
	p, box := testParams()
	data := sar.Simulate(p, nil, nil)
	if _, _, err := ImageK(data, p, box, Config{}, 1); err == nil {
		t.Error("base 1 accepted")
	}
	// 256 is not a power of 3.
	if _, _, err := ImageK(data, p, box, Config{}, 3); err == nil {
		t.Error("non-power-of-3 pulse count accepted")
	}
	// 27 pulses with base 3 is fine structurally (validation only).
	p3 := p
	p3.NumPulses = 27
	d3 := sar.Simulate(p3, nil, nil)
	if _, _, err := ImageK(d3, p3, box, Config{Interp: interp.Nearest}, 3); err != nil {
		t.Errorf("base-3 on 27 pulses failed: %v", err)
	}
}

func TestIsPowerOf(t *testing.T) {
	cases := []struct {
		n, k int
		want bool
	}{
		{1024, 2, true}, {1024, 4, true}, {1024, 3, false},
		{27, 3, true}, {1, 2, true}, {0, 2, false}, {-8, 2, false},
		{256, 4, true}, {512, 4, false},
	}
	for _, c := range cases {
		if got := isPowerOf(c.n, c.k); got != c.want {
			t.Errorf("isPowerOf(%d,%d) = %v", c.n, c.k, got)
		}
	}
}
