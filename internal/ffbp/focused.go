package ffbp

import (
	"fmt"
	"math"

	"sarmany/internal/autofocus"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

// This file integrates the autofocus criterion calculation into the FFBP
// merge loop, the way the paper's Sec. II-A describes it being used: "the
// autofocus calculations use the image data itself and are done before
// each subaperture merge. ... Several different flight path compensations
// are thus tested before a merge", the best-scoring one is applied, and
// the merge proceeds with the compensated sampling positions.

// FocusConfig controls autofocused image formation.
type FocusConfig struct {
	// Config is the underlying merge configuration.
	Config
	// FromLevel is the first merge level (0-based; level l merges
	// subapertures of 2^l pulses each) at which compensations are
	// estimated. Early-level subaperture images carry too little angular
	// structure for the criterion; typical values are within a few levels
	// of the final merge.
	FromLevel int
	// MaxShift is the compensation search half-range in range pixels (at
	// most 1.5, the support of the cubic interpolation window).
	MaxShift float64
	// Candidates is the number of compensations tested per merge pair
	// ("several different flight path compensations are thus tested").
	Candidates int
}

// DefaultFocusConfig returns a configuration that estimates the
// compensation at the final merge, with 21 candidates over +/-1.2 px.
// Earlier levels' subaperture images are only weakly focused in azimuth,
// so their block correlations are less reliable; set FromLevel lower to
// autofocus every late merge as the paper describes.
func DefaultFocusConfig(np int) FocusConfig {
	from := NumIterations(np) - 1
	if from < 0 {
		from = 0
	}
	return FocusConfig{
		Config:     Config{Interp: interp.Cubic},
		FromLevel:  from,
		MaxShift:   1.2,
		Candidates: 21,
	}
}

// PairFrames describes the two subaperture images being compared: their
// polar grids and their aperture centres (track coordinates). The centres
// are needed because the same scene point appears at different pixels in
// the two children's own polar frames; the estimator corrects for that
// known geometry so only the unknown flight-path error remains.
type PairFrames struct {
	GridMinus, GridPlus     geom.PolarGrid
	CenterMinus, CenterPlus float64
}

// EstimatePairShift estimates the relative flight-path compensation of one
// subaperture pair from their images. A 6x6 block is taken around the
// brightest point of the minus image; the geometrically corresponding
// block of the plus image is located through the scene geometry (known
// from the subaperture centres), and the focus criterion is evaluated over
// a sweep of candidate range shifts around that baseline. The returned
// shift is the error-only compensation — zero for a perfectly linear
// flight path — suitable for MergeCompensated.
func EstimatePairShift(minus, plus *mat.C, f PairFrames, maxShift float64, candidates int) (autofocus.Shift, float64, error) {
	if minus.Rows < autofocus.BlockSize || minus.Cols < autofocus.BlockSize {
		return autofocus.Shift{}, 0, fmt.Errorf("ffbp: %dx%d image too small for a %d-pixel block",
			minus.Rows, minus.Cols, autofocus.BlockSize)
	}
	pr, pc, _ := quality.Peak(quality.Mag(minus))
	r0 := clampInt(pr-autofocus.BlockSize/2, 0, minus.Rows-autofocus.BlockSize)
	c0 := clampInt(pc-autofocus.BlockSize/2, 0, minus.Cols-autofocus.BlockSize)

	// Map the anchor pixel (the peak — the content the criterion will
	// lock onto) through the scene: minus-frame pixel -> scene point ->
	// plus-frame fractional pixel. The block-to-block transform is
	// locally a translation anchored there.
	thM := f.GridMinus.Theta(pr)
	rM := f.GridMinus.Range(pc)
	x := f.CenterMinus + rM*math.Cos(thM)
	y := rM * math.Sin(thM)
	rP := math.Hypot(x-f.CenterPlus, y)
	thP := math.Atan2(y, x-f.CenterPlus)
	rowP := f.GridPlus.ThetaIndex(thP) - float64(pr-r0)
	colP := f.GridPlus.RangeIndex(rP) - float64(pc-c0)

	// Integer plus-block origin plus the fractional geometric baseline.
	r0P := clampInt(int(math.Round(rowP)), 0, plus.Rows-autofocus.BlockSize)
	c0P := clampInt(int(math.Round(colP)), 0, plus.Cols-autofocus.BlockSize)
	baseBeam := rowP - float64(r0P)
	baseRange := colP - float64(c0P)

	bm, err := autofocus.BlockFrom(minus, r0, c0)
	if err != nil {
		return autofocus.Shift{}, 0, err
	}
	bp, err := autofocus.BlockFrom(plus, r0P, c0P)
	if err != nil {
		return autofocus.Shift{}, 0, err
	}
	// Sweep around the geometric baseline, clamped to the interpolation
	// window's support.
	cands := autofocus.RangeSweep(
		math.Max(baseRange-maxShift, -1.45),
		math.Min(baseRange+maxShift, 1.45),
		candidates)
	for i := range cands {
		cands[i].DBeam = clampF(baseBeam, -1.45, 1.45)
	}
	best, _, err := autofocus.Search(&bm, &bp, cands)
	if err != nil {
		return autofocus.Shift{}, 0, err
	}
	// A maximum at either end of the sweep means the criterion did not
	// peak inside the searched window — an unreliable estimate (typically
	// a weakly focused subaperture image whose content differs by more
	// than a translation). Apply no compensation rather than a wrong one.
	if len(cands) >= 2 &&
		(best.Shift.DRange == cands[0].DRange || best.Shift.DRange == cands[len(cands)-1].DRange) {
		return autofocus.Shift{}, best.Score, nil
	}
	// Strip the known geometry: what remains is the path-error estimate.
	return autofocus.Shift{DRange: best.Shift.DRange - baseRange}, best.Score, nil
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MergeCompensated performs one merge iteration like Merge, but displaces
// the plus-child sampling positions of pair j by comps[j] (in pixels) —
// applying a flight-path compensation during element combining. comps may
// be nil (plain Merge) or hold one entry per pair.
func MergeCompensated(s *Stage, box geom.SceneBox, cfg Config, comps []autofocus.Shift) (*Stage, error) {
	if comps != nil && len(comps) != len(s.Images)/2 {
		return nil, fmt.Errorf("ffbp: %d compensations for %d pairs", len(comps), len(s.Images)/2)
	}
	cfg.comps = comps
	return Merge(s, box, cfg)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FocusedImage runs the complete factorization with autofocus: from merge
// level fc.FromLevel onward (once the subaperture images are at least a
// block tall), every pair's compensation is estimated with the focus
// criterion before the pair is merged, and applied during element
// combining. It returns the focused image, its grid, and the estimated
// compensations per autofocused level (for diagnostics).
func FocusedImage(data *mat.C, p sar.Params, box geom.SceneBox, fc FocusConfig) (*mat.C, geom.PolarGrid, [][]autofocus.Shift, error) {
	if fc.Candidates < 1 {
		return nil, geom.PolarGrid{}, nil, fmt.Errorf("ffbp: need at least one candidate compensation")
	}
	if fc.MaxShift <= 0 || fc.MaxShift > 1.5 {
		return nil, geom.PolarGrid{}, nil, fmt.Errorf("ffbp: MaxShift %v outside (0, 1.5]", fc.MaxShift)
	}
	if p.NumPulses&(p.NumPulses-1) != 0 {
		return nil, geom.PolarGrid{}, nil, fmt.Errorf("ffbp: NumPulses %d is not a power of two", p.NumPulses)
	}
	s, err := InitialStage(data, p, box)
	if err != nil {
		return nil, geom.PolarGrid{}, nil, err
	}
	var history [][]autofocus.Shift
	level := 0
	for len(s.Images) > 1 {
		var comps []autofocus.Shift
		if level >= fc.FromLevel && s.Grids[0].NTheta >= autofocus.BlockSize {
			comps = make([]autofocus.Shift, len(s.Images)/2)
			for j := range comps {
				frames := PairFrames{
					GridMinus:   s.Grids[2*j],
					GridPlus:    s.Grids[2*j+1],
					CenterMinus: s.Apertures[2*j].Center,
					CenterPlus:  s.Apertures[2*j+1].Center,
				}
				sh, _, err := EstimatePairShift(s.Images[2*j], s.Images[2*j+1], frames, fc.MaxShift, fc.Candidates)
				if err != nil {
					return nil, geom.PolarGrid{}, nil, err
				}
				comps[j] = sh
			}
			history = append(history, comps)
		}
		if s, err = MergeCompensated(s, box, fc.Config, comps); err != nil {
			return nil, geom.PolarGrid{}, nil, err
		}
		level++
	}
	return s.Images[0], s.Grids[0], history, nil
}
