package ffbp

import (
	"math"
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/cf"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/sar"
)

var mergeKinds = []interp.Kind{interp.Nearest, interp.Linear, interp.Cubic, interp.Sinc8}

// smallParams is a light geometry for the stage-by-stage bit-identity
// checks: 64 pulses, 101 bins.
func smallParams() (sar.Params, geom.SceneBox) {
	p := sar.DefaultParams()
	p.NumPulses = 64
	p.NumBins = 101
	p.R0 = 500
	box := geom.SceneBox{UMin: -20, UMax: 20, YMin: 505, YMax: 545, ThetaPad: 0.05}
	return p, box
}

// TestFusedMergeBitIdentical pins the fused merge path (hoisted per-beam
// cos/sin, inlined nearest sampling) bit-identical to the retained
// reference, for every interpolation kernel, across the complete
// factorization. This is the invariant that keeps the simulator kernels
// (internal/kernels) bit-identical to ffbp.Image.
func TestFusedMergeBitIdentical(t *testing.T) {
	p, box := smallParams()
	data := sar.Simulate(p, []sar.Target{{U: 3, Y: 520, Amp: 1}, {U: -6, Y: 535, Amp: 0.7}}, nil)
	for _, kind := range mergeKinds {
		cfg := Config{Interp: kind, Workers: 4}
		fused, fg, err := Image(data, p, box, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, rg, err := ImageRef(data, p, box, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fg != rg {
			t.Fatalf("%v: fused grid %+v differs from reference %+v", kind, fg, rg)
		}
		if !fused.Equal(ref) {
			t.Errorf("%v: fused image not bit-identical to reference (max diff %v)",
				kind, fused.MaxAbsDiff(ref))
		}
	}
}

// TestFusedMergeStagewise runs every individual merge iteration through
// both beam kernels and requires bit-identity at each stage, including
// with nonzero flight-path compensations (the autofocused merge path).
func TestFusedMergeStagewise(t *testing.T) {
	p, box := smallParams()
	data := sar.Simulate(p, []sar.Target{{U: -2, Y: 525, Amp: 1}}, nil)
	for _, kind := range mergeKinds {
		s, err := InitialStage(data, p, box)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Interp: kind, Workers: 3}
		stage := 0
		for len(s.Images) > 1 {
			// Exercise the compensated path on every other stage.
			if stage%2 == 1 {
				comps := make([]autofocus.Shift, len(s.Images)/2)
				for j := range comps {
					comps[j] = autofocus.Shift{
						DRange: 0.3 - 0.05*float64(j%5),
						DBeam:  -0.2 + 0.04*float64(j%4),
					}
				}
				cfg.comps = comps
			} else {
				cfg.comps = nil
			}
			fused, err := Merge(s, box, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := MergeRef(s, box, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for j := range fused.Images {
				if !fused.Images[j].Equal(ref.Images[j]) {
					t.Fatalf("%v stage %d parent %d: fused not bit-identical (max diff %v)",
						kind, stage, j, fused.Images[j].MaxAbsDiff(ref.Images[j]))
				}
			}
			s = fused
			stage++
		}
	}
}

// TestFusedMergeWorkerInvariant pins determinism of the fused path across
// worker counts, including more workers than beams at the earliest stage.
func TestFusedMergeWorkerInvariant(t *testing.T) {
	p, box := smallParams()
	p.NumPulses = 8
	p.NumBins = 51
	data := sar.Simulate(p, []sar.Target{{U: 1, Y: 515, Amp: 1}}, nil)
	one, _, err := Image(data, p, box, Config{Interp: interp.Nearest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, _, err := Image(data, p, box, Config{Interp: interp.Nearest, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !one.Equal(many) {
		t.Errorf("fused image differs across worker counts (max diff %v)", one.MaxAbsDiff(many))
	}
}

// TestInitialStagePhaseContract pins the stage-0 precision contract at
// paper-scale ranges: the two-way carrier phase k*r is computed in
// float64 and rounded to float32 exactly once, so the applied rotation
// differs from the closed form by at most half a float32 ULP of the
// phase argument — 2.5e-4 rad at the paper's far edge (k*r ~ 3.9e3).
func TestInitialStagePhaseContract(t *testing.T) {
	p := sar.DefaultParams() // paper-scale ranges: R0=2000, 1001 bins, DR=0.5
	p.NumPulses = 4          // a light pulse count; the contract is per column
	data := sar.Simulate(p, nil, nil)
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for c := range row {
			row[c] = 1 // unit samples: stage 0 output is exactly the rotation
		}
	}
	box := geom.SceneBox{UMin: -2, UMax: 2, YMin: 2100, YMax: 2400, ThetaPad: 0.05}
	s, err := InitialStage(data, p, box)
	if err != nil {
		t.Fatal(err)
	}
	k := 4 * math.Pi / p.Wavelength
	const maxPhaseErr = 2.5e-4 // half a float32 ULP at k*r ~ 3.9e3 rad
	for c := 0; c < p.NumBins; c++ {
		r := p.R0 + float64(c)*p.DR
		phi := k * r
		// The float64->float32 phase rounding is the only precision loss.
		if e := math.Abs(float64(float32(phi)) - phi); e > maxPhaseErr {
			t.Fatalf("bin %d: phase rounding error %v rad exceeds contract %v", c, e, maxPhaseErr)
		}
		// The applied rotation is exactly cf.Expi of the rounded phase...
		got := s.Images[0].Row(0)[c]
		if want := cf.Expi(float32(phi)); got != want {
			t.Fatalf("bin %d: stage-0 rotation %v, want %v bit-identical", c, got, want)
		}
		// ...and within the contract of the float64 closed form.
		ws, wc := math.Sincos(phi)
		if err := math.Hypot(float64(real(got))-wc, float64(imag(got))-ws); err > 2*maxPhaseErr {
			t.Fatalf("bin %d: stage-0 phase drifts %v from closed form (contract %v)",
				c, err, 2*maxPhaseErr)
		}
	}
}

func BenchmarkFFBPFused64(b *testing.B) {
	p, box := smallParams()
	data := sar.Simulate(p, []sar.Target{{U: 3, Y: 520, Amp: 1}}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Image(data, p, box, Config{Interp: interp.Nearest, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFBPRef64(b *testing.B) {
	p, box := smallParams()
	data := sar.Simulate(p, []sar.Target{{U: 3, Y: 520, Amp: 1}}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ImageRef(data, p, box, Config{Interp: interp.Nearest, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
