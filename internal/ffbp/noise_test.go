package ffbp

import (
	"math"
	"testing"

	"sarmany/internal/interp"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

// TestProcessingGain validates the whole chain end to end: back-projection
// integrates NumPulses echoes coherently, so the image SNR of a point
// target exceeds the raw-data SNR by roughly 10*log10(NumPulses) dB.
func TestProcessingGain(t *testing.T) {
	p, box := testParams() // 256 pulses
	tg := sar.Target{U: 0, Y: 555, Amp: 1}
	const sigma = 0.5
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	sar.AddNoise(data, sigma, 123)

	// Raw-data SNR at the target's bin on one pulse: amplitude 1 target in
	// sigma-deviation noise.
	rawSNR := 10 * math.Log10(1/(sigma*sigma))

	img, g, err := Image(data, p, box, Config{Interp: interp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	m := quality.Mag(img)
	wr, wc := targetPixel(g, tg)
	_, _, pk := quality.PeakWithin(m, wr, wc, 6)

	// Noise level: median-free estimate from a corner region far from the
	// target's response.
	var noise float64
	var n int
	for r := 0; r < 20; r++ {
		for c := 0; c < 20; c++ {
			v := float64(m.At(r, c))
			noise += v * v
			n++
		}
	}
	noise = math.Sqrt(noise / float64(n))
	imgSNR := 20 * math.Log10(float64(pk)/noise)

	gain := imgSNR - rawSNR
	wantGain := 10 * math.Log10(float64(p.NumPulses))
	// The measured gain sits somewhat above 10*log10(N): interpolation
	// attenuates the incoherent background more than the coherent target.
	// The band still cleanly separates "the chain integrates coherently"
	// (24-34 dB here) from "it does not" (~0 dB).
	if gain < wantGain-3 || gain > wantGain+9 {
		t.Errorf("processing gain %.1f dB, want ~%.1f (raw SNR %.1f, image SNR %.1f)",
			gain, wantGain, rawSNR, imgSNR)
	}
}

// TestNoiseRobustPeak ensures a strong target is still localized correctly
// in heavy noise.
func TestNoiseRobustPeak(t *testing.T) {
	p, box := testParams()
	tg := sar.Target{U: 10, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	sar.AddNoise(data, 1.0, 99) // 0 dB per-pulse SNR
	img, g, err := Image(data, p, box, Config{Interp: interp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	m := quality.Mag(img)
	pr, pc, _ := quality.Peak(m)
	wr, wc := targetPixel(g, tg)
	if abs(pr-wr) > 6 || abs(pc-wc) > 2 {
		t.Errorf("peak at (%d,%d), want (%d,%d)", pr, pc, wr, wc)
	}
}
