package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
)

func TestEventRingBoundsAndOrder(t *testing.T) {
	r := NewEventRing(3)
	for _, m := range []string{"a", "b", "c", "d", "e"} {
		r.Add(m)
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].Msg != "c" || ev[1].Msg != "d" || ev[2].Msg != "e" {
		t.Fatalf("events = %+v, want tail c,d,e", ev)
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 older events dropped") || !strings.Contains(out, " e\n") {
		t.Errorf("WriteText output:\n%s", out)
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Add("x")
	r.Addf("y %d", 1)
	if r.Events() != nil || r.Dropped() != 0 || r.Len() != 0 {
		t.Error("nil ring not a no-op")
	}
	var tr *Tracer
	tr.Eventf("z")
	if tr.Events() != nil {
		t.Error("nil tracer Events() != nil")
	}
}

// TestEventRingConcurrent exercises the ring from many goroutines; run
// under -race this pins the locking discipline the heartbeat relies on.
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Addf("g%d event %d", g, i)
				_ = r.Events()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("len = %d, want full ring 64", r.Len())
	}
	if r.Dropped() != 8*100-64 {
		t.Errorf("dropped = %d, want %d", r.Dropped(), 8*100-64)
	}
}

// TestEventRingConcurrentReaders mixes writers with every read-side
// method (Events, Len, Dropped, WriteText) so -race pins that readers
// never observe a torn ring while the writers wrap it.
func TestEventRingConcurrentReaders(t *testing.T) {
	r := NewEventRing(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Addf("g%d event %d", g, i)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := r.Len(); got < 0 || got > 32 {
					t.Errorf("len = %d outside [0, 32]", got)
				}
				_ = r.Dropped()
				if err := r.WriteText(io.Discard); err != nil {
					t.Errorf("WriteText: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 32 {
		t.Errorf("len = %d, want full ring 32", r.Len())
	}
	if r.Dropped() != 4*200-32 {
		t.Errorf("dropped = %d, want %d", r.Dropped(), 4*200-32)
	}
}

func TestTracerEventRing(t *testing.T) {
	tr := NewTracer(1e9)
	tr.Eventf("phase %d done", 3)
	ev := tr.Events().Events()
	if len(ev) != 1 || ev[0].Msg != "phase 3 done" {
		t.Fatalf("tracer events = %+v", ev)
	}
}
