package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Registry is a named collection of counters, gauges and histograms. All
// operations are safe for concurrent use; the simulator populates
// registries after a run completes, so none of them sit on a hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically accumulating value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add accumulates delta into the counter.
func (c *Counter) Add(delta float64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the accumulated value.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-write-wins value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates a distribution: count, sum, min, max and
// power-of-two magnitude buckets (bucket i counts observations v with
// 2^(i-1) <= v < 2^i; bucket 0 counts v < 1).
type Histogram struct {
	mu       sync.Mutex
	count    uint64
	sum      float64
	min, max float64
	buckets  [64]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := 0
	if v >= 1 {
		i = int(math.Floor(math.Log2(v))) + 1
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
	}
	h.buckets[i]++
}

// Metric is one snapshotted registry entry. Counters and gauges carry
// Value; histograms carry Count/Sum/Min/Max/Mean and the non-empty
// magnitude buckets.
type Metric struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"`
	Value float64 `json:"value,omitempty"`

	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	// Buckets maps power-of-two magnitude bucket upper bounds (as
	// "<1", "<2", "<4", ...) to observation counts.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name.
type Snapshot []Metric

// Snapshot copies the registry's current state, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := Metric{Name: name, Type: "histogram", Count: h.count, Sum: h.sum}
		if h.count > 0 {
			m.Min, m.Max, m.Mean = h.min, h.max, h.sum/float64(h.count)
			for i, n := range h.buckets {
				if n == 0 {
					continue
				}
				if m.Buckets == nil {
					m.Buckets = map[string]uint64{}
				}
				m.Buckets[bucketLabel(i)] = n
			}
		}
		h.mu.Unlock()
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func bucketLabel(i int) string {
	if i == 0 {
		return "<1"
	}
	return fmt.Sprintf("<%.0f", math.Pow(2, float64(i)))
}

// Get returns the metric with the given name.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Value returns the value of the named counter or gauge (0 if absent).
func (s Snapshot) Value(name string) float64 {
	m, _ := s.Get(name)
	return m.Value
}

// WriteJSON writes the snapshot as an indented JSON array.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as CSV with a header row. Histogram bucket
// detail is elided; Count/Sum/Min/Max/Mean are kept.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name,type,value,count,sum,min,max,mean"); err != nil {
		return err
	}
	for _, m := range s {
		if _, err := fmt.Fprintf(w, "%s,%s,%v,%d,%v,%v,%v,%v\n",
			m.Name, m.Type, m.Value, m.Count, m.Sum, m.Min, m.Max, m.Mean); err != nil {
			return err
		}
	}
	return nil
}
