package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Registry is a named collection of counters, gauges and histograms. All
// operations are safe for concurrent use; the simulator populates
// registries after a run completes, so none of them sit on a hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically accumulating value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add accumulates delta into the counter.
func (c *Counter) Add(delta float64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the accumulated value.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-write-wins value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram bucket geometry: 64 bounded exponential (power-of-two)
// buckets. Bucket i covers [2^(i-33), 2^(i-32)); bucket 0 additionally
// absorbs everything below 2^-32 (including zero), and the top bucket
// absorbs everything from 2^30 up. The range 2^-32..2^30 comfortably
// spans both sub-second job latencies and multi-billion-cycle runs, so
// quantile estimation stays within one power of two everywhere the
// simulator reports.
const (
	numBuckets   = 64
	minBucketExp = -33 // exponent of bucket 0's lower bound
)

// bucketIndex returns the bucket holding v.
func bucketIndex(v float64) int {
	if v < math.Exp2(minBucketExp+1) {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) - minBucketExp
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// bucketBounds returns bucket i's half-open interval [lo, hi). Bucket 0
// reaches down to zero and the top bucket up to +Inf.
func bucketBounds(i int) (lo, hi float64) {
	lo = math.Exp2(float64(i + minBucketExp))
	hi = math.Exp2(float64(i + minBucketExp + 1))
	if i == 0 {
		lo = 0
	}
	if i == numBuckets-1 {
		hi = math.Inf(1)
	}
	return lo, hi
}

// Histogram accumulates a distribution: count, sum, min, max and bounded
// exponential buckets (see bucketIndex for the geometry), from which
// Quantile estimates order statistics.
type Histogram struct {
	mu       sync.Mutex
	count    uint64
	sum      float64
	min, max float64
	buckets  [numBuckets]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketIndex(v)]++
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the exponential buckets: it walks to the bucket
// holding the target rank and interpolates linearly inside it, then
// clamps to the observed [min, max]. The bucket geometry bounds the
// relative error by one power of two. NaN when nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next < target {
			cum = next
			continue
		}
		lo, hi := bucketBounds(i)
		if lo < h.min {
			lo = h.min
		}
		if hi > h.max {
			hi = h.max
		}
		v := lo + (hi-lo)*(target-cum)/float64(n)
		// Clamp against min/max once more: a single-bucket distribution
		// interpolates inside [min, max] already, but floating point can
		// land a hair outside.
		return math.Min(math.Max(v, h.min), h.max)
	}
	return h.max
}

// Metric is one snapshotted registry entry. Counters and gauges carry
// Value; histograms carry Count/Sum/Min/Max/Mean, the estimated
// p50/p90/p99 quantiles, and the non-empty exponential buckets.
type Metric struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"`
	Value float64 `json:"value,omitempty"`

	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	// P50/P90/P99 are bucket-estimated quantiles (see Histogram.Quantile).
	P50 float64 `json:"p50,omitempty"`
	P90 float64 `json:"p90,omitempty"`
	P99 float64 `json:"p99,omitempty"`
	// Buckets maps power-of-two bucket upper bounds (as "<0.5", "<1",
	// "<2", "<4", ...; the top bucket is "<+Inf") to observation counts.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name.
type Snapshot []Metric

// Snapshot copies the registry's current state, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := Metric{Name: name, Type: "histogram", Count: h.count, Sum: h.sum}
		if h.count > 0 {
			m.Min, m.Max, m.Mean = h.min, h.max, h.sum/float64(h.count)
			m.P50 = h.quantileLocked(0.50)
			m.P90 = h.quantileLocked(0.90)
			m.P99 = h.quantileLocked(0.99)
			for i, n := range h.buckets {
				if n == 0 {
					continue
				}
				if m.Buckets == nil {
					m.Buckets = map[string]uint64{}
				}
				m.Buckets[bucketLabel(i)] = n
			}
		}
		h.mu.Unlock()
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// bucketLabel renders bucket i's upper bound as a "<bound>" key.
// strconv's 'g' format round-trips exactly, so exposition code (the
// Prometheus renderer) can parse the bound back out of the label.
func bucketLabel(i int) string {
	_, hi := bucketBounds(i)
	return "<" + strconv.FormatFloat(hi, 'g', -1, 64)
}

// BucketBound parses the upper bound out of a snapshot bucket label
// ("<0.5", "<128", "<+Inf"). The second result is false for a label the
// snapshot writer did not produce.
func BucketBound(label string) (float64, bool) {
	if len(label) < 2 || label[0] != '<' {
		return 0, false
	}
	v, err := strconv.ParseFloat(label[1:], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Get returns the metric with the given name.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Value returns the value of the named counter or gauge (0 if absent).
func (s Snapshot) Value(name string) float64 {
	m, _ := s.Get(name)
	return m.Value
}

// WriteJSON writes the snapshot as an indented JSON array.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as CSV with a header row. Histogram bucket
// detail is elided; Count/Sum/Min/Max/Mean are kept.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name,type,value,count,sum,min,max,mean"); err != nil {
		return err
	}
	for _, m := range s {
		if _, err := fmt.Fprintf(w, "%s,%s,%v,%d,%v,%v,%v,%v\n",
			m.Name, m.Type, m.Value, m.Count, m.Sum, m.Min, m.Max, m.Mean); err != nil {
			return err
		}
	}
	return nil
}
