package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	id, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	var span SpanID
	copy(span[:], []byte{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7})
	h := Traceparent(id, span, true)
	if h != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" {
		t.Fatalf("Traceparent = %q", h)
	}
	gid, gparent, sampled, ok := ParseTraceparent(h)
	if !ok || gid != id || gparent != span || !sampled {
		t.Fatalf("round trip: id=%v parent=%v sampled=%v ok=%v", gid, gparent, sampled, ok)
	}
	if _, _, sampled, ok := ParseTraceparent(Traceparent(id, span, false)); !ok || sampled {
		t.Fatalf("unsampled round trip: sampled=%v ok=%v", sampled, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// Uppercase hex is tolerated on input (case-insensitive parse).
	if _, _, _, ok := ParseTraceparent("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01"); !ok {
		t.Error("uppercase traceparent rejected")
	}
}

func TestTraceIDParse(t *testing.T) {
	if _, ok := ParseTraceID("short"); ok {
		t.Error("short id accepted")
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Error("zero id accepted")
	}
	id := NewTraceID()
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), got, ok)
	}
	if id.IsZero() {
		t.Error("NewTraceID returned zero")
	}
	if id2 := NewTraceID(); id2 == id {
		t.Error("two NewTraceID calls collided")
	}
}

func TestReqTraceTree(t *testing.T) {
	tr := NewReqTrace(TraceID{1})
	root := tr.StartSpan("request")
	root.SetAttr("exp", "gbp")
	adm := root.Child("admission")
	adm.End()
	exec := root.Child("execute")
	look := exec.Child("cache.lookup")
	look.SetAttr("hit", "false")
	look.End()
	exec.End()
	root.End()

	doc := tr.Doc()
	if doc.TraceID != tr.TraceID().String() {
		t.Fatalf("doc trace id %q != %q", doc.TraceID, tr.TraceID())
	}
	if len(doc.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(doc.Spans), doc.Spans)
	}
	byName := map[string]TraceSpan{}
	for _, s := range doc.Spans {
		byName[s.Name] = s
	}
	if byName["request"].Parent != "" {
		t.Errorf("root has parent %q", byName["request"].Parent)
	}
	for _, name := range []string{"admission", "execute"} {
		if byName[name].Parent != byName["request"].ID {
			t.Errorf("%s parent = %q, want root %q", name, byName[name].Parent, byName["request"].ID)
		}
	}
	if byName["cache.lookup"].Parent != byName["execute"].ID {
		t.Errorf("cache.lookup parent = %q, want execute", byName["cache.lookup"].Parent)
	}
	if byName["cache.lookup"].Attrs["hit"] != "false" {
		t.Errorf("cache.lookup attrs = %v", byName["cache.lookup"].Attrs)
	}
	// Children must lie inside the root's wall-clock window.
	rootEnd := byName["request"].StartUnixNs + byName["request"].DurNs
	for _, name := range []string{"admission", "execute"} {
		s := byName[name]
		if s.StartUnixNs < byName["request"].StartUnixNs || s.StartUnixNs+s.DurNs > rootEnd {
			t.Errorf("%s [%d, +%d] outside root window", name, s.StartUnixNs, s.DurNs)
		}
	}

	var sb strings.Builder
	if err := doc.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"request", "├─ admission", "└─ execute", "└─ cache.lookup", "hit=false", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestReqTraceRemoteParent(t *testing.T) {
	tr := NewReqTrace(TraceID{2})
	tr.SetRemoteParent(SpanID{0xab})
	root := tr.StartSpan("request")
	root.End()
	doc := tr.Doc()
	if doc.Spans[0].Parent != (SpanID{0xab}).String() {
		t.Fatalf("root parent = %q, want remote %q", doc.Spans[0].Parent, SpanID{0xab})
	}
	// The remote parent is not a span in the doc, so the tree renderer
	// must still treat the root as a root.
	var sb strings.Builder
	if err := doc.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "request") {
		t.Fatalf("remote-parented root not rendered:\n%s", sb.String())
	}
}

func TestReqTraceNilSafe(t *testing.T) {
	var tr *ReqTrace
	if !tr.TraceID().IsZero() || tr.Dropped() != 0 {
		t.Error("nil trace not a no-op")
	}
	tr.SetRemoteParent(SpanID{1})
	s := tr.StartSpan("x")
	if s != nil {
		t.Fatal("nil trace StartSpan != nil")
	}
	s.SetAttr("k", "v")
	if c := s.Child("y"); c != nil {
		t.Fatal("nil span Child != nil")
	}
	s.End()
	s.AttachSim(NewTracer(1e9), time.Now())
	if s.Trace() != nil || !s.ID().IsZero() {
		t.Error("nil span accessors not zero")
	}
	if doc := tr.Doc(); doc.TraceID != "" || len(doc.Spans) != 0 {
		t.Errorf("nil trace doc = %+v", doc)
	}
}

func TestReqSpanEndIdempotent(t *testing.T) {
	tr := NewReqTrace(TraceID{3})
	s := tr.StartSpan("once")
	s.End()
	s.End()
	s.SetAttr("late", "ignored")
	if n := len(tr.Doc().Spans); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}
	if tr.Doc().Spans[0].Attrs["late"] != "" {
		t.Error("SetAttr after End took effect")
	}
}

func TestReqTraceConcurrent(t *testing.T) {
	tr := NewReqTrace(TraceID{4})
	root := tr.StartSpan("request")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child("stage")
				c.SetAttr("g", "x")
				c.End()
				_ = tr.Doc()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	doc := tr.Doc()
	if len(doc.Spans)+int(doc.Dropped) != 8*50+1 {
		t.Fatalf("spans %d + dropped %d != %d", len(doc.Spans), doc.Dropped, 8*50+1)
	}
	ids := map[string]bool{}
	for _, s := range doc.Spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %q", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestReqTraceCapacityBound(t *testing.T) {
	tr := NewReqTrace(TraceID{5})
	root := tr.StartSpan("request")
	for i := 0; i < DefaultReqSpanCapacity+100; i++ {
		c := root.Child("s")
		c.End()
	}
	root.End()
	doc := tr.Doc()
	if len(doc.Spans) != DefaultReqSpanCapacity {
		t.Fatalf("retained %d spans, want %d", len(doc.Spans), DefaultReqSpanCapacity)
	}
	if doc.Dropped != 101 { // 100 excess children + the root ended last
		t.Fatalf("dropped = %d, want 101", doc.Dropped)
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if TraceFromContext(context.Background()) != nil || SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context carries a trace")
	}
	tr := NewReqTrace(TraceID{6})
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	s := tr.StartSpan("x")
	ctx = ContextWithSpan(ctx, s)
	if SpanFromContext(ctx) != s {
		t.Fatal("span did not round-trip through context")
	}
	// Nil values leave the context untouched instead of storing nils.
	if ContextWithTrace(ctx, nil) != ctx || ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("nil attach did not return the original context")
	}
}

func TestAttachSim(t *testing.T) {
	sim := NewTracer(1e9) // 1 cycle = 1ns
	track := sim.NewTrack(0, 0, "core0")
	track.Span(KindCompute, 0, 1000)
	track.Span(KindStallExt, 1000, 1500)
	empty := sim.NewTrack(0, 1, "core1")
	_ = empty

	tr := NewReqTrace(TraceID{7})
	root := tr.StartSpan("execute")
	base := time.Unix(100, 0)
	root.AttachSim(sim, base)
	root.End()

	doc := tr.Doc()
	var simSpan TraceSpan
	for _, s := range doc.Spans {
		if s.Name == "sim.core0" {
			simSpan = s
		}
		if s.Name == "sim.core1" {
			t.Error("empty track produced a span")
		}
	}
	if simSpan.Name == "" {
		t.Fatalf("no sim.core0 span in %+v", doc.Spans)
	}
	if simSpan.Parent != root.ID().String() {
		t.Errorf("sim span parent = %q, want %q", simSpan.Parent, root.ID())
	}
	if simSpan.StartUnixNs != base.UnixNano() {
		t.Errorf("sim span start = %d, want %d", simSpan.StartUnixNs, base.UnixNano())
	}
	if simSpan.DurNs != 1500 { // 1500 cycles at 1 GHz = 1500ns
		t.Errorf("sim span dur = %dns, want 1500", simSpan.DurNs)
	}
	if simSpan.Attrs["cycles.compute"] != "1000" || simSpan.Attrs["cycles.stall.ext"] != "500" {
		t.Errorf("sim span attrs = %v", simSpan.Attrs)
	}
}

func TestTraceDocWriteTraceEvent(t *testing.T) {
	tr := NewReqTrace(TraceID{8})
	root := tr.StartSpan("request")
	c := root.Child("execute")
	c.SetAttr("cached", "true")
	c.End()
	root.End()

	var sb strings.Builder
	if err := tr.Doc().WriteTraceEvent(&sb); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, sb.String())
	}
	// Metadata + 2 spans.
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(parsed.TraceEvents))
	}
	var sawExec bool
	for _, ev := range parsed.TraceEvents {
		if ev["name"] == "execute" {
			sawExec = true
			args := ev["args"].(map[string]any)
			if args["cached"] != "true" {
				t.Errorf("execute args = %v", args)
			}
		}
	}
	if !sawExec {
		t.Error("execute span missing from trace_event output")
	}
}
