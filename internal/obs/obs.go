// Package obs is the observability layer of the machine models: a
// low-overhead structured event tracer and a metrics registry, with
// exporters for Chrome/Perfetto trace_event JSON, a plain-text timeline,
// and metric snapshots in JSON/CSV.
//
// The tracer is designed around the simulator's execution model: every
// simulated core runs on its own goroutine and owns exactly one Track, so
// span recording is lock-free — a Track is written by a single goroutine
// and read only after the run completes. Each Track is a fixed-capacity
// ring buffer of spans; when a run emits more spans than the capacity, the
// oldest spans are dropped (and counted), never reallocated.
//
// Tracing is strictly opt-in and free when off: all Track methods are
// nil-receiver safe, so an uninstrumented core carries a nil *Track and
// every record call is a no-op — no allocation, no simulated-cycle change
// (the tracer only observes timestamps, it never advances them).
package obs

import (
	"sort"
	"sync"
)

// Kind classifies a span: what the track's owner was doing during the
// interval. The stall kinds mirror the per-cause stall counters of the
// Epiphany core model; KindStallMem is the reference CPU's cache-miss
// stall; the phase kinds label barrier-delimited SPMD phases by what bound
// them.
type Kind uint8

const (
	// KindCompute is a committed dual-issue compute window.
	KindCompute Kind = iota
	// KindStallRead is a stalling read from another core's local memory.
	KindStallRead
	// KindStallExt is a stalling off-chip (eLink + SDRAM) read.
	KindStallExt
	// KindStallDMA is time spent waiting on a DMA completion.
	KindStallDMA
	// KindStallLink is back-pressure or empty-buffer waiting on a
	// core-to-core streaming link.
	KindStallLink
	// KindStallBarrier is time spent waiting at a barrier (including the
	// off-chip channel drain the barrier settles).
	KindStallBarrier
	// KindStallMem is a cache-miss stall on the reference CPU.
	KindStallMem
	// KindPhaseCompute is a barrier phase bound by the slowest core.
	KindPhaseCompute
	// KindPhaseBandwidth is a barrier phase bound by the off-chip channel
	// drain.
	KindPhaseBandwidth
	// KindService is ext-channel service time consumed by a phase.
	KindService
	// KindFaultLink is an injected link-transfer failure: the timeout plus
	// backoff a producer pays before retransmitting a block.
	KindFaultLink
	// KindFaultDMA is an injected DMA completion timeout delaying a
	// descriptor's finish time.
	KindFaultDMA
	numKinds
)

var kindNames = [numKinds]string{
	KindCompute:        "compute",
	KindStallRead:      "stall.read",
	KindStallExt:       "stall.ext",
	KindStallDMA:       "stall.dma",
	KindStallLink:      "stall.link",
	KindStallBarrier:   "stall.barrier",
	KindStallMem:       "stall.mem",
	KindPhaseCompute:   "phase.compute",
	KindPhaseBandwidth: "phase.bandwidth",
	KindService:        "service",
	KindFaultLink:      "fault.link",
	KindFaultDMA:       "fault.dma",
}

// String returns the kind's metric-style name (e.g. "stall.ext").
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one timestamped interval on a track. Times are in the owning
// machine's clock cycles (fractional cycles allowed).
type Span struct {
	Kind       Kind
	Start, End float64
}

// Duration returns the span length in cycles.
func (s Span) Duration() float64 { return s.End - s.Start }

// Edge is a cross-track dependency: the owning track could not progress
// past cycle At until Src reached cycle SrcTime — a link-block arrival, a
// freed back-pressure slot, or any other handoff between execution
// contexts. Edges are what let a post-hoc analyzer (internal/profile)
// follow the critical path off a stalled consumer and onto the producer
// that kept it waiting.
type Edge struct {
	Src     *Track
	SrcTime float64 // cycle on Src at which the dependency was satisfied
	At      float64 // cycle on the owning track at which it unblocked
}

// Track is the span stream of one execution context (one simulated core,
// or a synthetic context such as the chip's phase timeline). It must be
// written by a single goroutine; reads are only safe after that goroutine
// has finished (the simulator guarantees this by exporting after Run
// returns). A nil *Track is a valid no-op sink.
type Track struct {
	name     string
	pid, tid int

	spans   []Span // ring storage, preallocated to capacity
	head    int    // index of the oldest span once the ring has wrapped
	dropped uint64 // spans overwritten after the ring filled
	deps    []Edge // incoming cross-track dependencies, in recording order
}

// Span records one interval. Zero- and negative-length spans are ignored.
// Recording never allocates once the track exists: the ring storage is
// preallocated, and a full ring overwrites its oldest entry.
func (t *Track) Span(kind Kind, start, end float64) {
	if t == nil || end <= start {
		return
	}
	s := Span{Kind: kind, Start: start, End: end}
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
		return
	}
	t.spans[t.head] = s
	t.head++
	if t.head == len(t.spans) {
		t.head = 0
	}
	t.dropped++
}

// Dep records that the track's owner was blocked until src reached cycle
// srcTime and unblocked at local cycle at. Like Span it must be called by
// the owning goroutine only; src is stored by reference and never written
// through. A nil receiver or nil src is a no-op.
func (t *Track) Dep(src *Track, srcTime, at float64) {
	if t == nil || src == nil {
		return
	}
	t.deps = append(t.deps, Edge{Src: src, SrcTime: srcTime, At: at})
}

// Deps returns the recorded incoming dependency edges in recording order.
func (t *Track) Deps() []Edge {
	if t == nil {
		return nil
	}
	return t.deps
}

// Name returns the track's display name ("" for a nil track).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Dropped returns how many spans were overwritten because the ring filled.
func (t *Track) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Len returns the number of retained spans.
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the retained spans in chronological (recording) order.
func (t *Track) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.head:]...)
	out = append(out, t.spans[:t.head]...)
	return out
}

// DefaultCapacity is the per-track span ring capacity used unless
// SetCapacity overrides it.
const DefaultCapacity = 1 << 14

// Tracer collects the tracks of one simulation. Track creation is
// synchronized (machines attach tracks from whatever goroutine constructs
// them); span recording itself is per-track and lock-free.
type Tracer struct {
	clockHz float64

	// events is the tracer's flight-recorder ring: recent wall-clock
	// lifecycle notes (heartbeats, warnings) kept alongside the span
	// tracks so a post-mortem can replay what the run was doing last.
	events *EventRing

	mu     sync.Mutex
	cap    int
	tracks []*Track
	procs  map[int]string
	order  []int // pids in registration order
}

// NewTracer returns a tracer for machines clocked at clockHz (used to
// convert cycle timestamps to wall time in exporters). A non-positive
// clockHz defaults to 1 GHz.
func NewTracer(clockHz float64) *Tracer {
	if clockHz <= 0 {
		clockHz = 1e9
	}
	return &Tracer{
		clockHz: clockHz,
		cap:     DefaultCapacity,
		procs:   map[int]string{},
		events:  NewEventRing(DefaultEventCapacity),
	}
}

// ClockHz returns the cycle-to-seconds conversion rate.
func (tr *Tracer) ClockHz() float64 { return tr.clockHz }

// Events returns the tracer's flight-recorder event ring (nil on a nil
// tracer; every ring method is nil-safe, so callers can chain freely).
func (tr *Tracer) Events() *EventRing {
	if tr == nil {
		return nil
	}
	return tr.events
}

// Eventf records a formatted wall-clock event into the tracer's
// flight-recorder ring. Safe on a nil tracer.
func (tr *Tracer) Eventf(format string, args ...any) {
	if tr == nil {
		return
	}
	tr.events.Addf(format, args...)
}

// SetCapacity sets the span ring capacity of tracks created afterwards.
func (tr *Tracer) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	tr.mu.Lock()
	tr.cap = n
	tr.mu.Unlock()
}

// NameProcess registers a display name for a process (pid) group — e.g.
// the chip a set of core tracks belongs to. The first name registered for
// a pid wins. Safe on a nil tracer.
func (tr *Tracer) NameProcess(pid int, name string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.procs[pid]; !ok {
		tr.procs[pid] = name
		tr.order = append(tr.order, pid)
	}
}

// NewTrack creates and registers a track in process pid with thread id tid
// and the given display name. A nil tracer returns a nil (no-op) track, so
// machines can attach unconditionally.
func (tr *Tracer) NewTrack(pid, tid int, name string) *Track {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t := &Track{name: name, pid: pid, tid: tid, spans: make([]Span, 0, tr.cap)}
	tr.tracks = append(tr.tracks, t)
	return t
}

// Tracks returns the registered tracks in creation order.
func (tr *Tracer) Tracks() []*Track {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Track, len(tr.tracks))
	copy(out, tr.tracks)
	return out
}

// Dropped returns the total spans dropped across all tracks.
func (tr *Tracer) Dropped() uint64 {
	var n uint64
	for _, t := range tr.Tracks() {
		n += t.Dropped()
	}
	return n
}

// PublishMetrics records the tracer's span accounting into reg: the total
// retained span count ("obs.spans.recorded"), the aggregate overflow
// counter ("obs.spans.dropped"), and one "obs.spans.dropped.<track>"
// counter per track that overflowed its ring — so a metrics snapshot
// makes silent drop-oldest overflow visible instead of quietly truncating
// the trace. Safe on a nil tracer or nil registry.
func (tr *Tracer) PublishMetrics(reg *Registry) {
	if tr == nil || reg == nil {
		return
	}
	recorded := reg.Counter("obs.spans.recorded")
	dropped := reg.Counter("obs.spans.dropped")
	for _, t := range tr.Tracks() {
		recorded.Add(float64(t.Len()))
		if d := t.Dropped(); d > 0 {
			dropped.Add(float64(d))
			reg.Counter("obs.spans.dropped." + t.Name()).Add(float64(d))
		}
	}
}

// processes returns the registered (pid, name) pairs in registration
// order, sorted by pid for export determinism.
func (tr *Tracer) processes() []struct {
	pid  int
	name string
} {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]struct {
		pid  int
		name string
	}, 0, len(tr.order))
	for _, pid := range tr.order {
		out = append(out, struct {
			pid  int
			name string
		}{pid, tr.procs[pid]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}
