package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the sort-based reference the bucket estimator is
// checked against: the value at rank ceil(q*n) (the smallest value with
// at least a q fraction of the sample at or below it).
func refQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestQuantileAccuracy drives random data through the histogram and
// checks the bucket estimate against the sort-based reference. The
// power-of-two bucket geometry bounds the estimate to within one bucket
// of the true order statistic: est must lie in [ref/2, 2*ref] for
// positive references, and always inside the observed [min, max].
func TestQuantileAccuracy(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		// Sub-second latencies: the sweep.job.seconds regime, which the
		// old all-below-one bucket 0 could not resolve at all.
		{"uniform_small", func(r *rand.Rand) float64 { return r.Float64() * 0.25 }},
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1000 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 3 }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 2) }},
		// Heavy point mass plus a tail: p50 sits on the mass, p99 on the
		// tail — the wedge-detection shape (most heartbeats fast, a few
		// stalls slow).
		{"point_mass_tail", func(r *rand.Rand) float64 {
			if r.Float64() < 0.9 {
				return 0.01
			}
			return 10 + r.Float64()*100
		}},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			reg := NewRegistry()
			h := reg.Histogram("x")
			vals := make([]float64, 0, 5000)
			for i := 0; i < 5000; i++ {
				v := d.gen(r)
				vals = append(vals, v)
				h.Observe(v)
			}
			sort.Float64s(vals)
			for _, q := range []float64{0.5, 0.9, 0.99} {
				est := h.Quantile(q)
				ref := refQuantile(vals, q)
				if est < vals[0] || est > vals[len(vals)-1] {
					t.Errorf("q=%v: estimate %v outside observed range [%v, %v]",
						q, est, vals[0], vals[len(vals)-1])
				}
				if ref > 0 && (est < ref/2 || est > ref*2) {
					t.Errorf("q=%v: estimate %v vs reference %v beyond the one-bucket bound",
						q, est, ref)
				}
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x")
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty histogram quantile = %v, want NaN", v)
	}
	h.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 7 {
			t.Errorf("single-sample Quantile(%v) = %v, want 7", q, v)
		}
	}
	h.Observe(0) // zero lands in bucket 0 without a log2 blowup
	if v := h.Quantile(0); v != 0 {
		t.Errorf("Quantile(0) = %v, want min 0", v)
	}
	if v := h.Quantile(1); v != 7 {
		t.Errorf("Quantile(1) = %v, want max 7", v)
	}
}

// TestEmptyHistogramSnapshot pins the no-samples edge every
// p50-derived heuristic (serve's Retry-After hint) depends on: an
// unobserved histogram must quantile to NaN, but its snapshot must
// stay NaN-free (zero-valued P50/Min/Max) so the snapshot still
// marshals to JSON — ledger entries embed these snapshots verbatim.
func TestEmptyHistogramSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("cold")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("empty Quantile(%v) = %v, want NaN", q, v)
		}
	}
	m, ok := reg.Snapshot().Get("cold")
	if !ok {
		t.Fatal("cold missing from snapshot")
	}
	if m.Count != 0 || m.P50 != 0 || m.Min != 0 || m.Max != 0 {
		t.Errorf("empty histogram snapshot = %+v, want zero-valued", m)
	}
	if _, err := json.Marshal(reg.Snapshot()); err != nil {
		t.Errorf("empty-histogram snapshot does not marshal: %v", err)
	}

	// One sample: every quantile is that sample, and the snapshot's
	// order statistics collapse onto it.
	h.Observe(0.25)
	m, _ = reg.Snapshot().Get("cold")
	if m.P50 != 0.25 || m.P99 != 0.25 || m.Min != 0.25 || m.Max != 0.25 {
		t.Errorf("single-sample snapshot = %+v, want all 0.25", m)
	}
}

// TestSnapshotQuantiles pins that histogram snapshots surface p50/p90/p99
// and that sub-one observations now resolve into distinct buckets.
func TestSnapshotQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	for i := 0; i < 100; i++ {
		h.Observe(0.010) // 100 fast jobs
	}
	for i := 0; i < 5; i++ {
		h.Observe(3.0) // 5 slow ones
	}
	m, ok := reg.Snapshot().Get("lat")
	if !ok {
		t.Fatal("lat missing from snapshot")
	}
	if m.P50 <= 0 || m.P50 > 0.016 {
		t.Errorf("p50 = %v, want within the 0.010 bucket", m.P50)
	}
	if m.P99 < 2 || m.P99 > 3 {
		t.Errorf("p99 = %v, want on the slow tail", m.P99)
	}
	if m.P50 >= m.P99 {
		t.Errorf("p50 %v >= p99 %v", m.P50, m.P99)
	}
	// 0.010 lands in [2^-7, 2^-6) — a sub-one bucket the old geometry
	// collapsed into "<1".
	if n := m.Buckets["<0.015625"]; n != 100 {
		t.Errorf("fast bucket = %d, want 100 (all: %v)", n, m.Buckets)
	}
}

func TestBucketBoundRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 31, 32, 33, 40, 62, 63} {
		_, hi := bucketBounds(i)
		v, ok := BucketBound(bucketLabel(i))
		if !ok || v != hi {
			t.Errorf("bucket %d: label %q parsed to (%v, %v), want %v",
				i, bucketLabel(i), v, ok, hi)
		}
	}
	if _, ok := BucketBound("nope"); ok {
		t.Error("BucketBound accepted a non-label")
	}
}
