package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	r.Gauge("b").Set(7)
	r.Gauge("b").Set(9)
	if v := r.Counter("a").Value(); v != 5 {
		t.Errorf("counter = %v", v)
	}
	if v := r.Gauge("b").Value(); v != 9 {
		t.Errorf("gauge = %v", v)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stall")
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	m, ok := s.Get("stall")
	if !ok || m.Type != "histogram" {
		t.Fatalf("snapshot %+v", s)
	}
	if m.Count != 4 || m.Sum != 104.5 || m.Min != 0.5 || m.Max != 100 {
		t.Errorf("histogram metric %+v", m)
	}
	if m.Mean != 104.5/4 {
		t.Errorf("mean %v", m.Mean)
	}
	// 0.5 -> "<1", 1 -> "<2", 3 -> "<4", 100 -> "<128"
	for _, b := range []string{"<1", "<2", "<4", "<128"} {
		if m.Buckets[b] != 1 {
			t.Errorf("bucket %q = %d, want 1 (all: %v)", b, m.Buckets[b], m.Buckets)
		}
	}
}

func TestSnapshotSortedAndEncodes(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Gauge("a.first").Set(2)
	r.Histogram("m.mid").Observe(4)
	s := r.Snapshot()
	if len(s) != 3 || s[0].Name != "a.first" || s[1].Name != "m.mid" || s[2].Name != "z.last" {
		t.Fatalf("snapshot order: %+v", s)
	}

	var jb bytes.Buffer
	if err := s.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back) != 3 || back[2].Value != 1 {
		t.Errorf("decoded %+v", back)
	}

	var cb bytes.Buffer
	if err := s.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "name,type,") {
		t.Errorf("CSV output:\n%s", cb.String())
	}
}

func TestSnapshotValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(42)
	if v := r.Snapshot().Value("x"); v != 42 {
		t.Errorf("Value = %v", v)
	}
	if v := r.Snapshot().Value("missing"); v != 0 {
		t.Errorf("missing Value = %v", v)
	}
}
