package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultEventCapacity is the event ring capacity a Tracer creates unless
// SetEventCapacity overrides it.
const DefaultEventCapacity = 1024

// Event is one timestamped free-form note in a flight-recorder ring:
// a heartbeat sample, a lifecycle marker, a warning. Unlike spans, events
// carry wall-clock time — they describe the host-side progress of a
// simulation, not simulated cycles.
type Event struct {
	Wall time.Time `json:"wall"`
	Msg  string    `json:"msg"`
}

// EventRing is a bounded, concurrency-safe ring buffer of recent events.
// When full it overwrites the oldest entry (and counts the drop), so a
// long run keeps a fixed-size tail of its most recent history — the
// flight-recorder discipline: cheap while everything is fine, and exactly
// what a post-mortem wants when something wedges. A nil *EventRing is a
// valid no-op sink.
type EventRing struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest event once the ring has wrapped
	dropped uint64
}

// NewEventRing returns a ring holding at most capacity events
// (DefaultEventCapacity when capacity < 1).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = DefaultEventCapacity
	}
	return &EventRing{buf: make([]Event, 0, capacity)}
}

// Add records one event now.
func (r *EventRing) Add(msg string) {
	if r == nil {
		return
	}
	e := Event{Wall: time.Now(), Msg: msg}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.dropped++
}

// Addf records one formatted event now.
func (r *EventRing) Addf(format string, args ...any) {
	if r == nil {
		return
	}
	r.Add(fmt.Sprintf(format, args...))
}

// Events returns the retained events oldest-first.
func (r *EventRing) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Dropped returns how many events were overwritten because the ring
// filled.
func (r *EventRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of retained events.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// WriteText renders the retained events one per line with microsecond
// wall-clock timestamps, noting up front how many older events the ring
// dropped.
func (r *EventRing) WriteText(w io.Writer) error {
	events := r.Events()
	if n := r.Dropped(); n > 0 {
		if _, err := fmt.Fprintf(w, "(%d older events dropped by the ring)\n", n); err != nil {
			return err
		}
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%s %s\n", e.Wall.Format("15:04:05.000000"), e.Msg); err != nil {
			return err
		}
	}
	return nil
}
