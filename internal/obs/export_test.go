package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a small fixed trace: two cores and a phase track on
// a 1 GHz chip, with compute, stall and phase spans.
func goldenTracer() *Tracer {
	tr := NewTracer(1e9)
	tr.NameProcess(0, "epiphany 4x4")
	tr.NameProcess(1, "refcpu")
	phases := tr.NewTrack(0, 0, "phases")
	c0 := tr.NewTrack(0, 1, "core 0")
	c1 := tr.NewTrack(0, 2, "core 1")
	cpu := tr.NewTrack(1, 1, "cpu")

	c0.Span(KindCompute, 0, 1000)
	c0.Span(KindStallExt, 1000, 1250)
	c0.Span(KindCompute, 1250, 2000)
	c0.Span(KindStallBarrier, 2000, 3000)
	c1.Span(KindCompute, 0, 1500)
	c1.Span(KindStallDMA, 1500, 1800)
	c1.Span(KindStallBarrier, 1800, 3000)
	phases.Span(KindPhaseBandwidth, 0, 3000)
	cpu.Span(KindStallMem, 10, 120.5)
	return tr
}

func TestWriteTraceEventGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteTraceEvent(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_event_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace_event output differs from golden:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestTraceEventIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteTraceEvent(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Errorf("complete event with non-positive dur: %+v", ev)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	// 2 process names + 4 thread names; 9 spans.
	if meta != 6 || complete != 9 {
		t.Errorf("got %d metadata + %d complete events, want 6 + 9", meta, complete)
	}
	// 1000 cycles at 1 GHz = 1 µs.
	if ev := doc.TraceEvents[6]; ev.Name != "stall.ext" || ev.Ts != 1.0 || ev.Dur != 0.25 {
		t.Errorf("stall.ext event mistimed: %+v", ev)
	}
}

// TestWriteTraceEventEscapingGolden pins the export's JSON string
// escaping and field order for hostile display names: quotes,
// backslashes, control characters and non-ASCII text in process and
// thread names must produce stable, valid JSON.
func TestWriteTraceEventEscapingGolden(t *testing.T) {
	tr := NewTracer(2e9)
	tr.NameProcess(3, `mesh "4x4" \ epiphany`)
	esc := tr.NewTrack(3, 1, "core\t0 — «ω»")
	esc.Span(KindCompute, 0, 512)
	esc.Span(KindStallRead, 512, 640)

	var buf bytes.Buffer
	if err := tr.WriteTraceEvent(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_event_escaping_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("escaped trace_event output differs from golden:\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// The escaped output must still parse, with the names round-tripping.
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("escaped output is not valid JSON: %v\n%s", err, buf.String())
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			names = append(names, ev.Args.Name)
		}
	}
	if len(names) != 2 || names[0] != `mesh "4x4" \ epiphany` || names[1] != "core\t0 — «ω»" {
		t.Errorf("names did not round-trip: %q", names)
	}
}

func TestWriteTimelineDroppedWarning(t *testing.T) {
	tr := NewTracer(1e9)
	tr.SetCapacity(2)
	tk := tr.NewTrack(0, 1, "ring")
	for i := 0; i < 5; i++ {
		tk.Span(KindCompute, float64(i)*10, float64(i)*10+8)
	}
	var buf bytes.Buffer
	if err := tr.WriteTimeline(&buf, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(3 spans dropped)") {
		t.Errorf("per-track drop note missing:\n%s", out)
	}
	if !strings.Contains(out, "WARNING: 3 spans dropped") {
		t.Errorf("timeline warning footer missing:\n%s", out)
	}

	// No drops: no warning line.
	buf.Reset()
	if err := goldenTracer().WriteTimeline(&buf, 20); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "WARNING") {
		t.Errorf("warning printed without drops:\n%s", buf.String())
	}
}

func TestWriteTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteTimeline(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"core 0", "core 1", "phases", "cpu", "#", "b", "B", "3000 cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 4 tracks + legend
		t.Errorf("%d timeline lines:\n%s", len(lines), out)
	}
}
