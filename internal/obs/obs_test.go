package obs

import (
	"sync"
	"testing"
)

func TestNilTrackIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.NameProcess(0, "none")
	tk := tr.NewTrack(0, 1, "core 0")
	if tk != nil {
		t.Fatal("nil tracer returned a non-nil track")
	}
	tk.Span(KindCompute, 0, 10) // must not panic
	if tk.Len() != 0 || tk.Dropped() != 0 || tk.Spans() != nil || tk.Name() != "" {
		t.Error("nil track not inert")
	}
	if n := testing.AllocsPerRun(100, func() {
		tk.Span(KindCompute, 0, 10)
		tk.Span(KindStallExt, 10, 20)
	}); n != 0 {
		t.Errorf("nil track allocates %v per run", n)
	}
}

func TestTrackRecordsInOrder(t *testing.T) {
	tr := NewTracer(1e9)
	tk := tr.NewTrack(0, 1, "core 0")
	tk.Span(KindCompute, 0, 5)
	tk.Span(KindStallExt, 5, 9)
	tk.Span(KindCompute, 9, 9) // zero length: ignored
	tk.Span(KindCompute, 12, 20)
	spans := tk.Spans()
	if len(spans) != 2+1 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Kind != KindCompute || spans[1].Kind != KindStallExt {
		t.Errorf("span kinds wrong: %+v", spans)
	}
	if spans[2].Start != 12 || spans[2].Duration() != 8 {
		t.Errorf("last span %+v", spans[2])
	}
	if tk.Dropped() != 0 {
		t.Errorf("dropped %d", tk.Dropped())
	}
}

func TestTrackRingDropsOldest(t *testing.T) {
	tr := NewTracer(1e9)
	tr.SetCapacity(4)
	tk := tr.NewTrack(0, 1, "ring")
	for i := 0; i < 10; i++ {
		tk.Span(KindCompute, float64(i), float64(i)+1)
	}
	if tk.Dropped() != 6 {
		t.Errorf("dropped %d, want 6", tk.Dropped())
	}
	spans := tk.Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans retained", len(spans))
	}
	for i, s := range spans {
		if want := float64(6 + i); s.Start != want {
			t.Errorf("span %d starts at %v, want %v (oldest must be dropped first)", i, s.Start, want)
		}
	}
}

func TestRecordingDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1e9)
	tr.SetCapacity(8)
	tk := tr.NewTrack(0, 1, "hot")
	var at float64
	if n := testing.AllocsPerRun(1000, func() {
		tk.Span(KindCompute, at, at+1)
		at++
	}); n != 0 {
		t.Errorf("recording allocates %v per span", n)
	}
}

func TestTrackDeps(t *testing.T) {
	tr := NewTracer(1e9)
	prod := tr.NewTrack(0, 1, "producer")
	cons := tr.NewTrack(0, 2, "consumer")
	cons.Dep(prod, 100, 140)
	cons.Dep(prod, 200, 260)
	cons.Dep(nil, 0, 0) // nil src: ignored
	deps := cons.Deps()
	if len(deps) != 2 {
		t.Fatalf("%d deps, want 2", len(deps))
	}
	if deps[0].Src != prod || deps[0].SrcTime != 100 || deps[0].At != 140 {
		t.Errorf("dep 0 = %+v", deps[0])
	}
	if prod.Deps() != nil {
		t.Errorf("producer has %d deps, want none", len(prod.Deps()))
	}
	var nilTrack *Track
	nilTrack.Dep(prod, 1, 2) // must not panic
	if nilTrack.Deps() != nil {
		t.Error("nil track returned deps")
	}
}

func TestPublishMetricsDroppedSpans(t *testing.T) {
	tr := NewTracer(1e9)
	tr.SetCapacity(4)
	full := tr.NewTrack(0, 1, "core 0")
	ok := tr.NewTrack(0, 2, "core 1")
	for i := 0; i < 10; i++ {
		full.Span(KindCompute, float64(i), float64(i)+1)
	}
	ok.Span(KindCompute, 0, 5)

	reg := NewRegistry()
	tr.PublishMetrics(reg)
	snap := reg.Snapshot()
	if got := snap.Value("obs.spans.dropped"); got != 6 {
		t.Errorf("obs.spans.dropped = %v, want 6", got)
	}
	if got := snap.Value("obs.spans.dropped.core 0"); got != 6 {
		t.Errorf("obs.spans.dropped.core 0 = %v, want 6", got)
	}
	if _, found := snap.Get("obs.spans.dropped.core 1"); found {
		t.Error("per-track dropped counter published for a track with no drops")
	}
	if got := snap.Value("obs.spans.recorded"); got != 5 {
		t.Errorf("obs.spans.recorded = %v, want 5 (4 retained + 1)", got)
	}

	var nilTr *Tracer
	nilTr.PublishMetrics(reg) // must not panic
	tr.PublishMetrics(nil)    // must not panic
}

func TestConcurrentTracksAreIndependent(t *testing.T) {
	tr := NewTracer(1e9)
	const nTracks, nSpans = 16, 500
	var wg sync.WaitGroup
	for i := 0; i < nTracks; i++ {
		tk := tr.NewTrack(0, i+1, "core")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < nSpans; j++ {
				tk.Span(KindCompute, float64(j), float64(j)+0.5)
			}
		}()
	}
	wg.Wait()
	for _, tk := range tr.Tracks() {
		if tk.Len() != nSpans {
			t.Errorf("track %q has %d spans, want %d", tk.Name(), tk.Len(), nSpans)
		}
	}
}
