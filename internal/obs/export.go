package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTraceEvent writes the collected tracks in the Chrome trace_event
// JSON format understood by Perfetto (https://ui.perfetto.dev) and
// chrome://tracing: metadata events naming each process and thread,
// followed by one complete ("ph":"X") event per span. Timestamps are in
// microseconds, converted from cycles with the tracer's clock. The output
// is deterministic: processes sorted by pid, tracks in creation order,
// spans in recording order.
func (tr *Tracer) WriteTraceEvent(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	for _, p := range tr.processes() {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%q}}`, p.pid, p.name))
	}
	usPerCycle := 1e6 / tr.clockHz
	var buf []byte
	for _, t := range tr.Tracks() {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			t.pid, t.tid, t.name))
		for _, s := range t.Spans() {
			buf = buf[:0]
			buf = append(buf, `{"ph":"X","pid":`...)
			buf = strconv.AppendInt(buf, int64(t.pid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(t.tid), 10)
			buf = append(buf, `,"cat":"sim","name":"`...)
			buf = append(buf, s.Kind.String()...)
			buf = append(buf, `","ts":`...)
			buf = strconv.AppendFloat(buf, s.Start*usPerCycle, 'f', 3, 64)
			buf = append(buf, `,"dur":`...)
			buf = strconv.AppendFloat(buf, s.Duration()*usPerCycle, 'f', 3, 64)
			buf = append(buf, `}`...)
			emit(string(buf))
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// timelineGlyphs maps span kinds to the character that fills a timeline
// cell: '#' compute, lower-case letters for stalls, upper-case for phase
// classifications.
var timelineGlyphs = [numKinds]byte{
	KindCompute:        '#',
	KindStallRead:      'r',
	KindStallExt:       'e',
	KindStallDMA:       'd',
	KindStallLink:      'l',
	KindStallBarrier:   'b',
	KindStallMem:       'm',
	KindPhaseCompute:   'C',
	KindPhaseBandwidth: 'B',
	KindService:        's',
	KindFaultLink:      'X',
	KindFaultDMA:       'x',
}

// WriteTimeline renders the tracks as a fixed-width plain-text timeline:
// one row per track, each of width cells covering [0, latest span end]
// cycles, every cell showing the span kind that occupied most of it
// (' ' = idle/untracked). A legend and the cycle span follow the rows.
func (tr *Tracer) WriteTimeline(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	tracks := tr.Tracks()
	var end float64
	for _, t := range tracks {
		for _, s := range t.Spans() {
			if s.End > end {
				end = s.End
			}
		}
	}
	if end == 0 {
		_, err := fmt.Fprintln(w, "obs: no spans recorded")
		return err
	}
	cell := end / float64(width)
	nameW := 0
	for _, t := range tracks {
		if len(t.Name()) > nameW {
			nameW = len(t.Name())
		}
	}
	for _, t := range tracks {
		// Weight per cell and kind; the dominant kind fills the cell.
		weights := make([][numKinds]float64, width)
		for _, s := range t.Spans() {
			lo := int(s.Start / cell)
			hi := int(s.End / cell)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				cLo := float64(i) * cell
				cHi := cLo + cell
				ov := minf(s.End, cHi) - maxf(s.Start, cLo)
				if ov > 0 {
					weights[i][s.Kind] += ov
				}
			}
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
			best := 0.0
			for k, wt := range weights[i] {
				if wt > best {
					best = wt
					row[i] = timelineGlyphs[k]
				}
			}
		}
		line := fmt.Sprintf("%-*s |%s|", nameW, t.Name(), row)
		if d := t.Dropped(); d > 0 {
			line += fmt.Sprintf(" (%d spans dropped)", d)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	var legend []string
	for k := Kind(0); k < numKinds; k++ {
		legend = append(legend, fmt.Sprintf("%c=%s", timelineGlyphs[k], k))
	}
	if _, err := fmt.Fprintf(w, "%-*s  0 .. %.0f cycles; %s\n",
		nameW, "", end, strings.Join(legend, " ")); err != nil {
		return err
	}
	if d := tr.Dropped(); d > 0 {
		_, err := fmt.Fprintf(w, "WARNING: %d spans dropped (ring overflow) — early activity is missing above; rerun with a larger track capacity\n", d)
		return err
	}
	return nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
