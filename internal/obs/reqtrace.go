package obs

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the request-scoped (wall-clock) half of the tracing
// story. The Tracer above lives in the cycle domain of one simulated
// machine; a ReqTrace lives in the wall-clock domain of one serving
// request and stitches together every stage the request crosses —
// HTTP admission, queue wait, batch formation, sweep cache lookup,
// execution, ledger write — into a single span tree identified by a
// W3C-compatible 128-bit trace ID. Like the Tracer, everything here is
// nil-receiver safe: an unsampled request carries a nil *ReqTrace and
// every span operation is a no-op.

// TraceID is a 128-bit W3C Trace Context trace identifier.
type TraceID [16]byte

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for isZero(id[:]) {
		if _, err := rand.Read(id[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back
			// to a time-derived ID rather than returning the forbidden
			// all-zero value.
			binary.BigEndian.PutUint64(id[:8], uint64(time.Now().UnixNano()))
			binary.BigEndian.PutUint64(id[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
		}
	}
	return id
}

// String returns the 32-character lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the all-zero (invalid) value.
func (id TraceID) IsZero() bool { return isZero(id[:]) }

// ParseTraceID parses a 32-character hex trace ID; ok is false for
// malformed or all-zero input (the W3C spec forbids zero IDs).
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(strings.ToLower(s))); err != nil {
		return TraceID{}, false
	}
	if id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// SpanID is a 64-bit W3C Trace Context span (parent) identifier.
type SpanID [8]byte

// String returns the 16-character lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the all-zero (invalid) value.
func (id SpanID) IsZero() bool { return isZero(id[:]) }

func isZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// ParseTraceparent parses a W3C `traceparent` header
// (version-traceid-spanid-flags, e.g.
// "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01").
// It returns the trace ID, the caller's span ID (the parent of
// whatever span the receiver starts), and whether the caller sampled
// the trace. ok is false for anything malformed, for zero IDs, and
// for the reserved version ff.
func ParseTraceparent(h string) (id TraceID, parent SpanID, sampled, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[3]) != 2 {
		return TraceID{}, SpanID{}, false, false
	}
	ver, err := hex.DecodeString(strings.ToLower(parts[0]))
	if err != nil || ver[0] == 0xff {
		return TraceID{}, SpanID{}, false, false
	}
	id, idOK := ParseTraceID(parts[1])
	if !idOK {
		return TraceID{}, SpanID{}, false, false
	}
	if len(parts[2]) != 16 {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(parent[:], []byte(strings.ToLower(parts[2]))); err != nil || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	flags, err := hex.DecodeString(strings.ToLower(parts[3]))
	if err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	return id, parent, flags[0]&0x01 != 0, true
}

// Traceparent formats a W3C `traceparent` header value for propagating
// the trace to a downstream service.
func Traceparent(id TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + id.String() + "-" + span.String() + "-" + flags
}

// DefaultReqSpanCapacity bounds how many finished spans one request
// trace retains; spans ended past the bound are counted as dropped.
const DefaultReqSpanCapacity = 512

// ReqTrace collects the wall-clock span tree of one request. It is
// safe for concurrent use (a request's spans end on the HTTP
// goroutine, the batcher goroutine, and sweep workers). A nil
// *ReqTrace is a valid no-op sink — the unsampled-request fast path.
type ReqTrace struct {
	id TraceID

	mu      sync.Mutex
	next    uint64 // span-ID counter; sequential, unique within the trace
	remote  SpanID // inbound traceparent span, parent of root spans
	spans   []TraceSpan
	cap     int
	dropped uint64
}

// NewReqTrace returns a trace collector for the given ID (a zero ID is
// replaced with a fresh random one).
func NewReqTrace(id TraceID) *ReqTrace {
	if id.IsZero() {
		id = NewTraceID()
	}
	return &ReqTrace{id: id, cap: DefaultReqSpanCapacity}
}

// SetRemoteParent records the caller's span ID from an inbound
// traceparent header; root spans started afterwards are parented to it
// so the exported tree splices under the caller's trace. Nil-safe.
func (t *ReqTrace) SetRemoteParent(id SpanID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.remote = id
	t.mu.Unlock()
}

// TraceID returns the trace identifier (zero for a nil trace).
func (t *ReqTrace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Dropped returns how many finished spans were discarded because the
// trace hit its span capacity.
func (t *ReqTrace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StartSpan opens a root-level span (parented to the inbound remote
// span, if any). Nil-safe: a nil trace returns a nil no-op span.
func (t *ReqTrace) StartSpan(name string) *ReqSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	parent := t.remote
	id := t.nextIDLocked()
	t.mu.Unlock()
	return &ReqSpan{tr: t, id: id, parent: parent, name: name, start: time.Now()}
}

func (t *ReqTrace) nextIDLocked() SpanID {
	t.next++
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.next)
	return id
}

// add records one finished span, honoring the capacity bound.
func (t *ReqTrace) add(s TraceSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Doc snapshots the finished spans as an exportable TraceDoc, sorted
// by start time (ties broken by span ID, which is monotonic in span
// creation order). Spans still open are not included — end every span
// before exporting. Nil-safe: a nil trace yields a zero doc.
func (t *ReqTrace) Doc() TraceDoc {
	if t == nil {
		return TraceDoc{}
	}
	t.mu.Lock()
	doc := TraceDoc{
		TraceID: t.id.String(),
		Dropped: t.dropped,
		Spans:   append([]TraceSpan(nil), t.spans...),
	}
	t.mu.Unlock()
	sort.SliceStable(doc.Spans, func(i, j int) bool {
		if doc.Spans[i].StartUnixNs != doc.Spans[j].StartUnixNs {
			return doc.Spans[i].StartUnixNs < doc.Spans[j].StartUnixNs
		}
		return doc.Spans[i].ID < doc.Spans[j].ID
	})
	return doc
}

// ReqSpan is one open wall-clock span. Methods are safe on a nil
// receiver and for concurrent use; End is idempotent (the first call
// wins).
type ReqSpan struct {
	tr     *ReqTrace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// Trace returns the owning trace (nil for a nil span).
func (s *ReqSpan) Trace() *ReqTrace {
	if s == nil {
		return nil
	}
	return s.tr
}

// ID returns the span's identifier (zero for a nil span); combined
// with the trace ID it forms the traceparent a downstream hop sees.
func (s *ReqSpan) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Child opens a sub-span. Nil-safe: a nil parent returns nil.
func (s *ReqSpan) Child(name string) *ReqSpan {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	id := t.nextIDLocked()
	t.mu.Unlock()
	return &ReqSpan{tr: t, id: id, parent: s.id, name: name, start: time.Now()}
}

// SetAttr attaches a key=value annotation (last write per key wins).
func (s *ReqSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
}

// End closes the span and records it into the trace. Calling End more
// than once records the span once, at the first call's time.
func (s *ReqSpan) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	rec := TraceSpan{
		ID:          s.id.String(),
		Name:        s.name,
		StartUnixNs: s.start.UnixNano(),
		DurNs:       now.Sub(s.start).Nanoseconds(),
		Attrs:       attrs,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	s.tr.add(rec)
}

// AttachSim splices a completed simulator trace into the request tree
// as children of s: one child span per simulator track, covering the
// track's busy extent converted from cycles to wall time with the
// tracer's clock and anchored so that cycle 0 coincides with base
// (typically the instant the simulation started). Per-kind cycle
// totals ride along as span attributes, so a request trace shows not
// just that the simulator ran but where its cycles went. Safe on nil
// span and nil tracer.
func (s *ReqSpan) AttachSim(tr *Tracer, base time.Time) {
	if s == nil || tr == nil {
		return
	}
	secPerCycle := 1 / tr.ClockHz()
	for _, track := range tr.Tracks() {
		spans := track.Spans()
		if len(spans) == 0 {
			continue
		}
		first, last := spans[0].Start, spans[0].End
		var kinds [numKinds]float64
		for _, sp := range spans {
			if sp.Start < first {
				first = sp.Start
			}
			if sp.End > last {
				last = sp.End
			}
			kinds[sp.Kind] += sp.Duration()
		}
		t := s.tr
		t.mu.Lock()
		id := t.nextIDLocked()
		t.mu.Unlock()
		rec := TraceSpan{
			ID:          id.String(),
			Parent:      s.id.String(),
			Name:        "sim." + track.Name(),
			StartUnixNs: base.Add(time.Duration(first * secPerCycle * float64(time.Second))).UnixNano(),
			DurNs:       time.Duration((last - first) * secPerCycle * float64(time.Second)).Nanoseconds(),
			Attrs:       map[string]string{"spans": fmt.Sprint(len(spans))},
		}
		for k, cyc := range kinds {
			if cyc > 0 {
				rec.Attrs["cycles."+Kind(k).String()] = fmt.Sprintf("%.0f", cyc)
			}
		}
		t.add(rec)
	}
}

// Context plumbing: the serving stack passes the trace and the current
// span down through context.Context so layers that know nothing about
// each other still stitch one tree.

type traceCtxKey struct{}
type spanCtxKey struct{}

// ContextWithTrace returns a context carrying the request trace.
func ContextWithTrace(ctx context.Context, t *ReqTrace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the request trace carried by ctx, or nil —
// and nil flows harmlessly through every span operation.
func TraceFromContext(ctx context.Context) *ReqTrace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*ReqTrace)
	return t
}

// ContextWithSpan returns a context carrying the current span, making
// it the parent of spans opened further down the stack.
func ContextWithSpan(ctx context.Context, s *ReqSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *ReqSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*ReqSpan)
	return s
}

// TraceSpan is one finished span in exported (ledger/JSON) form.
// Times are integer nanoseconds so ledger diffs treat them as ordinary
// numeric leaves (advisory, like every wall-clock quantity).
type TraceSpan struct {
	ID          string            `json:"id"`
	Parent      string            `json:"parent,omitempty"`
	Name        string            `json:"name"`
	StartUnixNs int64             `json:"start_unix_ns"`
	DurNs       int64             `json:"dur_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// TraceDoc is a whole request trace in exported form: what the serving
// layer embeds in ledger entries and `sarlog trace` renders.
type TraceDoc struct {
	TraceID string      `json:"trace_id"`
	Dropped uint64      `json:"dropped,omitempty"`
	Spans   []TraceSpan `json:"spans"`
}

// sortedAttrs returns "k=v" strings in key order for deterministic
// rendering.
func (s TraceSpan) sortedAttrs() []string {
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k + "=" + s.Attrs[k]
	}
	return out
}

// WriteTree renders the span tree as indented text with per-stage
// durations and attributes — the `sarlog trace` view. Spans whose
// parent is outside the doc (the roots, or children of a remote
// caller's span) print at top level; children sort by start time.
func (d TraceDoc) WriteTree(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s · %d spans", d.TraceID, len(d.Spans))
	if d.Dropped > 0 {
		fmt.Fprintf(bw, " · %d dropped", d.Dropped)
	}
	fmt.Fprintln(bw)
	known := make(map[string]bool, len(d.Spans))
	for _, s := range d.Spans {
		known[s.ID] = true
	}
	children := map[string][]TraceSpan{}
	var roots []TraceSpan
	for _, s := range d.Spans {
		if s.Parent != "" && known[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	// Doc() already ordered spans by start; the grouping above kept
	// that order within each sibling list.
	var render func(s TraceSpan, prefix, branch, childPrefix string)
	render = func(s TraceSpan, prefix, branch, childPrefix string) {
		label := prefix + branch + s.Name
		line := fmt.Sprintf("%-36s %10.2fms", label, float64(s.DurNs)/1e6)
		if attrs := s.sortedAttrs(); len(attrs) > 0 {
			line += "  " + strings.Join(attrs, " ")
		}
		fmt.Fprintln(bw, line)
		kids := children[s.ID]
		for i, c := range kids {
			if i == len(kids)-1 {
				render(c, prefix+childPrefix, "└─ ", "   ")
			} else {
				render(c, prefix+childPrefix, "├─ ", "│  ")
			}
		}
	}
	for _, r := range roots {
		render(r, "", "", "")
	}
	return bw.Flush()
}

// WriteTraceEvent writes the request trace in the Chrome trace_event
// JSON format understood by Perfetto, mirroring Tracer.WriteTraceEvent
// for the wall-clock domain: one process named after the trace ID, one
// complete ("ph":"X") event per span with microsecond timestamps
// relative to the earliest span, and attributes in args.
func (d TraceDoc) WriteTraceEvent(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	emit(fmt.Sprintf(`{"ph":"M","pid":1,"name":"process_name","args":{"name":%q}}`,
		"trace "+d.TraceID))
	var t0 int64
	for i, s := range d.Spans {
		if i == 0 || s.StartUnixNs < t0 {
			t0 = s.StartUnixNs
		}
	}
	for _, s := range d.Spans {
		args := fmt.Sprintf(`{"span":%q,"parent":%q`, s.ID, s.Parent)
		for _, kv := range s.sortedAttrs() {
			k, v, _ := strings.Cut(kv, "=")
			args += fmt.Sprintf(`,%q:%q`, k, v)
		}
		args += "}"
		emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":1,"cat":"request","name":%q,"ts":%.3f,"dur":%.3f,"args":%s}`,
			s.Name, float64(s.StartUnixNs-t0)/1e3, float64(s.DurNs)/1e3, args))
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
