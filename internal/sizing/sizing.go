// Package sizing answers the question the paper's introduction poses:
// what on-board compute does real-time image creation need, and does a
// given manycore configuration meet it within its power budget? "The
// large data sets ... make it hard to meet the high performance that is
// required for real-time image creation, i.e. when the images are created
// during the flight. Another related challenge is to cope with the
// increased computational demands within a limited power budget."
//
// The calculator combines the radar's collection rate (how fast data
// arrives) with a measured or modeled processing throughput (how fast one
// device forms images) to yield the real-time margin and the number of
// devices a deployment needs.
package sizing

import (
	"fmt"
	"math"

	"sarmany/internal/sar"
)

// Requirement captures the real-time constraint of a collection geometry:
// the platform keeps flying, so every aperture of data must be processed
// within the time it took to collect.
type Requirement struct {
	// PixelsPerImage is the output size of one processed aperture.
	PixelsPerImage float64
	// CollectionSeconds is the time the platform needs to collect one
	// aperture of data (integration time).
	CollectionSeconds float64
	// RawBytes is the raw data volume of one aperture.
	RawBytes float64
}

// RequirementFor derives the real-time requirement from radar parameters
// and platform speed (m/s): the aperture of NumPulses pulses spaced
// PulseSpacing apart takes ApertureLength/speed seconds to collect.
func RequirementFor(p sar.Params, speedMS float64) (Requirement, error) {
	if err := p.Validate(); err != nil {
		return Requirement{}, err
	}
	if speedMS <= 0 {
		return Requirement{}, fmt.Errorf("sizing: platform speed %v <= 0", speedMS)
	}
	return Requirement{
		PixelsPerImage:    float64(p.NumPulses) * float64(p.NumBins),
		CollectionSeconds: p.ApertureLength() / speedMS,
		RawBytes:          float64(p.NumPulses) * float64(p.NumBins) * 8,
	}, nil
}

// RequiredPixelRate returns the pixel throughput (pixels/s) a processor
// must sustain to keep up with the collection.
func (r Requirement) RequiredPixelRate() float64 {
	if r.CollectionSeconds <= 0 {
		return math.Inf(1)
	}
	return r.PixelsPerImage / r.CollectionSeconds
}

// Capability describes one processing device: the pixel throughput it
// sustains on the image-formation workload and its power draw. Derive the
// numbers from a report.Table1 row or an emu run.
type Capability struct {
	Name       string
	PixelsPerS float64
	Watts      float64
}

// Plan is the sizing result for one device type against a requirement.
type Plan struct {
	Device Capability
	// Margin is device throughput / required throughput; >= 1 means one
	// device sustains real time.
	Margin float64
	// DevicesNeeded is the number of devices to reach real time (load
	// split across devices, e.g. by image slice).
	DevicesNeeded int
	// SystemWatts is the power of that many devices.
	SystemWatts float64
}

// Size computes the deployment plan for a device against a requirement.
func Size(r Requirement, c Capability) (Plan, error) {
	if c.PixelsPerS <= 0 {
		return Plan{}, fmt.Errorf("sizing: device %q has no throughput", c.Name)
	}
	need := r.RequiredPixelRate()
	margin := c.PixelsPerS / need
	n := int(math.Ceil(need / c.PixelsPerS))
	if n < 1 {
		n = 1
	}
	return Plan{
		Device:        c,
		Margin:        margin,
		DevicesNeeded: n,
		SystemWatts:   float64(n) * c.Watts,
	}, nil
}

// Compare sizes several devices against the same requirement and returns
// the plans in input order.
func Compare(r Requirement, devices []Capability) ([]Plan, error) {
	out := make([]Plan, 0, len(devices))
	for _, d := range devices {
		p, err := Size(r, d)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
