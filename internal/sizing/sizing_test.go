package sizing

import (
	"math"
	"testing"

	"sarmany/internal/sar"
)

func TestRequirementFor(t *testing.T) {
	p := sar.DefaultParams() // 1024 pulses x 1001 bins, 1024 m aperture
	r, err := RequirementFor(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.PixelsPerImage != 1024*1001 {
		t.Errorf("pixels %v", r.PixelsPerImage)
	}
	if math.Abs(r.CollectionSeconds-10.24) > 1e-9 {
		t.Errorf("collection time %v", r.CollectionSeconds)
	}
	if r.RawBytes != 1024*1001*8 {
		t.Errorf("raw bytes %v", r.RawBytes)
	}
	want := 1024 * 1001 / 10.24
	if math.Abs(r.RequiredPixelRate()-want) > 1e-6 {
		t.Errorf("required rate %v, want %v", r.RequiredPixelRate(), want)
	}
}

func TestRequirementForErrors(t *testing.T) {
	p := sar.DefaultParams()
	if _, err := RequirementFor(p, 0); err == nil {
		t.Error("zero speed accepted")
	}
	p.DR = -1
	if _, err := RequirementFor(p, 100); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSizeMargins(t *testing.T) {
	r := Requirement{PixelsPerImage: 1e6, CollectionSeconds: 10} // 100k px/s needed
	// A device at 400k px/s has 4x margin, one device suffices.
	pl, err := Size(r, Capability{Name: "fast", PixelsPerS: 4e5, Watts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl.Margin-4) > 1e-9 || pl.DevicesNeeded != 1 || pl.SystemWatts != 2 {
		t.Errorf("plan %+v", pl)
	}
	// A device at 30k px/s needs 4 devices.
	pl, err = Size(r, Capability{Name: "slow", PixelsPerS: 3e4, Watts: 17.5})
	if err != nil {
		t.Fatal(err)
	}
	if pl.DevicesNeeded != 4 || pl.SystemWatts != 70 {
		t.Errorf("plan %+v", pl)
	}
	if pl.Margin >= 1 {
		t.Errorf("margin %v should be < 1", pl.Margin)
	}
}

func TestSizeRejectsZeroThroughput(t *testing.T) {
	if _, err := Size(Requirement{PixelsPerImage: 1, CollectionSeconds: 1}, Capability{}); err == nil {
		t.Error("zero throughput accepted")
	}
}

func TestCompare(t *testing.T) {
	r := Requirement{PixelsPerImage: 1e6, CollectionSeconds: 1}
	plans, err := Compare(r, []Capability{
		{Name: "a", PixelsPerS: 5e5, Watts: 2},
		{Name: "b", PixelsPerS: 2e6, Watts: 17.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 || plans[0].DevicesNeeded != 2 || plans[1].DevicesNeeded != 1 {
		t.Errorf("plans %+v", plans)
	}
	if _, err := Compare(r, []Capability{{}}); err == nil {
		t.Error("bad device accepted")
	}
}
