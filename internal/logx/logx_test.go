package logx

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"debug":   slog.LevelDebug,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"ERROR":   slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) accepted")
	}
}

// TestTextFormat pins the classic CLI line shape the smoke scripts grep
// for: "tool: msg key=val", info level unadorned, warn/error prefixed.
func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	lg, err := Config{}.New(&buf, "sarserve")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("drained cleanly")
	lg.Info("job finished", "trace_id", "00aa", "wall_seconds", 1.5)
	lg.Warn("slow request", "note", "two words")
	lg.Error("drain failed", "err", "deadline exceeded")
	lg.Debug("invisible at info level")

	want := "sarserve: drained cleanly\n" +
		"sarserve: job finished trace_id=00aa wall_seconds=1.5\n" +
		"sarserve: warn: slow request note=\"two words\"\n" +
		"sarserve: error: drain failed err=\"deadline exceeded\"\n"
	if buf.String() != want {
		t.Errorf("text output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestTextWithAttrsAndGroups(t *testing.T) {
	var buf bytes.Buffer
	lg, err := Config{Level: "debug"}.New(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	lg.With("tenant", "acme").WithGroup("job").Debug("queued", "id", "deadbeef")
	lg.Debug("grouped", slog.Group("req", "method", "POST"))
	want := "t: debug: queued tenant=acme job.id=deadbeef\n" +
		"t: debug: grouped req.method=POST\n"
	if buf.String() != want {
		t.Errorf("output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	lg, err := Config{Format: "json", Level: "warn"}.New(&buf, "sarload")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("suppressed below warn")
	lg.Warn("unexpected status", "status", 503, "trace_id", "f00d")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["tool"] != "sarload" || rec["msg"] != "unexpected status" ||
		rec["status"] != float64(503) || rec["trace_id"] != "f00d" {
		t.Errorf("record = %v", rec)
	}
}

func TestRegisterFlags(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if c.Level != "debug" || c.Format != "json" {
		t.Errorf("config = %+v", c)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if _, err := (Config{Level: "loud"}).New(&buf, "t"); err == nil ||
		!strings.Contains(err.Error(), "log level") {
		t.Errorf("bad level error = %v", err)
	}
	if _, err := (Config{Format: "xml"}).New(&buf, "t"); err == nil ||
		!strings.Contains(err.Error(), "log format") {
		t.Errorf("bad format error = %v", err)
	}
}
