// Package logx is the shared structured-logging setup for the sarmany
// command-line tools. Every CLI registers the same two flags
// (-log-level, -log-format) and routes its diagnostics through one
// *slog.Logger, so operators get a uniform choice between the classic
// "tool: message key=val" stderr lines and machine-readable JSON
// records — with serve-path records stamped with trace_id/tenant/job_id
// for correlation against the run ledger and `sarlog trace`.
package logx

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Config holds the logging options every CLI shares. The zero value is
// usable: info level, text format.
type Config struct {
	// Level is the minimum record level: "debug", "info", "warn" or
	// "error" (empty = info).
	Level string
	// Format selects the handler: "text" (default; "tool: msg key=val"
	// stderr lines) or "json" (one slog JSON record per line).
	Format string
}

// RegisterFlags installs the shared -log-level and -log-format flags on
// fs, bound to c.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Level, "log-level", "info", "minimum log level (debug, info, warn, error)")
	fs.StringVar(&c.Format, "log-format", "text", "log record format (text, json)")
}

// ParseLevel maps a -log-level flag value to its slog level. The empty
// string parses as info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// New builds the tool's logger writing to w according to the config.
// Text records render as "tool: msg key=val ..." (warn and error
// records carry a "level:" prefix after the tool name); JSON records
// are standard slog JSON with a "tool" attribute.
func (c Config) New(w io.Writer, tool string) (*slog.Logger, error) {
	level, err := ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(c.Format) {
	case "", "text":
		return slog.New(&textHandler{mu: &sync.Mutex{}, w: w, tool: tool, level: level}), nil
	case "json":
		h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
		return slog.New(h).With("tool", tool), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", c.Format)
}

// MustNew is New writing to stderr, with config errors reported as
// usage errors: the message is printed and the process exits 2.
func (c Config) MustNew(tool string) *slog.Logger {
	lg, err := c.New(os.Stderr, tool)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	return lg
}

// textHandler renders slog records in the repo's classic CLI stderr
// shape — "tool: msg key=val ..." — so existing operator habits (and
// the smoke scripts that grep for lines like "drained cleanly") keep
// working when structured logging is left in its default text mode.
type textHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	tool  string
	level slog.Level
	attrs string // preformatted " key=val" suffix from WithAttrs
	group string // dotted key prefix from WithGroup
}

// Enabled implements slog.Handler.
func (h *textHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.level }

// Handle implements slog.Handler.
func (h *textHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(h.tool)
	b.WriteString(": ")
	if r.Level != slog.LevelInfo {
		b.WriteString(strings.ToLower(r.Level.String()))
		b.WriteString(": ")
	}
	b.WriteString(r.Message)
	b.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		h.appendAttr(&b, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs implements slog.Handler.
func (h *textHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		nh.appendAttr(&b, a)
	}
	nh.attrs = b.String()
	return &nh
}

// WithGroup implements slog.Handler.
func (h *textHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.group = h.group + name + "."
	return &nh
}

// appendAttr writes one " key=val" pair, flattening groups into dotted
// keys and quoting values that would be ambiguous unquoted.
func (h *textHandler) appendAttr(b *strings.Builder, a slog.Attr) {
	a.Value = a.Value.Resolve()
	if a.Value.Kind() == slog.KindGroup {
		sub := *h
		sub.group = h.group + a.Key + "."
		for _, ga := range a.Value.Group() {
			sub.appendAttr(b, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	b.WriteByte(' ')
	b.WriteString(h.group)
	b.WriteString(a.Key)
	b.WriteByte('=')
	v := a.Value.String()
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		v = strconv.Quote(v)
	}
	b.WriteString(v)
}
