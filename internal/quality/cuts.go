package quality

import (
	"fmt"
	"math"

	"sarmany/internal/mat"
)

// This file provides point-target response analysis on image cuts: the
// impulse response width (IRW) and peak-to-sidelobe ratio (PSLR) that SAR
// literature uses to quantify focus quality — sharper tools than global
// sharpness for comparing GBP against FFBP's interpolation kernels.

// RangeCut returns the magnitudes along row r (a constant-beam cut through
// the range dimension).
func RangeCut(f *mat.F, r int) []float32 {
	out := make([]float32, f.Cols)
	copy(out, f.Row(r))
	return out
}

// AzimuthCut returns the magnitudes along column c (a constant-range cut
// through the beam dimension).
func AzimuthCut(f *mat.F, c int) []float32 {
	out := make([]float32, f.Rows)
	for r := 0; r < f.Rows; r++ {
		out[r] = f.At(r, c)
	}
	return out
}

// peakIndex returns the index of the largest value.
func peakIndex(cut []float32) int {
	pi := 0
	for i, v := range cut {
		if v > cut[pi] {
			pi = i
		}
	}
	return pi
}

// IRW returns the -3 dB impulse response width of the mainlobe around the
// cut's peak, in samples, using linear interpolation between the samples
// bracketing the half-power level. It returns an error when a half-power
// crossing does not exist on either side (peak at the edge or a flat cut).
func IRW(cut []float32) (float64, error) {
	if len(cut) < 3 {
		return 0, fmt.Errorf("quality: cut of %d samples too short", len(cut))
	}
	pi := peakIndex(cut)
	pk := float64(cut[pi])
	if pk <= 0 {
		return 0, fmt.Errorf("quality: no peak in cut")
	}
	half := pk / math.Sqrt2 // -3 dB in amplitude

	right, err := crossAt(cut, pi, +1, half)
	if err != nil {
		return 0, err
	}
	left, err := crossAt(cut, pi, -1, half)
	if err != nil {
		return 0, err
	}
	return right - left, nil
}

// crossAt finds the fractional index where the cut falls to level when
// walking from the peak in direction dir.
func crossAt(cut []float32, pi, dir int, level float64) (float64, error) {
	prev := float64(cut[pi])
	for i := pi + dir; i >= 0 && i < len(cut); i += dir {
		v := float64(cut[i])
		if v <= level {
			t := (prev - level) / (prev - v)
			return float64(i-dir) + float64(dir)*t, nil
		}
		prev = v
	}
	return 0, fmt.Errorf("quality: no -3 dB crossing in direction %d", dir)
}

// PSLR returns the peak-to-sidelobe ratio of the cut in dB (a negative
// number; e.g. -13 dB for an unweighted sinc): the ratio of the highest
// sidelobe to the mainlobe peak. The mainlobe is delimited by the first
// local minima on each side of the peak. It returns an error if no
// sidelobe exists.
func PSLR(cut []float32) (float64, error) {
	if len(cut) < 5 {
		return 0, fmt.Errorf("quality: cut of %d samples too short", len(cut))
	}
	pi := peakIndex(cut)
	pk := float64(cut[pi])
	if pk <= 0 {
		return 0, fmt.Errorf("quality: no peak in cut")
	}
	// Walk to the first local minimum on each side.
	lo := pi
	for lo > 0 && cut[lo-1] < cut[lo] {
		lo--
	}
	hi := pi
	for hi < len(cut)-1 && cut[hi+1] < cut[hi] {
		hi++
	}
	var side float64
	for i, v := range cut {
		if i >= lo && i <= hi {
			continue
		}
		if fv := float64(v); fv > side {
			side = fv
		}
	}
	if side <= 0 {
		return 0, fmt.Errorf("quality: no sidelobes outside mainlobe [%d,%d]", lo, hi)
	}
	return 20 * math.Log10(side/pk), nil
}

// PointResponse measures the point-target response around the brightest
// pixel of a magnitude image: the range and azimuth -3 dB widths (in
// pixels) and PSLRs (in dB). A PSLR is NaN when the cut has no sidelobes
// at all (common for heavily oversampled, smoothly decaying azimuth
// responses).
type PointResponse struct {
	PeakRow, PeakCol     int
	Peak                 float32
	RangeIRW, AzimuthIRW float64
	RangePSLR            float64
	AzimuthPSLR          float64
}

// MeasurePointResponse analyses the brightest point of f. It returns an
// error when an impulse-response width cannot be measured (peak at the
// image edge or a flat image); missing sidelobes only make the
// corresponding PSLR NaN.
func MeasurePointResponse(f *mat.F) (PointResponse, error) {
	pr, pc, pv := Peak(f)
	res := PointResponse{PeakRow: pr, PeakCol: pc, Peak: pv}
	var err error
	rCut := RangeCut(f, pr)
	aCut := AzimuthCut(f, pc)
	if res.RangeIRW, err = IRW(rCut); err != nil {
		return res, fmt.Errorf("range IRW: %w", err)
	}
	if res.AzimuthIRW, err = IRW(aCut); err != nil {
		return res, fmt.Errorf("azimuth IRW: %w", err)
	}
	if res.RangePSLR, err = PSLR(rCut); err != nil {
		res.RangePSLR = math.NaN()
	}
	if res.AzimuthPSLR, err = PSLR(aCut); err != nil {
		res.AzimuthPSLR = math.NaN()
	}
	return res, nil
}
