// Package quality provides the image-quality metrics used to compare GBP
// and FFBP outputs (paper Fig. 7 discussion): peak localization, peak-to-
// background ratio, image sharpness, and similarity between two processed
// images. The paper argues qualitatively that the FFBP images are degraded
// by the simplified interpolation relative to GBP and that the Intel and
// Epiphany FFBP images are of similar quality; these metrics make those
// statements testable.
package quality

import (
	"fmt"
	"math"

	"sarmany/internal/cf"
	"sarmany/internal/mat"
)

// Mag returns the magnitude image |z| of a complex image.
func Mag(img *mat.C) *mat.F {
	out := mat.NewF(img.Rows, img.Cols)
	for r := 0; r < img.Rows; r++ {
		src := img.Row(r)
		dst := out.Row(r)
		for i, v := range src {
			dst[i] = cf.Abs(v)
		}
	}
	return out
}

// Peak returns the position and value of the largest element of f.
func Peak(f *mat.F) (r, c int, v float32) {
	v = float32(math.Inf(-1))
	for rr := 0; rr < f.Rows; rr++ {
		row := f.Row(rr)
		for cc, x := range row {
			if x > v {
				r, c, v = rr, cc, x
			}
		}
	}
	return r, c, v
}

// PeakWithin returns the position and value of the largest element of f
// inside the window of half-width rad centred at (r0, c0), clipped to the
// image.
func PeakWithin(f *mat.F, r0, c0, rad int) (r, c int, v float32) {
	v = float32(math.Inf(-1))
	for rr := max(0, r0-rad); rr <= min(f.Rows-1, r0+rad); rr++ {
		for cc := max(0, c0-rad); cc <= min(f.Cols-1, c0+rad); cc++ {
			if x := f.At(rr, cc); x > v {
				r, c, v = rr, cc, x
			}
		}
	}
	return r, c, v
}

// PeakToBackground returns the ratio (in dB) between the peak value inside
// the window of half-width rad around (r0, c0) and the RMS level of the
// image outside all the given exclusion windows. It is a PSLR-style focus
// measure: well-focused targets give large values.
func PeakToBackground(f *mat.F, r0, c0, rad int, exclude [][2]int) float64 {
	_, _, pk := PeakWithin(f, r0, c0, rad)
	var sum float64
	var n int
	for rr := 0; rr < f.Rows; rr++ {
		row := f.Row(rr)
	cols:
		for cc, x := range row {
			for _, e := range exclude {
				if abs(rr-e[0]) <= rad && abs(cc-e[1]) <= rad {
					continue cols
				}
			}
			sum += float64(x) * float64(x)
			n++
		}
	}
	if n == 0 || sum == 0 {
		return math.Inf(1)
	}
	rms := math.Sqrt(sum / float64(n))
	return 20 * math.Log10(float64(pk)/rms)
}

// Sharpness returns the normalized fourth-power sharpness
// N * sum(m^4) / (sum(m^2))^2, a standard autofocus quality measure: a
// single bright pixel in a dark image gives N, a uniform image gives 1.
func Sharpness(f *mat.F) float64 {
	var s2, s4 float64
	for r := 0; r < f.Rows; r++ {
		for _, x := range f.Row(r) {
			m2 := float64(x) * float64(x)
			s2 += m2
			s4 += m2 * m2
		}
	}
	if s2 == 0 {
		return 0
	}
	n := float64(f.Rows * f.Cols)
	return n * s4 / (s2 * s2)
}

// Entropy returns the Shannon entropy of the image's normalized power
// distribution: sum of -p*ln(p) with p = |I|^2 / total power. Lower
// entropy means energy concentrated in fewer pixels — the
// entropy-minimization criterion used by many autofocus methods, and a
// useful cross-check of the paper's correlation criterion (a good
// compensation maximizes the correlation criterion and minimizes
// entropy).
func Entropy(f *mat.F) float64 {
	var total float64
	for r := 0; r < f.Rows; r++ {
		for _, v := range f.Row(r) {
			total += float64(v) * float64(v)
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for r := 0; r < f.Rows; r++ {
		for _, v := range f.Row(r) {
			p := float64(v) * float64(v) / total
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
	}
	return h
}

// NormCorr returns the normalized correlation coefficient between two
// magnitude images of identical shape, in [0, 1] for non-negative inputs
// (1 means proportional images). It panics on a shape mismatch.
func NormCorr(a, b *mat.F) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("quality: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var sab, saa, sbb float64
	for r := 0; r < a.Rows; r++ {
		ra, rb := a.Row(r), b.Row(r)
		for i := range ra {
			x, y := float64(ra[i]), float64(rb[i])
			sab += x * y
			saa += x * x
			sbb += y * y
		}
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// RMSDiff returns the root-mean-square difference between two images of
// identical shape after peak-normalizing each (so overall gain differences
// do not count). It panics on a shape mismatch.
func RMSDiff(a, b *mat.F) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("quality: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	_, _, pa := Peak(a)
	_, _, pb := Peak(b)
	if pa == 0 || pb == 0 {
		return math.Inf(1)
	}
	var sum float64
	for r := 0; r < a.Rows; r++ {
		ra, rb := a.Row(r), b.Row(r)
		for i := range ra {
			d := float64(ra[i])/float64(pa) - float64(rb[i])/float64(pb)
			sum += d * d
		}
	}
	return math.Sqrt(sum / float64(a.Rows*a.Cols))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
