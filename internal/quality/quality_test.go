package quality

import (
	"math"
	"testing"

	"sarmany/internal/mat"
)

func TestMag(t *testing.T) {
	img := mat.NewC(2, 2)
	img.Set(0, 0, complex(3, 4))
	img.Set(1, 1, complex(0, -2))
	m := Mag(img)
	if m.At(0, 0) != 5 || m.At(1, 1) != 2 || m.At(0, 1) != 0 {
		t.Errorf("Mag wrong: %v %v %v", m.At(0, 0), m.At(1, 1), m.At(0, 1))
	}
}

func TestPeak(t *testing.T) {
	f := mat.NewF(4, 4)
	f.Set(2, 3, 7)
	f.Set(1, 1, 5)
	r, c, v := Peak(f)
	if r != 2 || c != 3 || v != 7 {
		t.Errorf("Peak = (%d,%d,%v)", r, c, v)
	}
}

func TestPeakWithin(t *testing.T) {
	f := mat.NewF(10, 10)
	f.Set(1, 1, 100) // global max, outside the window
	f.Set(6, 6, 10)
	r, c, v := PeakWithin(f, 5, 5, 2)
	if r != 6 || c != 6 || v != 10 {
		t.Errorf("PeakWithin = (%d,%d,%v)", r, c, v)
	}
	// Window clipping at the border must not panic.
	r, c, v = PeakWithin(f, 0, 0, 3)
	if r != 1 || c != 1 || v != 100 {
		t.Errorf("clipped PeakWithin = (%d,%d,%v)", r, c, v)
	}
}

func TestPeakToBackground(t *testing.T) {
	f := mat.NewF(20, 20)
	for r := 0; r < 20; r++ {
		for c := 0; c < 20; c++ {
			f.Set(r, c, 0.01)
		}
	}
	f.Set(10, 10, 1)
	db := PeakToBackground(f, 10, 10, 2, [][2]int{{10, 10}})
	want := 20 * math.Log10(1/0.01)
	if math.Abs(db-want) > 0.5 {
		t.Errorf("PeakToBackground = %v, want ~%v", db, want)
	}
	// A brighter background lowers the ratio.
	for r := 0; r < 20; r++ {
		for c := 0; c < 20; c++ {
			if r != 10 || c != 10 {
				f.Set(r, c, 0.1)
			}
		}
	}
	db2 := PeakToBackground(f, 10, 10, 2, [][2]int{{10, 10}})
	if db2 >= db {
		t.Errorf("brighter background should lower ratio: %v vs %v", db2, db)
	}
}

func TestSharpnessExtremes(t *testing.T) {
	// Uniform image: sharpness 1.
	u := mat.NewF(8, 8)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			u.Set(r, c, 0.5)
		}
	}
	if s := Sharpness(u); math.Abs(s-1) > 1e-9 {
		t.Errorf("uniform sharpness = %v", s)
	}
	// Single bright pixel: sharpness N.
	d := mat.NewF(8, 8)
	d.Set(3, 3, 2)
	if s := Sharpness(d); math.Abs(s-64) > 1e-9 {
		t.Errorf("delta sharpness = %v, want 64", s)
	}
	// Empty image: 0.
	if s := Sharpness(mat.NewF(4, 4)); s != 0 {
		t.Errorf("zero-image sharpness = %v", s)
	}
}

func TestEntropyExtremes(t *testing.T) {
	// Single bright pixel: entropy 0 (all power in one cell).
	d := mat.NewF(8, 8)
	d.Set(3, 3, 5)
	if h := Entropy(d); math.Abs(h) > 1e-12 {
		t.Errorf("delta entropy %v", h)
	}
	// Uniform image: entropy ln(N).
	u := mat.NewF(8, 8)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			u.Set(r, c, 1)
		}
	}
	if h := Entropy(u); math.Abs(h-math.Log(64)) > 1e-9 {
		t.Errorf("uniform entropy %v, want %v", h, math.Log(64))
	}
	if h := Entropy(mat.NewF(4, 4)); h != 0 {
		t.Errorf("zero-image entropy %v", h)
	}
	// A more concentrated image has lower entropy.
	half := mat.NewF(8, 8)
	half.Set(0, 0, 1)
	half.Set(0, 1, 1)
	if !(Entropy(half) < Entropy(u)) {
		t.Error("concentration did not lower entropy")
	}
}

func TestNormCorr(t *testing.T) {
	a := mat.NewF(3, 3)
	b := mat.NewF(3, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			a.Set(r, c, float32(r*3+c+1))
			b.Set(r, c, 2*float32(r*3+c+1)) // proportional
		}
	}
	if v := NormCorr(a, b); math.Abs(v-1) > 1e-9 {
		t.Errorf("proportional NormCorr = %v", v)
	}
	// Orthogonal supports give low correlation.
	x := mat.NewF(2, 2)
	y := mat.NewF(2, 2)
	x.Set(0, 0, 1)
	y.Set(1, 1, 1)
	if v := NormCorr(x, y); v != 0 {
		t.Errorf("disjoint NormCorr = %v", v)
	}
	if v := NormCorr(mat.NewF(2, 2), mat.NewF(2, 2)); v != 0 {
		t.Errorf("zero NormCorr = %v", v)
	}
}

func TestNormCorrShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NormCorr(mat.NewF(2, 2), mat.NewF(2, 3))
}

func TestRMSDiff(t *testing.T) {
	a := mat.NewF(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 0.5)
	// Scaled copy has zero RMS difference after normalization.
	b := mat.NewF(2, 2)
	b.Set(0, 0, 4)
	b.Set(1, 1, 2)
	if d := RMSDiff(a, b); d > 1e-9 {
		t.Errorf("scaled copy RMSDiff = %v", d)
	}
	c := mat.NewF(2, 2)
	c.Set(0, 1, 1)
	if d := RMSDiff(a, c); d <= 0 {
		t.Errorf("different images RMSDiff = %v", d)
	}
	if d := RMSDiff(a, mat.NewF(2, 2)); !math.IsInf(d, 1) {
		t.Errorf("zero image RMSDiff = %v", d)
	}
}
