package quality

import (
	"math"
	"testing"

	"sarmany/internal/mat"
)

// sincCut samples |sinc(x/w)| at n points with the peak at centre.
func sincCut(n int, w float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		x := float64(i-n/2) / w
		v := 1.0
		if x != 0 {
			v = math.Abs(math.Sin(math.Pi*x) / (math.Pi * x))
		}
		out[i] = float32(v)
	}
	return out
}

func TestCuts(t *testing.T) {
	f := mat.NewF(3, 4)
	f.Set(1, 2, 5)
	f.Set(2, 2, 7)
	r := RangeCut(f, 1)
	if len(r) != 4 || r[2] != 5 {
		t.Errorf("RangeCut = %v", r)
	}
	a := AzimuthCut(f, 2)
	if len(a) != 3 || a[1] != 5 || a[2] != 7 {
		t.Errorf("AzimuthCut = %v", a)
	}
	// Cuts are copies, not views.
	r[0] = 99
	if f.At(1, 0) == 99 {
		t.Error("RangeCut aliases the image")
	}
}

func TestIRWOfSinc(t *testing.T) {
	// The -3 dB width of |sinc(x/w)| is about 0.886*w samples.
	for _, w := range []float64{4, 8, 16} {
		cut := sincCut(257, w)
		got, err := IRW(cut)
		if err != nil {
			t.Fatalf("w=%v: %v", w, err)
		}
		want := 0.886 * w
		if math.Abs(got-want) > 0.1*want {
			t.Errorf("w=%v: IRW %v, want ~%v", w, got, want)
		}
	}
}

func TestIRWOfTriangle(t *testing.T) {
	// Triangle peak: value 1 at centre falling by 0.25 per sample. The
	// amplitude half-power level 1/sqrt2 is crossed at +/-(1-0.7071)/0.25.
	cut := []float32{0, 0.25, 0.5, 0.75, 1, 0.75, 0.5, 0.25, 0}
	got, err := IRW(cut)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 - 1/math.Sqrt2) / 0.25
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("IRW %v, want %v", got, want)
	}
}

func TestIRWErrors(t *testing.T) {
	if _, err := IRW([]float32{1, 2}); err == nil {
		t.Error("short cut accepted")
	}
	if _, err := IRW(make([]float32, 10)); err == nil {
		t.Error("flat zero cut accepted")
	}
	// Peak at the edge: no left crossing.
	if _, err := IRW([]float32{1, 0.5, 0.1, 0, 0}); err == nil {
		t.Error("edge peak accepted")
	}
}

func TestPSLROfSinc(t *testing.T) {
	// The first sidelobe of an unweighted sinc is -13.26 dB.
	cut := sincCut(257, 8)
	got, err := PSLR(cut)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-13.26)) > 0.3 {
		t.Errorf("PSLR %v dB, want ~-13.26", got)
	}
}

func TestPSLRRespondsToSidelobeLevel(t *testing.T) {
	mk := func(side float32) []float32 {
		return []float32{0, side, 0, 0.5, 1, 0.5, 0, side, 0}
	}
	lo, err := PSLR(mk(0.1))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := PSLR(mk(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if !(hi > lo) {
		t.Errorf("higher sidelobe should raise PSLR: %v vs %v", hi, lo)
	}
	if math.Abs(lo-20*math.Log10(0.1)) > 1e-6 {
		t.Errorf("PSLR %v, want %v", lo, 20*math.Log10(0.1))
	}
}

func TestPSLRErrors(t *testing.T) {
	if _, err := PSLR([]float32{1, 0}); err == nil {
		t.Error("short cut accepted")
	}
	if _, err := PSLR(make([]float32, 10)); err == nil {
		t.Error("flat cut accepted")
	}
	// Monotone decay: no sidelobe at all.
	if _, err := PSLR([]float32{1, 0.8, 0.6, 0.4, 0.2, 0.1, 0}); err == nil {
		t.Error("sidelobe-free cut accepted")
	}
}

func TestMeasurePointResponse(t *testing.T) {
	// Separable |sinc| point response centred in the image.
	n := 65
	f := mat.NewF(n, n)
	rc := sincCut(n, 6)
	ac := sincCut(n, 10)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			f.Set(r, c, ac[r]*rc[c])
		}
	}
	res, err := MeasurePointResponse(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakRow != n/2 || res.PeakCol != n/2 {
		t.Errorf("peak at (%d,%d)", res.PeakRow, res.PeakCol)
	}
	if math.Abs(res.RangeIRW-0.886*6) > 0.6 {
		t.Errorf("range IRW %v", res.RangeIRW)
	}
	if math.Abs(res.AzimuthIRW-0.886*10) > 1.0 {
		t.Errorf("azimuth IRW %v", res.AzimuthIRW)
	}
	if res.RangePSLR > -12 || res.RangePSLR < -15 {
		t.Errorf("range PSLR %v", res.RangePSLR)
	}
	if res.AzimuthPSLR > -12 || res.AzimuthPSLR < -15 {
		t.Errorf("azimuth PSLR %v", res.AzimuthPSLR)
	}
}

func TestMeasurePointResponseEdgePeak(t *testing.T) {
	f := mat.NewF(8, 8)
	f.Set(0, 0, 1)
	if _, err := MeasurePointResponse(f); err == nil {
		t.Error("edge peak accepted")
	}
}

func TestMeasurePointResponseNoSidelobes(t *testing.T) {
	// A smooth monotone response has measurable IRWs but no sidelobes:
	// PSLRs become NaN, not an error.
	n := 33
	f := mat.NewF(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			dr := float64(r - n/2)
			dc := float64(c - n/2)
			f.Set(r, c, float32(math.Exp(-(dr*dr+dc*dc)/20)))
		}
	}
	res, err := MeasurePointResponse(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.RangeIRW <= 0 || res.AzimuthIRW <= 0 {
		t.Errorf("IRWs %v %v", res.RangeIRW, res.AzimuthIRW)
	}
	if !math.IsNaN(res.RangePSLR) || !math.IsNaN(res.AzimuthPSLR) {
		t.Errorf("PSLRs %v %v, want NaN", res.RangePSLR, res.AzimuthPSLR)
	}
}
