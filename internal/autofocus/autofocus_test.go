package autofocus

import (
	"math"
	"testing"

	"sarmany/internal/cf"
	"sarmany/internal/mat"
)

// gaussianBlock samples a smooth complex blob centred at (cr, cc) in block
// pixel coordinates, with a linear phase ramp so that both magnitude and
// phase carry position information.
func gaussianBlock(cr, cc float64) *Block {
	var b Block
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			dr := float64(r) - cr
			dc := float64(c) - cc
			amp := math.Exp(-(dr*dr + dc*dc) / 3)
			b[r][c] = cf.Scale(float32(amp), cf.Expi(float32(0.3*dc-0.2*dr)))
		}
	}
	return &b
}

func TestBlockFrom(t *testing.T) {
	img := mat.NewC(10, 12)
	for r := 0; r < 10; r++ {
		for c := 0; c < 12; c++ {
			img.Set(r, c, complex(float32(r), float32(c)))
		}
	}
	b, err := BlockFrom(img, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b[0][0] != complex(2, 3) || b[5][5] != complex(7, 8) {
		t.Errorf("block contents wrong: %v %v", b[0][0], b[5][5])
	}
	if _, err := BlockFrom(img, 5, 7); err == nil {
		t.Error("out-of-range block not rejected")
	}
	if _, err := BlockFrom(img, -1, 0); err == nil {
		t.Error("negative origin not rejected")
	}
}

func TestResampleIdentityOnPolynomial(t *testing.T) {
	// A field that is cubic in each coordinate is reproduced exactly by
	// the two-stage Neville interpolation at zero shift, sampled at the
	// window centres (1.5 + output index offsets... centre positions are
	// row/col 1.5, 2.5, 3.5).
	var b Block
	f := func(r, c float64) complex64 {
		return complex(float32(r*r-2*c+r*c), float32(c*c*c/10-r))
	}
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			b[r][c] = f(float64(r), float64(c))
		}
	}
	got := Resample(&b, Shift{})
	for i := 0; i < InterpSize; i++ {
		for j := 0; j < InterpSize; j++ {
			want := f(float64(i)+1.5, float64(j)+1.5)
			if cAbs(got[i][j]-want) > 1e-3 {
				t.Errorf("(%d,%d): got %v want %v", i, j, got[i][j], want)
			}
		}
	}
}

func TestResampleShiftMovesSamplingPoint(t *testing.T) {
	var b Block
	f := func(r, c float64) complex64 {
		return complex(float32(2*r+3*c), float32(r-c))
	}
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			b[r][c] = f(float64(r), float64(c))
		}
	}
	s := Shift{DRange: 0.4, DBeam: -0.3}
	got := Resample(&b, s)
	for i := 0; i < InterpSize; i++ {
		for j := 0; j < InterpSize; j++ {
			want := f(float64(i)+1.5+s.DBeam, float64(j)+1.5+s.DRange)
			if cAbs(got[i][j]-want) > 1e-3 {
				t.Errorf("(%d,%d): got %v want %v", i, j, got[i][j], want)
			}
		}
	}
}

func TestResampleTiltedPath(t *testing.T) {
	// With tilt, row r samples at column offset DRange + Tilt*r.
	var b Block
	f := func(r, c float64) complex64 { return complex(float32(c), float32(r)) }
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			b[r][c] = f(float64(r), float64(c))
		}
	}
	s := Shift{DRange: 0.2, Tilt: 0.1}
	r := rangeStage(&b, s)
	for row := 0; row < BlockSize; row++ {
		for j := 0; j < InterpSize; j++ {
			wantCol := float64(j) + 1.5 + 0.2 + 0.1*float64(row)
			if math.Abs(float64(real(r[row][j]))-wantCol) > 1e-4 {
				t.Errorf("row %d win %d: col %v want %v", row, j, real(r[row][j]), wantCol)
			}
		}
	}
}

func TestCorrelateMatchesDefinition(t *testing.T) {
	var a, b Interpolated
	a[0][0] = complex(2, 0)  // |a|^2 = 4
	b[0][0] = complex(0, 3)  // |b|^2 = 9
	a[2][1] = complex(1, 1)  // 2
	b[2][1] = complex(2, -1) // 5
	got := Correlate(&a, &b)
	want := 4.0*9.0 + 2.0*5.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Correlate = %v, want %v", got, want)
	}
}

func TestCriterionPeaksAtTrueShift(t *testing.T) {
	// fPlus is the same scene displaced by a known shift; the criterion
	// over a sweep of candidates must peak at the compensating shift.
	trueShift := 0.7 // fPlus content displaced +0.7 columns
	fMinus := gaussianBlock(2.5, 2.5)
	fPlus := gaussianBlock(2.5, 2.5+trueShift)
	cands := RangeSweep(-1.5, 1.5, 31)
	best, all, err := Search(fMinus, fPlus, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 31 {
		t.Fatalf("got %d results", len(all))
	}
	// Compensation samples fPlus at +DRange; content moved +0.7, so the
	// best compensation is +0.7.
	if math.Abs(best.Shift.DRange-trueShift) > 0.11 {
		t.Errorf("best shift %v, want ~%v", best.Shift.DRange, trueShift)
	}
	// The criterion at the truth must beat a far-off candidate clearly.
	var atTruth, far float64
	for _, r := range all {
		if math.Abs(r.Shift.DRange-trueShift) < 0.06 {
			atTruth = r.Score
		}
		if math.Abs(r.Shift.DRange+1.5) < 1e-9 {
			far = r.Score
		}
	}
	if atTruth <= far {
		t.Errorf("criterion at truth %v not above far candidate %v", atTruth, far)
	}
}

func TestCriterionBeamShift(t *testing.T) {
	trueBeam := -0.5
	fMinus := gaussianBlock(2.5, 2.5)
	fPlus := gaussianBlock(2.5+trueBeam, 2.5)
	var cands []Shift
	for db := -1.0; db <= 1.0; db += 0.1 {
		cands = append(cands, Shift{DBeam: db})
	}
	best, _, err := Search(fMinus, fPlus, cands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Shift.DBeam-trueBeam) > 0.15 {
		t.Errorf("best beam shift %v, want ~%v", best.Shift.DBeam, trueBeam)
	}
}

func TestSearchNoCandidates(t *testing.T) {
	b := gaussianBlock(2.5, 2.5)
	if _, _, err := Search(b, b, nil); err == nil {
		t.Error("expected error for empty candidate list")
	}
}

func TestRangeSweep(t *testing.T) {
	s := RangeSweep(-1, 1, 5)
	if len(s) != 5 {
		t.Fatalf("len %d", len(s))
	}
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for i, v := range want {
		if math.Abs(s[i].DRange-v) > 1e-12 {
			t.Errorf("sweep[%d] = %v, want %v", i, s[i].DRange, v)
		}
	}
	if one := RangeSweep(-2, 4, 1); len(one) != 1 || one[0].DRange != 1 {
		t.Errorf("single-candidate sweep %v", one)
	}
	if RangeSweep(0, 1, 0) != nil {
		t.Error("n=0 sweep should be nil")
	}
}

func TestPixelsProcessed(t *testing.T) {
	if PixelsProcessed() != 72 {
		t.Errorf("PixelsProcessed = %d, want 72", PixelsProcessed())
	}
}

func cAbs(z complex64) float64 {
	return math.Hypot(float64(real(z)), float64(imag(z)))
}

func BenchmarkCriterion(b *testing.B) {
	fMinus := gaussianBlock(2.5, 2.5)
	fPlus := gaussianBlock(2.5, 3.1)
	s := Shift{DRange: 0.4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Criterion(fMinus, fPlus, s)
	}
}
