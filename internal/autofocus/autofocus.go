// Package autofocus implements the autofocus criterion calculation of the
// paper's compute-intensive case study (Sec. II-A). When GPS positioning is
// insufficient, the flight-path compensation applied before each FFBP
// subaperture merge is estimated from the image data itself: several
// candidate compensations are tried, and for each the two contributing
// subaperture images are compared with a focus criterion — maximization of
// the correlation of image intensities (paper eq. 6):
//
//	criterion = sum |f-(r, fi)|^2 * |f+(r, fi)|^2
//
// The images to correlate are small subimages (6x6 pixel blocks), and a
// path error is approximated as a linear shift of one block relative to the
// other. Evaluating the criterion for a trial shift requires resampling the
// blocks at shifted, possibly tilted positions: cubic interpolation based
// on Neville's algorithm is performed in the range direction, then in the
// beam direction (paper Fig. 8), and the interpolated subimages are
// correlated and summed. Three iterations of the
// range-interpolation/beam-interpolation/correlation/summation pipeline
// cover the whole 6x6 block.
package autofocus

import (
	"fmt"
	"math"

	"sarmany/internal/cf"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
)

const (
	// BlockSize is the side of the image blocks the criterion operates on.
	BlockSize = 6
	// InterpSize is the side of the interpolated subimage: cubic
	// interpolation consumes 4 taps, so a 6-sample row yields 3 sliding
	// windows, and likewise in the beam direction.
	InterpSize = BlockSize - interp.CubicTaps + 1
)

// Shift is a trial flight-path compensation expressed as the resulting
// linear displacement of the image block, in pixels: DRange along the range
// (column) axis and DBeam along the beam (row) axis. Tilt adds a range
// displacement proportional to the row index, making the sampling paths
// tilted lines through memory (paper: "the interpolation kernels are swept
// along tilted paths in memory").
// Shifts are meaningful within the support of the 4-tap interpolation
// window, roughly |DRange|, |DBeam| <= 1.5 pixels; larger trial shifts
// extrapolate the cubic polynomial and produce unbounded criterion values.
// Larger path errors are handled in FFBP by applying autofocus at every
// merge level, where each level's residual error is sub-pixel.
type Shift struct {
	DRange, DBeam float64
	Tilt          float64
}

// Block is one 6x6 pixel block extracted from a subaperture image.
type Block [BlockSize][BlockSize]complex64

// BlockFrom copies the 6x6 region of img whose top-left corner is (r0, c0).
func BlockFrom(img *mat.C, r0, c0 int) (Block, error) {
	var b Block
	if r0 < 0 || c0 < 0 || r0+BlockSize > img.Rows || c0+BlockSize > img.Cols {
		return b, fmt.Errorf("autofocus: block at (%d,%d) outside %dx%d image", r0, c0, img.Rows, img.Cols)
	}
	for r := 0; r < BlockSize; r++ {
		copy(b[r][:], img.Row(r0 + r)[c0:c0+BlockSize])
	}
	return b, nil
}

// Interpolated is the 3x3 resampled subimage produced by the range and
// beam interpolation stages.
type Interpolated [InterpSize][InterpSize]complex64

// rangeStage performs the range (within-row) cubic interpolation of the
// dataflow diagram: for each of the 6 rows, the three sliding 4-column
// windows are each interpolated at their centre plus the shift offset for
// that row. Row r's offset is s.DRange + s.Tilt*r, which sweeps the kernel
// along a tilted path.
func rangeStage(b *Block, s Shift) (out [BlockSize][InterpSize]complex64) {
	for r := 0; r < BlockSize; r++ {
		off := s.DRange + s.Tilt*float64(r)
		for j := 0; j < InterpSize; j++ {
			var taps [4]complex64
			copy(taps[:], b[r][j:j+4])
			out[r][j] = interp.Neville4(taps, float32(1.5+off))
		}
	}
	return out
}

// beamStage performs the beam (across-row) cubic interpolation on the
// range-interpolated data: for each of the 3 columns, the three sliding
// 4-row windows are interpolated at their centre plus the beam shift. Each
// window is one "iteration" of the paper's three-iteration pipeline.
func beamStage(in *[BlockSize][InterpSize]complex64, s Shift) (out Interpolated) {
	for i := 0; i < InterpSize; i++ { // iteration = output row
		for j := 0; j < InterpSize; j++ {
			taps := [4]complex64{in[i][j], in[i+1][j], in[i+2][j], in[i+3][j]}
			out[i][j] = interp.Neville4(taps, float32(1.5+s.DBeam))
		}
	}
	return out
}

// Resample applies the full two-stage cubic interpolation to a block under
// a trial shift.
func Resample(b *Block, s Shift) Interpolated {
	r := rangeStage(b, s)
	return beamStage(&r, s)
}

// Correlate evaluates the focus criterion (paper eq. 6) on two
// interpolated subimages: the sum over all pixels of |a|^2 * |b|^2.
func Correlate(a, b *Interpolated) float64 {
	var sum float64
	for i := 0; i < InterpSize; i++ {
		for j := 0; j < InterpSize; j++ {
			sum += float64(cf.Abs2(a[i][j])) * float64(cf.Abs2(b[i][j]))
		}
	}
	return sum
}

// Criterion computes the focus criterion for the block pair under a trial
// shift: fMinus is resampled at nominal positions, fPlus at positions
// displaced by s, and the results are correlated. Higher is better focused.
func Criterion(fMinus, fPlus *Block, s Shift) float64 {
	a := Resample(fMinus, Shift{})
	b := Resample(fPlus, s)
	return Correlate(&a, &b)
}

// Result records one evaluated candidate of a compensation search.
type Result struct {
	Shift Shift
	Score float64
}

// Search evaluates the criterion for every candidate shift and returns the
// best candidate together with all scores. It returns an error if no
// candidates are given.
func Search(fMinus, fPlus *Block, candidates []Shift) (Result, []Result, error) {
	if len(candidates) == 0 {
		return Result{}, nil, fmt.Errorf("autofocus: no candidate shifts")
	}
	// The reference block is shift-independent: resample it once.
	a := Resample(fMinus, Shift{})
	all := make([]Result, len(candidates))
	best := Result{Score: math.Inf(-1)}
	for i, s := range candidates {
		b := Resample(fPlus, s)
		r := Result{Shift: s, Score: Correlate(&a, &b)}
		all[i] = r
		if r.Score > best.Score {
			best = r
		}
	}
	return best, all, nil
}

// RangeSweep returns n candidate shifts with DRange evenly spaced in
// [lo, hi] and zero beam shift and tilt — the one-dimensional compensation
// sweep used when a path error projects mainly onto the range axis.
func RangeSweep(lo, hi float64, n int) []Shift {
	if n < 1 {
		return nil
	}
	out := make([]Shift, n)
	if n == 1 {
		out[0] = Shift{DRange: (lo + hi) / 2}
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = Shift{DRange: lo + float64(i)*step}
	}
	return out
}

// PixelsProcessed returns the number of input pixels a criterion
// evaluation consumes, the unit of the paper's pixels/second throughput
// numbers: two 6x6 blocks.
func PixelsProcessed() int { return 2 * BlockSize * BlockSize }
