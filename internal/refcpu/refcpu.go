// Package refcpu models the sequential reference processor of the paper's
// comparison: a single core of an Intel Core i7-M620 (Westmere, 2.67 GHz) —
// an out-of-order superscalar CPU with hardware floating point, no fused
// multiply-add, and a three-level cache hierarchy backed by DDR3. Like
// emu.Core, it implements machine.Machine: kernels charge abstract
// operations and refcpu translates them into cycles.
//
// The model captures the mechanisms the paper credits the i7 with
// (Sec. VI): "prefetching mechanisms combined with three levels of caches
// to hide the memory latencies", an on-die memory controller, out-of-order
// superscalar execution, and a 2.67x clock advantage over the Epiphany.
package refcpu

import (
	"sarmany/internal/machine"
	"sarmany/internal/obs"
)

// Params holds the timing constants of the reference CPU. Values derive
// from the i7-M620 datasheet and published Westmere instruction tables,
// not from the paper's results (see DESIGN.md calibration policy).
type Params struct {
	// Clock is the core frequency in Hz (2.67 GHz).
	Clock float64

	// IntIPC is the sustained integer/address operations per cycle the
	// out-of-order core achieves on the kernels' bookkeeping code.
	IntIPC float64
	// FPIPC is the sustained scalar single-precision FP operations per
	// cycle on the kernels' dependence-chained arithmetic. Westmere can
	// issue one multiply and one add per cycle in separate ports, but the
	// back-projection and Neville interpolation chains are latency-bound,
	// which holds the sustained rate near one.
	FPIPC float64
	// FMAOps is how many scalar FP operations one kernel-level FMA charge
	// expands to (2: Westmere has no fused multiply-add).
	FMAOps int

	// DivCycles, SqrtCycles and TrigCycles are the effective costs of a
	// hardware divide, a hardware square root, and a libm trigonometric
	// call (sincos/atan2/acos).
	DivCycles, SqrtCycles, TrigCycles float64

	// Cache hierarchy (i7-M620: 32 KB L1D 8-way, 256 KB L2 8-way, 4 MB L3
	// 16-way, 64-byte lines).
	L1, L2, L3 CacheParams
	// L1HitCycles is charged per load on an L1 hit (pipelined loads);
	// L2HitCycles / L3HitCycles / MemCycles are the additional stalls for
	// deeper hits and DRAM.
	L1HitCycles, L2HitCycles, L3HitCycles, MemCycles float64
	// MissOverlap is the fraction of L3/DRAM miss latency hidden by the
	// hardware prefetchers and out-of-order window on these streaming
	// kernels.
	MissOverlap float64

	// SingleCorePowerWatts is the power attributed to one active core:
	// the paper takes half the 35 W package TDP for its single-threaded
	// reference, i.e. 17.5 W.
	SingleCorePowerWatts float64
}

// I7M620 returns the paper's reference configuration.
func I7M620() Params {
	return Params{
		Clock:  2.67e9,
		IntIPC: 2.5,
		FPIPC:  0.8,
		FMAOps: 2,

		DivCycles:  12,
		SqrtCycles: 18,
		TrigCycles: 90,

		L1: CacheParams{SizeBytes: 32 * 1024, Ways: 8, LineBytes: 64},
		L2: CacheParams{SizeBytes: 256 * 1024, Ways: 8, LineBytes: 64},
		L3: CacheParams{SizeBytes: 4 * 1024 * 1024, Ways: 16, LineBytes: 64},

		L1HitCycles: 0.5,
		L2HitCycles: 10,
		L3HitCycles: 35,
		MemCycles:   110,
		MissOverlap: 0.6,

		SingleCorePowerWatts: 17.5,
	}
}

// CPU is one simulated reference core. It implements machine.Machine.
type CPU struct {
	P      Params
	hier   *Hierarchy
	cycles float64
	heap   *machine.Bump

	// tr is the CPU's event-trace sink; nil (the default) disables
	// tracing at zero cost.
	tr *obs.Track

	Stats Stats
}

// Stats counts the operations and cache behaviour of a run.
type Stats struct {
	FMA, Flop, IOp  uint64
	Div, Sqrt, Trig uint64
	Loads, Stores   uint64
	Served          [4]uint64 // indexed by Level
}

var _ machine.Machine = (*CPU)(nil)

// New constructs a CPU with the given parameters and an empty cache
// hierarchy. Data buffers are placed in the model's DRAM via Mem().
func New(p Params) *CPU {
	return &CPU{
		P:    p,
		hier: NewHierarchy(p.L1, p.L2, p.L3),
		// An arbitrary heap region; only relative placement matters for
		// the cache simulation.
		heap: machine.NewBump(0x10000000, 512*1024*1024),
	}
}

// Mem returns the allocator for the model's main memory.
func (c *CPU) Mem() machine.Alloc { return c.heap }

// SetTracer attaches (or with nil detaches) an event tracer. The CPU
// records stall spans for accesses served beyond the L2 (where the model
// charges unhidden miss latency); attach before running a kernel.
func (c *CPU) SetTracer(tr *obs.Tracer) {
	if tr == nil {
		c.tr = nil
		return
	}
	tr.NameProcess(1, "refcpu i7")
	c.tr = tr.NewTrack(1, 1, "cpu")
}

// Metrics publishes the run's state into a fresh registry: operation
// counters ("cpu.ops.*"), the cache-level service distribution
// ("cpu.mem.served.*") and elapsed cycles ("cpu.cycles").
func (c *CPU) Metrics() *obs.Registry {
	reg := obs.NewRegistry()
	s := &c.Stats
	reg.Counter("cpu.ops.fma").Add(float64(s.FMA))
	reg.Counter("cpu.ops.flop").Add(float64(s.Flop))
	reg.Counter("cpu.ops.iop").Add(float64(s.IOp))
	reg.Counter("cpu.ops.div").Add(float64(s.Div))
	reg.Counter("cpu.ops.sqrt").Add(float64(s.Sqrt))
	reg.Counter("cpu.ops.trig").Add(float64(s.Trig))
	reg.Counter("cpu.mem.loads").Add(float64(s.Loads))
	reg.Counter("cpu.mem.stores").Add(float64(s.Stores))
	for lvl, name := range [4]string{"l1", "l2", "l3", "dram"} {
		reg.Counter("cpu.mem.served." + name).Add(float64(s.Served[lvl]))
	}
	reg.Gauge("cpu.cycles").Set(c.cycles)
	return reg
}

// FMA charges n fused multiply-adds, expanded to multiply+add pairs.
func (c *CPU) FMA(n int) {
	c.cycles += float64(n*c.P.FMAOps) / c.P.FPIPC
	c.Stats.FMA += uint64(n)
}

// Flop charges n scalar FP operations.
func (c *CPU) Flop(n int) {
	c.cycles += float64(n) / c.P.FPIPC
	c.Stats.Flop += uint64(n)
}

// IOp charges n integer/address operations.
func (c *CPU) IOp(n int) {
	c.cycles += float64(n) / c.P.IntIPC
	c.Stats.IOp += uint64(n)
}

// Div charges n hardware divides.
func (c *CPU) Div(n int) {
	c.cycles += float64(n) * c.P.DivCycles
	c.Stats.Div += uint64(n)
}

// Sqrt charges n hardware square roots.
func (c *CPU) Sqrt(n int) {
	c.cycles += float64(n) * c.P.SqrtCycles
	c.Stats.Sqrt += uint64(n)
}

// Trig charges n libm trigonometric calls.
func (c *CPU) Trig(n int) {
	c.cycles += float64(n) * c.P.TrigCycles
	c.Stats.Trig += uint64(n)
}

// Load charges a read of n bytes at addr through the cache hierarchy.
func (c *CPU) Load(addr uint32, n int) {
	c.Stats.Loads++
	c.access(addr, n)
}

// Store charges a write of n bytes at addr (write-allocate, so timing-wise
// it walks the hierarchy like a load; store buffers hide most of the
// latency, which MissOverlap already accounts for).
func (c *CPU) Store(addr uint32, n int) {
	c.Stats.Stores++
	c.access(addr, n)
}

func (c *CPU) access(addr uint32, n int) {
	lvl := c.hier.Access(addr, n)
	c.Stats.Served[lvl]++
	before := c.cycles
	switch lvl {
	case ServedL1:
		c.cycles += c.P.L1HitCycles
	case ServedL2:
		c.cycles += c.P.L1HitCycles + c.P.L2HitCycles
	case ServedL3:
		c.cycles += c.P.L1HitCycles + c.P.L3HitCycles*(1-c.P.MissOverlap)
	case ServedMem:
		c.cycles += c.P.L1HitCycles + c.P.MemCycles*(1-c.P.MissOverlap)
	}
	if lvl >= ServedL3 {
		c.tr.Span(obs.KindStallMem, before, c.cycles)
	}
}

// Cycles returns the elapsed cycle count.
func (c *CPU) Cycles() float64 { return c.cycles }

// ClockHz returns the clock frequency.
func (c *CPU) ClockHz() float64 { return c.P.Clock }

// Seconds returns the elapsed time in seconds.
func (c *CPU) Seconds() float64 { return c.cycles / c.P.Clock }
