package refcpu

import (
	"testing"

	"sarmany/internal/machine"
	"sarmany/internal/obs"
)

func TestCPUTracerAndMetrics(t *testing.T) {
	run := func(tr *obs.Tracer) *CPU {
		cpu := New(I7M620())
		if tr != nil {
			cpu.SetTracer(tr)
		}
		buf, err := machine.NewBufC(cpu.Mem(), 1<<20) // 8 MB: exceeds L3
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1<<20; i += 8 { // new cache line every access
			buf.Store(cpu, i, 1)
		}
		cpu.FMA(100)
		return cpu
	}

	plain := run(nil)
	tr := obs.NewTracer(I7M620().Clock)
	traced := run(tr)
	if plain.Cycles() != traced.Cycles() {
		t.Errorf("cycles differ: disabled %v, enabled %v", plain.Cycles(), traced.Cycles())
	}

	var memSpans int
	for _, tk := range tr.Tracks() {
		for _, s := range tk.Spans() {
			if s.Kind != obs.KindStallMem {
				t.Errorf("unexpected span kind %v", s.Kind)
			}
			memSpans++
		}
	}
	if memSpans == 0 {
		t.Error("no memory-stall spans recorded for a DRAM-bound sweep")
	}

	snap := traced.Metrics().Snapshot()
	if v := snap.Value("cpu.ops.fma"); v != 100 {
		t.Errorf("cpu.ops.fma = %v", v)
	}
	if v := snap.Value("cpu.mem.stores"); v != float64(traced.Stats.Stores) {
		t.Errorf("cpu.mem.stores = %v, want %v", v, traced.Stats.Stores)
	}
	dram := snap.Value("cpu.mem.served.dram")
	if dram == 0 {
		t.Error("no DRAM-served accesses in metrics for an L3-exceeding sweep")
	}
	if v := snap.Value("cpu.cycles"); v != traced.Cycles() {
		t.Errorf("cpu.cycles = %v, want %v", v, traced.Cycles())
	}
}
