package refcpu

import (
	"math"
	"testing"

	"sarmany/internal/machine"
)

func tinyCache() CacheParams {
	return CacheParams{SizeBytes: 512, Ways: 2, LineBytes: 64} // 4 sets
}

func TestCacheHitAfterFill(t *testing.T) {
	c := newCache(tinyCache())
	if c.access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.access(0x1000) {
		t.Error("warm access missed")
	}
	if !c.access(0x103f) {
		t.Error("same-line access missed")
	}
	if c.access(0x1040) {
		t.Error("next line hit cold")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits %d misses %d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(tinyCache()) // 2 ways, 4 sets: set = line & 3
	// Three lines mapping to set 0: lines 0, 4, 8 (addresses 0, 256, 512).
	c.access(0)
	c.access(256)
	c.access(0) // touch line 0: line 4 is now LRU
	c.access(512)
	if !c.access(0) {
		t.Error("recently used line evicted")
	}
	if c.access(256) {
		t.Error("LRU line survived eviction")
	}
}

func TestCacheRejectsBadParams(t *testing.T) {
	bad := []CacheParams{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 512, Ways: 3, LineBytes: 32},  // 16 lines / 3 ways: 5 sets, not pow2
		{SizeBytes: 512, Ways: 2, LineBytes: 100}, // line not pow2
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			newCache(p)
		}()
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(
		CacheParams{SizeBytes: 128, Ways: 2, LineBytes: 64},  // 1 set, 2 ways
		CacheParams{SizeBytes: 256, Ways: 2, LineBytes: 64},  // 2 sets
		CacheParams{SizeBytes: 1024, Ways: 2, LineBytes: 64}, // 8 sets
	)
	if got := h.Access(0, 4); got != ServedMem {
		t.Errorf("cold access served at %v", got)
	}
	if got := h.Access(0, 4); got != ServedL1 {
		t.Errorf("warm access served at %v", got)
	}
	// Evict line 0 from L1 (2 ways, 1 set) using lines 1 and 2, which land
	// in different L2/L3 sets so line 0 survives in the outer levels.
	h.Access(0x40, 4)
	h.Access(0x80, 4)
	if got := h.Access(0, 4); got != ServedL2 {
		t.Errorf("L1-evicted access served at %v, want L2", got)
	}
}

func TestHierarchySpanningAccess(t *testing.T) {
	h := NewHierarchy(tinyCache(), CacheParams{SizeBytes: 1024, Ways: 2, LineBytes: 64},
		CacheParams{SizeBytes: 4096, Ways: 4, LineBytes: 64})
	h.Access(60, 1)
	// 8-byte access spanning lines 0 and 1: line 1 is cold, so worst is MEM.
	if got := h.Access(60, 8); got != ServedMem {
		t.Errorf("spanning access served at %v", got)
	}
}

func TestLevelString(t *testing.T) {
	if ServedL1.String() != "L1" || ServedMem.String() != "MEM" {
		t.Error("level names")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level name")
	}
}

func TestCPUOperationCosts(t *testing.T) {
	p := I7M620()
	c := New(p)
	c.FMA(10) // 20 FP ops at FPIPC=1
	c.IOp(25) // at IntIPC=2.5 -> 10 cycles
	c.Div(1)
	c.Sqrt(1)
	c.Trig(1)
	want := 20/p.FPIPC + 25/p.IntIPC + p.DivCycles + p.SqrtCycles + p.TrigCycles
	if got := c.Cycles(); math.Abs(got-want) > 1e-9 {
		t.Errorf("cycles = %v, want %v", got, want)
	}
}

func TestCPULoadHitVsMiss(t *testing.T) {
	p := I7M620()
	c := New(p)
	buf, err := machine.NewBufC(c.Mem(), 64)
	if err != nil {
		t.Fatal(err)
	}
	buf.Load(c, 0) // cold: DRAM
	cold := c.Cycles()
	buf.Load(c, 0) // warm: L1
	warm := c.Cycles() - cold
	if cold <= warm {
		t.Errorf("cold load %v not slower than warm %v", cold, warm)
	}
	wantCold := p.L1HitCycles + p.MemCycles*(1-p.MissOverlap)
	if math.Abs(cold-wantCold) > 1e-9 {
		t.Errorf("cold load = %v, want %v", cold, wantCold)
	}
	if c.Stats.Served[ServedMem] != 1 || c.Stats.Served[ServedL1] != 1 {
		t.Errorf("served stats %v", c.Stats.Served)
	}
}

func TestCPUStreamingLocality(t *testing.T) {
	// Sequential float32 reads: 15 of 16 per line hit L1.
	c := New(I7M620())
	buf, err := machine.NewBufF(c.Mem(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		buf.Load(c, i)
	}
	hitRate := float64(c.Stats.Served[ServedL1]) / 4096
	if hitRate < 0.93 {
		t.Errorf("streaming L1 hit rate %v", hitRate)
	}
}

func TestCPUWorkingSetBeyondL3(t *testing.T) {
	// A random-stride walk over 16 MB (4x the L3) must mostly miss to DRAM.
	c := New(I7M620())
	buf, err := machine.NewBufC(c.Mem(), 2*1024*1024) // 16 MB
	if err != nil {
		t.Fatal(err)
	}
	n := 20000
	idx := 0
	for i := 0; i < n; i++ {
		idx = (idx + 999983) % (2 * 1024 * 1024) // large prime stride
		buf.Load(c, idx)
	}
	memFrac := float64(c.Stats.Served[ServedMem]) / float64(n)
	if memFrac < 0.8 {
		t.Errorf("DRAM fraction %v for out-of-cache walk", memFrac)
	}
}

func TestSecondsUsesClock(t *testing.T) {
	c := New(I7M620())
	c.Flop(267)
	want := 267 / c.P.FPIPC / 2.67e9
	if math.Abs(c.Seconds()-want) > 1e-15 {
		t.Errorf("Seconds = %v, want %v", c.Seconds(), want)
	}
	if machine.Seconds(c) != c.Seconds() {
		t.Error("machine.Seconds disagrees")
	}
}
