package refcpu

import "fmt"

// CacheParams describes one level of a set-associative cache.
type CacheParams struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// cache is a set-associative LRU cache over physical line addresses.
type cache struct {
	p        CacheParams
	sets     int
	lineBits uint
	setMask  uint64
	tags     []uint64 // sets*ways entries
	age      []uint64 // LRU stamps
	valid    []bool
	clock    uint64

	Hits, Misses uint64
}

func newCache(p CacheParams) *cache {
	if p.LineBytes <= 0 || p.SizeBytes <= 0 || p.Ways <= 0 {
		panic(fmt.Sprintf("refcpu: invalid cache params %+v", p))
	}
	lines := p.SizeBytes / p.LineBytes
	sets := lines / p.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("refcpu: cache must have a power-of-two set count, got %d", sets))
	}
	lb := uint(0)
	for 1<<lb < p.LineBytes {
		lb++
	}
	if 1<<lb != p.LineBytes {
		panic("refcpu: line size must be a power of two")
	}
	return &cache{
		p:        p,
		sets:     sets,
		lineBits: lb,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*p.Ways),
		age:      make([]uint64, sets*p.Ways),
		valid:    make([]bool, sets*p.Ways),
	}
}

// access looks up the line containing addr, filling it on a miss (LRU
// victim). It reports whether the access hit.
func (c *cache) access(addr uint64) bool {
	c.clock++
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.p.Ways
	victim := base
	oldest := c.age[base]
	for w := 0; w < c.p.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.age[i] = c.clock
			c.Hits++
			return true
		}
		if !c.valid[i] {
			victim = i
			oldest = 0
		} else if c.age[i] < oldest {
			victim = i
			oldest = c.age[i]
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.age[victim] = c.clock
	c.Misses++
	return false
}

// Hierarchy is a three-level inclusive cache hierarchy in front of DRAM.
type Hierarchy struct {
	L1, L2, L3 *cache
}

// NewHierarchy builds a hierarchy from the three level parameter sets.
func NewHierarchy(l1, l2, l3 CacheParams) *Hierarchy {
	return &Hierarchy{L1: newCache(l1), L2: newCache(l2), L3: newCache(l3)}
}

// Level identifies where an access was served.
type Level int

// Cache service levels, nearest first.
const (
	ServedL1 Level = iota
	ServedL2
	ServedL3
	ServedMem
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case ServedL1:
		return "L1"
	case ServedL2:
		return "L2"
	case ServedL3:
		return "L3"
	case ServedMem:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Access walks an n-byte access at addr through the hierarchy and returns
// the deepest level that had to serve any of its lines.
func (h *Hierarchy) Access(addr uint32, n int) Level {
	if n <= 0 {
		n = 1
	}
	worst := ServedL1
	lb := h.L1.lineBits
	first := uint64(addr) >> lb
	last := (uint64(addr) + uint64(n) - 1) >> lb
	for line := first; line <= last; line++ {
		a := line << lb
		var served Level
		switch {
		case h.L1.access(a):
			served = ServedL1
		case h.L2.access(a):
			served = ServedL2
		case h.L3.access(a):
			served = ServedL3
		default:
			served = ServedMem
		}
		if served > worst {
			worst = served
		}
	}
	return worst
}
