package fault

import "testing"

// FuzzParsePlan drives the fault-plan parser with arbitrary text and
// checks the contract the rest of the stack relies on: every accepted
// plan compiles, and String renders a canonical form that Parse maps back
// to itself (a fixpoint), so plans survive save/load cycles unchanged.
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"",
		"seed 42\n",
		"# comment only\n",
		"seed 42\nhalt 5\nderate 3 1.5\next-derate 0.5\n",
		"link 0 1 0.1 timeout 500 backoff 64 retries 8\n",
		"link * * 0.01\ndma * 0.02 timeout 200 retries 4\n",
		"dma 3 1 retries 20\n",
		"seed -9223372036854775808\nhalt 0\n",
		"derate 0 1e300\n",
		"link 0 1 0.5 backoff 0.125\n",
		"halt *\n",
		"link 0 1 nan\n",
		"ext-derate +Inf\n",
		"seed 1 extra\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return // rejected input: nothing more to check
		}
		inj, err := p.Compile()
		if err != nil {
			t.Fatalf("accepted plan does not compile: %v\ninput: %q\nplan: %+v", err, text, p)
		}
		if p.Empty() != inj.Empty() {
			t.Fatalf("Plan.Empty()=%v but Injector.Empty()=%v for %q", p.Empty(), inj.Empty(), text)
		}
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ninput: %q\ncanonical: %q", err, text, s1)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("String is not a Parse fixpoint:\ninput: %q\n first: %q\nsecond: %q", text, s1, s2)
		}
	})
}
