package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Parse reads the line-oriented fault-plan text format:
//
//	# comment
//	seed 42
//	halt 5
//	derate 3 1.5
//	chiphalt 2
//	chipderate 1 1.25
//	ext-derate 0.5
//	link 0 1 0.1 timeout 500 backoff 64 retries 8
//	link * 12 0.05
//	dma * 0.02 timeout 200 retries 4
//
// Core fields accept "*" as a wildcard. The timeout/backoff/retries
// options may appear in any order and default to the package constants
// when omitted. The returned plan is validated; String renders it back
// in the canonical form Parse accepts (a Parse/String round trip is a
// fixpoint).
func Parse(text string) (Plan, error) {
	var p Plan
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseLine(&p, fields); err != nil {
			return Plan{}, fmt.Errorf("fault: line %d: %w", ln+1, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// ParseFile reads and parses a fault-plan file.
func ParseFile(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	return Parse(string(b))
}

func parseLine(p *Plan, fields []string) error {
	args := fields[1:]
	switch fields[0] {
	case "seed":
		if len(args) != 1 {
			return fmt.Errorf("seed wants 1 argument, got %d", len(args))
		}
		v, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", args[0])
		}
		p.Seed = v
	case "halt":
		if len(args) != 1 {
			return fmt.Errorf("halt wants 1 argument, got %d", len(args))
		}
		c, err := parseCore(args[0], false)
		if err != nil {
			return err
		}
		p.Halts = append(p.Halts, c)
	case "derate":
		if len(args) != 2 {
			return fmt.Errorf("derate wants <core> <factor>, got %d arguments", len(args))
		}
		c, err := parseCore(args[0], false)
		if err != nil {
			return err
		}
		f, err := parseNum(args[1])
		if err != nil {
			return err
		}
		p.Derates = append(p.Derates, Derate{Core: c, Factor: f})
	case "chiphalt":
		if len(args) != 1 {
			return fmt.Errorf("chiphalt wants 1 argument, got %d", len(args))
		}
		c, err := parseCore(args[0], false)
		if err != nil {
			return err
		}
		p.ChipHalts = append(p.ChipHalts, c)
	case "chipderate":
		if len(args) != 2 {
			return fmt.Errorf("chipderate wants <chip> <factor>, got %d arguments", len(args))
		}
		c, err := parseCore(args[0], false)
		if err != nil {
			return err
		}
		f, err := parseNum(args[1])
		if err != nil {
			return err
		}
		p.ChipDerates = append(p.ChipDerates, ChipDerate{Chip: c, Factor: f})
	case "ext-derate":
		if len(args) != 1 {
			return fmt.Errorf("ext-derate wants 1 argument, got %d", len(args))
		}
		s, err := parseNum(args[0])
		if err != nil {
			return err
		}
		p.ExtScale = s
	case "link":
		if len(args) < 3 {
			return fmt.Errorf("link wants <from> <to> <rate> [options], got %d arguments", len(args))
		}
		from, err := parseCore(args[0], true)
		if err != nil {
			return err
		}
		to, err := parseCore(args[1], true)
		if err != nil {
			return err
		}
		rate, err := parseNum(args[2])
		if err != nil {
			return err
		}
		l := LinkFault{From: from, To: to, Rate: rate}
		if err := parseOptions(args[3:], map[string]func(float64){
			"timeout": func(v float64) { l.TimeoutCycles = v },
			"backoff": func(v float64) { l.BackoffCycles = v },
			"retries": func(v float64) { l.MaxRetries = int(v) },
		}); err != nil {
			return err
		}
		p.Links = append(p.Links, l)
	case "dma":
		if len(args) < 2 {
			return fmt.Errorf("dma wants <core> <rate> [options], got %d arguments", len(args))
		}
		core, err := parseCore(args[0], true)
		if err != nil {
			return err
		}
		rate, err := parseNum(args[1])
		if err != nil {
			return err
		}
		d := DMAFault{Core: core, Rate: rate}
		if err := parseOptions(args[2:], map[string]func(float64){
			"timeout": func(v float64) { d.TimeoutCycles = v },
			"retries": func(v float64) { d.MaxRetries = int(v) },
		}); err != nil {
			return err
		}
		p.DMAs = append(p.DMAs, d)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

func parseCore(s string, wildcardOK bool) (int, error) {
	if s == "*" {
		if !wildcardOK {
			return 0, fmt.Errorf("wildcard core not allowed here")
		}
		return -1, nil
	}
	c, err := strconv.Atoi(s)
	if err != nil || c < 0 {
		return 0, fmt.Errorf("bad core %q", s)
	}
	return c, nil
}

func parseNum(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// parseOptions consumes "name value" pairs; the option table maps each
// accepted name to its setter. "retries" values must be non-negative
// integers.
func parseOptions(args []string, table map[string]func(float64)) error {
	for i := 0; i+1 < len(args); i += 2 {
		set, ok := table[args[i]]
		if !ok {
			return fmt.Errorf("unknown option %q", args[i])
		}
		v, err := parseNum(args[i+1])
		if err != nil {
			return err
		}
		if args[i] == "retries" && (v != float64(int(v)) || v < 0 || v > MaxRetryCap) {
			return fmt.Errorf("bad retries %q", args[i+1])
		}
		set(v)
	}
	if len(args)%2 != 0 {
		return fmt.Errorf("option %q has no value", args[len(args)-1])
	}
	return nil
}

// String renders the plan in the canonical text form: seed first, then
// ext-derate, halts (sorted), derates (by core), chip halts (sorted),
// chip derates (by chip), link faults and DMA faults in declaration
// order, every numeric field spelled out. Parsing the output reproduces
// the plan (after Validate-accepted input).
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %d\n", p.Seed)
	if p.ExtScale != 0 {
		fmt.Fprintf(&sb, "ext-derate %s\n", num(p.ExtScale))
	}
	halts := append([]int(nil), p.Halts...)
	sort.Ints(halts)
	for _, h := range halts {
		fmt.Fprintf(&sb, "halt %d\n", h)
	}
	derates := append([]Derate(nil), p.Derates...)
	sort.Slice(derates, func(i, j int) bool { return derates[i].Core < derates[j].Core })
	for _, d := range derates {
		fmt.Fprintf(&sb, "derate %d %s\n", d.Core, num(d.Factor))
	}
	chipHalts := append([]int(nil), p.ChipHalts...)
	sort.Ints(chipHalts)
	for _, h := range chipHalts {
		fmt.Fprintf(&sb, "chiphalt %d\n", h)
	}
	chipDerates := append([]ChipDerate(nil), p.ChipDerates...)
	sort.Slice(chipDerates, func(i, j int) bool { return chipDerates[i].Chip < chipDerates[j].Chip })
	for _, d := range chipDerates {
		fmt.Fprintf(&sb, "chipderate %d %s\n", d.Chip, num(d.Factor))
	}
	for _, l := range p.Links {
		fmt.Fprintf(&sb, "link %s %s %s", core(l.From), core(l.To), num(l.Rate))
		writeOpts(&sb, l.TimeoutCycles, l.BackoffCycles, l.MaxRetries, true)
	}
	for _, d := range p.DMAs {
		fmt.Fprintf(&sb, "dma %s %s", core(d.Core), num(d.Rate))
		writeOpts(&sb, d.TimeoutCycles, 0, d.MaxRetries, false)
	}
	return sb.String()
}

func writeOpts(sb *strings.Builder, timeout, backoff float64, retries int, withBackoff bool) {
	if timeout != 0 {
		fmt.Fprintf(sb, " timeout %s", num(timeout))
	}
	if withBackoff && backoff != 0 {
		fmt.Fprintf(sb, " backoff %s", num(backoff))
	}
	if retries != 0 {
		fmt.Fprintf(sb, " retries %d", retries)
	}
	sb.WriteByte('\n')
}

func core(c int) string {
	if c == -1 {
		return "*"
	}
	return strconv.Itoa(c)
}

func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
