// Package fault models deterministic, seeded hardware-fault plans for
// the Epiphany chip simulation: cores that halt outright or run derated,
// streaming-link transfers that time out and must be retransmitted with
// exponential backoff, a degraded off-chip SDRAM channel, and DMA
// descriptors whose completion times out. A Plan is a declarative list of
// faults; Compile turns it into an Injector, the read-only oracle
// internal/emu consults at its hook points.
//
// Determinism contract: every fault decision is a pure function of
// (plan seed, fault stream, event index, attempt) through a splitmix64-
// style hash — no shared RNG state, no dependence on goroutine schedule.
// The same plan over the same workload therefore produces bit-identical
// runs, and an empty plan compiles to an Injector whose answers are the
// exact identities (no halts, slowdown 1, scale 1, zero retries), which
// the emulator treats as a no-op.
package fault

import (
	"fmt"
	"math"
	"sort"
)

// Default retry/timeout parameters, applied by Compile when a fault line
// leaves them zero.
const (
	DefaultLinkTimeout = 500 // cycles before a link transfer is declared lost
	DefaultLinkBackoff = 64  // base backoff, doubled per attempt
	DefaultLinkRetries = 8   // retransmit attempts before forced success
	DefaultDMATimeout  = 200 // cycles per DMA completion timeout
	DefaultDMARetries  = 4

	// MaxRetryCap bounds MaxRetries so the exponential backoff can never
	// overflow (2^20 base-cycle units at most).
	MaxRetryCap = 20
)

// LinkFault makes transfers on matching links fail with probability Rate
// per attempt. Each failure costs the producer TimeoutCycles plus
// BackoffCycles*2^attempt before the retransmission; after MaxRetries
// failed attempts the transfer is forced through (so a plan can never
// deadlock the simulation).
type LinkFault struct {
	From, To      int     // producer/consumer core IDs; -1 matches any
	Rate          float64 // per-attempt failure probability in [0, 1]
	TimeoutCycles float64
	BackoffCycles float64
	MaxRetries    int
}

// DMAFault makes DMA descriptors issued by matching cores time out with
// probability Rate per attempt, each timeout delaying completion by
// TimeoutCycles.
type DMAFault struct {
	Core          int // issuing core ID; -1 matches any
	Rate          float64
	TimeoutCycles float64
	MaxRetries    int
}

// Derate slows one core's clock by Factor (>= 1): every committed
// dual-issue window costs Factor times its nominal cycles.
type Derate struct {
	Core   int
	Factor float64
}

// ChipDerate slows every core of one chip of a multi-chip array by
// Factor (>= 1); it multiplies onto any per-core derate of those cores.
type ChipDerate struct {
	Chip   int
	Factor float64
}

// Plan is one declarative fault scenario. The zero Plan is the empty
// plan: compiling it yields a no-op Injector.
type Plan struct {
	// Seed selects the deterministic fault stream; two plans that differ
	// only in Seed fail different transfers.
	Seed int64 `json:"seed"`
	// Halts lists hard-halted cores: they never start, and mapped kernels
	// remap their work to the nearest live core.
	Halts []int `json:"halts,omitempty"`
	// Derates lists per-core frequency deratings.
	Derates []Derate `json:"derates,omitempty"`
	// ChipHalts lists hard-halted chips of a multi-chip array: every
	// core of a halted chip behaves as if individually halted.
	ChipHalts []int `json:"chip_halts,omitempty"`
	// ChipDerates lists whole-chip frequency deratings.
	ChipDerates []ChipDerate `json:"chip_derates,omitempty"`
	// ExtScale scales the off-chip SDRAM channel bandwidth; 0 means unset
	// (treated as 1). Valid values are in (0, 1].
	ExtScale float64     `json:"ext_scale,omitempty"`
	Links    []LinkFault `json:"links,omitempty"`
	DMAs     []DMAFault  `json:"dmas,omitempty"`
}

// Empty reports whether the plan injects nothing (seed alone does not
// make a plan non-empty).
func (p *Plan) Empty() bool {
	return len(p.Halts) == 0 && len(p.Derates) == 0 &&
		len(p.ChipHalts) == 0 && len(p.ChipDerates) == 0 &&
		(p.ExtScale == 0 || p.ExtScale == 1) &&
		len(p.Links) == 0 && len(p.DMAs) == 0
}

// Validate checks every fault entry's ranges and rejects duplicate
// targets (two derates for one core, two link faults for one exact
// (from, to) pair, ...), which would make the canonical text form
// ambiguous.
func (p *Plan) Validate() error {
	seenHalt := map[int]bool{}
	for _, h := range p.Halts {
		if h < 0 {
			return fmt.Errorf("fault: halt of negative core %d", h)
		}
		if seenHalt[h] {
			return fmt.Errorf("fault: core %d halted twice", h)
		}
		seenHalt[h] = true
	}
	seenDer := map[int]bool{}
	for _, d := range p.Derates {
		if d.Core < 0 {
			return fmt.Errorf("fault: derate of negative core %d", d.Core)
		}
		if !(d.Factor >= 1) || math.IsInf(d.Factor, 0) {
			return fmt.Errorf("fault: derate factor %v of core %d is not a finite value >= 1", d.Factor, d.Core)
		}
		if seenDer[d.Core] {
			return fmt.Errorf("fault: core %d derated twice", d.Core)
		}
		seenDer[d.Core] = true
	}
	seenChipHalt := map[int]bool{}
	for _, h := range p.ChipHalts {
		if h < 0 {
			return fmt.Errorf("fault: halt of negative chip %d", h)
		}
		if seenChipHalt[h] {
			return fmt.Errorf("fault: chip %d halted twice", h)
		}
		seenChipHalt[h] = true
	}
	seenChipDer := map[int]bool{}
	for _, d := range p.ChipDerates {
		if d.Chip < 0 {
			return fmt.Errorf("fault: derate of negative chip %d", d.Chip)
		}
		if !(d.Factor >= 1) || math.IsInf(d.Factor, 0) {
			return fmt.Errorf("fault: derate factor %v of chip %d is not a finite value >= 1", d.Factor, d.Chip)
		}
		if seenChipDer[d.Chip] {
			return fmt.Errorf("fault: chip %d derated twice", d.Chip)
		}
		seenChipDer[d.Chip] = true
	}
	if p.ExtScale != 0 && !(p.ExtScale > 0 && p.ExtScale <= 1) {
		return fmt.Errorf("fault: ext-derate scale %v outside (0, 1]", p.ExtScale)
	}
	seenLink := map[[2]int]bool{}
	for _, l := range p.Links {
		if l.From < -1 || l.To < -1 {
			return fmt.Errorf("fault: link %d->%d has an invalid endpoint", l.From, l.To)
		}
		if err := checkFaultParams("link", l.Rate, l.TimeoutCycles, l.BackoffCycles, l.MaxRetries); err != nil {
			return err
		}
		key := [2]int{l.From, l.To}
		if seenLink[key] {
			return fmt.Errorf("fault: link %d->%d configured twice", l.From, l.To)
		}
		seenLink[key] = true
	}
	seenDMA := map[int]bool{}
	for _, d := range p.DMAs {
		if d.Core < -1 {
			return fmt.Errorf("fault: dma fault on invalid core %d", d.Core)
		}
		if err := checkFaultParams("dma", d.Rate, d.TimeoutCycles, 0, d.MaxRetries); err != nil {
			return err
		}
		if seenDMA[d.Core] {
			return fmt.Errorf("fault: dma fault on core %d configured twice", d.Core)
		}
		seenDMA[d.Core] = true
	}
	return nil
}

func checkFaultParams(kind string, rate, timeout, backoff float64, retries int) error {
	if !(rate >= 0 && rate <= 1) {
		return fmt.Errorf("fault: %s rate %v outside [0, 1]", kind, rate)
	}
	if !(timeout >= 0) || math.IsInf(timeout, 0) {
		return fmt.Errorf("fault: %s timeout %v is not a finite non-negative value", kind, timeout)
	}
	if !(backoff >= 0) || math.IsInf(backoff, 0) {
		return fmt.Errorf("fault: %s backoff %v is not a finite non-negative value", kind, backoff)
	}
	if retries < 0 || retries > MaxRetryCap {
		return fmt.Errorf("fault: %s retries %d outside [0, %d]", kind, retries, MaxRetryCap)
	}
	return nil
}

// Injector is a compiled, immutable Plan: the oracle the emulator's hook
// points query. All methods are safe for concurrent use (the receiver is
// never mutated after Compile).
type Injector struct {
	plan       Plan
	halted     map[int]bool
	derate     map[int]float64
	chipHalted map[int]bool
	chipDerate map[int]float64
	extScale   float64
	links      []LinkFault
	dmas       []DMAFault
}

// Compile validates the plan, fills in default timeout/backoff/retry
// parameters, and returns the immutable Injector.
func (p Plan) Compile() (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		plan:       p,
		halted:     make(map[int]bool, len(p.Halts)),
		derate:     make(map[int]float64, len(p.Derates)),
		chipHalted: make(map[int]bool, len(p.ChipHalts)),
		chipDerate: make(map[int]float64, len(p.ChipDerates)),
		extScale:   1,
	}
	if p.ExtScale != 0 {
		inj.extScale = p.ExtScale
	}
	for _, h := range p.Halts {
		inj.halted[h] = true
	}
	for _, d := range p.Derates {
		inj.derate[d.Core] = d.Factor
	}
	for _, h := range p.ChipHalts {
		inj.chipHalted[h] = true
	}
	for _, d := range p.ChipDerates {
		inj.chipDerate[d.Chip] = d.Factor
	}
	inj.links = append([]LinkFault(nil), p.Links...)
	for i := range inj.links {
		l := &inj.links[i]
		if l.TimeoutCycles == 0 {
			l.TimeoutCycles = DefaultLinkTimeout
		}
		if l.BackoffCycles == 0 {
			l.BackoffCycles = DefaultLinkBackoff
		}
		if l.MaxRetries == 0 {
			l.MaxRetries = DefaultLinkRetries
		}
	}
	inj.dmas = append([]DMAFault(nil), p.DMAs...)
	for i := range inj.dmas {
		d := &inj.dmas[i]
		if d.TimeoutCycles == 0 {
			d.TimeoutCycles = DefaultDMATimeout
		}
		if d.MaxRetries == 0 {
			d.MaxRetries = DefaultDMARetries
		}
	}
	return inj, nil
}

// MustCompile is Compile for known-good plans (tests, examples); it
// panics on error.
func MustCompile(p Plan) *Injector {
	inj, err := p.Compile()
	if err != nil {
		panic(err)
	}
	return inj
}

// Plan returns a copy of the source plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// Empty reports whether the injector changes nothing — the emulator's
// bit-identical no-op case.
func (inj *Injector) Empty() bool { return inj.plan.Empty() }

// Halted reports whether the given core is hard-halted.
func (inj *Injector) Halted(core int) bool { return inj.halted[core] }

// HaltedCores returns the halted core IDs in ascending order.
func (inj *Injector) HaltedCores() []int {
	out := make([]int, 0, len(inj.halted))
	for c := range inj.halted {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Slowdown returns the core's frequency-derating factor (1 when the core
// is not derated).
func (inj *Injector) Slowdown(core int) float64 {
	if f, ok := inj.derate[core]; ok {
		return f
	}
	return 1
}

// ChipHalted reports whether the given chip of a multi-chip array is
// hard-halted.
func (inj *Injector) ChipHalted(chip int) bool { return inj.chipHalted[chip] }

// HaltedChips returns the halted chip IDs in ascending order.
func (inj *Injector) HaltedChips() []int {
	out := make([]int, 0, len(inj.chipHalted))
	for c := range inj.chipHalted {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ChipSlowdown returns the chip's frequency-derating factor (1 when the
// chip is not derated).
func (inj *Injector) ChipSlowdown(chip int) float64 {
	if f, ok := inj.chipDerate[chip]; ok {
		return f
	}
	return 1
}

// ExtScale returns the off-chip bandwidth scale in (0, 1]; 1 when the
// channel is healthy.
func (inj *Injector) ExtScale() float64 { return inj.extScale }

// LinkFaultFor returns the most specific configured fault for the link
// from->to: an exact match beats a single-wildcard match beats the
// all-wildcard match.
func (inj *Injector) LinkFaultFor(from, to int) (LinkFault, bool) {
	best, bestScore := LinkFault{}, -1
	for _, l := range inj.links {
		if (l.From != -1 && l.From != from) || (l.To != -1 && l.To != to) {
			continue
		}
		score := 0
		if l.From != -1 {
			score++
		}
		if l.To != -1 {
			score++
		}
		if score > bestScore {
			best, bestScore = l, score
		}
	}
	return best, bestScore >= 0
}

// DMAFaultFor returns the most specific configured DMA fault for the
// given issuing core.
func (inj *Injector) DMAFaultFor(core int) (DMAFault, bool) {
	best, bestScore := DMAFault{}, -1
	for _, d := range inj.dmas {
		if d.Core != -1 && d.Core != core {
			continue
		}
		score := 0
		if d.Core != -1 {
			score++
		}
		if score > bestScore {
			best, bestScore = d, score
		}
	}
	return best, bestScore >= 0
}

// LinkRetries returns how many retransmissions transfer number idx on the
// link from->to suffers: attempts fail independently with the configured
// rate until one succeeds or MaxRetries failures force the transfer
// through. Zero when the link has no configured fault.
func (inj *Injector) LinkRetries(from, to int, idx uint64) int {
	l, ok := inj.LinkFaultFor(from, to)
	if !ok || l.Rate == 0 {
		return 0
	}
	stream := linkStream(from, to)
	n := 0
	for n < l.MaxRetries && inj.fails(stream, idx, uint64(n), l.Rate) {
		n++
	}
	return n
}

// DMARetries returns how many completion timeouts DMA descriptor number
// idx issued by the given core suffers.
func (inj *Injector) DMARetries(core int, idx uint64) int {
	d, ok := inj.DMAFaultFor(core)
	if !ok || d.Rate == 0 {
		return 0
	}
	stream := dmaStream(core)
	n := 0
	for n < d.MaxRetries && inj.fails(stream, idx, uint64(n), d.Rate) {
		n++
	}
	return n
}

// Fault stream identifiers: disjoint uint64 namespaces per fault class so
// link and DMA draws never alias.
func linkStream(from, to int) uint64 {
	return 1<<40 | uint64(uint32(from))<<20 | uint64(uint32(to))&0xfffff
}
func dmaStream(core int) uint64 { return 2<<40 | uint64(uint32(core)) }

// fails draws the deterministic Bernoulli variable for one attempt.
func (inj *Injector) fails(stream, idx, attempt uint64, rate float64) bool {
	h := mix(uint64(inj.plan.Seed))
	h = mix(h ^ stream)
	h = mix(h ^ idx)
	h = mix(h ^ attempt)
	u := float64(h>>11) / (1 << 53) // uniform in [0, 1)
	return u < rate
}

// mix is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
