package fault

import (
	"math"
	"strings"
	"testing"
)

func TestEmptyPlanIsIdentity(t *testing.T) {
	var p Plan
	if !p.Empty() {
		t.Fatal("zero plan should be empty")
	}
	inj, err := p.Compile()
	if err != nil {
		t.Fatalf("compiling the empty plan: %v", err)
	}
	if !inj.Empty() {
		t.Fatal("compiled empty plan should stay empty")
	}
	if inj.Halted(0) || len(inj.HaltedCores()) != 0 {
		t.Error("empty plan halts a core")
	}
	if s := inj.Slowdown(3); s != 1 {
		t.Errorf("Slowdown = %v, want the identity 1", s)
	}
	if s := inj.ExtScale(); s != 1 {
		t.Errorf("ExtScale = %v, want the identity 1", s)
	}
	if _, ok := inj.LinkFaultFor(0, 1); ok {
		t.Error("empty plan configures a link fault")
	}
	if n := inj.LinkRetries(0, 1, 7); n != 0 {
		t.Errorf("LinkRetries = %d, want 0", n)
	}
	if n := inj.DMARetries(2, 7); n != 0 {
		t.Errorf("DMARetries = %d, want 0", n)
	}
	// ExtScale 1 spelled out explicitly is still the empty plan.
	p1 := Plan{ExtScale: 1}
	if !p1.Empty() {
		t.Error("plan with ExtScale=1 should be empty")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error; "" means valid
	}{
		{"zero", Plan{}, ""},
		{"full", Plan{
			Seed:     42,
			Halts:    []int{5},
			Derates:  []Derate{{Core: 3, Factor: 1.5}},
			ExtScale: 0.5,
			Links:    []LinkFault{{From: 0, To: 1, Rate: 0.1}},
			DMAs:     []DMAFault{{Core: -1, Rate: 0.02}},
		}, ""},
		{"negative halt", Plan{Halts: []int{-2}}, "negative core"},
		{"dup halt", Plan{Halts: []int{1, 1}}, "halted twice"},
		{"derate below one", Plan{Derates: []Derate{{Core: 0, Factor: 0.5}}}, "not a finite value >= 1"},
		{"derate NaN", Plan{Derates: []Derate{{Core: 0, Factor: math.NaN()}}}, "not a finite value >= 1"},
		{"derate Inf", Plan{Derates: []Derate{{Core: 0, Factor: math.Inf(1)}}}, "not a finite value >= 1"},
		{"dup derate", Plan{Derates: []Derate{{Core: 2, Factor: 2}, {Core: 2, Factor: 3}}}, "derated twice"},
		{"ext scale zero-ish", Plan{ExtScale: -0.5}, "outside (0, 1]"},
		{"ext scale above one", Plan{ExtScale: 1.5}, "outside (0, 1]"},
		{"ext scale NaN", Plan{ExtScale: math.NaN()}, "outside (0, 1]"},
		{"link rate above one", Plan{Links: []LinkFault{{From: 0, To: 1, Rate: 2}}}, "outside [0, 1]"},
		{"link rate NaN", Plan{Links: []LinkFault{{From: 0, To: 1, Rate: math.NaN()}}}, "outside [0, 1]"},
		{"link timeout Inf", Plan{Links: []LinkFault{{From: 0, To: 1, Rate: 0.1, TimeoutCycles: math.Inf(1)}}}, "not a finite non-negative"},
		{"link backoff negative", Plan{Links: []LinkFault{{From: 0, To: 1, Rate: 0.1, BackoffCycles: -3}}}, "not a finite non-negative"},
		{"link retries above cap", Plan{Links: []LinkFault{{From: 0, To: 1, Rate: 0.1, MaxRetries: MaxRetryCap + 1}}}, "retries"},
		{"link bad endpoint", Plan{Links: []LinkFault{{From: -3, To: 1, Rate: 0.1}}}, "invalid endpoint"},
		{"dup link", Plan{Links: []LinkFault{{From: 0, To: 1, Rate: 0.1}, {From: 0, To: 1, Rate: 0.2}}}, "configured twice"},
		{"dma bad core", Plan{DMAs: []DMAFault{{Core: -2, Rate: 0.1}}}, "invalid core"},
		{"dup dma", Plan{DMAs: []DMAFault{{Core: 4, Rate: 0.1}, {Core: 4, Rate: 0.2}}}, "configured twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCompileFillsDefaults(t *testing.T) {
	p := Plan{
		Links: []LinkFault{{From: 0, To: 1, Rate: 0.1}},
		DMAs:  []DMAFault{{Core: 2, Rate: 0.05}},
	}
	inj := MustCompile(p)
	l, ok := inj.LinkFaultFor(0, 1)
	if !ok {
		t.Fatal("link fault not found")
	}
	if l.TimeoutCycles != DefaultLinkTimeout || l.BackoffCycles != DefaultLinkBackoff || l.MaxRetries != DefaultLinkRetries {
		t.Errorf("link defaults not applied: %+v", l)
	}
	d, ok := inj.DMAFaultFor(2)
	if !ok {
		t.Fatal("dma fault not found")
	}
	if d.TimeoutCycles != DefaultDMATimeout || d.MaxRetries != DefaultDMARetries {
		t.Errorf("dma defaults not applied: %+v", d)
	}
	// Compile must not mutate the caller's plan.
	if p.Links[0].TimeoutCycles != 0 {
		t.Error("Compile mutated the source plan")
	}
}

func TestHaltedCoresSorted(t *testing.T) {
	inj := MustCompile(Plan{Halts: []int{9, 2, 5}})
	got := inj.HaltedCores()
	want := []int{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("HaltedCores() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HaltedCores() = %v, want %v", got, want)
		}
	}
	if !inj.Halted(5) || inj.Halted(3) {
		t.Error("Halted() disagrees with the plan")
	}
}

func TestWildcardSpecificity(t *testing.T) {
	inj := MustCompile(Plan{Links: []LinkFault{
		{From: -1, To: -1, Rate: 0.01},
		{From: -1, To: 7, Rate: 0.02},
		{From: 3, To: 7, Rate: 0.03},
	}})
	cases := []struct {
		from, to int
		rate     float64
	}{
		{3, 7, 0.03},  // exact beats both wildcards
		{5, 7, 0.02},  // single wildcard beats the catch-all
		{3, 9, 0.01},  // only the catch-all matches
		{11, 0, 0.01}, // catch-all
	}
	for _, tc := range cases {
		l, ok := inj.LinkFaultFor(tc.from, tc.to)
		if !ok || l.Rate != tc.rate {
			t.Errorf("LinkFaultFor(%d,%d) rate = %v (ok=%v), want %v", tc.from, tc.to, l.Rate, ok, tc.rate)
		}
	}

	dinj := MustCompile(Plan{DMAs: []DMAFault{
		{Core: -1, Rate: 0.01},
		{Core: 4, Rate: 0.05},
	}})
	if d, _ := dinj.DMAFaultFor(4); d.Rate != 0.05 {
		t.Errorf("DMAFaultFor(4) rate = %v, want the exact match 0.05", d.Rate)
	}
	if d, _ := dinj.DMAFaultFor(6); d.Rate != 0.01 {
		t.Errorf("DMAFaultFor(6) rate = %v, want the wildcard 0.01", d.Rate)
	}
}

func TestRetryDeterminism(t *testing.T) {
	p := Plan{
		Seed:  1234,
		Links: []LinkFault{{From: -1, To: -1, Rate: 0.3}},
		DMAs:  []DMAFault{{Core: -1, Rate: 0.2}},
	}
	a, b := MustCompile(p), MustCompile(p)
	for idx := uint64(0); idx < 500; idx++ {
		if x, y := a.LinkRetries(0, 1, idx), b.LinkRetries(0, 1, idx); x != y {
			t.Fatalf("link retries diverge at idx %d: %d vs %d", idx, x, y)
		}
		if x, y := a.DMARetries(3, idx), b.DMARetries(3, idx); x != y {
			t.Fatalf("dma retries diverge at idx %d: %d vs %d", idx, x, y)
		}
	}

	// A different seed must produce a different fault stream.
	p2 := p
	p2.Seed = 4321
	c := MustCompile(p2)
	same := true
	for idx := uint64(0); idx < 500 && same; idx++ {
		same = a.LinkRetries(0, 1, idx) == c.LinkRetries(0, 1, idx)
	}
	if same {
		t.Error("seeds 1234 and 4321 produced identical retry streams")
	}

	// Distinct links draw from distinct streams.
	same = true
	for idx := uint64(0); idx < 500 && same; idx++ {
		same = a.LinkRetries(0, 1, idx) == a.LinkRetries(1, 0, idx)
	}
	if same {
		t.Error("links 0->1 and 1->0 share a fault stream")
	}
}

func TestRetryDistribution(t *testing.T) {
	const rate = 0.25
	inj := MustCompile(Plan{Seed: 7, Links: []LinkFault{{From: -1, To: -1, Rate: rate}}})
	const n = 20000
	failed := 0
	for idx := uint64(0); idx < n; idx++ {
		if inj.LinkRetries(0, 1, idx) > 0 {
			failed++
		}
	}
	got := float64(failed) / n
	if math.Abs(got-rate) > 0.02 {
		t.Errorf("first-attempt failure fraction = %.4f, want ~%.2f", got, rate)
	}
}

func TestRetriesForcedThrough(t *testing.T) {
	// Rate 1 fails every attempt; the transfer must still be forced
	// through after MaxRetries so a plan can never deadlock a run.
	inj := MustCompile(Plan{Links: []LinkFault{{From: 0, To: 1, Rate: 1, MaxRetries: 3}}})
	for idx := uint64(0); idx < 10; idx++ {
		if n := inj.LinkRetries(0, 1, idx); n != 3 {
			t.Fatalf("LinkRetries at rate 1 = %d, want exactly MaxRetries 3", n)
		}
	}
	dinj := MustCompile(Plan{DMAs: []DMAFault{{Core: -1, Rate: 1, MaxRetries: 2}}})
	if n := dinj.DMARetries(0, 0); n != 2 {
		t.Fatalf("DMARetries at rate 1 = %d, want exactly MaxRetries 2", n)
	}
}
