package fault

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseFull(t *testing.T) {
	text := `
# chaos scenario: one dead core, one slow core, flaky links
seed 42
halt 5
derate 3 1.5
ext-derate 0.5
link 0 1 0.1 timeout 500 backoff 64 retries 8
link * 12 0.05
dma * 0.02 timeout 200 retries 4
`
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed:     42,
		Halts:    []int{5},
		Derates:  []Derate{{Core: 3, Factor: 1.5}},
		ExtScale: 0.5,
		Links: []LinkFault{
			{From: 0, To: 1, Rate: 0.1, TimeoutCycles: 500, BackoffCycles: 64, MaxRetries: 8},
			{From: -1, To: 12, Rate: 0.05},
		},
		DMAs: []DMAFault{{Core: -1, Rate: 0.02, TimeoutCycles: 200, MaxRetries: 4}},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("Parse mismatch:\n got %+v\nwant %+v", p, want)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	p := Plan{
		Seed:     99,
		Halts:    []int{7, 2}, // deliberately unsorted
		Derates:  []Derate{{Core: 9, Factor: 2}, {Core: 1, Factor: 1.25}},
		ExtScale: 0.75,
		Links:    []LinkFault{{From: 4, To: -1, Rate: 0.2, BackoffCycles: 32}},
		DMAs:     []DMAFault{{Core: 6, Rate: 0.01, MaxRetries: 2}},
	}
	s := p.String()
	p2, err := Parse(s)
	if err != nil {
		t.Fatalf("parsing String() output %q: %v", s, err)
	}
	if s2 := p2.String(); s2 != s {
		t.Fatalf("String is not a Parse fixpoint:\n first %q\nsecond %q", s, s2)
	}
	// The canonical form sorts halts and derates.
	if !strings.Contains(s, "halt 2\nhalt 7\n") {
		t.Errorf("halts not sorted in %q", s)
	}
	if strings.Index(s, "derate 1 ") > strings.Index(s, "derate 9 ") {
		t.Errorf("derates not sorted by core in %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"unknown directive", "frobnicate 3", `unknown directive "frobnicate"`},
		{"seed argc", "seed", "seed wants 1 argument"},
		{"seed value", "seed x", `bad seed "x"`},
		{"halt wildcard", "halt *", "wildcard core not allowed"},
		{"halt value", "halt -3", `bad core "-3"`},
		{"derate argc", "derate 3", "derate wants <core> <factor>"},
		{"derate factor", "derate 3 x", `bad number "x"`},
		{"derate range", "derate 3 0.5", "not a finite value >= 1"},
		{"ext range", "ext-derate 2", "outside (0, 1]"},
		{"link argc", "link 0 1", "link wants <from> <to> <rate>"},
		{"link option", "link 0 1 0.1 jitter 5", `unknown option "jitter"`},
		{"link dangling option", "link 0 1 0.1 timeout", `option "timeout" has no value`},
		{"link retries fraction", "link 0 1 0.1 retries 1.5", `bad retries "1.5"`},
		{"link retries cap", "link 0 1 0.1 retries 21", `bad retries "21"`},
		{"dma argc", "dma 3", "dma wants <core> <rate>"},
		{"dup from validate", "derate 3 2\nderate 3 2", "derated twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error = %v, want containing %q", tc.text, err, tc.want)
			}
		})
	}
	// Line numbers point at the offending line, 1-based, counting comments.
	_, err := Parse("# fine\nseed 1\nhalt *\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not name line 3", err)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	p, err := Parse("\n  # all comments\nseed 5 # trailing comment\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 5 || !p.Empty() {
		t.Fatalf("got %+v, want empty plan with seed 5", p)
	}
}

func TestParseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.txt")
	if err := os.WriteFile(path, []byte("seed 11\nhalt 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 11 || len(p.Halts) != 1 || p.Halts[0] != 1 {
		t.Fatalf("ParseFile = %+v", p)
	}
	if _, err := ParseFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("ParseFile of a missing file should fail")
	}
}
