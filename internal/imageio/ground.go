package imageio

import (
	"fmt"
	"math"

	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
)

// Back-projected images live on a polar (beam x range) grid relative to
// the aperture centre. For display and geocoding they are resampled onto a
// Cartesian ground raster: rows step in cross-track (y), columns in
// along-track (x). This file performs that resampling.

// GroundSpec describes a Cartesian ground raster: pixel (r, c) sits at
//
//	x = X0 + c*Res    (along-track)
//	y = Y0 + r*Res    (cross-track)
type GroundSpec struct {
	X0, Y0 float64
	Res    float64
	Rows   int
	Cols   int
}

// GroundSpecFor returns a raster covering the scene box at the given pixel
// resolution (metres).
func GroundSpecFor(box geom.SceneBox, res float64) (GroundSpec, error) {
	if res <= 0 {
		return GroundSpec{}, fmt.Errorf("imageio: resolution %v <= 0", res)
	}
	w := box.UMax - box.UMin
	h := box.YMax - box.YMin
	if w <= 0 || h <= 0 {
		return GroundSpec{}, fmt.Errorf("imageio: empty scene box %+v", box)
	}
	return GroundSpec{
		X0: box.UMin, Y0: box.YMin, Res: res,
		Rows: int(h/res) + 1,
		Cols: int(w/res) + 1,
	}, nil
}

// ToGround resamples a polar image (rows = beams on grid g, relative to a
// subaperture centred at track position center) onto the Cartesian raster
// spec, using the given interpolation kernel. Raster pixels outside the
// polar grid become zero.
func ToGround(img *mat.C, g geom.PolarGrid, center float64, spec GroundSpec, kind interp.Kind) *mat.C {
	out := mat.NewC(spec.Rows, spec.Cols)
	for r := 0; r < spec.Rows; r++ {
		y := spec.Y0 + float64(r)*spec.Res
		row := out.Row(r)
		for c := 0; c < spec.Cols; c++ {
			x := spec.X0 + float64(c)*spec.Res
			rr := math.Hypot(x-center, y)
			th := math.Atan2(y, x-center)
			row[c] = interp.At2(img, g.ThetaIndex(th), g.RangeIndex(rr), kind)
		}
	}
	return out
}
