// Package imageio renders complex SAR images to grayscale picture files
// (PGM and PNG), reproducing the presentation of the paper's Fig. 7:
// magnitude on a logarithmic (dB) scale, clipped to a chosen dynamic range
// below the image peak.
package imageio

import (
	"fmt"
	"image"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"strings"

	"sarmany/internal/cf"
	"sarmany/internal/mat"
)

// Render converts a complex image to 8-bit grayscale: pixel brightness is
// the magnitude in dB relative to the image peak, with dynamicRangeDB of
// range mapped onto 0..255 (the peak is white). A zero image renders
// black.
func Render(img *mat.C, dynamicRangeDB float64) *image.Gray {
	if dynamicRangeDB <= 0 {
		dynamicRangeDB = 60
	}
	out := image.NewGray(image.Rect(0, 0, img.Cols, img.Rows))
	var peak float64
	for r := 0; r < img.Rows; r++ {
		for _, v := range img.Row(r) {
			if m := float64(cf.Abs2(v)); m > peak {
				peak = m
			}
		}
	}
	if peak == 0 {
		return out
	}
	for r := 0; r < img.Rows; r++ {
		row := img.Row(r)
		for c, v := range row {
			m := float64(cf.Abs2(v))
			var db float64
			if m <= 0 {
				db = -dynamicRangeDB
			} else {
				db = 10 * math.Log10(m/peak) // power dB
				if db < -dynamicRangeDB {
					db = -dynamicRangeDB
				}
			}
			level := 255 * (db + dynamicRangeDB) / dynamicRangeDB
			if level < 0 {
				level = 0
			}
			if level > 255 {
				level = 255
			}
			out.Pix[r*out.Stride+c] = uint8(level)
		}
	}
	return out
}

// Save writes a complex image to path, choosing the format from the
// extension: .png or .pgm. The image is rendered with Render at the given
// dynamic range in dB.
func Save(path string, img *mat.C, dynamicRangeDB float64) error {
	g := Render(img, dynamicRangeDB)
	switch strings.ToLower(filepath.Ext(path)) {
	case ".png":
		return WritePNG(path, g)
	case ".pgm":
		return WritePGM(path, g)
	default:
		return fmt.Errorf("imageio: unsupported extension in %q (want .png or .pgm)", path)
	}
}

// WritePNG writes a grayscale image as PNG.
func WritePNG(path string, g *image.Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := png.Encode(f, g); err != nil {
		return err
	}
	return f.Sync()
}

// WritePGM writes a grayscale image in binary PGM (P5) format.
func WritePGM(path string, g *image.Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	b := g.Bounds()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", b.Dx(), b.Dy()); err != nil {
		return err
	}
	for y := b.Min.Y; y < b.Max.Y; y++ {
		row := g.Pix[y*g.Stride : y*g.Stride+b.Dx()]
		if _, err := f.Write(row); err != nil {
			return err
		}
	}
	return f.Sync()
}
