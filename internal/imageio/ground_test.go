package imageio

import (
	"math"
	"testing"

	"sarmany/internal/cf"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
)

func TestGroundSpecFor(t *testing.T) {
	box := geom.SceneBox{UMin: -50, UMax: 50, YMin: 500, YMax: 560}
	spec, err := GroundSpecFor(box, 2)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cols != 51 || spec.Rows != 31 {
		t.Errorf("raster %dx%d", spec.Rows, spec.Cols)
	}
	if spec.X0 != -50 || spec.Y0 != 500 {
		t.Errorf("origin (%v, %v)", spec.X0, spec.Y0)
	}
	if _, err := GroundSpecFor(box, 0); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := GroundSpecFor(geom.SceneBox{}, 1); err == nil {
		t.Error("empty box accepted")
	}
}

func TestToGroundPlacesPolarPeak(t *testing.T) {
	// A single bright pixel at known polar coordinates must land at the
	// corresponding Cartesian position.
	box := geom.SceneBox{UMin: -40, UMax: 40, YMin: 480, YMax: 560}
	ap := geom.Aperture{Center: 0, Length: 100}
	g := box.GridFor(ap, 64, 81, 480, 1)

	img := mat.NewC(64, 81)
	bt, bi := 30, 45
	img.Set(bt, bi, 100)
	th := g.Theta(bt)
	rr := g.Range(bi)
	x := rr * math.Cos(th)
	y := rr * math.Sin(th)

	spec, err := GroundSpecFor(box, 1)
	if err != nil {
		t.Fatal(err)
	}
	ground := ToGround(img, g, 0, spec, interp.Linear)
	if ground.Rows != spec.Rows || ground.Cols != spec.Cols {
		t.Fatalf("ground dims %dx%d", ground.Rows, ground.Cols)
	}
	// Find the ground peak.
	var pr, pc int
	var pv float32
	for r := 0; r < ground.Rows; r++ {
		for c, v := range ground.Row(r) {
			if a := cf.Abs2(v); a > pv {
				pr, pc, pv = r, c, a
			}
		}
	}
	wr := int(math.Round((y - spec.Y0) / spec.Res))
	wc := int(math.Round((x - spec.X0) / spec.Res))
	if absInt(pr-wr) > 1 || absInt(pc-wc) > 1 {
		t.Errorf("ground peak at (%d,%d), want (%d,%d)", pr, pc, wr, wc)
	}
	if pv == 0 {
		t.Error("peak vanished in resampling")
	}
}

func TestToGroundOffCenterAperture(t *testing.T) {
	// The same polar pixel, seen from an off-centre subaperture, must land
	// shifted along-track by the centre offset.
	box := geom.SceneBox{UMin: -60, UMax: 60, YMin: 480, YMax: 560}
	apC := geom.Aperture{Center: 0, Length: 50}
	apO := geom.Aperture{Center: 20, Length: 50}
	gC := box.GridFor(apC, 32, 81, 480, 1)
	gO := box.GridFor(apO, 32, 81, 480, 1)

	spec, err := GroundSpecFor(box, 1)
	if err != nil {
		t.Fatal(err)
	}
	peakOf := func(m *mat.C) (int, int) {
		var pr, pc int
		var pv float32
		for r := 0; r < m.Rows; r++ {
			for c, v := range m.Row(r) {
				if a := cf.Abs2(v); a > pv {
					pr, pc, pv = r, c, a
				}
			}
		}
		return pr, pc
	}
	// Target at scene point (10, 520): polar positions differ per frame.
	placeAndProject := func(g geom.PolarGrid, center float64) (int, int) {
		img := mat.NewC(32, 81)
		rr := math.Hypot(10-center, 520)
		th := math.Atan2(520, 10-center)
		img.Set(int(math.Round(g.ThetaIndex(th))), int(math.Round(g.RangeIndex(rr))), 50)
		return peakOf(ToGround(img, g, center, spec, interp.Linear))
	}
	r1, c1 := placeAndProject(gC, 0)
	r2, c2 := placeAndProject(gO, 20)
	// Both frames should reconstruct the same scene position (within the
	// rounding of placing the polar pixel).
	if absInt(r1-r2) > 2 || absInt(c1-c2) > 2 {
		t.Errorf("frames disagree: (%d,%d) vs (%d,%d)", r1, c1, r2, c2)
	}
}

func TestToGroundOutsideGridIsZero(t *testing.T) {
	box := geom.SceneBox{UMin: -10, UMax: 10, YMin: 500, YMax: 520}
	ap := geom.Aperture{Center: 0, Length: 10}
	g := box.GridFor(ap, 8, 21, 500, 1)
	img := mat.NewC(8, 21)
	img.Fill(1)
	// Raster extending far beyond the polar grid's range interval.
	spec := GroundSpec{X0: -10, Y0: 560, Res: 1, Rows: 5, Cols: 5}
	ground := ToGround(img, g, 0, spec, interp.Nearest)
	for r := 0; r < 5; r++ {
		for _, v := range ground.Row(r) {
			if v != 0 {
				t.Fatalf("out-of-grid pixel %v", v)
			}
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
