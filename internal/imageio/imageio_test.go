package imageio

import (
	"bufio"
	"fmt"
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"sarmany/internal/mat"
)

func testImage() *mat.C {
	img := mat.NewC(4, 6)
	img.Set(1, 2, complex(10, 0)) // peak
	img.Set(2, 3, complex(1, 0))  // -20 dB
	return img
}

func TestRenderPeakWhite(t *testing.T) {
	g := Render(testImage(), 60)
	if got := g.GrayAt(2, 1).Y; got != 255 {
		t.Errorf("peak pixel = %d, want 255", got)
	}
	// -20 dB of a 60 dB range: 255*(40/60) = 170.
	if got := g.GrayAt(3, 2).Y; got < 168 || got > 172 {
		t.Errorf("-20 dB pixel = %d, want ~170", got)
	}
	// Zero pixels at the bottom of the range.
	if got := g.GrayAt(0, 0).Y; got != 0 {
		t.Errorf("zero pixel = %d", got)
	}
}

func TestRenderZeroImage(t *testing.T) {
	g := Render(mat.NewC(3, 3), 60)
	for i := range g.Pix {
		if g.Pix[i] != 0 {
			t.Fatal("zero image not black")
		}
	}
}

func TestRenderDefaultRange(t *testing.T) {
	g := Render(testImage(), 0) // falls back to 60 dB
	if got := g.GrayAt(2, 1).Y; got != 255 {
		t.Errorf("peak = %d", got)
	}
}

func TestSavePNGRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.png")
	if err := Save(path, testImage(), 60); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 6 || decoded.Bounds().Dy() != 4 {
		t.Errorf("decoded bounds %v", decoded.Bounds())
	}
}

func TestSavePGMFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.pgm")
	if err := Save(path, testImage(), 60); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscanf(r, "P%s\n%d %d\n%d\n", &magic, &w, &h, &maxv); err != nil {
		t.Fatal(err)
	}
	magic = "P" + magic
	if magic != "P5" || w != 6 || h != 4 || maxv != 255 {
		t.Errorf("header %q %d %d %d", magic, w, h, maxv)
	}
	rest := make([]byte, w*h+1)
	n, _ := r.Read(rest)
	if n != w*h {
		t.Errorf("payload %d bytes, want %d", n, w*h)
	}
}

func TestSaveUnknownExtension(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "img.bmp"), testImage(), 60); err == nil {
		t.Error("unknown extension accepted")
	}
}
