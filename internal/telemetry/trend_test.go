package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", s)
	}
	if s := Sparkline([]float64{5, 5, 5}); s != "▅▅▅" {
		t.Errorf("flat sparkline = %q", s)
	}
	if s := Sparkline([]float64{1, math.NaN(), 2}); s != "▁ █" {
		t.Errorf("gap sparkline = %q", s)
	}
	if s := Sparkline(nil); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
}

func TestLeafValueAndTrend(t *testing.T) {
	e := testEntry(time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC), 1e6)
	v, ok := LeafValue(e, "metrics.emu.cycles.total")
	if !ok || v != 1e6 {
		t.Fatalf("leaf = %v, %v", v, ok)
	}
	if _, ok := LeafValue(e, "metrics.no.such.leaf"); ok {
		t.Error("missing leaf resolved")
	}

	var sb strings.Builder
	pts := []TrendPoint{
		{ID: "aaa", Start: "2026-08-08 10:00", Value: 100, OK: true},
		{ID: "bbb", Start: "2026-08-08 11:00", OK: false},
		{ID: "ccc", Start: "2026-08-08 12:00", Value: 200, OK: true},
	}
	if err := WriteTrend(&sb, "metrics.emu.cycles.total", pts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"across 3 runs", "aaa", "bbb", "-", "200", "min 100, max 200", "▁"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q:\n%s", want, out)
		}
	}
}
