package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sarmany/internal/obs"
)

// TestRecorderHeartbeat pins the live loop: samples flow into Last(),
// heartbeat events land in the ring, and the status writer receives
// carriage-return updated lines.
func TestRecorderHeartbeat(t *testing.T) {
	var cycles atomic.Uint64
	ring := obs.NewEventRing(64)
	var status strings.Builder
	var mu chanWriter
	mu.b = &status

	r := Start(Options{
		Interval: 2 * time.Millisecond,
		Progress: func() Sample {
			v := float64(cycles.Add(100))
			return Sample{Total: v, Max: v, Phases: 1, Cores: []float64{v}}
		},
		Status: &mu,
		Events: ring,
	})
	deadline := time.Now().Add(2 * time.Second)
	for ring.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent

	if ring.Len() < 3 {
		t.Fatalf("only %d heartbeat events", ring.Len())
	}
	ev := ring.Events()
	if !strings.Contains(ev[0].Msg, "heartbeat:") || !strings.Contains(ev[0].Msg, "moving=true") {
		t.Errorf("event: %q", ev[0].Msg)
	}
	if r.Last().Total == 0 {
		t.Error("Last() never updated")
	}
	out := mu.String()
	if !strings.Contains(out, "\r") || !strings.Contains(out, "cores moving") {
		t.Errorf("status output: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Stop did not finish the status line")
	}
	if r.Stalled() {
		t.Error("healthy run reported stalled")
	}
}

// chanWriter is a tiny synchronized strings.Builder (the recorder writes
// from its own goroutine).
type chanWriter struct {
	mu sync.Mutex
	b  *strings.Builder
}

func (w *chanWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *chanWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestWatchdogDumpsPostmortem wedges a run artificially (progress never
// moves) and checks the watchdog writes a post-mortem containing the
// stall reason, the flight-recorder ring and goroutine stacks — the
// acceptance criterion for the stall path.
func TestWatchdogDumpsPostmortem(t *testing.T) {
	dir := t.TempDir()
	pm := filepath.Join(dir, "postmortem.txt")
	ring := obs.NewEventRing(64)
	ring.Add("kernel launched")

	dumped := make(chan string, 1)
	r := Start(Options{
		Interval:   2 * time.Millisecond,
		StallAfter: 10 * time.Millisecond,
		Progress: func() Sample {
			return Sample{Total: 42, Max: 42, Phases: 7, Cores: []float64{42, 0}}
		},
		Events:         ring,
		PostmortemPath: pm,
		OnDump:         func(path, reason string) { dumped <- path },
	})
	defer r.Stop()

	select {
	case path := <-dumped:
		if path != pm {
			t.Errorf("dump path %q, want %q", path, pm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a wedged run")
	}
	if !r.Stalled() || r.PostmortemFile() != pm {
		t.Errorf("stalled=%v file=%q", r.Stalled(), r.PostmortemFile())
	}
	b, err := os.ReadFile(pm)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{
		"no progress for",
		"phases=7",
		"kernel launched", // the flight-recorder ring
		"heartbeat:",
		"goroutine ", // runtime.Stack output
		"core  0: 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, out)
		}
	}
	// The dump fires once, not on every subsequent heartbeat.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-dumped:
		t.Error("watchdog dumped twice")
	default:
	}
}

// TestDeadlineDumpsPostmortem pins the run-deadline path: progress keeps
// moving, but the wall-clock budget expires.
func TestDeadlineDumpsPostmortem(t *testing.T) {
	pm := filepath.Join(t.TempDir(), "pm.txt")
	var cycles atomic.Uint64
	dumped := make(chan string, 1)
	r := Start(Options{
		Interval: 2 * time.Millisecond,
		Deadline: 15 * time.Millisecond,
		Progress: func() Sample {
			return Sample{Total: float64(cycles.Add(1))}
		},
		PostmortemPath: pm,
		OnDump:         func(path, reason string) { dumped <- reason },
	})
	defer r.Stop()
	select {
	case reason := <-dumped:
		if !strings.Contains(reason, "deadline") {
			t.Errorf("reason: %q", reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
}

func TestStatusLine(t *testing.T) {
	s := Sample{Max: 12345, Phases: 3, Cores: []float64{10, 20, 0}}
	prev := Sample{Cores: []float64{5, 20, 0}}
	line := statusLine(s, prev, 1500*time.Millisecond)
	for _, want := range []string{"1.5s", "phase 3", "12345 cycles", "1/3 cores moving"} {
		if !strings.Contains(line, want) {
			t.Errorf("status %q missing %q", line, want)
		}
	}
	// First heartbeat: no previous sample, any nonzero clock counts.
	line = statusLine(s, Sample{}, time.Second)
	if !strings.Contains(line, "2/3 cores moving") {
		t.Errorf("first-sample status: %q", line)
	}
}
