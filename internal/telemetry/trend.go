package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"

	"sarmany/internal/bench"
)

// Trend rendering: tracking one numeric leaf across the run history as
// a text table plus a unicode sparkline — `sarlog trend`.

// sparkTicks are the eight block characters a sparkline is drawn with.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as one rune per value, scaled to the observed
// range. Non-finite values render as spaces; a flat series renders at
// mid height.
func Sparkline(vals []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			b.WriteByte(' ')
		case hi == lo:
			b.WriteRune(sparkTicks[len(sparkTicks)/2])
		default:
			i := int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
			b.WriteRune(sparkTicks[i])
		}
	}
	return b.String()
}

// TrendPoint is one run's value of the tracked leaf.
type TrendPoint struct {
	ID    string
	Start string // formatted start time
	Value float64
	OK    bool // false when the run has no such leaf
}

// LeafValue extracts one dotted numeric leaf (bench.DiffEnvelopes path
// syntax, e.g. "metrics.emu.cycles.total" or "envelope.data.speedup")
// from a ledger entry.
func LeafValue(e Entry, path string) (float64, bool) {
	b, err := MarshalEntry(e)
	if err != nil {
		return 0, false
	}
	leaves, err := bench.NumericLeaves(b)
	if err != nil {
		return 0, false
	}
	v, ok := leaves[path]
	return v, ok
}

// WriteTrend renders the history of one leaf: a table of run ID, start
// time and value, followed by a sparkline over the series and its
// min/max. Runs without the leaf show "-" and leave a gap in the line.
func WriteTrend(w io.Writer, path string, pts []TrendPoint) error {
	if _, err := fmt.Fprintf(w, "%s across %d runs:\n", path, len(pts)); err != nil {
		return err
	}
	vals := make([]float64, len(pts))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, p := range pts {
		vals[i] = math.NaN()
		if p.OK {
			vals[i] = p.Value
			lo = math.Min(lo, p.Value)
			hi = math.Max(hi, p.Value)
		}
		val := "-"
		if p.OK {
			val = fmt.Sprintf("%g", p.Value)
		}
		if _, err := fmt.Fprintf(w, "  %-12s  %-25s  %s\n", p.ID, p.Start, val); err != nil {
			return err
		}
	}
	if !math.IsInf(lo, 1) {
		if _, err := fmt.Fprintf(w, "  %s  (min %g, max %g)\n", Sparkline(vals), lo, hi); err != nil {
			return err
		}
	}
	return nil
}
