package telemetry

import (
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sarmany/internal/obs"
)

func expoRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("emu.cycles.total").Add(5634944)
	reg.Counter("sweep.jobs.executed").Add(16)
	reg.Gauge("energy.total_mj").Set(12.5)
	h := reg.Histogram("sweep.job.seconds")
	for i := 0; i < 100; i++ {
		h.Observe(0.010)
	}
	for i := 0; i < 5; i++ {
		h.Observe(3.0)
	}
	reg.Histogram("empty.hist")
	return reg
}

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (\S+)$`)
)

// TestPrometheusFormatValidity is the acceptance-criterion format test:
// every line of the exposition must be a well-formed TYPE comment or
// sample, every sample's base name must be declared by a preceding TYPE
// line, histogram buckets must be cumulative and end at le="+Inf" equal
// to _count, and the quantile gauges must be present and ordered.
func TestPrometheusFormatValidity(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, expoRegistry().Snapshot(), "sarmany"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	declared := map[string]string{} // metric family -> type
	type bucketSeen struct {
		last    float64
		lastCum uint64
		sawInf  bool
		infCum  uint64
	}
	buckets := map[string]*bucketSeen{}
	counts := map[string]uint64{}

	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			declared[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed line: %q", line)
		}
		name, le, val := m[1], m[3], m[4]
		// Resolve the sample back to its declared family.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && declared[base] == "histogram" {
				family = base
			}
		}
		if declared[family] == "" {
			t.Errorf("sample %q has no preceding # TYPE", name)
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
			t.Errorf("unparseable value %q on %q", val, line)
		}
		if strings.HasSuffix(name, "_bucket") {
			b := buckets[family]
			if b == nil {
				b = &bucketSeen{last: math.Inf(-1)}
				buckets[family] = b
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("unparseable le %q", le)
				}
			}
			if bound <= b.last {
				t.Errorf("%s buckets out of order: le=%v after %v", family, bound, b.last)
			}
			cum := uint64(v)
			if cum < b.lastCum {
				t.Errorf("%s bucket counts not cumulative: %d after %d", family, cum, b.lastCum)
			}
			b.last, b.lastCum = bound, cum
			if math.IsInf(bound, 1) {
				b.sawInf, b.infCum = true, cum
			}
		}
		if strings.HasSuffix(name, "_count") && declared[family] == "histogram" {
			counts[family] = uint64(v)
		}
	}

	for family, typ := range declared {
		if typ != "histogram" {
			continue
		}
		b := buckets[family]
		if b == nil || !b.sawInf {
			t.Errorf("%s missing le=\"+Inf\" bucket", family)
			continue
		}
		if b.infCum != counts[family] {
			t.Errorf("%s +Inf bucket %d != _count %d", family, b.infCum, counts[family])
		}
	}

	// Quantile gauges present for the populated histogram, properly
	// typed, and ordered p50 <= p99.
	get := func(name string) float64 {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
		m := re.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("missing sample %s in:\n%s", name, out)
		}
		v, _ := strconv.ParseFloat(m[1], 64)
		return v
	}
	p50 := get("sarmany_sweep_job_seconds_p50")
	p99 := get("sarmany_sweep_job_seconds_p99")
	if declared["sarmany_sweep_job_seconds_p50"] != "gauge" {
		t.Error("p50 not declared as gauge")
	}
	if !(p50 > 0 && p50 <= 0.016) || !(p99 >= 2 && p99 <= 3) || p50 >= p99 {
		t.Errorf("quantiles p50=%v p99=%v", p50, p99)
	}

	// The empty histogram still exposes _sum/_count/+Inf but no
	// quantile gauges (there is nothing to estimate).
	if !strings.Contains(out, "sarmany_empty_hist_count 0") {
		t.Error("empty histogram missing _count 0")
	}
	if strings.Contains(out, "sarmany_empty_hist_p50") {
		t.Error("empty histogram grew quantile gauges")
	}
	// Counters carry the conventional _total suffix.
	if !strings.Contains(out, "sarmany_emu_cycles_total 5.634944e+06") &&
		!strings.Contains(out, "sarmany_emu_cycles_total 5634944") {
		t.Errorf("counter sample missing:\n%s", out)
	}
}

// TestExpvarJSON pins the expvar rendering: a single valid JSON object
// keyed by the original dotted metric names, histograms nested.
func TestExpvarJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteExpvar(&sb, expoRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, sb.String())
	}
	if doc["emu.cycles.total"] != 5634944.0 || doc["energy.total_mj"] != 12.5 {
		t.Errorf("scalars: %v", doc)
	}
	h, ok := doc["sweep.job.seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram not nested: %v", doc["sweep.job.seconds"])
	}
	if h["count"] != 105.0 {
		t.Errorf("count = %v", h["count"])
	}
	p50, p99 := h["p50"].(float64), h["p99"].(float64)
	if !(p50 > 0 && p50 < p99) {
		t.Errorf("quantiles p50=%v p99=%v", p50, p99)
	}
	if e, ok := doc["empty.hist"].(map[string]any); !ok || e["count"] != 0.0 {
		t.Errorf("empty histogram: %v", doc["empty.hist"])
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"emu.cycles.total":   "emu_cycles_total",
		"sweep.job.seconds":  "sweep_job_seconds",
		"0weird-name":        "_weird_name",
		"obs.spans.dropped.": "obs_spans_dropped_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
