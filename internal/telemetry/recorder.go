package telemetry

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"sarmany/internal/obs"
)

// Sample is one heartbeat observation of a running simulation, produced
// by the Options.Progress callback (typically from emu.Chip.Progress).
type Sample struct {
	// Total is a monotone progress scalar — the sum of all core clocks.
	// The watchdog declares a stall when it stops moving.
	Total float64
	// Max is the furthest-ahead core clock, in cycles.
	Max float64
	// Phases counts barrier phases resolved so far.
	Phases uint64
	// Cores holds the per-core clocks (optional; enables the moving-core
	// count in the status line).
	Cores []float64
}

// Options configures a Recorder.
type Options struct {
	// Progress samples the live run. Required.
	Progress func() Sample
	// Interval is the heartbeat period (default 200ms).
	Interval time.Duration
	// StallAfter arms the watchdog: if the progress scalar does not move
	// for this long, the recorder dumps a post-mortem. Zero disables.
	StallAfter time.Duration
	// Deadline bounds the whole run: exceeding it triggers the same
	// post-mortem dump as a stall. Zero disables.
	Deadline time.Duration
	// Status, when non-nil, receives a live one-line progress display
	// (carriage-return overwritten) on every heartbeat — the epirun
	// -watch sink.
	Status io.Writer
	// Events, when non-nil, receives a heartbeat event per sample — the
	// flight-recorder ring the post-mortem replays.
	Events *obs.EventRing
	// PostmortemPath names the dump file (default
	// "out/postmortem-<pid>.txt").
	PostmortemPath string
	// OnDump, when non-nil, is called once after a post-mortem is
	// written (test hook / CLI logging).
	OnDump func(path string, reason string)
	// Clock overrides time.Now for tests (nil uses the real clock).
	Clock func() time.Time
}

// Recorder is the flight-recorder heartbeat of one live run: a goroutine
// sampling progress on a fixed interval, feeding the event ring and the
// live status line, and watching for stalls. Start it before the run,
// Stop it after.
type Recorder struct {
	opt   Options
	start time.Time
	stop  chan struct{}
	done  chan struct{}

	mu       sync.Mutex
	last     Sample
	stalled  bool
	dumpPath string
}

// Start launches the heartbeat. The returned Recorder must be stopped.
func Start(opt Options) *Recorder {
	if opt.Progress == nil {
		panic("telemetry: Options.Progress is required")
	}
	if opt.Interval <= 0 {
		opt.Interval = 200 * time.Millisecond
	}
	if opt.Clock == nil {
		opt.Clock = time.Now
	}
	if opt.PostmortemPath == "" {
		opt.PostmortemPath = filepath.Join("out", fmt.Sprintf("postmortem-%d.txt", os.Getpid()))
	}
	r := &Recorder{
		opt:   opt,
		start: opt.Clock(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r
}

// Stop halts the heartbeat and finishes the status line. Idempotent.
func (r *Recorder) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// Stalled reports whether the watchdog fired (stall or deadline).
func (r *Recorder) Stalled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stalled
}

// PostmortemFile returns the dump path if the watchdog fired, else "".
func (r *Recorder) PostmortemFile() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumpPath
}

// Last returns the most recent heartbeat sample.
func (r *Recorder) Last() Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

func (r *Recorder) loop() {
	defer close(r.done)
	tick := time.NewTicker(r.opt.Interval)
	defer tick.Stop()

	var prev Sample
	lastMove := r.start
	dumped := false
	for {
		select {
		case <-r.stop:
			if r.opt.Status != nil {
				fmt.Fprintln(r.opt.Status) // leave the live line intact
			}
			return
		case <-tick.C:
		}
		now := r.opt.Clock()
		s := r.opt.Progress()
		moving := s.Total > prev.Total
		if moving {
			lastMove = now
		}
		r.mu.Lock()
		r.last = s
		r.mu.Unlock()

		r.opt.Events.Addf("heartbeat: phases=%d max=%.0fcy total=%.0fcy moving=%v",
			s.Phases, s.Max, s.Total, moving)
		if r.opt.Status != nil {
			fmt.Fprintf(r.opt.Status, "\r%s", statusLine(s, prev, now.Sub(r.start)))
		}

		reason := ""
		if r.opt.StallAfter > 0 && now.Sub(lastMove) >= r.opt.StallAfter {
			reason = fmt.Sprintf("no progress for %v (stall threshold %v)", now.Sub(lastMove).Round(time.Millisecond), r.opt.StallAfter)
		} else if r.opt.Deadline > 0 && now.Sub(r.start) >= r.opt.Deadline {
			reason = fmt.Sprintf("run exceeded deadline %v", r.opt.Deadline)
		}
		if reason != "" && !dumped {
			dumped = true
			path, err := r.dump(reason, s)
			r.mu.Lock()
			r.stalled = true
			r.dumpPath = path
			r.mu.Unlock()
			if err == nil && r.opt.OnDump != nil {
				r.opt.OnDump(path, reason)
			}
		}
		prev = s
	}
}

// statusLine renders the live one-line display: wall time, resolved
// phases, the leading core clock, and how many cores advanced since the
// previous heartbeat.
func statusLine(s, prev Sample, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7.1fs  phase %-4d  %12.0f cycles", elapsed.Seconds(), s.Phases, s.Max)
	if len(s.Cores) > 0 {
		moving := 0
		for i, v := range s.Cores {
			if i < len(prev.Cores) && v > prev.Cores[i] {
				moving++
			} else if len(prev.Cores) == 0 && v > 0 {
				moving++
			}
		}
		fmt.Fprintf(&b, "  %2d/%d cores moving", moving, len(s.Cores))
	}
	return b.String()
}

// dump writes the post-mortem: the stall reason, the last sample, the
// flight-recorder event ring, and the stacks of every goroutine — what
// a wedged simulation leaves behind for diagnosis.
func (r *Recorder) dump(reason string, s Sample) (string, error) {
	path := r.opt.PostmortemPath
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()

	fmt.Fprintf(f, "post-mortem: %s\n", reason)
	fmt.Fprintf(f, "recorded: %s (run started %s)\n", r.opt.Clock().Format(time.RFC3339), r.start.Format(time.RFC3339))
	fmt.Fprintf(f, "last sample: phases=%d max=%.0f cycles total=%.0f cycles\n", s.Phases, s.Max, s.Total)
	if len(s.Cores) > 0 {
		fmt.Fprintf(f, "per-core cycles:\n")
		for i, v := range s.Cores {
			fmt.Fprintf(f, "  core %2d: %.0f\n", i, v)
		}
	}
	if r.opt.Events != nil {
		fmt.Fprintf(f, "\nflight recorder (most recent last):\n")
		if err := r.opt.Events.WriteText(f); err != nil {
			return path, err
		}
	}
	fmt.Fprintf(f, "\ngoroutine stacks:\n")
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	if _, err := f.Write(buf); err != nil {
		return path, err
	}
	return path, f.Sync()
}
