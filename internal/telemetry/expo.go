package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"sarmany/internal/obs"
)

// Exposition: rendering an obs.Snapshot for standard scrape tooling.
// WritePrometheus emits the Prometheus text exposition format (version
// 0.0.4): counters and gauges as single samples, histograms as
// cumulative le-labeled buckets with _sum/_count plus p50/p90/p99
// quantile gauges. WriteExpvar emits one flat JSON object keyed by
// metric name — the same shape package expvar serves on /debug/vars —
// with histograms as nested objects.

// promName sanitizes a dotted metric name into the Prometheus name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promValue formats a sample value; Prometheus spells non-finite values
// "+Inf", "-Inf" and "NaN".
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text format. The
// optional namespace prefixes every metric name (namespace_name).
func WritePrometheus(w io.Writer, s obs.Snapshot, namespace string) error {
	prefix := ""
	if namespace != "" {
		prefix = promName(namespace) + "_"
	}
	for _, m := range s {
		name := prefix + promName(m.Name)
		switch m.Type {
		case "counter":
			// The exposition format expects counter sample names to carry
			// a _total suffix.
			if !strings.HasSuffix(name, "_total") {
				name += "_total"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promValue(m.Value)); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promValue(m.Value)); err != nil {
				return err
			}
		case "histogram":
			if err := writePromHistogram(w, name, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram emits one histogram: cumulative buckets in
// ascending le order ending at le="+Inf" (whose count equals _count),
// then _sum and _count, then quantile gauges estimated from the
// exponential buckets.
func writePromHistogram(w io.Writer, name string, m obs.Metric) error {
	type bound struct {
		le float64
		n  uint64
	}
	bounds := make([]bound, 0, len(m.Buckets))
	for label, n := range m.Buckets {
		le, ok := obs.BucketBound(label)
		if !ok {
			return fmt.Errorf("telemetry: unparseable bucket label %q in %s", label, m.Name)
		}
		bounds = append(bounds, bound{le, n})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })

	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	sawInf := false
	for _, b := range bounds {
		cum += b.n
		if math.IsInf(b.le, 1) {
			sawInf = true
			cum = m.Count // the top bucket is cumulative-total by definition
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promValue(b.le), cum); err != nil {
			return err
		}
	}
	if !sawInf {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promValue(m.Sum), name, m.Count); err != nil {
		return err
	}
	if m.Count > 0 {
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"p50", m.P50}, {"p90", m.P90}, {"p99", m.P99}} {
			qn := name + "_" + q.suffix
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", qn, qn, promValue(q.v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteExpvar renders the snapshot as one expvar-style JSON object:
// {"metric.name": value, ...}, histograms as nested objects. Keys come
// out in snapshot (sorted-name) order; values use the same formatting
// rules as encoding/json for numbers (non-finite histogram fields are
// omitted, matching the snapshot's own JSON behavior).
func WriteExpvar(w io.Writer, s obs.Snapshot) error {
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	first := true
	field := func(key string, val string) error {
		sep := ",\n"
		if first {
			sep = "\n"
			first = false
		}
		_, err := fmt.Fprintf(w, "%s%q: %s", sep, key, val)
		return err
	}
	num := func(v float64) string {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return "null"
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, m := range s {
		switch m.Type {
		case "histogram":
			var b strings.Builder
			fmt.Fprintf(&b, "{\"count\": %d, \"sum\": %s", m.Count, num(m.Sum))
			if m.Count > 0 {
				fmt.Fprintf(&b, ", \"min\": %s, \"max\": %s, \"mean\": %s", num(m.Min), num(m.Max), num(m.Mean))
				fmt.Fprintf(&b, ", \"p50\": %s, \"p90\": %s, \"p99\": %s", num(m.P50), num(m.P90), num(m.P99))
			}
			b.WriteString("}")
			if err := field(m.Name, b.String()); err != nil {
				return err
			}
		default:
			if err := field(m.Name, num(m.Value)); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}
