package telemetry

import (
	"sarmany/internal/bench"
)

// DefaultAdvisory lists the leaf patterns a ledger diff reports but
// never gates on: run identity (id, start), anything wall-clock, and
// host shape. Everything else in an entry — config, seeds, fault plans,
// simulated cycles, energy — is deterministic, so a delta there is a
// real divergence.
var DefaultAdvisory = []string{
	"id",
	"start",
	"wall_seconds",
	"host.*",
	"version",
	"args*",
	// Wall-clock metric histograms (sweep.job.seconds and friends).
	"metrics.*seconds*",
	// Wall-clock and host-shape leaves inside embedded bench envelopes —
	// the same set the Makefile benchdiff gate treats as advisory.
	"envelope.data.seconds*",
	"envelope.data.speedup",
	"envelope.data.*_per_sec",
	"envelope.data.host_cpus",
	"envelope.data.analyze_seconds",
	"envelope.version",
	// Tool-specific wall-clock extras.
	"extra.*seconds*",
	// Request traces: span IDs and wall-clock timestamps/durations by
	// construction, never part of the result identity.
	"trace_id",
	"trace.*",
}

// DiffEntries compares two ledger entries leaf by leaf with
// bench.DiffEnvelopes semantics. Entries are re-marshaled with their
// stored IDs, so the id leaf shows up as an advisory row — a non-empty
// delta table even for byte-identical simulation results, which is how
// a caller can tell "identical runs" from "diff silently compared
// nothing".
func DiffEntries(a, b Entry, opt bench.DiffOptions) ([]bench.Finding, error) {
	if opt.Advisory == nil {
		opt.Advisory = DefaultAdvisory
	}
	ab, err := MarshalEntry(a)
	if err != nil {
		return nil, err
	}
	bb, err := MarshalEntry(b)
	if err != nil {
		return nil, err
	}
	return bench.DiffEnvelopes(ab, bb, opt)
}
