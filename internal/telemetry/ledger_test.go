package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sarmany/internal/bench"
	"sarmany/internal/obs"
)

func testEntry(start time.Time, cycles float64) Entry {
	reg := obs.NewRegistry()
	reg.Counter("emu.cycles.total").Add(cycles)
	reg.Counter("emu.cycles.compute").Add(cycles * 0.8)
	reg.Gauge("energy.total_mj").Set(cycles / 1e6)
	reg.Histogram("core.cycles").Observe(cycles)
	return Entry{
		Tool:        "epirun",
		Args:        []string{"kernel=ffbp", "cores=16"},
		Start:       start,
		WallSeconds: 1.5,
		Salt:        bench.EnvelopeSalt,
		Version:     "abc123",
		Host:        CurrentHost(),
		Config:      json.RawMessage(`{"pulses": 128, "bins": 121}`),
		ConfigHash:  HashJSON([]byte(`{"pulses": 128, "bins": 121}`)),
		Metrics:     MetricsMap(reg.Snapshot()),
	}
}

func TestLedgerAppendListRead(t *testing.T) {
	dir := t.TempDir()
	l := Open(filepath.Join(dir, "runs")) // Open never creates the dir

	if es, err := l.List(); err != nil || len(es) != 0 {
		t.Fatalf("empty ledger: %v, %v", es, err)
	}

	t0 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	id1, path1, err := l.Append(testEntry(t0, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if len(id1) != idLen {
		t.Fatalf("id %q, want %d hex chars", id1, idLen)
	}
	id2, _, err := l.Append(testEntry(t0.Add(time.Minute), 2e6))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("different runs got the same content address")
	}

	// Idempotent re-append: same entry, same id, same file.
	idAgain, pathAgain, err := l.Append(testEntry(t0, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if idAgain != id1 || pathAgain != path1 {
		t.Errorf("re-append: (%s, %s), want (%s, %s)", idAgain, pathAgain, id1, path1)
	}

	es, err := l.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 || es[0].ID != id1 || es[1].ID != id2 {
		t.Fatalf("list = %+v, want chronological [%s %s]", es, id1, id2)
	}

	e, raw, err := l.Read(id1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tool != "epirun" || e.ID != id1 || len(raw) == 0 {
		t.Errorf("read: %+v", e)
	}
}

func TestLedgerResolve(t *testing.T) {
	l := Open(t.TempDir())
	t0 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	id1, _, _ := l.Append(testEntry(t0, 1e6))
	id2, _, _ := l.Append(testEntry(t0.Add(time.Minute), 2e6))

	if e, err := l.Resolve("@-1"); err != nil || e.ID != id2 {
		t.Errorf("@-1 = %v, %v; want %s", e.ID, err, id2)
	}
	if e, err := l.Resolve("@-2"); err != nil || e.ID != id1 {
		t.Errorf("@-2 = %v, %v; want %s", e.ID, err, id1)
	}
	if e, err := l.Resolve(id1[:6]); err != nil || e.ID != id1 {
		t.Errorf("prefix = %v, %v; want %s", e.ID, err, id1)
	}
	for _, bad := range []string{"@-3", "@-0", "@-x", "zzzzzz"} {
		if _, err := l.Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) succeeded", bad)
		}
	}
}

// TestLedgerTamperDetection pins the content-address verification: an
// entry edited on disk no longer matches its ID and Read refuses it.
func TestLedgerTamperDetection(t *testing.T) {
	l := Open(t.TempDir())
	id, path, err := l.Append(testEntry(time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC), 1e6))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	tampered := strings.Replace(string(b), `"wall_seconds": 1.5`, `"wall_seconds": 0.1`, 1)
	if tampered == string(b) {
		t.Fatal("test did not modify the entry")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Read(id); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Errorf("tampered entry read succeeded (err=%v)", err)
	}
}

// TestLedgerDiffSemantics is the tentpole's core promise: two runs with
// identical simulation results diff to zero on every cycle/energy leaf
// (only run-identity leaves differ), while a changed parameter shows up
// as a correctly attributed non-zero delta.
func TestLedgerDiffSemantics(t *testing.T) {
	advisory := []string{"id", "start", "wall_seconds", "host.*", "args*", "version"}
	t0 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)

	marshal := func(e Entry) []byte {
		id, err := computeID(e)
		if err != nil {
			t.Fatal(err)
		}
		e.ID = id
		b, err := MarshalEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Identical simulation, different wall clock: same cycles/energy.
	a := testEntry(t0, 1e6)
	b := testEntry(t0.Add(time.Hour), 1e6)
	b.WallSeconds = 2.5
	fs, err := bench.DiffEnvelopes(marshal(a), marshal(b), bench.DiffOptions{Advisory: advisory})
	if err != nil {
		t.Fatal(err)
	}
	if n := bench.Regressions(fs); n != 0 {
		t.Fatalf("identical runs produced %d non-advisory deltas: %v", n, fs)
	}
	if len(fs) == 0 {
		t.Fatal("diff table empty — id/start/wall_seconds advisory rows expected")
	}
	for _, f := range fs {
		if strings.HasPrefix(f.Path, "metrics.") {
			t.Errorf("metric leaf diverged between identical runs: %v", f)
		}
	}

	// Changed parameter: the delta lands on named metric leaves.
	c := testEntry(t0.Add(2*time.Hour), 2e6)
	c.Config = json.RawMessage(`{"pulses": 256, "bins": 121}`)
	c.ConfigHash = HashJSON(c.Config)
	fs, err = bench.DiffEnvelopes(marshal(a), marshal(c), bench.DiffOptions{Advisory: advisory})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]bench.Finding{}
	for _, f := range fs {
		byPath[f.Path] = f
	}
	cyc, ok := byPath["metrics.emu.cycles.total"]
	if !ok || cyc.Advisory {
		t.Fatalf("cycle delta not attributed: %v", fs)
	}
	if cyc.Delta < 0.99 || cyc.Delta > 1.01 {
		t.Errorf("cycle delta = %v, want ~+1.0 (doubled)", cyc.Delta)
	}
	if _, ok := byPath["metrics.energy.total_mj"]; !ok {
		t.Errorf("energy delta not attributed: %v", fs)
	}
	if _, ok := byPath["config.pulses"]; !ok {
		t.Errorf("config change not attributed: %v", fs)
	}
}

func TestMetricsMapShape(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(-1.5)
	reg.Histogram("h").Observe(2)
	reg.Histogram("empty") // no observations
	m := MetricsMap(reg.Snapshot())
	if m["c"] != 3.0 || m["g"] != -1.5 {
		t.Errorf("scalars: %v", m)
	}
	h, ok := m["h"].(map[string]any)
	if !ok || h["count"] != uint64(1) || h["p50"] == nil {
		t.Errorf("histogram leaf: %v", m["h"])
	}
	if e, ok := m["empty"].(map[string]any); !ok || e["p50"] != nil {
		t.Errorf("empty histogram leaked quantiles: %v", m["empty"])
	}
	if MetricsMap(nil) != nil {
		t.Error("empty snapshot should map to nil")
	}
	// The map must survive a JSON round trip losslessly enough to diff.
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := bench.NumericLeaves(b)
	if err != nil {
		t.Fatal(err)
	}
	if leaves["c"] != 3 || leaves["h.count"] != 1 {
		t.Errorf("leaves: %v", leaves)
	}
}
