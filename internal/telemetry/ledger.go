// Package telemetry is the run-history and live-observability layer on
// top of internal/obs: a content-addressed append-only run ledger (every
// CLI run leaves a provenance-tracked manifest under out/runs/), a
// flight recorder with heartbeat sampling and a stall watchdog for live
// runs, and exposition of metric snapshots in Prometheus text format and
// expvar-compatible JSON.
package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"sarmany/internal/obs"
)

// Host records the machine shape a run executed on — advisory context
// for interpreting wall-clock fields, never part of the result identity.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	Hostname  string `json:"hostname,omitempty"`
}

// CurrentHost describes the running machine.
func CurrentHost() Host {
	h := Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
		GoVersion: runtime.Version(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	return h
}

// Entry is one ledger manifest: the full provenance of one CLI run plus
// its results. The ID is the content address — a SHA-256 prefix over the
// entry marshaled with ID cleared — so identical runs produce identical
// IDs and a tampered entry no longer matches its own name.
type Entry struct {
	ID   string `json:"id,omitempty"`
	Tool string `json:"tool"`
	// Args are the relevant flag settings, as "flag=value" strings.
	Args  []string  `json:"args,omitempty"`
	Start time.Time `json:"start"`
	// WallSeconds is the host wall-clock duration of the run — advisory,
	// like everything else about the host.
	WallSeconds float64 `json:"wall_seconds"`
	// Salt and Version mirror the bench envelope provenance fields: the
	// schema salt and the code version that produced the run.
	Salt    string `json:"salt,omitempty"`
	Version string `json:"version,omitempty"`
	Host    Host   `json:"host"`

	// Config is the full parameter document of the run (report.Config,
	// kernel settings, ...) and ConfigHash its SHA-256 — the stable
	// identity a diff attributes parameter changes to.
	Config     json.RawMessage `json:"config,omitempty"`
	ConfigHash string          `json:"config_hash,omitempty"`
	// Seed is the deterministic seed the run used (0 when seedless).
	Seed int64 `json:"seed,omitempty"`
	// FaultPlan is the fault-injection plan document and FaultHash its
	// SHA-256 (both empty for clean runs).
	FaultPlan json.RawMessage `json:"fault_plan,omitempty"`
	FaultHash string          `json:"fault_hash,omitempty"`

	// Metrics is the run's metric snapshot in named-leaf form (see
	// MetricsMap): counters and gauges as numbers, histograms as
	// {count,sum,min,max,mean,p50,p90,p99} objects — the shape
	// bench.DiffEnvelopes needs to attribute cycle/energy deltas to
	// metric names rather than array indices.
	Metrics map[string]any `json:"metrics,omitempty"`
	// Envelope is the bench result envelope of the run, when it produced
	// one (BENCH_*.json bytes, embedded raw).
	Envelope json.RawMessage `json:"envelope,omitempty"`
	// Extra carries tool-specific scalars (image dimensions, checksum
	// strings, exit notes) that deserve diffing but fit no other field.
	Extra map[string]any `json:"extra,omitempty"`

	// TraceID is the request-trace identifier of the run that produced
	// this entry (the serving layer's per-request W3C trace ID), the
	// correlation key between ledger entries, structured logs, and
	// inbound traceparent headers. Empty for untraced runs.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the whole-request span tree (an obs.TraceDoc document)
	// recorded when the run was traced — what `sarlog trace` renders.
	// Purely wall-clock, so diffs treat every leaf under it as advisory.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// MetricsMap converts a snapshot into the ledger's named-leaf form.
func MetricsMap(s obs.Snapshot) map[string]any {
	if len(s) == 0 {
		return nil
	}
	out := make(map[string]any, len(s))
	for _, m := range s {
		switch m.Type {
		case "histogram":
			h := map[string]any{"count": m.Count, "sum": m.Sum}
			if m.Count > 0 {
				h["min"], h["max"], h["mean"] = m.Min, m.Max, m.Mean
				h["p50"], h["p90"], h["p99"] = m.P50, m.P90, m.P99
			}
			out[m.Name] = h
		default:
			out[m.Name] = m.Value
		}
	}
	return out
}

// HashJSON returns the full lowercase hex SHA-256 of a canonical JSON
// document — the content address ConfigHash/FaultHash store.
func HashJSON(doc []byte) string {
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// MarshalEntry renders an entry in the canonical on-disk form (indented
// JSON, trailing newline) — the bytes the content address covers.
func MarshalEntry(e Entry) ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// idLen is the ID length in hex characters (12 = 48 bits, ample for a
// run history and short enough to type).
const idLen = 12

// computeID derives the content address: SHA-256 over the entry
// marshaled with ID cleared, truncated to idLen hex characters.
func computeID(e Entry) (string, error) {
	e.ID = ""
	b, err := MarshalEntry(e)
	if err != nil {
		return "", err
	}
	return HashJSON(b)[:idLen], nil
}

// Ledger is an append-only content-addressed run store: one JSON file
// per entry under Dir, named run-<start-unixnano>-<id>.json so a plain
// directory listing is already in chronological order.
type Ledger struct {
	Dir string
}

// Open returns a ledger rooted at dir. The directory is created lazily
// on first Append, so opening a ledger never touches the filesystem.
func Open(dir string) *Ledger { return &Ledger{Dir: dir} }

// DefaultDir is the conventional ledger location CLI tools default to.
const DefaultDir = "out/runs"

// entryFilename names an entry file. The zero-padded nanosecond prefix
// sorts lexically in time order.
func entryFilename(e Entry) string {
	return fmt.Sprintf("run-%020d-%s.json", e.Start.UnixNano(), e.ID)
}

// Append computes the entry's content address, writes it atomically
// (temp file + rename) and returns the assigned ID and file path. A
// re-appended identical entry is idempotent: same ID, same file, no
// rewrite. Existing files are never modified.
func (l *Ledger) Append(e Entry) (id, path string, err error) {
	id, err = computeID(e)
	if err != nil {
		return "", "", err
	}
	e.ID = id
	if err := os.MkdirAll(l.Dir, 0o755); err != nil {
		return "", "", err
	}
	path = filepath.Join(l.Dir, entryFilename(e))
	if _, err := os.Stat(path); err == nil {
		return id, path, nil // identical content already stored
	}
	b, err := MarshalEntry(e)
	if err != nil {
		return "", "", err
	}
	tmp, err := os.CreateTemp(l.Dir, ".run-*.tmp")
	if err != nil {
		return "", "", err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", "", err
	}
	return id, path, nil
}

// List returns every stored entry in chronological order (start time,
// then ID). A missing ledger directory is an empty history, not an
// error.
func (l *Ledger) List() ([]Entry, error) {
	names, err := filepath.Glob(filepath.Join(l.Dir, "run-*.json"))
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Read returns the entry with the given full ID along with its stored
// bytes, after verifying the content address still matches — a ledger
// file edited by hand fails loudly here instead of silently feeding a
// diff.
func (l *Ledger) Read(id string) (Entry, []byte, error) {
	matches, err := filepath.Glob(filepath.Join(l.Dir, "run-*-"+id+".json"))
	if err != nil || len(matches) == 0 {
		return Entry{}, nil, fmt.Errorf("ledger: no entry %s in %s", id, l.Dir)
	}
	b, err := os.ReadFile(matches[0])
	if err != nil {
		return Entry{}, nil, err
	}
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil {
		return Entry{}, nil, fmt.Errorf("%s: %w", matches[0], err)
	}
	want, err := computeID(e)
	if err != nil {
		return Entry{}, nil, err
	}
	if want != e.ID || e.ID != id {
		return Entry{}, nil, fmt.Errorf("ledger: %s content hash %s does not match id %s (entry modified?)",
			matches[0], want, id)
	}
	return e, b, nil
}

// Resolve turns a run reference into an entry: "@-1" is the most recent
// run, "@-2" the one before, and anything else matches an entry by
// unambiguous ID prefix.
func (l *Ledger) Resolve(ref string) (Entry, error) {
	entries, err := l.List()
	if err != nil {
		return Entry{}, err
	}
	if len(entries) == 0 {
		return Entry{}, fmt.Errorf("ledger: %s is empty", l.Dir)
	}
	if strings.HasPrefix(ref, "@-") {
		n, err := strconv.Atoi(ref[2:])
		if err != nil || n < 1 {
			return Entry{}, fmt.Errorf("ledger: bad reference %q (want @-1, @-2, ... or an id prefix)", ref)
		}
		if n > len(entries) {
			return Entry{}, fmt.Errorf("ledger: %s reaches past the %d stored runs", ref, len(entries))
		}
		return entries[len(entries)-n], nil
	}
	var hit []Entry
	for _, e := range entries {
		if strings.HasPrefix(e.ID, ref) {
			hit = append(hit, e)
		}
	}
	switch len(hit) {
	case 0:
		return Entry{}, fmt.Errorf("ledger: no run matches %q", ref)
	case 1:
		return hit[0], nil
	default:
		return Entry{}, fmt.Errorf("ledger: %q is ambiguous (%d matches)", ref, len(hit))
	}
}
