package telemetry

import (
	"encoding/json"
	"time"

	"sarmany/internal/bench"
)

// NewEntry assembles the provenance fields every CLI run manifest
// shares: tool identity, args, wall clock, the envelope salt and code
// version, host shape, and the content-hashed configuration document.
// Callers fill Metrics, Envelope, Seed, FaultPlan and Extra afterwards.
func NewEntry(tool string, start time.Time, config any, args ...string) (Entry, error) {
	doc, err := json.Marshal(config)
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		Tool:        tool,
		Args:        args,
		Start:       start,
		WallSeconds: time.Since(start).Seconds(),
		Salt:        bench.EnvelopeSalt,
		Version:     bench.Version(),
		Host:        CurrentHost(),
		Config:      doc,
		ConfigHash:  HashJSON(doc),
	}, nil
}

// Record appends e to the ledger in dir and returns the run ID. An
// empty dir disables recording (the CLI convention for -ledger "") and
// returns an empty ID with no error. Callers should warn rather than
// fail on an error — observability must never break the run it
// observes.
func Record(dir string, e Entry) (string, error) {
	if dir == "" {
		return "", nil
	}
	id, _, err := Open(dir).Append(e)
	return id, err
}
