package sar

import (
	"math"
	"testing"

	"sarmany/internal/cf"
	"sarmany/internal/mat"
)

func rowPower(m *mat.C, r int) float64 {
	var p float64
	for _, v := range m.Row(r) {
		p += float64(cf.Abs2(v))
	}
	return p / float64(m.Cols)
}

func TestInjectRFIAddsTone(t *testing.T) {
	m := mat.NewC(4, 256)
	InjectRFI(m, 0.1, 2, 0.3)
	for r := 0; r < 4; r++ {
		if p := rowPower(m, r); math.Abs(p-4) > 0.2 {
			t.Errorf("row %d power %v, want ~4", r, p)
		}
	}
	// Different rows have different phases.
	if m.At(0, 0) == m.At(1, 0) {
		t.Error("rows share RFI phase")
	}
}

func TestNotchFilterRemovesTone(t *testing.T) {
	p := smallParams()
	tg := Target{U: 0, Y: p.CenterRange(), Amp: 1}
	clean := Simulate(p, []Target{tg}, nil)
	dirty := Simulate(p, []Target{tg}, nil)
	InjectRFI(dirty, 0.23, 3, 0.7) // interference 3x the target amplitude

	notched, err := NotchFilter(dirty, 5)
	if err != nil {
		t.Fatal(err)
	}
	if notched == 0 {
		t.Fatal("filter notched nothing")
	}
	// Residual error vs the clean data must be far below the injected
	// interference power (9 per sample).
	var resid float64
	for r := 0; r < dirty.Rows; r++ {
		dr, cr := dirty.Row(r), clean.Row(r)
		for i := range dr {
			resid += float64(cf.Abs2(dr[i] - cr[i]))
		}
	}
	resid /= float64(dirty.Rows * dirty.Cols)
	if resid > 0.9 { // >10x suppression of the 9.0 interference power
		t.Errorf("residual power %v after notching", resid)
	}
	// The target peak survives.
	mid := p.NumPulses / 2
	r := Range(p.TrackPos(mid), nil, tg)
	bin := int(math.Round((r - p.R0) / p.DR))
	if a := cf.Abs(dirty.At(mid, bin)); a < 0.5 {
		t.Errorf("target amplitude %v after notching", a)
	}
}

func TestNotchFilterGentleOnCleanData(t *testing.T) {
	p := smallParams()
	tg := Target{U: 0, Y: p.CenterRange(), Amp: 1}
	data := Simulate(p, []Target{tg}, nil)
	ref := data.Clone()
	// A compressed point response is itself spectrally flat-ish; with a
	// high threshold nothing should be excised.
	notched, err := NotchFilter(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if notched > 0 {
		// Some excision can happen; the data must remain close.
		var resid, pow float64
		for r := 0; r < data.Rows; r++ {
			dr, rr := data.Row(r), ref.Row(r)
			for i := range dr {
				resid += float64(cf.Abs2(dr[i] - rr[i]))
				pow += float64(cf.Abs2(rr[i]))
			}
		}
		if resid > 0.05*pow {
			t.Errorf("filter destroyed %v of clean signal energy", resid/pow)
		}
	}
}

func TestNotchFilterZeroRows(t *testing.T) {
	m := mat.NewC(3, 64)
	notched, err := NotchFilter(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if notched != 0 {
		t.Errorf("notched %d bins of silence", notched)
	}
}

func TestNotchFilterBadThreshold(t *testing.T) {
	if _, err := NotchFilter(mat.NewC(1, 8), 1); err == nil {
		t.Error("threshold 1 accepted")
	}
	if _, err := NotchFilter(mat.NewC(1, 8), 0.5); err == nil {
		t.Error("threshold < 1 accepted")
	}
}
