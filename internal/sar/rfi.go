package sar

import (
	"fmt"
	"math"
	"sort"

	"sarmany/internal/cf"
	"sarmany/internal/fft"
	"sarmany/internal/mat"
)

// Low-frequency SAR (the VHF/UWB class this processing chain comes from)
// shares its band with broadcast transmitters, so narrowband radio
// frequency interference (RFI) rides on every received pulse and, after
// pulse compression, smears into streaks that bury targets. The standard
// pre-processing stage is a spectral notch filter: transform each range
// line, excise bins whose magnitude is anomalously high relative to the
// pulse's median spectral level, and transform back. This file implements
// interference injection (for experiments) and the notch filter.

// InjectRFI adds a complex sinusoid of the given normalized frequency
// (cycles per sample, in [-0.5, 0.5)) and amplitude to every row of m, with
// a per-row phase that drifts by dphase per pulse (uncorrelated-looking
// interference). It returns m for chaining.
func InjectRFI(m *mat.C, freq float64, amp float32, dphase float64) *mat.C {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		phi0 := float64(r) * dphase
		for i := range row {
			row[i] += cf.Scale(amp, cf.Expi(float32(phi0+2*math.Pi*freq*float64(i))))
		}
	}
	return m
}

// NotchFilter suppresses narrowband interference in each row of m: the
// row's spectrum is computed with a zero-padded FFT, bins whose magnitude
// exceeds threshold times the row's median bin magnitude are zeroed, and
// the row is reconstructed. It returns the number of distinct spectral
// bins notched across all rows. threshold must exceed 1 (typical: 4-8).
func NotchFilter(m *mat.C, threshold float64) (int, error) {
	if threshold <= 1 {
		return 0, fmt.Errorf("sar: notch threshold %v must exceed 1", threshold)
	}
	n := fft.NextPow2(m.Cols)
	plan := fft.MustPlan(n)
	buf := make([]complex64, n)
	mags := make([]float64, n)
	notched := 0
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		copy(buf, row)
		for i := m.Cols; i < n; i++ {
			buf[i] = 0
		}
		plan.Forward(buf)
		for i, v := range buf {
			mags[i] = math.Sqrt(float64(cf.Abs2(v)))
		}
		med := median(mags)
		if med == 0 {
			continue // an all-zero row has nothing to notch
		}
		cut := threshold * med
		rowNotched := 0
		for i := range buf {
			if mags[i] > cut {
				buf[i] = 0
				rowNotched++
			}
		}
		if rowNotched == 0 {
			continue
		}
		notched += rowNotched
		plan.Inverse(buf)
		copy(row, buf[:m.Cols])
	}
	return notched, nil
}

// median returns the median of xs without modifying it.
func median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
