package sar

import (
	"runtime"
	"sync"

	"sarmany/internal/mat"
)

// SimulatePar is Simulate with the per-pulse synthesis fanned out across
// a bounded pool of workers (<= 0 means runtime.GOMAXPROCS(0)). Pulses
// are independent rows, so the output is bit-identical to Simulate for
// any worker count — cmd/sarsim's -j flag relies on that.
func SimulatePar(p Params, targets []Target, pathErr PathError, workers int) *mat.C {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	data := mat.NewC(p.NumPulses, p.NumBins)
	parallelRows(p.NumPulses, workers, func(i int) {
		simulatePulse(data, p, i, targets, pathErr)
	})
	return data
}

// SimulateRawPar is SimulateRaw with the per-pulse synthesis fanned out
// across workers; the output is bit-identical to SimulateRaw.
func SimulateRawPar(p Params, ch Chirp, targets []Target, pathErr PathError, workers int) *mat.C {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	ref := ch.Reference()
	raw := mat.NewC(p.NumPulses, p.NumBins+ch.Samples-1)
	parallelRows(p.NumPulses, workers, func(i int) {
		simulateRawPulse(raw, p, ref, i, targets, pathErr)
	})
	return raw
}

// parallelRows runs fn(i) for i in [0, n) across a bounded worker pool.
// Each worker takes a contiguous chunk of rows; rows touch disjoint
// memory, so no synchronization beyond the final join is needed.
func parallelRows(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
