// Package sar models the stripmap synthetic-aperture radar front end that
// feeds the back-projection stage the paper evaluates: the platform/scene
// geometry, point-target raw-echo synthesis, the transmitted LFM chirp, and
// pulse compression (matched filtering).
//
// Geometry is the slant-plane model of the paper's Fig. 2: the platform
// flies along the u axis (azimuth) and each transmitted pulse illuminates a
// swath of range bins. A point target at azimuth X, cross-track range Y has
// slant range hypot(X-u, Y) from the platform at track position u. An
// optional flight-path error displaces the platform in the cross-track
// direction, which is what autofocus later has to estimate and compensate.
package sar

import (
	"fmt"
	"math"

	"sarmany/internal/cf"
	"sarmany/internal/fft"
	"sarmany/internal/mat"
)

// Params describes the radar and the collection geometry. The defaults
// (DefaultParams) match the paper's data-set dimensions: 1024 pulses of
// 1001 range bins, processed in ten merge-base-2 FFBP iterations to a
// 1024x1001-pixel image.
type Params struct {
	NumPulses int // pulses in the synthetic aperture (1024)
	NumBins   int // range bins per pulse (1001)

	R0 float64 // slant range of range bin 0 (m)
	DR float64 // range bin spacing (m)

	PulseSpacing float64 // along-track distance between pulses (m)
	Wavelength   float64 // carrier wavelength (m)

	// RangeRes is the -3 dB width of the compressed pulse (m). It sets the
	// mainlobe width of the synthesized point response; RangeRes/DR is the
	// range oversampling factor.
	RangeRes float64

	// EnvelopeHalfWidth is the truncation half-width of the compressed
	// pulse envelope in range bins.
	EnvelopeHalfWidth int
}

// DefaultParams returns the configuration used throughout the reproduction:
// a low-frequency (VHF/UWB, CARABAS-style) system, which is the SAR class
// the paper's FFBP + autofocus chain comes from.
func DefaultParams() Params {
	return Params{
		NumPulses:         1024,
		NumBins:           1001,
		R0:                2000,
		DR:                0.5,
		PulseSpacing:      1.0,
		Wavelength:        8.0,
		RangeRes:          1.0,
		EnvelopeHalfWidth: 6,
	}
}

// Validate reports whether the parameter set is usable.
func (p Params) Validate() error {
	switch {
	case p.NumPulses < 1:
		return fmt.Errorf("sar: NumPulses %d < 1", p.NumPulses)
	case p.NumBins < 1:
		return fmt.Errorf("sar: NumBins %d < 1", p.NumBins)
	case p.DR <= 0:
		return fmt.Errorf("sar: DR %v <= 0", p.DR)
	case p.R0 <= 0:
		return fmt.Errorf("sar: R0 %v <= 0", p.R0)
	case p.PulseSpacing <= 0:
		return fmt.Errorf("sar: PulseSpacing %v <= 0", p.PulseSpacing)
	case p.Wavelength <= 0:
		return fmt.Errorf("sar: Wavelength %v <= 0", p.Wavelength)
	case p.RangeRes < p.DR:
		return fmt.Errorf("sar: RangeRes %v < DR %v (undersampled)", p.RangeRes, p.DR)
	case p.EnvelopeHalfWidth < 1:
		return fmt.Errorf("sar: EnvelopeHalfWidth %d < 1", p.EnvelopeHalfWidth)
	}
	return nil
}

// ApertureLength returns the total synthetic aperture length (m).
func (p Params) ApertureLength() float64 {
	return float64(p.NumPulses) * p.PulseSpacing
}

// TrackPos returns the along-track position of pulse i. The aperture is
// centred on u = 0, with pulse i at the centre of its subaperture cell,
// matching geom.Stage0.
func (p Params) TrackPos(i int) float64 {
	return -p.ApertureLength()/2 + (float64(i)+0.5)*p.PulseSpacing
}

// MaxRange returns the slant range of the last range bin.
func (p Params) MaxRange() float64 {
	return p.R0 + float64(p.NumBins-1)*p.DR
}

// CenterRange returns the slant range of the middle of the swath.
func (p Params) CenterRange() float64 {
	return p.R0 + float64(p.NumBins-1)*p.DR/2
}

// Target is a point scatterer at azimuth U (m, along-track, same axis as
// TrackPos) and cross-track slant range Y (m), with reflection amplitude
// Amp.
type Target struct {
	U, Y float64
	Amp  float32
}

// SixTargetScene returns the validation scene of the paper (Sec. V-B "a
// test scenario of six target points"): six point targets spread over the
// imaged area.
func SixTargetScene(p Params) []Target {
	rc := p.CenterRange()
	dr := float64(p.NumBins-1) * p.DR
	return []Target{
		{U: -120, Y: rc - 0.30*dr, Amp: 1},
		{U: 0, Y: rc - 0.30*dr, Amp: 1},
		{U: 120, Y: rc - 0.30*dr, Amp: 1},
		{U: -120, Y: rc + 0.25*dr, Amp: 1},
		{U: 0, Y: rc + 0.25*dr, Amp: 1},
		{U: 120, Y: rc + 0.25*dr, Amp: 1},
	}
}

// PathError gives the cross-track displacement of the platform (m) as a
// function of along-track position u; nil means a perfectly linear track.
type PathError func(u float64) float64

// Range returns the slant range from the platform at track position u
// (displaced cross-track by pathErr) to target t.
func Range(u float64, pathErr PathError, t Target) float64 {
	y := t.Y
	if pathErr != nil {
		y -= pathErr(u)
	}
	return math.Hypot(t.U-u, y)
}

// envelope returns the compressed-pulse envelope at a distance d (m) from
// the peak: a Hann-windowed sinc with -3 dB width RangeRes, truncated at
// EnvelopeHalfWidth bins.
func (p Params) envelope(d float64) float64 {
	w := float64(p.EnvelopeHalfWidth) * p.DR
	if d < -w || d > w {
		return 0
	}
	// sinc mainlobe scaled so the first null falls at ~RangeRes.
	x := d / p.RangeRes
	s := 1.0
	if x != 0 {
		s = math.Sin(math.Pi*x) / (math.Pi * x)
	}
	// Hann taper over the truncation window.
	h := 0.5 * (1 + math.Cos(math.Pi*d/w))
	return s * h
}

// Simulate synthesizes pulse-compressed radar data for the given targets:
// row i is the compressed range profile received at pulse i. Each target
// contributes its envelope centred on the exact slant range, carrying the
// two-way carrier phase exp(-i*4*pi*R/lambda). This is the direct synthesis
// path; SimulateRaw + Compress produce the same data through an explicit
// chirp + matched-filter front end.
func Simulate(p Params, targets []Target, pathErr PathError) *mat.C {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	data := mat.NewC(p.NumPulses, p.NumBins)
	for i := 0; i < p.NumPulses; i++ {
		simulatePulse(data, p, i, targets, pathErr)
	}
	return data
}

// simulatePulse synthesizes the compressed range profile of pulse i into
// its row of data. Rows are independent, which is what SimulatePar
// exploits.
func simulatePulse(data *mat.C, p Params, i int, targets []Target, pathErr PathError) {
	k := 4 * math.Pi / p.Wavelength
	u := p.TrackPos(i)
	row := data.Row(i)
	for _, t := range targets {
		r := Range(u, pathErr, t)
		phase := cf.Scale(t.Amp, cf.Expi(float32(-k*r)))
		c0 := int(math.Ceil((r - float64(p.EnvelopeHalfWidth)*p.DR - p.R0) / p.DR))
		c1 := int(math.Floor((r + float64(p.EnvelopeHalfWidth)*p.DR - p.R0) / p.DR))
		if c0 < 0 {
			c0 = 0
		}
		if c1 > p.NumBins-1 {
			c1 = p.NumBins - 1
		}
		for c := c0; c <= c1; c++ {
			d := p.R0 + float64(c)*p.DR - r
			e := float32(p.envelope(d))
			if e == 0 {
				continue
			}
			row[c] += cf.Scale(e, phase)
		}
	}
}

// Chirp describes the transmitted linear-FM pulse for the explicit
// front-end path.
type Chirp struct {
	// Samples is the pulse length in range samples (at the range-bin rate,
	// i.e. one sample per DR of two-way range).
	Samples int
	// Bandwidth is expressed as the resulting compressed resolution in
	// range bins: the chirp sweeps so that the matched filter output has a
	// mainlobe of about ResBins bins.
	ResBins float64
}

// DefaultChirp returns a chirp whose compressed resolution matches
// p.RangeRes.
func (p Params) DefaultChirp() Chirp {
	return Chirp{Samples: 128, ResBins: p.RangeRes / p.DR}
}

// Reference returns the complex baseband chirp replica.
func (c Chirp) Reference() []complex64 {
	ref := make([]complex64, c.Samples)
	n := float64(c.Samples)
	// LFM: phase(t) = pi * K * t^2 with K chosen so the swept bandwidth is
	// (sample rate)/ResBins over the pulse, giving ~ResBins compressed
	// width.
	kr := 1 / (c.ResBins * n)
	for i := range ref {
		t := float64(i) - n/2
		phi := math.Pi * kr * t * t
		ref[i] = cf.Expi(float32(phi))
	}
	return ref
}

// SimulateRaw synthesizes uncompressed echo data: each target contributes a
// delayed copy of the chirp with the two-way carrier phase. Row i has
// NumBins + Chirp.Samples - 1 samples so that compression with Compress
// yields exactly NumBins bins; sample j of the raw row corresponds to a
// two-way range of R0 + (j - Samples/2)*DR at the chirp centre.
func SimulateRaw(p Params, ch Chirp, targets []Target, pathErr PathError) *mat.C {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	ref := ch.Reference()
	raw := mat.NewC(p.NumPulses, p.NumBins+ch.Samples-1)
	for i := 0; i < p.NumPulses; i++ {
		simulateRawPulse(raw, p, ref, i, targets, pathErr)
	}
	return raw
}

// simulateRawPulse synthesizes the raw chirp echoes of pulse i into its
// row of raw. Rows are independent, which is what SimulateRawPar
// exploits.
func simulateRawPulse(raw *mat.C, p Params, ref []complex64, i int, targets []Target, pathErr PathError) {
	k := 4 * math.Pi / p.Wavelength
	u := p.TrackPos(i)
	row := raw.Row(i)
	for _, t := range targets {
		r := Range(u, pathErr, t)
		// The chirp centre lands at fractional bin position of range r.
		pos := (r - p.R0) / p.DR
		start := int(math.Round(pos)) // start sample of the echo copy
		phase := cf.Scale(t.Amp, cf.Expi(float32(-k*r)))
		for j, rv := range ref {
			idx := start + j
			if idx < 0 || idx >= len(row) {
				continue
			}
			row[idx] += phase * rv
		}
	}
}

// Compress matched-filters each row of raw against the chirp replica,
// returning NumPulses x NumBins pulse-compressed data normalized by the
// pulse energy so target peaks have approximately their Amp magnitude.
func Compress(p Params, ch Chirp, raw *mat.C) *mat.C {
	ref := ch.Reference()
	if raw.Cols != p.NumBins+ch.Samples-1 {
		panic(fmt.Sprintf("sar: raw width %d does not match params (%d)", raw.Cols, p.NumBins+ch.Samples-1))
	}
	out := mat.NewC(raw.Rows, p.NumBins)
	var energy float32
	for _, v := range ref {
		energy += cf.Abs2(v)
	}
	inv := 1 / energy
	for i := 0; i < raw.Rows; i++ {
		comp := fft.Correlate(raw.Row(i), ref)
		dst := out.Row(i)
		for j := range dst {
			dst[j] = cf.Scale(inv, comp[j])
		}
	}
	return out
}
