package sar

import (
	"fmt"

	"sarmany/internal/fft"
	"sarmany/internal/mat"
)

// UpsampleRange interpolates every range profile by an integer factor
// using FFT zero-padding (exact band-limited interpolation), returning the
// upsampled data and the adjusted parameters (DR divided by the factor,
// NumBins scaled accordingly).
//
// Range oversampling is the standard countermeasure to the quality loss
// the paper attributes to FFBP's simplified nearest-neighbour
// interpolation: with the profile sampled f times finer, the maximum
// nearest-neighbour range error — and with it the phase error
// 4*pi*err/lambda accumulated over the merge iterations — shrinks by f.
// The related FFBP implementation the paper compares against (Lidberg et
// al.) relies on the same technique. The cost is f times the memory
// footprint and per-merge bandwidth, which is exactly the resource the
// Epiphany implementation is short of — a trade-off the upsampling
// ablation quantifies.
func UpsampleRange(data *mat.C, p Params, factor int) (*mat.C, Params, error) {
	if factor < 1 {
		return nil, Params{}, fmt.Errorf("sar: upsample factor %d < 1", factor)
	}
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		return nil, Params{}, fmt.Errorf("sar: data is %dx%d, params say %dx%d",
			data.Rows, data.Cols, p.NumPulses, p.NumBins)
	}
	if factor == 1 {
		return data.Clone(), p, nil
	}
	n := fft.NextPow2(p.NumBins)
	m := n * factor
	planN := fft.MustPlan(n)
	planM := fft.MustPlan(m)

	outBins := (p.NumBins-1)*factor + 1
	out := mat.NewC(p.NumPulses, outBins)
	src := make([]complex64, n)
	dst := make([]complex64, m)
	scale := float32(factor)
	for i := 0; i < p.NumPulses; i++ {
		copy(src, data.Row(i))
		for j := p.NumBins; j < n; j++ {
			src[j] = 0
		}
		planN.Forward(src)
		// Zero-pad the spectrum symmetrically: low half at the front, high
		// half at the back, Nyquist bin split evenly.
		for j := range dst {
			dst[j] = 0
		}
		half := n / 2
		copy(dst[:half], src[:half])
		copy(dst[m-half:], src[n-half:])
		if n%2 == 0 {
			// Split the Nyquist bin to keep the signal real-compatible
			// and the interpolation exact for band-limited input.
			ny := src[half] * complex(0.5, 0)
			dst[half] = ny
			dst[m-half] = ny
		}
		planM.Inverse(dst)
		row := out.Row(i)
		for j := range row {
			row[j] = dst[j] * complex(scale, 0)
		}
	}
	q := p
	q.DR = p.DR / float64(factor)
	q.NumBins = outBins
	q.EnvelopeHalfWidth = p.EnvelopeHalfWidth * factor
	return out, q, nil
}
