package sar

import (
	"math"
	"testing"

	"sarmany/internal/cf"
)

func TestUpsampleRangePreservesSamples(t *testing.T) {
	p := smallParams()
	data := Simulate(p, []Target{{U: 0, Y: p.CenterRange(), Amp: 1}}, nil)
	up, q, err := UpsampleRange(data, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.DR != p.DR/4 {
		t.Errorf("DR %v", q.DR)
	}
	if up.Cols != (p.NumBins-1)*4+1 || q.NumBins != up.Cols {
		t.Errorf("bins %d, params %d", up.Cols, q.NumBins)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("upsampled params invalid: %v", err)
	}
	// FFT interpolation is exact at the original sample positions.
	for i := 0; i < p.NumPulses; i += 9 {
		for j := 0; j < p.NumBins; j += 13 {
			a := data.At(i, j)
			b := up.At(i, j*4)
			if cfAbs(a-b) > 1e-4*(1+cfAbs(a)) {
				t.Fatalf("(%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestUpsampleRangeInterpolatesPeak(t *testing.T) {
	// A target midway between two original bins peaks at an odd upsampled
	// bin close to its true range.
	p := smallParams()
	tg := Target{U: 0, Y: p.CenterRange() + p.DR/2, Amp: 1}
	data := Simulate(p, []Target{tg}, nil)
	up, q, err := UpsampleRange(data, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	mid := p.NumPulses / 2
	r := Range(q.TrackPos(mid), nil, tg)
	want := int(math.Round((r - q.R0) / q.DR))
	row := up.Row(mid)
	best, bv := 0, float32(-1)
	for j, v := range row {
		if a := cf.Abs2(v); a > bv {
			best, bv = j, a
		}
	}
	if abs(best-want) > 1 {
		t.Errorf("upsampled peak at %d, want %d", best, want)
	}
}

func TestUpsampleRangeFactorOne(t *testing.T) {
	p := smallParams()
	data := Simulate(p, []Target{{U: 0, Y: p.CenterRange(), Amp: 1}}, nil)
	up, q, err := UpsampleRange(data, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q != p || !up.Equal(data) {
		t.Error("factor 1 not an identity")
	}
	up.Set(0, 0, 99)
	if data.At(0, 0) == 99 {
		t.Error("factor 1 aliases the input")
	}
}

func TestUpsampleRangeErrors(t *testing.T) {
	p := smallParams()
	data := Simulate(p, nil, nil)
	if _, _, err := UpsampleRange(data, p, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	p2 := p
	p2.NumBins++
	if _, _, err := UpsampleRange(data, p2, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
