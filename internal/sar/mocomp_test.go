package sar

import (
	"math"
	"testing"

	"sarmany/internal/cf"
)

func TestMotionCompensateRestoresNominalData(t *testing.T) {
	p := smallParams()
	tg := Target{U: 0, Y: p.CenterRange(), Amp: 1}
	pe := func(u float64) float64 { return 1.5 * math.Sin(2*math.Pi*u/40) }

	clean := Simulate(p, []Target{tg}, nil)
	dirty := Simulate(p, []Target{tg}, pe)
	comp := MotionCompensate(dirty, p, pe)

	peakBin := func(row []complex64) int {
		best, bv := 0, float32(-1)
		for i, v := range row {
			if a := cf.Abs2(v); a > bv {
				best, bv = i, a
			}
		}
		return best
	}
	for i := 0; i < p.NumPulses; i += 3 {
		pc := peakBin(comp.Row(i))
		pn := peakBin(clean.Row(i))
		if d := pc - pn; d < -1 || d > 1 {
			t.Fatalf("pulse %d: compensated peak at %d, nominal %d", i, pc, pn)
		}
		// Phase at the peak is restored to the nominal value.
		a := comp.At(i, pn)
		b := clean.At(i, pn)
		pa := math.Atan2(float64(imag(a)), float64(real(a)))
		pb := math.Atan2(float64(imag(b)), float64(real(b)))
		d := math.Mod(pa-pb+3*math.Pi, 2*math.Pi) - math.Pi
		if math.Abs(d) > 0.35 {
			t.Fatalf("pulse %d: residual phase %v rad", i, d)
		}
	}
}

func TestMotionCompensateNilPathIsIdentity(t *testing.T) {
	p := smallParams()
	data := Simulate(p, []Target{{U: 0, Y: p.CenterRange(), Amp: 1}}, nil)
	if MotionCompensate(data, p, nil) != data {
		t.Error("nil path error should return the input")
	}
}
