package sar

import (
	"math"
	"testing"

	"sarmany/internal/cf"
)

func smallParams() Params {
	p := DefaultParams()
	p.NumPulses = 64
	p.NumBins = 201
	p.R0 = 500
	return p
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mods := []func(*Params){
		func(p *Params) { p.NumPulses = 0 },
		func(p *Params) { p.NumBins = -1 },
		func(p *Params) { p.DR = 0 },
		func(p *Params) { p.R0 = -5 },
		func(p *Params) { p.PulseSpacing = 0 },
		func(p *Params) { p.Wavelength = -1 },
		func(p *Params) { p.RangeRes = 0.1 },
		func(p *Params) { p.EnvelopeHalfWidth = 0 },
	}
	for i, m := range mods {
		p := DefaultParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTrackPosCentred(t *testing.T) {
	p := DefaultParams()
	first := p.TrackPos(0)
	last := p.TrackPos(p.NumPulses - 1)
	if math.Abs(first+last) > 1e-9 {
		t.Errorf("track not centred: %v %v", first, last)
	}
	if math.Abs((last-first)-(p.ApertureLength()-p.PulseSpacing)) > 1e-9 {
		t.Errorf("aperture span wrong: %v", last-first)
	}
	// Consecutive pulses are PulseSpacing apart.
	if d := p.TrackPos(1) - p.TrackPos(0); math.Abs(d-p.PulseSpacing) > 1e-12 {
		t.Errorf("pulse spacing %v", d)
	}
}

func TestRangeGeometry(t *testing.T) {
	tg := Target{U: 30, Y: 400, Amp: 1}
	if r := Range(30, nil, tg); math.Abs(r-400) > 1e-12 {
		t.Errorf("range at closest approach %v", r)
	}
	if r := Range(0, nil, tg); math.Abs(r-math.Hypot(30, 400)) > 1e-12 {
		t.Errorf("offset range %v", r)
	}
	// A cross-track path error towards the target shortens the range.
	pe := func(u float64) float64 { return 1.0 }
	if r := Range(30, pe, tg); math.Abs(r-399) > 1e-12 {
		t.Errorf("range with path error %v", r)
	}
}

func TestEnvelopeShape(t *testing.T) {
	p := DefaultParams()
	if e := p.envelope(0); math.Abs(e-1) > 1e-12 {
		t.Errorf("envelope peak %v", e)
	}
	w := float64(p.EnvelopeHalfWidth) * p.DR
	if e := p.envelope(w + 0.01); e != 0 {
		t.Errorf("envelope beyond support: %v", e)
	}
	if e := p.envelope(-w - 0.01); e != 0 {
		t.Errorf("envelope beyond support: %v", e)
	}
	// Symmetric.
	if a, b := p.envelope(0.7), p.envelope(-0.7); math.Abs(a-b) > 1e-12 {
		t.Errorf("envelope asymmetric: %v %v", a, b)
	}
	// Decays away from the peak.
	if p.envelope(0) <= p.envelope(p.RangeRes/2) {
		t.Error("envelope does not decay")
	}
}

func TestSimulatePeakAtTargetRange(t *testing.T) {
	p := smallParams()
	tg := Target{U: 0, Y: p.CenterRange(), Amp: 1}
	data := Simulate(p, []Target{tg}, nil)
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		t.Fatalf("data dims %dx%d", data.Rows, data.Cols)
	}
	// For every pulse the strongest bin must be the bin nearest the true
	// slant range.
	for i := 0; i < p.NumPulses; i++ {
		r := Range(p.TrackPos(i), nil, tg)
		wantBin := int(math.Round((r - p.R0) / p.DR))
		row := data.Row(i)
		best, bestV := -1, float32(-1)
		for c, v := range row {
			if m := cf.Abs2(v); m > bestV {
				best, bestV = c, m
			}
		}
		if best != wantBin {
			t.Fatalf("pulse %d: peak at bin %d, want %d", i, best, wantBin)
		}
	}
}

func TestSimulatePhaseIsCarrierPhase(t *testing.T) {
	p := smallParams()
	tg := Target{U: 0, Y: p.CenterRange(), Amp: 1}
	data := Simulate(p, []Target{tg}, nil)
	k := 4 * math.Pi / p.Wavelength
	// At the bin nearest the target range, the phase must match
	// -k*R plus the (real, non-negative near peak) envelope factor.
	for _, i := range []int{0, p.NumPulses / 2, p.NumPulses - 1} {
		r := Range(p.TrackPos(i), nil, tg)
		bin := int(math.Round((r - p.R0) / p.DR))
		got := data.At(i, bin)
		wantPhase := math.Mod(-k*r, 2*math.Pi)
		gotPhase := math.Atan2(float64(imag(got)), float64(real(got)))
		d := math.Mod(gotPhase-wantPhase+3*math.Pi, 2*math.Pi) - math.Pi
		if math.Abs(d) > 1e-3 {
			t.Errorf("pulse %d: phase %v, want %v", i, gotPhase, wantPhase)
		}
	}
}

func TestSimulateAmplitudeScales(t *testing.T) {
	p := smallParams()
	t1 := Simulate(p, []Target{{U: 0, Y: p.CenterRange(), Amp: 1}}, nil)
	t2 := Simulate(p, []Target{{U: 0, Y: p.CenterRange(), Amp: 2}}, nil)
	mid := p.NumPulses / 2
	bin := int(math.Round((Range(p.TrackPos(mid), nil, Target{U: 0, Y: p.CenterRange()}) - p.R0) / p.DR))
	a := cf.Abs(t1.At(mid, bin))
	b := cf.Abs(t2.At(mid, bin))
	if math.Abs(float64(b/a)-2) > 1e-3 {
		t.Errorf("amplitude ratio %v, want 2", b/a)
	}
}

func TestSimulateSuperposition(t *testing.T) {
	p := smallParams()
	ta := Target{U: -20, Y: p.CenterRange() - 10, Amp: 1}
	tb := Target{U: 25, Y: p.CenterRange() + 15, Amp: 0.5}
	da := Simulate(p, []Target{ta}, nil)
	db := Simulate(p, []Target{tb}, nil)
	dab := Simulate(p, []Target{ta, tb}, nil)
	for i := 0; i < p.NumPulses; i += 7 {
		ra, rb, rab := da.Row(i), db.Row(i), dab.Row(i)
		for c := range rab {
			want := ra[c] + rb[c]
			if cfAbs(rab[c]-want) > 1e-5 {
				t.Fatalf("superposition violated at (%d,%d)", i, c)
			}
		}
	}
}

func TestSimulatePathErrorShiftsRange(t *testing.T) {
	p := smallParams()
	tg := Target{U: 0, Y: p.CenterRange(), Amp: 1}
	// Constant 2 m displacement towards the scene shortens all ranges by
	// ~2 m = 4 bins.
	pe := func(u float64) float64 { return 2.0 }
	d0 := Simulate(p, []Target{tg}, nil)
	d1 := Simulate(p, []Target{tg}, pe)
	mid := p.NumPulses / 2
	peak := func(row []complex64) int {
		best, bestV := -1, float32(-1)
		for c, v := range row {
			if m := cf.Abs2(v); m > bestV {
				best, bestV = c, m
			}
		}
		return best
	}
	p0 := peak(d0.Row(mid))
	p1 := peak(d1.Row(mid))
	if p0-p1 != 4 {
		t.Errorf("path error shifted peak by %d bins, want 4", p0-p1)
	}
}

func TestSixTargetSceneInsideSwath(t *testing.T) {
	p := DefaultParams()
	ts := SixTargetScene(p)
	if len(ts) != 6 {
		t.Fatalf("scene has %d targets", len(ts))
	}
	for i, tg := range ts {
		if tg.Y <= p.R0 || tg.Y >= p.MaxRange() {
			t.Errorf("target %d outside swath: Y=%v", i, tg.Y)
		}
		if math.Abs(tg.U) > p.ApertureLength()/2 {
			t.Errorf("target %d outside aperture: U=%v", i, tg.U)
		}
	}
}

func TestChirpReference(t *testing.T) {
	ch := Chirp{Samples: 64, ResBins: 2}
	ref := ch.Reference()
	if len(ref) != 64 {
		t.Fatalf("reference length %d", len(ref))
	}
	// Unit modulus everywhere.
	for i, v := range ref {
		if math.Abs(float64(cf.Abs2(v))-1) > 1e-5 {
			t.Fatalf("sample %d modulus %v", i, cf.Abs2(v))
		}
	}
	// Symmetric phase (phi(t) = pi K t^2 about the centre).
	n := len(ref)
	for i := 1; i < n/2; i++ {
		a, b := ref[n/2-i], ref[n/2+i]
		if cfAbs(a-b) > 1e-4 {
			t.Fatalf("chirp not symmetric at %d: %v %v", i, a, b)
		}
	}
}

func TestCompressMatchesDirectSynthesis(t *testing.T) {
	// The explicit chirp + matched-filter path must produce range profiles
	// whose peaks coincide with the direct synthesis path.
	p := smallParams()
	ch := p.DefaultChirp()
	tg := Target{U: 10, Y: p.CenterRange() - 20, Amp: 1}
	raw := SimulateRaw(p, ch, []Target{tg}, nil)
	comp := Compress(p, ch, raw)
	direct := Simulate(p, []Target{tg}, nil)
	if comp.Rows != direct.Rows || comp.Cols != direct.Cols {
		t.Fatalf("compressed dims %dx%d", comp.Rows, comp.Cols)
	}
	peak := func(row []complex64) int {
		best, bestV := -1, float32(-1)
		for c, v := range row {
			if m := cf.Abs2(v); m > bestV {
				best, bestV = c, m
			}
		}
		return best
	}
	for i := 0; i < p.NumPulses; i += 5 {
		pc := peak(comp.Row(i))
		pd := peak(direct.Row(i))
		if abs(pc-pd) > 1 {
			t.Fatalf("pulse %d: compressed peak %d vs direct %d", i, pc, pd)
		}
	}
	// Peak magnitude is near the target amplitude after normalization.
	mid := p.NumPulses / 2
	m := cf.Abs(comp.At(mid, peak(comp.Row(mid))))
	if m < 0.5 || m > 1.5 {
		t.Errorf("compressed peak magnitude %v, want ~1", m)
	}
}

func TestCompressRejectsWrongWidth(t *testing.T) {
	p := smallParams()
	ch := p.DefaultChirp()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Compress(p, ch, Simulate(p, nil, nil))
}

func cfAbs(z complex64) float64 {
	return math.Hypot(float64(real(z)), float64(imag(z)))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkSimulateSixTargets(b *testing.B) {
	p := DefaultParams()
	ts := SixTargetScene(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(p, ts, nil)
	}
}
