package sar

import (
	"math"
	"testing"

	"sarmany/internal/cf"
	"sarmany/internal/fft"
	"sarmany/internal/mat"
)

func TestAddNoiseStatistics(t *testing.T) {
	m := mat.NewC(100, 100)
	AddNoise(m, 2.0, 42)
	var sum, sum2 float64
	for r := 0; r < m.Rows; r++ {
		for _, v := range m.Row(r) {
			sum += float64(real(v)) + float64(imag(v))
			sum2 += float64(cf.Abs2(v))
		}
	}
	n := float64(m.Rows * m.Cols)
	mean := sum / (2 * n)
	if math.Abs(mean) > 0.05 {
		t.Errorf("noise mean %v", mean)
	}
	// E|z|^2 = sigma^2 = 4.
	power := sum2 / n
	if math.Abs(power-4) > 0.2 {
		t.Errorf("noise power %v, want ~4", power)
	}
}

func TestAddNoiseDeterministic(t *testing.T) {
	a := AddNoise(mat.NewC(10, 10), 1, 7)
	b := AddNoise(mat.NewC(10, 10), 1, 7)
	if !a.Equal(b) {
		t.Error("same seed gave different noise")
	}
	c := AddNoise(mat.NewC(10, 10), 1, 8)
	if a.Equal(c) {
		t.Error("different seeds gave identical noise")
	}
}

func TestCompressWindowedLowersSidelobes(t *testing.T) {
	p := DefaultParams()
	p.NumPulses = 4
	p.NumBins = 401
	p.R0 = 500
	ch := Chirp{Samples: 128, ResBins: 2}
	tg := Target{U: 0, Y: p.R0 + 100, Amp: 1}
	raw := SimulateRaw(p, ch, []Target{tg}, nil)

	plain := Compress(p, ch, raw)
	tapered := CompressWindowed(p, ch, raw, fft.Taylor)

	sidelobe := func(m *mat.C) float64 {
		row := m.Row(0)
		// Peak and its immediate mainlobe.
		pi, pv := 0, float32(0)
		for i, v := range row {
			if a := cf.Abs2(v); a > pv {
				pi, pv = i, a
			}
		}
		var side float32
		for i, v := range row {
			if i >= pi-6 && i <= pi+6 {
				continue
			}
			if a := cf.Abs2(v); a > side {
				side = a
			}
		}
		return 10 * math.Log10(float64(side/pv))
	}
	sp := sidelobe(plain)
	st := sidelobe(tapered)
	if !(st < sp-5) {
		t.Errorf("Taylor weighting did not lower sidelobes: %v vs %v dB", st, sp)
	}
	// The peak still lands at the target bin with near-unit amplitude.
	row := tapered.Row(0)
	pi, pv := 0, float32(0)
	for i, v := range row {
		if a := cf.Abs2(v); a > pv {
			pi, pv = i, a
		}
	}
	r := Range(p.TrackPos(0), nil, tg)
	want := int(math.Round((r - p.R0) / p.DR))
	if abs(pi-want) > 1 {
		t.Errorf("tapered peak at %d, want %d", pi, want)
	}
	if amp := math.Sqrt(float64(pv)); amp < 0.5 || amp > 1.5 {
		t.Errorf("tapered peak amplitude %v", amp)
	}
}

func TestCompressWindowedRejectsWrongWidth(t *testing.T) {
	p := DefaultParams()
	p.NumPulses = 2
	p.NumBins = 101
	ch := p.DefaultChirp()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CompressWindowed(p, ch, mat.NewC(2, 50), fft.Hann)
}
