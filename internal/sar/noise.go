package sar

import (
	"math"
	"math/rand"

	"sarmany/internal/cf"
	"sarmany/internal/fft"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
)

// AddNoise adds circular complex white Gaussian noise of standard
// deviation sigma (per complex sample; sigma/sqrt(2) per component) to
// every element of m, in place, using a deterministic generator seeded
// with seed. It returns m for chaining.
//
// Back-projection integrates NumPulses echoes coherently, so a target of
// amplitude A in noise of deviation sigma gains ~10*log10(N) dB of SNR in
// the image — the processing gain that makes SAR work at all, and a
// useful end-to-end validity check of the whole chain.
func AddNoise(m *mat.C, sigma float64, seed int64) *mat.C {
	rng := rand.New(rand.NewSource(seed))
	s := sigma / 1.4142135623730951
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] += complex(float32(rng.NormFloat64()*s), float32(rng.NormFloat64()*s))
		}
	}
	return m
}

// MotionCompensate corrects pulse-compressed data for a known flight-path
// error (e.g. from GPS/INS, the paper's Sec. II-A: "the compensations are
// typically based on positioning information from GPS"): each pulse's
// range profile is resampled by the cross-track displacement and its
// carrier phase restored, referencing the data to the nominal straight
// track. The correction is space-invariant per pulse (exact at broadside,
// approximate at squint) — the standard first-order MOCOMP that makes
// straight-track processors (including the frequency-domain RDA) usable
// again; time-domain back-projection could instead compensate exactly
// per pixel.
func MotionCompensate(m *mat.C, p Params, pathErr PathError) *mat.C {
	if pathErr == nil {
		return m
	}
	out := mat.NewC(m.Rows, m.Cols)
	k := 4 * math.Pi / p.Wavelength
	for i := 0; i < m.Rows; i++ {
		delta := pathErr(p.TrackPos(i)) // displacement toward the scene
		src := m.Row(i)
		dst := out.Row(i)
		rot := cf.Expi(float32(-k * delta))
		for j := range dst {
			// True range of the sample that should sit at bin j is
			// r_j - delta; fetch it and restore the nominal phase.
			v := interp.At1(src, float64(j)-delta/p.DR, interp.Linear)
			dst[j] = v * rot
		}
	}
	return out
}

// RandomScene returns n point targets placed uniformly at random (with
// deterministic seed) inside the given azimuth and range intervals, with
// amplitudes in [0.5, 1]. Useful for workload generation in benches and
// stress tests.
func RandomScene(n int, seed int64, uMin, uMax, yMin, yMax float64) []Target {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Target, n)
	for i := range out {
		out[i] = Target{
			U:   uMin + rng.Float64()*(uMax-uMin),
			Y:   yMin + rng.Float64()*(yMax-yMin),
			Amp: float32(0.5 + 0.5*rng.Float64()),
		}
	}
	return out
}

// CompressWindowed matched-filters each row of raw against an
// amplitude-weighted chirp replica: the taper lowers the compressed
// pulse's range sidelobes (e.g. from -13 dB unweighted to about -35 dB
// with the Taylor window) at the cost of a slightly wider mainlobe and
// the window's coherent gain. Output is normalized like Compress, with
// the window's gain compensated so target peaks keep ~their amplitude.
func CompressWindowed(p Params, ch Chirp, raw *mat.C, kind fft.WindowKind) *mat.C {
	ref := ch.Reference()
	w := fft.Window(kind, len(ref))
	fft.ApplyWindow(ref, w)
	if raw.Cols != p.NumBins+ch.Samples-1 {
		panic("sar: raw width does not match params")
	}
	out := mat.NewC(raw.Rows, p.NumBins)
	// Normalize by the weighted pulse energy scaled back by the coherent
	// gain, so a unit target compresses to ~unit amplitude.
	var energy float32
	for _, v := range ref {
		energy += cf.Abs2(v)
	}
	inv := 1 / energy
	for i := 0; i < raw.Rows; i++ {
		comp := fft.Correlate(raw.Row(i), ref)
		dst := out.Row(i)
		for j := range dst {
			dst[j] = cf.Scale(inv, comp[j])
		}
	}
	return out
}
