package cf

import (
	"math"
	"math/rand"
	"testing"
)

// ulpDiff32 returns the distance in float32 ULPs between a and b, treating
// +0 and -0 as equal. It returns a large count for NaN mismatches so the
// caller's tolerance check fails loudly.
func ulpDiff32(a, b float32) int {
	if a == b {
		return 0
	}
	an := math.IsNaN(float64(a))
	bn := math.IsNaN(float64(b))
	if an || bn {
		if an && bn {
			return 0
		}
		return math.MaxInt32
	}
	ia := int64(int32(math.Float32bits(a)))
	ib := int64(int32(math.Float32bits(b)))
	// Map the sign-magnitude float ordering onto a linear integer scale.
	if ia < 0 {
		ia = math.MinInt32 + 1 - ia
	}
	if ib < 0 {
		ib = math.MinInt32 + 1 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	if d > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(d)
}

// checkFastSincos asserts FastSincos(phi) matches float32(math.Sincos(phi))
// within one ULP per component, with an absolute escape hatch near zero:
// at exact multiples of pi the true value is ~1e-16, where the reduced
// argument of the two implementations can differ in sign at a magnitude
// far below anything the accumulating kernels can observe.
func checkFastSincos(t *testing.T, phi float32) {
	t.Helper()
	gs, gc := FastSincos(phi)
	ws64, wc64 := math.Sincos(float64(phi))
	ws, wc := float32(ws64), float32(wc64)
	const absTol = 1e-9
	if ulpDiff32(gs, ws) > 1 && math.Abs(float64(gs-ws)) > absTol {
		t.Fatalf("FastSincos(%v) sin = %v, want %v (%d ULPs)", phi, gs, ws, ulpDiff32(gs, ws))
	}
	if ulpDiff32(gc, wc) > 1 && math.Abs(float64(gc-wc)) > absTol {
		t.Fatalf("FastSincos(%v) cos = %v, want %v (%d ULPs)", phi, gc, wc, ulpDiff32(gc, wc))
	}
}

func TestFastSincosMatchesSincos(t *testing.T) {
	// Edge cases: zeros, octant boundaries, sign symmetry, fallback range.
	edges := []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.Pi / 4), float32(math.Pi / 2), float32(3 * math.Pi / 4),
		float32(math.Pi), float32(3 * math.Pi / 2), float32(2 * math.Pi),
		-float32(math.Pi / 4), -float32(math.Pi / 2), -float32(math.Pi),
		1, -1, 1e3, -1e3, 1e6, -1e6, 3.9270e3, // ~k*rmax at paper scale
		float32(fastSincosCut), -float32(fastSincosCut),
		float32(fastSincosCut) * 2, 1e30, -1e30,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
	}
	for _, phi := range edges {
		checkFastSincos(t, phi)
	}

	// Dense random sweep over the phase magnitudes the backprojection
	// kernels produce: k*r with k = 4*pi/lambda ~ 0.419 and r up to tens
	// of kilometres, i.e. |phi| well inside 1e5.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200000; i++ {
		phi := float32((rng.Float64()*2 - 1) * 1e5)
		checkFastSincos(t, phi)
	}
	// And a thinner sweep out to the fallback cut.
	for i := 0; i < 50000; i++ {
		phi := float32((rng.Float64()*2 - 1) * float64(fastSincosCut))
		checkFastSincos(t, phi)
	}
}

func TestFastSincosDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 1000; i++ {
		phi := float32((rng.Float64()*2 - 1) * 1e5)
		s1, c1 := FastSincos(phi)
		s2, c2 := FastSincos(phi)
		if s1 != s2 || c1 != c2 {
			t.Fatalf("FastSincos(%v) not deterministic", phi)
		}
	}
}

func BenchmarkFastSincos(b *testing.B) {
	var acc float32
	for i := 0; i < b.N; i++ {
		s, c := FastSincos(float32(i&1023) * 3.9)
		acc += s + c
	}
	_ = acc
}

func BenchmarkMathSincos(b *testing.B) {
	var acc float32
	for i := 0; i < b.N; i++ {
		s, c := math.Sincos(float64(float32(i&1023) * 3.9))
		acc += float32(s) + float32(c)
	}
	_ = acc
}
