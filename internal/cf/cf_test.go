package cf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAbs2(t *testing.T) {
	cases := []struct {
		z    complex64
		want float32
	}{
		{0, 0},
		{complex(3, 4), 25},
		{complex(-3, 4), 25},
		{complex(0, -2), 4},
		{complex(1, 0), 1},
	}
	for _, c := range cases {
		if got := Abs2(c.z); got != c.want {
			t.Errorf("Abs2(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestAbsMatchesAbs2(t *testing.T) {
	err := quick.Check(func(re, im float32) bool {
		if math.IsNaN(float64(re)) || math.IsNaN(float64(im)) {
			return true
		}
		// Keep magnitudes sane to avoid float32 overflow in Abs2.
		re = float32(math.Mod(float64(re), 1e6))
		im = float32(math.Mod(float64(im), 1e6))
		z := complex(re, im)
		a := float64(Abs(z))
		b := math.Sqrt(float64(Abs2(z)))
		return math.Abs(a-b) <= 1e-3*(1+a)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMulAdd(t *testing.T) {
	a := complex64(complex(1, 2))
	b := complex64(complex(3, -1))
	c := complex64(complex(-2, 4))
	want := a + b*c
	got := MulAdd(a, b, c)
	if got != want {
		t.Errorf("MulAdd = %v, want %v", got, want)
	}
}

func TestMulAddProperty(t *testing.T) {
	err := quick.Check(func(ar, ai, br, bi, cr, ci float32) bool {
		trim := func(x float32) float32 { return float32(math.Mod(float64(x), 1e4)) }
		a := complex(trim(ar), trim(ai))
		b := complex(trim(br), trim(bi))
		c := complex(trim(cr), trim(ci))
		got := MulAdd(a, b, c)
		want := a + b*c
		return math.Abs(float64(real(got)-real(want))) < 1e-1 &&
			math.Abs(float64(imag(got)-imag(want))) < 1e-1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestScaleConj(t *testing.T) {
	z := complex64(complex(2, -3))
	if got := Scale(2, z); got != complex(4, -6) {
		t.Errorf("Scale = %v", got)
	}
	if got := Conj(z); got != complex(2, 3) {
		t.Errorf("Conj = %v", got)
	}
}

func TestExpi(t *testing.T) {
	cases := []struct {
		phi  float32
		want complex64
	}{
		{0, 1},
		{float32(math.Pi / 2), complex(0, 1)},
		{float32(math.Pi), complex(-1, 0)},
	}
	for _, c := range cases {
		got := Expi(c.phi)
		if math.Abs(float64(real(got)-real(c.want))) > 1e-6 ||
			math.Abs(float64(imag(got)-imag(c.want))) > 1e-6 {
			t.Errorf("Expi(%v) = %v, want %v", c.phi, got, c.want)
		}
	}
}

func TestExpiUnitModulus(t *testing.T) {
	err := quick.Check(func(phi float32) bool {
		if math.IsNaN(float64(phi)) || math.IsInf(float64(phi), 0) {
			return true
		}
		phi = float32(math.Mod(float64(phi), 2*math.Pi))
		m := Abs2(Expi(phi))
		return math.Abs(float64(m)-1) < 1e-5
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFastInvSqrtAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x := float32(math.Exp(rng.Float64()*40 - 20)) // ~1e-9 .. 1e8
		got := float64(FastInvSqrt(x))
		want := 1 / math.Sqrt(float64(x))
		rel := math.Abs(got-want) / want
		if rel > 5e-6 {
			t.Fatalf("FastInvSqrt(%v): rel err %v", x, rel)
		}
	}
}

func TestFastSqrtEdges(t *testing.T) {
	if got := FastSqrt(0); got != 0 {
		t.Errorf("FastSqrt(0) = %v, want 0", got)
	}
	if got := FastSqrt(1); math.Abs(float64(got)-1) > 5e-6 {
		t.Errorf("FastSqrt(1) = %v, want 1", got)
	}
	if got := FastInvSqrt(float32(math.Inf(1))); got != 0 {
		t.Errorf("FastInvSqrt(+Inf) = %v, want 0", got)
	}
	if got := FastInvSqrt(-1); !math.IsNaN(float64(got)) {
		t.Errorf("FastInvSqrt(-1) = %v, want NaN", got)
	}
}

func TestFastSqrtAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		x := float32(math.Exp(rng.Float64()*30 - 10))
		got := float64(FastSqrt(x))
		want := math.Sqrt(float64(x))
		rel := math.Abs(got-want) / want
		if rel > 5e-6 {
			t.Fatalf("FastSqrt(%v): rel err %v", x, rel)
		}
	}
}

func TestLerp(t *testing.T) {
	a := complex64(complex(0, 0))
	b := complex64(complex(2, -4))
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0: %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1: %v", got)
	}
	if got := Lerp(a, b, 0.5); got != complex(1, -2) {
		t.Errorf("Lerp t=0.5: %v", got)
	}
}

func BenchmarkMulAdd(b *testing.B) {
	var acc complex64
	x := complex64(complex(1.000001, -0.999999))
	y := complex64(complex(0.5, 0.25))
	for i := 0; i < b.N; i++ {
		acc = MulAdd(acc, x, y)
	}
	_ = acc
}

func BenchmarkFastSqrt(b *testing.B) {
	var acc float32
	for i := 0; i < b.N; i++ {
		acc += FastSqrt(float32(i%1000) + 1)
	}
	_ = acc
}
