// Package cf provides single-precision complex arithmetic helpers used
// throughout the SAR processing chain.
//
// The Epiphany FPU operates on 32-bit single-precision floats with a fused
// multiply-add, and the paper's implementations keep all pixel data as pairs
// of float32. This package mirrors that: everything is complex64/float32,
// with explicit FMA-shaped operations so the kernel cost accounting can
// charge them as single instructions, and with the "less compute-intensive"
// square-root approximations the paper mentions for index generation.
package cf

import "math"

// Abs2 returns |z|^2 computed as re*re + im*im without an intermediate
// square root. This is the quantity the autofocus criterion (paper eq. 6)
// actually needs.
func Abs2(z complex64) float32 {
	re := real(z)
	im := imag(z)
	return re*re + im*im
}

// Abs returns |z| using float32 arithmetic.
func Abs(z complex64) float32 {
	return float32(math.Hypot(float64(real(z)), float64(imag(z))))
}

// MulAdd returns a + b*c, the complex analogue of the scalar fused
// multiply-add. A complex multiply-accumulate is 4 scalar FMAs on the
// Epiphany, which is how the kernels charge it.
func MulAdd(a, b, c complex64) complex64 {
	br, bi := real(b), imag(b)
	cr, ci := real(c), imag(c)
	return complex(
		real(a)+br*cr-bi*ci,
		imag(a)+br*ci+bi*cr,
	)
}

// Scale returns s*z for a real scale factor.
func Scale(s float32, z complex64) complex64 {
	return complex(s*real(z), s*imag(z))
}

// Conj returns the complex conjugate of z.
func Conj(z complex64) complex64 {
	return complex(real(z), -imag(z))
}

// Expi returns exp(i*phi) = cos(phi) + i*sin(phi) as a complex64.
func Expi(phi float32) complex64 {
	s, c := math.Sincos(float64(phi))
	return complex(float32(c), float32(s))
}

// Sqrt32 returns sqrt(x) as float32. It is the precise reference against
// which FastSqrt is validated.
func Sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}

// FastInvSqrt returns an approximation of 1/sqrt(x) using the classic
// bit-level initial guess refined by two Newton–Raphson iterations. The
// paper notes that FFBP index generation uses a "less compute-intensive
// implementation of the square root operation" at the cost of some image
// quality; this is that substitution. Relative error is below 5e-6 after
// two refinement steps for normal positive inputs.
func FastInvSqrt(x float32) float32 {
	if x <= 0 || x != x || x > math.MaxFloat32 {
		// Fall back to the exact path for domain edges so callers never
		// receive garbage bit patterns for zero, negatives, NaN or +Inf.
		return float32(1 / math.Sqrt(float64(x)))
	}
	half := 0.5 * x
	i := math.Float32bits(x)
	i = 0x5f375a86 - i>>1
	y := math.Float32frombits(i)
	y = y * (1.5 - half*y*y)
	y = y * (1.5 - half*y*y)
	return y
}

// FastSqrt returns an approximation of sqrt(x) built from FastInvSqrt.
// FastSqrt(0) is exactly 0.
func FastSqrt(x float32) float32 {
	if x == 0 {
		return 0
	}
	return x * FastInvSqrt(x)
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b complex64, t float32) complex64 {
	return complex(
		real(a)+t*(real(b)-real(a)),
		imag(a)+t*(imag(b)-imag(a)),
	)
}
