// Package cf provides single-precision complex arithmetic helpers used
// throughout the SAR processing chain.
//
// The Epiphany FPU operates on 32-bit single-precision floats with a fused
// multiply-add, and the paper's implementations keep all pixel data as pairs
// of float32. This package mirrors that: everything is complex64/float32,
// with explicit FMA-shaped operations so the kernel cost accounting can
// charge them as single instructions, and with the "less compute-intensive"
// square-root approximations the paper mentions for index generation.
package cf

import "math"

// Abs2 returns |z|^2 computed as re*re + im*im without an intermediate
// square root. This is the quantity the autofocus criterion (paper eq. 6)
// actually needs.
func Abs2(z complex64) float32 {
	re := real(z)
	im := imag(z)
	return re*re + im*im
}

// Abs returns |z| using float32 arithmetic.
func Abs(z complex64) float32 {
	return float32(math.Hypot(float64(real(z)), float64(imag(z))))
}

// MulAdd returns a + b*c, the complex analogue of the scalar fused
// multiply-add. A complex multiply-accumulate is 4 scalar FMAs on the
// Epiphany, which is how the kernels charge it.
func MulAdd(a, b, c complex64) complex64 {
	br, bi := real(b), imag(b)
	cr, ci := real(c), imag(c)
	return complex(
		real(a)+br*cr-bi*ci,
		imag(a)+br*ci+bi*cr,
	)
}

// Scale returns s*z for a real scale factor.
func Scale(s float32, z complex64) complex64 {
	return complex(s*real(z), s*imag(z))
}

// Conj returns the complex conjugate of z.
func Conj(z complex64) complex64 {
	return complex(real(z), -imag(z))
}

// Expi returns exp(i*phi) = cos(phi) + i*sin(phi) as a complex64.
func Expi(phi float32) complex64 {
	s, c := math.Sincos(float64(phi))
	return complex(float32(c), float32(s))
}

// Sincos/quadrant constants for FastSincos: the Cody–Waite three-part
// split of π/4 (the same split math.Sin uses), chosen so y*PI4A is exact
// for |y| < 2^29 and the reduced argument keeps ~1e-14 absolute accuracy
// over the phase magnitudes the SAR chain produces (|φ| ≲ 1e6 rad).
const (
	pi4A = 7.85398125648498535156e-1 // 0x3fe921fb40000000
	pi4B = 3.77489470793079817668e-8 // 0x3e64442d00000000
	pi4C = 2.69515142907905952645e-15
	m4pi = 1.273239544735162542821171882678754627704620361328125 // 4/π
)

// fastSincosCut is the |φ| above which FastSincos falls back to
// math.Sincos: past it the float64 octant reduction loses the accuracy
// budget that keeps the float32 result within 1 ULP of the reference.
const fastSincosCut = 1 << 26

// FastSincos returns (sin φ, cos φ) as float32, the fused-kernel
// replacement for the per-sample math.Sincos call in the back-projection
// hot path. It runs the same Cody–Waite octant reduction as math.Sin but
// evaluates shorter polynomials — degree 9/10 instead of 13/14 — because
// the result only has to carry float32 precision: the truncation error
// (≤3e-9 relative) is ~20x below half a float32 ULP, so FastSincos
// matches float32(math.Sincos(φ)) to within 1 ULP on each component
// (pinned by TestFastSincosMatchesSincos). Non-finite and huge arguments
// fall back to math.Sincos.
// Per-quadrant sign and swap tables, indexed by quadrant = (octant>>1)&3
// after rounding odd octants up: in quadrants 1 and 3 the reduced-argument
// polynomials swap roles (sin of the reduced argument gives the cosine of
// the full argument and vice versa); the signs follow the circle. Table
// lookups and ±1 multiplies keep the quadrant handling branch-free — the
// quadrant is data-dependent in the back-projection hot loop, so branches
// on it would mispredict roughly half the time.
var (
	quadSinMul = [4]float64{1, 1, -1, -1}
	quadCosMul = [4]float64{1, -1, -1, 1}
)

func FastSincos(phi float32) (sin, cos float32) {
	x := float64(phi)
	if !(x > -fastSincosCut && x < fastSincosCut) {
		// Captures NaN, ±Inf and reduction-hostile magnitudes.
		s, c := math.Sincos(x)
		return float32(s), float32(c)
	}
	sgn := math.Copysign(1, x) // sin is odd, cos even: fold the sign in at the end
	x = math.Abs(x)
	j := int64(x * m4pi) // integer part of x/(π/4), octant index
	j += j & 1           // map zeros of cos to zeros of sin
	y := float64(j)
	quad := (j >> 1) & 3
	z := ((x - y*pi4A) - y*pi4B) - y*pi4C // |z| ≤ π/4 + ε
	zz := z * z
	// sin(z) ≈ z + z³(s3 + z²(s5 + z²(s7 + z²·s9))), cos(z) likewise
	// through z¹⁰: plain Taylor coefficients suffice at float32 target
	// accuracy on |z| ≤ π/4.
	sp := z + z*zz*(-1.6666666666666666e-01+zz*(8.3333333333333333e-03+
		zz*(-1.9841269841269841e-04+zz*2.7557319223985893e-06)))
	cp := 1 + zz*(-5e-01+zz*(4.1666666666666666e-02+zz*(-1.3888888888888889e-03+
		zz*(2.4801587301587302e-05+zz*-2.7557319223985888e-07))))
	pair := [2]float64{sp, cp}
	sw := quad & 1
	sn := pair[sw] * quadSinMul[quad] * sgn
	cs := pair[1-sw] * quadCosMul[quad]
	return float32(sn), float32(cs)
}

// Sqrt32 returns sqrt(x) as float32. It is the precise reference against
// which FastSqrt is validated.
func Sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}

// FastInvSqrt returns an approximation of 1/sqrt(x) using the classic
// bit-level initial guess refined by two Newton–Raphson iterations. The
// paper notes that FFBP index generation uses a "less compute-intensive
// implementation of the square root operation" at the cost of some image
// quality; this is that substitution. Relative error is below 5e-6 after
// two refinement steps for normal positive inputs.
func FastInvSqrt(x float32) float32 {
	if x <= 0 || x != x || x > math.MaxFloat32 {
		// Fall back to the exact path for domain edges so callers never
		// receive garbage bit patterns for zero, negatives, NaN or +Inf.
		return float32(1 / math.Sqrt(float64(x)))
	}
	half := 0.5 * x
	i := math.Float32bits(x)
	i = 0x5f375a86 - i>>1
	y := math.Float32frombits(i)
	y = y * (1.5 - half*y*y)
	y = y * (1.5 - half*y*y)
	return y
}

// FastSqrt returns an approximation of sqrt(x) built from FastInvSqrt.
// FastSqrt(0) is exactly 0.
func FastSqrt(x float32) float32 {
	if x == 0 {
		return 0
	}
	return x * FastInvSqrt(x)
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b complex64, t float32) complex64 {
	return complex(
		real(a)+t*(real(b)-real(a)),
		imag(a)+t*(imag(b)-imag(a)),
	)
}
