package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"sarmany/internal/cf"
	"sarmany/internal/ffbp"
	"sarmany/internal/gbp"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// kernelGBPBeams is the beam count of the GBP throughput measurement: a
// subset of the paper-scale grid tall enough to time reliably while
// keeping the reference pass under a second. Per-pixel work is identical
// at every beam count, so pixels/sec on the subset is pixels/sec on the
// full image.
const kernelGBPBeams = 16

// kernelEquivULP is the fused-vs-reference equivalence bound, expressed
// in float32 ULPs of the image peak — the same bound the gbp equivalence
// suite pins (gbp/fused_test.go).
const kernelEquivULP = 16

// KernelMergePoint is the measured throughput of one FFBP merge stage,
// reference beam kernel vs fused.
type KernelMergePoint struct {
	// Stage numbers the merge iterations from 1; Parents is the number
	// of merged subaperture images it produces and Pixels their total
	// pixel count.
	Stage   int `json:"stage"`
	Parents int `json:"parents"`
	Pixels  int `json:"pixels"`
	// RefSeconds/FusedSeconds are wall-clock; the derived pixels/sec and
	// speedup are the headline throughput leaves. All five vary with the
	// host and are advisory in the benchdiff gate.
	RefSeconds        float64 `json:"ref_seconds"`
	FusedSeconds      float64 `json:"fused_seconds"`
	RefPixelsPerSec   float64 `json:"ref_pixels_per_sec"`
	FusedPixelsPerSec float64 `json:"fused_pixels_per_sec"`
	Speedup           float64 `json:"speedup"`
	// BitIdentical asserts the fused stage output equals the reference
	// bit for bit — the ffbp fusion contract. Deterministic: it gates.
	BitIdentical bool `json:"bit_identical"`
}

// KernelsResult is the JSON form of the fused-kernel throughput
// comparison: the GBP hot path on a paper-scale beam subset, then every
// FFBP merge stage of the full factorization.
type KernelsResult struct {
	GBPBeams             int     `json:"gbp_beams"`
	GBPPixels            int     `json:"gbp_pixels"`
	GBPRefSeconds        float64 `json:"gbp_ref_seconds"`
	GBPFusedSeconds      float64 `json:"gbp_fused_seconds"`
	GBPRefPixelsPerSec   float64 `json:"gbp_ref_pixels_per_sec"`
	GBPFusedPixelsPerSec float64 `json:"gbp_fused_pixels_per_sec"`
	GBPSpeedup           float64 `json:"gbp_speedup"`
	// GBPEquivOK asserts the fused image matches the reference within
	// kernelEquivULP float32 ULPs of the image peak, the bound pinned by
	// the gbp equivalence suite. Deterministic: it gates.
	GBPEquivOK bool               `json:"gbp_equiv_ok"`
	Merges     []KernelMergePoint `json:"merges"`
}

// RunKernels measures the fused back-projection hot paths against their
// retained references on the host. GBP runs the Linear reference-image
// kernel over a kernelGBPBeams-beam subset of the scene grid at the
// configured pulse/bin scale and cross-checks the fused image against
// gbp.ImageRef under the pinned ULP bound. FFBP runs the complete
// factorization stage by stage, timing ffbp.MergeRef against ffbp.Merge
// on identical inputs and requiring bit-identity, then continuing the
// factorization with the fused result. Both measurements use one worker
// so the recorded pixels/sec is per-core arithmetic throughput, not host
// parallelism.
func RunKernels(ctx context.Context, cfg report.Config) (KernelsResult, error) {
	var res KernelsResult
	if n := cfg.Params.NumPulses; n&(n-1) != 0 {
		return res, fmt.Errorf("bench: NumPulses %d is not a power of two (FFBP merge base 2)", n)
	}
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	sar.AddNoise(data, 0.05, 11) // dense scene: no zero-skip shortcut

	// GBP: reference vs fused on a paper-scale beam subset.
	if err := ctx.Err(); err != nil {
		return res, err
	}
	full := geom.Aperture{Center: 0, Length: cfg.Params.ApertureLength()}
	beams := kernelGBPBeams
	if beams > cfg.Params.NumPulses {
		beams = cfg.Params.NumPulses
	}
	grid := cfg.Box.GridFor(full, beams, cfg.Params.NumBins, cfg.Params.R0, cfg.Params.DR)
	gcfg := gbp.Config{Interp: interp.Linear, Workers: 1}

	start := time.Now()
	ref := gbp.ImageRef(data, cfg.Params, grid, gcfg)
	refSec := time.Since(start).Seconds()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	start = time.Now()
	fused := gbp.Image(data, cfg.Params, grid, gcfg)
	fusedSec := time.Since(start).Seconds()

	pixels := grid.NTheta * grid.NR
	var peak float64
	for bt := 0; bt < ref.Rows; bt++ {
		for _, v := range ref.Row(bt) {
			if a := float64(cf.Abs(v)); a > peak {
				peak = a
			}
		}
	}
	res.GBPBeams = grid.NTheta
	res.GBPPixels = pixels
	res.GBPRefSeconds = refSec
	res.GBPFusedSeconds = fusedSec
	res.GBPRefPixelsPerSec = float64(pixels) / refSec
	res.GBPFusedPixelsPerSec = float64(pixels) / fusedSec
	res.GBPSpeedup = refSec / fusedSec
	res.GBPEquivOK = peak > 0 && ref.MaxAbsDiff(fused) <= kernelEquivULP*peak*0x1p-23

	// FFBP: every merge stage of the full factorization, reference vs
	// fused on identical inputs; the factorization continues with the
	// fused output (bit-identical, so the choice cannot steer the run).
	s, err := ffbp.InitialStage(data, cfg.Params, cfg.Box)
	if err != nil {
		return res, err
	}
	fcfg := ffbp.Config{Interp: interp.Nearest, Workers: 1}
	for stage := 1; len(s.Images) > 1; stage++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		start := time.Now()
		mref, err := ffbp.MergeRef(s, cfg.Box, fcfg)
		if err != nil {
			return res, err
		}
		refSec := time.Since(start).Seconds()
		start = time.Now()
		mfused, err := ffbp.Merge(s, cfg.Box, fcfg)
		if err != nil {
			return res, err
		}
		fusedSec := time.Since(start).Seconds()

		px := 0
		bit := len(mfused.Images) == len(mref.Images)
		for j := range mfused.Images {
			px += mfused.Images[j].Rows * mfused.Images[j].Cols
			bit = bit && mfused.Images[j].Equal(mref.Images[j])
		}
		res.Merges = append(res.Merges, KernelMergePoint{
			Stage:             stage,
			Parents:           len(mfused.Images),
			Pixels:            px,
			RefSeconds:        refSec,
			FusedSeconds:      fusedSec,
			RefPixelsPerSec:   float64(px) / refSec,
			FusedPixelsPerSec: float64(px) / fusedSec,
			Speedup:           refSec / fusedSec,
			BitIdentical:      bit,
		})
		s = mfused
	}
	return res, nil
}

func printKernels(w io.Writer, res KernelsResult) {
	fmt.Fprintf(w, "GBP (%d beams x %d bins, Linear, 1 worker): ref %.2f Mpx/s, fused %.2f Mpx/s (%.2fx, equiv %v)\n",
		res.GBPBeams, res.GBPPixels/max(res.GBPBeams, 1), res.GBPRefPixelsPerSec/1e6,
		res.GBPFusedPixelsPerSec/1e6, res.GBPSpeedup, res.GBPEquivOK)
	fmt.Fprintf(w, "%6s %8s %10s %12s %12s %8s %5s\n",
		"stage", "parents", "pixels", "ref Mpx/s", "fused Mpx/s", "speedup", "bit")
	for _, m := range res.Merges {
		fmt.Fprintf(w, "%6d %8d %10d %12.2f %12.2f %7.2fx %5v\n",
			m.Stage, m.Parents, m.Pixels, m.RefPixelsPerSec/1e6,
			m.FusedPixelsPerSec/1e6, m.Speedup, m.BitIdentical)
	}
}

// Kernels runs RunKernels and prints the throughput table.
func Kernels(ctx context.Context, w io.Writer, cfg report.Config) error {
	res, err := RunKernels(ctx, cfg)
	if err != nil {
		return err
	}
	printKernels(w, res)
	return nil
}
