// Package bench contains the experiment drivers behind cmd/benchtab and
// the top-level benchmark suite: each function reruns one paper artifact
// (Table I, Fig. 7, or one of the DESIGN.md ablations) and writes a
// human-readable result table.
//
// Every Run* entry point takes a context.Context and checks it between
// simulation units (machine runs, sweep points), so a sweep-engine
// timeout or cancellation stops an experiment at the next boundary
// instead of running unbounded. The Compute/PrintResult pair separates
// computing a machine-readable Result envelope from rendering it, which
// is what lets internal/sweep cache envelopes and replay them.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
	"sarmany/internal/ffbp"
	"sarmany/internal/gbp"
	"sarmany/internal/geom"
	"sarmany/internal/imageio"
	"sarmany/internal/interp"
	"sarmany/internal/kernels"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/rda"
	"sarmany/internal/refcpu"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// Table1 reruns the paper's Table I and the Sec. VI-A energy ratios.
func Table1(ctx context.Context, w io.Writer, cfg report.Config) error {
	t, err := report.RunTable1(ctx, cfg)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig7Result carries the quality metrics of the Fig. 7 comparison.
type Fig7Result struct {
	// GBPSharpness and FFBPSharpness quantify "the FFBP processed images
	// have a lower quality as compared to the GBP processed image".
	GBPSharpness  float64 `json:"gbp_sharpness"`
	FFBPSharpness float64 `json:"ffbp_sharpness"`
	// CrossCorr is the GBP-vs-FFBP magnitude correlation.
	CrossCorr float64 `json:"cross_corr"`
	// IntelEpiphanyCorr compares the FFBP images from the reference-CPU
	// and Epiphany implementations ("similar in quality"; in this
	// reproduction both run the same arithmetic, so it is 1.0 exactly).
	IntelEpiphanyCorr float64 `json:"intel_epiphany_corr"`
}

// Figure7 regenerates the paper's Fig. 7 image set into dir: (a) the
// pulse-compressed raw data, (b) the GBP image, (c) the FFBP image from
// the Intel-reference implementation, and (d) the FFBP image from the
// parallel Epiphany implementation, plus quality metrics.
func Figure7(ctx context.Context, w io.Writer, cfg report.Config, dir string) (err error) {
	res, imgs, err := RunFigure7(ctx, cfg)
	if err != nil {
		return err
	}
	if err := saveFig7(imgs, dir); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", dir)
	printFig7(w, res)
	return nil
}

func saveFig7(imgs [4]*mat.C, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := []string{"fig7a_raw.png", "fig7b_gbp.png", "fig7c_ffbp_intel.png", "fig7d_ffbp_epiphany.png"}
	for i, img := range imgs {
		if err := imageio.Save(filepath.Join(dir, names[i]), img, 50); err != nil {
			return err
		}
	}
	return nil
}

func printFig7(w io.Writer, res Fig7Result) {
	fmt.Fprintf(w, "sharpness: GBP %.1f, FFBP %.1f (GBP sharper: %v)\n",
		res.GBPSharpness, res.FFBPSharpness, res.GBPSharpness > res.FFBPSharpness)
	fmt.Fprintf(w, "GBP vs FFBP magnitude correlation: %.3f\n", res.CrossCorr)
	fmt.Fprintf(w, "Intel vs Epiphany FFBP correlation: %.3f\n", res.IntelEpiphanyCorr)
}

// RunFigure7 computes the Fig. 7 images and metrics without touching the
// filesystem. The returned images are raw data, GBP, FFBP (reference CPU
// implementation), FFBP (Epiphany implementation).
func RunFigure7(ctx context.Context, cfg report.Config) (Fig7Result, [4]*mat.C, error) {
	var out [4]*mat.C
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	out[0] = data.Clone()

	if err := ctx.Err(); err != nil {
		return Fig7Result{}, out, err
	}
	full := geom.Aperture{Center: 0, Length: cfg.Params.ApertureLength()}
	grid := cfg.Box.GridFor(full, cfg.Params.NumPulses, cfg.Params.NumBins, cfg.Params.R0, cfg.Params.DR)
	out[1] = gbp.Image(data, cfg.Params, grid, gbp.Config{Interp: interp.Linear})

	// The host FFBP with nearest-neighbour interpolation is arithmetically
	// identical to the kernels the machine models run, so it stands in for
	// the Intel image.
	if err := ctx.Err(); err != nil {
		return Fig7Result{}, out, err
	}
	fi, _, err := ffbp.Image(data, cfg.Params, cfg.Box, ffbp.Config{Interp: interp.Nearest})
	if err != nil {
		return Fig7Result{}, out, err
	}
	out[2] = fi

	if err := ctx.Err(); err != nil {
		return Fig7Result{}, out, err
	}
	ch := emu.New(cfg.Epiphany)
	fe, _, err := kernels.ParFFBP(ch, cfg.FFBPCores, data, cfg.Params, cfg.Box)
	if err != nil {
		return Fig7Result{}, out, err
	}
	out[3] = fe

	mg := quality.Mag(out[1])
	mi := quality.Mag(out[2])
	me := quality.Mag(out[3])
	return Fig7Result{
		GBPSharpness:      quality.Sharpness(mg),
		FFBPSharpness:     quality.Sharpness(mi),
		CrossCorr:         quality.NormCorr(mg, mi),
		IntelEpiphanyCorr: quality.NormCorr(mi, me),
	}, out, nil
}

// ScalingPoint is one core-count measurement of the FFBP scaling sweep.
type ScalingPoint struct {
	Cores   int     `json:"cores"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"` // vs 1 core of the same sweep
}

// RunScaling measures parallel FFBP execution time across core counts on
// the (possibly enlarged) Epiphany mesh — the ablation behind the paper's
// closing remark that 64-core devices are now available.
func RunScaling(ctx context.Context, cfg report.Config, coreCounts []int) ([]ScalingPoint, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	out := make([]ScalingPoint, 0, len(coreCounts))
	var base float64
	for _, n := range coreCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := cfg.Epiphany
		for p.NumCores() < n {
			p = p.WithMesh(p.Rows*2, p.Cols) // grow the mesh as needed
		}
		ch := emu.New(p)
		if _, _, err := kernels.ParFFBP(ch, n, data, cfg.Params, cfg.Box); err != nil {
			return nil, err
		}
		sec := ch.Time()
		if len(out) == 0 {
			base = sec
		}
		out = append(out, ScalingPoint{Cores: n, Seconds: sec, Speedup: base / sec})
	}
	return out, nil
}

// Scaling runs RunScaling over 1..64 cores and prints the series.
func Scaling(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunScaling(ctx, cfg, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		return err
	}
	printScaling(w, points)
	return nil
}

func printScaling(w io.Writer, points []ScalingPoint) {
	fmt.Fprintf(w, "%6s %12s %9s\n", "cores", "time (ms)", "speedup")
	for _, pt := range points {
		fmt.Fprintf(w, "%6d %12.1f %9.2f\n", pt.Cores, pt.Seconds*1e3, pt.Speedup)
	}
}

// BandwidthPoint is one off-chip-bandwidth measurement.
type BandwidthPoint struct {
	BytesPerCycle float64 `json:"bytes_per_cycle"`
	FFBPSeconds   float64 `json:"ffbp_seconds"`
	AFSeconds     float64 `json:"af_seconds"`
}

// RunBandwidth sweeps the effective off-chip bandwidth and measures both
// parallel implementations, demonstrating the paper's Sec. VI argument:
// the streaming autofocus pipeline is insensitive to off-chip bandwidth
// (its intermediate data never leaves the mesh), while FFBP is bound by
// it.
func RunBandwidth(ctx context.Context, cfg report.Config, factors []float64) ([]BandwidthPoint, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	pairs := report.AutofocusWorkload(cfg)
	shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)
	out := make([]BandwidthPoint, 0, len(factors))
	for _, f := range factors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := cfg.Epiphany
		p.ExtBytesPerCycle = cfg.Epiphany.ExtBytesPerCycle * f
		chF := emu.New(p)
		if _, _, err := kernels.ParFFBP(chF, cfg.FFBPCores, data, cfg.Params, cfg.Box); err != nil {
			return nil, err
		}
		chA := emu.New(p)
		if _, err := kernels.ParAutofocus(chA, pairs, shifts); err != nil {
			return nil, err
		}
		out = append(out, BandwidthPoint{
			BytesPerCycle: p.ExtBytesPerCycle,
			FFBPSeconds:   chF.Time(),
			AFSeconds:     chA.Time(),
		})
	}
	return out, nil
}

// Bandwidth runs RunBandwidth over a 16x range and prints the series.
func Bandwidth(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunBandwidth(ctx, cfg, []float64{0.25, 0.5, 1, 2, 4})
	if err != nil {
		return err
	}
	printBandwidth(w, points)
	return nil
}

func printBandwidth(w io.Writer, points []BandwidthPoint) {
	fmt.Fprintf(w, "%14s %14s %14s\n", "bytes/cycle", "FFBP (ms)", "autofocus (ms)")
	for _, pt := range points {
		fmt.Fprintf(w, "%14.3f %14.1f %14.1f\n", pt.BytesPerCycle, pt.FFBPSeconds*1e3, pt.AFSeconds*1e3)
	}
}

// PipelinePoint is one autofocus pipeline-replication measurement.
type PipelinePoint struct {
	Pipelines int     `json:"pipelines"`
	Seconds   float64 `json:"seconds"`
	Speedup   float64 `json:"speedup"`
}

// RunPipelines measures the multi-pipeline autofocus throughput on the
// 64-core device: the paper's MPMD mapping replicated 1..4 times, with the
// block-pair stream split across replicas. Because the pipeline's
// intermediate data stays on-chip, throughput scales nearly linearly —
// the contrast to FFBP's bandwidth-bound scaling.
func RunPipelines(ctx context.Context, cfg report.Config, counts []int) ([]PipelinePoint, error) {
	pairs := report.AutofocusWorkload(cfg)
	shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)
	var out []PipelinePoint
	var base float64
	for _, n := range counts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ch := emu.New(emu.E64())
		if _, err := kernels.ParAutofocusMulti(ch, n, pairs, shifts); err != nil {
			return nil, err
		}
		sec := ch.Time()
		if len(out) == 0 {
			base = sec
		}
		out = append(out, PipelinePoint{Pipelines: n, Seconds: sec, Speedup: base / sec})
	}
	return out, nil
}

// Pipelines runs RunPipelines over 1..4 replicas and prints the series.
func Pipelines(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunPipelines(ctx, cfg, []int{1, 2, 3, 4})
	if err != nil {
		return err
	}
	printPipelines(w, points)
	return nil
}

func printPipelines(w io.Writer, points []PipelinePoint) {
	fmt.Fprintf(w, "%10s %12s %9s\n", "pipelines", "time (ms)", "speedup")
	for _, pt := range points {
		fmt.Fprintf(w, "%10d %12.3f %9.2f\n", pt.Pipelines, pt.Seconds*1e3, pt.Speedup)
	}
}

// RunGBPvsFFBP compares the modeled times of exact GBP and FFBP on the
// reference CPU over dense data — the complexity gap that motivates the
// factorized algorithm. It returns (gbpSeconds, ffbpSeconds).
func RunGBPvsFFBP(ctx context.Context, cfg report.Config) (float64, float64, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	sar.AddNoise(data, 0.05, 11) // dense scene: no zero-skip shortcut
	full := geom.Aperture{Center: 0, Length: cfg.Params.ApertureLength()}
	grid := cfg.Box.GridFor(full, cfg.Params.NumPulses, cfg.Params.NumBins, cfg.Params.R0, cfg.Params.DR)

	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	cpuG := refcpu.New(cfg.Intel)
	if _, err := kernels.SeqGBP(cpuG, cpuG.Mem(), data, cfg.Params, grid); err != nil {
		return 0, 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	cpuF := refcpu.New(cfg.Intel)
	if _, _, err := kernels.SeqFFBP(cpuF, cpuF.Mem(), data, cfg.Params, cfg.Box); err != nil {
		return 0, 0, err
	}
	return cpuG.Seconds(), cpuF.Seconds(), nil
}

// GBPvsFFBP runs RunGBPvsFFBP and prints the comparison.
func GBPvsFFBP(ctx context.Context, w io.Writer, cfg report.Config) error {
	g, f, err := RunGBPvsFFBP(ctx, cfg)
	if err != nil {
		return err
	}
	printGBPvsFFBP(w, g, f)
	return nil
}

func printGBPvsFFBP(w io.Writer, g, f float64) {
	fmt.Fprintf(w, "GBP  (exact):      %10.1f ms\n", g*1e3)
	fmt.Fprintf(w, "FFBP (factorized): %10.1f ms  -> %.1fx faster\n", f*1e3, g/f)
}

// BasePoint is one factorization-base measurement.
type BasePoint struct {
	Base      int     `json:"base"`
	Levels    int     `json:"levels"`
	Sharpness float64 `json:"sharpness"`
	GBPCorr   float64 `json:"gbp_corr"`
	HostMS    float64 `json:"host_ms"`
}

// RunBases compares factorization bases (with nearest-neighbour
// interpolation, the paper's choice): higher bases do fewer merge levels,
// so the simplified interpolation's noise accumulates less — at the price
// of more child lookups per level. Requires cfg.Params.NumPulses to be a
// power of every base given.
func RunBases(ctx context.Context, cfg report.Config, bases []int) ([]BasePoint, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	full := geom.Aperture{Center: 0, Length: cfg.Params.ApertureLength()}
	grid := cfg.Box.GridFor(full, cfg.Params.NumPulses, cfg.Params.NumBins, cfg.Params.R0, cfg.Params.DR)
	ref := quality.Mag(gbp.Image(data, cfg.Params, grid, gbp.Config{Interp: interp.Linear}))
	var out []BasePoint
	for _, k := range bases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		img, _, err := ffbp.ImageK(data, cfg.Params, cfg.Box, ffbp.Config{Interp: interp.Nearest}, k)
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Milliseconds())
		m := quality.Mag(img)
		levels := 0
		for n := cfg.Params.NumPulses; n > 1; n /= k {
			levels++
		}
		out = append(out, BasePoint{
			Base: k, Levels: levels,
			Sharpness: quality.Sharpness(m),
			GBPCorr:   quality.NormCorr(ref, m),
			HostMS:    ms,
		})
	}
	return out, nil
}

// Bases runs RunBases over bases 2 and 4 and prints the series.
func Bases(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunBases(ctx, cfg, []int{2, 4})
	if err != nil {
		return err
	}
	printBases(w, points)
	return nil
}

func printBases(w io.Writer, points []BasePoint) {
	fmt.Fprintf(w, "%6s %8s %12s %10s %12s\n", "base", "levels", "sharpness", "GBP corr", "host ms")
	for _, pt := range points {
		fmt.Fprintf(w, "%6d %8d %12.1f %10.3f %12.0f\n", pt.Base, pt.Levels, pt.Sharpness, pt.GBPCorr, pt.HostMS)
	}
}

// MotivationResult carries the frequency-vs-time-domain comparison.
type MotivationResult struct {
	// Kept fractions of coherent gain under a non-linear flight path,
	// relative to each algorithm's linear-track gain.
	RDAKept         float64 `json:"rda_kept"`
	FocusedFFBPKept float64 `json:"focused_ffbp_kept"`
	MocompRDAKept   float64 `json:"mocomp_rda_kept"`
}

// RunMotivation reruns the paper's Sec. I argument: under a flight-path
// error, the straight-track-only frequency-domain processor (RDA) loses
// coherent gain it cannot recover, while the time-domain chain
// compensates — blindly (FFBP + autofocus) or exactly (known-path motion
// compensation). The experiment uses its own fixed geometry (a 256-pulse
// aperture, a cross-track step of ~lambda/10): large enough to visibly
// decorrelate the straight-track reference, still within the autofocus
// compensation window.
func RunMotivation(ctx context.Context, cfg report.Config) (MotivationResult, error) {
	p := cfg.Params
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	cfg.Box = report.DefaultBox(p)
	tg := sar.Target{U: 0, Y: p.CenterRange(), Amp: 1}
	wr, wc := rda.TargetPixel(p, tg)
	gainRDA := func(data *mat.C) (float64, error) {
		img, err := rda.Image(data, p, rda.Config{RCMC: interp.Linear})
		if err != nil {
			return 0, err
		}
		_, _, pk := quality.PeakWithin(quality.Mag(img), wr, wc, 8)
		return float64(pk), nil
	}
	gainFFBP := func(data *mat.C, focused bool) (float64, error) {
		var img *mat.C
		var grid geom.PolarGrid
		var err error
		if focused {
			img, grid, _, err = ffbp.FocusedImage(data, p, cfg.Box, ffbp.DefaultFocusConfig(p.NumPulses))
		} else {
			img, grid, err = ffbp.Image(data, p, cfg.Box, ffbp.Config{Interp: interp.Cubic})
		}
		if err != nil {
			return 0, err
		}
		fr := int(math.Round(grid.ThetaIndex(math.Atan2(tg.Y, tg.U))))
		fc := int(math.Round(grid.RangeIndex(math.Hypot(tg.U, tg.Y))))
		_, _, pk := quality.PeakWithin(quality.Mag(img), fr, fc, 8)
		return float64(pk), nil
	}

	clean := sar.Simulate(p, []sar.Target{tg}, nil)
	drift := func(u float64) float64 {
		if u > 0 {
			return 0.75
		}
		return 0
	}
	dirty := sar.Simulate(p, []sar.Target{tg}, drift)

	steps := []func() error{}
	var rdaClean, ffbpClean, rdaDirty, focDirty, mocDirty float64
	steps = append(steps,
		func() (err error) { rdaClean, err = gainRDA(clean); return },
		func() (err error) { ffbpClean, err = gainFFBP(clean, false); return },
		func() (err error) { rdaDirty, err = gainRDA(dirty); return },
		func() (err error) { focDirty, err = gainFFBP(dirty, true); return },
		func() (err error) { mocDirty, err = gainRDA(sar.MotionCompensate(dirty, p, drift)); return },
	)
	for _, step := range steps {
		if err := ctx.Err(); err != nil {
			return MotivationResult{}, err
		}
		if err := step(); err != nil {
			return MotivationResult{}, err
		}
	}
	return MotivationResult{
		RDAKept:         rdaDirty / rdaClean,
		FocusedFFBPKept: focDirty / ffbpClean,
		MocompRDAKept:   mocDirty / rdaClean,
	}, nil
}

// Motivation runs RunMotivation and prints the comparison.
func Motivation(ctx context.Context, w io.Writer, cfg report.Config) error {
	r, err := RunMotivation(ctx, cfg)
	if err != nil {
		return err
	}
	printMotivation(w, r)
	return nil
}

func printMotivation(w io.Writer, r MotivationResult) {
	fmt.Fprintf(w, "coherent gain kept under a non-linear flight path:\n")
	fmt.Fprintf(w, "  RDA (straight-track reference):   %5.2f\n", r.RDAKept)
	fmt.Fprintf(w, "  FFBP + autofocus (blind):         %5.2f\n", r.FocusedFFBPKept)
	fmt.Fprintf(w, "  RDA after motion compensation:    %5.2f\n", r.MocompRDAKept)
}

// InterpPoint is one interpolation-kernel quality measurement.
type InterpPoint struct {
	Kind      interp.Kind `json:"kind"`
	Kernel    string      `json:"kernel"`
	Sharpness float64     `json:"sharpness"`
	GBPCorr   float64     `json:"gbp_corr"`
}

// RunInterp measures FFBP image quality against the GBP reference for
// each interpolation kernel — quantifying the paper's note that FFBP
// quality "could be considerably improved by using more complex
// interpolation kernels such as cubic interpolation".
func RunInterp(ctx context.Context, cfg report.Config) ([]InterpPoint, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	full := geom.Aperture{Center: 0, Length: cfg.Params.ApertureLength()}
	grid := cfg.Box.GridFor(full, cfg.Params.NumPulses, cfg.Params.NumBins, cfg.Params.R0, cfg.Params.DR)
	ref := quality.Mag(gbp.Image(data, cfg.Params, grid, gbp.Config{Interp: interp.Linear}))
	var out []InterpPoint
	for _, k := range []interp.Kind{interp.Nearest, interp.Linear, interp.Cubic, interp.Sinc8} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		img, _, err := ffbp.Image(data, cfg.Params, cfg.Box, ffbp.Config{Interp: k})
		if err != nil {
			return nil, err
		}
		m := quality.Mag(img)
		out = append(out, InterpPoint{
			Kind:      k,
			Kernel:    k.String(),
			Sharpness: quality.Sharpness(m),
			GBPCorr:   quality.NormCorr(ref, m),
		})
	}
	return out, nil
}

// UpsamplePoint is one range-oversampling measurement.
type UpsamplePoint struct {
	Factor    int     `json:"factor"`
	Sharpness float64 `json:"sharpness"`
	PeakGain  float64 `json:"peak_gain"` // image peak relative to factor 1
}

// RunUpsample measures nearest-neighbour FFBP quality against the range
// oversampling factor — the standard countermeasure (used by the related
// Lidberg et al. implementation) to the interpolation noise the paper
// discusses, bought with proportionally more memory and bandwidth.
func RunUpsample(ctx context.Context, cfg report.Config, factors []int) ([]UpsamplePoint, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	var out []UpsamplePoint
	var base float64
	for _, f := range factors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		up, q, err := sar.UpsampleRange(data, cfg.Params, f)
		if err != nil {
			return nil, err
		}
		img, _, err := ffbp.Image(up, q, cfg.Box, ffbp.Config{Interp: interp.Nearest})
		if err != nil {
			return nil, err
		}
		m := quality.Mag(img)
		_, _, pk := quality.Peak(m)
		if len(out) == 0 {
			base = float64(pk)
		}
		out = append(out, UpsamplePoint{
			Factor:    f,
			Sharpness: quality.Sharpness(m),
			PeakGain:  float64(pk) / base,
		})
	}
	return out, nil
}

// Upsample runs RunUpsample over factors 1, 2, 4 and prints the series.
func Upsample(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunUpsample(ctx, cfg, []int{1, 2, 4})
	if err != nil {
		return err
	}
	printUpsample(w, points)
	return nil
}

func printUpsample(w io.Writer, points []UpsamplePoint) {
	fmt.Fprintf(w, "%8s %12s %12s\n", "factor", "sharpness", "peak gain")
	for _, pt := range points {
		fmt.Fprintf(w, "%8d %12.1f %12.2f\n", pt.Factor, pt.Sharpness, pt.PeakGain)
	}
}

// Interp runs RunInterp and prints the series.
func Interp(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunInterp(ctx, cfg)
	if err != nil {
		return err
	}
	printInterp(w, points)
	return nil
}

func printInterp(w io.Writer, points []InterpPoint) {
	fmt.Fprintf(w, "%10s %12s %12s\n", "kernel", "sharpness", "GBP corr")
	for _, pt := range points {
		fmt.Fprintf(w, "%10s %12.1f %12.3f\n", pt.Kind, pt.Sharpness, pt.GBPCorr)
	}
}
