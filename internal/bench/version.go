package bench

import (
	"runtime/debug"
	"sync"
)

// Version returns the code-version string stamped into result envelopes
// and ledger entries: a git-describe-style identifier built from the
// binary's embedded VCS metadata (short revision, dirty marker), or
// "devel" when the build carries none (e.g. `go test` binaries). The
// value is computed once; it is deterministic for a given binary, so
// envelope bytes stay reproducible within a build.
func Version() string {
	versionOnce.Do(func() { versionStr = readVersion() })
	return versionStr
}

var (
	versionOnce sync.Once
	versionStr  string
)

func readVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + modified
}
