package bench

import (
	"strings"
	"testing"
)

const baseEnvelope = `{
  "name": "profile",
  "title": "Trace analyzer throughput",
  "pulses": 128,
  "bins": 251,
  "data": {
    "cores": 16,
    "spans": 50000,
    "run_cycles": 5634944,
    "analyze_seconds": 0.031,
    "race_enabled": true,
    "points": [{"cores": 1, "seconds": 3.2}, {"cores": 8, "seconds": 0.5}]
  }
}`

func TestDiffIdenticalEnvelopesPass(t *testing.T) {
	fs, err := DiffEnvelopes([]byte(baseEnvelope), []byte(baseEnvelope), DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("identical envelopes produced findings: %v", fs)
	}
}

func TestDiffFlagsCycleRegression(t *testing.T) {
	// A 5% cycle regression against a 2% gate: exactly one finding.
	regressed := strings.Replace(baseEnvelope, `"run_cycles": 5634944`, `"run_cycles": 5916691`, 1)
	fs, err := DiffEnvelopes([]byte(baseEnvelope), []byte(regressed), DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || Regressions(fs) != 1 {
		t.Fatalf("findings: %v", fs)
	}
	f := fs[0]
	if f.Path != "data.run_cycles" || f.Advisory {
		t.Errorf("finding: %+v", f)
	}
	if f.Delta < 0.049 || f.Delta > 0.051 {
		t.Errorf("delta = %v, want ~+0.05", f.Delta)
	}
	// Improvements beyond tolerance are reported too — an unexplained
	// speedup is as suspicious as a slowdown.
	improved := strings.Replace(baseEnvelope, `"run_cycles": 5634944`, `"run_cycles": 5000000`, 1)
	fs, err = DiffEnvelopes([]byte(baseEnvelope), []byte(improved), DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if Regressions(fs) != 1 || fs[0].Delta >= 0 {
		t.Errorf("improvement not flagged: %v", fs)
	}
}

func TestDiffWithinToleranceIsQuiet(t *testing.T) {
	drifted := strings.Replace(baseEnvelope, `"run_cycles": 5634944`, `"run_cycles": 5690000`, 1) // ~1%
	fs, err := DiffEnvelopes([]byte(baseEnvelope), []byte(drifted), DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("within-tolerance drift flagged: %v", fs)
	}
}

func TestDiffAdvisoryPatternsDoNotGate(t *testing.T) {
	changed := strings.Replace(baseEnvelope, `"analyze_seconds": 0.031`, `"analyze_seconds": 0.5`, 1)
	fs, err := DiffEnvelopes([]byte(baseEnvelope), []byte(changed), DiffOptions{
		Tolerance: 0.02,
		Advisory:  []string{"data.analyze_seconds", "data.*_per_sec"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !fs[0].Advisory || Regressions(fs) != 0 {
		t.Fatalf("findings: %v", fs)
	}
	if !strings.Contains(fs[0].String(), "advisory") {
		t.Errorf("advisory tag missing: %s", fs[0])
	}
}

func TestDiffMissingAndExtraLeaves(t *testing.T) {
	pruned := strings.Replace(baseEnvelope, `"spans": 50000,`, ``, 1)
	fs, err := DiffEnvelopes([]byte(baseEnvelope), []byte(pruned), DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].New != "(missing)" || fs[0].Path != "data.spans" {
		t.Fatalf("dropped leaf not flagged: %v", fs)
	}
	fs, err = DiffEnvelopes([]byte(pruned), []byte(baseEnvelope), DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Old != "(missing)" {
		t.Fatalf("new leaf not flagged: %v", fs)
	}
}

func TestDiffNestedArraysAndNonNumerics(t *testing.T) {
	changed := strings.Replace(baseEnvelope, `{"cores": 8, "seconds": 0.5}`, `{"cores": 8, "seconds": 0.9}`, 1)
	changed = strings.Replace(changed, `"race_enabled": true`, `"race_enabled": false`, 1)
	changed = strings.Replace(changed, `"title": "Trace analyzer throughput"`, `"title": "renamed"`, 1)
	fs, err := DiffEnvelopes([]byte(baseEnvelope), []byte(changed), DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"data.points[1].seconds": true,
		"data.race_enabled":      true,
		"title":                  true,
	}
	if len(fs) != len(want) {
		t.Fatalf("findings: %v", fs)
	}
	for _, f := range fs {
		if !want[f.Path] {
			t.Errorf("unexpected finding %+v", f)
		}
	}
}

func TestDiffRejectsMalformedJSON(t *testing.T) {
	if _, err := DiffEnvelopes([]byte("{"), []byte(baseEnvelope), DiffOptions{}); err == nil {
		t.Error("malformed baseline accepted")
	}
	if _, err := DiffEnvelopes([]byte(baseEnvelope), []byte("not json"), DiffOptions{}); err == nil {
		t.Error("malformed candidate accepted")
	}
}
