package bench

import (
	"context"
	"os"
	"testing"

	"sarmany/internal/report"
)

// TestKernelThroughput measures the fused back-projection hot paths
// against their retained references at paper scale (1024 pulses x 1001
// bins) and, when KERNELBENCH_OUT names a directory, records the result
// as a BENCH_kernels.json envelope — the `make kernelbench` target.
// Without the variable the measurement is skipped to keep the regular
// test suite fast. The deterministic leaves (gbp_equiv_ok, bit_identical,
// shape counts) gate in benchdiff; the throughput leaves are advisory but
// asserted loosely here: the fused paths must not be slower than the
// references, or the fusion has regressed into pure complexity.
func TestKernelThroughput(t *testing.T) {
	out := os.Getenv("KERNELBENCH_OUT")
	if out == "" {
		t.Skip("KERNELBENCH_OUT not set")
	}
	cfg := report.Default()
	res, err := RunKernels(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GBPEquivOK {
		t.Errorf("fused GBP image out of the pinned ULP bound vs reference")
	}
	if res.GBPSpeedup < 1 {
		t.Errorf("fused GBP slower than reference: %.2fx", res.GBPSpeedup)
	}
	t.Logf("GBP: ref %.2f Mpx/s, fused %.2f Mpx/s (%.2fx)",
		res.GBPRefPixelsPerSec/1e6, res.GBPFusedPixelsPerSec/1e6, res.GBPSpeedup)
	for _, m := range res.Merges {
		if !m.BitIdentical {
			t.Errorf("merge stage %d: fused output not bit-identical to reference", m.Stage)
		}
		t.Logf("merge %d: %d parents, %d px, ref %.2f Mpx/s, fused %.2f Mpx/s (%.2fx)",
			m.Stage, m.Parents, m.Pixels, m.RefPixelsPerSec/1e6,
			m.FusedPixelsPerSec/1e6, m.Speedup)
	}

	env := Result{
		Name: "kernels", Title: "Fused kernel throughput",
		Pulses: cfg.Params.NumPulses, Bins: cfg.Params.NumBins,
		Data: res,
	}
	path, err := WriteFile(out, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
