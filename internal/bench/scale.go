package bench

import (
	"context"
	"fmt"
	"io"

	"sarmany/internal/autofocus"
	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/geom"
	"sarmany/internal/kernels"
	"sarmany/internal/mat"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// ScalePoint is one topology measurement of the manycore scale-up sweep:
// both parallel kernels on one device generation, with modeled time,
// energy and a conformance verdict.
type ScalePoint struct {
	Cores int `json:"cores"`
	Chips int `json:"chips"`
	// Mesh names the core grid, e.g. "8x8" or "2x2 chips of 16x16".
	Mesh string `json:"mesh"`
	// FFBP: the SPMD kernel on all cores. Seconds and EnergyJ are modeled
	// simulator output and gate in benchdiff; Speedup is relative to the
	// sweep's first (64-core) point.
	FFBPSeconds float64 `json:"ffbp_seconds"`
	FFBPSpeedup float64 `json:"ffbp_speedup"`
	FFBPEnergyJ float64 `json:"ffbp_energy_j"`
	// Autofocus: the MPMD pipeline replicated Pipelines times
	// (floor(cores/13), every replica fully on live cores).
	Pipelines int     `json:"pipelines"`
	AFSeconds float64 `json:"af_seconds"`
	AFSpeedup float64 `json:"af_speedup"`
	AFEnergyJ float64 `json:"af_energy_j"`
	// ConformOK reports that both runs passed the simulator conformance
	// checker on this topology. Deterministic: it gates.
	ConformOK bool `json:"conform_ok"`
}

// scaleWorkload is the fixed input both kernels process at every sweep
// point, so the committed envelope is invariant to -small.
type scaleWorkload struct {
	p      sar.Params
	box    geom.SceneBox
	data   *mat.C
	pairs  []kernels.BlockPair
	shifts []autofocus.Shift
}

// scaleTopo is one device generation of the sweep.
type scaleTopo struct {
	p     emu.Params
	cores int
}

// scaleTopos lists the sweep's device generations: the 64-core chip the
// paper's conclusions mention, a 256-core single-chip scale-up, and a
// 1024-core 2x2 eLink-bridged array with per-chip SDRAM channels.
func scaleTopos() []scaleTopo {
	return []scaleTopo{
		{emu.E64(), 64},
		{emu.E256(), 256},
		{emu.E1024(), 1024},
	}
}

// The sweep's pinned input scale: the paper's 1024 pulses at a reduced
// 251-bin swath (the sweep times three devices, so it trades range width
// for wall-clock). Pinned — rather than taken from the configuration —
// so the committed baseline is comparable across -small and full runs;
// the envelope records these, not the config's scale.
const (
	scalePulses = 1024
	scaleBins   = 251
)

// defaultScaleWorkload builds the sweep's fixed input: the pinned
// pulse/bin scale above, and an autofocus stream of four block pairs per
// pipeline of the largest device, so every replica of every generation
// has work.
func defaultScaleWorkload(cfg report.Config) scaleWorkload {
	p := cfg.Params
	p.NumPulses = scalePulses
	p.NumBins = scaleBins
	p.R0 = 1000
	box := report.DefaultBox(p)
	targets := []sar.Target{
		{U: -15, Y: p.CenterRange() - 20, Amp: 1},
		{U: 15, Y: p.CenterRange() + 20, Amp: 1},
	}
	afCfg := cfg
	afCfg.Pairs = 4 * (1024 / kernels.PipelineCores)
	return scaleWorkload{
		p:      p,
		box:    box,
		data:   sar.Simulate(p, targets, nil),
		pairs:  report.AutofocusWorkload(afCfg),
		shifts: autofocus.RangeSweep(-1.5, 1.5, 16),
	}
}

// meshName renders the core-grid shape of a topology.
func meshName(p emu.Params) string {
	if p.NumChips() > 1 {
		return fmt.Sprintf("%dx%d chips of %dx%d", p.GridRows()/p.Rows, p.GridCols()/p.Cols, p.Rows, p.Cols)
	}
	return fmt.Sprintf("%dx%d", p.Rows, p.Cols)
}

// runScale executes the sweep over explicit workload and topologies —
// the seam the cheap shape test uses with a reduced workload.
func runScale(ctx context.Context, wl scaleWorkload, topos []scaleTopo) ([]ScalePoint, error) {
	out := make([]ScalePoint, 0, len(topos))
	var ffbpBase, afBase float64
	for _, tp := range topos {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chF := emu.New(tp.p)
		if _, _, err := kernels.ParFFBP(chF, tp.cores, wl.data, wl.p, wl.box); err != nil {
			return nil, fmt.Errorf("bench: scale ffbp on %s: %w", meshName(tp.p), err)
		}
		ffbpSec := chF.Time()

		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pipes := tp.cores / kernels.PipelineCores
		chA := emu.New(tp.p)
		if _, err := kernels.ParAutofocusMulti(chA, pipes, wl.pairs, wl.shifts); err != nil {
			return nil, fmt.Errorf("bench: scale autofocus on %s: %w", meshName(tp.p), err)
		}
		afSec := chA.Time()

		if len(out) == 0 {
			ffbpBase, afBase = ffbpSec, afSec
		}
		out = append(out, ScalePoint{
			Cores:       tp.cores,
			Chips:       tp.p.NumChips(),
			Mesh:        meshName(tp.p),
			FFBPSeconds: ffbpSec,
			FFBPSpeedup: ffbpBase / ffbpSec,
			FFBPEnergyJ: energy.EpiphanyBreakdown(chF.TotalStats(), ffbpSec).Total(),
			Pipelines:   pipes,
			AFSeconds:   afSec,
			AFSpeedup:   afBase / afSec,
			AFEnergyJ:   energy.EpiphanyBreakdown(chA.TotalStats(), afSec).Total(),
			ConformOK:   conform.CheckAll(chF).OK() && conform.CheckAll(chA).OK(),
		})
	}
	return out, nil
}

// RunScale measures both parallel kernels across device generations —
// 64, 256 and 1024 cores, the last a 2x2 eLink-bridged chip array — on a
// fixed workload. It quantifies the architecture-scaling story: FFBP's
// speedup tracks the aggregate SDRAM bandwidth (the 1024-core array
// brings four channels, not sixteen more cores' worth), while the
// on-chip autofocus pipelines scale with replica count until the input
// stream saturates the channels.
func RunScale(ctx context.Context, cfg report.Config) ([]ScalePoint, error) {
	return runScale(ctx, defaultScaleWorkload(cfg), scaleTopos())
}

// Scale runs RunScale and prints the series.
func Scale(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunScale(ctx, cfg)
	if err != nil {
		return err
	}
	printScale(w, points)
	return nil
}

func printScale(w io.Writer, points []ScalePoint) {
	fmt.Fprintf(w, "%6s %6s %22s %11s %8s %9s %6s %11s %8s %9s %8s\n",
		"cores", "chips", "mesh", "ffbp (ms)", "speedup", "J", "pipes", "af (ms)", "speedup", "J", "conform")
	for _, pt := range points {
		fmt.Fprintf(w, "%6d %6d %22s %11.1f %7.2fx %9.3f %6d %11.3f %7.2fx %9.4f %8v\n",
			pt.Cores, pt.Chips, pt.Mesh, pt.FFBPSeconds*1e3, pt.FFBPSpeedup, pt.FFBPEnergyJ,
			pt.Pipelines, pt.AFSeconds*1e3, pt.AFSpeedup, pt.AFEnergyJ, pt.ConformOK)
	}
}
