package bench

import (
	"context"
	"fmt"
	"io"

	"sarmany/internal/conform"
	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/fault"
	"sarmany/internal/kernels"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// ChaosPoint is one fault-severity measurement of the chaos sweep.
type ChaosPoint struct {
	// Severity is the sweep knob in [0, 1]: it scales the link and DMA
	// fault rates, the per-core derate, and the SDRAM bandwidth cut; at
	// severity 1 one core is additionally hard-halted.
	Severity    float64 `json:"severity"`
	HaltedCores int     `json:"halted_cores"`
	Seconds     float64 `json:"seconds"`
	// Slowdown and EnergyRatio are relative to the severity-0 run of the
	// same sweep.
	Slowdown       float64 `json:"slowdown"`
	EnergyJ        float64 `json:"energy_j"`
	EnergyRatio    float64 `json:"energy_ratio"`
	LinkRetries    uint64  `json:"link_retries"`
	DMARetries     uint64  `json:"dma_retries"`
	RemappedSlots  int     `json:"remapped_slots"`
	OverheadCycles float64 `json:"overhead_cycles"`
	// ConformOK records that the degraded run still passed every
	// conformance invariant — the point of graceful degradation.
	ConformOK bool `json:"conform_ok"`
}

// ChaosPlan builds the deterministic fault plan for one severity of the
// sweep: link and DMA faults on every target at severity-scaled rates, a
// derated core, a throttled SDRAM channel, and — at full severity — one
// hard-halted core whose tile work must remap. Severity 0 is the empty
// plan.
func ChaosPlan(severity float64, cores int) fault.Plan {
	if severity <= 0 {
		return fault.Plan{}
	}
	p := fault.Plan{
		Seed:     1234,
		Derates:  []fault.Derate{{Core: 1, Factor: 1 + 0.5*severity}},
		ExtScale: 1 - 0.4*severity,
		Links:    []fault.LinkFault{{From: -1, To: -1, Rate: 0.3 * severity, TimeoutCycles: 200, BackoffCycles: 25, MaxRetries: 4}},
		DMAs:     []fault.DMAFault{{Core: -1, Rate: 0.3 * severity, TimeoutCycles: 100, MaxRetries: 3}},
	}
	if severity >= 1 {
		p.Halts = []int{cores - 1}
	}
	return p
}

// RunChaos measures parallel FFBP under increasingly severe fault plans —
// the degradation curve: how much time and energy graceful completion
// costs as links flake, DMA engines time out, a core derates, the SDRAM
// channel throttles, and finally a core dies. Every point must still pass
// the conformance checker.
func RunChaos(ctx context.Context, cfg report.Config, severities []float64) ([]ChaosPoint, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	out := make([]ChaosPoint, 0, len(severities))
	var baseSec, baseJ float64
	for _, s := range severities {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ch := emu.New(cfg.Epiphany)
		plan := ChaosPlan(s, cfg.FFBPCores)
		inj, err := plan.Compile()
		if err != nil {
			return nil, fmt.Errorf("chaos severity %g: %w", s, err)
		}
		ch.SetFaults(inj)
		if _, _, err := kernels.ParFFBP(ch, cfg.FFBPCores, data, cfg.Params, cfg.Box); err != nil {
			return nil, fmt.Errorf("chaos severity %g: %w", s, err)
		}
		tot := ch.TotalStats()
		sec := ch.Time()
		j := energy.EpiphanyBreakdown(tot, sec).Total()
		if len(out) == 0 {
			baseSec, baseJ = sec, j
		}
		out = append(out, ChaosPoint{
			Severity:       s,
			HaltedCores:    len(plan.Halts),
			Seconds:        sec,
			Slowdown:       sec / baseSec,
			EnergyJ:        j,
			EnergyRatio:    j / baseJ,
			LinkRetries:    tot.LinkRetries,
			DMARetries:     tot.DMARetries,
			RemappedSlots:  len(ch.Remaps()),
			OverheadCycles: tot.LinkRetryCycles + tot.DMARetryCycles + tot.DerateCycles,
			ConformOK:      conform.Check(ch).OK(),
		})
	}
	return out, nil
}

// Chaos runs RunChaos over the canonical severity grid and prints the
// degradation curve.
func Chaos(ctx context.Context, w io.Writer, cfg report.Config) error {
	points, err := RunChaos(ctx, cfg, []float64{0, 0.25, 0.5, 1})
	if err != nil {
		return err
	}
	printChaos(w, points)
	return nil
}

func printChaos(w io.Writer, points []ChaosPoint) {
	fmt.Fprintf(w, "%9s %6s %12s %9s %11s %8s %9s %7s %7s %8s\n",
		"severity", "halts", "time (ms)", "slowdown", "energy (J)", "ratio", "linkrtry", "dmartry", "remaps", "conform")
	for _, pt := range points {
		ok := "ok"
		if !pt.ConformOK {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%9.2f %6d %12.2f %9.3f %11.3e %8.3f %9d %7d %7d %8s\n",
			pt.Severity, pt.HaltedCores, pt.Seconds*1e3, pt.Slowdown, pt.EnergyJ, pt.EnergyRatio,
			pt.LinkRetries, pt.DMARetries, pt.RemappedSlots, ok)
	}
}
