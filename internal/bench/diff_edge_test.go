package bench

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestDiffEdgeCases tables the comparison corners the gate must survive:
// leaves that exist on one side only, zero baselines (relative delta is
// undefined), and numbers JSON allows but float64 cannot hold (1e999
// parses to +Inf with an error, so the leaf must fall back to exact
// textual comparison instead of poisoning the tolerance arithmetic).
func TestDiffEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		old, new string
		opt      DiffOptions
		want     int // regression count
		check    func(t *testing.T, fs []Finding)
	}{
		{
			name: "missing_leaf_in_candidate",
			old:  `{"a": 1, "b": 2}`,
			new:  `{"a": 1}`,
			want: 1,
			check: func(t *testing.T, fs []Finding) {
				if fs[0].Path != "b" || fs[0].New != "(missing)" || fs[0].Delta != 0 {
					t.Errorf("finding: %+v", fs[0])
				}
			},
		},
		{
			name: "missing_leaf_in_baseline",
			old:  `{"a": 1}`,
			new:  `{"a": 1, "b": 2}`,
			want: 1,
			check: func(t *testing.T, fs []Finding) {
				if fs[0].Path != "b" || fs[0].Old != "(missing)" {
					t.Errorf("finding: %+v", fs[0])
				}
			},
		},
		{
			name: "zero_baseline_nonzero_candidate",
			old:  `{"stalls": 0}`,
			new:  `{"stalls": 7}`,
			opt:  DiffOptions{Tolerance: 0.02},
			want: 1,
			check: func(t *testing.T, fs []Finding) {
				// Relative delta against zero is undefined: the finding
				// reports the values with Delta left at 0 rather than
				// Inf/NaN leaking into the report.
				f := fs[0]
				if f.Delta != 0 || math.IsInf(f.Delta, 0) || math.IsNaN(f.Delta) {
					t.Errorf("zero-baseline delta = %v, want 0", f.Delta)
				}
				if f.Old != "0" || f.New != "7" {
					t.Errorf("finding: %+v", f)
				}
			},
		},
		{
			name: "zero_on_both_sides_is_quiet",
			old:  `{"stalls": 0}`,
			new:  `{"stalls": 0}`,
			opt:  DiffOptions{Tolerance: 0.02},
			want: 0,
		},
		{
			name: "overflow_number_equal_is_quiet",
			old:  `{"x": 1e999}`,
			new:  `{"x": 1e999}`,
			opt:  DiffOptions{Tolerance: 0.02},
			want: 0,
		},
		{
			name: "overflow_number_changed_is_flagged",
			old:  `{"x": 1e999}`,
			new:  `{"x": 2}`,
			opt:  DiffOptions{Tolerance: 0.02},
			want: 1,
			check: func(t *testing.T, fs []Finding) {
				f := fs[0]
				if f.Old != "1e999" || f.Delta != 0 {
					t.Errorf("overflow leaf compared numerically: %+v", f)
				}
				if math.IsInf(f.Delta, 0) || math.IsNaN(f.Delta) {
					t.Errorf("delta leaked non-finite value: %v", f.Delta)
				}
			},
		},
		{
			name: "negative_values_use_magnitude_tolerance",
			old:  `{"x": -100}`,
			new:  `{"x": -101}`,
			opt:  DiffOptions{Tolerance: 0.02},
			want: 0,
		},
		{
			name: "type_change_number_to_string",
			old:  `{"x": 5}`,
			new:  `{"x": "5"}`,
			want: 1,
			check: func(t *testing.T, fs []Finding) {
				if fs[0].Old != "5" || fs[0].New != `"5"` {
					t.Errorf("finding: %+v", fs[0])
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, err := DiffEnvelopes([]byte(tc.old), []byte(tc.new), tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if Regressions(fs) != tc.want {
				t.Fatalf("regressions = %d, want %d (findings: %v)", Regressions(fs), tc.want, fs)
			}
			if tc.check != nil && len(fs) > 0 {
				tc.check(t, fs)
			}
		})
	}
}

func TestNumericLeaves(t *testing.T) {
	doc := `{"name": "x", "ok": true, "n": 3, "data": {"pts": [{"s": 0.5}, {"s": 1.5}]}, "big": 1e999}`
	got, err := NumericLeaves([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"n": 3, "data.pts[0].s": 0.5, "data.pts[1].s": 1.5}
	if len(got) != len(want) {
		t.Fatalf("leaves = %v, want %v", got, want)
	}
	for p, v := range want {
		if got[p] != v {
			t.Errorf("leaf %s = %v, want %v", p, got[p], v)
		}
	}
	if _, err := NumericLeaves([]byte("{")); err == nil {
		t.Error("malformed doc accepted")
	}
}

// TestEnvelopeBackwardCompat pins that envelopes written before the
// provenance fields existed still decode (empty Salt/Version), and that
// a provenance-free Result marshals without the fields at all — the
// committed benchdiff baselines must stay byte-identical.
func TestEnvelopeBackwardCompat(t *testing.T) {
	old := `{"name": "sweep", "title": "t", "pulses": 1, "bins": 2, "data": {"x": 1}}`
	var r RawResult
	if err := json.Unmarshal([]byte(old), &r); err != nil {
		t.Fatal(err)
	}
	if r.Salt != "" || r.Version != "" {
		t.Errorf("pre-provenance envelope decoded salt=%q version=%q, want empty", r.Salt, r.Version)
	}
	if r.Name != "sweep" || r.Pulses != 1 {
		t.Errorf("decode lost fields: %+v", r)
	}

	b, err := Marshal(Result{Name: "sweep", Title: "t", Pulses: 1, Bins: 2, Data: map[string]int{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "salt") || strings.Contains(string(b), "version") {
		t.Errorf("provenance-free envelope grew fields:\n%s", b)
	}

	// And a stamped envelope round-trips both fields.
	b, err = Marshal(Result{Name: "x", Salt: EnvelopeSalt, Version: "abc123", Data: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Salt != EnvelopeSalt || r.Version != "abc123" {
		t.Errorf("round trip lost provenance: %+v", r)
	}
}

// TestVersionStable pins Version's contract: non-empty, deterministic
// within a process, and free of whitespace (it lands in single-line
// status output and file names).
func TestVersionStable(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("Version() empty")
	}
	if v != Version() {
		t.Error("Version() not deterministic")
	}
	if strings.ContainsAny(v, " \t\n") {
		t.Errorf("Version() %q contains whitespace", v)
	}
}
