package bench

import (
	"context"
	"encoding/json"
	"io"
	"path/filepath"
	"testing"

	"sarmany/internal/report"
)

func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pts := []ScalingPoint{
		{Cores: 1, Seconds: 2.5, Speedup: 1},
		{Cores: 16, Seconds: 0.25, Speedup: 10},
	}
	path, err := WriteFile(dir, Result{
		Name: "scaling", Title: "FFBP speedup vs core count",
		Pulses: 128, Bins: 251, Data: pts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_scaling.json"); path != want {
		t.Errorf("path %q, want %q", path, want)
	}

	r, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "scaling" || r.Title != "FFBP speedup vs core count" ||
		r.Pulses != 128 || r.Bins != 251 {
		t.Errorf("envelope fields lost: %+v", r)
	}
	var got []ScalingPoint
	if err := json.Unmarshal(r.Data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Errorf("point %d: got %+v, want %+v", i, got[i], pts[i])
		}
	}
}

func TestExperimentUnknownKey(t *testing.T) {
	if err := Experiment(context.Background(), "nope", io.Discard, report.Small(), "", ""); err == nil {
		t.Error("no error for unknown experiment key")
	}
}
