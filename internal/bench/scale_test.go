package bench

import (
	"context"
	"os"
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

// TestScaleShape runs the scale sweep's machinery on a reduced workload
// and two small topologies, checking the per-point bookkeeping: core and
// chip counts, pipeline sizing, base-relative speedups, positive modeled
// energy, and a green conformance verdict on every topology.
func TestScaleShape(t *testing.T) {
	cfg := report.Small()
	afCfg := cfg
	afCfg.Pairs = 8
	wl := scaleWorkload{
		p:      cfg.Params,
		box:    cfg.Box,
		data:   sar.Simulate(cfg.Params, cfg.Targets, nil),
		pairs:  report.AutofocusWorkload(afCfg),
		shifts: autofocus.RangeSweep(-1.5, 1.5, 3),
	}

	pts, err := runScale(context.Background(), wl, []scaleTopo{
		{emu.E16G3(), 16},
		{emu.E16G3().WithChips(1, 2), 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	want := []struct {
		cores, chips, pipes int
		mesh                string
	}{
		{16, 1, 1, "4x4"},
		{32, 2, 2, "1x2 chips of 4x4"},
	}
	for i, pt := range pts {
		if pt.Cores != want[i].cores || pt.Chips != want[i].chips ||
			pt.Pipelines != want[i].pipes || pt.Mesh != want[i].mesh {
			t.Errorf("point %d = %+v; want cores=%d chips=%d pipes=%d mesh=%q",
				i, pt, want[i].cores, want[i].chips, want[i].pipes, want[i].mesh)
		}
		if pt.FFBPSeconds <= 0 || pt.AFSeconds <= 0 {
			t.Errorf("point %d: non-positive modeled time: %+v", i, pt)
		}
		if pt.FFBPEnergyJ <= 0 || pt.AFEnergyJ <= 0 {
			t.Errorf("point %d: non-positive modeled energy: %+v", i, pt)
		}
		if !pt.ConformOK {
			t.Errorf("point %d (%s): conformance check failed", i, pt.Mesh)
		}
	}
	if pts[0].FFBPSpeedup != 1 || pts[0].AFSpeedup != 1 {
		t.Errorf("first point speedups = %v/%v; want 1/1", pts[0].FFBPSpeedup, pts[0].AFSpeedup)
	}
	if pts[1].FFBPSpeedup <= 1 {
		t.Errorf("32-core FFBP speedup = %v; want > 1 (twice the cores, twice the channels)",
			pts[1].FFBPSpeedup)
	}
	if pts[1].AFSpeedup <= 1 {
		t.Errorf("2-pipeline autofocus speedup = %v; want > 1", pts[1].AFSpeedup)
	}
}

// TestScaleBench runs the full sweep — 64, 256 and 1024 cores, the last a
// 2x2 eLink-bridged array — and, when SCALEBENCH_OUT names a directory,
// records the result as a BENCH_scale.json envelope (the `make
// scalebench` target). Without the variable it is skipped to keep the
// regular suite fast. Everything in the envelope is modeled simulator
// output, so all of it gates in benchdiff.
func TestScaleBench(t *testing.T) {
	out := os.Getenv("SCALEBENCH_OUT")
	if out == "" {
		t.Skip("SCALEBENCH_OUT not set")
	}
	cfg := report.Default()
	pts, err := RunScale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCores := []int{64, 256, 1024}
	if len(pts) != len(wantCores) {
		t.Fatalf("got %d points, want %d", len(pts), len(wantCores))
	}
	for i, pt := range pts {
		if pt.Cores != wantCores[i] {
			t.Errorf("point %d cores = %d, want %d", i, pt.Cores, wantCores[i])
		}
		if !pt.ConformOK {
			t.Errorf("%s: conformance check failed", pt.Mesh)
		}
		t.Logf("%4d cores (%s): ffbp %.1f ms (%.2fx, %.3f J), %d pipes af %.3f ms (%.2fx, %.4f J)",
			pt.Cores, pt.Mesh, pt.FFBPSeconds*1e3, pt.FFBPSpeedup, pt.FFBPEnergyJ,
			pt.Pipelines, pt.AFSeconds*1e3, pt.AFSpeedup, pt.AFEnergyJ)
	}
	if last := pts[len(pts)-1]; last.FFBPSpeedup <= pts[0].FFBPSpeedup {
		t.Errorf("1024-core FFBP speedup %v not above the 64-core base (four SDRAM channels)", last.FFBPSpeedup)
	}

	// The envelope records the sweep's pinned workload scale, not the
	// config's — RunScale fixes its input so the baseline is comparable
	// across configurations.
	env := Result{
		Name: "scale", Title: "Manycore scale-up sweep",
		Pulses: scalePulses, Bins: scaleBins,
		Data: pts,
	}
	path, err := WriteFile(out, env)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
