package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"path"
	"sort"
	"strconv"
	"strings"
)

// DiffOptions controls envelope comparison.
type DiffOptions struct {
	// Tolerance is the relative tolerance for numeric leaves: values
	// differing by more than Tolerance*max(|old|, |new|) are findings.
	// Zero means exact comparison.
	Tolerance float64
	// Advisory lists path.Match patterns (against the dotted leaf path,
	// e.g. "data.seconds*") for leaves that are reported but never gate —
	// wall-clock and host-shape fields that legitimately vary between
	// machines and runs.
	Advisory []string
}

// Finding is one divergence between two envelopes.
type Finding struct {
	// Path is the dotted leaf path, e.g. "data[3].seconds".
	Path string
	// Old and New are the formatted leaf values ("(missing)" when the
	// leaf exists on only one side).
	Old, New string
	// Delta is the relative change for numeric leaves (0 otherwise).
	Delta float64
	// Advisory marks leaves matched by DiffOptions.Advisory: reported
	// for the record, not a regression.
	Advisory bool
}

func (f Finding) String() string {
	tag := ""
	if f.Advisory {
		tag = " (advisory)"
	}
	if f.Delta != 0 {
		return fmt.Sprintf("%s: %s -> %s (%+.1f%%)%s", f.Path, f.Old, f.New, 100*f.Delta, tag)
	}
	return fmt.Sprintf("%s: %s -> %s%s", f.Path, f.Old, f.New, tag)
}

// Regressions counts the non-advisory findings.
func Regressions(fs []Finding) int {
	n := 0
	for _, f := range fs {
		if !f.Advisory {
			n++
		}
	}
	return n
}

// DiffEnvelopes compares two BENCH_*.json envelope documents leaf by
// leaf: both are flattened to dotted paths, numeric leaves compare under
// the relative tolerance, and everything else compares exactly. Leaves
// present on only one side are findings too, so a silently dropped
// metric cannot pass the gate. Findings come back sorted by path,
// regressions before advisory notes.
func DiffEnvelopes(oldDoc, newDoc []byte, opt DiffOptions) ([]Finding, error) {
	oldLeaves, err := flattenJSON(oldDoc)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	newLeaves, err := flattenJSON(newDoc)
	if err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}

	paths := make([]string, 0, len(oldLeaves))
	for p := range oldLeaves {
		paths = append(paths, p)
	}
	for p := range newLeaves {
		if _, ok := oldLeaves[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	var out []Finding
	for _, p := range paths {
		o, haveOld := oldLeaves[p]
		n, haveNew := newLeaves[p]
		f := Finding{Path: p, Advisory: matchAny(opt.Advisory, p)}
		switch {
		case !haveOld:
			f.Old, f.New = "(missing)", n.format()
		case !haveNew:
			f.Old, f.New = o.format(), "(missing)"
		case o.isNum && n.isNum:
			if ref := math.Max(math.Abs(o.num), math.Abs(n.num)); math.Abs(n.num-o.num) <= opt.Tolerance*ref {
				continue
			}
			f.Old, f.New = o.format(), n.format()
			if o.num != 0 {
				f.Delta = (n.num - o.num) / math.Abs(o.num)
			}
		default:
			if o.raw == n.raw {
				continue
			}
			f.Old, f.New = o.format(), n.format()
		}
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Advisory != out[j].Advisory {
			return !out[i].Advisory
		}
		return out[i].Path < out[j].Path
	})
	return out, nil
}

// NumericLeaves flattens a JSON document to its numeric scalar leaves,
// keyed by dotted path exactly as DiffEnvelopes names them
// ("data[3].seconds"). Non-numeric leaves and numbers outside float64
// range are omitted. This is the query surface history tools (sarlog
// trend) use to track one metric across stored envelopes.
func NumericLeaves(doc []byte) (map[string]float64, error) {
	leaves, err := flattenJSON(doc)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(leaves))
	for p, l := range leaves {
		if l.isNum {
			out[p] = l.num
		}
	}
	return out, nil
}

// leaf is one flattened JSON scalar.
type leaf struct {
	raw   string // canonical textual form, for non-numeric comparison
	num   float64
	isNum bool
}

func (l leaf) format() string { return l.raw }

// flattenJSON parses doc and maps every scalar leaf to its dotted path.
// Object keys become ".key" steps and array elements "[i]" steps;
// numbers keep full float64 precision for tolerance comparison.
func flattenJSON(doc []byte) (map[string]leaf, error) {
	dec := json.NewDecoder(strings.NewReader(string(doc)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	out := map[string]leaf{}
	flattenValue(v, "", out)
	return out, nil
}

func flattenValue(v any, at string, out map[string]leaf) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			p := k
			if at != "" {
				p = at + "." + k
			}
			flattenValue(c, p, out)
		}
	case []any:
		for i, c := range t {
			flattenValue(c, fmt.Sprintf("%s[%d]", at, i), out)
		}
	case json.Number:
		n, err := t.Float64()
		out[at] = leaf{raw: t.String(), num: n, isNum: err == nil}
	case string:
		out[at] = leaf{raw: strconv.Quote(t)}
	case bool:
		out[at] = leaf{raw: strconv.FormatBool(t)}
	case nil:
		out[at] = leaf{raw: "null"}
	}
}

// matchAny reports whether any pattern matches p. Dotted paths contain no
// '/', so a '*' in a pattern spans arbitrarily (path.Match semantics).
func matchAny(patterns []string, p string) bool {
	for _, pat := range patterns {
		if ok, _ := path.Match(pat, p); ok {
			return true
		}
	}
	return false
}
