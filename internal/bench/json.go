package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sarmany/internal/report"
)

// Result is the machine-readable envelope around one experiment's data,
// written as BENCH_<name>.json next to the human-readable table. Data
// holds the experiment's point slice or result struct (every point type
// in this package carries JSON tags).
type Result struct {
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	// Pulses and Bins record the workload scale the experiment ran at,
	// so stored results from different scales are distinguishable.
	Pulses int `json:"pulses,omitempty"`
	Bins   int `json:"bins,omitempty"`
	Data   any `json:"data"`
}

// RawResult is the read-side counterpart of Result: Data stays raw for
// the caller to decode into the experiment's concrete point type.
type RawResult struct {
	Name   string          `json:"name"`
	Title  string          `json:"title"`
	Pulses int             `json:"pulses"`
	Bins   int             `json:"bins"`
	Data   json.RawMessage `json:"data"`
}

// Filename returns the canonical result file name for an experiment.
func Filename(name string) string { return "BENCH_" + name + ".json" }

// WriteFile writes r as indented JSON to dir/BENCH_<r.Name>.json and
// returns the path.
func WriteFile(dir string, r Result) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, Filename(r.Name))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// ReadResult reads an envelope written by WriteFile.
func ReadResult(path string) (RawResult, error) {
	var r RawResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(b, &r)
}

// GBPFFBPResult is the JSON form of the GBP-vs-FFBP comparison.
type GBPFFBPResult struct {
	GBPSeconds  float64 `json:"gbp_seconds"`
	FFBPSeconds float64 `json:"ffbp_seconds"`
	Speedup     float64 `json:"speedup"`
}

// Experiment runs the experiment selected by key (the cmd/benchtab -exp
// names), prints its human-readable table to w and, when jsonDir is
// non-empty, also writes the machine-readable envelope to
// jsonDir/BENCH_<name>.json. Each experiment computes exactly once;
// imgDir receives the fig7 image set.
func Experiment(key string, w io.Writer, cfg report.Config, jsonDir, imgDir string) error {
	var res Result
	switch key {
	case "t1":
		t, err := report.RunTable1(cfg)
		if err != nil {
			return err
		}
		io.WriteString(w, t.String())
		res = Result{Name: "table1", Title: "Table I and energy ratios", Data: t}
	case "fig7":
		r, imgs, err := RunFigure7(cfg)
		if err != nil {
			return err
		}
		if err := saveFig7(imgs, imgDir); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", imgDir)
		printFig7(w, r)
		res = Result{Name: "fig7", Title: "Figure 7 quality metrics", Data: r}
	case "scaling":
		pts, err := RunScaling(cfg, []int{1, 2, 4, 8, 16, 32, 64})
		if err != nil {
			return err
		}
		printScaling(w, pts)
		res = Result{Name: "scaling", Title: "FFBP speedup vs core count", Data: pts}
	case "bw":
		pts, err := RunBandwidth(cfg, []float64{0.25, 0.5, 1, 2, 4})
		if err != nil {
			return err
		}
		printBandwidth(w, pts)
		res = Result{Name: "bandwidth", Title: "Off-chip bandwidth sweep", Data: pts}
	case "interp":
		pts, err := RunInterp(cfg)
		if err != nil {
			return err
		}
		printInterp(w, pts)
		res = Result{Name: "interp", Title: "FFBP quality vs interpolation kernel", Data: pts}
	case "pipes":
		pts, err := RunPipelines(cfg, []int{1, 2, 3, 4})
		if err != nil {
			return err
		}
		printPipelines(w, pts)
		res = Result{Name: "pipelines", Title: "Autofocus pipeline replication", Data: pts}
	case "gbp":
		g, f, err := RunGBPvsFFBP(cfg)
		if err != nil {
			return err
		}
		printGBPvsFFBP(w, g, f)
		res = Result{Name: "gbp_vs_ffbp", Title: "GBP vs FFBP complexity",
			Data: GBPFFBPResult{GBPSeconds: g, FFBPSeconds: f, Speedup: g / f}}
	case "base":
		pts, err := RunBases(cfg, []int{2, 4})
		if err != nil {
			return err
		}
		printBases(w, pts)
		res = Result{Name: "bases", Title: "Factorization base ablation", Data: pts}
	case "rda":
		r, err := RunMotivation(cfg)
		if err != nil {
			return err
		}
		printMotivation(w, r)
		res = Result{Name: "motivation", Title: "Frequency vs time domain", Data: r}
	case "upsample":
		pts, err := RunUpsample(cfg, []int{1, 2, 4})
		if err != nil {
			return err
		}
		printUpsample(w, pts)
		res = Result{Name: "upsample", Title: "Range oversampling ablation", Data: pts}
	default:
		return fmt.Errorf("unknown experiment %q", key)
	}
	if jsonDir == "" {
		return nil
	}
	res.Pulses = cfg.Params.NumPulses
	res.Bins = cfg.Params.NumBins
	path, err := WriteFile(jsonDir, res)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
