package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sarmany/internal/obs"
	"sarmany/internal/report"
)

// Result is the machine-readable envelope around one experiment's data,
// written as BENCH_<name>.json next to the human-readable table. Data
// holds the experiment's point slice or result struct (every point type
// in this package carries JSON tags); after a round trip through
// Marshal/ReadResult it is a json.RawMessage instead, which DecodeData
// turns back into the concrete type.
type Result struct {
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	// Pulses and Bins record the workload scale the experiment ran at,
	// so stored results from different scales are distinguishable.
	Pulses int `json:"pulses,omitempty"`
	Bins   int `json:"bins,omitempty"`
	// Salt and Version record provenance: the envelope-schema salt and
	// the code version (git revision) that computed the data. Both are
	// omitempty so envelopes written before they existed — and the
	// committed benchdiff baselines, which tests construct directly —
	// decode and re-marshal unchanged.
	Salt    string `json:"salt,omitempty"`
	Version string `json:"version,omitempty"`
	Data    any    `json:"data"`
}

// RawResult is the read-side counterpart of Result: Data stays raw for
// the caller to decode into the experiment's concrete point type.
type RawResult struct {
	Name    string          `json:"name"`
	Title   string          `json:"title"`
	Pulses  int             `json:"pulses"`
	Bins    int             `json:"bins"`
	Salt    string          `json:"salt"`
	Version string          `json:"version"`
	Data    json.RawMessage `json:"data"`
}

// EnvelopeSalt is the schema salt stamped into envelopes Compute
// produces. Bump it when the envelope layout changes incompatibly so
// history-reading tools (sarlog trend) can tell generations apart.
const EnvelopeSalt = "sarmany-bench-v1"

// Filename returns the canonical result file name for an experiment.
func Filename(name string) string { return "BENCH_" + name + ".json" }

// Marshal renders the envelope in the canonical on-disk form (indented
// JSON, trailing newline) — the exact bytes WriteFile stores and the
// sweep cache replays, so a cached result is byte-identical to a fresh
// one.
func Marshal(r Result) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes r as indented JSON to dir/BENCH_<r.Name>.json and
// returns the path.
func WriteFile(dir string, r Result) (string, error) {
	b, err := Marshal(r)
	if err != nil {
		return "", err
	}
	return WriteFileRaw(dir, r.Name, b)
}

// WriteFileRaw writes pre-marshaled envelope bytes (as produced by
// Marshal or replayed from the sweep cache) to dir/BENCH_<name>.json.
func WriteFileRaw(dir, name string, b []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, Filename(name))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadResult reads an envelope written by WriteFile.
func ReadResult(path string) (RawResult, error) {
	var r RawResult
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(b, &r)
}

// GBPFFBPResult is the JSON form of the GBP-vs-FFBP comparison.
type GBPFFBPResult struct {
	GBPSeconds  float64 `json:"gbp_seconds"`
	FFBPSeconds float64 `json:"ffbp_seconds"`
	Speedup     float64 `json:"speedup"`
}

// Keys lists the experiment selector keys Compute accepts, in the
// canonical "-exp all" order.
func Keys() []string {
	return []string{"t1", "fig7", "scaling", "bw", "interp", "pipes", "gbp", "base", "rda", "upsample", "chaos", "kernels", "scale"}
}

// Compute runs the experiment selected by key (the cmd/benchtab -exp
// names) and returns its machine-readable envelope without printing
// anything. The single filesystem side effect is the Fig. 7 image set,
// written into imgDir when key is "fig7" and imgDir is non-empty. The
// context is threaded into the experiment and checked between simulation
// units. When the context carries a request span (a traced sarserve
// submission), the experiment is recorded as a "bench.<key>" child
// span, so request traces show the simulation stage by name.
func Compute(ctx context.Context, key string, cfg report.Config, imgDir string) (res Result, err error) {
	if sp := obs.SpanFromContext(ctx).Child("bench." + key); sp != nil {
		defer func() {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}()
	}
	switch key {
	case "t1":
		t, err := report.RunTable1(ctx, cfg)
		if err != nil {
			return res, err
		}
		res = Result{Name: "table1", Title: "Table I and energy ratios", Data: t}
	case "fig7":
		r, imgs, err := RunFigure7(ctx, cfg)
		if err != nil {
			return res, err
		}
		if imgDir != "" {
			if err := saveFig7(imgs, imgDir); err != nil {
				return res, err
			}
		}
		res = Result{Name: "fig7", Title: "Figure 7 quality metrics", Data: r}
	case "scaling":
		pts, err := RunScaling(ctx, cfg, []int{1, 2, 4, 8, 16, 32, 64})
		if err != nil {
			return res, err
		}
		res = Result{Name: "scaling", Title: "FFBP speedup vs core count", Data: pts}
	case "bw":
		pts, err := RunBandwidth(ctx, cfg, []float64{0.25, 0.5, 1, 2, 4})
		if err != nil {
			return res, err
		}
		res = Result{Name: "bandwidth", Title: "Off-chip bandwidth sweep", Data: pts}
	case "interp":
		pts, err := RunInterp(ctx, cfg)
		if err != nil {
			return res, err
		}
		res = Result{Name: "interp", Title: "FFBP quality vs interpolation kernel", Data: pts}
	case "pipes":
		pts, err := RunPipelines(ctx, cfg, []int{1, 2, 3, 4})
		if err != nil {
			return res, err
		}
		res = Result{Name: "pipelines", Title: "Autofocus pipeline replication", Data: pts}
	case "gbp":
		g, f, err := RunGBPvsFFBP(ctx, cfg)
		if err != nil {
			return res, err
		}
		res = Result{Name: "gbp_vs_ffbp", Title: "GBP vs FFBP complexity",
			Data: GBPFFBPResult{GBPSeconds: g, FFBPSeconds: f, Speedup: g / f}}
	case "base":
		pts, err := RunBases(ctx, cfg, []int{2, 4})
		if err != nil {
			return res, err
		}
		res = Result{Name: "bases", Title: "Factorization base ablation", Data: pts}
	case "rda":
		r, err := RunMotivation(ctx, cfg)
		if err != nil {
			return res, err
		}
		res = Result{Name: "motivation", Title: "Frequency vs time domain", Data: r}
	case "upsample":
		pts, err := RunUpsample(ctx, cfg, []int{1, 2, 4})
		if err != nil {
			return res, err
		}
		res = Result{Name: "upsample", Title: "Range oversampling ablation", Data: pts}
	case "chaos":
		pts, err := RunChaos(ctx, cfg, []float64{0, 0.25, 0.5, 1})
		if err != nil {
			return res, err
		}
		res = Result{Name: "chaos", Title: "Fault-severity degradation sweep", Data: pts}
	case "kernels":
		r, err := RunKernels(ctx, cfg)
		if err != nil {
			return res, err
		}
		res = Result{Name: "kernels", Title: "Fused kernel throughput", Data: r}
	case "scale":
		pts, err := RunScale(ctx, cfg)
		if err != nil {
			return res, err
		}
		// The scale sweep pins its own workload scale (see scale.go);
		// record that, not the config's.
		res = Result{Name: "scale", Title: "Manycore scale-up sweep",
			Pulses: scalePulses, Bins: scaleBins, Data: pts}
	default:
		return res, fmt.Errorf("unknown experiment %q", key)
	}
	if res.Pulses == 0 {
		res.Pulses = cfg.Params.NumPulses
	}
	if res.Bins == 0 {
		res.Bins = cfg.Params.NumBins
	}
	res.Salt = EnvelopeSalt
	res.Version = Version()
	return res, nil
}

// DecodeData converts a raw envelope payload (as read back from a
// BENCH_<name>.json file or the sweep cache) into the concrete data type
// Compute produces for that envelope name.
func DecodeData(name string, raw json.RawMessage) (any, error) {
	decode := func(v any) (any, error) {
		if err := json.Unmarshal(raw, v); err != nil {
			return nil, fmt.Errorf("decode %s envelope: %w", name, err)
		}
		return v, nil
	}
	switch name {
	case "table1":
		return decode(&report.Table1{})
	case "fig7":
		return decode(&Fig7Result{})
	case "scaling":
		return decode(&[]ScalingPoint{})
	case "bandwidth":
		return decode(&[]BandwidthPoint{})
	case "interp":
		return decode(&[]InterpPoint{})
	case "pipelines":
		return decode(&[]PipelinePoint{})
	case "gbp_vs_ffbp":
		return decode(&GBPFFBPResult{})
	case "bases":
		return decode(&[]BasePoint{})
	case "motivation":
		return decode(&MotivationResult{})
	case "upsample":
		return decode(&[]UpsamplePoint{})
	case "chaos":
		return decode(&[]ChaosPoint{})
	case "kernels":
		return decode(&KernelsResult{})
	case "scale":
		return decode(&[]ScalePoint{})
	}
	return nil, fmt.Errorf("unknown envelope name %q", name)
}

// PrintResult renders the envelope's human-readable table to w. It
// accepts both freshly computed envelopes (Data holds the concrete type)
// and replayed ones (Data is a json.RawMessage from the sweep cache or a
// result file).
func PrintResult(w io.Writer, res Result) error {
	if raw, ok := res.Data.(json.RawMessage); ok {
		v, err := DecodeData(res.Name, raw)
		if err != nil {
			return err
		}
		res.Data = v
	}
	switch v := res.Data.(type) {
	case *report.Table1:
		_, err := io.WriteString(w, v.String())
		return err
	case Fig7Result:
		printFig7(w, v)
	case *Fig7Result:
		printFig7(w, *v)
	case []ScalingPoint:
		printScaling(w, v)
	case *[]ScalingPoint:
		printScaling(w, *v)
	case []BandwidthPoint:
		printBandwidth(w, v)
	case *[]BandwidthPoint:
		printBandwidth(w, *v)
	case []InterpPoint:
		printInterp(w, v)
	case *[]InterpPoint:
		printInterp(w, *v)
	case []PipelinePoint:
		printPipelines(w, v)
	case *[]PipelinePoint:
		printPipelines(w, *v)
	case GBPFFBPResult:
		printGBPvsFFBP(w, v.GBPSeconds, v.FFBPSeconds)
	case *GBPFFBPResult:
		printGBPvsFFBP(w, v.GBPSeconds, v.FFBPSeconds)
	case []BasePoint:
		printBases(w, v)
	case *[]BasePoint:
		printBases(w, *v)
	case MotivationResult:
		printMotivation(w, v)
	case *MotivationResult:
		printMotivation(w, *v)
	case []UpsamplePoint:
		printUpsample(w, v)
	case *[]UpsamplePoint:
		printUpsample(w, *v)
	case []ChaosPoint:
		printChaos(w, v)
	case *[]ChaosPoint:
		printChaos(w, *v)
	case KernelsResult:
		printKernels(w, v)
	case *KernelsResult:
		printKernels(w, *v)
	case []ScalePoint:
		printScale(w, v)
	case *[]ScalePoint:
		printScale(w, *v)
	default:
		return fmt.Errorf("print %s envelope: unhandled data type %T", res.Name, res.Data)
	}
	return nil
}

// Experiment runs the experiment selected by key, prints its
// human-readable table to w and, when jsonDir is non-empty, also writes
// the machine-readable envelope to jsonDir/BENCH_<name>.json. Each
// experiment computes exactly once; imgDir receives the fig7 image set.
func Experiment(ctx context.Context, key string, w io.Writer, cfg report.Config, jsonDir, imgDir string) error {
	res, err := Compute(ctx, key, cfg, imgDir)
	if err != nil {
		return err
	}
	if key == "fig7" && imgDir != "" {
		fmt.Fprintf(w, "wrote %s\n", imgDir)
	}
	if err := PrintResult(w, res); err != nil {
		return err
	}
	if jsonDir == "" {
		return nil
	}
	path, err := WriteFile(jsonDir, res)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
