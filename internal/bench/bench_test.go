package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sarmany/internal/interp"
	"sarmany/internal/report"
	"sarmany/internal/sar"
)

func TestTable1Writes(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(context.Background(), &buf, report.Small()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FFBP Implementations") {
		t.Errorf("output missing table header: %q", buf.String())
	}
}

func TestRunFigure7Relations(t *testing.T) {
	res, imgs, err := RunFigure7(context.Background(), report.Small())
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range imgs {
		if img == nil || img.Rows == 0 || img.Cols == 0 {
			t.Fatalf("image %d empty", i)
		}
	}
	// Paper Fig. 7 relations: GBP sharper than nearest-FFBP; the two FFBP
	// implementations equivalent (identical arithmetic here).
	if res.GBPSharpness <= res.FFBPSharpness {
		t.Errorf("GBP sharpness %v not above FFBP %v", res.GBPSharpness, res.FFBPSharpness)
	}
	if res.IntelEpiphanyCorr < 0.999 {
		t.Errorf("Intel/Epiphany correlation %v", res.IntelEpiphanyCorr)
	}
	if res.CrossCorr <= 0.5 || res.CrossCorr > 1.0001 {
		t.Errorf("GBP/FFBP correlation %v implausible", res.CrossCorr)
	}
}

func TestFigure7WritesFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := Figure7(context.Background(), &buf, report.Small(), dir); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sharpness", "correlation"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunScalingMonotone(t *testing.T) {
	pts, err := RunScaling(context.Background(), report.Small(), []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// More cores never slower.
	for i := 1; i < len(pts); i++ {
		if pts[i].Seconds > pts[i-1].Seconds*1.001 {
			t.Errorf("cores %d slower (%v s) than cores %d (%v s)",
				pts[i].Cores, pts[i].Seconds, pts[i-1].Cores, pts[i-1].Seconds)
		}
	}
	if pts[0].Speedup != 1 {
		t.Errorf("base speedup %v", pts[0].Speedup)
	}
	if pts[2].Speedup < 2 {
		t.Errorf("16-core speedup %v", pts[2].Speedup)
	}
}

func TestRunScalingGrowsMesh(t *testing.T) {
	pts, err := RunScaling(context.Background(), report.Small(), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Cores != 64 {
		t.Errorf("cores %d", pts[0].Cores)
	}
}

func TestRunBandwidthShape(t *testing.T) {
	pts, err := RunBandwidth(context.Background(), report.Small(), []float64{0.25, 4})
	if err != nil {
		t.Fatal(err)
	}
	// FFBP must be clearly bandwidth-sensitive; the streaming autofocus
	// pipeline much less so (paper Sec. VI).
	ffbpSens := pts[0].FFBPSeconds / pts[1].FFBPSeconds
	afSens := pts[0].AFSeconds / pts[1].AFSeconds
	if ffbpSens < 2 {
		t.Errorf("FFBP bandwidth sensitivity %v, want >= 2", ffbpSens)
	}
	if afSens >= ffbpSens {
		t.Errorf("autofocus sensitivity %v not below FFBP %v", afSens, ffbpSens)
	}
}

func TestRunInterpOrdering(t *testing.T) {
	pts, err := RunInterp(context.Background(), report.Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	byKind := map[interp.Kind]InterpPoint{}
	for _, pt := range pts {
		byKind[pt.Kind] = pt
	}
	// Cubic tracks the GBP reference at least as well as nearest.
	if byKind[interp.Cubic].GBPCorr < byKind[interp.Nearest].GBPCorr-0.02 {
		t.Errorf("cubic GBP correlation %v well below nearest %v",
			byKind[interp.Cubic].GBPCorr, byKind[interp.Nearest].GBPCorr)
	}
}

func TestRunPipelinesScales(t *testing.T) {
	pts, err := RunPipelines(context.Background(), report.Small(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Speedup < 2.5 {
		t.Errorf("4-pipeline speedup %v, want near 4", pts[1].Speedup)
	}
}

func TestRunGBPvsFFBP(t *testing.T) {
	g, f, err := RunGBPvsFFBP(context.Background(), report.Small())
	if err != nil {
		t.Fatal(err)
	}
	// 128 pulses vs 7 merge levels: GBP must be several times slower.
	if g/f < 2 {
		t.Errorf("GBP/FFBP time ratio %v, want >= 2", g/f)
	}
}

func TestRunBases(t *testing.T) {
	pts, err := RunBases(context.Background(), report.Small(), []int{2, 4}) // 128 = 2^7... not a power of 4!
	if err == nil {
		// 128 is not a power of 4, so this must fail — unless the small
		// config changes; guard both ways.
		for _, pt := range pts {
			if pt.Base == 4 {
				t.Fatal("base 4 on 128 pulses should have failed")
			}
		}
	}
	// A power-of-4 configuration works for both bases.
	cfg := report.Small()
	cfg.Params.NumPulses = 256
	cfg.Box = report.DefaultBox(cfg.Params)
	pts, err = RunBases(context.Background(), cfg, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Levels != 8 || pts[1].Levels != 4 {
		t.Fatalf("points %+v", pts)
	}
	if pts[1].Sharpness < 0.8*pts[0].Sharpness {
		t.Errorf("base-4 sharpness %v well below base-2 %v", pts[1].Sharpness, pts[0].Sharpness)
	}
}

func TestRunMotivationShape(t *testing.T) {
	cfg := report.Small()
	cfg.Params.NumPulses = 256
	cfg.Params.NumBins = 241
	cfg.Params.R0 = 500
	cfg.Box = report.DefaultBox(cfg.Params)
	cfg.Targets = []sar.Target{{U: 0, Y: cfg.Params.CenterRange(), Amp: 1}}
	r, err := RunMotivation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.RDAKept >= 0.9 {
		t.Errorf("RDA kept %v under path error; expected a clear loss", r.RDAKept)
	}
	if r.FocusedFFBPKept <= r.RDAKept {
		t.Errorf("autofocused FFBP kept %v, RDA %v — time domain should win", r.FocusedFFBPKept, r.RDAKept)
	}
	if r.MocompRDAKept < 0.85 {
		t.Errorf("motion-compensated RDA kept %v", r.MocompRDAKept)
	}
}

func TestTextDrivers(t *testing.T) {
	cfg := report.Small()
	var buf bytes.Buffer
	if err := Scaling(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cores") {
		t.Error("Scaling output missing header")
	}
	buf.Reset()
	if err := Bandwidth(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bytes/cycle") {
		t.Error("Bandwidth output missing header")
	}
	buf.Reset()
	if err := Interp(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kernel") {
		t.Error("Interp output missing header")
	}
	buf.Reset()
	if err := Pipelines(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pipelines") {
		t.Error("Pipelines output missing header")
	}
	buf.Reset()
	if err := GBPvsFFBP(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "faster") {
		t.Error("GBPvsFFBP output missing comparison")
	}
}
