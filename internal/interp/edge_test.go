package interp

import (
	"math"
	"math/rand"
	"testing"

	"sarmany/internal/cf"
	"sarmany/internal/mat"
)

var allKinds = []Kind{Nearest, Linear, Cubic, Sinc8}

// TestAt1UpperEdgeGuardSymmetric pins the out-of-support guard at both
// ends: the last valid sample index is len(v)-1, so positions beyond
// len(v)-1+Taps must return exact zero — symmetric with the lower bound
// at -Taps. The old guard admitted x up to len(v)+Taps, one bin past the
// real support.
func TestAt1UpperEdgeGuardSymmetric(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		v := make([]complex64, n)
		for i := range v {
			v[i] = complex(float32(i+1), -float32(i+1))
		}
		for _, k := range allKinds {
			taps := float64(k.Taps())
			hi := float64(n-1) + taps
			// Everything beyond the symmetric bound is exactly zero,
			// including the band (n-1+taps, n+taps] the old guard let
			// through to clamped arithmetic.
			for _, x := range []float64{
				hi + 1e-9, hi + 0.5, hi + 1, float64(n) + taps,
				float64(n) + taps + 0.49, 1e12, math.MaxFloat64,
				-taps - 1e-9, -taps - 1, -1e12, -math.MaxFloat64,
			} {
				if got := At1(v, x, k); got != 0 {
					t.Errorf("%v n=%d at %v = %v, want exact 0", k, n, x, got)
				}
			}
			// The guard must not clip the valid support: the last sample
			// itself and positions just inside the bound still evaluate.
			if got := At1(v, float64(n-1), k); cAbs(got-v[n-1]) > 1e-4 {
				t.Errorf("%v n=%d at last sample = %v, want %v", k, n, got, v[n-1])
			}
		}
	}
}

// TestAt1EdgeMatchesZeroPadded pins the clamped edge arithmetic exactly:
// interpolating v near (and past) its ends must equal interpolating the
// same samples embedded in an explicitly zero-padded sequence, for every
// kernel, across the whole edge band. This is the contract the fused
// kernels rely on — missing taps are zeros, never clamped garbage.
func TestAt1EdgeMatchesZeroPadded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const pad = 16
	for _, n := range []int{1, 2, 5, 9} {
		v := make([]complex64, n)
		padded := make([]complex64, n+2*pad)
		for i := range v {
			v[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
			padded[pad+i] = v[i]
		}
		for _, k := range allKinds {
			for x := -float64(k.Taps()) - 2; x <= float64(n+k.Taps())+2; x += 0.0625 {
				if k == Nearest && x-math.Floor(x) == 0.5 && x < 0 {
					// math.Round breaks ties away from zero, so Nearest
					// is not translation-invariant at negative half
					// integers; the tie-break itself is pinned by
					// TestNearestRounding.
					continue
				}
				got := At1(v, x, k)
				want := At1(padded, x+pad, k)
				if got != want {
					t.Fatalf("%v n=%d at %v: %v != zero-padded %v", k, n, x, got, want)
				}
			}
		}
	}
}

// TestAt2EdgeGuard pins At2's early guard on both axes against the
// explicit zero-tap evaluation: out-of-support positions are exact zero
// and near-edge positions match a zero-padded image.
func TestAt2EdgeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const pad = 16
	rows, cols := 4, 6
	img := mat.NewC(rows, cols)
	padded := mat.NewC(rows+2*pad, cols+2*pad)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			z := complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
			img.Set(r, c, z)
			padded.Set(r+pad, c+pad, z)
		}
	}
	for _, k := range allKinds {
		taps := float64(k.Taps())
		// Exact zero beyond the symmetric bound on each axis.
		zeros := [][2]float64{
			{-taps - 0.01, 2}, {float64(rows-1) + taps + 0.01, 2},
			{2, -taps - 0.01}, {2, float64(cols-1) + taps + 0.01},
			{1e9, 1e9}, {-1e9, 2}, {2, math.MaxFloat64},
		}
		for _, rc := range zeros {
			if got := At2(img, rc[0], rc[1], k); got != 0 {
				t.Errorf("%v At2(%v,%v) = %v, want exact 0", k, rc[0], rc[1], got)
			}
		}
		// The edge band matches the zero-padded evaluation exactly.
		for ri := -taps - 1; ri <= float64(rows)+taps+1; ri += 0.31 {
			for ci := -taps - 1; ci <= float64(cols)+taps+1; ci += 0.37 {
				got := At2(img, ri, ci, k)
				want := At2(padded, ri+pad, ci+pad, k)
				if got != want {
					t.Fatalf("%v At2(%v,%v): %v != zero-padded %v", k, ri, ci, got, want)
				}
			}
		}
	}
}

// TestAt1FusedMatchesUnfused pins the fused interpolate+rotate primitive
// against the two-step reference: interpolate with At1, rotate with the
// float32 complex product against cf.FastSincos. The fused form must be
// bit-identical to that composition, and exact zero (skipped rotation)
// whenever the interpolated sample is exact zero.
func TestAt1FusedMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	v := make([]complex64, 64)
	for i := range v {
		v[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	// Sprinkle exact zeros so the skip path is exercised in-range too.
	v[10], v[11], v[12], v[13] = 0, 0, 0, 0
	for _, k := range allKinds {
		for trial := 0; trial < 5000; trial++ {
			x := rng.Float64()*80 - 8
			phi := float32((rng.Float64()*2 - 1) * 1e5)
			got := At1Fused(v, x, k, phi)
			s := At1(v, x, k)
			if s == 0 {
				if got != 0 {
					t.Fatalf("%v fused at %v: %v, want exact 0 for zero sample", k, x, got)
				}
				continue
			}
			sn, cs := cf.FastSincos(phi)
			want := complex(real(s)*cs-imag(s)*sn, real(s)*sn+imag(s)*cs)
			if got != want {
				t.Fatalf("%v fused at %v phi=%v: %v != %v", k, x, phi, got, want)
			}
		}
		// Far out of support: literal zero, no rotation arithmetic.
		if got := At1Fused(v, 1e12, k, 0.7); got != 0 {
			t.Errorf("%v fused far out of range = %v", k, got)
		}
	}
}

// TestAt1FusedRotationAccuracy bounds the fused rotation against the
// float64 reference rotation (math.Sincos): within a few float32 ULPs of
// the sample magnitude, the accuracy contract the GBP equivalence suite
// builds on.
func TestAt1FusedRotationAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	v := []complex64{complex(1.5, -0.5), complex(-2, 3), complex(0.25, 1)}
	for trial := 0; trial < 20000; trial++ {
		x := rng.Float64() * 2
		phi := float32((rng.Float64()*2 - 1) * 1e5)
		got := At1Fused(v, x, Linear, phi)
		s := At1(v, x, Linear)
		sn64, cs64 := math.Sincos(float64(phi))
		wr := float64(real(s))*cs64 - float64(imag(s))*sn64
		wi := float64(real(s))*sn64 + float64(imag(s))*cs64
		mag := math.Hypot(float64(real(s)), float64(imag(s)))
		tol := 4 * mag * math.Pow(2, -23)
		if math.Abs(float64(real(got))-wr) > tol || math.Abs(float64(imag(got))-wi) > tol {
			t.Fatalf("fused rotation at x=%v phi=%v: got %v want (%v,%v)", x, phi, got, wr, wi)
		}
	}
}
