package interp

import (
	"math"
	"testing"
)

// FuzzAt1 ensures the interpolation kernels never panic or index out of
// range for any finite sampling position, and that out-of-support
// positions yield exactly zero.
func FuzzAt1(f *testing.F) {
	f.Add(0.0, 5)
	f.Add(-1e9, 3)
	f.Add(1e9, 1)
	f.Add(2.5, 8)
	f.Add(math.MaxFloat64, 4)
	f.Fuzz(func(t *testing.T, x float64, n int) {
		if math.IsNaN(x) {
			return
		}
		if n < 0 {
			n = -n
		}
		n = n%32 + 1
		v := make([]complex64, n)
		for i := range v {
			v[i] = complex(float32(i), -float32(i))
		}
		for _, k := range []Kind{Nearest, Linear, Cubic, Sinc8} {
			got := At1(v, x, k)
			if x < -float64(k.Taps()) || x > float64(n-1+k.Taps()) {
				if got != 0 {
					t.Fatalf("%v at %v (n=%d) = %v, want 0 outside support", k, x, n, got)
				}
			}
			re, im := float64(real(got)), float64(imag(got))
			if math.IsNaN(re) || math.IsNaN(im) {
				// NaN can only arise from genuinely huge extrapolation
				// coefficients; inside the sample range it is a bug.
				if x >= 0 && x <= float64(n-1) {
					t.Fatalf("%v at %v produced NaN inside range", k, x)
				}
			}
		}
	})
}
