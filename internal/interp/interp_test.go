package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sarmany/internal/mat"
)

func TestKindString(t *testing.T) {
	if Nearest.String() != "nearest" || Linear.String() != "linear" ||
		Cubic.String() != "cubic" || Sinc8.String() != "sinc8" {
		t.Error("Kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name")
	}
}

func TestTaps(t *testing.T) {
	if Nearest.Taps() != 1 || Linear.Taps() != 2 || Cubic.Taps() != 4 || Sinc8.Taps() != 8 {
		t.Error("tap counts wrong")
	}
}

func TestSinc8ExactOnSamplesAndBandlimited(t *testing.T) {
	// Exact at integer positions: the sinc kernel has zeros at all other
	// integer offsets.
	v := []complex64{1, complex(2, 1), complex(-1, 3), 4, complex(0, -2), 2, 1, complex(3, 3), 0, 1}
	for i := range v {
		got := At1(v, float64(i), Sinc8)
		if cAbs(got-v[i]) > 1e-5 {
			t.Errorf("sinc8 at sample %d: %v want %v", i, got, v[i])
		}
	}
	// Sinc8's advantage over cubic shows on fast band-limited content (a
	// sinusoid at 0.3 cycles/sample, near Nyquist) — the regime where the
	// polynomial kernel's passband rolls off.
	n := 64
	s := make([]complex64, n)
	f := 0.3
	for i := range s {
		s[i] = complex(float32(math.Cos(2*math.Pi*f*float64(i))), float32(math.Sin(2*math.Pi*f*float64(i))))
	}
	var worstSinc, worstCubic float64
	for x := 10.0; x <= 50; x += 0.173 {
		want := complex(float32(math.Cos(2*math.Pi*f*x)), float32(math.Sin(2*math.Pi*f*x)))
		if e := cAbs(At1(s, x, Sinc8) - want); e > worstSinc {
			worstSinc = e
		}
		if e := cAbs(At1(s, x, Cubic) - want); e > worstCubic {
			worstCubic = e
		}
	}
	if worstSinc > 0.05 {
		t.Errorf("sinc8 worst error %v on near-Nyquist input", worstSinc)
	}
	if worstSinc >= 0.5*worstCubic {
		t.Errorf("sinc8 (%v) not clearly better than cubic (%v) near Nyquist", worstSinc, worstCubic)
	}
}

func TestSinc8At2(t *testing.T) {
	img := mat.NewC(12, 12)
	for r := 0; r < 12; r++ {
		for c := 0; c < 12; c++ {
			img.Set(r, c, complex(float32(r), float32(c)))
		}
	}
	// Exact on samples.
	if got := At2(img, 5, 7, Sinc8); cAbs(got-complex(5, 7)) > 1e-4 {
		t.Errorf("sinc8 on-sample At2 = %v", got)
	}
	// Out of range -> 0.
	if got := At2(img, -30, 5, Sinc8); got != 0 {
		t.Errorf("sinc8 out of range = %v", got)
	}
}

func TestAt1ExactOnSamples(t *testing.T) {
	v := []complex64{1, complex(2, 1), complex(-1, 3), 4, complex(0, -2)}
	for _, k := range []Kind{Nearest, Linear, Cubic} {
		for i := range v {
			got := At1(v, float64(i), k)
			if cAbs(got-v[i]) > 1e-5 {
				t.Errorf("%v at sample %d: got %v want %v", k, i, got, v[i])
			}
		}
	}
}

func TestNearestRounding(t *testing.T) {
	v := []complex64{10, 20, 30}
	cases := []struct {
		x    float64
		want complex64
	}{
		{0.4, 10}, {0.6, 20}, {1.49, 20}, {1.51, 30},
		{-0.4, 10}, {-0.6, 0}, {2.4, 30}, {2.6, 0},
	}
	for _, c := range cases {
		if got := At1(v, c.x, Nearest); got != c.want {
			t.Errorf("Nearest(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLinearMidpoints(t *testing.T) {
	v := []complex64{0, complex(2, -4)}
	got := At1(v, 0.5, Linear)
	if cAbs(got-complex(1, -2)) > 1e-6 {
		t.Errorf("Linear midpoint = %v", got)
	}
}

func TestCubicReproducesCubicPolynomial(t *testing.T) {
	// A cubic kernel must reproduce any degree-<=3 polynomial exactly
	// (within float32 rounding) wherever all four taps are in range.
	poly := func(x float64) complex64 {
		re := 1 + 2*x - 0.5*x*x + 0.125*x*x*x
		im := -2 + x*x
		return complex(float32(re), float32(im))
	}
	v := make([]complex64, 8)
	for i := range v {
		v[i] = poly(float64(i))
	}
	for x := 1.0; x <= 6.0; x += 0.1 {
		got := At1(v, x, Cubic)
		want := poly(x)
		if cAbs(got-want) > 1e-3 {
			t.Errorf("Cubic at %v: got %v want %v", x, got, want)
		}
	}
}

func TestNeville4MatchesLagrange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		var s [4]complex64
		for i := range s {
			s[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
		}
		tt := float32(rng.Float64()*5 - 1)
		got := Neville4(s, tt)
		want := lagrange4(s, float64(tt))
		if cAbs(got-want) > 1e-3*(1+cAbs(want)) {
			t.Fatalf("Neville4(%v, %v) = %v, want %v", s, tt, got, want)
		}
	}
}

func lagrange4(s [4]complex64, x float64) complex64 {
	var accR, accI float64
	for j := 0; j < 4; j++ {
		w := 1.0
		for m := 0; m < 4; m++ {
			if m != j {
				w *= (x - float64(m)) / (float64(j) - float64(m))
			}
		}
		accR += w * float64(real(s[j]))
		accI += w * float64(imag(s[j]))
	}
	return complex(float32(accR), float32(accI))
}

func TestOutOfRangeIsZero(t *testing.T) {
	v := []complex64{1, 2, 3}
	for _, k := range []Kind{Nearest, Linear, Cubic} {
		if got := At1(v, -10, k); got != 0 {
			t.Errorf("%v far left = %v", k, got)
		}
		if got := At1(v, 50, k); got != 0 {
			t.Errorf("%v far right = %v", k, got)
		}
	}
	if got := At1(nil, 0, Nearest); got != 0 {
		t.Errorf("empty input = %v", got)
	}
}

func TestAt2SeparableAgainstManual(t *testing.T) {
	img := mat.NewC(5, 5)
	rng := rand.New(rand.NewSource(9))
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			img.Set(r, c, complex(float32(rng.NormFloat64()), float32(rng.NormFloat64())))
		}
	}
	// On-sample positions are exact for all kernels.
	for _, k := range []Kind{Nearest, Linear, Cubic} {
		got := At2(img, 2, 3, k)
		if cAbs(got-img.At(2, 3)) > 1e-5 {
			t.Errorf("%v on-sample: %v want %v", k, got, img.At(2, 3))
		}
	}
	// Bilinear midpoint equals the 4-sample average.
	got := At2(img, 1.5, 2.5, Linear)
	want := (img.At(1, 2) + img.At(1, 3) + img.At(2, 2) + img.At(2, 3)) / 4
	if cAbs(got-want) > 1e-5 {
		t.Errorf("bilinear midpoint %v want %v", got, want)
	}
}

func TestAt2BicubicReproducesBilinearField(t *testing.T) {
	// A bicubic kernel reproduces any field that is a polynomial of degree
	// <=3 in each variable; test with f(r,c) = r*c + 2r - c.
	img := mat.NewC(8, 8)
	f := func(r, c float64) complex64 {
		return complex(float32(r*c+2*r-c), float32(r-c*c))
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			img.Set(r, c, f(float64(r), float64(c)))
		}
	}
	for r := 1.0; r <= 6; r += 0.37 {
		for c := 1.0; c <= 6; c += 0.41 {
			got := At2(img, r, c, Cubic)
			want := f(r, c)
			if cAbs(got-want) > 1e-3 {
				t.Fatalf("bicubic at (%v,%v): %v want %v", r, c, got, want)
			}
		}
	}
}

func TestAt2OutOfRange(t *testing.T) {
	img := mat.NewC(3, 3)
	img.Fill(1)
	for _, k := range []Kind{Nearest, Linear, Cubic} {
		if got := At2(img, -20, 1, k); got != 0 {
			t.Errorf("%v out of range rows = %v", k, got)
		}
		if got := At2(img, 1, 99, k); got != 0 {
			t.Errorf("%v out of range cols = %v", k, got)
		}
	}
}

func TestSampleAlongPath(t *testing.T) {
	img := mat.NewC(4, 6)
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			img.Set(r, c, complex(float32(10*r+c), 0))
		}
	}
	// Horizontal path along row 2.
	p := Path{Row0: 2, Col0: 0, DRow: 0, DCol: 1, N: 6}
	out := SampleAlong(img, p, Nearest, nil)
	if len(out) != 6 {
		t.Fatalf("length %d", len(out))
	}
	for j, v := range out {
		if v != complex(float32(20+j), 0) {
			t.Errorf("sample %d = %v", j, v)
		}
	}
	// Tilted path with linear kernel: value field is linear, so exact.
	p = Path{Row0: 0.5, Col0: 0.5, DRow: 0.5, DCol: 1, N: 4}
	out = SampleAlong(img, p, Linear, out[:0])
	for j, v := range out {
		r := 0.5 + 0.5*float64(j)
		c := 0.5 + float64(j)
		want := float32(10*r + c)
		if cAbs(v-complex(want, 0)) > 1e-4 {
			t.Errorf("tilted sample %d = %v, want %v", j, v, want)
		}
	}
}

func TestLinearBetweenNeighborsProperty(t *testing.T) {
	// Linear interpolation of real data stays within the min/max of its two
	// neighbouring samples.
	f := func(a, b float32, frac float32) bool {
		if a != a || b != b {
			return true
		}
		// Keep magnitudes within range so b-a cannot overflow float32.
		a = float32(math.Mod(float64(a), 1e6))
		b = float32(math.Mod(float64(b), 1e6))
		frac = float32(math.Abs(float64(frac)))
		frac -= float32(math.Floor(float64(frac)))
		v := []complex64{complex(a, 0), complex(b, 0)}
		got := real(At1(v, float64(frac), Linear))
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return got >= lo-1e-3*(1+float32(math.Abs(float64(lo)))) &&
			got <= hi+1e-3*(1+float32(math.Abs(float64(hi))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func cAbs(z complex64) float64 {
	return math.Hypot(float64(real(z)), float64(imag(z)))
}

func BenchmarkAt1Cubic(b *testing.B) {
	v := make([]complex64, 1001)
	for i := range v {
		v[i] = complex(float32(i), float32(-i))
	}
	var acc complex64
	for i := 0; i < b.N; i++ {
		acc += At1(v, float64(i%990)+0.37, Cubic)
	}
	_ = acc
}
