// Package interp provides the interpolation kernels of the SAR processing
// chain: the simplified nearest-neighbour interpolation the paper's FFBP
// implementation uses for index generation, linear interpolation, and the
// cubic interpolation based on Neville's algorithm used by the autofocus
// criterion calculation.
//
// All kernels treat out-of-range sample positions as zero contributions,
// matching the paper's optimization of "skipping the additions with zero
// when the indices are out of range".
package interp

import (
	"fmt"
	"math"

	"sarmany/internal/cf"
	"sarmany/internal/mat"
)

// CubicTaps is the number of samples the cubic (Neville) kernel consumes
// per interpolated output.
const CubicTaps = 4

// Kind selects an interpolation kernel.
type Kind int

const (
	// Nearest rounds the fractional index to the nearest integer sample.
	Nearest Kind = iota
	// Linear blends the two surrounding samples.
	Linear
	// Cubic fits a third-degree polynomial through the four surrounding
	// samples using Neville's algorithm.
	Cubic
	// Sinc8 applies an eight-tap Hann-windowed sinc kernel — the
	// high-fidelity interpolator for band-limited (range-compressed) data,
	// at twice the taps of Cubic.
	Sinc8
)

// String returns the kernel name.
func (k Kind) String() string {
	switch k {
	case Nearest:
		return "nearest"
	case Linear:
		return "linear"
	case Cubic:
		return "cubic"
	case Sinc8:
		return "sinc8"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Taps returns the number of input samples the kernel reads per output.
func (k Kind) Taps() int {
	switch k {
	case Nearest:
		return 1
	case Linear:
		return 2
	case Cubic:
		return 4
	case Sinc8:
		return 8
	default:
		panic("interp: unknown kind")
	}
}

// At1 interpolates the sample sequence v at fractional index x using kernel
// k. Positions outside [0, len(v)-1] use zero for the missing samples;
// positions more than one tap support outside the sequence return 0.
func At1(v []complex64, x float64, k Kind) complex64 {
	// Far outside the support every tap is zero; return early so absurd
	// positions (including ones whose float->int conversion would
	// overflow) yield an exact 0 instead of NaN arithmetic. The last valid
	// sample index is len(v)-1, so the upper bound is len(v)-1+Taps — the
	// symmetric mirror of the lower bound, not len(v)+Taps (which silently
	// admitted positions a full bin past the end of the support).
	if x < -float64(k.Taps()) || x > float64(len(v)-1+k.Taps()) {
		return 0
	}
	switch k {
	case Nearest:
		i := int(math.Round(x))
		if i < 0 || i >= len(v) {
			return 0
		}
		return v[i]
	case Linear:
		i := int(math.Floor(x))
		t := float32(x - float64(i))
		a := sample(v, i)
		b := sample(v, i+1)
		return complex(
			real(a)+t*(real(b)-real(a)),
			imag(a)+t*(imag(b)-imag(a)),
		)
	case Cubic:
		i := int(math.Floor(x))
		var s [4]complex64
		for j := 0; j < 4; j++ {
			s[j] = sample(v, i-1+j)
		}
		return Neville4(s, float32(x-float64(i-1)))
	case Sinc8:
		i := int(math.Floor(x))
		var accR, accI float64
		for j := 0; j < 8; j++ {
			idx := i - 3 + j
			s := sample(v, idx)
			if s == 0 {
				continue
			}
			w := sincHann(x-float64(idx), 4)
			accR += w * float64(real(s))
			accI += w * float64(imag(s))
		}
		return complex(float32(accR), float32(accI))
	default:
		panic("interp: unknown kind")
	}
}

// sincHann is the Hann-windowed sinc kernel value at offset d (samples)
// with half-width hw.
func sincHann(d float64, hw float64) float64 {
	if d <= -hw || d >= hw {
		return 0
	}
	s := 1.0
	if d != 0 {
		s = math.Sin(math.Pi*d) / (math.Pi * d)
	}
	return s * 0.5 * (1 + math.Cos(math.Pi*d/hw))
}

func sample(v []complex64, i int) complex64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// Neville4 evaluates at position t (in units of the sample spacing, with
// sample j at position j) the cubic polynomial through the four samples s.
// This is Neville's iterated interpolation (paper ref. [16]) specialized to
// four equidistant points, the kernel the autofocus range and beam
// interpolators run on the Epiphany cores.
func Neville4(s [4]complex64, t float32) complex64 {
	// First Neville sweep: degree-1 interpolants on (0,1), (1,2), (2,3).
	p01 := nev(s[0], s[1], t-0, 1)
	p12 := nev(s[1], s[2], t-1, 1)
	p23 := nev(s[2], s[3], t-2, 1)
	// Second sweep: degree-2 on (0,2), (1,3).
	p02 := nev(p01, p12, t-0, 2)
	p13 := nev(p12, p23, t-1, 2)
	// Final sweep: degree-3 on (0,3).
	return nev(p02, p13, t-0, 3)
}

// nev combines two lower-degree Neville interpolants pa (anchored at the
// left point) and pb (anchored one step right) for local coordinate u =
// t - xLeft over a span of width w.
func nev(pa, pb complex64, u, w float32) complex64 {
	// P(t) = ((x_right - t) * pa + (t - x_left) * pb) / (x_right - x_left)
	//      = pa + u/w * (pb - pa)
	c := u / w
	return complex(
		real(pa)+c*(real(pb)-real(pa)),
		imag(pa)+c*(imag(pb)-imag(pa)),
	)
}

// At2 interpolates the polar/matrix image img at fractional row index ri
// and column index ci using the separable tensor product of kernel k:
// first along each contributing row (columns), then across rows. Out-of-
// range taps contribute zero.
func At2(img *mat.C, ri, ci float64, k Kind) complex64 {
	// Same early out-of-support guard as At1, on both axes: beyond
	// ±Taps of the valid index range [0, n-1] every tap is zero.
	t := float64(k.Taps())
	if ri < -t || ri > float64(img.Rows-1)+t || ci < -t || ci > float64(img.Cols-1)+t {
		return 0
	}
	switch k {
	case Nearest:
		r := int(math.Round(ri))
		c := int(math.Round(ci))
		if r < 0 || r >= img.Rows || c < 0 || c >= img.Cols {
			return 0
		}
		return img.At(r, c)
	case Linear, Cubic, Sinc8:
		taps := k.Taps()
		r0 := int(math.Floor(ri)) - (taps/2 - 1)
		var col [8]complex64 // max taps
		for j := 0; j < taps; j++ {
			r := r0 + j
			if r < 0 || r >= img.Rows {
				col[j] = 0
				continue
			}
			col[j] = At1(img.Row(r), ci, k)
		}
		return At1(col[:taps], ri-float64(r0), k)
	default:
		panic("interp: unknown kind")
	}
}

// At1Fused interpolates v at fractional index x with kernel k and returns
// the sample already rotated by exp(i*phi) — the fused interpolate+rotate
// primitive of the back-projection hot path. Fusing the two steps removes
// the intermediate complex64 round trip through the caller and replaces
// the per-sample math.Sincos with cf.FastSincos (float32-targeted, within
// 1 ULP of the reference per component). Out-of-support positions and
// exact-zero samples return literal 0 without evaluating the rotation,
// which is bit-identical to accumulating the product: the rotation of an
// exact zero is +0 on both components, and adding ±0 to a float32
// accumulator never changes it (the accumulator can never become -0 by
// summation), so `acc += At1Fused(...)` with the skip equals the unskipped
// form sample-for-sample.
func At1Fused(v []complex64, x float64, k Kind, phi float32) complex64 {
	s := At1(v, x, k)
	if s == 0 {
		return 0
	}
	sn, cs := cf.FastSincos(phi)
	return complex(
		real(s)*cs-imag(s)*sn,
		real(s)*sn+imag(s)*cs,
	)
}

// Path describes a straight sampling path through a matrix in fractional
// index coordinates: sample j lies at (Row0 + j*DRow, Col0 + j*DCol). The
// autofocus interpolation kernels are "swept along tilted paths in memory";
// this is that tilted path.
type Path struct {
	Row0, Col0 float64
	DRow, DCol float64
	N          int
}

// SampleAlong interpolates img at the N positions of path p with kernel k,
// appending into dst (allocating if dst is nil) and returning it.
func SampleAlong(img *mat.C, p Path, k Kind, dst []complex64) []complex64 {
	if dst == nil {
		dst = make([]complex64, 0, p.N)
	}
	for j := 0; j < p.N; j++ {
		ri := p.Row0 + float64(j)*p.DRow
		ci := p.Col0 + float64(j)*p.DCol
		dst = append(dst, At2(img, ri, ci, k))
	}
	return dst
}
