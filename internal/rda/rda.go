// Package rda implements the range-Doppler algorithm (RDA), the classic
// frequency-domain SAR image-formation method the paper's introduction
// contrasts with time-domain back-projection: "SAR signal processing can
// be performed in the frequency domain by using Fast Fourier Transform
// (FFT) technique, which is computationally efficient but requires that
// the flight trajectory is linear and has constant speed."
//
// RDA azimuth-transforms the pulse-compressed data, corrects the range
// cell migration in the (Doppler, range) domain, applies the azimuth
// matched filter derived by the principle of stationary phase, and
// transforms back:
//
//	for a target at closest range R0, the range history R(u) =
//	sqrt(R0^2 + u^2) maps, at Doppler frequency fu (cycles per metre of
//	track), to range R0*D(fu) and azimuth phase -(4*pi*R0/lambda)*
//	sqrt(1-beta^2), with beta = lambda*fu/2 and D = 1/sqrt(1-beta^2).
//
// Both assumptions the paper names are structural here: the reference
// phase assumes the exact hyperbola of a straight constant-speed track,
// and the Doppler mapping assumes every target shares it. The rda-vs-ffbp
// experiment shows RDA matching back-projection on a linear track and
// falling apart under a flight-path error that FFBP-with-autofocus
// absorbs — the paper's motivation for the time-domain chain.
package rda

import (
	"fmt"
	"math"

	"sarmany/internal/cf"
	"sarmany/internal/fft"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// Config controls image formation.
type Config struct {
	// RCMC selects the interpolation kernel of the range-cell-migration
	// correction; Linear is standard, Nearest is the cheap variant.
	RCMC interp.Kind
}

// Image forms the image in the frequency domain. The output has the same
// layout as the input data: row i is azimuth position TrackPos(i), column
// j is slant range R0 + j*DR — directly comparable to target positions.
// NumPulses must be a power of two (azimuth FFT length).
func Image(data *mat.C, p sar.Params, cfg Config) (*mat.C, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		return nil, fmt.Errorf("rda: data is %dx%d, params say %dx%d",
			data.Rows, data.Cols, p.NumPulses, p.NumBins)
	}
	n := p.NumPulses
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("rda: NumPulses %d is not a power of two", n)
	}
	plan := fft.MustPlan(n)

	// Azimuth FFT: transform each range column into the Doppler domain.
	dopp := mat.NewC(n, p.NumBins)
	col := make([]complex64, n)
	for j := 0; j < p.NumBins; j++ {
		for i := 0; i < n; i++ {
			col[i] = data.At(i, j)
		}
		plan.Forward(col)
		for i := 0; i < n; i++ {
			dopp.Set(i, j, col[i])
		}
	}

	// RCMC + azimuth matched filter, row by row in the Doppler domain.
	out := mat.NewC(n, p.NumBins)
	dfu := 1 / (float64(n) * p.PulseSpacing) // Doppler bin spacing, cycles/m
	for k := 0; k < n; k++ {
		// Wrapped Doppler frequency of bin k.
		fk := float64(k)
		if k > n/2 {
			fk -= float64(n)
		}
		fu := fk * dfu
		beta := p.Wavelength * fu / 2
		if b2 := beta * beta; b2 >= 1 {
			continue // beyond the evanescent limit: no energy
		}
		d := 1 / math.Sqrt(1-beta*beta)
		src := dopp.Row(k)
		dst := out.Row(k)
		for j := 0; j < p.NumBins; j++ {
			r0 := p.R0 + float64(j)*p.DR
			// The target at closest range r0 appears at migrated range
			// r0*D at this Doppler frequency: pull it back.
			idx := (r0*d - p.R0) / p.DR
			v := interp.At1(src, idx, cfg.RCMC)
			if v == 0 {
				dst[j] = 0
				continue
			}
			// Azimuth matched filter (POSP phase conjugate).
			phase := 4 * math.Pi * r0 / p.Wavelength * math.Sqrt(1-beta*beta)
			dst[j] = v * cf.Expi(float32(phase))
		}
	}

	// Azimuth IFFT back to the track domain, scaled by n (undoing the
	// inverse transform's 1/n) so a unit point target peaks at roughly
	// the number of coherently integrated pulses — the same convention as
	// the back-projection images, making gains directly comparable.
	for j := 0; j < p.NumBins; j++ {
		for i := 0; i < n; i++ {
			col[i] = out.At(i, j)
		}
		plan.Inverse(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, cf.Scale(float32(n), col[i]))
		}
	}
	return out, nil
}

// TargetPixel returns the output pixel of a target: azimuth row (the
// pulse index whose track position is nearest the target's azimuth) and
// range column (the bin nearest the target's closest range).
func TargetPixel(p sar.Params, t sar.Target) (row, col int) {
	row = int(math.Round((t.U+p.ApertureLength()/2)/p.PulseSpacing - 0.5))
	if row < 0 {
		row = 0
	}
	if row >= p.NumPulses {
		row = p.NumPulses - 1
	}
	col = int(math.Round((t.Y - p.R0) / p.DR))
	return row, col
}
