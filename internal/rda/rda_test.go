package rda

import (
	"math"
	"testing"

	"sarmany/internal/ffbp"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

func testParams() sar.Params {
	p := sar.DefaultParams()
	p.NumPulses = 256
	p.NumBins = 241
	p.R0 = 500
	return p
}

func TestImageValidation(t *testing.T) {
	p := testParams()
	data := sar.Simulate(p, nil, nil)
	p2 := p
	p2.NumPulses = 100
	if _, err := Image(data, p2, Config{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	bad := p
	bad.DR = -1
	if _, err := Image(data, bad, Config{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestImageFocusesLinearTrack(t *testing.T) {
	p := testParams()
	tg := sar.Target{U: 10, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	img, err := Image(data, p, Config{RCMC: interp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	m := quality.Mag(img)
	pr, pc, pv := quality.Peak(m)
	wr, wc := TargetPixel(p, tg)
	if abs(pr-wr) > 3 || abs(pc-wc) > 2 {
		t.Errorf("peak at (%d,%d), want (%d,%d)", pr, pc, wr, wc)
	}
	// Coherent azimuth compression gain.
	if float64(pv) < 0.4*float64(p.NumPulses) {
		t.Errorf("peak %v too low for %d pulses", pv, p.NumPulses)
	}
	// Well focused: peak far above background.
	db := quality.PeakToBackground(m, wr, wc, 6, [][2]int{{wr, wc}})
	if db < 20 {
		t.Errorf("peak-to-background %v dB", db)
	}
}

func TestImageMultipleTargets(t *testing.T) {
	p := testParams()
	targets := []sar.Target{
		{U: -40, Y: 530, Amp: 1},
		{U: 0, Y: 560, Amp: 0.8},
		{U: 50, Y: 590, Amp: 1},
	}
	data := sar.Simulate(p, targets, nil)
	img, err := Image(data, p, Config{RCMC: interp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	m := quality.Mag(img)
	for i, tg := range targets {
		wr, wc := TargetPixel(p, tg)
		pr, pc, pv := quality.PeakWithin(m, wr, wc, 5)
		if abs(pr-wr) > 3 || abs(pc-wc) > 2 {
			t.Errorf("target %d: peak (%d,%d), want (%d,%d)", i, pr, pc, wr, wc)
		}
		if float64(pv) < 0.3*float64(p.NumPulses)*float64(tg.Amp) {
			t.Errorf("target %d: peak %v too low", i, pv)
		}
	}
}

func TestRCMCMatters(t *testing.T) {
	// Without migration correction the long aperture smears the target
	// across range cells: disabling RCMC (by forcing D=1 via a huge
	// wavelength... instead compare gains) — here: compare the proper
	// image against one formed with nearest-RCMC on a geometry with heavy
	// migration; linear RCMC must not be worse.
	p := testParams()
	tg := sar.Target{U: 0, Y: 555, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	lin, err := Image(data, p, Config{RCMC: interp.Linear})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := Image(data, p, Config{RCMC: interp.Nearest})
	if err != nil {
		t.Fatal(err)
	}
	wr, wc := TargetPixel(p, tg)
	_, _, pl := quality.PeakWithin(quality.Mag(lin), wr, wc, 4)
	_, _, pn := quality.PeakWithin(quality.Mag(nn), wr, wc, 4)
	if float64(pl) < 0.95*float64(pn) {
		t.Errorf("linear RCMC gain %v below nearest %v", pl, pn)
	}
}

// TestPaperMotivation reproduces the paper's Sec. I argument in one test:
// on a linear track the frequency-domain RDA focuses fine; under a
// non-linear flight path its fixed straight-track reference loses a large
// part of the coherent gain, while the time-domain chain compensates —
// exactly (known path, MotionCompensate per pulse before processing) or
// blindly (FFBP with the autofocus criterion).
func TestPaperMotivation(t *testing.T) {
	p := testParams()
	box := geom.SceneBox{UMin: -40, UMax: 40, YMin: 510, YMax: 610, ThetaPad: 0.05}
	tg := sar.Target{U: 0, Y: 555, Amp: 1}
	wr, wc := TargetPixel(p, tg)
	rdaGain := func(data *mat.C) float64 {
		img, err := Image(data, p, Config{RCMC: interp.Linear})
		if err != nil {
			t.Fatal(err)
		}
		_, _, pk := quality.PeakWithin(quality.Mag(img), wr, wc, 8)
		return float64(pk)
	}
	fr := 0
	fc := 0
	ffbpGain := func(data *mat.C, focused bool) float64 {
		var img *mat.C
		var grid geom.PolarGrid
		var err error
		if focused {
			img, grid, _, err = ffbp.FocusedImage(data, p, box, ffbp.DefaultFocusConfig(p.NumPulses))
		} else {
			img, grid, err = ffbp.Image(data, p, box, ffbp.Config{Interp: interp.Cubic})
		}
		if err != nil {
			t.Fatal(err)
		}
		fr = int(math.Round(grid.ThetaIndex(math.Atan2(tg.Y, tg.U))))
		fc = int(math.Round(grid.RangeIndex(math.Hypot(tg.U, tg.Y))))
		_, _, pk := quality.PeakWithin(quality.Mag(img), fr, fc, 8)
		return float64(pk)
	}

	// Linear track: comparable coherent gain (same order).
	clean := sar.Simulate(p, []sar.Target{tg}, nil)
	rdaClean := rdaGain(clean)
	ffbpClean := ffbpGain(clean, false)
	if ratio := rdaClean / ffbpClean; ratio < 0.5 || ratio > 3.5 {
		t.Errorf("linear-track RDA/FFBP gain ratio %v, want same order", ratio)
	}

	// Non-linear track: a cross-track step mid-collection.
	drift := func(u float64) float64 {
		if u > 0 {
			return 0.75
		}
		return 0
	}
	dirty := sar.Simulate(p, []sar.Target{tg}, drift)

	rdaKept := rdaGain(dirty) / rdaClean
	focusedKept := ffbpGain(dirty, true) / ffbpClean
	mocompKept := rdaGain(sar.MotionCompensate(dirty, p, drift)) / rdaClean

	// The straight-track-only processor loses clearly more than the
	// compensated time-domain chain, and known-path compensation restores
	// RDA almost fully.
	if rdaKept > 0.85 {
		t.Errorf("RDA kept %v of its gain under the path error; expected a clear loss", rdaKept)
	}
	if focusedKept <= rdaKept+0.05 {
		t.Errorf("autofocused FFBP kept %v, not clearly above uncompensated RDA %v", focusedKept, rdaKept)
	}
	if mocompKept < 0.9 {
		t.Errorf("motion-compensated RDA kept only %v", mocompKept)
	}
}

func TestTargetPixel(t *testing.T) {
	p := testParams() // aperture 256 m, pulses at -127.5..127.5
	r, c := TargetPixel(p, sar.Target{U: 0.5, Y: p.R0 + 10})
	if r != 128 || c != 20 {
		t.Errorf("TargetPixel = (%d,%d)", r, c)
	}
	// Clamped at the edges.
	r, _ = TargetPixel(p, sar.Target{U: -1e6, Y: p.R0})
	if r != 0 {
		t.Errorf("row %d, want clamp to 0", r)
	}
	r, _ = TargetPixel(p, sar.Target{U: 1e6, Y: p.R0})
	if r != p.NumPulses-1 {
		t.Errorf("row %d, want clamp to last", r)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkRDA(b *testing.B) {
	p := testParams()
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Image(data, p, Config{RCMC: interp.Linear}); err != nil {
			b.Fatal(err)
		}
	}
}
