// Package gbp implements global back-projection (GBP), the exact
// time-domain SAR image-formation baseline that fast factorized
// back-projection approximates. For every output pixel it integrates the
// matched-filtered response along the pixel's exact range history over all
// pulses (paper Sec. II), so its cost is O(pixels x pulses) — the
// motivation for FFBP's O(pixels x log pulses) factorization.
//
// Two host implementations are kept side by side:
//
//   - Image is the fused fast path: the (beam x range-bin) pixel loops are
//     flattened into a single index space tiled across goroutines, the
//     per-beam cos/sin and per-pulse track positions are hoisted into
//     shared read-only buffers, and the inner per-pulse step runs the
//     fused interpolate+rotate primitive (interp.At1Fused) with a plain
//     sqrt range evaluation.
//   - ImageRef is the retained unfused reference: beam-sliced fan-out,
//     per-sample math.Hypot + interp.At1 + math.Sincos. The simulator-side
//     kernels (internal/kernels) pin bit-identity against ImageRef; Image
//     is pinned against ImageRef within a tight ULP bound by the
//     equivalence suite in fused_test.go.
package gbp

import (
	"math"
	"runtime"
	"sync"

	"sarmany/internal/cf"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// Config controls image formation.
type Config struct {
	// Interp selects the data interpolation kernel; Linear is the usual
	// high-quality choice for the GBP reference image.
	Interp interp.Kind
	// Workers is the number of goroutines to use; 0 means GOMAXPROCS.
	Workers int
}

// Image back-projects pulse-compressed data onto the polar grid, which must
// be expressed relative to the full-aperture centre (track position 0).
// Row k of the result is beam k of the grid, column i is range bin i.
//
// This is the fused fast path. Its numeric contract: every pixel matches
// ImageRef within a few float32 ULPs of the image peak (the fused rotation
// is within 1 ULP per sample; the sqrt range can flip a last-ULP range
// bin with vanishing probability), pinned by TestFusedMatchesRefImage.
// Zero interpolated samples contribute exactly nothing to the accumulator
// in both paths — see the skip-policy note on backproject.
func Image(data *mat.C, p sar.Params, grid geom.PolarGrid, cfg Config) *mat.C {
	workers := imageSetup(data, p, cfg)
	img := mat.NewC(grid.NTheta, grid.NR)
	k := 4 * math.Pi / p.Wavelength

	// Hoisted per-pulse and per-beam precomputation, shared read-only by
	// every tile: track positions, data rows, beam direction cosines.
	us := make([]float64, p.NumPulses)
	rows := make([][]complex64, p.NumPulses)
	for i := range us {
		us[i] = p.TrackPos(i)
		rows[i] = data.Row(i)
	}
	cts := make([]float64, grid.NTheta)
	sts := make([]float64, grid.NTheta)
	for bt := 0; bt < grid.NTheta; bt++ {
		theta := grid.Theta(bt)
		cts[bt] = math.Cos(theta)
		sts[bt] = math.Sin(theta)
	}

	// Flatten the (beam, range-bin) loops into one pixel index space so
	// the tiles stay balanced even when NTheta < workers (the beam-sliced
	// fan-out of ImageRef idles workers there).
	var wg sync.WaitGroup
	for _, s := range mat.Partition(grid.NTheta*grid.NR, workers) {
		if s.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(s mat.Slice) {
			defer wg.Done()
			backprojectFused(rows, img, grid, us, cts, sts, k, s, cfg.Interp)
		}(s)
	}
	wg.Wait()
	return img
}

// backprojectFused computes the flattened pixel range [s.Lo, s.Hi) of img.
// Pixel px maps to beam px/NR, range bin px%NR. The per-pulse inner loop
// is the fused hot path: one sqrt for the range history and one fused
// interpolate+rotate per sample, accumulating in pulse order — the same
// order as the reference, so the two paths differ only in rounding, never
// in accumulation order.
//
// The Nearest and Linear kernels — the paper's FFBP kernel and the usual
// GBP reference kernel — are specialized inline so the inner loop runs
// call-free except for the sincos; their interpolation arithmetic copies
// interp.At1's expressions verbatim (guard bound, index rounding, lerp
// form), which the equivalence suite pins against ImageRef. The remaining
// kernels go through the generic fused primitive.
func backprojectFused(rows [][]complex64, img *mat.C, grid geom.PolarGrid, us, cts, sts []float64, k float64, s mat.Slice, kind interp.Kind) {
	nr := grid.NR
	r0 := grid.R0
	// Reciprocal multiply for the bin index: differs from the reference's
	// division by at most 1 ULP of the index (~1e-14 bins here), the same
	// class of last-ULP drift as sqrt-vs-hypot, covered by the pinned
	// equivalence bound.
	invDR := 1 / grid.DR
	for px := s.Lo; px < s.Hi; px++ {
		bt := px / nr
		bi := px - bt*nr
		r := grid.Range(bi)
		x := r * cts[bt]
		y := r * sts[bt]
		y2 := y * y
		var accR, accI float32
		switch kind {
		case interp.Nearest:
			for pi, u := range us {
				dx := x - u
				rp := math.Sqrt(dx*dx + y2)
				row := rows[pi]
				i := int(math.Round((rp - r0) * invDR))
				if uint(i) >= uint(len(row)) {
					continue
				}
				v := row[i]
				if v == 0 {
					continue
				}
				sn, cs := cf.FastSincos(float32(k * rp))
				vr, vi := real(v), imag(v)
				accR += vr*cs - vi*sn
				accI += vr*sn + vi*cs
			}
		case interp.Linear:
			for pi, u := range us {
				dx := x - u
				rp := math.Sqrt(dx*dx + y2)
				row := rows[pi]
				n := len(row)
				xi := (rp - r0) * invDR
				if xi < -2 || xi > float64(n+1) {
					continue
				}
				i := int(math.Floor(xi))
				t := float32(xi - float64(i))
				var va, vb complex64
				if uint(i) < uint(n) {
					va = row[i]
				}
				if j := i + 1; uint(j) < uint(n) {
					vb = row[j]
				}
				vr := real(va) + t*(real(vb)-real(va))
				vi := imag(va) + t*(imag(vb)-imag(va))
				if vr == 0 && vi == 0 {
					continue
				}
				sn, cs := cf.FastSincos(float32(k * rp))
				accR += vr*cs - vi*sn
				accI += vr*sn + vi*cs
			}
		default:
			for pi, u := range us {
				dx := x - u
				rp := math.Sqrt(dx*dx + y2)
				v := interp.At1Fused(rows[pi], (rp-r0)*invDR, kind, float32(k*rp))
				accR += real(v)
				accI += imag(v)
			}
		}
		img.Row(bt)[bi] = complex(accR, accI)
	}
}

// ImageRef is the retained unfused reference implementation of Image:
// beam-sliced parallelism, per-sample math.Hypot range evaluation and
// separate interpolate / math.Sincos rotate steps. It defines the numeric
// ground truth the fused path and the simulator kernels are pinned
// against.
func ImageRef(data *mat.C, p sar.Params, grid geom.PolarGrid, cfg Config) *mat.C {
	workers := imageSetup(data, p, cfg)
	img := mat.NewC(grid.NTheta, grid.NR)
	k := 4 * math.Pi / p.Wavelength

	// Precompute pulse track positions.
	us := make([]float64, p.NumPulses)
	for i := range us {
		us[i] = p.TrackPos(i)
	}

	var wg sync.WaitGroup
	for _, s := range mat.Partition(grid.NTheta, workers) {
		if s.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(s mat.Slice) {
			defer wg.Done()
			backproject(data, img, grid, us, k, s, cfg.Interp)
		}(s)
	}
	wg.Wait()
	return img
}

// imageSetup validates the data shape against the params and resolves the
// worker count shared by both implementations.
func imageSetup(data *mat.C, p sar.Params, cfg Config) int {
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		panic("gbp: data dimensions do not match params")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// backproject is the reference inner loop (beam-major, unfused).
//
// Skip policy: an interpolated sample that is exactly zero is skipped
// instead of accumulated — the paper's "skipping the additions with zero
// when the indices are out of range". The skip is observationally
// equivalent to accumulating the product: rotating an exact zero yields
// ±0 on each component, and adding ±0 to a float32 accumulator that is
// not -0 changes nothing — the accumulator starts at +0 and summation
// can never produce -0 from there (+0 + -0 is +0 in round-to-nearest).
// TestZeroSkipPolicyBitIdentical pins this, so the fused path (whose
// At1Fused returns literal 0 for zero samples) agrees sample-for-sample.
func backproject(data, img *mat.C, grid geom.PolarGrid, us []float64, k float64, s mat.Slice, kind interp.Kind) {
	for bt := s.Lo; bt < s.Hi; bt++ {
		theta := grid.Theta(bt)
		ct, st := math.Cos(theta), math.Sin(theta)
		row := img.Row(bt)
		for bi := 0; bi < grid.NR; bi++ {
			r := grid.Range(bi)
			x := r * ct
			y := r * st
			var acc complex64
			for pi, u := range us {
				rp := math.Hypot(x-u, y)
				v := interp.At1(data.Row(pi), grid.RangeIndex(rp), kind)
				if v == 0 {
					continue
				}
				acc += v * cf.Expi(float32(k*rp))
			}
			row[bi] = acc
		}
	}
}
