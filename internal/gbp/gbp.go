// Package gbp implements global back-projection (GBP), the exact
// time-domain SAR image-formation baseline that fast factorized
// back-projection approximates. For every output pixel it integrates the
// matched-filtered response along the pixel's exact range history over all
// pulses (paper Sec. II), so its cost is O(pixels x pulses) — the
// motivation for FFBP's O(pixels x log pulses) factorization.
package gbp

import (
	"math"
	"runtime"
	"sync"

	"sarmany/internal/cf"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// Config controls image formation.
type Config struct {
	// Interp selects the data interpolation kernel; Linear is the usual
	// high-quality choice for the GBP reference image.
	Interp interp.Kind
	// Workers is the number of goroutines to use; 0 means GOMAXPROCS.
	Workers int
}

// Image back-projects pulse-compressed data onto the polar grid, which must
// be expressed relative to the full-aperture centre (track position 0).
// Row k of the result is beam k of the grid, column i is range bin i.
func Image(data *mat.C, p sar.Params, grid geom.PolarGrid, cfg Config) *mat.C {
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		panic("gbp: data dimensions do not match params")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	img := mat.NewC(grid.NTheta, grid.NR)
	k := 4 * math.Pi / p.Wavelength

	// Precompute pulse track positions.
	us := make([]float64, p.NumPulses)
	for i := range us {
		us[i] = p.TrackPos(i)
	}

	var wg sync.WaitGroup
	for _, s := range mat.Partition(grid.NTheta, workers) {
		if s.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(s mat.Slice) {
			defer wg.Done()
			backproject(data, img, grid, us, k, s, cfg.Interp)
		}(s)
	}
	wg.Wait()
	return img
}

func backproject(data, img *mat.C, grid geom.PolarGrid, us []float64, k float64, s mat.Slice, kind interp.Kind) {
	for bt := s.Lo; bt < s.Hi; bt++ {
		theta := grid.Theta(bt)
		ct, st := math.Cos(theta), math.Sin(theta)
		row := img.Row(bt)
		for bi := 0; bi < grid.NR; bi++ {
			r := grid.Range(bi)
			x := r * ct
			y := r * st
			var acc complex64
			for pi, u := range us {
				rp := math.Hypot(x-u, y)
				v := interp.At1(data.Row(pi), grid.RangeIndex(rp), kind)
				if v == 0 {
					continue
				}
				acc += v * cf.Expi(float32(k*rp))
			}
			row[bi] = acc
		}
	}
}
