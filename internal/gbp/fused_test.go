package gbp

import (
	"math"
	"testing"

	"sarmany/internal/cf"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

var equivKinds = []interp.Kind{interp.Nearest, interp.Linear, interp.Cubic, interp.Sinc8}

// maxUlpAtPeak is the pinned equivalence bound between the fused Image
// and ImageRef: the largest per-pixel |difference| allowed, measured in
// float32 ULPs at the image peak magnitude. The fused rotation is within
// 1 ULP per accumulated sample and the sqrt range history within 1 ULP of
// math.Hypot, so the pulse-summed drift stays well inside this.
const maxUlpAtPeak = 16

func ulp32At(x float32) float64 {
	return float64(x) * math.Pow(2, -23)
}

func assertEquivalent(t *testing.T, fused, ref *mat.C, kind interp.Kind) {
	t.Helper()
	_, _, peak := quality.Peak(quality.Mag(ref))
	diff := fused.MaxAbsDiff(ref)
	tol := maxUlpAtPeak * ulp32At(peak)
	if peak == 0 {
		t.Fatalf("%v: degenerate zero reference image", kind)
	}
	if float64(diff) > tol {
		t.Errorf("%v: fused image differs from reference by %v, tolerance %v (%d ULPs at peak %v)",
			kind, diff, tol, maxUlpAtPeak, peak)
	}
}

// TestFusedMatchesRefImage pins the fused fast path against the retained
// reference for every interpolation kernel on the standard test scene,
// and that the fused path is deterministic across reruns.
func TestFusedMatchesRefImage(t *testing.T) {
	p, _, grid := testSetup()
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	for _, kind := range equivKinds {
		cfg := Config{Interp: kind, Workers: 4}
		fused := Image(data, p, grid, cfg)
		ref := ImageRef(data, p, grid, cfg)
		assertEquivalent(t, fused, ref, kind)
		again := Image(data, p, grid, Config{Interp: kind, Workers: 3})
		if !fused.Equal(again) {
			t.Errorf("%v: fused image not deterministic across reruns/worker counts (max diff %v)",
				kind, fused.MaxAbsDiff(again))
		}
	}
}

// TestFusedOddShapes runs the equivalence check on the degenerate grid and
// data shapes where the flattened tiling differs most from the beam-sliced
// reference fan-out: fewer beams than workers, a single range bin, a
// single beam, and a single pulse.
func TestFusedOddShapes(t *testing.T) {
	base := sar.DefaultParams()
	base.NumPulses = 16
	base.NumBins = 41
	base.R0 = 500
	box := geom.SceneBox{UMin: -25, UMax: 25, YMin: 500.5, YMax: 519.5, ThetaPad: 0.05}

	cases := []struct {
		name    string
		pulses  int
		nth, nr int
		workers int
	}{
		{"beams_fewer_than_workers", 16, 3, 41, 8},
		{"single_range_bin", 16, 16, 1, 5},
		{"single_beam", 16, 1, 41, 6},
		{"single_pulse", 1, 8, 41, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			p.NumPulses = tc.pulses
			full := geom.Aperture{Center: 0, Length: p.ApertureLength()}
			grid := box.GridFor(full, tc.nth, tc.nr, p.R0, p.DR)
			// Target at range ~501 m: inside the simulated echo envelope
			// (half-width 6 m) of every pixel range of even the single-bin
			// grid at R0 = 500 m, so no case degenerates to a zero image.
			data := sar.Simulate(p, []sar.Target{{U: 2, Y: 501, Amp: 1}}, nil)
			for _, kind := range equivKinds {
				cfg := Config{Interp: kind, Workers: tc.workers}
				fused := Image(data, p, grid, cfg)
				ref := ImageRef(data, p, grid, cfg)
				assertEquivalent(t, fused, ref, kind)
			}
		})
	}
}

// TestZeroSkipPolicyBitIdentical pins the zero-sample skip policy of the
// reference inner loop: skipping samples that interpolate to exact zero
// is bit-identical to accumulating their rotated product, because the
// rotation of an exact zero is ±0 per component and adding ±0 to an
// accumulator that is never -0 changes nothing. This is what lets the
// fused path (literal 0 from At1Fused) agree with the reference
// sample-for-sample.
func TestZeroSkipPolicyBitIdentical(t *testing.T) {
	p, _, grid := testSetup()
	data := sar.Simulate(p, []sar.Target{{U: 4, Y: 540, Amp: 1}}, nil)
	for _, kind := range equivKinds {
		ref := ImageRef(data, p, grid, Config{Interp: kind, Workers: 2})
		noskip := refImageNoSkip(data, p, grid, kind)
		if !ref.Equal(noskip) {
			t.Errorf("%v: zero-skip not bit-identical to accumulate (max diff %v)",
				kind, ref.MaxAbsDiff(noskip))
		}
	}
}

// refImageNoSkip is backproject without the zero-sample short circuit,
// the test oracle for the skip policy.
func refImageNoSkip(data *mat.C, p sar.Params, grid geom.PolarGrid, kind interp.Kind) *mat.C {
	img := mat.NewC(grid.NTheta, grid.NR)
	k := 4 * math.Pi / p.Wavelength
	us := make([]float64, p.NumPulses)
	for i := range us {
		us[i] = p.TrackPos(i)
	}
	for bt := 0; bt < grid.NTheta; bt++ {
		theta := grid.Theta(bt)
		ct, st := math.Cos(theta), math.Sin(theta)
		row := img.Row(bt)
		for bi := 0; bi < grid.NR; bi++ {
			r := grid.Range(bi)
			x := r * ct
			y := r * st
			var acc complex64
			for pi, u := range us {
				rp := math.Hypot(x-u, y)
				v := interp.At1(data.Row(pi), grid.RangeIndex(rp), kind)
				acc += v * cf.Expi(float32(k*rp))
			}
			row[bi] = acc
		}
	}
	return img
}

func BenchmarkGBPRef128(b *testing.B) {
	p, _, grid := testSetup()
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ImageRef(data, p, grid, Config{Interp: interp.Nearest})
	}
}
