package gbp

import (
	"math"
	"testing"

	"sarmany/internal/ffbp"
	"sarmany/internal/geom"
	"sarmany/internal/interp"
	"sarmany/internal/mat"
	"sarmany/internal/quality"
	"sarmany/internal/sar"
)

func testSetup() (sar.Params, geom.SceneBox, geom.PolarGrid) {
	p := sar.DefaultParams()
	p.NumPulses = 128
	p.NumBins = 161
	p.R0 = 500
	box := geom.SceneBox{UMin: -25, UMax: 25, YMin: 510, YMax: 570, ThetaPad: 0.05}
	full := geom.Aperture{Center: 0, Length: p.ApertureLength()}
	grid := box.GridFor(full, p.NumPulses, p.NumBins, p.R0, p.DR)
	return p, box, grid
}

func TestImageDimensionMismatchPanics(t *testing.T) {
	p, _, grid := testSetup()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Image(mat.NewC(2, 2), p, grid, Config{})
}

func TestImageFocusesTarget(t *testing.T) {
	p, _, grid := testSetup()
	tg := sar.Target{U: 8, Y: 540, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)
	img := Image(data, p, grid, Config{Interp: interp.Linear})
	m := quality.Mag(img)
	pr, pc, pv := quality.Peak(m)
	wr := int(math.Round(grid.ThetaIndex(math.Atan2(tg.Y, tg.U))))
	wc := int(math.Round(grid.RangeIndex(math.Hypot(tg.U, tg.Y))))
	if abs(pr-wr) > 4 || abs(pc-wc) > 2 {
		t.Errorf("peak at (%d,%d), want (%d,%d)", pr, pc, wr, wc)
	}
	// GBP applies exact phase compensation, so coherence should be high.
	if float64(pv) < 0.7*float64(p.NumPulses) {
		t.Errorf("peak %v too low for %d pulses", pv, p.NumPulses)
	}
}

func TestSequentialAndParallelIdentical(t *testing.T) {
	p, _, grid := testSetup()
	data := sar.Simulate(p, []sar.Target{{U: -5, Y: 530, Amp: 1}}, nil)
	seq := Image(data, p, grid, Config{Interp: interp.Nearest, Workers: 1})
	par := Image(data, p, grid, Config{Interp: interp.Nearest, Workers: 7})
	if !seq.Equal(par) {
		t.Errorf("parallel image differs from sequential (max diff %v)", seq.MaxAbsDiff(par))
	}
}

func TestGBPOutperformsNearestFFBP(t *testing.T) {
	// Paper Fig. 7: "The FFBP processed images ... have a lower quality as
	// compared to the GBP processed image due to the noise introduced by
	// the simplified interpolation performed in the successive iterations."
	p, box, grid := testSetup()
	tg := sar.Target{U: 0, Y: 540, Amp: 1}
	data := sar.Simulate(p, []sar.Target{tg}, nil)

	gimg := Image(data, p, grid, Config{Interp: interp.Linear})
	fimg, _, err := ffbp.Image(data, p, box, ffbp.Config{Interp: interp.Nearest})
	if err != nil {
		t.Fatal(err)
	}
	gm := quality.Mag(gimg)
	fm := quality.Mag(fimg)
	gs := quality.Sharpness(gm)
	fs := quality.Sharpness(fm)
	if !(gs > fs) {
		t.Errorf("GBP sharpness %v not above nearest-FFBP %v", gs, fs)
	}
	_, _, gp := quality.Peak(gm)
	_, _, fp := quality.Peak(fm)
	if !(gp > fp) {
		t.Errorf("GBP coherent gain %v not above nearest-FFBP %v", gp, fp)
	}
}

func TestGBPAndCubicFFBPAgree(t *testing.T) {
	// With a high-quality interpolation kernel, FFBP approximates GBP
	// closely; the magnitude images should be strongly correlated.
	p, box, grid := testSetup()
	data := sar.Simulate(p, []sar.Target{{U: 10, Y: 545, Amp: 1}, {U: -12, Y: 525, Amp: 0.8}}, nil)
	gimg := Image(data, p, grid, Config{Interp: interp.Linear})
	fimg, fgrid, err := ffbp.Image(data, p, box, ffbp.Config{Interp: interp.Cubic})
	if err != nil {
		t.Fatal(err)
	}
	if fgrid != grid {
		t.Fatalf("FFBP final grid %+v differs from GBP grid %+v", fgrid, grid)
	}
	corr := quality.NormCorr(quality.Mag(gimg), quality.Mag(fimg))
	if corr < 0.8 {
		t.Errorf("GBP/FFBP-cubic correlation %v, want >= 0.8", corr)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkGBP128(b *testing.B) {
	p, _, grid := testSetup()
	data := sar.Simulate(p, sar.SixTargetScene(p), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Image(data, p, grid, Config{Interp: interp.Nearest})
	}
}
