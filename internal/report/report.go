// Package report drives the paper's experiments end to end and formats
// their results: Table I (resources, performance and estimated power of
// the FFBP and autofocus criterion implementations), the energy-efficiency
// ratios of Sec. VI-A, and the Fig. 7 image set. It is shared by
// cmd/benchtab and the top-level benchmark suite.
package report

import (
	"context"
	"fmt"
	"math"
	"strings"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
	"sarmany/internal/energy"
	"sarmany/internal/geom"
	"sarmany/internal/kernels"
	"sarmany/internal/obs"
	"sarmany/internal/refcpu"
	"sarmany/internal/sar"
)

// Config selects the workload scale and the machine parameters for a
// Table I run.
type Config struct {
	Params  sar.Params
	Box     geom.SceneBox
	Targets []sar.Target

	// Autofocus workload: Pairs block pairs, each evaluated under Shifts
	// candidate flight-path compensations.
	Pairs, Shifts int

	Epiphany emu.Params
	Intel    refcpu.Params
	// FFBPCores is the core count of the parallel FFBP run (16 in the
	// paper); the autofocus pipeline always uses 13 cores.
	FFBPCores int
}

// DefaultBox returns the scene box used for imaging with parameters p:
// the central part of the swath, wide enough for the six-target scene.
func DefaultBox(p sar.Params) geom.SceneBox {
	span := float64(p.NumBins-1) * p.DR
	return geom.SceneBox{
		UMin: -0.15 * p.ApertureLength(), UMax: 0.15 * p.ApertureLength(),
		YMin:     p.R0 + 0.2*span,
		YMax:     p.R0 + 0.8*span,
		ThetaPad: 0.05,
	}
}

// Default returns the paper-scale configuration: 1024 pulses x 1001 range
// bins (ten merge iterations to a 1024x1001-pixel image), the six-target
// validation scene, and an autofocus stream of 64 block pairs x 32
// candidate compensations.
func Default() Config {
	p := sar.DefaultParams()
	return Config{
		Params:    p,
		Box:       DefaultBox(p),
		Targets:   sar.SixTargetScene(p),
		Pairs:     64,
		Shifts:    32,
		Epiphany:  emu.E16G3(),
		Intel:     refcpu.I7M620(),
		FFBPCores: 16,
	}
}

// Small returns a reduced configuration for tests: the same structure at
// 1/16 the image size.
func Small() Config {
	c := Default()
	c.Params.NumPulses = 128
	c.Params.NumBins = 251
	c.Params.R0 = 1000
	c.Box = DefaultBox(c.Params)
	c.Targets = []sar.Target{
		{U: -15, Y: c.Params.CenterRange() - 20, Amp: 1},
		{U: 15, Y: c.Params.CenterRange() + 20, Amp: 1},
	}
	c.Pairs = 8
	c.Shifts = 8
	return c
}

// Row is one implementation line of Table I.
type Row struct {
	Impl    string  `json:"impl"`
	Cores   int     `json:"cores"`
	Seconds float64 `json:"seconds"`
	// PixPerSec is the throughput in processed pixels per second (the
	// paper reports it for the autofocus case study).
	PixPerSec float64 `json:"pix_per_s"`
	// Speedup is relative to the sequential Intel implementation.
	Speedup float64 `json:"speedup"`
	// PowerW is the estimated power from datasheet figures.
	PowerW float64 `json:"power_w"`
}

// Estimate converts the row to an energy estimate over its workload.
func (r Row) Estimate() energy.Estimate {
	return energy.Estimate{Seconds: r.Seconds, Watts: r.PowerW, WorkUnits: r.PixPerSec * r.Seconds}
}

// Table1 holds the reproduced paper Table I plus the derived energy
// ratios and metric snapshots of the parallel Epiphany runs.
type Table1 struct {
	FFBP      [3]Row `json:"ffbp"` // seq Intel, seq Epiphany, parallel Epiphany
	Autofocus [3]Row `json:"autofocus"`
	// FFBPEnergyRatio and AutofocusEnergyRatio are the Sec. VI-A
	// throughput-per-watt ratios of the parallel Epiphany implementations
	// over sequential Intel (paper: 38x and 78x).
	FFBPEnergyRatio      float64 `json:"ffbp_energy_ratio"`
	AutofocusEnergyRatio float64 `json:"autofocus_energy_ratio"`
	// FFBPMetrics and AutofocusMetrics snapshot the chip metrics registry
	// of the two parallel Epiphany runs (ops, traffic, stall causes,
	// phase classification, link occupancy).
	FFBPMetrics      obs.Snapshot `json:"ffbp_metrics,omitempty"`
	AutofocusMetrics obs.Snapshot `json:"autofocus_metrics,omitempty"`
}

// RunTable1 executes all six implementations of Table I on freshly
// constructed machine models and returns the measured table. The context
// is checked between the six machine runs: cancellation (or a deadline
// set by a sweep-engine timeout) stops the experiment at the next
// simulation boundary.
func RunTable1(ctx context.Context, cfg Config) (*Table1, error) {
	data := sar.Simulate(cfg.Params, cfg.Targets, nil)
	imgPixels := float64(cfg.Params.NumPulses * cfg.Params.NumBins)

	var t Table1

	// FFBP sequential on the Intel reference.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cpu := refcpu.New(cfg.Intel)
	if _, _, err := kernels.SeqFFBP(cpu, cpu.Mem(), data, cfg.Params, cfg.Box); err != nil {
		return nil, fmt.Errorf("ffbp seq intel: %w", err)
	}
	t.FFBP[0] = Row{Impl: "Sequential on Intel i7", Cores: 1,
		Seconds: cpu.Seconds(), PixPerSec: imgPixels / cpu.Seconds(),
		PowerW: cfg.Intel.SingleCorePowerWatts}

	// FFBP sequential on one Epiphany core.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chSeq := emu.New(cfg.Epiphany)
	if _, _, err := kernels.SeqFFBP(chSeq.Cores[0], chSeq.Ext(), data, cfg.Params, cfg.Box); err != nil {
		return nil, fmt.Errorf("ffbp seq epiphany: %w", err)
	}
	sec := chSeq.Cores[0].Cycles() / cfg.Epiphany.Clock
	t.FFBP[1] = Row{Impl: "Sequential on Epiphany", Cores: 1,
		Seconds: sec, PixPerSec: imgPixels / sec, PowerW: cfg.Epiphany.MaxPowerWatts}

	// FFBP parallel on the Epiphany chip.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chPar := emu.New(cfg.Epiphany)
	if _, _, err := kernels.ParFFBP(chPar, cfg.FFBPCores, data, cfg.Params, cfg.Box); err != nil {
		return nil, fmt.Errorf("ffbp par epiphany: %w", err)
	}
	t.FFBP[2] = Row{Impl: "Parallel on Epiphany", Cores: cfg.FFBPCores,
		Seconds: chPar.Time(), PixPerSec: imgPixels / chPar.Time(),
		PowerW: cfg.Epiphany.MaxPowerWatts}
	t.FFBPMetrics = chPar.Metrics().Snapshot()

	// Autofocus workload.
	pairs := AutofocusWorkload(cfg)
	shifts := autofocus.RangeSweep(-1.5, 1.5, cfg.Shifts)
	afPixels := float64(len(pairs) * len(shifts) * autofocus.PixelsProcessed())

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cpu2 := refcpu.New(cfg.Intel)
	if _, err := kernels.SeqAutofocus(cpu2, cpu2.Mem(), pairs, shifts); err != nil {
		return nil, fmt.Errorf("autofocus seq intel: %w", err)
	}
	t.Autofocus[0] = Row{Impl: "Sequential on Intel i7", Cores: 1,
		Seconds: cpu2.Seconds(), PixPerSec: afPixels / cpu2.Seconds(),
		PowerW: cfg.Intel.SingleCorePowerWatts}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chSeqA := emu.New(cfg.Epiphany)
	if _, err := kernels.SeqAutofocus(chSeqA.Cores[0], chSeqA.Ext(), pairs, shifts); err != nil {
		return nil, fmt.Errorf("autofocus seq epiphany: %w", err)
	}
	secA := chSeqA.Cores[0].Cycles() / cfg.Epiphany.Clock
	t.Autofocus[1] = Row{Impl: "Sequential on Epiphany", Cores: 1,
		Seconds: secA, PixPerSec: afPixels / secA, PowerW: cfg.Epiphany.MaxPowerWatts}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chParA := emu.New(cfg.Epiphany)
	if _, err := kernels.ParAutofocus(chParA, pairs, shifts); err != nil {
		return nil, fmt.Errorf("autofocus par epiphany: %w", err)
	}
	t.Autofocus[2] = Row{Impl: "Parallel on Epiphany", Cores: 13,
		Seconds: chParA.Time(), PixPerSec: afPixels / chParA.Time(),
		PowerW: cfg.Epiphany.MaxPowerWatts}
	t.AutofocusMetrics = chParA.Metrics().Snapshot()

	// Speedups relative to sequential Intel.
	for i := range t.FFBP {
		t.FFBP[i].Speedup = t.FFBP[0].Seconds / t.FFBP[i].Seconds
	}
	for i := range t.Autofocus {
		t.Autofocus[i].Speedup = t.Autofocus[i].PixPerSec / t.Autofocus[0].PixPerSec
	}

	t.FFBPEnergyRatio = energy.EfficiencyRatio(t.FFBP[2].Estimate(), t.FFBP[0].Estimate())
	t.AutofocusEnergyRatio = energy.EfficiencyRatio(t.Autofocus[2].Estimate(), t.Autofocus[0].Estimate())
	return &t, nil
}

// AutofocusWorkload synthesizes cfg.Pairs block pairs with smooth,
// slightly displaced content, the input stream of the autofocus criterion
// implementations.
func AutofocusWorkload(cfg Config) []kernels.BlockPair {
	out := make([]kernels.BlockPair, cfg.Pairs)
	for i := range out {
		shift := 0.7 * math.Sin(float64(i))
		var m, p autofocus.Block
		for r := 0; r < autofocus.BlockSize; r++ {
			for c := 0; c < autofocus.BlockSize; c++ {
				dr := float64(r) - 2.5
				dc := float64(c) - 2.5
				a := float32(math.Exp(-(dr*dr + dc*dc) / 2.5))
				m[r][c] = complex(a, a/3)
				dcs := dc - shift
				b := float32(math.Exp(-(dr*dr + dcs*dcs) / 2.5))
				p[r][c] = complex(b, -b/4)
			}
		}
		out[i] = kernels.BlockPair{Minus: m, Plus: p}
	}
	return out
}

// String formats the table in the layout of the paper's Table I.
func (t *Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %12s %14s %9s %7s\n", "FFBP Implementations", "Cores", "Time (ms)", "Pixels/s", "Speedup", "Power")
	for _, r := range t.FFBP {
		fmt.Fprintf(&b, "%-28s %6d %12.1f %14.0f %9.2f %6.1fW\n",
			r.Impl, r.Cores, r.Seconds*1e3, r.PixPerSec, r.Speedup, r.PowerW)
	}
	fmt.Fprintf(&b, "%-28s %6s %12s %14s %9s %7s\n", "Autofocus Implementations", "Cores", "Time (ms)", "Pixels/s", "Speedup", "Power")
	for _, r := range t.Autofocus {
		fmt.Fprintf(&b, "%-28s %6d %12.1f %14.0f %9.2f %6.1fW\n",
			r.Impl, r.Cores, r.Seconds*1e3, r.PixPerSec, r.Speedup, r.PowerW)
	}
	fmt.Fprintf(&b, "Energy efficiency (throughput/W) vs sequential Intel: FFBP %.1fx, Autofocus %.1fx\n",
		t.FFBPEnergyRatio, t.AutofocusEnergyRatio)
	return b.String()
}
