package report

import (
	"context"
	"strings"
	"testing"

	"sarmany/internal/sar"
)

func TestSmallConfigValid(t *testing.T) {
	c := Small()
	if err := c.Params.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Params.NumPulses&(c.Params.NumPulses-1) != 0 {
		t.Error("pulse count not a power of two")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := Default()
	if c.Params.NumPulses != 1024 || c.Params.NumBins != 1001 {
		t.Errorf("default data set %dx%d, paper uses 1024x1001", c.Params.NumPulses, c.Params.NumBins)
	}
	if c.FFBPCores != 16 {
		t.Errorf("FFBP cores %d, paper uses 16", c.FFBPCores)
	}
	if got := c.Intel.SingleCorePowerWatts; got != 17.5 {
		t.Errorf("Intel single-core power %v, paper estimates 17.5", got)
	}
	if got := c.Epiphany.MaxPowerWatts; got != 2 {
		t.Errorf("Epiphany power %v, paper estimates 2", got)
	}
}

func TestDefaultBoxContainsSixTargets(t *testing.T) {
	p := sar.DefaultParams()
	box := DefaultBox(p)
	for i, tg := range sar.SixTargetScene(p) {
		if tg.U < box.UMin || tg.U > box.UMax || tg.Y < box.YMin || tg.Y > box.YMax {
			t.Errorf("target %d (%v, %v) outside box %+v", i, tg.U, tg.Y, box)
		}
	}
}

func TestTable1SmallShape(t *testing.T) {
	tab, err := RunTable1(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	// FFBP: sequential Epiphany slower than Intel; parallel faster.
	if s := tab.FFBP[1].Speedup; s >= 1 {
		t.Errorf("sequential Epiphany FFBP speedup %v, want < 1", s)
	}
	if s := tab.FFBP[2].Speedup; s < 1.5 {
		t.Errorf("parallel FFBP speedup %v, want > 1.5", s)
	}
	// Autofocus: sequential implementations comparable; pipeline much
	// faster than one Epiphany core.
	if s := tab.Autofocus[1].Speedup; s < 0.3 || s > 1.6 {
		t.Errorf("sequential Epiphany autofocus speedup %v outside [0.3, 1.6]", s)
	}
	pipe := tab.Autofocus[2].PixPerSec / tab.Autofocus[1].PixPerSec
	if pipe < 5 || pipe > 13 {
		t.Errorf("pipeline speedup over one core %v outside [5, 13]", pipe)
	}
	// Energy efficiency strongly favours the Epiphany.
	if tab.FFBPEnergyRatio < 5 || tab.AutofocusEnergyRatio < 5 {
		t.Errorf("energy ratios %v / %v too low", tab.FFBPEnergyRatio, tab.AutofocusEnergyRatio)
	}
}

func TestTable1Deterministic(t *testing.T) {
	a, err := RunTable1(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable1(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FFBP {
		if a.FFBP[i].Seconds != b.FFBP[i].Seconds {
			t.Errorf("FFBP row %d differs across runs", i)
		}
		if a.Autofocus[i].Seconds != b.Autofocus[i].Seconds {
			t.Errorf("autofocus row %d differs across runs", i)
		}
	}
}

// TestTable1PaperShape runs the full paper-scale configuration and checks
// the reproduction bands from DESIGN.md: who wins, by roughly what factor.
func TestTable1PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	tab, err := RunTable1(context.Background(), Default())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)

	// FFBP sequential Epiphany: paper 0.36x, band [0.2, 0.7].
	if s := tab.FFBP[1].Speedup; s < 0.2 || s > 0.7 {
		t.Errorf("FFBP seq-Epiphany speedup %v outside [0.2, 0.7] (paper: 0.36)", s)
	}
	// FFBP parallel: paper 4.25x, band [2.5, 7].
	if s := tab.FFBP[2].Speedup; s < 2.5 || s > 7 {
		t.Errorf("FFBP parallel speedup %v outside [2.5, 7] (paper: 4.25)", s)
	}
	// FFBP parallel vs sequential Epiphany: paper 11.7x, band [8, 20].
	self := tab.FFBP[1].Seconds / tab.FFBP[2].Seconds
	if self < 8 || self > 20 {
		t.Errorf("FFBP self-speedup %v outside [8, 20] (paper: 11.7)", self)
	}
	// Autofocus sequential Epiphany: paper 0.8x, band [0.4, 1.6].
	if s := tab.Autofocus[1].Speedup; s < 0.4 || s > 1.6 {
		t.Errorf("autofocus seq-Epiphany speedup %v outside [0.4, 1.6] (paper: 0.8)", s)
	}
	// Autofocus parallel: paper 8.93x, band [5, 14].
	if s := tab.Autofocus[2].Speedup; s < 5 || s > 14 {
		t.Errorf("autofocus parallel speedup %v outside [5, 14] (paper: 8.93)", s)
	}
	// Pipeline speedup over one Epiphany core: paper 10.9x, band [7, 13].
	pipe := tab.Autofocus[2].PixPerSec / tab.Autofocus[1].PixPerSec
	if pipe < 7 || pipe > 13 {
		t.Errorf("autofocus self-speedup %v outside [7, 13] (paper: 10.9)", pipe)
	}
	// Energy-efficiency ratios: paper 38x and 78x, bands [25, 60]/[45, 110].
	if r := tab.FFBPEnergyRatio; r < 25 || r > 60 {
		t.Errorf("FFBP energy ratio %v outside [25, 60] (paper: 38)", r)
	}
	if r := tab.AutofocusEnergyRatio; r < 45 || r > 110 {
		t.Errorf("autofocus energy ratio %v outside [45, 110] (paper: 78)", r)
	}
}

func TestTable1String(t *testing.T) {
	tab, err := RunTable1(context.Background(), Small())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"FFBP Implementations", "Autofocus Implementations",
		"Sequential on Intel i7", "Parallel on Epiphany", "Energy efficiency"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestAutofocusWorkloadSize(t *testing.T) {
	cfg := Small()
	pairs := AutofocusWorkload(cfg)
	if len(pairs) != cfg.Pairs {
		t.Errorf("workload has %d pairs, want %d", len(pairs), cfg.Pairs)
	}
	// Blocks must be non-trivial (non-zero content).
	var sum float64
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			sum += float64(real(pairs[0].Minus[r][c]))
		}
	}
	if sum == 0 {
		t.Error("workload blocks are empty")
	}
}
