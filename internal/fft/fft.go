// Package fft implements an iterative radix-2 fast Fourier transform over
// complex64 data, plus the fast-convolution helpers the SAR front end uses
// for pulse compression (matched filtering of the received chirp).
//
// The transforms are deliberately plain: single precision, power-of-two
// lengths, no SIMD — they model the arithmetic a signal-processing chain
// would run ahead of the back-projection stage that the paper evaluates.
package fft

import (
	"fmt"
	"math"
	"math/bits"

	"sarmany/internal/cf"
)

// Plan holds the twiddle factors and bit-reversal permutation for a fixed
// power-of-two transform length, so repeated transforms of the same size
// avoid recomputing trigonometry.
type Plan struct {
	n       int
	logn    uint
	rev     []int
	twiddle []complex64 // forward twiddles, n/2 entries
}

// NewPlan creates a plan for transforms of length n. n must be a power of
// two and at least 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a positive power of two", n)
	}
	p := &Plan{
		n:       n,
		logn:    uint(bits.TrailingZeros(uint(n))),
		rev:     make([]int, n),
		twiddle: make([]complex64, n/2),
	}
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - int(p.logn)))
	}
	for i := range p.twiddle {
		phi := -2 * math.Pi * float64(i) / float64(n)
		s, c := math.Sincos(phi)
		p.twiddle[i] = complex(float32(c), float32(s))
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error; for lengths known at compile
// time.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the transform length of the plan.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT of x. len(x) must equal the
// plan length.
func (p *Plan) Forward(x []complex64) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization. len(x) must equal the plan length.
func (p *Plan) Inverse(x []complex64) {
	p.transform(x, true)
	scale := float32(1) / float32(p.n)
	for i := range x {
		x[i] = cf.Scale(scale, x[i])
	}
}

func (p *Plan) transform(x []complex64, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: data length %d does not match plan length %d", len(x), p.n))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Cooley–Tukey butterflies.
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[ti]
				if inverse {
					w = cf.Conj(w)
				}
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
				ti += step
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n - 1)))
}

// Convolve returns the full linear convolution of a and b (length
// len(a)+len(b)-1) computed by FFT. Either input being empty yields nil.
func Convolve(a, b []complex64) []complex64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	p := MustPlan(n)
	fa := make([]complex64, n)
	fb := make([]complex64, n)
	copy(fa, a)
	copy(fb, b)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	return fa[:outLen]
}

// Correlate returns the cross-correlation of x with the reference ref:
// out[k] = sum_j x[j+k] * conj(ref[j]) for k in [0, len(x)-len(ref)].
// This is the matched-filter operation of pulse compression. It returns
// nil if ref is longer than x or either is empty.
func Correlate(x, ref []complex64) []complex64 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	rc := make([]complex64, len(ref))
	for i, v := range ref {
		rc[len(ref)-1-i] = cf.Conj(v)
	}
	full := Convolve(x, rc)
	// Valid part: lags 0 .. len(x)-len(ref).
	return full[len(ref)-1 : len(x)]
}
