package fft

import (
	"math"
	"testing"
	"testing/quick"

	"sarmany/internal/cf"
)

// TestRealInputConjugateSymmetry: the spectrum of a real signal satisfies
// X[k] == conj(X[n-k]).
func TestRealInputConjugateSymmetry(t *testing.T) {
	f := func(vals [16]float32) bool {
		x := make([]complex64, 16)
		for i, v := range vals {
			if v != v || v > 1e6 || v < -1e6 {
				v = float32(math.Mod(float64(v), 1e3))
				if v != v {
					v = 0
				}
			}
			x[i] = complex(v, 0)
		}
		MustPlan(16).Forward(x)
		for k := 1; k < 8; k++ {
			d := x[k] - cf.Conj(x[16-k])
			if cf.Abs2(d) > 1e-4*(1+cf.Abs2(x[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTimeShiftPhaseRamp: circularly shifting the input multiplies the
// spectrum by a linear phase, leaving magnitudes unchanged.
func TestTimeShiftPhaseRamp(t *testing.T) {
	f := func(vals [16]float32, shiftRaw uint8) bool {
		shift := int(shiftRaw) % 16
		x := make([]complex64, 16)
		y := make([]complex64, 16)
		for i := range x {
			v := float32(math.Mod(float64(vals[i]), 1e3))
			if v != v {
				v = 0
			}
			x[i] = complex(v, v/2)
			y[(i+shift)%16] = x[i]
		}
		p := MustPlan(16)
		p.Forward(x)
		p.Forward(y)
		for k := range x {
			ma, mb := cf.Abs2(x[k]), cf.Abs2(y[k])
			if math.Abs(float64(ma-mb)) > 1e-3*(1+float64(ma)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
