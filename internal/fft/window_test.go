package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestWindowNames(t *testing.T) {
	if Rect.String() != "rect" || Hann.String() != "hann" ||
		Hamming.String() != "hamming" || Taylor.String() != "taylor" {
		t.Error("window names")
	}
	if WindowKind(9).String() != "WindowKind(9)" {
		t.Error("unknown name")
	}
}

func TestWindowBasics(t *testing.T) {
	for _, k := range []WindowKind{Rect, Hann, Hamming, Taylor} {
		for _, n := range []int{1, 2, 33, 128} {
			w := Window(k, n)
			if len(w) != n {
				t.Fatalf("%v n=%d: length %d", k, n, len(w))
			}
			for i, v := range w {
				if v < -1e-12 || v > 1+1e-9 {
					t.Fatalf("%v n=%d: w[%d]=%v outside [0,1]", k, n, i, v)
				}
			}
			// Symmetric.
			for i := 0; i < n/2; i++ {
				if math.Abs(w[i]-w[n-1-i]) > 1e-9 {
					t.Fatalf("%v n=%d: asymmetric at %d (%v vs %v)", k, n, i, w[i], w[n-1-i])
				}
			}
		}
	}
	if Window(Rect, 0) != nil {
		t.Error("n=0 should be nil")
	}
}

func TestWindowPeaks(t *testing.T) {
	// All windows peak at ~1 in the middle.
	for _, k := range []WindowKind{Rect, Hann, Hamming, Taylor} {
		w := Window(k, 65)
		if math.Abs(w[32]-1) > 0.09 {
			t.Errorf("%v: centre %v", k, w[32])
		}
	}
	// Hann ends at 0, Hamming at 0.08.
	if h := Window(Hann, 65); h[0] > 1e-9 {
		t.Errorf("Hann edge %v", h[0])
	}
	if h := Window(Hamming, 65); math.Abs(h[0]-0.08) > 1e-9 {
		t.Errorf("Hamming edge %v", h[0])
	}
}

// spectrumSidelobe measures the highest spectral sidelobe (dB) of a
// window by zero-padded FFT.
func spectrumSidelobe(w []float64) float64 {
	n := len(w)
	pad := NextPow2(n * 16)
	x := make([]complex64, pad)
	for i, v := range w {
		x[i] = complex(float32(v), 0)
	}
	MustPlan(pad).Forward(x)
	mags := make([]float64, pad)
	for i, v := range x {
		mags[i] = cmplx.Abs(complex128(v))
	}
	peak := mags[0]
	// Find the first null, then the max beyond it (positive freqs only).
	i := 1
	for i < pad/2 && mags[i] <= mags[i-1] {
		i++
	}
	side := 0.0
	for ; i < pad/2; i++ {
		if mags[i] > side {
			side = mags[i]
		}
	}
	return 20 * math.Log10(side/peak)
}

func TestWindowSidelobeLevels(t *testing.T) {
	cases := []struct {
		k        WindowKind
		min, max float64 // expected sidelobe range in dB
	}{
		{Rect, -14, -12.5},   // sinc: -13.26 dB
		{Hann, -33, -30},     // -31.5 dB
		{Hamming, -45, -39},  // -42.7 dB
		{Taylor, -37.5, -33}, // -35 dB design
	}
	for _, c := range cases {
		got := spectrumSidelobe(Window(c.k, 128))
		if got < c.min || got > c.max {
			t.Errorf("%v: sidelobe %v dB outside [%v, %v]", c.k, got, c.min, c.max)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	x := []complex64{1, complex(2, 2), complex(0, -4)}
	ApplyWindow(x, []float64{0.5, 1, 0.25})
	if x[0] != 0.5 || x[1] != complex(2, 2) || x[2] != complex(0, -1) {
		t.Errorf("ApplyWindow = %v", x)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	ApplyWindow(x, []float64{1})
}

func TestCoherentGain(t *testing.T) {
	if g := CoherentGain(Window(Rect, 64)); math.Abs(g-1) > 1e-12 {
		t.Errorf("rect gain %v", g)
	}
	if g := CoherentGain(Window(Hann, 4096)); math.Abs(g-0.5) > 0.01 {
		t.Errorf("hann gain %v, want ~0.5", g)
	}
	if CoherentGain(nil) != 0 {
		t.Error("empty gain")
	}
}
