package fft

import (
	"fmt"
	"math"

	"sarmany/internal/cf"
)

// Window functions for sidelobe control. Matched filtering an unweighted
// chirp leaves -13 dB range sidelobes; amplitude-weighting the reference
// replica trades mainlobe width for lower sidelobes — a standard knob in
// the SAR processing chain ahead of back-projection.

// WindowKind selects an amplitude taper.
type WindowKind int

// Supported tapers.
const (
	// Rect is the identity window (no taper).
	Rect WindowKind = iota
	// Hann is the raised-cosine window (first sidelobe -31 dB).
	Hann
	// Hamming is the optimized raised-cosine (first sidelobe -42 dB).
	Hamming
	// Taylor is the SAR-standard Taylor window with nbar = 4 and -35 dB
	// design sidelobe level.
	Taylor
)

// String returns the taper name.
func (k WindowKind) String() string {
	switch k {
	case Rect:
		return "rect"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Taylor:
		return "taylor"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(k))
	}
}

// Window returns the n coefficients of taper k.
func Window(k WindowKind, n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	switch k {
	case Rect:
		for i := range w {
			w[i] = 1
		}
	case Hann:
		for i := range w {
			w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		}
		if n == 1 {
			w[0] = 1
		}
	case Hamming:
		for i := range w {
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		}
		if n == 1 {
			w[0] = 1
		}
	case Taylor:
		return taylor(n, 4, 35)
	default:
		panic(fmt.Sprintf("fft: unknown window %v", k))
	}
	return w
}

// taylor computes the Taylor window with nbar nearly-constant sidelobes at
// the given design level (dB below the mainlobe).
func taylor(n, nbar int, sllDB float64) []float64 {
	a := math.Acosh(math.Pow(10, sllDB/20)) / math.Pi
	a2 := a * a
	sp2 := float64(nbar*nbar) / (a2 + (float64(nbar)-0.5)*(float64(nbar)-0.5))

	// Fm coefficients.
	fm := make([]float64, nbar)
	for m := 1; m < nbar; m++ {
		num := 1.0
		den := 1.0
		for i := 1; i < nbar; i++ {
			num *= 1 - float64(m*m)/(sp2*(a2+(float64(i)-0.5)*(float64(i)-0.5)))
			if i != m {
				den *= 1 - float64(m*m)/float64(i*i)
			}
		}
		sign := 1.0 // (-1)^(m+1): positive for odd m
		if m%2 == 0 {
			sign = -1
		}
		fm[m] = sign * num / (2 * den)
	}

	w := make([]float64, n)
	for i := range w {
		x := (float64(i) - (float64(n)-1)/2) / float64(n) // -0.5 .. 0.5
		v := 1.0
		for m := 1; m < nbar; m++ {
			v += 2 * fm[m] * math.Cos(2*math.Pi*float64(m)*x)
		}
		w[i] = v
	}
	// Normalize the peak to 1.
	max := 0.0
	for _, v := range w {
		if v > max {
			max = v
		}
	}
	for i := range w {
		w[i] /= max
	}
	return w
}

// ApplyWindow multiplies x element-wise by the taper coefficients. It
// panics if the lengths differ.
func ApplyWindow(x []complex64, w []float64) {
	if len(x) != len(w) {
		panic(fmt.Sprintf("fft: window length %d does not match data length %d", len(w), len(x)))
	}
	for i := range x {
		x[i] = cf.Scale(float32(w[i]), x[i])
	}
}

// CoherentGain returns the mean of the taper — the amplitude loss a
// coherent signal suffers under the window.
func CoherentGain(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}
