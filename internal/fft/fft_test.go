package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"sarmany/internal/cf"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex64, inverse bool) []complex64 {
	n := len(x)
	out := make([]complex64, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			phi := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += complex128(complex(real(x[j]), imag(x[j]))) * cmplx.Exp(complex(0, phi))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = complex(float32(real(acc)), float32(imag(acc)))
	}
	return out
}

func maxErr(a, b []complex64) float64 {
	var m float64
	for i := range a {
		d := cmplx.Abs(complex128(a[i]) - complex128(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func randVec(n int, seed int64) []complex64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex64, n)
	for i := range x {
		x[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return x
}

func TestNewPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) should fail", n)
		}
	}
	for _, n := range []int{1, 2, 4, 1024} {
		if _, err := NewPlan(n); err != nil {
			t.Errorf("NewPlan(%d): %v", n, err)
		}
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randVec(n, int64(n))
		want := naiveDFT(x, false)
		got := append([]complex64(nil), x...)
		MustPlan(n).Forward(got)
		if e := maxErr(got, want); e > 1e-3*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 8, 32, 128} {
		x := randVec(n, int64(n)+100)
		want := naiveDFT(x, true)
		got := append([]complex64(nil), x...)
		MustPlan(n).Inverse(got)
		if e := maxErr(got, want); e > 1e-3*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{1, 4, 64, 1024, 4096} {
		x := randVec(n, int64(n)+7)
		got := append([]complex64(nil), x...)
		p := MustPlan(n)
		p.Forward(got)
		p.Inverse(got)
		if e := maxErr(got, x); e > 1e-4*math.Sqrt(float64(n)) {
			t.Errorf("n=%d: round-trip error %v", n, e)
		}
	}
}

func TestLinearity(t *testing.T) {
	n := 128
	p := MustPlan(n)
	x := randVec(n, 1)
	y := randVec(n, 2)
	// F(x+2y)
	sum := make([]complex64, n)
	for i := range sum {
		sum[i] = x[i] + cf.Scale(2, y[i])
	}
	p.Forward(sum)
	// F(x) + 2F(y)
	fx := append([]complex64(nil), x...)
	fy := append([]complex64(nil), y...)
	p.Forward(fx)
	p.Forward(fy)
	for i := range fx {
		fx[i] += cf.Scale(2, fy[i])
	}
	if e := maxErr(sum, fx); e > 1e-2 {
		t.Errorf("linearity violated: %v", e)
	}
}

func TestParseval(t *testing.T) {
	n := 256
	x := randVec(n, 3)
	var timeE float64
	for _, v := range x {
		timeE += float64(cf.Abs2(v))
	}
	f := append([]complex64(nil), x...)
	MustPlan(n).Forward(f)
	var freqE float64
	for _, v := range f {
		freqE += float64(cf.Abs2(v))
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE) > 1e-2*timeE {
		t.Errorf("Parseval violated: time %v freq %v", timeE, freqE)
	}
}

func TestImpulseTransform(t *testing.T) {
	n := 64
	x := make([]complex64, n)
	x[0] = 1
	MustPlan(n).Forward(x)
	for i, v := range x {
		if math.Abs(float64(real(v))-1) > 1e-5 || math.Abs(float64(imag(v))) > 1e-5 {
			t.Fatalf("impulse spectrum not flat at %d: %v", i, v)
		}
	}
}

func TestForwardWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustPlan(8).Forward(make([]complex64, 4))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func naiveConvolve(a, b []complex64) []complex64 {
	out := make([]complex64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func TestConvolveMatchesNaive(t *testing.T) {
	for _, c := range []struct{ na, nb int }{{1, 1}, {4, 3}, {17, 5}, {100, 33}} {
		a := randVec(c.na, int64(c.na))
		b := randVec(c.nb, int64(c.nb)+50)
		got := Convolve(a, b)
		want := naiveConvolve(a, b)
		if len(got) != len(want) {
			t.Fatalf("length %d want %d", len(got), len(want))
		}
		if e := maxErr(got, want); e > 1e-2 {
			t.Errorf("na=%d nb=%d: error %v", c.na, c.nb, e)
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, randVec(3, 1)) != nil {
		t.Error("Convolve(nil, x) should be nil")
	}
	if Convolve(randVec(3, 1), nil) != nil {
		t.Error("Convolve(x, nil) should be nil")
	}
}

func TestCorrelatePeakAtLag(t *testing.T) {
	// Embed a reference chirp at offset 20 in noise-free zeros; the matched
	// filter must peak exactly at lag 20.
	ref := randVec(16, 9)
	x := make([]complex64, 100)
	copy(x[20:], ref)
	out := Correlate(x, ref)
	if len(out) != len(x)-len(ref)+1 {
		t.Fatalf("output length %d", len(out))
	}
	best, bestV := -1, float32(-1)
	for i, v := range out {
		if m := cf.Abs2(v); m > bestV {
			best, bestV = i, m
		}
	}
	if best != 20 {
		t.Errorf("peak at lag %d, want 20", best)
	}
}

func TestCorrelateDegenerate(t *testing.T) {
	if Correlate(randVec(3, 1), randVec(5, 2)) != nil {
		t.Error("ref longer than x should give nil")
	}
	if Correlate(randVec(3, 1), nil) != nil {
		t.Error("empty ref should give nil")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	p := MustPlan(1024)
	x := randVec(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkConvolve1001x128(b *testing.B) {
	x := randVec(1001, 1)
	h := randVec(128, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Convolve(x, h)
	}
}
