// Package sim provides the deterministic virtual-time primitives the
// Epiphany chip model is built on. Simulated cores run as goroutines, each
// carrying its own cycle counter; they synchronize through two primitives:
//
//   - Chan, a capacity-limited FIFO carrying timestamped messages with
//     credit-based back-pressure. The receiver's clock advances to at
//     least the message availability time; a sender that finds the buffer
//     full advances to the time a slot was freed. With a single producer
//     and a single consumer per channel (how the autofocus pipeline uses
//     them), all timestamps are independent of goroutine scheduling.
//
//   - Rendezvous, an N-party barrier whose last arriver runs a resolution
//     function before anyone is released. The Epiphany model uses the
//     resolution step to settle off-chip bandwidth contention for the
//     phase that just ended, from the complete set of per-core traffic
//     reports — again independent of arrival order.
//
// This "timestamped process network" style is sufficient for the paper's
// two mappings (SPMD compute/barrier phases and an MPMD streaming
// pipeline) and keeps every simulation bit-reproducible, which the test
// suite relies on.
package sim

import "sync"

// Time is virtual time in clock cycles (fractional cycles allowed).
type Time = float64

// msg is one queued item with the time it becomes visible to the receiver.
type msg[T any] struct {
	val T
	at  Time
}

// Chan is a single-producer single-consumer FIFO of timestamped values
// with a fixed capacity.
type Chan[T any] struct {
	data   chan msg[T]
	credit chan Time
}

// NewChan returns a channel with the given buffer capacity (number of
// in-flight messages). Capacity must be at least 1.
func NewChan[T any](capacity int) *Chan[T] {
	if capacity < 1 {
		panic("sim: channel capacity must be >= 1")
	}
	c := &Chan[T]{
		data:   make(chan msg[T], capacity),
		credit: make(chan Time, capacity),
	}
	for i := 0; i < capacity; i++ {
		c.credit <- 0
	}
	return c
}

// Send enqueues v at sender time now; the message becomes visible to the
// receiver after dur (the modeled transfer latency). If the buffer is
// full, the sender blocks until the receiver frees a slot, and the send is
// retimed to that moment (back-pressure). Send returns the sender's new
// local time: the cycle at which the send issued.
func (c *Chan[T]) Send(now Time, v T, dur Time) Time {
	freed := <-c.credit
	if freed > now {
		now = freed
	}
	c.data <- msg[T]{val: v, at: now + dur}
	return now
}

// Recv dequeues the next message at receiver time now, blocking until one
// exists. It returns the value and the receiver's new local time: the
// maximum of now and the message availability time.
func (c *Chan[T]) Recv(now Time) (T, Time) {
	m := <-c.data
	if m.at > now {
		now = m.at
	}
	c.credit <- now
	return m.val, now
}

// TryLen returns the number of currently buffered messages (for tests and
// statistics; the value is racy if producer or consumer are running).
func (c *Chan[T]) TryLen() int { return len(c.data) }

// Rendezvous is a reusable N-party barrier. The last goroutine to arrive
// runs the resolution function (while all others wait) and then everyone
// is released. It is the synchronization point at which the chip model
// settles shared-resource contention.
type Rendezvous struct {
	n      int
	mu     sync.Mutex
	cond   *sync.Cond
	count  int
	gen    uint64
	action func()
}

// NewRendezvous returns a barrier for n parties.
func NewRendezvous(n int) *Rendezvous {
	if n < 1 {
		panic("sim: rendezvous needs at least one party")
	}
	r := &Rendezvous{n: n}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Wait blocks until all n parties have called Wait. The last arriver runs
// resolve (if non-nil) before releasing the others; every party must pass
// the same resolve on a given round (conventionally all pass the same
// function value, or only the model's designated closure).
func (r *Rendezvous) Wait(resolve func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if resolve != nil {
		r.action = resolve
	}
	gen := r.gen
	r.count++
	if r.count == r.n {
		if r.action != nil {
			r.action()
			r.action = nil
		}
		r.count = 0
		r.gen++
		r.cond.Broadcast()
		return
	}
	for gen == r.gen {
		r.cond.Wait()
	}
}

// MaxTime returns the maximum of ts (0 for an empty slice).
func MaxTime(ts []Time) Time {
	var m Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}
