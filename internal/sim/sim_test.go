package sim

import (
	"sync"
	"testing"
)

func TestChanTimestampPropagation(t *testing.T) {
	c := NewChan[int](4)
	// Sender at t=100 sends with 10-cycle latency.
	if ts := c.Send(100, 7, 10); ts != 100 {
		t.Errorf("send time %v", ts)
	}
	// An early receiver (t=50) advances to the arrival time 110.
	v, now := c.Recv(50)
	if v != 7 || now != 110 {
		t.Errorf("recv = %v at %v", v, now)
	}
	// A late receiver keeps its own time.
	c.Send(0, 8, 5)
	v, now = c.Recv(500)
	if v != 8 || now != 500 {
		t.Errorf("late recv = %v at %v", v, now)
	}
}

func TestChanBackPressure(t *testing.T) {
	c := NewChan[int](1)
	done := make(chan Time)
	c.Send(10, 1, 0) // fills the single slot at t=10
	go func() {
		// This send must block until the receiver frees the slot at t=200,
		// and be retimed to 200 even though the sender "arrived" at t=20.
		done <- c.Send(20, 2, 0)
	}()
	v, now := c.Recv(200)
	if v != 1 || now != 200 {
		t.Fatalf("recv = %v at %v", v, now)
	}
	if ts := <-done; ts != 200 {
		t.Errorf("blocked send retimed to %v, want 200", ts)
	}
	if v, now = c.Recv(0); v != 2 || now != 200 {
		t.Errorf("second recv = %v at %v", v, now)
	}
}

func TestChanFIFOOrder(t *testing.T) {
	c := NewChan[int](8)
	for i := 0; i < 8; i++ {
		c.Send(Time(i), i, 1)
	}
	if c.TryLen() != 8 {
		t.Fatalf("TryLen = %d", c.TryLen())
	}
	now := Time(0)
	for i := 0; i < 8; i++ {
		var v int
		v, now = c.Recv(now)
		if v != i {
			t.Fatalf("got %d at position %d", v, i)
		}
	}
}

func TestChanDeterministicPipeline(t *testing.T) {
	// A two-stage pipeline must produce identical finish times on every
	// run regardless of goroutine interleaving.
	run := func() Time {
		c := NewChan[int](2)
		var finish Time
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // producer: 100 items, 7 cycles each, 3-cycle transfer
			defer wg.Done()
			now := Time(0)
			for i := 0; i < 100; i++ {
				now += 7
				now = c.Send(now, i, 3)
			}
		}()
		go func() { // consumer: 11 cycles of work per item
			defer wg.Done()
			now := Time(0)
			for i := 0; i < 100; i++ {
				_, now = c.Recv(now)
				now += 11
			}
			finish = now
		}()
		wg.Wait()
		return finish
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d finished at %v, first run at %v", i, got, first)
		}
	}
	// The consumer is the bottleneck: ~100*11 plus pipeline fill.
	if first < 1100 || first > 1200 {
		t.Errorf("finish time %v outside expected window", first)
	}
}

func TestNewChanInvalidCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewChan[int](0)
}

func TestRendezvousRunsResolverOnce(t *testing.T) {
	const n = 8
	r := NewRendezvous(n)
	var calls int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				r.Wait(func() { calls++ })
			}
		}()
	}
	wg.Wait()
	if calls != 50 {
		t.Errorf("resolver ran %d times, want 50", calls)
	}
}

func TestRendezvousReleasesAll(t *testing.T) {
	r := NewRendezvous(3)
	var mu sync.Mutex
	order := []int{}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.Wait(nil)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(order) != 3 {
		t.Errorf("released %d parties", len(order))
	}
}

func TestRendezvousSingleParty(t *testing.T) {
	r := NewRendezvous(1)
	ran := false
	r.Wait(func() { ran = true })
	if !ran {
		t.Error("resolver did not run for single party")
	}
}

func TestNewRendezvousInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRendezvous(0)
}

func TestMaxTime(t *testing.T) {
	if MaxTime(nil) != 0 {
		t.Error("empty MaxTime not 0")
	}
	if MaxTime([]Time{3, 9, 2}) != 9 {
		t.Error("MaxTime wrong")
	}
}
