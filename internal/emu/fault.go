package emu

import (
	"fmt"

	"sarmany/internal/fault"
	"sarmany/internal/obs"
)

// This file is the fault-injection surface of the chip model. The hook
// points (Core.commit derating, Core.extBW channel scaling, Link.Send
// retransmits, Core.dmaStart completion timeouts, Run's live-core
// filtering) consult the attached fault.Injector; with no injector — or a
// compiled empty plan — every hook reduces to the exact arithmetic of the
// fault-free path, so such runs are bit-identical to an uninstrumented
// chip (asserted by TestEmptyFaultPlanIsBitIdentical).

// SetFaults attaches (or with nil detaches) a compiled fault plan. Attach
// before Run: the injector seeds per-core derating factors and decides
// which cores are alive. A whole-chip derate multiplies onto the per-core
// factors of that chip's cores. Detaching restores every core to full
// speed.
func (ch *Chip) SetFaults(inj *fault.Injector) {
	ch.faults = inj
	for _, c := range ch.Cores {
		c.slow = 1
		if inj != nil {
			c.slow = inj.Slowdown(c.ID) * inj.ChipSlowdown(c.chipIdx)
		}
	}
	ch.makeFaultTracks()
}

// Faults returns the attached fault injector (nil when fault injection is
// disabled).
func (ch *Chip) Faults() *fault.Injector { return ch.faults }

// Alive reports whether core i participates in runs (true unless a fault
// plan hard-halts it, individually or by halting its whole chip).
func (ch *Chip) Alive(i int) bool {
	if ch.faults == nil {
		return true
	}
	return !ch.faults.Halted(i) && !ch.faults.ChipHalted(ch.Cores[i].chipIdx)
}

// makeFaultTracks creates one fault-event track per core when both a
// tracer and an injector are attached (called from SetFaults and
// SetTracer, so attachment order does not matter). Fault spans live on
// their own tracks because a DMA timeout manifests at engine completion
// time, which can overlap the core's own span stream.
func (ch *Chip) makeFaultTracks() {
	if ch.tracer == nil || ch.faults == nil || ch.faults.Empty() {
		return
	}
	for _, c := range ch.Cores {
		if c.ftr == nil {
			c.ftr = ch.tracer.NewTrack(0, 1000+c.ID, fmt.Sprintf("faults core %d", c.ID))
		}
	}
}

// Remap records one slot of work moved off a halted core: mapped kernels
// keep slot identities (so the tile partition is unchanged) and only move
// the executing core.
type Remap struct {
	Slot int `json:"slot"` // logical work slot (SPMD slice or MPMD node index)
	From int `json:"from"` // the halted core that owned the slot
	To   int `json:"to"`   // the live core that took it over
}

// Remaps returns every slot remap recorded by Assignments and
// RemapPlacement, in decision order.
func (ch *Chip) Remaps() []Remap { return ch.remaps }

// Assignments returns the SPMD slot-to-core assignment for a run on the
// first n cores (0 = all): slot i runs on core i unless core i is halted,
// in which case the slot moves to the nearest live core of the run by
// Manhattan (XY-route) distance, lowest core ID on ties. A live core can
// host several slots; the slots themselves still partition the original
// work exactly. Each remap is recorded for the conformance checker and
// the degradation report.
func (ch *Chip) Assignments(n int) ([]int, error) {
	if n == 0 {
		n = len(ch.Cores)
	}
	if n < 1 || n > len(ch.Cores) {
		return nil, fmt.Errorf("emu: cannot assign %d slots on %d cores", n, len(ch.Cores))
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	if ch.faults == nil {
		return out, nil
	}
	for i := 0; i < n; i++ {
		if ch.Alive(i) {
			continue
		}
		from := ch.Cores[i]
		best, bestD := -1, 1<<30
		for j := 0; j < n; j++ {
			if !ch.Alive(j) {
				continue
			}
			d := abs(from.Row-ch.Cores[j].Row) + abs(from.Col-ch.Cores[j].Col)
			if d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("emu: no live core among the first %d to take over slot %d", n, i)
		}
		out[i] = best
		ch.remaps = append(ch.remaps, Remap{Slot: i, From: i, To: best})
	}
	return out, nil
}

// RemapPlacement returns a copy of an MPMD placement (slot index ->
// core ID) with every halted core replaced by the nearest unoccupied live
// core on the whole mesh (Manhattan distance from the halted core, lowest
// ID on ties). Unlike Assignments the result stays injective — each node
// needs its own core — so remapping fails when the mesh has no free live
// core left.
func (ch *Chip) RemapPlacement(placement []int) ([]int, error) {
	out := append([]int(nil), placement...)
	if ch.faults == nil {
		return out, nil
	}
	used := make(map[int]bool, len(out))
	for _, c := range out {
		used[c] = true
	}
	for slot, core := range out {
		if core < 0 || core >= len(ch.Cores) {
			return nil, fmt.Errorf("emu: slot %d placed on nonexistent core %d", slot, core)
		}
		if ch.Alive(core) {
			continue
		}
		from := ch.Cores[core]
		best, bestD := -1, 1<<30
		for j := range ch.Cores {
			if used[j] || !ch.Alive(j) {
				continue
			}
			d := abs(from.Row-ch.Cores[j].Row) + abs(from.Col-ch.Cores[j].Col)
			if d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("emu: no free live core to take over slot %d (core %d halted)", slot, core)
		}
		out[slot] = best
		used[best] = true
		ch.remaps = append(ch.remaps, Remap{Slot: slot, From: core, To: best})
	}
	return out, nil
}

// extBW returns the effective off-chip channel bandwidth in bytes per
// cycle for this core's chip: the configured per-chip figure, scaled
// down when a fault plan degrades the SDRAM channel. The fault-free path
// is untouched arithmetic — the scale is only applied when it differs
// from 1.
func (c *Core) extBW() float64 {
	bw := c.chip.P.ExtBWOfChip(c.chipIdx)
	if f := c.chip.faults; f != nil {
		if s := f.ExtScale(); s != 1 {
			bw *= s
		}
	}
	return bw
}

// linkFault prices the retransmissions of the link's next transfer (index
// idx = blocks already sent) and returns nothing on the healthy path. Per
// failed attempt the producer stalls for the timeout plus the exponential
// backoff, then re-issues the block into the mesh — re-paying the issue
// cycles and re-moving the bytes, which the energy model therefore prices
// automatically through NoCBytes.
func (l *Link) injectSendFaults(c *Core, n int) {
	f := c.chip.faults
	if f == nil {
		return
	}
	lf, ok := f.LinkFaultFor(l.from.ID, l.to.ID)
	if !ok || lf.Rate == 0 {
		return
	}
	retries := f.LinkRetries(l.from.ID, l.to.ID, l.sends)
	for k := 0; k < retries; k++ {
		wait := lf.TimeoutCycles + lf.BackoffCycles*float64(uint64(1)<<uint(k))
		c.stall(wait, obs.KindStallLink)
		c.ftr.Span(obs.KindFaultLink, c.now-wait, c.now)
		// Re-issue: the block crosses the producer's mesh interface again.
		c.ialu += words(n) + 1
		c.commit()
		reissue := words(n) + 1
		c.Stats.RemoteWrites++
		c.Stats.NoCBytes += uint64(n)
		c.Stats.LinkRetries++
		c.Stats.RetryBytes += uint64(n)
		c.Stats.LinkRetryCycles += wait + reissue
		l.retries++
		l.retryBytes += uint64(n)
		l.retryCycles += wait + reissue
	}
}

// injectDMAFaults returns the extra completion delay of the DMA
// descriptor the core is issuing (descriptor index = transfers already
// issued): each timeout adds the configured cycles before the engine
// notices and restarts completion detection.
func (c *Core) injectDMAFaults() float64 {
	f := c.chip.faults
	if f == nil {
		return 0
	}
	df, ok := f.DMAFaultFor(c.ID)
	if !ok || df.Rate == 0 {
		return 0
	}
	retries := f.DMARetries(c.ID, c.Stats.DMATransfers)
	if retries == 0 {
		return 0
	}
	extra := df.TimeoutCycles * float64(retries)
	c.Stats.DMARetries += uint64(retries)
	c.Stats.DMARetryCycles += extra
	return extra
}
