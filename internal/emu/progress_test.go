package emu

import (
	"sync"
	"testing"
)

// TestProgressDisabledByDefault pins the opt-in contract: without
// EnableProgress the chip reports no snapshot and cores carry nil cells.
func TestProgressDisabledByDefault(t *testing.T) {
	ch := New(E16G3())
	if ch.ProgressEnabled() {
		t.Fatal("progress enabled on a fresh chip")
	}
	if _, ok := ch.Progress(); ok {
		t.Fatal("Progress() ok without EnableProgress")
	}
	for _, c := range ch.Cores {
		if c.prog != nil {
			t.Fatal("core carries a progress cell without EnableProgress")
		}
	}
}

// TestProgressTracksClocks drives a run and checks the published cells
// land on the cores' final committed clocks, with the phase counter
// matching the barrier count.
func TestProgressTracksClocks(t *testing.T) {
	ch := New(E16G3())
	ch.EnableProgress()
	ch.EnableProgress() // idempotent
	const phases = 3
	ch.Run(4, func(c *Core) {
		for i := 0; i < phases; i++ {
			c.FMA(100 * (c.ID + 1))
			c.Barrier()
		}
	})
	p, ok := ch.Progress()
	if !ok {
		t.Fatal("Progress() not ok after EnableProgress")
	}
	if p.Phases != phases {
		t.Errorf("phases = %d, want %d", p.Phases, phases)
	}
	if len(p.Cores) != len(ch.Cores) {
		t.Fatalf("cores = %d, want %d", len(p.Cores), len(ch.Cores))
	}
	for i := 0; i < 4; i++ {
		if want := ch.Cores[i].Cycles(); p.Cores[i] != want {
			t.Errorf("core %d progress = %v, want final clock %v", i, p.Cores[i], want)
		}
	}
	for i := 4; i < len(p.Cores); i++ {
		if p.Cores[i] != 0 {
			t.Errorf("idle core %d progress = %v, want 0", i, p.Cores[i])
		}
	}
	if p.MaxCycles() != ch.MaxCycles() {
		t.Errorf("MaxCycles = %v, want %v", p.MaxCycles(), ch.MaxCycles())
	}
	if p.TotalCycles() <= 0 {
		t.Errorf("TotalCycles = %v, want > 0", p.TotalCycles())
	}
}

// TestProgressConcurrentReads samples Progress from a separate goroutine
// while the run executes — the heartbeat pattern. Under -race this pins
// that publication is genuinely race-free, and it checks the observed
// total-cycles scalar is monotone.
func TestProgressConcurrentReads(t *testing.T) {
	ch := New(E16G3())
	ch.EnableProgress()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var lastTotal float64
	var samples int
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, ok := ch.Progress()
			if !ok {
				continue
			}
			if tot := p.TotalCycles(); tot < lastTotal {
				t.Errorf("total cycles went backwards: %v -> %v", lastTotal, tot)
				return
			} else {
				lastTotal = tot
			}
			samples++
		}
	}()

	ch.Run(16, func(c *Core) {
		for i := 0; i < 50; i++ {
			c.FMA(1000)
			c.Flop(200)
			c.Barrier()
		}
	})
	close(stop)
	wg.Wait()
	if samples == 0 {
		t.Fatal("sampler never ran")
	}
	p, _ := ch.Progress()
	if p.TotalCycles() < lastTotal {
		t.Errorf("final total %v below last observed %v", p.TotalCycles(), lastTotal)
	}
	if p.Phases != 50 {
		t.Errorf("phases = %d, want 50", p.Phases)
	}
}

// TestProgressDoesNotPerturbModel pins that enabling progress changes
// nothing about simulated time: two identical runs, one instrumented,
// produce identical clocks and stats.
func TestProgressDoesNotPerturbModel(t *testing.T) {
	run := func(enable bool) *Chip {
		ch := New(E16G3())
		if enable {
			ch.EnableProgress()
		}
		ch.Run(8, func(c *Core) {
			c.FMA(500 * (c.ID + 1))
			c.IOp(300)
			c.Barrier()
			c.Trig(40)
			c.Barrier()
		})
		return ch
	}
	a, b := run(false), run(true)
	if a.MaxCycles() != b.MaxCycles() {
		t.Errorf("MaxCycles diverged: %v vs %v", a.MaxCycles(), b.MaxCycles())
	}
	for i := range a.Cores {
		if a.Cores[i].Stats != b.Cores[i].Stats {
			t.Errorf("core %d stats diverged", i)
		}
	}
}
