package emu

import (
	"math"
	"testing"

	"sarmany/internal/machine"
)

func TestNewChipLayout(t *testing.T) {
	ch := New(E16G3())
	if len(ch.Cores) != 16 {
		t.Fatalf("%d cores", len(ch.Cores))
	}
	if ch.Cores[5].Row != 1 || ch.Cores[5].Col != 1 {
		t.Errorf("core 5 at (%d,%d)", ch.Cores[5].Row, ch.Cores[5].Col)
	}
	// Real E16G3 map: first core page at 0x80800000.
	if got := ch.P.coreBase(0, 0); got != 0x80800000 {
		t.Errorf("coreBase(0,0) = %#x", got)
	}
}

func TestParamsHelpers(t *testing.T) {
	p := E16G3()
	if p.NumCores() != 16 {
		t.Error("NumCores")
	}
	if E64().NumCores() != 64 {
		t.Error("E64 cores")
	}
	if p.WithMesh(2, 3).NumCores() != 6 {
		t.Error("WithMesh")
	}
}

func TestNewChipRejectsOversizedMesh(t *testing.T) {
	p := E16G3().WithMesh(65, 4) // no 6-bit placement holds 65 rows
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(p)
}

func TestNewChipRejectsBadBanking(t *testing.T) {
	p := E16G3()
	p.BankBytes = 1000
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(p)
}

func TestDualIssue(t *testing.T) {
	ch := New(E16G3())
	c := ch.Cores[0]
	c.FMA(100)
	c.IOp(60)
	if got := c.Cycles(); got != 100 {
		t.Errorf("dual-issue cycles = %v, want 100 (max of pipes)", got)
	}
	c.IOp(80) // ialu now 140 > fpu 100
	if got := c.Cycles(); got != 140 {
		t.Errorf("cycles = %v, want 140", got)
	}
}

func TestSoftwareRoutineCosts(t *testing.T) {
	p := E16G3()
	ch := New(p)
	c := ch.Cores[0]
	c.Sqrt(2)
	c.Div(1)
	c.Trig(3)
	want := float64(2*p.SqrtFlops + p.DivFlops + 3*p.TrigFlops)
	if got := c.Cycles(); got != want {
		t.Errorf("software routines = %v cycles, want %v", got, want)
	}
}

func TestLocalAccessCost(t *testing.T) {
	ch := New(E16G3())
	c := ch.Cores[0]
	buf, err := machine.NewBufC(c.Bank(2), 16)
	if err != nil {
		t.Fatal(err)
	}
	buf.Store(c, 0, complex(1, 2))
	if v := buf.Load(c, 0); v != complex(1, 2) {
		t.Errorf("value %v", v)
	}
	// 2 x one double-word local access on the IALU pipe.
	if got := c.Cycles(); got != 2 {
		t.Errorf("local access cycles = %v, want 2", got)
	}
	if c.Stats.LocalLoads != 1 || c.Stats.LocalStores != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestBankCapacity(t *testing.T) {
	ch := New(E16G3())
	c := ch.Cores[0]
	// One bank holds exactly 8 KB = 1024 complex64 values — the paper's
	// "two pulses ... equal to 16,016 bytes" uses two banks.
	if _, err := machine.NewBufC(c.Bank(3), 1024); err != nil {
		t.Fatalf("1024 elements must fit a bank: %v", err)
	}
	if _, err := machine.NewBufC(c.Bank(3), 1); err == nil {
		t.Error("bank overflow not detected")
	}
}

func TestRemoteReadStall(t *testing.T) {
	p := E16G3()
	ch := New(p)
	c0 := ch.Cores[0]   // (0,0)
	c15 := ch.Cores[15] // (3,3): 6 hops away
	buf, err := machine.NewBufC(c15.Bank(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	buf.Load(c0, 0)
	want := p.RemoteReadBase + 2*6*p.RemoteHopCycles + 8/p.NoCBytesPerCycle
	if got := c0.Cycles(); math.Abs(got-want) > 1e-9 {
		t.Errorf("remote read = %v cycles, want %v", got, want)
	}
	if c0.Stats.RemoteReads != 1 {
		t.Errorf("stats %+v", c0.Stats)
	}
}

func TestRemoteWritePosted(t *testing.T) {
	ch := New(E16G3())
	c0, c1 := ch.Cores[0], ch.Cores[1]
	buf, err := machine.NewBufC(c1.Bank(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	buf.Store(c0, 0, 1)
	// Posted write: only the issue cycle, far below a read round trip.
	if got := c0.Cycles(); got > 2 {
		t.Errorf("posted remote write = %v cycles", got)
	}
	if c0.Stats.RemoteWrites != 1 {
		t.Errorf("stats %+v", c0.Stats)
	}
}

func TestExtReadStallAndWritePosted(t *testing.T) {
	p := E16G3()
	ch := New(p)
	c := ch.Cores[0]
	buf, err := machine.NewBufC(ch.Ext(), 100)
	if err != nil {
		t.Fatal(err)
	}
	buf.Load(c, 0)
	wantRead := p.ExtReadLatency + 8/p.ExtBytesPerCycle
	if got := c.Cycles(); math.Abs(got-wantRead) > 1e-9 {
		t.Errorf("ext read = %v cycles, want %v", got, wantRead)
	}
	before := c.Cycles()
	buf.Store(c, 1, 5)
	if got := c.Cycles() - before; got > 2 {
		t.Errorf("posted ext write = %v cycles", got)
	}
	if c.Stats.ExtReads != 1 || c.Stats.ExtWrites != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestClassifyPanicsOnBadAddress(t *testing.T) {
	ch := New(E16G3())
	c := ch.Cores[0]
	for _, addr := range []uint32{0, 0x7fffffff, ch.P.coreBase(0, 0) + 0x8000 /* beyond 32 KB */} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("address %#x accepted", addr)
				}
			}()
			c.Load(addr, 4)
		}()
	}
}

func TestBarrierContentionDrain(t *testing.T) {
	// Four cores each post 60 KB of external writes in a phase with almost
	// no compute: the barrier must complete only when the shared off-chip
	// channel has drained 240 KB.
	p := E16G3()
	ch := New(p)
	const bytesPerCore = 60 * 1024
	ch.Run(4, func(c *Core) {
		buf, err := machine.NewBufC(ch.Ext(), bytesPerCore/8)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < bytesPerCore/8; i++ {
			buf.Store(c, i, 1)
		}
		c.Barrier()
	})
	drain := 4 * bytesPerCore / p.ExtBytesPerCycle
	got := ch.MaxCycles()
	if got < drain*0.999 || got > drain*1.2 {
		t.Errorf("barrier time %v cycles, want ~%v (channel drain)", got, drain)
	}
}

func TestBarrierTakesMaxOfFinishTimes(t *testing.T) {
	ch := New(E16G3())
	ch.Run(4, func(c *Core) {
		c.FMA(1000 * (c.ID + 1)) // core 3 is slowest: 4000 cycles
		c.Barrier()
		if got := c.Cycles(); got != 4000 {
			t.Errorf("core %d left barrier at %v, want 4000", c.ID, got)
		}
	})
}

func TestBarrierDeterministic(t *testing.T) {
	run := func() float64 {
		ch := New(E16G3())
		ext, _ := machine.NewBufC(ch.Ext(), 16*512)
		ch.Run(16, func(c *Core) {
			for phase := 0; phase < 5; phase++ {
				c.FMA(100 * (c.ID + phase))
				for i := 0; i < 512; i++ {
					ext.Store(c, c.ID*512+i, complex64(complex(float32(i), 0)))
				}
				c.Barrier()
			}
		})
		return ch.MaxCycles()
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: %v cycles, first run %v", i, got, first)
		}
	}
}

func TestDMAOverlapsCompute(t *testing.T) {
	p := E16G3()
	ch := New(p)
	c := ch.Cores[0]
	ext, err := machine.NewBufC(ch.Ext(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	local, err := machine.NewBufC(c.Bank(2), 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ext.Data {
		ext.Data[i] = complex(float32(i), 0)
	}
	d := c.DMACopyC(local, 0, ext, 0, 1024)
	// Long compute while the DMA runs.
	c.FMA(100000)
	c.DMAWait(d)
	if local.Data[7] != complex(7, 0) {
		t.Error("DMA did not copy data")
	}
	// The DMA (8 KB at 0.6 B/cycle ≈ 13.7k cycles) is fully hidden by the
	// 100k-cycle compute.
	got := c.Cycles()
	if got < 100000 || got > 101000 {
		t.Errorf("overlapped time %v cycles, want ~100000", got)
	}
}

func TestDMAWaitStallsWhenNotOverlapped(t *testing.T) {
	p := E16G3()
	ch := New(p)
	c := ch.Cores[0]
	ext, _ := machine.NewBufC(ch.Ext(), 1024)
	local, _ := machine.NewBufC(c.Bank(2), 1024)
	d := c.DMACopyC(local, 0, ext, 0, 1024)
	c.DMAWait(d)
	want := p.DMASetupCycles + p.ExtReadLatency + 8*1024/p.ExtBytesPerCycle
	if got := c.Cycles(); math.Abs(got-want) > 1 {
		t.Errorf("unoverlapped DMA = %v cycles, want ~%v", got, want)
	}
}

func TestDMASerializesDescriptors(t *testing.T) {
	p := E16G3()
	ch := New(p)
	c := ch.Cores[0]
	ext, _ := machine.NewBufC(ch.Ext(), 2048)
	local, _ := machine.NewBufC(c.Bank(2), 1024)
	d1 := c.DMACopyC(local, 0, ext, 0, 512)
	d2 := c.DMACopyC(local, 512, ext, 512, 512)
	c.DMAWait(d1)
	c.DMAWait(d2)
	// Two transfers cannot overlap on one engine: total at least twice the
	// single-transfer service time.
	single := p.ExtReadLatency + 8*512/p.ExtBytesPerCycle
	if got := c.Cycles(); got < 2*single {
		t.Errorf("two DMAs = %v cycles, want >= %v", got, 2*single)
	}
}

func TestLinkStreamsWithBackPressure(t *testing.T) {
	ch := New(E16G3())
	l := ch.Connect(0, 1, 2)
	var prodEnd, consEnd float64
	ch.Run(2, func(c *Core) {
		const blocks = 50
		switch c.ID {
		case 0:
			block := make([]complex64, 16)
			for i := 0; i < blocks; i++ {
				c.FMA(10) // fast producer
				l.Send(c, block)
			}
			prodEnd = c.Cycles()
		case 1:
			for i := 0; i < blocks; i++ {
				v := l.Recv(c)
				if len(v) != 16 {
					t.Errorf("block size %d", len(v))
				}
				c.FMA(500) // slow consumer
			}
			consEnd = c.Cycles()
		}
	})
	// Consumer-bound pipeline: ~50*500 cycles.
	if consEnd < 25000 || consEnd > 27000 {
		t.Errorf("consumer end %v", consEnd)
	}
	// Back-pressure keeps the producer within the buffer depth of the
	// consumer, far beyond its own 50*10+sends compute.
	if prodEnd < 20000 {
		t.Errorf("producer end %v, expected back-pressure near consumer pace", prodEnd)
	}
}

func TestLinkWrongCorePanics(t *testing.T) {
	ch := New(E16G3())
	l := ch.Connect(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.Send(ch.Cores[2], []complex64{1})
}

func TestRunSubset(t *testing.T) {
	ch := New(E16G3())
	ran := make([]bool, 16)
	ch.Run(13, func(c *Core) {
		ran[c.ID] = true
		c.Barrier()
	})
	for i := 0; i < 13; i++ {
		if !ran[i] {
			t.Errorf("core %d did not run", i)
		}
	}
	for i := 13; i < 16; i++ {
		if ran[i] {
			t.Errorf("core %d should not have run", i)
		}
	}
}

func TestTotalStatsAggregates(t *testing.T) {
	ch := New(E16G3())
	ch.Run(4, func(c *Core) {
		c.FMA(10)
		c.Trig(1)
	})
	s := ch.TotalStats()
	if s.FMA != 40 || s.Trig != 4 {
		t.Errorf("totals %+v", s)
	}
}

func TestTimeSeconds(t *testing.T) {
	ch := New(E16G3())
	ch.Cores[0].FMA(1000)
	if got := ch.Time(); math.Abs(got-1e-6) > 1e-12 {
		t.Errorf("Time = %v, want 1 µs", got)
	}
}
