package emu

import (
	"testing"

	"sarmany/internal/fault"
	"sarmany/internal/machine"
)

// TestArrayConstructorShapes pins the grid and power figures of the
// scaled configurations the scaling benchmark sweeps.
func TestArrayConstructorShapes(t *testing.T) {
	cases := []struct {
		name               string
		p                  Params
		gridRows, gridCols int
		chips              int
		watts              float64
	}{
		{"E16G3", E16G3(), 4, 4, 1, 2},
		{"E64", E64(), 8, 8, 1, 8},
		{"E256", E256(), 16, 16, 1, 32},
		{"E1024", E1024(), 32, 32, 4, 128},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.p.GridRows() != tc.gridRows || tc.p.GridCols() != tc.gridCols {
				t.Errorf("grid %dx%d, want %dx%d", tc.p.GridRows(), tc.p.GridCols(), tc.gridRows, tc.gridCols)
			}
			if got := tc.p.NumCores(); got != tc.gridRows*tc.gridCols {
				t.Errorf("NumCores = %d", got)
			}
			if got := tc.p.NumChips(); got != tc.chips {
				t.Errorf("NumChips = %d, want %d", got, tc.chips)
			}
			if tc.p.MaxPowerWatts != tc.watts {
				t.Errorf("MaxPowerWatts = %v, want %v", tc.p.MaxPowerWatts, tc.watts)
			}
			ch := New(tc.p)
			if len(ch.Cores) != tc.p.NumCores() {
				t.Errorf("New built %d cores", len(ch.Cores))
			}
		})
	}
}

// TestTopologyMapping pins the array-level coordinate algebra on the
// E1024 2x2 array of 16x16 chips: core IDs are row-major over the global
// 32x32 grid, chips are row-major over the chip array, and Dist counts
// both mesh hops and eLink bridge crossings.
func TestTopologyMapping(t *testing.T) {
	tp := E1024().Topology()
	if tp.GridRows() != 32 || tp.GridCols() != 32 || tp.NumCores() != 1024 {
		t.Fatalf("grid %dx%d / %d cores", tp.GridRows(), tp.GridCols(), tp.NumCores())
	}
	if tp.NumChips() != 4 || tp.ChipRows() != 2 || tp.ChipCols() != 2 {
		t.Fatalf("chip array %dx%d / %d chips", tp.ChipRows(), tp.ChipCols(), tp.NumChips())
	}
	// Round trip and chip membership at the four chip corners.
	for _, tc := range []struct {
		coord Coord
		id    int
		chip  int
	}{
		{Coord{0, 0}, 0, 0},
		{Coord{0, 16}, 16, 1},
		{Coord{16, 0}, 512, 2},
		{Coord{16, 16}, 528, 3},
		{Coord{31, 31}, 1023, 3},
	} {
		if id := tp.IDOf(tc.coord); id != tc.id {
			t.Errorf("IDOf(%v) = %d, want %d", tc.coord, id, tc.id)
		}
		if c := tp.CoordOf(tc.id); c != tc.coord {
			t.Errorf("CoordOf(%d) = %v, want %v", tc.id, c, tc.coord)
		}
		if chip := tp.ChipOf(tc.id); chip != tc.chip {
			t.Errorf("ChipOf(%d) = %d, want %d", tc.id, chip, tc.chip)
		}
	}
	if c := tp.ChipCoord(2); c != (Coord{1, 0}) {
		t.Errorf("ChipCoord(2) = %v, want {1 0}", c)
	}
	// Distances: hops on the global grid, bridges per chip boundary.
	for _, tc := range []struct {
		a, b          Coord
		hops, bridges int
	}{
		{Coord{0, 0}, Coord{0, 15}, 15, 0},  // within chip 0
		{Coord{0, 0}, Coord{0, 16}, 16, 1},  // east across one bridge
		{Coord{0, 0}, Coord{16, 16}, 32, 2}, // diagonal: two bridges
		{Coord{0, 0}, Coord{31, 31}, 62, 2},
		{Coord{15, 15}, Coord{16, 16}, 2, 2}, // adjacent across the corner
	} {
		hops, bridges := tp.Dist(tp.IDOf(tc.a), tp.IDOf(tc.b))
		if hops != tc.hops || bridges != tc.bridges {
			t.Errorf("Dist(%v,%v) = %d hops / %d bridges, want %d / %d",
				tc.a, tc.b, hops, bridges, tc.hops, tc.bridges)
		}
	}
	// Out-of-range lookups panic rather than aliasing a wrong core.
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("CoordOf(1024)", func() { tp.CoordOf(1024) })
	mustPanic("IDOf(32,0)", func() { tp.IDOf(Coord{32, 0}) })
	mustPanic("ChipCoord(4)", func() { tp.ChipCoord(4) })
}

// chippedAndMono build the same 2x4 global grid twice: once as a 1x2
// eLink-bridged array of 2x2 chips, once as a monolithic 2x4 chip. Every
// cross-array cost difference between the two is exactly the eLink term.
func chippedAndMono() (chipped, mono *Chip) {
	return New(E16G3().WithMesh(2, 2).WithChips(1, 2)), New(E16G3().WithMesh(2, 4))
}

// TestBridgePricesRemoteRead pins the eLink surcharge of a stalling
// remote read: crossing one chip boundary adds 2*ELinkHopCycles (round
// trip) on top of the identical mesh-hop arithmetic.
func TestBridgePricesRemoteRead(t *testing.T) {
	chipped, mono := chippedAndMono()
	p := chipped.P
	read := func(ch *Chip, col int) float64 {
		c := ch.Cores[0]
		c.Load(ch.P.coreBase(0, col), 8)
		c.commit()
		return c.Cycles()
	}
	// (0,0) -> (0,2): two hops, and on the chipped array one bridge.
	monoCy := read(mono, 2)
	if want := p.RemoteReadBase + 2*2*p.RemoteHopCycles + 8/p.NoCBytesPerCycle; monoCy != want {
		t.Errorf("monolithic 2-hop read = %v cycles, want %v", monoCy, want)
	}
	chippedCy := read(chipped, 2)
	if want := monoCy + 2*p.ELinkHopCycles; chippedCy != want {
		t.Errorf("cross-bridge read = %v cycles, want %v (mono %v + 2*eLink)", chippedCy, want, monoCy)
	}
	// (0,0) -> (0,1) stays on chip 0: the two models price it identically.
	chipped2, mono2 := chippedAndMono()
	if c, m := read(chipped2, 1), read(mono2, 1); c != m {
		t.Errorf("on-chip read differs: chipped %v, mono %v", c, m)
	}
}

// TestBridgePricesLinkTransit pins the eLink surcharge of a streaming
// link: the consumer sees the block one ELinkHopCycles later per bridge,
// and LinkStats reports the bridge count.
func TestBridgePricesLinkTransit(t *testing.T) {
	p := E16G3()
	consumer := func(ch *Chip) float64 {
		l := ch.Connect(0, 2, 1) // (0,0) -> (0,2): crosses the boundary when chipped
		ch.Run(3, func(c *Core) {
			if c.ID == 0 {
				l.Send(c, make([]complex64, 8))
			}
			if c.ID == 2 {
				l.Recv(c)
			}
		})
		return ch.Cores[2].Cycles()
	}
	chipped, mono := chippedAndMono()
	monoCy, chippedCy := consumer(mono), consumer(chipped)
	if want := monoCy + p.ELinkHopCycles; chippedCy != want {
		t.Errorf("bridged consumer finished at %v, want %v (mono %v + one eLink transit)",
			chippedCy, want, monoCy)
	}
	ls, lsMono := chipped.LinkStats()[0], mono.LinkStats()[0]
	if ls.Bridges != 1 || ls.Hops != 2 {
		t.Errorf("bridged link stat %d hops / %d bridges, want 2 / 1", ls.Hops, ls.Bridges)
	}
	if lsMono.Bridges != 0 {
		t.Errorf("monolithic link reports %d bridges", lsMono.Bridges)
	}
}

// TestBridgePricesInterCoreDMA pins the eLink surcharge of an inter-core
// DMA descriptor: 2*ELinkHopCycles per crossed boundary, like the
// stalling read's round trip.
func TestBridgePricesInterCoreDMA(t *testing.T) {
	p := E16G3()
	dma := func(ch *Chip) float64 {
		c := ch.Cores[0]
		local, err := machine.NewBufC(c.Bank(2), 16)
		if err != nil {
			t.Fatal(err)
		}
		far, err := machine.NewBufC(ch.Cores[2].Bank(0), 16)
		if err != nil {
			t.Fatal(err)
		}
		c.DMAWait(c.DMACopyC(far, 0, local, 0, 16))
		return c.Cycles()
	}
	chipped, mono := chippedAndMono()
	monoCy, chippedCy := dma(mono), dma(chipped)
	if want := monoCy + 2*p.ELinkHopCycles; chippedCy != want {
		t.Errorf("cross-bridge DMA = %v cycles, want %v (mono %v + 2*eLink)", chippedCy, want, monoCy)
	}
}

// TestPerChipChannelsDrainIndependently pins the multi-chip barrier
// settlement: every chip owns an SDRAM channel, so a phase ends when the
// most loaded channel drains — not when the sum of all traffic would
// drain through one shared channel, which is what the monolithic layout
// of the same grid models.
func TestPerChipChannelsDrainIndependently(t *testing.T) {
	const elems = 64 // 512 bytes per core
	run := func(ch *Chip) PhaseRecord {
		ext, err := machine.NewBufC(ch.Ext(), 8*elems)
		if err != nil {
			t.Fatal(err)
		}
		ch.Run(8, func(c *Core) {
			for i := 0; i < elems; i++ {
				ext.Store(c, c.ID*elems+i, 1)
			}
			c.Barrier()
		})
		return ch.Phases()[0]
	}
	chipped, mono := chippedAndMono()
	bw := mono.P.ExtBytesPerCycle
	perCore := 8 * elems / bw // service cycles each core's writes owe

	recMono := run(mono)
	if want := 8 * perCore; recMono.End != want {
		t.Errorf("monolithic phase end = %v, want %v (8 cores through one channel)", recMono.End, want)
	}
	if recMono.ExtBusyByChip != nil {
		t.Errorf("single-chip phase carries ExtBusyByChip %v", recMono.ExtBusyByChip)
	}

	recChip := run(chipped)
	if want := 4 * perCore; recChip.End != want {
		t.Errorf("2-chip phase end = %v, want %v (4 cores per channel, drained in parallel)", recChip.End, want)
	}
	if !recChip.BandwidthBound {
		t.Error("bandwidth-dominated phase not flagged BandwidthBound")
	}
	if recChip.ExtBusy != recMono.ExtBusy {
		t.Errorf("total offered traffic differs: chipped %v, mono %v", recChip.ExtBusy, recMono.ExtBusy)
	}
	if len(recChip.ExtBusyByChip) != 2 ||
		recChip.ExtBusyByChip[0] != 4*perCore || recChip.ExtBusyByChip[1] != 4*perCore {
		t.Errorf("ExtBusyByChip = %v, want [%v %v]", recChip.ExtBusyByChip, 4*perCore, 4*perCore)
	}
}

// TestExtBWPerChipOverride pins ExtBytesPerCycleByChip: a chip with its
// own slower SDRAM channel pays proportionally more service time, while
// a zero entry falls back to the shared figure.
func TestExtBWPerChipOverride(t *testing.T) {
	p := E16G3().WithMesh(1, 1).WithChips(1, 2)  // two single-core chips
	p.ExtBytesPerCycleByChip = []float64{0, 0.5} // chip 0: default; chip 1: half rate
	if got := p.ExtBWOfChip(0); got != p.ExtBytesPerCycle {
		t.Fatalf("ExtBWOfChip(0) = %v, want fallback %v", got, p.ExtBytesPerCycle)
	}
	if got := p.ExtBWOfChip(1); got != 0.5 {
		t.Fatalf("ExtBWOfChip(1) = %v, want 0.5", got)
	}
	ch := New(p)
	ext, err := machine.NewBufC(ch.Ext(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cycles := func(id int) float64 {
		c := ch.Cores[id]
		ext.Load(c, id)
		c.commit()
		return c.Cycles()
	}
	fast, slow := cycles(0), cycles(1)
	// One 8-byte ext read each; halving the channel bandwidth doubles the
	// 8-cycle service term.
	if want := fast + 8/p.ExtBytesPerCycle; slow != want {
		t.Errorf("slow-channel read = %v cycles, want %v (fast %v + extra service)", slow, want, fast)
	}
}

// TestMeshOriginRelocation pins the address-map placement policy: grids
// that fit the classic E16G3 origin keep their exact historical
// addresses, while grids too large for it (E1024's 32x32) relocate to
// node (0, 0) — and the tile decode stays consistent either way.
func TestMeshOriginRelocation(t *testing.T) {
	classic := E16G3()
	if got := classic.coreBase(0, 0); got != 0x80800000 {
		t.Errorf("classic core (0,0) base = %#x, want 0x80800000", got)
	}
	big := E1024()
	if got := big.coreBase(0, 0); got != 0 {
		t.Errorf("relocated core (0,0) base = %#x, want 0x0", got)
	}
	for _, p := range []Params{classic, E64(), E256(), big} {
		for _, rc := range [][2]int{{0, 0}, {1, 2}, {p.GridRows() - 1, p.GridCols() - 1}} {
			r, c := p.tileOf(p.coreBase(rc[0], rc[1]))
			if r != rc[0] || c != rc[1] {
				t.Errorf("%dx%d grid: tileOf(coreBase(%d,%d)) = (%d,%d)",
					p.GridRows(), p.GridCols(), rc[0], rc[1], r, c)
			}
		}
		// No core page may alias the external window.
		base := p.coreBase(p.GridRows()-1, p.GridCols()-1)
		if base >= ExtBase && base < ExtBase+ExtSize {
			t.Errorf("%dx%d grid: last core page %#x aliases the external window",
				p.GridRows(), p.GridCols(), base)
		}
	}
	// A relocated grid is fully usable: remote reads still classify and
	// price correctly.
	ch := New(E16G3().WithMesh(33, 1))
	c := ch.Cores[0]
	c.Load(ch.P.coreBase(32, 0), 8)
	c.commit()
	p := ch.P
	if want := p.RemoteReadBase + 2*32*p.RemoteHopCycles + 8/p.NoCBytesPerCycle; c.Cycles() != want {
		t.Errorf("relocated-grid remote read = %v cycles, want %v", c.Cycles(), want)
	}
}

// TestChipHaltStopsWholeChip pins whole-chip fault semantics on a 1x2
// array of 2x2 chips: halting chip 1 kills exactly cores 2,3,6,7 of the
// 2x4 global grid, Run skips them, and Assignments moves their slots to
// the nearest live cores on chip 0.
func TestChipHaltStopsWholeChip(t *testing.T) {
	p := E16G3().WithMesh(2, 2).WithChips(1, 2)
	ch := New(p)
	ch.SetFaults(fault.MustCompile(fault.Plan{ChipHalts: []int{1}}))
	halted := map[int]bool{2: true, 3: true, 6: true, 7: true}
	for id := range ch.Cores {
		if ch.Alive(id) == halted[id] {
			t.Errorf("Alive(%d) = %v with chip 1 halted", id, ch.Alive(id))
		}
	}
	assign, err := ch.Assignments(8)
	if err != nil {
		t.Fatal(err)
	}
	// Nearest live core by grid Manhattan distance, lowest ID on ties:
	// slot 2 at (0,2) -> core 1 at (0,1); slot 3 at (0,3) -> core 1 (d=2);
	// slot 6 at (1,2) -> core 5 at (1,1); slot 7 at (1,3) -> core 5.
	want := []int{0, 1, 1, 1, 4, 5, 5, 5}
	for i, a := range assign {
		if a != want[i] {
			t.Errorf("slot %d assigned to core %d, want %d", i, a, want[i])
		}
	}
	if n := len(ch.Remaps()); n != 4 {
		t.Errorf("%d remaps recorded, want 4", n)
	}
	ch.Run(8, func(c *Core) {
		c.FMA(100)
		c.Barrier()
	})
	for id, c := range ch.Cores {
		if halted[id] {
			if c.Cycles() != 0 || c.Stats != (CoreStats{}) {
				t.Errorf("halted core %d ran: %v cycles, %+v", id, c.Cycles(), c.Stats)
			}
		} else if c.Stats.ComputeCycles != 100 {
			t.Errorf("live core %d computed %v cycles, want 100", id, c.Stats.ComputeCycles)
		}
	}

	// Halting every chip of the run leaves no taker.
	ch2 := New(p)
	ch2.SetFaults(fault.MustCompile(fault.Plan{ChipHalts: []int{0, 1}}))
	if _, err := ch2.Assignments(8); err == nil {
		t.Error("expected error with every chip halted")
	}
}

// TestChipDerateMultipliesCoreDerate pins the composition of whole-chip
// and per-core derating: a core on a derated chip runs at the product of
// the two factors.
func TestChipDerateMultipliesCoreDerate(t *testing.T) {
	p := E16G3().WithMesh(2, 2).WithChips(1, 2)
	ch := New(p)
	ch.SetFaults(fault.MustCompile(fault.Plan{
		ChipDerates: []fault.ChipDerate{{Chip: 1, Factor: 2}},
		Derates:     []fault.Derate{{Core: 2, Factor: 1.5}},
	}))
	for _, tc := range []struct {
		id   int
		want float64
	}{
		{0, 100}, // chip 0, no derate
		{6, 200}, // chip 1: whole-chip factor 2
		{2, 300}, // chip 1 and core derate: 2 * 1.5
	} {
		c := ch.Cores[tc.id]
		c.FMA(100)
		if got := c.Cycles(); got != tc.want {
			t.Errorf("core %d: FMA(100) = %v cycles, want %v", tc.id, got, tc.want)
		}
	}
}
