package emu

import (
	"fmt"
	"io"
	"strings"
)

// PhaseRecord summarizes one barrier-delimited phase of an SPMD run: when
// it started and ended, how much off-chip channel service time its traffic
// consumed, and whether the barrier was bound by the slowest core's
// compute or by draining the off-chip channel — the distinction at the
// heart of the paper's FFBP analysis.
type PhaseRecord struct {
	Index      int
	Start, End float64 // cycles
	// SlowestCore is the latest per-core finish time of the phase.
	SlowestCore float64
	// ExtBusy is the total off-chip channel service time consumed,
	// summed over every chip's SDRAM channel.
	ExtBusy float64
	// ExtBusyByChip breaks ExtBusy down per SDRAM channel (indexed by
	// chip, row-major over the chip array). nil on a single chip, where
	// ExtBusy is the whole story; when present the slices sum to ExtBusy
	// and the barrier drains each channel independently.
	ExtBusyByChip []float64
	// BandwidthBound reports whether draining the off-chip channel (not
	// core compute) determined the barrier time.
	BandwidthBound bool
	// Stats is the summed active-core statistics delta attributed to this
	// phase (operations, traffic, stall cycles accumulated since the
	// previous barrier). Barrier-stall cycles recorded after a barrier
	// releases land in the *next* phase's delta; totals over all phases
	// plus the post-final-barrier tail reconcile exactly with TotalStats.
	Stats CoreStats
}

// Duration returns the phase length in cycles.
func (p PhaseRecord) Duration() float64 { return p.End - p.Start }

// Bound names what bound the phase, matching the registry metric names
// ("emu.phase.compute_bound" / "emu.phase.bandwidth_bound") and the obs
// span kinds ("phase.compute" / "phase.bandwidth").
func (p PhaseRecord) Bound() string {
	if p.BandwidthBound {
		return "bandwidth"
	}
	return "compute"
}

// Phases returns the per-phase trace of the most recent Run, one record
// per barrier.
func (ch *Chip) Phases() []PhaseRecord { return ch.trace }

// WritePhaseTable prints the phase trace as a table with a utilization bar
// (share of the phase the off-chip channel was busy). Zero-duration
// phases print "-" instead of a meaningless utilization, and the bar is
// clamped to its 20-character width.
func (ch *Chip) WritePhaseTable(w io.Writer) {
	fmt.Fprintf(w, "%5s %14s %14s %9s %10s  %s\n",
		"phase", "cycles", "ext busy", "ext util", "bound", "")
	for _, p := range ch.trace {
		utilCol, bar := "-", ""
		if d := p.Duration(); d > 0 {
			util := p.ExtBusy / d
			if util < 0 {
				util = 0
			}
			utilCol = fmt.Sprintf("%.0f%%", util*100)
			if util > 1 {
				util = 1
			}
			bar = strings.Repeat("#", int(util*20+0.5))
		}
		fmt.Fprintf(w, "%5d %14.0f %14.0f %9s %10s  %s\n",
			p.Index, p.Duration(), p.ExtBusy, utilCol, p.Bound(), bar)
	}
}
