package emu

import (
	"fmt"
	"sync"

	"sarmany/internal/fault"
	"sarmany/internal/machine"
	"sarmany/internal/obs"
	"sarmany/internal/sim"
)

// Chip is one simulated Epiphany device or eLink-bridged array of
// devices: a global grid of cores, their local memories, one off-chip
// SDRAM channel per chip, and external SDRAM. A Chip is single-shot:
// construct it, Run one workload, then read times and stats.
type Chip struct {
	P     Params
	Cores []*Core

	ext *machine.Bump // external SDRAM allocator (shared address space)

	// originRow/originCol cache the address-map placement of the grid
	// (see Params.meshOrigin) and gridRows/gridCols the global grid
	// dimensions, for the hot address-classification path.
	originRow, originCol int
	gridRows, gridCols   int

	// Barrier state for the active Run. chipBusy is resolvePhase's
	// per-chip channel accumulation scratch, reused across phases.
	active     int
	bar        *sim.Rendezvous
	barTimes   []float64
	barBusy    []float64
	chipBusy   []float64
	phaseStart float64
	trace      []PhaseRecord
	// phaseCum is the cumulative active-core stats at the end of the most
	// recently resolved phase; resolvePhase diffs against it to attribute
	// operation counts and traffic to individual phases.
	phaseCum CoreStats

	// ran is the core count of the most recent Run; Time, MaxCycles and
	// TotalStats aggregate only those cores so results of a narrower run
	// are not skewed by stale state from a wider earlier one.
	ran int

	links []*Link // every link Connect has created, for metrics

	// Event tracing (nil when disabled — the default).
	tracer     *obs.Tracer
	phaseTrack *obs.Track

	// Fault injection (nil when disabled — the default). remaps records
	// every work slot Assignments/RemapPlacement moved off a halted core.
	faults *fault.Injector
	remaps []Remap

	// Live-progress publication (nil when disabled — the default); see
	// progress.go.
	progress *progressState
}

// New constructs a chip with the given parameters.
func New(p Params) *Chip {
	if p.NumCores() < 1 {
		panic("emu: chip needs at least one core")
	}
	if p.NumBanks*p.BankBytes != p.LocalMemBytes {
		panic(fmt.Sprintf("emu: %d banks of %d bytes do not form %d bytes of local memory",
			p.NumBanks, p.BankBytes, p.LocalMemBytes))
	}
	// The global address map encodes 6-bit node coordinates; a grid that
	// cannot fit the coordinate space at all is rejected with the
	// historical message, and one that fits only on top of the external
	// window is rejected as a collision. meshOrigin keeps every grid that
	// fits the classic (firstMeshRow, firstMeshCol) placement there, so
	// historical addresses are unchanged.
	gR, gC := p.GridRows(), p.GridCols()
	oR, oC, ok := p.meshOrigin()
	if !ok {
		if gR > 64 || gC > 64 {
			panic(fmt.Sprintf("emu: %dx%d grid exceeds the 6-bit address map", gR, gC))
		}
		panic(fmt.Sprintf("emu: %dx%d grid cannot avoid the external-memory window of the address map", gR, gC))
	}
	ch := &Chip{
		P:         p,
		ext:       machine.NewBump(ExtBase, ExtSize),
		originRow: oR, originCol: oC,
		gridRows: gR, gridCols: gC,
		barTimes: make([]float64, p.NumCores()),
		barBusy:  make([]float64, p.NumCores()),
		chipBusy: make([]float64, p.NumChips()),
	}
	for r := 0; r < gR; r++ {
		for c := 0; c < gC; c++ {
			core := &Core{
				chip: ch,
				ID:   r*gC + c,
				Row:  r, Col: c,
				chipIdx: (r/p.Rows)*p.chipCols() + c/p.Cols,
				slow:    1,
				banks:   make([]*machine.Bump, p.NumBanks),
			}
			base := p.coreBase(r, c)
			for b := 0; b < p.NumBanks; b++ {
				core.banks[b] = machine.NewBump(base+uint32(b*p.BankBytes), p.BankBytes)
			}
			ch.Cores = append(ch.Cores, core)
		}
	}
	return ch
}

// Ext returns the external-SDRAM allocator. Buffers allocated here are
// charged off-chip access costs by every core.
func (ch *Chip) Ext() machine.Alloc { return ch.ext }

// SetTracer attaches (or with nil detaches) an event tracer: every core
// gets its own span track, plus one synthetic "phases" track carrying the
// barrier-phase classification. Attach before Run; the tracks may be
// exported once Run has returned. With no tracer attached the
// instrumentation is a no-op — it never changes modeled cycle counts
// either way, since it only observes timestamps.
func (ch *Chip) SetTracer(tr *obs.Tracer) {
	ch.tracer = tr
	if tr == nil {
		ch.phaseTrack = nil
		for _, c := range ch.Cores {
			c.tr = nil
			c.ftr = nil
		}
		return
	}
	if ch.P.NumChips() == 1 {
		tr.NameProcess(0, fmt.Sprintf("epiphany %dx%d", ch.P.Rows, ch.P.Cols))
	} else {
		tr.NameProcess(0, fmt.Sprintf("epiphany %dx%d chips of %dx%d",
			ch.P.chipRows(), ch.P.chipCols(), ch.P.Rows, ch.P.Cols))
	}
	ch.phaseTrack = tr.NewTrack(0, 0, "phases")
	for _, c := range ch.Cores {
		c.tr = tr.NewTrack(0, c.ID+1, fmt.Sprintf("core %d", c.ID))
	}
	ch.makeFaultTracks()
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (ch *Chip) Tracer() *obs.Tracer { return ch.tracer }

// Run executes fn concurrently on the first n cores (one goroutine per
// core) and waits for completion. Barriers inside fn synchronize exactly
// those n cores. n == 0 means all cores. Cores hard-halted by an attached
// fault plan never run and never join barriers; they stay in the
// aggregate views with zero stats. Kernels move the halted cores' work to
// live ones via Assignments/RemapPlacement before calling Run.
func (ch *Chip) Run(n int, fn func(c *Core)) {
	if n == 0 {
		n = len(ch.Cores)
	}
	if n < 1 || n > len(ch.Cores) {
		panic(fmt.Sprintf("emu: cannot run on %d of %d cores", n, len(ch.Cores)))
	}
	live := make([]*Core, 0, n)
	for i := 0; i < n; i++ {
		if ch.Alive(i) {
			live = append(live, ch.Cores[i])
		} else {
			// A halted core contributes nothing to the barrier settlement;
			// clear any state a previous wider run may have left behind.
			ch.barTimes[i] = 0
			ch.barBusy[i] = 0
		}
	}
	if len(live) == 0 {
		panic(fmt.Sprintf("emu: all %d cores of the run are halted by the fault plan", n))
	}
	ch.active = n
	ch.ran = n
	ch.bar = sim.NewRendezvous(len(live))
	ch.phaseStart = 0
	ch.phaseCum = ch.sumActiveStats()
	var wg sync.WaitGroup
	for _, c := range live {
		wg.Add(1)
		go func(c *Core) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		ch.Cores[i].commit()
	}
}

// Settle commits every core's pending dual-issue window so each core's
// Cycles() and Stats agree exactly. Run settles the cores it drove on
// return; Settle additionally covers kernels that drive cores directly
// (and is what the conformance checker calls before verifying the
// compute+stall cycle identity). Call only while no simulation goroutines
// are running.
func (ch *Chip) Settle() {
	for _, c := range ch.Cores {
		c.commit()
	}
}

// resolvePhase settles off-chip bandwidth contention for the phase that
// just ended: the barrier completes either when the slowest core finishes
// or when every chip's SDRAM channel has drained the traffic its cores
// offered during the phase, whichever is later. On a single chip this is
// exactly the historical shared-channel settlement.
func (ch *Chip) resolvePhase() {
	var maxFinish, totalBusy float64
	for k := range ch.chipBusy {
		ch.chipBusy[k] = 0
	}
	for i := 0; i < ch.active; i++ {
		if ch.barTimes[i] > maxFinish {
			maxFinish = ch.barTimes[i]
		}
		ch.chipBusy[ch.Cores[i].chipIdx] += ch.barBusy[i]
	}
	t := maxFinish
	bwBound := false
	for _, busy := range ch.chipBusy {
		totalBusy += busy
		if drain := ch.phaseStart + busy; drain > t {
			t = drain
			bwBound = true
		}
	}
	// Attribute the phase's operation counts and traffic: the other cores
	// are parked in the rendezvous with their windows committed, so their
	// Stats are safe to read here. Barrier-stall cycles are recorded after
	// the cores are released, so a phase's delta carries the *previous*
	// barrier's waits; totals over all phases still reconcile exactly.
	cum := ch.sumActiveStats()
	delta := SubStats(cum, ch.phaseCum)
	ch.phaseCum = cum
	rec := PhaseRecord{
		Index:          len(ch.trace),
		Start:          ch.phaseStart,
		End:            t,
		SlowestCore:    maxFinish,
		ExtBusy:        totalBusy,
		BandwidthBound: bwBound,
		Stats:          delta,
	}
	if len(ch.chipBusy) > 1 {
		rec.ExtBusyByChip = append([]float64(nil), ch.chipBusy...)
	}
	ch.trace = append(ch.trace, rec)
	kind := obs.KindPhaseCompute
	if bwBound {
		kind = obs.KindPhaseBandwidth
	}
	ch.phaseTrack.Span(kind, ch.phaseStart, t)
	ch.phaseStart = t
	ch.notePhase()
}

// sumActiveStats sums the stats of the active cores. It is called from
// the rendezvous resolution step, where every other participant is parked
// with its dual-issue window committed.
func (ch *Chip) sumActiveStats() CoreStats {
	var sum CoreStats
	for i := 0; i < ch.active; i++ {
		sum = AddStats(sum, ch.Cores[i].Stats)
	}
	return sum
}

// CoreTrack returns core i's event-trace track (nil when tracing is
// disabled) — the span stream consumers like internal/profile analyze.
func (ch *Chip) CoreTrack(i int) *obs.Track { return ch.Cores[i].tr }

// PhaseTrack returns the synthetic barrier-phase track (nil when tracing
// is disabled).
func (ch *Chip) PhaseTrack() *obs.Track { return ch.phaseTrack }

// LinkStat is the read-side view of one streaming link's occupancy after
// a run completes.
type LinkStat struct {
	From int `json:"from"`
	To   int `json:"to"`
	Hops int `json:"hops"`
	// Bridges counts the chip boundaries (eLink bridges) the link's XY
	// route crosses; zero on a single chip.
	Bridges int    `json:"bridges,omitempty"`
	Blocks  uint64 `json:"blocks"`
	Bytes   uint64 `json:"bytes"`
	// Recvs and RecvBytes are the consumer-side counts; a balanced run
	// drains every link, so they match Blocks and Bytes (the conformance
	// checker verifies exactly that).
	Recvs     uint64  `json:"recvs"`
	RecvBytes uint64  `json:"recv_bytes"`
	SendWait  float64 `json:"send_wait_cycles"` // producer back-pressure
	RecvWait  float64 `json:"recv_wait_cycles"` // consumer empty-buffer waits

	// Fault-injection accounting (all zero without an attached fault
	// plan). Retries counts retransmitted blocks, RetryBytes their payload
	// and RetryCycles the producer time they cost. WireBlocks/WireBytes
	// are the totals that actually crossed the mesh — delivered plus
	// retransmitted — so on a faulty link WireBytes ≥ RecvBytes (the
	// conformance checker verifies exactly that).
	Retries     uint64  `json:"retries,omitempty"`
	RetryBytes  uint64  `json:"retry_bytes,omitempty"`
	RetryCycles float64 `json:"retry_cycles,omitempty"`
	WireBlocks  uint64  `json:"wire_blocks"`
	WireBytes   uint64  `json:"wire_bytes"`
}

// LinkStats returns the occupancy of every link Connect has created, in
// creation order. Call only after Run has returned.
func (ch *Chip) LinkStats() []LinkStat {
	out := make([]LinkStat, 0, len(ch.links))
	for _, l := range ch.links {
		out = append(out, LinkStat{
			From: l.from.ID, To: l.to.ID, Hops: l.hops, Bridges: l.bridges,
			Blocks: l.sends, Bytes: l.bytes,
			Recvs: l.recvs, RecvBytes: l.recvBytes,
			SendWait: l.sendStall, RecvWait: l.recvStall,
			Retries: l.retries, RetryBytes: l.retryBytes, RetryCycles: l.retryCycles,
			WireBlocks: l.sends + l.retries, WireBytes: l.bytes + l.retryBytes,
		})
	}
	return out
}

// ActiveCount returns how many cores the aggregate views cover: the core
// count of the most recent Run, or the full mesh if Run has not been used
// (sequential kernels drive Cores[0] directly).
func (ch *Chip) ActiveCount() int { return len(ch.activeCores()) }

// activeCores returns the cores of the most recent Run, or all cores if
// Run has not been used (sequential kernels drive Cores[0] directly).
func (ch *Chip) activeCores() []*Core {
	if ch.ran > 0 {
		return ch.Cores[:ch.ran]
	}
	return ch.Cores
}

// Time returns the chip's execution time in seconds: the latest core
// finish time over the cores that ran.
func (ch *Chip) Time() float64 {
	return ch.MaxCycles() / ch.P.Clock
}

// MaxCycles returns the latest core finish time in cycles over the cores
// of the most recent Run.
func (ch *Chip) MaxCycles() float64 {
	var max float64
	for _, c := range ch.activeCores() {
		if t := c.Cycles(); t > max {
			max = t
		}
	}
	return max
}

// Link is a one-way streaming connection between two cores, modelling the
// paper's MPMD dataflow style: the producer writes blocks into the
// consumer's local memory with posted writes and sets a flag; the consumer
// polls the flag and reads locally. Capacity is the number of blocks that
// fit in the consumer-side buffer before the producer back-pressures.
type Link struct {
	ch       *sim.Chan[[]complex64]
	from, to *Core
	hops     int
	bridges  int // chip boundaries (eLink bridges) the route crosses

	// Occupancy statistics. sends/bytes/sendStall are written only by the
	// producer core's goroutine, recvs/recvBytes/recvStall only by the
	// consumer's; read them after the Run completes.
	sends, recvs uint64
	bytes        uint64
	recvBytes    uint64
	sendStall    float64 // producer cycles lost to back-pressure
	recvStall    float64 // consumer cycles waiting for a block

	// Fault-injection counters, written only by the producer core's
	// goroutine (like sends/bytes/sendStall).
	retries     uint64
	retryBytes  uint64
	retryCycles float64
}

// Connect creates a link from core `from` to core `to` with the given
// block capacity.
func (ch *Chip) Connect(from, to, capacity int) *Link {
	f, t := ch.Cores[from], ch.Cores[to]
	l := &Link{
		ch:      sim.NewChan[[]complex64](capacity),
		from:    f,
		to:      t,
		hops:    abs(f.Row-t.Row) + abs(f.Col-t.Col),
		bridges: ch.P.bridgesBetween(f.Row, f.Col, t.Row, t.Col),
	}
	ch.links = append(ch.links, l)
	return l
}

// transit returns the one-way mesh traversal latency of an n-byte block
// on the link: one RemoteHopCycles per grid hop, one ELinkHopCycles per
// chip boundary, plus the serialization of the payload.
func (l *Link) transit(n int) float64 {
	p := &l.from.chip.P
	return float64(l.hops)*p.RemoteHopCycles + float64(l.bridges)*p.ELinkHopCycles +
		words(n)*8/p.NoCBytesPerCycle
}

// Send streams vals over the link. It must be called by the link's
// producer core. The producer pays the posted-write issue cycles; the
// block becomes visible to the consumer after the mesh traversal latency.
// If the consumer-side buffer is full the producer blocks until a slot
// frees (and its clock advances accordingly).
func (l *Link) Send(c *Core, vals []complex64) {
	if c != l.from {
		panic("emu: Send from wrong core")
	}
	n := len(vals) * 8
	// Issue cycles: one double word per cycle into the mesh, plus the
	// flag write.
	c.ialu += words(n) + 1
	c.commit()
	// Injected link faults: the block may be lost en route; the producer
	// times out, backs off, and retransmits before the delivery below.
	l.injectSendFaults(c, n)
	dur := l.transit(n)
	block := append([]complex64(nil), vals...)
	before := c.now
	c.now = l.ch.Send(c.now, block, dur)
	c.noteStall(obs.KindStallLink, before, c.now)
	if c.now > before {
		// Back-pressure: the producer waited for the consumer to free a
		// slot at c.now — a dependency edge for critical-path analysis.
		c.tr.Dep(l.to.tr, c.now, c.now)
	}
	l.sendStall += c.now - before
	l.sends++
	l.bytes += uint64(n)
	c.Stats.RemoteWrites++
	c.Stats.NoCBytes += uint64(n)
}

// Recv receives the next block. It must be called by the link's consumer
// core; the consumer's clock advances to the block arrival time plus the
// flag-poll and local reads.
func (l *Link) Recv(c *Core) []complex64 {
	if c != l.to {
		panic("emu: Recv from wrong core")
	}
	c.ialu += 2 // flag poll + clear
	c.commit()
	v, now := l.ch.Recv(c.now)
	if now > c.now {
		before := c.now
		c.now = now
		c.noteStall(obs.KindStallLink, before, c.now)
		// The block that unblocked the consumer left the producer one
		// mesh traversal earlier; record the handoff edge so the critical
		// path can continue on the producer.
		c.tr.Dep(l.from.tr, now-l.transit(len(v)*8), now)
		l.recvStall += c.now - before
	}
	l.recvs++
	n := len(v) * 8
	l.recvBytes += uint64(n)
	// Local reads of the delivered block: the consumer loads one double
	// word per access at the configured local-access cost, counted per
	// access — the same price and convention Load charges a kernel reading
	// the block element-wise.
	nw := (n + 7) / 8
	c.ialu += float64(nw) * c.chip.P.LocalAccessCycles
	c.Stats.LocalLoads += uint64(nw)
	return v
}
