package emu

import (
	"testing"

	"sarmany/internal/machine"
)

// mustBuf allocates or fails the test.
func mustBuf(t *testing.T, a machine.Alloc, n int) *machine.BufC {
	t.Helper()
	b, err := machine.NewBufC(a, n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDMAExtWriteIsPosted pins the accounting of an external-write DMA:
// a local→SDRAM descriptor is a posted write, so it streams at channel
// bandwidth with NO read round-trip latency, and it must land in the
// write counters, not the read ones. (Regression: ext DMA writes were
// charged ExtReadLatency and booked as ExtReads/ExtReadB.)
func TestDMAExtWriteIsPosted(t *testing.T) {
	const elems = 128 // 1024 bytes
	p := E16G3()
	ch := New(p)
	c := ch.Cores[0]
	local := mustBuf(t, c.Bank(2), elems)
	ext := mustBuf(t, ch.Ext(), elems)

	c.DMAWait(c.DMACopyC(ext, 0, local, 0, elems))

	want := p.DMASetupCycles + 8*elems/p.ExtBytesPerCycle // 40 + 1024
	if got := c.Cycles(); got != want {
		t.Errorf("posted ext-write DMA took %v cycles, want %v (no read latency)", got, want)
	}
	s := c.Stats
	if s.ExtWrites != 1 || s.ExtWriteB != 8*elems {
		t.Errorf("ext writes %d/%dB, want 1/%dB", s.ExtWrites, s.ExtWriteB, 8*elems)
	}
	if s.ExtReads != 0 || s.ExtReadB != 0 {
		t.Errorf("ext reads %d/%dB, want none — this is a write", s.ExtReads, s.ExtReadB)
	}
	if s.DMATransfers != 1 || s.DMABytes != 8*elems {
		t.Errorf("dma %d/%dB, want 1/%dB", s.DMATransfers, s.DMABytes, 8*elems)
	}
	// The write still owes the shared channel its service time: the next
	// barrier must drain it.
	if c.extBusy != 8*elems/p.ExtBytesPerCycle {
		t.Errorf("extBusy %v, want %v", c.extBusy, 8*elems/p.ExtBytesPerCycle)
	}
}

// TestDMAExtReadUnchanged pins the read direction alongside the write
// fix: SDRAM→local keeps the full round-trip latency and read counters.
func TestDMAExtReadUnchanged(t *testing.T) {
	const elems = 128
	p := E16G3()
	ch := New(p)
	c := ch.Cores[0]
	local := mustBuf(t, c.Bank(2), elems)
	ext := mustBuf(t, ch.Ext(), elems)

	c.DMAWait(c.DMACopyC(local, 0, ext, 0, elems))

	want := p.DMASetupCycles + p.ExtReadLatency + 8*elems/p.ExtBytesPerCycle
	if got := c.Cycles(); got != want {
		t.Errorf("ext-read DMA took %v cycles, want %v", got, want)
	}
	s := c.Stats
	if s.ExtReads != 1 || s.ExtReadB != 8*elems {
		t.Errorf("ext reads %d/%dB, want 1/%dB", s.ExtReads, s.ExtReadB, 8*elems)
	}
	if s.ExtWrites != 0 || s.ExtWriteB != 0 {
		t.Errorf("ext writes %d/%dB, want none", s.ExtWrites, s.ExtWriteB)
	}
}

// TestDMAInterCorePricesDistance pins the mesh-hop term of inter-core
// DMA: a transfer to the far corner of the 4x4 mesh costs six hops'
// round trip more than a neighbour transfer of the same size.
// (Regression: inter-core DMA ignored mesh distance entirely.)
func TestDMAInterCorePricesDistance(t *testing.T) {
	const elems = 64 // 512 bytes
	p := E16G3()
	run := func(peer int) (float64, CoreStats) {
		ch := New(p)
		c := ch.Cores[0]
		local := mustBuf(t, c.Bank(2), elems)
		far := mustBuf(t, ch.Cores[peer].Bank(0), elems)
		c.DMAWait(c.DMACopyC(local, 0, far, 0, elems))
		return c.Cycles(), c.Stats
	}

	base := p.DMASetupCycles + p.RemoteReadBase + 8*elems/p.DMABytesPerCycle
	nearCy, nearSt := run(1) // (0,0)->(0,1): 1 hop
	if want := base + 2*1*p.RemoteHopCycles; nearCy != want {
		t.Errorf("1-hop DMA took %v cycles, want %v", nearCy, want)
	}
	farCy, farSt := run(15) // (0,0)->(3,3): 6 hops
	if want := base + 2*6*p.RemoteHopCycles; farCy != want {
		t.Errorf("6-hop DMA took %v cycles, want %v", farCy, want)
	}
	if farCy <= nearCy {
		t.Errorf("distance is free: far %v <= near %v cycles", farCy, nearCy)
	}
	for _, s := range []CoreStats{nearSt, farSt} {
		if s.NoCBytes != 8*elems {
			t.Errorf("NoCBytes %d, want %d (mesh traffic must be booked)", s.NoCBytes, 8*elems)
		}
		if s.ExtReads != 0 || s.ExtWrites != 0 {
			t.Errorf("inter-core DMA booked ext traffic: %d reads, %d writes", s.ExtReads, s.ExtWrites)
		}
	}
}

// TestMeshDist pins the XY-route distance helper on the E16G3 map.
func TestMeshDist(t *testing.T) {
	ch := New(E16G3())
	for _, tc := range []struct {
		a, b int
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 15, 6}, {3, 12, 6}, {5, 10, 2},
	} {
		ba := mustBuf(t, ch.Cores[tc.a].Bank(0), 1)
		bb := mustBuf(t, ch.Cores[tc.b].Bank(0), 1)
		if got, bridges := ch.P.dist(ba.Addr, bb.Addr); got != tc.want || bridges != 0 {
			t.Errorf("dist(core%d, core%d) = %d hops, %d bridges, want %d hops on one chip",
				tc.a, tc.b, got, bridges, tc.want)
		}
	}
}

// TestLinkRecvChargesLocalReads pins the consumer-side accounting of a
// streaming-link receive: reading a w-word block out of the local
// mailbox costs w*LocalAccessCycles and books w LocalLoads — the same
// convention as Load. (Regression: Recv charged a flat 2 cycles per
// word-batch regardless of LocalAccessCycles and booked a single
// LocalLoads per block.)
func TestLinkRecvChargesLocalReads(t *testing.T) {
	const w = 16 // words per block
	run := func(lac float64) (recvLoads uint64, consumerCycles float64) {
		p := E16G3()
		p.LocalAccessCycles = lac
		ch := New(p)
		l := ch.Connect(0, 1, 1)
		ch.Run(2, func(c *Core) {
			if c.ID == 0 {
				l.Send(c, make([]complex64, w))
			} else {
				l.Recv(c)
			}
		})
		return ch.Cores[1].Stats.LocalLoads, ch.Cores[1].Cycles()
	}

	loads1, cy1 := run(1)
	if loads1 != w {
		t.Errorf("receive of a %d-word block booked %d LocalLoads, want %d", w, loads1, w)
	}
	loads2, cy2 := run(2)
	if loads2 != w {
		t.Errorf("LocalLoads %d under LAC=2, want %d (count is per word, not per cycle)", loads2, w)
	}
	// Doubling the local access cost adds exactly w cycles to the consumer.
	if got, want := cy2-cy1, float64(w); got != want {
		t.Errorf("LAC 1->2 changed consumer clock by %v cycles, want %v "+
			"(Recv must price the local read at LocalAccessCycles)", got, want)
	}
}

// TestLinkStatsBalance pins the producer/consumer byte accounting the
// conformance checker's link.balance invariant relies on.
func TestLinkStatsBalance(t *testing.T) {
	const blocks, w = 5, 8
	ch := New(E16G3())
	l := ch.Connect(0, 1, 2)
	ch.Run(2, func(c *Core) {
		for i := 0; i < blocks; i++ {
			if c.ID == 0 {
				l.Send(c, make([]complex64, w))
			} else {
				l.Recv(c)
			}
		}
	})
	ls := ch.LinkStats()
	if len(ls) != 1 {
		t.Fatalf("%d link stats", len(ls))
	}
	s := ls[0]
	if s.Blocks != blocks || s.Recvs != blocks {
		t.Errorf("blocks sent %d / received %d, want %d each", s.Blocks, s.Recvs, blocks)
	}
	if s.Bytes != 8*w*blocks || s.RecvBytes != 8*w*blocks {
		t.Errorf("bytes sent %d / received %d, want %d each", s.Bytes, s.RecvBytes, 8*w*blocks)
	}
}
