package emu

import (
	"fmt"

	"sarmany/internal/obs"
)

// coreStatFields is the single source of truth binding CoreStats fields to
// registry metric names: Metrics publishes through it and TotalStats reads
// the summed counters back, so the struct view and the registry view
// cannot drift apart.
var coreStatFields = []struct {
	name string
	get  func(*CoreStats) float64
	set  func(*CoreStats, float64)
}{
	{"ops.fma", func(s *CoreStats) float64 { return float64(s.FMA) }, func(s *CoreStats, v float64) { s.FMA = uint64(v) }},
	{"ops.flop", func(s *CoreStats) float64 { return float64(s.Flop) }, func(s *CoreStats, v float64) { s.Flop = uint64(v) }},
	{"ops.iop", func(s *CoreStats) float64 { return float64(s.IOp) }, func(s *CoreStats, v float64) { s.IOp = uint64(v) }},
	{"ops.div", func(s *CoreStats) float64 { return float64(s.Div) }, func(s *CoreStats, v float64) { s.Div = uint64(v) }},
	{"ops.sqrt", func(s *CoreStats) float64 { return float64(s.Sqrt) }, func(s *CoreStats, v float64) { s.Sqrt = uint64(v) }},
	{"ops.trig", func(s *CoreStats) float64 { return float64(s.Trig) }, func(s *CoreStats, v float64) { s.Trig = uint64(v) }},
	{"mem.local_loads", func(s *CoreStats) float64 { return float64(s.LocalLoads) }, func(s *CoreStats, v float64) { s.LocalLoads = uint64(v) }},
	{"mem.local_stores", func(s *CoreStats) float64 { return float64(s.LocalStores) }, func(s *CoreStats, v float64) { s.LocalStores = uint64(v) }},
	{"mem.remote_reads", func(s *CoreStats) float64 { return float64(s.RemoteReads) }, func(s *CoreStats, v float64) { s.RemoteReads = uint64(v) }},
	{"mem.remote_writes", func(s *CoreStats) float64 { return float64(s.RemoteWrites) }, func(s *CoreStats, v float64) { s.RemoteWrites = uint64(v) }},
	{"mem.ext_reads", func(s *CoreStats) float64 { return float64(s.ExtReads) }, func(s *CoreStats, v float64) { s.ExtReads = uint64(v) }},
	{"mem.ext_writes", func(s *CoreStats) float64 { return float64(s.ExtWrites) }, func(s *CoreStats, v float64) { s.ExtWrites = uint64(v) }},
	{"mem.ext_read_bytes", func(s *CoreStats) float64 { return float64(s.ExtReadB) }, func(s *CoreStats, v float64) { s.ExtReadB = uint64(v) }},
	{"mem.ext_write_bytes", func(s *CoreStats) float64 { return float64(s.ExtWriteB) }, func(s *CoreStats, v float64) { s.ExtWriteB = uint64(v) }},
	{"noc.bytes", func(s *CoreStats) float64 { return float64(s.NoCBytes) }, func(s *CoreStats, v float64) { s.NoCBytes = uint64(v) }},
	{"dma.transfers", func(s *CoreStats) float64 { return float64(s.DMATransfers) }, func(s *CoreStats, v float64) { s.DMATransfers = uint64(v) }},
	{"dma.bytes", func(s *CoreStats) float64 { return float64(s.DMABytes) }, func(s *CoreStats, v float64) { s.DMABytes = uint64(v) }},
	{"barrier.waits", func(s *CoreStats) float64 { return float64(s.BarrierWaits) }, func(s *CoreStats, v float64) { s.BarrierWaits = uint64(v) }},
	{"cycles.stall", func(s *CoreStats) float64 { return s.StallCycles }, func(s *CoreStats, v float64) { s.StallCycles = v }},
	{"cycles.compute", func(s *CoreStats) float64 { return s.ComputeCycles }, func(s *CoreStats, v float64) { s.ComputeCycles = v }},
	{"cycles.stall.read", func(s *CoreStats) float64 { return s.ReadStallCycles }, func(s *CoreStats, v float64) { s.ReadStallCycles = v }},
	{"cycles.stall.ext", func(s *CoreStats) float64 { return s.ExtStallCycles }, func(s *CoreStats, v float64) { s.ExtStallCycles = v }},
	{"cycles.stall.dma", func(s *CoreStats) float64 { return s.DMAStallCycles }, func(s *CoreStats, v float64) { s.DMAStallCycles = v }},
	{"cycles.stall.link", func(s *CoreStats) float64 { return s.LinkStallCycles }, func(s *CoreStats, v float64) { s.LinkStallCycles = v }},
	{"cycles.stall.barrier", func(s *CoreStats) float64 { return s.BarrierStallCycles }, func(s *CoreStats, v float64) { s.BarrierStallCycles = v }},
	{"fault.link_retries", func(s *CoreStats) float64 { return float64(s.LinkRetries) }, func(s *CoreStats, v float64) { s.LinkRetries = uint64(v) }},
	{"fault.dma_retries", func(s *CoreStats) float64 { return float64(s.DMARetries) }, func(s *CoreStats, v float64) { s.DMARetries = uint64(v) }},
	{"fault.retry_bytes", func(s *CoreStats) float64 { return float64(s.RetryBytes) }, func(s *CoreStats, v float64) { s.RetryBytes = uint64(v) }},
	{"fault.link_retry_cycles", func(s *CoreStats) float64 { return s.LinkRetryCycles }, func(s *CoreStats, v float64) { s.LinkRetryCycles = v }},
	{"fault.dma_retry_cycles", func(s *CoreStats) float64 { return s.DMARetryCycles }, func(s *CoreStats, v float64) { s.DMARetryCycles = v }},
	{"fault.derate_cycles", func(s *CoreStats) float64 { return s.DerateCycles }, func(s *CoreStats, v float64) { s.DerateCycles = v }},
}

// VisitStats calls fn for every published statistic of s with its metric
// name (e.g. "mem.local_loads"), in the metric table's order. It exposes
// the same single-source field list Metrics, AddStats and SubStats use,
// so external consumers — the conformance checker reconciling per-phase
// deltas against totals — iterate the full struct without maintaining a
// field list that could drift.
func VisitStats(s CoreStats, fn func(name string, value float64)) {
	for _, f := range coreStatFields {
		fn(f.name, f.get(&s))
	}
}

// AddStats returns the field-wise sum a+b over every published statistic,
// using the same field table as Metrics so new counters cannot be missed.
func AddStats(a, b CoreStats) CoreStats {
	var out CoreStats
	for _, f := range coreStatFields {
		f.set(&out, f.get(&a)+f.get(&b))
	}
	return out
}

// SubStats returns the field-wise difference a-b — the per-phase deltas
// internal/profile attributes energy to.
func SubStats(a, b CoreStats) CoreStats {
	var out CoreStats
	for _, f := range coreStatFields {
		f.set(&out, f.get(&a)-f.get(&b))
	}
	return out
}

// stallHistograms maps per-cause stall metric names to the CoreStats field
// feeding the per-core distribution histograms.
var stallHistograms = []struct {
	name string
	get  func(*CoreStats) float64
}{
	{"read", func(s *CoreStats) float64 { return s.ReadStallCycles }},
	{"ext", func(s *CoreStats) float64 { return s.ExtStallCycles }},
	{"dma", func(s *CoreStats) float64 { return s.DMAStallCycles }},
	{"link", func(s *CoreStats) float64 { return s.LinkStallCycles }},
	{"barrier", func(s *CoreStats) float64 { return s.BarrierStallCycles }},
}

// Metrics publishes the state of the most recent run into a fresh
// registry: summed operation/traffic counters over the active cores
// ("emu.ops.*", "emu.mem.*", ...), per-core distribution histograms of
// cycles and per-cause stalls, the phase classification and ext-channel
// utilization ("emu.phase.*"), and per-link occupancy ("emu.link.*").
func (ch *Chip) Metrics() *obs.Registry {
	reg := obs.NewRegistry()
	cores := ch.activeCores()
	for _, f := range coreStatFields {
		ctr := reg.Counter("emu." + f.name)
		for _, c := range cores {
			ctr.Add(f.get(&c.Stats))
		}
	}
	cyc := reg.Histogram("emu.core.cycles")
	for _, c := range cores {
		cyc.Observe(c.Cycles())
	}
	for _, sh := range stallHistograms {
		h := reg.Histogram("emu.core.stall." + sh.name)
		for _, c := range cores {
			h.Observe(sh.get(&c.Stats))
		}
	}

	reg.Gauge("emu.cores.active").Set(float64(len(cores)))
	reg.Gauge("emu.phase.count").Set(float64(len(ch.trace)))
	if len(ch.trace) > 0 {
		util := reg.Histogram("emu.phase.ext_util")
		for _, p := range ch.trace {
			if d := p.Duration(); d > 0 {
				util.Observe(p.ExtBusy / d)
			}
			if p.BandwidthBound {
				reg.Counter("emu.phase.bandwidth_bound").Add(1)
			} else {
				reg.Counter("emu.phase.compute_bound").Add(1)
			}
			reg.Counter("emu.phase.ext_busy_cycles").Add(p.ExtBusy)
		}
	}

	for _, l := range ch.links {
		p := fmt.Sprintf("emu.link.%d->%d.", l.from.ID, l.to.ID)
		reg.Counter(p + "blocks").Add(float64(l.sends))
		reg.Counter(p + "bytes").Add(float64(l.bytes))
		reg.Counter(p + "send_stall_cycles").Add(l.sendStall)
		reg.Counter(p + "recv_stall_cycles").Add(l.recvStall)
		if l.retries > 0 {
			reg.Counter(p + "retries").Add(float64(l.retries))
			reg.Counter(p + "retry_bytes").Add(float64(l.retryBytes))
			reg.Counter(p + "retry_cycles").Add(l.retryCycles)
		}
	}

	if ch.faults != nil {
		reg.Gauge("emu.fault.halted_cores").Set(float64(len(ch.faults.HaltedCores())))
		reg.Gauge("emu.fault.remapped_slots").Set(float64(len(ch.remaps)))
	}
	return reg
}

// TotalStats sums the per-core statistics of the cores that ran. It is a
// registry-backed view: the totals are read back from the summed counters
// Metrics publishes, keeping the struct API and the metric names
// consistent by construction.
func (ch *Chip) TotalStats() CoreStats {
	reg := obs.NewRegistry()
	cores := ch.activeCores()
	for _, f := range coreStatFields {
		ctr := reg.Counter("emu." + f.name)
		for _, c := range cores {
			ctr.Add(f.get(&c.Stats))
		}
	}
	var s CoreStats
	for _, f := range coreStatFields {
		f.set(&s, reg.Counter("emu."+f.name).Value())
	}
	return s
}
