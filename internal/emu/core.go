package emu

import (
	"fmt"
	"sync/atomic"

	"sarmany/internal/machine"
	"sarmany/internal/obs"
)

// CoreStats accumulates the operation counts and traffic of one core.
type CoreStats struct {
	FMA, Flop, IOp      uint64
	Div, Sqrt, Trig     uint64
	LocalLoads          uint64
	LocalStores         uint64
	RemoteReads         uint64
	RemoteWrites        uint64
	ExtReads, ExtWrites uint64
	ExtReadB, ExtWriteB uint64
	NoCBytes            uint64
	DMATransfers        uint64
	DMABytes            uint64
	BarrierWaits        uint64
	StallCycles         float64 // cycles spent stalled on reads/DMA/links
	ComputeCycles       float64 // cycles from the dual-issue pipes

	// Per-cause breakdown of StallCycles, named after the obs span kinds:
	// stalling remote reads, stalling off-chip reads, DMA completion
	// waits, link back-pressure/empty waits, and barrier waits (including
	// the off-chip drain the barrier settles).
	ReadStallCycles    float64
	ExtStallCycles     float64
	DMAStallCycles     float64
	LinkStallCycles    float64
	BarrierStallCycles float64

	// Fault-injection accounting (all zero without an attached fault
	// plan). LinkRetries/RetryBytes count retransmitted link blocks and
	// their payload; LinkRetryCycles is the producer time those retries
	// cost (timeout + backoff stalls plus re-issue cycles, a subset of
	// LinkStallCycles + ComputeCycles). DMARetries/DMARetryCycles count
	// injected DMA completion timeouts and the extra engine time they add.
	// DerateCycles is the extra compute time a frequency-derated core
	// spent (a subset of ComputeCycles).
	LinkRetries     uint64
	DMARetries      uint64
	RetryBytes      uint64
	LinkRetryCycles float64
	DMARetryCycles  float64
	DerateCycles    float64
}

// addStall accumulates cy stall cycles under the given cause.
func (s *CoreStats) addStall(kind obs.Kind, cy float64) {
	s.StallCycles += cy
	switch kind {
	case obs.KindStallRead:
		s.ReadStallCycles += cy
	case obs.KindStallExt:
		s.ExtStallCycles += cy
	case obs.KindStallDMA:
		s.DMAStallCycles += cy
	case obs.KindStallLink:
		s.LinkStallCycles += cy
	case obs.KindStallBarrier:
		s.BarrierStallCycles += cy
	}
}

// Core is one Epiphany processor tile: a dual-issue core (FPU + integer
// ALU), its banked local memory, and its DMA engine. Core implements
// machine.Machine.
type Core struct {
	chip *Chip
	ID   int
	// Row, Col are the core's position on the global grid of the whole
	// array (identical to the chip mesh position on a single chip).
	Row, Col int
	// chipIdx is the chip (row-major over the chip array) hosting this
	// core; its SDRAM channel serves the core's external accesses.
	chipIdx int

	now  float64 // committed local time, cycles
	fpu  float64 // pending FPU-pipe cycles since last commit
	ialu float64 // pending IALU-pipe cycles since last commit

	extBusy float64 // off-chip channel service cycles consumed this phase
	dmaLast float64 // completion time of the most recently issued DMA

	banks []*machine.Bump

	// tr is the core's event-trace sink; nil (the default) disables
	// tracing and every recording call is a free no-op. ftr is the
	// separate fault-event track, created only when both a tracer and a
	// non-empty fault plan are attached.
	tr  *obs.Track
	ftr *obs.Track

	// slow is the frequency-derating factor from the attached fault plan:
	// every committed dual-issue window is stretched by it. 1 (the
	// default) leaves the commit arithmetic untouched.
	slow float64

	// prog is the core's progress cell (see progress.go); nil (the
	// default) disables publication and every noteProgress is a no-op.
	prog *atomic.Uint64

	Stats CoreStats
}

var _ machine.Machine = (*Core)(nil)

// commit folds the pending dual-issue window into the committed time. The
// two pipes issue in parallel (one FPU instruction and one IALU/load-store
// instruction per cycle), so the window costs the maximum of the two
// accumulations.
func (c *Core) commit() {
	d := c.fpu
	if c.ialu > d {
		d = c.ialu
	}
	if c.slow != 1 {
		// Frequency derating stretches the committed window; the extra
		// time stays inside ComputeCycles (so the compute+stall cycle
		// identity is untouched) and is attributed in DerateCycles.
		s := d * c.slow
		c.Stats.DerateCycles += s - d
		d = s
	}
	c.now += d
	c.Stats.ComputeCycles += d
	c.fpu, c.ialu = 0, 0
	if d > 0 {
		c.tr.Span(obs.KindCompute, c.now-d, c.now)
		c.noteProgress()
	}
}

func (c *Core) stall(cycles float64, kind obs.Kind) {
	c.commit()
	c.now += cycles
	c.Stats.addStall(kind, cycles)
	c.tr.Span(kind, c.now-cycles, c.now)
	c.noteProgress()
}

// noteStall records that the core's clock was advanced from `from` to
// `to` by an external completion (DMA, link, barrier) and attributes the
// gap to the given cause. A non-positive gap records nothing.
func (c *Core) noteStall(kind obs.Kind, from, to float64) {
	if to <= from {
		return
	}
	c.Stats.addStall(kind, to-from)
	c.tr.Span(kind, from, to)
	c.noteProgress()
}

// FMA charges n fused multiply-adds: one FPU cycle each.
func (c *Core) FMA(n int) { c.fpu += float64(n); c.Stats.FMA += uint64(n) }

// Flop charges n other floating-point operations: one FPU cycle each.
func (c *Core) Flop(n int) { c.fpu += float64(n); c.Stats.Flop += uint64(n) }

// IOp charges n integer/address operations on the IALU pipe.
func (c *Core) IOp(n int) { c.ialu += float64(n); c.Stats.IOp += uint64(n) }

// Div charges n software floating-point divides.
func (c *Core) Div(n int) {
	c.fpu += float64(n * c.chip.P.DivFlops)
	c.Stats.Div += uint64(n)
}

// Sqrt charges n software square roots (the paper's "less
// compute-intensive implementation of the square root operation").
func (c *Core) Sqrt(n int) {
	c.fpu += float64(n * c.chip.P.SqrtFlops)
	c.Stats.Sqrt += uint64(n)
}

// Trig charges n software trigonometric evaluations.
func (c *Core) Trig(n int) {
	c.fpu += float64(n * c.chip.P.TrigFlops)
	c.Stats.Trig += uint64(n)
}

// words returns the number of 64-bit transfers needed for n bytes.
func words(n int) float64 { return float64((n + 7) / 8) }

// Load charges a read of n bytes at addr. Local reads cost one IALU-pipe
// cycle per double word; reads from another core's memory or from external
// SDRAM stall the core for the full round trip — the asymmetry the paper
// highlights ("writing has a single cycle throughput whereas the memory
// read operation is more expensive due to stalling").
func (c *Core) Load(addr uint32, n int) {
	switch loc, hops, bridges := c.classify(addr); loc {
	case locLocal:
		c.ialu += words(n) * c.chip.P.LocalAccessCycles
		c.Stats.LocalLoads++
	case locRemote:
		p := &c.chip.P
		c.stall(p.RemoteReadBase+2*float64(hops)*p.RemoteHopCycles+2*float64(bridges)*p.ELinkHopCycles+
			words(n)*8/p.NoCBytesPerCycle, obs.KindStallRead)
		c.Stats.RemoteReads++
		c.Stats.NoCBytes += uint64(n)
	case locExt:
		p := &c.chip.P
		service := float64(n) / c.extBW()
		c.stall(p.ExtReadLatency+service, obs.KindStallExt)
		c.extBusy += service
		c.Stats.ExtReads++
		c.Stats.ExtReadB += uint64(n)
	}
}

// Store charges a write of n bytes at addr. All writes are posted: local
// stores cost one IALU cycle per double word; remote and external writes
// cost only their issue cycles, with the consumed off-chip bandwidth
// settled at the next barrier by the contention model.
func (c *Core) Store(addr uint32, n int) {
	switch loc, _, _ := c.classify(addr); loc {
	case locLocal:
		c.ialu += words(n) * c.chip.P.LocalAccessCycles
		c.Stats.LocalStores++
	case locRemote:
		c.ialu += words(n) * 8 / c.chip.P.NoCBytesPerCycle
		c.Stats.RemoteWrites++
		c.Stats.NoCBytes += uint64(n)
	case locExt:
		c.ialu += words(n) * 8 / c.chip.P.NoCBytesPerCycle
		c.extBusy += float64(n) / c.extBW()
		c.Stats.ExtWrites++
		c.Stats.ExtWriteB += uint64(n)
	}
}

// Cycles returns the core's elapsed cycles including the pending
// dual-issue window.
func (c *Core) Cycles() float64 {
	d := c.fpu
	if c.ialu > d {
		d = c.ialu
	}
	if c.slow != 1 {
		d *= c.slow
	}
	return c.now + d
}

// ClockHz returns the core clock frequency.
func (c *Core) ClockHz() float64 { return c.chip.P.Clock }

type location int

const (
	locLocal location = iota
	locRemote
	locExt
)

// tileOf returns the global grid coordinates encoded in a core-mapped
// address, using the chip's cached address-map origin (not validated
// against the configured grid).
func (ch *Chip) tileOf(addr uint32) (row, col int) {
	id := addr >> 20
	return int(id>>6) - ch.originRow, int(id&0x3f) - ch.originCol
}

// classify maps a global address to local / remote-core / external, and
// for remote addresses returns the Manhattan hop count of the XY route
// plus the number of chip boundaries (eLink bridges) it crosses.
func (c *Core) classify(addr uint32) (location, int, int) {
	if addr >= ExtBase && addr < ExtBase+ExtSize {
		return locExt, 0, 0
	}
	row, col := c.chip.tileOf(addr)
	if row < 0 || row >= c.chip.gridRows || col < 0 || col >= c.chip.gridCols {
		panic(fmt.Sprintf("emu: address %#x maps to no core or external region", addr))
	}
	if int(addr&0xfffff) >= c.chip.P.LocalMemBytes {
		panic(fmt.Sprintf("emu: address %#x beyond local memory of core (%d,%d)", addr, row, col))
	}
	if row == c.Row && col == c.Col {
		return locLocal, 0, 0
	}
	return locRemote, abs(row-c.Row) + abs(col-c.Col),
		c.chip.P.bridgesBetween(row, col, c.Row, c.Col)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Bank returns the allocator of local-memory bank b (0-based). The paper's
// FFBP kernel stores subaperture data in "the two upper data banks" —
// banks 2 and 3 here.
func (c *Core) Bank(b int) machine.Alloc {
	if b < 0 || b >= len(c.banks) {
		panic(fmt.Sprintf("emu: core has no bank %d", b))
	}
	return c.banks[b]
}

// DMA is a handle for an in-flight DMA transfer.
type DMA struct {
	done float64
}

// dmaStart computes the timing of a DMA transfer of n bytes. extRead and
// extWrite say whether the source and destination, respectively, are in
// external memory; hops is the XY-route Manhattan distance between the
// two tiles of an intercore transfer and bridges the chip boundaries the
// route crosses. The engine processes one descriptor at a time, so a new
// transfer starts after the previous one completes.
//
// Off-chip transfers keep the read/write asymmetry the paper highlights:
// a read burst pays the eLink+SDRAM round-trip latency before the bytes
// stream back, while a write burst is posted — the engine only streams
// the bytes out, and the consumed channel bandwidth is settled at the
// next barrier by the contention model.
func (c *Core) dmaStart(n int, extRead, extWrite bool, hops, bridges int) DMA {
	c.ialu += c.chip.P.DMASetupCycles
	c.commit()
	start := c.now
	if c.dmaLast > start {
		start = c.dmaLast
	}
	p := &c.chip.P
	var dur float64
	if extRead || extWrite {
		service := float64(n) / c.extBW()
		if extRead {
			dur += p.ExtReadLatency + service
			c.extBusy += service
		}
		if extWrite {
			dur += service
			c.extBusy += service
		}
	} else {
		dur = p.RemoteReadBase + 2*float64(hops)*p.RemoteHopCycles +
			2*float64(bridges)*p.ELinkHopCycles + float64(n)/p.DMABytesPerCycle
		c.Stats.NoCBytes += uint64(n)
	}
	if extra := c.injectDMAFaults(); extra > 0 {
		// Injected completion timeouts delay the descriptor's finish; the
		// cost surfaces as DMA-wait stall only if the core actually waits.
		dur += extra
		c.ftr.Span(obs.KindFaultDMA, start+dur-extra, start+dur)
	}
	c.dmaLast = start + dur
	c.Stats.DMATransfers++
	c.Stats.DMABytes += uint64(n)
	return DMA{done: c.dmaLast}
}

// DMACopyC starts a DMA transfer of n complex64 elements from src[so:] to
// dst[do:]. The Go data is copied immediately; simulated time advances
// when DMAWait is called, so a kernel must not consume dst before waiting
// — the same discipline real DMA requires.
func (c *Core) DMACopyC(dst *machine.BufC, do int, src *machine.BufC, so, n int) DMA {
	copy(dst.Data[do:do+n], src.Data[so:so+n])
	srcAddr, dstAddr := src.ElemAddr(so), dst.ElemAddr(do)
	extRead, extWrite := isExt(srcAddr), isExt(dstAddr)
	if extRead {
		c.Stats.ExtReads++ // one burst transaction
		c.Stats.ExtReadB += uint64(8 * n)
	}
	if extWrite {
		c.Stats.ExtWrites++ // one posted burst
		c.Stats.ExtWriteB += uint64(8 * n)
	}
	hops, bridges := 0, 0
	if !extRead && !extWrite {
		hops, bridges = c.chip.P.dist(srcAddr, dstAddr)
	}
	return c.dmaStart(8*n, extRead, extWrite, hops, bridges)
}

// DMAWait blocks (in simulated time) until transfer d has completed.
func (c *Core) DMAWait(d DMA) {
	c.commit()
	if d.done > c.now {
		before := c.now
		c.now = d.done
		c.noteStall(obs.KindStallDMA, before, c.now)
	}
}

func isExt(addr uint32) bool { return addr >= ExtBase && addr < ExtBase+ExtSize }

// Barrier synchronizes all cores participating in the current Run. The
// last core to arrive settles the phase's off-chip bandwidth contention:
// if the cores collectively consumed more channel service time than the
// phase spanned, the barrier completes when the channel drains. All cores
// leave the barrier at the same (adjusted) time.
func (c *Core) Barrier() {
	c.commit()
	ch := c.chip
	ch.barTimes[c.ID] = c.now
	ch.barBusy[c.ID] = c.extBusy
	c.Stats.BarrierWaits++
	ch.bar.Wait(func() { ch.resolvePhase() })
	before := c.now
	c.now = ch.phaseStart
	c.noteStall(obs.KindStallBarrier, before, c.now)
	c.extBusy = 0
}
