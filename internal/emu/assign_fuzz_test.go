package emu

import (
	"testing"

	"sarmany/internal/fault"
)

// assignParams derives a small but arbitrary topology from fuzz bytes:
// per-chip meshes up to 4x4 arranged in chip arrays up to 2x2, so the
// properties are exercised on single chips, rectangles and eLink-bridged
// arrays alike.
func assignParams(rows, cols, chipRows, chipCols uint8) Params {
	return E16G3().
		WithMesh(1+int(rows%4), 1+int(cols%4)).
		WithChips(1+int(chipRows%2), 1+int(chipCols%2))
}

// assignPlan derives a fault plan from two bit masks: one over core IDs,
// one over chip IDs.
func assignPlan(p Params, haltMask uint32, chipHaltMask uint8) fault.Plan {
	var plan fault.Plan
	for i := 0; i < p.NumCores() && i < 32; i++ {
		if haltMask&(1<<i) != 0 {
			plan.Halts = append(plan.Halts, i)
		}
	}
	for c := 0; c < p.NumChips(); c++ {
		if chipHaltMask&(1<<c) != 0 {
			plan.ChipHalts = append(plan.ChipHalts, c)
		}
	}
	return plan
}

// checkAssignments verifies the full Assignments contract on one
// topology/plan/n combination:
//
//   - a live slot stays on its own core;
//   - a dead slot moves to a live core of the run at minimal grid
//     Manhattan distance, lowest core ID among equals;
//   - every move is recorded as a Remap in slot order;
//   - when the run has no live core at all, Assignments errors.
func checkAssignments(t *testing.T, p Params, plan fault.Plan, n int) {
	t.Helper()
	ch := New(p)
	if !plan.Empty() {
		ch.SetFaults(fault.MustCompile(plan))
	}
	liveInRun := false
	for i := 0; i < n; i++ {
		if ch.Alive(i) {
			liveInRun = true
			break
		}
	}
	assign, err := ch.Assignments(n)
	if !liveInRun {
		if err == nil {
			t.Fatalf("n=%d, plan %q: all cores dead but Assignments succeeded", n, plan.String())
		}
		return
	}
	if err != nil {
		t.Fatalf("n=%d, plan %q: %v", n, plan.String(), err)
	}
	if len(assign) != n {
		t.Fatalf("n=%d: got %d slots", n, len(assign))
	}
	var wantRemaps []Remap
	for slot, core := range assign {
		if ch.Alive(slot) {
			if core != slot {
				t.Errorf("live slot %d moved to core %d", slot, core)
			}
			continue
		}
		// Dead slot: the taker must be a live core of the run...
		if core < 0 || core >= n || !ch.Alive(core) {
			t.Fatalf("dead slot %d assigned to %d (n=%d, alive=%v)", slot, core, n, core >= 0 && core < n && ch.Alive(core))
		}
		// ...at minimal distance, lowest ID among the closest.
		from := ch.Cores[slot]
		got := ch.Cores[core]
		gotD := abs(from.Row-got.Row) + abs(from.Col-got.Col)
		for j := 0; j < n; j++ {
			if !ch.Alive(j) {
				continue
			}
			d := abs(from.Row-ch.Cores[j].Row) + abs(from.Col-ch.Cores[j].Col)
			if d < gotD || (d == gotD && j < core) {
				t.Errorf("slot %d -> core %d (distance %d), but live core %d is at distance %d",
					slot, core, gotD, j, d)
				break
			}
		}
		wantRemaps = append(wantRemaps, Remap{Slot: slot, From: slot, To: core})
	}
	remaps := ch.Remaps()
	if len(remaps) != len(wantRemaps) {
		t.Fatalf("recorded %d remaps, want %d", len(remaps), len(wantRemaps))
	}
	for i, r := range remaps {
		if r != wantRemaps[i] {
			t.Errorf("remap %d = %+v, want %+v", i, r, wantRemaps[i])
		}
	}
}

// FuzzAssignments is the property test for the fault remapper across
// arbitrary topologies, halt sets and run widths. The seed corpus covers
// single-chip meshes, rectangles, chip arrays, whole-chip halts and the
// no-survivor case; go test runs the corpus, go test -fuzz explores.
func FuzzAssignments(f *testing.F) {
	f.Add(uint8(3), uint8(3), uint8(0), uint8(0), uint32(0b10), uint8(0), uint8(16))
	f.Add(uint8(3), uint8(3), uint8(0), uint8(1), uint32(0b1100), uint8(1), uint8(32))
	f.Add(uint8(1), uint8(3), uint8(1), uint8(0), uint32(0), uint8(2), uint8(8))       // rectangle, 2x1 chips
	f.Add(uint8(3), uint8(3), uint8(1), uint8(1), uint32(0), uint8(0b1110), uint8(64)) // 3 of 4 chips dead
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint32(1), uint8(0), uint8(1))       // sole core halted
	f.Add(uint8(2), uint8(1), uint8(0), uint8(0), uint32(0xffffffff), uint8(0), uint8(6))
	f.Fuzz(func(t *testing.T, rows, cols, chipRows, chipCols uint8, haltMask uint32, chipHaltMask uint8, nRaw uint8) {
		p := assignParams(rows, cols, chipRows, chipCols)
		n := 1 + int(nRaw)%p.NumCores()
		checkAssignments(t, p, assignPlan(p, haltMask, chipHaltMask), n)
	})
}

// TestAssignmentsProperties runs the same contract check on a fixed grid
// of interesting combinations, so the properties are exercised
// deterministically (and under -race) without the fuzzer.
func TestAssignmentsProperties(t *testing.T) {
	topos := []struct {
		name string
		p    Params
	}{
		{"4x4", E16G3()},
		{"8x8", E64()},
		{"2x8", E16G3().WithMesh(2, 8)},
		{"1x2chips-of-4x4", E16G3().WithChips(1, 2)},
		{"2x2chips-of-2x2", E16G3().WithMesh(2, 2).WithChips(2, 2)},
	}
	masks := []struct {
		name     string
		halt     uint32
		chipHalt uint8
	}{
		{"healthy", 0, 0},
		{"one-core", 1 << 5, 0},
		{"scattered", 0b1001010000110, 0},
		{"chip1-down", 0, 0b10},
		{"chip-down-plus-core", 1 << 1, 0b10},
	}
	for _, tp := range topos {
		p := tp.p
		for _, m := range masks {
			t.Run(tp.name+"/"+m.name, func(t *testing.T) {
				for _, n := range []int{1, p.NumCores() / 2, p.NumCores()} {
					if n < 1 {
						continue
					}
					checkAssignments(t, p, assignPlan(p, m.halt, m.chipHalt), n)
				}
			})
		}
	}
}
