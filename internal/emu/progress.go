package emu

import (
	"math"
	"sync/atomic"
)

// Progress instrumentation: a race-free window into a chip while Run is
// executing. Core clocks (c.now) are plain float64s written lock-free by
// each core's goroutine, so an outside observer — the telemetry
// heartbeat sampling a live run — cannot read them directly. When
// enabled, every clock advance also publishes the new committed time
// into a per-core atomic cell, and each resolved barrier phase bumps an
// atomic counter; Progress() assembles a consistent-enough snapshot from
// those cells without touching the simulation's own state.
//
// The instrumentation is strictly opt-in: with EnableProgress never
// called, each hook is a nil-check and the model's hot paths are
// unchanged. It never alters simulated time — like the tracer, it only
// observes timestamps.

// progressState holds the atomic cells behind Progress(). One cell per
// core (including halted ones, which simply never write), plus the
// resolved-phase counter.
type progressState struct {
	cells  []atomic.Uint64 // Float64bits of each core's committed clock
	phases atomic.Uint64   // barrier phases resolved so far
}

// Progress is one snapshot of a running (or finished) chip.
type Progress struct {
	// Cores holds each core's most recently committed clock, in cycles.
	Cores []float64
	// Phases counts the barrier phases resolved so far.
	Phases uint64
}

// MaxCycles returns the furthest-ahead core clock in the snapshot.
func (p Progress) MaxCycles() float64 {
	var max float64
	for _, v := range p.Cores {
		if v > max {
			max = v
		}
	}
	return max
}

// TotalCycles returns the sum of all core clocks — a monotone scalar
// that stops moving exactly when the whole chip does, which is what a
// stall watchdog wants to watch.
func (p Progress) TotalCycles() float64 {
	var sum float64
	for _, v := range p.Cores {
		sum += v
	}
	return sum
}

// EnableProgress turns on progress publication. Call before Run; calling
// again is a no-op. The cost while enabled is one atomic store per clock
// advance.
func (ch *Chip) EnableProgress() {
	if ch.progress != nil {
		return
	}
	ps := &progressState{cells: make([]atomic.Uint64, len(ch.Cores))}
	for i, c := range ch.Cores {
		c.prog = &ps.cells[i]
	}
	ch.progress = ps
}

// ProgressEnabled reports whether EnableProgress has been called.
func (ch *Chip) ProgressEnabled() bool { return ch.progress != nil }

// Progress returns a snapshot of the per-core clocks and the resolved
// phase count. Safe to call from any goroutine while Run is executing.
// ok is false (with a zero snapshot) when EnableProgress was not called.
func (ch *Chip) Progress() (p Progress, ok bool) {
	ps := ch.progress
	if ps == nil {
		return Progress{}, false
	}
	p.Cores = make([]float64, len(ps.cells))
	for i := range ps.cells {
		p.Cores[i] = math.Float64frombits(ps.cells[i].Load())
	}
	p.Phases = ps.phases.Load()
	return p, true
}

// noteProgress publishes the core's committed clock. Called from every
// point that advances c.now; a nil cell (progress disabled) makes it a
// free no-op.
func (c *Core) noteProgress() {
	if c.prog != nil {
		c.prog.Store(math.Float64bits(c.now))
	}
}

// notePhase publishes one resolved barrier phase. Called from
// resolvePhase, inside the rendezvous resolution step.
func (ch *Chip) notePhase() {
	if ch.progress != nil {
		ch.progress.phases.Add(1)
	}
}
