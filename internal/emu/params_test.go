package emu

import (
	"strings"
	"testing"
)

// TestWithMeshEdgeCases pins New's validation of resized meshes: an empty
// mesh is rejected outright, and the 6-bit row/column fields of the
// global address map bound how far the mesh can grow in each dimension
// (rows start at 32, columns at 8).
func TestWithMeshEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		wantPanic  string // substring; "" means New must succeed
	}{
		{"zero rows", 0, 4, "needs at least one core"},
		{"zero cols", 4, 0, "needs at least one core"},
		{"negative", -1, 4, "needs at least one core"},
		{"single core", 1, 1, ""},
		{"max rows", 32, 1, ""},
		{"rows overflow", 33, 1, "exceeds the 6-bit address map"},
		{"max cols", 1, 56, ""},
		{"cols overflow", 1, 57, "exceeds the 6-bit address map"},
		{"e64 shape", 8, 8, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := E16G3().WithMesh(tc.rows, tc.cols)
			if p.Rows != tc.rows || p.Cols != tc.cols {
				t.Fatalf("WithMesh(%d,%d) = %dx%d", tc.rows, tc.cols, p.Rows, p.Cols)
			}
			defer func() {
				r := recover()
				if tc.wantPanic == "" {
					if r != nil {
						t.Fatalf("New(%dx%d) panicked: %v", tc.rows, tc.cols, r)
					}
					return
				}
				msg, _ := r.(string)
				if r == nil || !strings.Contains(msg, tc.wantPanic) {
					t.Fatalf("New(%dx%d) panic = %v, want containing %q", tc.rows, tc.cols, r, tc.wantPanic)
				}
			}()
			ch := New(p)
			if len(ch.Cores) != tc.rows*tc.cols {
				t.Fatalf("%d cores", len(ch.Cores))
			}
		})
	}
}
