package emu

import (
	"strings"
	"testing"
)

// TestWithMeshEdgeCases pins New's validation of resized meshes: an empty
// mesh is rejected outright, and the 6-bit node-coordinate space of the
// global address map bounds how far the grid can grow. Grids that fit
// the classic (32, 8) origin stay there; larger ones relocate to (0, 0),
// and only grids that fit neither placement — too big for 64x64, or
// unavoidably covering the external-memory window at node (35, 32..63)
// — are rejected.
func TestWithMeshEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		wantPanic  string // substring; "" means New must succeed
	}{
		{"zero rows", 0, 4, "needs at least one core"},
		{"zero cols", 4, 0, "needs at least one core"},
		{"negative", -1, 4, "needs at least one core"},
		{"single core", 1, 1, ""},
		{"max rows classic", 32, 1, ""},
		{"rows relocate", 33, 1, ""},
		{"max cols classic", 1, 56, ""},
		{"cols relocate", 1, 57, ""},
		{"e64 shape", 8, 8, ""},
		{"e256 shape", 16, 16, ""},
		{"relocated 32x32", 32, 32, ""},
		{"rows exceed map", 65, 1, "exceeds the 6-bit address map"},
		{"cols exceed map", 1, 65, "exceeds the 6-bit address map"},
		{"ext window collision", 36, 33, "external-memory window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := E16G3().WithMesh(tc.rows, tc.cols)
			if p.Rows != tc.rows || p.Cols != tc.cols {
				t.Fatalf("WithMesh(%d,%d) = %dx%d", tc.rows, tc.cols, p.Rows, p.Cols)
			}
			defer func() {
				r := recover()
				if tc.wantPanic == "" {
					if r != nil {
						t.Fatalf("New(%dx%d) panicked: %v", tc.rows, tc.cols, r)
					}
					return
				}
				msg, _ := r.(string)
				if r == nil || !strings.Contains(msg, tc.wantPanic) {
					t.Fatalf("New(%dx%d) panic = %v, want containing %q", tc.rows, tc.cols, r, tc.wantPanic)
				}
			}()
			ch := New(p)
			if len(ch.Cores) != tc.rows*tc.cols {
				t.Fatalf("%d cores", len(ch.Cores))
			}
		})
	}
}
