package emu

import "fmt"

// Topology is the array-level view of a Params configuration: the global
// core grid a multi-chip array exposes, the chip each core belongs to,
// and the XY-route cost structure (mesh hops and eLink bridge crossings)
// between any two cores. Chip.Assignments, the fault remapper, and the
// profiler's mesh heatmaps all reason in these terms, so a kernel written
// against core IDs runs unchanged on any topology.
type Topology struct {
	p Params
}

// Topology returns the array-level view of the configuration.
func (p Params) Topology() Topology { return Topology{p: p} }

// Topology returns the chip's array-level view.
func (ch *Chip) Topology() Topology { return ch.P.Topology() }

// Coord is a position on the global core grid (row-major, row 0 at the
// top-left chip).
type Coord struct {
	Row, Col int
}

// GridRows and GridCols give the global grid dimensions.
func (t Topology) GridRows() int { return t.p.GridRows() }
func (t Topology) GridCols() int { return t.p.GridCols() }

// NumCores returns the total core count of the array.
func (t Topology) NumCores() int { return t.p.NumCores() }

// NumChips returns the chip count of the array.
func (t Topology) NumChips() int { return t.p.NumChips() }

// ChipRows and ChipCols give the chip-array dimensions (1x1 for a single
// chip).
func (t Topology) ChipRows() int { return t.p.chipRows() }
func (t Topology) ChipCols() int { return t.p.chipCols() }

// CoordOf returns the global grid position of a core ID.
func (t Topology) CoordOf(id int) Coord {
	if id < 0 || id >= t.NumCores() {
		panic(fmt.Sprintf("emu: core %d outside the %dx%d grid", id, t.GridRows(), t.GridCols()))
	}
	return Coord{Row: id / t.GridCols(), Col: id % t.GridCols()}
}

// IDOf returns the core ID at a global grid position.
func (t Topology) IDOf(c Coord) int {
	if c.Row < 0 || c.Row >= t.GridRows() || c.Col < 0 || c.Col >= t.GridCols() {
		panic(fmt.Sprintf("emu: coordinate (%d,%d) outside the %dx%d grid",
			c.Row, c.Col, t.GridRows(), t.GridCols()))
	}
	return c.Row*t.GridCols() + c.Col
}

// ChipOf returns the chip (row-major over the chip array) hosting a core.
func (t Topology) ChipOf(id int) int {
	c := t.CoordOf(id)
	return (c.Row/t.p.Rows)*t.p.chipCols() + c.Col/t.p.Cols
}

// ChipCoord returns a chip's position in the chip array.
func (t Topology) ChipCoord(chip int) Coord {
	if chip < 0 || chip >= t.NumChips() {
		panic(fmt.Sprintf("emu: chip %d outside the %dx%d array", chip, t.ChipRows(), t.ChipCols()))
	}
	return Coord{Row: chip / t.p.chipCols(), Col: chip % t.p.chipCols()}
}

// Dist returns the XY-route cost components between two cores: the
// Manhattan hop count on the global grid and the number of chip
// boundaries (eLink bridges) the dimension-ordered route crosses.
func (t Topology) Dist(a, b int) (hops, bridges int) {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	hops = abs(ca.Row-cb.Row) + abs(ca.Col-cb.Col)
	return hops, t.p.bridgesBetween(ca.Row, ca.Col, cb.Row, cb.Col)
}
