// Package emu models the Adapteva Epiphany manycore architecture (paper
// Sec. III) at the cycle-accounting level: dual-issue cores with a
// single-cycle fused-multiply-add FPU, 32 KB of banked local memory per
// core, the eGrid 2-D mesh NoC with XY routing and one-cycle-per-node
// latency, per-core DMA engines, and the eLink/SDRAM off-chip path with
// stalling reads and posted (non-stalling) writes.
//
// Kernels execute real arithmetic in Go while charging an emu.Core (which
// implements machine.Machine) for every operation; the model translates
// the operation stream into cycles. Simulated cores run as goroutines and
// synchronize through deterministic virtual-time primitives (package sim),
// so a given kernel always produces bit-identical timing.
package emu

// Params holds the architecture and timing constants of a chip
// configuration. All cycle figures are in core clock cycles. The values in
// E16G3 derive from the Epiphany E16G3 datasheet and the architecture
// description in the paper (Sec. III), not from the paper's results table;
// see DESIGN.md for the calibration policy.
type Params struct {
	// Rows, Cols give the per-chip core mesh dimensions (4x4 for the
	// E16G3). With ChipRows/ChipCols > 1 every chip has this shape and the
	// chips tile a ChipRows x ChipCols array.
	Rows, Cols int

	// ChipRows, ChipCols arrange identical chips into an eLink-bridged
	// array; 0 (or 1) means a single chip. The global core grid is
	// (ChipRows*Rows) x (ChipCols*Cols) and core IDs are row-major over
	// that grid, so single-chip layouts are unchanged.
	ChipRows, ChipCols int
	// Clock is the core (and NoC) clock frequency in Hz. The paper
	// reports results scaled to the architecture's 1 GHz maximum.
	Clock float64
	// LocalMemBytes is the per-core local store (32 KB on the E16G3),
	// organized as NumBanks banks of BankBytes each (4 x 8 KB).
	LocalMemBytes int
	NumBanks      int
	BankBytes     int

	// SqrtFlops, DivFlops and TrigFlops are the FPU operation counts of
	// the software routines Epiphany uses for operations its FPU lacks:
	// the fast inverse-square-root style sqrt the paper mentions, a
	// Newton–Raphson divide, and polynomial sincos/atan kernels.
	SqrtFlops, DivFlops, TrigFlops int

	// LocalAccessCycles is the IALU-pipe cost of one 64-bit local-memory
	// load or store (single cycle, dual-issued with FPU work).
	LocalAccessCycles float64

	// RemoteReadBase is the fixed round-trip overhead of a read from
	// another core's local memory; RemoteHopCycles is added per mesh hop
	// per direction (the eGrid's single-cycle-wait-per-node routing).
	RemoteReadBase  float64
	RemoteHopCycles float64
	// ELinkHopCycles is the extra latency of crossing one chip boundary
	// (an eLink bridge) per direction: an off-chip serialized link is far
	// slower than an on-chip mesh hop. Charged per boundary an XY route
	// crosses; irrelevant on a single chip.
	ELinkHopCycles float64
	// NoCBytesPerCycle is the per-link on-chip throughput (8 bytes/cycle:
	// one double word per clock).
	NoCBytesPerCycle float64

	// ExtReadLatency is the round-trip stall of a direct off-chip read
	// (eLink + SDRAM). Reads stall the core; writes are posted.
	ExtReadLatency float64
	// ExtBytesPerCycle is the sustained off-chip bandwidth of one chip's
	// SDRAM channel, shared by that chip's cores, in bytes per core-clock
	// cycle. The eGrid's theoretical off-chip bandwidth is 8 GB/s (paper
	// Sec. III), but the experimental board's eLink sustains far less;
	// this is the effective figure the contention model uses. In a
	// multi-chip array every chip has its own channel of this bandwidth.
	ExtBytesPerCycle float64
	// ExtBytesPerCycleByChip optionally overrides ExtBytesPerCycle per
	// chip (indexed by chip ID, row-major over the chip array), modelling
	// boards whose SDRAM channels are not identical. Chips beyond the
	// slice length use ExtBytesPerCycle.
	ExtBytesPerCycleByChip []float64

	// DMASetupCycles is the descriptor setup cost of starting a DMA
	// transfer; DMABytesPerCycle is the engine's peak throughput (a double
	// word per clock cycle, per the paper).
	DMASetupCycles   float64
	DMABytesPerCycle float64

	// IdlePowerWatts and MaxPowerWatts bound the chip power model; see
	// package energy. The paper uses 2 W for the E16G3 at 1 GHz.
	MaxPowerWatts float64
}

// E16G3 returns the 16-core Epiphany-III configuration used in the paper's
// experiments, timed at the architecture's maximum 1 GHz clock.
func E16G3() Params {
	return Params{
		Rows: 4, Cols: 4,
		Clock:         1e9,
		LocalMemBytes: 32 * 1024,
		NumBanks:      4,
		BankBytes:     8 * 1024,

		// Software numeric routines (float32): fast inverse sqrt with two
		// Newton steps, Newton divide, polynomial sincos/atan of ~9th
		// order plus range reduction — all FMA-friendly.
		SqrtFlops: 10,
		DivFlops:  17,
		TrigFlops: 45,

		LocalAccessCycles: 1,

		RemoteReadBase:   12,
		RemoteHopCycles:  1,
		NoCBytesPerCycle: 8,

		// Crossing a chip boundary costs an eLink serialization round:
		// the off-chip links run at 1/8 of the on-chip mesh clock rate
		// (see DESIGN.md), so one bridge crossing is priced at 8 on-chip
		// hops per direction. Unused on a single chip.
		ELinkHopCycles: 8,

		// ~80 ns eLink+SDRAM round trip at 1 GHz; ~1 B/cycle sustained
		// off-chip (1 GB/s at 1 GHz, ~1/8 of the eGrid's 8 GB/s theoretical
		// off-chip bandwidth) shared by all cores of a chip.
		ExtReadLatency:   80,
		ExtBytesPerCycle: 1.0,

		DMASetupCycles:   40,
		DMABytesPerCycle: 8,

		MaxPowerWatts: 2,
	}
}

// E64 returns a 64-core (8x8) configuration with the same per-core
// parameters, modelling the 64-core Epiphany the paper's conclusions
// mention as newly available. The off-chip path is kept identical, which
// is precisely why FFBP scaling saturates there (see the scaling bench).
func E64() Params {
	p := E16G3()
	p.Rows, p.Cols = 8, 8
	p.MaxPowerWatts = 8 // four times the tiles and NoC area
	return p
}

// E256 returns a 256-core (16x16) single-chip configuration in the
// Epiphany-IV/V direction: the same per-core parameters and one SDRAM
// channel, with power scaled by tile count like E64.
func E256() Params {
	p := E16G3()
	p.Rows, p.Cols = 16, 16
	p.MaxPowerWatts = 32
	return p
}

// E1024 returns a 1024-core configuration built as a 2x2 eLink-bridged
// array of 16x16 chips — the multi-chip direction of Olofsson et al.'s
// Epiphany-V scaling story. Each chip keeps its own SDRAM channel, so
// aggregate off-chip bandwidth grows with the array.
func E1024() Params {
	p := E256()
	p.ChipRows, p.ChipCols = 2, 2
	p.MaxPowerWatts = 128
	return p
}

// WithMesh returns a copy of p resized to an r x c per-chip core mesh.
func (p Params) WithMesh(r, c int) Params {
	p.Rows, p.Cols = r, c
	return p
}

// WithChips returns a copy of p arranged as a cr x cc array of chips.
func (p Params) WithChips(cr, cc int) Params {
	p.ChipRows, p.ChipCols = cr, cc
	return p
}

// chipRows and chipCols normalize the array dimensions: zero (the
// single-chip zero value) reads as 1.
func (p Params) chipRows() int {
	if p.ChipRows < 1 {
		return 1
	}
	return p.ChipRows
}

func (p Params) chipCols() int {
	if p.ChipCols < 1 {
		return 1
	}
	return p.ChipCols
}

// NumChips returns the number of chips in the array (1 for a single
// chip).
func (p Params) NumChips() int { return p.chipRows() * p.chipCols() }

// GridRows and GridCols give the global core-grid dimensions across the
// whole array; on a single chip they equal Rows and Cols.
func (p Params) GridRows() int { return p.chipRows() * p.Rows }
func (p Params) GridCols() int { return p.chipCols() * p.Cols }

// NumCores returns the number of cores in the whole array.
func (p Params) NumCores() int { return p.GridRows() * p.GridCols() }

// ChipOf returns the chip (row-major over the chip array) hosting the
// core with the given global ID.
func (p Params) ChipOf(id int) int {
	gr, gc := id/p.GridCols(), id%p.GridCols()
	return (gr/p.Rows)*p.chipCols() + gc/p.Cols
}

// ExtBWOfChip returns the SDRAM-channel bandwidth of one chip: the
// per-chip override when configured, ExtBytesPerCycle otherwise.
func (p Params) ExtBWOfChip(chip int) float64 {
	if chip >= 0 && chip < len(p.ExtBytesPerCycleByChip) {
		if bw := p.ExtBytesPerCycleByChip[chip]; bw > 0 {
			return bw
		}
	}
	return p.ExtBytesPerCycle
}

// Address map constants. The Epiphany has a flat 32-bit global address
// space: the upper 12 bits select a mesh node (6-bit row, 6-bit column)
// and the low 20 bits are the offset within that node's page. The E16G3
// occupies mesh rows 32-35 and columns 8-11, and external SDRAM is mapped
// at 0x8e000000 — matching the real device's memory map. A multi-chip
// array shares the flat space: the global core grid occupies one
// contiguous rectangle of node coordinates.
const (
	firstMeshRow = 32
	firstMeshCol = 8

	// ExtBase is the base address of external (off-chip SDRAM) memory.
	ExtBase uint32 = 0x8e000000
	// ExtSize is the modeled external memory size (32 MB, as on the
	// paper's experimental board).
	ExtSize = 32 * 1024 * 1024
)

// The external window ExtBase..ExtBase+ExtSize occupies node row 35,
// columns 32-63 of the 6-bit coordinate space.
const (
	extNodeRow      = int(ExtBase >> 26)        // 35
	extNodeColFirst = int(ExtBase >> 20 & 0x3f) // 32
	extNodeColLast  = extNodeColFirst + ExtSize>>20 - 1
)

// meshOrigin places the global core grid in the 6-bit node-coordinate
// space. The classic E16G3 origin (32, 8) is kept whenever the grid fits
// there without touching the external-memory window, so every
// previously-valid topology keeps its exact historical addresses; grids
// too large for the classic placement relocate to origin (0, 0). ok is
// false when no collision-free placement exists.
func (p Params) meshOrigin() (row, col int, ok bool) {
	r, c := p.GridRows(), p.GridCols()
	fits := func(or, oc int) bool {
		if or+r > 64 || oc+c > 64 {
			return false
		}
		// Collision with the external window: the grid rectangle covers
		// node row extNodeRow and overlaps the window's column range.
		return !(or <= extNodeRow && extNodeRow < or+r &&
			oc <= extNodeColLast && oc+c > extNodeColFirst)
	}
	if fits(firstMeshRow, firstMeshCol) {
		return firstMeshRow, firstMeshCol, true
	}
	if fits(0, 0) {
		return 0, 0, true
	}
	return 0, 0, false
}

// coreBase returns the base address of the local page of the core at
// global grid position (row, col).
func (p Params) coreBase(row, col int) uint32 {
	or, oc, _ := p.meshOrigin()
	id := uint32(or+row)<<6 | uint32(oc+col)
	return id << 20
}

// tileOf returns the global grid coordinates encoded in a core-mapped
// address (not validated against the configured grid).
func (p Params) tileOf(addr uint32) (row, col int) {
	or, oc, _ := p.meshOrigin()
	id := addr >> 20
	return int(id>>6) - or, int(id&0x3f) - oc
}

// dist returns the XY-route cost components between the tiles of two
// core-mapped addresses: the Manhattan hop count on the global grid and
// the number of chip boundaries (eLink bridges) the route crosses. Both
// addresses must be core-mapped (not external).
func (p Params) dist(a, b uint32) (hops, bridges int) {
	ar, ac := p.tileOf(a)
	br, bc := p.tileOf(b)
	return abs(ar-br) + abs(ac-bc), p.bridgesBetween(ar, ac, br, bc)
}

// bridgesBetween counts the chip boundaries an XY route between two
// global grid positions crosses: the Manhattan distance between the two
// chip coordinates (a dimension-ordered route crosses each boundary
// exactly once per chip-row and chip-column of separation).
func (p Params) bridgesBetween(ar, ac, br, bc int) int {
	if p.NumChips() == 1 {
		return 0
	}
	return abs(ar/p.Rows-br/p.Rows) + abs(ac/p.Cols-bc/p.Cols)
}
