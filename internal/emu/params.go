// Package emu models the Adapteva Epiphany manycore architecture (paper
// Sec. III) at the cycle-accounting level: dual-issue cores with a
// single-cycle fused-multiply-add FPU, 32 KB of banked local memory per
// core, the eGrid 2-D mesh NoC with XY routing and one-cycle-per-node
// latency, per-core DMA engines, and the eLink/SDRAM off-chip path with
// stalling reads and posted (non-stalling) writes.
//
// Kernels execute real arithmetic in Go while charging an emu.Core (which
// implements machine.Machine) for every operation; the model translates
// the operation stream into cycles. Simulated cores run as goroutines and
// synchronize through deterministic virtual-time primitives (package sim),
// so a given kernel always produces bit-identical timing.
package emu

// Params holds the architecture and timing constants of a chip
// configuration. All cycle figures are in core clock cycles. The values in
// E16G3 derive from the Epiphany E16G3 datasheet and the architecture
// description in the paper (Sec. III), not from the paper's results table;
// see DESIGN.md for the calibration policy.
type Params struct {
	// Rows, Cols give the core mesh dimensions (4x4 for the E16G3).
	Rows, Cols int
	// Clock is the core (and NoC) clock frequency in Hz. The paper
	// reports results scaled to the architecture's 1 GHz maximum.
	Clock float64
	// LocalMemBytes is the per-core local store (32 KB on the E16G3),
	// organized as NumBanks banks of BankBytes each (4 x 8 KB).
	LocalMemBytes int
	NumBanks      int
	BankBytes     int

	// SqrtFlops, DivFlops and TrigFlops are the FPU operation counts of
	// the software routines Epiphany uses for operations its FPU lacks:
	// the fast inverse-square-root style sqrt the paper mentions, a
	// Newton–Raphson divide, and polynomial sincos/atan kernels.
	SqrtFlops, DivFlops, TrigFlops int

	// LocalAccessCycles is the IALU-pipe cost of one 64-bit local-memory
	// load or store (single cycle, dual-issued with FPU work).
	LocalAccessCycles float64

	// RemoteReadBase is the fixed round-trip overhead of a read from
	// another core's local memory; RemoteHopCycles is added per mesh hop
	// per direction (the eGrid's single-cycle-wait-per-node routing).
	RemoteReadBase  float64
	RemoteHopCycles float64
	// NoCBytesPerCycle is the per-link on-chip throughput (8 bytes/cycle:
	// one double word per clock).
	NoCBytesPerCycle float64

	// ExtReadLatency is the round-trip stall of a direct off-chip read
	// (eLink + SDRAM). Reads stall the core; writes are posted.
	ExtReadLatency float64
	// ExtBytesPerCycle is the sustained off-chip bandwidth shared by all
	// cores, in bytes per core-clock cycle. The eGrid's theoretical
	// off-chip bandwidth is 8 GB/s (paper Sec. III), but the experimental
	// board's eLink sustains far less; this is the effective figure the
	// contention model uses.
	ExtBytesPerCycle float64

	// DMASetupCycles is the descriptor setup cost of starting a DMA
	// transfer; DMABytesPerCycle is the engine's peak throughput (a double
	// word per clock cycle, per the paper).
	DMASetupCycles   float64
	DMABytesPerCycle float64

	// IdlePowerWatts and MaxPowerWatts bound the chip power model; see
	// package energy. The paper uses 2 W for the E16G3 at 1 GHz.
	MaxPowerWatts float64
}

// E16G3 returns the 16-core Epiphany-III configuration used in the paper's
// experiments, timed at the architecture's maximum 1 GHz clock.
func E16G3() Params {
	return Params{
		Rows: 4, Cols: 4,
		Clock:         1e9,
		LocalMemBytes: 32 * 1024,
		NumBanks:      4,
		BankBytes:     8 * 1024,

		// Software numeric routines (float32): fast inverse sqrt with two
		// Newton steps, Newton divide, polynomial sincos/atan of ~9th
		// order plus range reduction — all FMA-friendly.
		SqrtFlops: 10,
		DivFlops:  17,
		TrigFlops: 45,

		LocalAccessCycles: 1,

		RemoteReadBase:   12,
		RemoteHopCycles:  1,
		NoCBytesPerCycle: 8,

		// ~80 ns eLink+SDRAM round trip at 1 GHz; ~1 B/cycle sustained
		// off-chip (1 GB/s at 1 GHz, ~1/8 of the eGrid's 8 GB/s theoretical
		// off-chip bandwidth) shared by all cores.
		ExtReadLatency:   80,
		ExtBytesPerCycle: 1.0,

		DMASetupCycles:   40,
		DMABytesPerCycle: 8,

		MaxPowerWatts: 2,
	}
}

// E64 returns a 64-core (8x8) configuration with the same per-core
// parameters, modelling the 64-core Epiphany the paper's conclusions
// mention as newly available. The off-chip path is kept identical, which
// is precisely why FFBP scaling saturates there (see the scaling bench).
func E64() Params {
	p := E16G3()
	p.Rows, p.Cols = 8, 8
	p.MaxPowerWatts = 8 // four times the tiles and NoC area
	return p
}

// WithMesh returns a copy of p resized to an r x c core mesh.
func (p Params) WithMesh(r, c int) Params {
	p.Rows, p.Cols = r, c
	return p
}

// NumCores returns the number of cores in the mesh.
func (p Params) NumCores() int { return p.Rows * p.Cols }

// Address map constants. The Epiphany has a flat 32-bit global address
// space: the upper 12 bits select a mesh node (6-bit row, 6-bit column)
// and the low 20 bits are the offset within that node's page. The E16G3
// occupies mesh rows 32-35 and columns 8-11, and external SDRAM is mapped
// at 0x8e000000 — matching the real device's memory map.
const (
	firstMeshRow = 32
	firstMeshCol = 8

	// ExtBase is the base address of external (off-chip SDRAM) memory.
	ExtBase uint32 = 0x8e000000
	// ExtSize is the modeled external memory size (32 MB, as on the
	// paper's experimental board).
	ExtSize = 32 * 1024 * 1024
)

// coreBase returns the base address of core (row, col)'s local page.
func coreBase(row, col int) uint32 {
	id := uint32(firstMeshRow+row)<<6 | uint32(firstMeshCol+col)
	return id << 20
}
