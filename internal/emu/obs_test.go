package emu

import (
	"bytes"
	"strings"
	"testing"

	"sarmany/internal/machine"
	"sarmany/internal/obs"
)

// obsWorkload runs a small mixed workload (compute, local and off-chip
// traffic, DMA, a link and barriers) on 4 cores and returns the chip.
func obsWorkload(t *testing.T, tr *obs.Tracer) *Chip {
	t.Helper()
	ch := New(E16G3())
	if tr != nil {
		ch.SetTracer(tr)
	}
	ext, err := machine.NewBufC(ch.Ext(), 4*512)
	if err != nil {
		t.Fatal(err)
	}
	link := ch.Connect(0, 1, 2)
	ch.Run(4, func(c *Core) {
		c.FMA(1000)
		for i := 0; i < 64; i++ {
			ext.Store(c, c.ID*512+i, 1)
		}
		ext.Load(c, c.ID*512) // stalling off-chip read
		c.Barrier()
		local, err := machine.NewBufC(c.Bank(2), 128)
		if err != nil {
			t.Error(err)
			return
		}
		d := c.DMACopyC(local, 0, ext, c.ID*512, 128)
		c.DMAWait(d)
		if c.ID == 0 {
			link.Send(c, local.Data[:16])
		}
		if c.ID == 1 {
			link.Recv(c)
		}
		c.Barrier()
	})
	return ch
}

func TestTracingDisabledIsBitIdenticalAndAllocFree(t *testing.T) {
	plain := obsWorkload(t, nil)
	traced := obsWorkload(t, obs.NewTracer(1e9))
	if p, tr := plain.MaxCycles(), traced.MaxCycles(); p != tr {
		t.Errorf("cycle counts differ: disabled %v, enabled %v", p, tr)
	}
	if p, tr := plain.TotalStats(), traced.TotalStats(); p != tr {
		t.Errorf("stats differ:\ndisabled %+v\nenabled  %+v", p, tr)
	}

	// With tracing disabled the hot path must not allocate.
	ch := New(E16G3())
	c := ch.Cores[0]
	local, err := machine.NewBufC(c.Bank(0), 64)
	if err != nil {
		t.Fatal(err)
	}
	remote := ch.Cores[5]
	raddr := ch.P.coreBase(remote.Row, remote.Col)
	if n := testing.AllocsPerRun(1000, func() {
		c.FMA(16)
		c.IOp(4)
		local.Store(c, 3, 1)
		local.Load(c, 3)
		c.Load(raddr, 8) // stalling remote read
		c.commit()
	}); n != 0 {
		t.Errorf("hot path allocates %v per run with tracing disabled", n)
	}
}

func TestTracerRecordsAllSpanKinds(t *testing.T) {
	tr := obs.NewTracer(1e9)
	obsWorkload(t, tr)
	seen := map[obs.Kind]bool{}
	for _, tk := range tr.Tracks() {
		for _, s := range tk.Spans() {
			seen[s.Kind] = true
			if s.End <= s.Start {
				t.Errorf("track %q: empty span %+v", tk.Name(), s)
			}
		}
	}
	for _, k := range []obs.Kind{
		obs.KindCompute, obs.KindStallExt, obs.KindStallDMA,
		obs.KindStallLink, obs.KindStallBarrier,
	} {
		if !seen[k] {
			t.Errorf("no %v span recorded", k)
		}
	}
	if !seen[obs.KindPhaseCompute] && !seen[obs.KindPhaseBandwidth] {
		t.Error("no phase span recorded")
	}
}

func TestTraceSpansStayWithinRun(t *testing.T) {
	tr := obs.NewTracer(1e9)
	ch := obsWorkload(t, tr)
	end := ch.MaxCycles()
	for _, tk := range tr.Tracks() {
		for _, s := range tk.Spans() {
			if s.Start < 0 || s.End > end+1e-9 {
				t.Errorf("track %q: span %+v outside [0, %v]", tk.Name(), s, end)
			}
		}
	}
}

func TestStallCauseBreakdownSums(t *testing.T) {
	ch := obsWorkload(t, nil)
	for _, c := range ch.Cores[:4] {
		s := c.Stats
		sum := s.ReadStallCycles + s.ExtStallCycles + s.DMAStallCycles +
			s.LinkStallCycles + s.BarrierStallCycles
		if diff := sum - s.StallCycles; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("core %d: cause breakdown %v != total stall %v", c.ID, sum, s.StallCycles)
		}
	}
}

func TestAggregatesUseOnlyActiveCores(t *testing.T) {
	ch := New(E16G3())
	// A wide run first: all 16 cores accumulate work.
	ch.Run(16, func(c *Core) { c.FMA(1000 * (c.ID + 1)) })
	// A narrower run on a fresh chip must not see the wide run's state —
	// and on the same chip, aggregation must cover only the active cores.
	ch.Run(4, func(c *Core) { c.FMA(10) })
	s := ch.TotalStats()
	// Cores 0-3 carry 1000..4000 FMAs from the first run plus 10 each.
	if want := uint64(1000 + 2000 + 3000 + 4000 + 4*10); s.FMA != want {
		t.Errorf("TotalStats.FMA = %d, want %d (only the 4 active cores)", s.FMA, want)
	}
	// MaxCycles must ignore core 15's 16000 cycles from the wide run.
	if got := ch.MaxCycles(); got != 4010 {
		t.Errorf("MaxCycles = %v, want 4010 (core 3 of the narrow run)", got)
	}
}

func TestChipMetricsRegistry(t *testing.T) {
	ch := obsWorkload(t, nil)
	snap := ch.Metrics().Snapshot()
	total := ch.TotalStats()
	if v := snap.Value("emu.ops.fma"); v != float64(total.FMA) {
		t.Errorf("emu.ops.fma = %v, want %v", v, total.FMA)
	}
	if v := snap.Value("emu.cycles.stall"); v != total.StallCycles {
		t.Errorf("emu.cycles.stall = %v, want %v", v, total.StallCycles)
	}
	if v := snap.Value("emu.cores.active"); v != 4 {
		t.Errorf("emu.cores.active = %v", v)
	}
	if m, ok := snap.Get("emu.core.cycles"); !ok || m.Count != 4 {
		t.Errorf("emu.core.cycles histogram %+v", m)
	}
	bw := snap.Value("emu.phase.bandwidth_bound")
	cp := snap.Value("emu.phase.compute_bound")
	if bw+cp != snap.Value("emu.phase.count") {
		t.Errorf("phase bound counts %v+%v != %v", bw, cp, snap.Value("emu.phase.count"))
	}
	if v := snap.Value("emu.link.0->1.blocks"); v != 1 {
		t.Errorf("link blocks = %v", v)
	}
	if v := snap.Value("emu.link.0->1.bytes"); v != 16*8 {
		t.Errorf("link bytes = %v", v)
	}
}

// TestPhaseStatsReconcile: the per-phase stat deltas plus the tail after
// the final barrier must sum field-by-field to TotalStats.
func TestPhaseStatsReconcile(t *testing.T) {
	ch := obsWorkload(t, nil)
	var phased CoreStats
	for _, p := range ch.Phases() {
		phased = AddStats(phased, p.Stats)
	}
	tail := SubStats(ch.TotalStats(), phased)
	total := AddStats(phased, tail)
	if got, want := total, ch.TotalStats(); got != want {
		t.Errorf("phase deltas + tail != TotalStats:\n got %+v\nwant %+v", got, want)
	}
	// The first phase carries the pre-barrier work: 4 cores x 1000 FMAs.
	if got := ch.Phases()[0].Stats.FMA; got != 4000 {
		t.Errorf("phase 0 FMA delta = %d, want 4000", got)
	}
	// No barrier has released yet when phase 0 resolves.
	if got := ch.Phases()[0].Stats.BarrierStallCycles; got != 0 {
		t.Errorf("phase 0 barrier-stall delta = %v, want 0 (recorded after release)", got)
	}
}

func TestLinkStatsAndHandoffEdges(t *testing.T) {
	tr := obs.NewTracer(1e9)
	ch := obsWorkload(t, tr)
	ls := ch.LinkStats()
	if len(ls) != 1 {
		t.Fatalf("%d link stats, want 1", len(ls))
	}
	l := ls[0]
	if l.From != 0 || l.To != 1 || l.Hops != 1 || l.Blocks != 1 || l.Bytes != 16*8 {
		t.Errorf("link stat %+v", l)
	}
	// Core 1 reaches Recv before core 0's block arrives (both do the same
	// pre-work, and the send adds issue cycles), so the consumer stalls
	// and must record a handoff edge back to the producer's track.
	if l.RecvWait <= 0 {
		t.Fatalf("consumer did not wait (RecvWait=%v); workload no longer exercises the edge", l.RecvWait)
	}
	deps := ch.CoreTrack(1).Deps()
	if len(deps) != 1 {
		t.Fatalf("%d edges on consumer track, want 1", len(deps))
	}
	e := deps[0]
	if e.Src != ch.CoreTrack(0) {
		t.Errorf("edge source is %q, want producer track", e.Src.Name())
	}
	if e.SrcTime >= e.At {
		t.Errorf("edge times: src %v must precede arrival %v", e.SrcTime, e.At)
	}
	// The arrival must close the consumer's link-stall span.
	var linkSpan *obs.Span
	for _, s := range ch.CoreTrack(1).Spans() {
		if s.Kind == obs.KindStallLink {
			sc := s
			linkSpan = &sc
		}
	}
	if linkSpan == nil {
		t.Fatal("no link-stall span on consumer")
	}
	if diff := linkSpan.End - e.At; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("edge At %v != link-stall span end %v", e.At, linkSpan.End)
	}
}

func TestZeroDurationPhaseTable(t *testing.T) {
	ch := New(E16G3())
	ch.Run(2, func(c *Core) {
		c.Barrier() // zero-duration phase: no work before the barrier
		c.FMA(100)
		c.Barrier()
	})
	var buf bytes.Buffer
	ch.WritePhaseTable(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("phase table:\n%s", buf.String())
	}
	if !strings.Contains(lines[1], "-") {
		t.Errorf("zero-duration phase should print '-' for utilization: %q", lines[1])
	}
	if !strings.Contains(lines[2], "compute") && !strings.Contains(lines[2], "bandwidth") {
		t.Errorf("bound column missing: %q", lines[2])
	}
}
