package emu

import (
	"bytes"
	"strings"
	"testing"

	"sarmany/internal/machine"
)

func TestPhaseTraceRecordsBarriers(t *testing.T) {
	ch := New(E16G3())
	ext, _ := machine.NewBufC(ch.Ext(), 4*2048)
	ch.Run(4, func(c *Core) {
		// Phase 0: pure compute.
		c.FMA(10000)
		c.Barrier()
		// Phase 1: heavy off-chip writes, almost no compute.
		for i := 0; i < 2048; i++ {
			ext.Store(c, c.ID*2048+i, 1)
		}
		c.Barrier()
	})
	ps := ch.Phases()
	if len(ps) != 2 {
		t.Fatalf("%d phases", len(ps))
	}
	if ps[0].Index != 0 || ps[1].Index != 1 {
		t.Error("phase indices wrong")
	}
	if ps[0].Start != 0 || ps[0].End != ps[1].Start {
		t.Errorf("phases not contiguous: %+v %+v", ps[0], ps[1])
	}
	if ps[0].BandwidthBound {
		t.Error("compute phase marked bandwidth-bound")
	}
	if !ps[1].BandwidthBound {
		t.Error("write phase not marked bandwidth-bound")
	}
	if ps[1].ExtBusy <= ps[0].ExtBusy {
		t.Error("write phase should have higher channel busy time")
	}
	if d := ps[0].Duration(); d != 10000 {
		t.Errorf("compute phase duration %v", d)
	}
}

func TestWritePhaseTable(t *testing.T) {
	ch := New(E16G3())
	ch.Run(2, func(c *Core) {
		c.FMA(100)
		c.Barrier()
	})
	var buf bytes.Buffer
	ch.WritePhaseTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "phase") || !strings.Contains(out, "compute") {
		t.Errorf("table output: %q", out)
	}
}
