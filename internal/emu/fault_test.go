package emu

import (
	"reflect"
	"testing"

	"sarmany/internal/fault"
	"sarmany/internal/machine"
)

// faultTestWorkload exercises every fault hook point: dual-issue compute,
// direct ext loads/stores, an ext DMA burst, a streaming link, and
// barriers. It runs on the first two cores of the chip.
func faultTestWorkload(t *testing.T, ch *Chip) {
	t.Helper()
	ext, err := machine.NewBufC(ch.Ext(), 256)
	if err != nil {
		t.Fatal(err)
	}
	link := ch.Connect(0, 1, 2)
	ch.Run(2, func(c *Core) {
		local, err := machine.NewBufC(c.Bank(2), 256)
		if err != nil {
			panic(err)
		}
		if c.ID == 0 {
			c.FMA(300)
			d := c.DMACopyC(local, 0, ext, 0, 128) // ext read burst
			c.DMAWait(d)
			for b := 0; b < 4; b++ {
				link.Send(c, local.Data[b*16:(b+1)*16])
			}
		} else {
			c.IOp(50)
			// Core 0's DMA burst reads ext[0:128] concurrently in host
			// time, so core 1 touches a disjoint region.
			ext.Store(c, 200, complex(1, 2)) // posted ext write
			_ = ext.Load(c, 200)             // stalling ext read
			for b := 0; b < 4; b++ {
				copy(local.Data[b*16:], link.Recv(c))
			}
		}
		c.Barrier()
		c.FMA(100)
		c.Barrier()
	})
}

// TestEmptyFaultPlanIsBitIdentical asserts the fault subsystem's core
// contract: attaching a compiled empty plan changes nothing at all —
// cycle counts, statistics, and link occupancy are exactly equal to a run
// with no injector attached.
func TestEmptyFaultPlanIsBitIdentical(t *testing.T) {
	run := func(inj *fault.Injector) (*Chip, float64, CoreStats, []LinkStat) {
		ch := New(E16G3())
		if inj != nil {
			ch.SetFaults(inj)
		}
		faultTestWorkload(t, ch)
		return ch, ch.MaxCycles(), ch.TotalStats(), ch.LinkStats()
	}
	_, cyc0, tot0, links0 := run(nil)
	_, cyc1, tot1, links1 := run(fault.MustCompile(fault.Plan{Seed: 12345}))
	if cyc0 != cyc1 {
		t.Errorf("MaxCycles: no-injector %v != empty-plan %v", cyc0, cyc1)
	}
	if tot0 != tot1 {
		t.Errorf("TotalStats differ:\n no-injector %+v\n empty-plan  %+v", tot0, tot1)
	}
	if !reflect.DeepEqual(links0, links1) {
		t.Errorf("LinkStats differ:\n no-injector %+v\n empty-plan  %+v", links0, links1)
	}
	// Reruns of the same faulty plan are bit-identical too.
	plan := fault.Plan{
		Seed:    7,
		Derates: []fault.Derate{{Core: 1, Factor: 1.5}},
		Links:   []fault.LinkFault{{From: -1, To: -1, Rate: 0.5, TimeoutCycles: 100, BackoffCycles: 10, MaxRetries: 4}},
		DMAs:    []fault.DMAFault{{Core: -1, Rate: 0.5, TimeoutCycles: 50, MaxRetries: 2}},
	}
	_, cycA, totA, linksA := run(fault.MustCompile(plan))
	_, cycB, totB, linksB := run(fault.MustCompile(plan))
	if cycA != cycB || totA != totB || !reflect.DeepEqual(linksA, linksB) {
		t.Error("two runs of the same fault plan are not bit-identical")
	}
	if cycA == cyc0 {
		t.Error("faulty plan did not slow the run down at all")
	}
}

func TestDerateStretchesCommitWindows(t *testing.T) {
	ch := New(E16G3())
	ch.SetFaults(fault.MustCompile(fault.Plan{Derates: []fault.Derate{{Core: 0, Factor: 2}}}))
	c := ch.Cores[0]
	c.FMA(100)
	if got := c.Cycles(); got != 200 {
		t.Errorf("pending derated window: Cycles() = %v, want 200", got)
	}
	ch.Settle()
	if c.Stats.ComputeCycles != 200 {
		t.Errorf("ComputeCycles = %v, want 200 (derated)", c.Stats.ComputeCycles)
	}
	if c.Stats.DerateCycles != 100 {
		t.Errorf("DerateCycles = %v, want the extra 100", c.Stats.DerateCycles)
	}
	// The compute+stall cycle identity holds under derating.
	if got := c.Stats.ComputeCycles + c.Stats.StallCycles; got != c.Cycles() {
		t.Errorf("cycle identity broken: compute+stall = %v, Cycles() = %v", got, c.Cycles())
	}
	// An underated core on the same chip is untouched.
	c1 := ch.Cores[1]
	c1.FMA(100)
	ch.Settle()
	if c1.Stats.ComputeCycles != 100 || c1.Stats.DerateCycles != 0 {
		t.Errorf("underated core charged %v compute / %v derate", c1.Stats.ComputeCycles, c1.Stats.DerateCycles)
	}
}

func TestExtDerateScalesChannel(t *testing.T) {
	cycles := func(scale float64) float64 {
		ch := New(E16G3())
		if scale != 0 {
			ch.SetFaults(fault.MustCompile(fault.Plan{ExtScale: scale}))
		}
		c := ch.Cores[0]
		ext, err := machine.NewBufC(ch.Ext(), 8)
		if err != nil {
			t.Fatal(err)
		}
		_ = ext.Load(c, 0)
		ch.Settle()
		return c.Cycles()
	}
	healthy, derated := cycles(0), cycles(0.5)
	// One 8-byte ext load: latency + 8/bw; halving bw doubles the service
	// term (8 cycles -> 16 at 1 B/cycle).
	if want := healthy + 8; derated != want {
		t.Errorf("derated ext read = %v cycles, want %v (healthy %v + 8)", derated, want, healthy)
	}
}

func TestLinkRetryAccounting(t *testing.T) {
	const timeout, backoff = 100.0, 10.0
	ch := New(E16G3())
	ch.SetFaults(fault.MustCompile(fault.Plan{
		Links: []fault.LinkFault{{From: 0, To: 1, Rate: 1, TimeoutCycles: timeout, BackoffCycles: backoff, MaxRetries: 2}},
	}))
	link := ch.Connect(0, 1, 1)
	payload := make([]complex64, 16) // 128 bytes -> 16 double words
	ch.Run(2, func(c *Core) {
		if c.ID == 0 {
			link.Send(c, payload)
		} else {
			link.Recv(c)
		}
	})
	p := ch.Cores[0]
	if p.Stats.LinkRetries != 2 {
		t.Fatalf("LinkRetries = %d, want exactly MaxRetries 2 at rate 1", p.Stats.LinkRetries)
	}
	if p.Stats.RetryBytes != 256 {
		t.Errorf("RetryBytes = %d, want 2*128", p.Stats.RetryBytes)
	}
	// Each retry: timeout + backoff*2^k stall, plus the 16+1 re-issue
	// cycles.
	wantCycles := (timeout + backoff*1 + 17) + (timeout + backoff*2 + 17)
	if p.Stats.LinkRetryCycles != wantCycles {
		t.Errorf("LinkRetryCycles = %v, want %v", p.Stats.LinkRetryCycles, wantCycles)
	}
	if p.Stats.LinkStallCycles < timeout*2+backoff*3 {
		t.Errorf("LinkStallCycles = %v does not cover the injected waits", p.Stats.LinkStallCycles)
	}
	// NoCBytes prices the retransmitted payload: 3 crossings of 128 bytes.
	if p.Stats.NoCBytes != 384 {
		t.Errorf("NoCBytes = %d, want 3*128", p.Stats.NoCBytes)
	}
	if got := p.Stats.ComputeCycles + p.Stats.StallCycles; got != p.Cycles() {
		t.Errorf("cycle identity broken under link faults: %v != %v", got, p.Cycles())
	}
	ls := ch.LinkStats()[0]
	if ls.Retries != 2 || ls.RetryBytes != 256 {
		t.Errorf("link stat retries = %d/%d bytes, want 2/256", ls.Retries, ls.RetryBytes)
	}
	if ls.WireBlocks != ls.Blocks+2 || ls.WireBytes != ls.Bytes+256 {
		t.Errorf("wire totals %d blocks/%d bytes do not add retries to %d/%d", ls.WireBlocks, ls.WireBytes, ls.Blocks, ls.Bytes)
	}
	if ls.WireBytes < ls.RecvBytes {
		t.Errorf("wire bytes %d < delivered bytes %d", ls.WireBytes, ls.RecvBytes)
	}
}

func TestDMAFaultDelaysCompletion(t *testing.T) {
	const timeout = 75.0
	run := func(faulty bool) (*Core, float64) {
		ch := New(E16G3())
		if faulty {
			ch.SetFaults(fault.MustCompile(fault.Plan{
				DMAs: []fault.DMAFault{{Core: 0, Rate: 1, TimeoutCycles: timeout, MaxRetries: 1}},
			}))
		}
		c := ch.Cores[0]
		ext, err := machine.NewBufC(ch.Ext(), 64)
		if err != nil {
			t.Fatal(err)
		}
		local, err := machine.NewBufC(c.Bank(2), 64)
		if err != nil {
			t.Fatal(err)
		}
		d := c.DMACopyC(local, 0, ext, 0, 64)
		c.DMAWait(d)
		ch.Settle()
		return c, c.Cycles()
	}
	_, healthy := run(false)
	c, faulty := run(true)
	if faulty != healthy+timeout {
		t.Errorf("faulted DMA run = %v cycles, want %v (healthy %v + one timeout)", faulty, healthy, healthy)
	}
	if c.Stats.DMARetries != 1 || c.Stats.DMARetryCycles != timeout {
		t.Errorf("DMA retry accounting = %d retries / %v cycles, want 1 / %v",
			c.Stats.DMARetries, c.Stats.DMARetryCycles, timeout)
	}
	if got := c.Stats.ComputeCycles + c.Stats.StallCycles; got != c.Cycles() {
		t.Errorf("cycle identity broken under DMA faults: %v != %v", got, c.Cycles())
	}
}

func TestRunSkipsHaltedCores(t *testing.T) {
	ch := New(E16G3())
	ch.SetFaults(fault.MustCompile(fault.Plan{Halts: []int{1}}))
	ch.Run(4, func(c *Core) {
		c.FMA(100)
		c.Barrier()
		c.FMA(50)
		c.Barrier()
	})
	if got := ch.Cores[1].Cycles(); got != 0 {
		t.Errorf("halted core advanced to %v cycles", got)
	}
	if ch.Cores[1].Stats != (CoreStats{}) {
		t.Errorf("halted core accumulated stats: %+v", ch.Cores[1].Stats)
	}
	for _, id := range []int{0, 2, 3} {
		if got := ch.Cores[id].Stats.ComputeCycles; got != 150 {
			t.Errorf("live core %d computed %v cycles, want 150", id, got)
		}
		if got := ch.Cores[id].Stats.BarrierWaits; got != 2 {
			t.Errorf("live core %d waited at %v barriers, want 2", id, got)
		}
	}
	if !ch.Alive(0) || ch.Alive(1) {
		t.Error("Alive() disagrees with the plan")
	}
}

func TestAssignmentsRemapToNearestNeighbor(t *testing.T) {
	// E16G3 is 4x4 row-major: core 1 sits at (0,1). Its nearest live
	// neighbors at distance 1 are cores 0, 2 and 5; the lowest ID wins.
	ch := New(E16G3())
	ch.SetFaults(fault.MustCompile(fault.Plan{Halts: []int{1}}))
	assign, err := ch.Assignments(16)
	if err != nil {
		t.Fatal(err)
	}
	if assign[1] != 0 {
		t.Errorf("slot 1 assigned to core %d, want nearest live neighbor 0", assign[1])
	}
	for i, a := range assign {
		if i != 1 && a != i {
			t.Errorf("healthy slot %d moved to core %d", i, a)
		}
	}
	remaps := ch.Remaps()
	if len(remaps) != 1 || remaps[0] != (Remap{Slot: 1, From: 1, To: 0}) {
		t.Errorf("Remaps() = %+v, want [{1 1 0}]", remaps)
	}

	// Without faults the assignment is the identity and nothing is
	// recorded.
	ch2 := New(E16G3())
	assign2, err := ch2.Assignments(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range assign2 {
		if a != i {
			t.Errorf("fault-free slot %d moved to %d", i, a)
		}
	}
	if len(ch2.Remaps()) != 0 {
		t.Error("fault-free Assignments recorded remaps")
	}

	// All cores of the run halted: no taker.
	ch3 := New(E16G3())
	ch3.SetFaults(fault.MustCompile(fault.Plan{Halts: []int{0, 1}}))
	if _, err := ch3.Assignments(2); err == nil {
		t.Error("expected error when every core of the run is halted")
	}
}

func TestRemapPlacementStaysInjective(t *testing.T) {
	ch := New(E16G3())
	ch.SetFaults(fault.MustCompile(fault.Plan{Halts: []int{5}}))
	// Core 5 is at (1,1); its distance-1 neighbors 1, 4, 6, 9 are all
	// occupied by the placement, so the remap must pick a free live core
	// at distance 2 — the lowest ID among {0, 2, 8, 10, 13}.
	place := []int{1, 4, 5, 6, 9}
	got, err := ch.RemapPlacement(place)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 0 {
		t.Errorf("halted slot moved to core %d, want 0 (nearest free live core)", got[2])
	}
	seen := map[int]bool{}
	for _, c := range got {
		if seen[c] {
			t.Fatalf("placement %v is not injective", got)
		}
		seen[c] = true
	}
	// The original placement slice is untouched.
	if place[2] != 5 {
		t.Error("RemapPlacement mutated its argument")
	}
	if n := len(ch.Remaps()); n != 1 {
		t.Errorf("%d remaps recorded, want 1", n)
	}
}
