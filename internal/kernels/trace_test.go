package kernels

import (
	"testing"

	"sarmany/internal/emu"
)

// TestFFBPPhaseNarrative checks that the simulated execution tells the
// paper's story about where parallel FFBP's time goes: at the nominal
// off-chip bandwidth the merge phases are bandwidth-bound ("the frequent
// off-chip memory accesses performed in the parallel FFBP implementation
// limits the speedup"), and with ample bandwidth they become
// compute-bound.
func TestFFBPPhaseNarrative(t *testing.T) {
	p, box, data := testSetup()

	nominal := emu.E16G3()
	chN := emu.New(nominal)
	if _, _, err := ParFFBP(chN, 16, data, p, box); err != nil {
		t.Fatal(err)
	}
	bwBound := 0
	for _, ph := range chN.Phases() {
		if ph.BandwidthBound {
			bwBound++
		}
	}
	if bwBound < len(chN.Phases())/2 {
		t.Errorf("only %d of %d phases bandwidth-bound at nominal bandwidth",
			bwBound, len(chN.Phases()))
	}

	ample := nominal
	ample.ExtBytesPerCycle *= 16
	chA := emu.New(ample)
	if _, _, err := ParFFBP(chA, 16, data, p, box); err != nil {
		t.Fatal(err)
	}
	bwBound = 0
	for _, ph := range chA.Phases() {
		if ph.BandwidthBound {
			bwBound++
		}
	}
	if bwBound > len(chA.Phases())/2 {
		t.Errorf("%d of %d phases still bandwidth-bound with 16x bandwidth",
			bwBound, len(chA.Phases()))
	}
	// Phases are contiguous and cover the run.
	ps := chA.Phases()
	for i := 1; i < len(ps); i++ {
		if ps[i].Start != ps[i-1].End {
			t.Fatalf("phase %d not contiguous", i)
		}
	}
	if last := ps[len(ps)-1].End; last != chA.MaxCycles() {
		t.Errorf("last phase ends at %v, chip at %v", last, chA.MaxCycles())
	}
}
