package kernels

import (
	"testing"

	"sarmany/internal/emu"
)

// TestFFBPPhaseNarrative checks that the simulated execution tells the
// paper's story about where parallel FFBP's time goes: at the nominal
// off-chip bandwidth the merge phases are bandwidth-bound ("the frequent
// off-chip memory accesses performed in the parallel FFBP implementation
// limits the speedup"), and with ample bandwidth they become
// compute-bound. The story must hold on the 8x8 scale-up too — with more
// cores sharing one SDRAM channel the nominal runs are only more
// bandwidth-bound, and the ample factor has to grow with the core count.
func TestFFBPPhaseNarrative(t *testing.T) {
	p, box, data := testSetup()
	cases := []struct {
		name   string
		topo   emu.Params
		cores  int
		ampleX float64
	}{
		{"4x4", emu.E16G3(), 16, 16},
		{"8x8", emu.E64(), 64, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chN := emu.New(tc.topo)
			if _, _, err := ParFFBP(chN, tc.cores, data, p, box); err != nil {
				t.Fatal(err)
			}
			bwBound := 0
			for _, ph := range chN.Phases() {
				if ph.BandwidthBound {
					bwBound++
				}
			}
			if bwBound < len(chN.Phases())/2 {
				t.Errorf("only %d of %d phases bandwidth-bound at nominal bandwidth",
					bwBound, len(chN.Phases()))
			}

			ample := tc.topo
			ample.ExtBytesPerCycle *= tc.ampleX
			chA := emu.New(ample)
			if _, _, err := ParFFBP(chA, tc.cores, data, p, box); err != nil {
				t.Fatal(err)
			}
			bwBound = 0
			for _, ph := range chA.Phases() {
				if ph.BandwidthBound {
					bwBound++
				}
			}
			if bwBound > len(chA.Phases())/2 {
				t.Errorf("%d of %d phases still bandwidth-bound with %vx bandwidth",
					bwBound, len(chA.Phases()), tc.ampleX)
			}
			// Phases are contiguous and cover the run.
			ps := chA.Phases()
			for i := 1; i < len(ps); i++ {
				if ps[i].Start != ps[i-1].End {
					t.Fatalf("phase %d not contiguous", i)
				}
			}
			if last := ps[len(ps)-1].End; last != chA.MaxCycles() {
				t.Errorf("last phase ends at %v, chip at %v", last, chA.MaxCycles())
			}
		})
	}
}
