package kernels

import (
	"math"
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
)

func TestFlowAutofocusMatchesHandMapped(t *testing.T) {
	pairs := testPairs(6)
	shifts := autofocus.RangeSweep(-1.2, 1.2, 9)

	chHand := emu.New(emu.E16G3())
	hand, err := ParAutofocus(chHand, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	chFlow := emu.New(emu.E16G3())
	flowScores, err := FlowAutofocus(chFlow, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hand {
		for j := range hand[i] {
			if hand[i][j] != flowScores[i][j] {
				t.Errorf("pair %d shift %d: hand %v flow %v", i, j, hand[i][j], flowScores[i][j])
			}
		}
	}
	// The generated graph uses the same primitives, so the modeled time
	// must be very close to the hand-mapped version (no hidden abstraction
	// cost in the model).
	rel := math.Abs(chFlow.MaxCycles()-chHand.MaxCycles()) / chHand.MaxCycles()
	if rel > 0.05 {
		t.Errorf("flow version %.1f%% off the hand-mapped timing (%v vs %v cycles)",
			rel*100, chFlow.MaxCycles(), chHand.MaxCycles())
	}
}

func TestFlowAutofocusValidation(t *testing.T) {
	small := emu.New(emu.E16G3().WithMesh(2, 2))
	if _, err := FlowAutofocus(small, testPairs(1), autofocus.RangeSweep(-1, 1, 3)); err == nil {
		t.Error("too-small chip accepted")
	}
	ch := emu.New(emu.E16G3())
	if _, err := FlowAutofocus(ch, nil, autofocus.RangeSweep(-1, 1, 3)); err == nil {
		t.Error("empty pairs accepted")
	}
}

func TestFlowAutofocusDeterministic(t *testing.T) {
	pairs := testPairs(3)
	shifts := autofocus.RangeSweep(-1, 1, 5)
	run := func() float64 {
		ch := emu.New(emu.E16G3())
		if _, err := FlowAutofocus(ch, pairs, shifts); err != nil {
			t.Fatal(err)
		}
		return ch.MaxCycles()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: %v, first %v", i, got, first)
		}
	}
}
