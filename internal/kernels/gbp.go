package kernels

import (
	"fmt"
	"math"

	"sarmany/internal/geom"
	"sarmany/internal/machine"
	"sarmany/internal/mat"
	"sarmany/internal/sar"
)

// SeqGBP runs exact global back-projection on machine m with the data and
// image in mem, charging the per-pixel-per-pulse cost: the range
// calculation (one hypot), the interpolated data fetch, and the phase
// compensation multiply. Its O(pixels x pulses) operation count against
// FFBP's O(pixels x log pulses) is the paper's motivation for the
// factorized algorithm ("the FFBP algorithm is much faster than the GBP
// algorithm"); comparing the two kernels' modeled times quantifies it.
//
// The image matches gbp.ImageRef (the retained unfused host reference)
// with nearest-neighbour interpolation and a single worker, bit for bit;
// the fused gbp.Image matches within its pinned ULP bound.
func SeqGBP(m machine.Machine, mem machine.Alloc, data *mat.C, p sar.Params, grid geom.PolarGrid) (*mat.C, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if data.Rows != p.NumPulses || data.Cols != p.NumBins {
		return nil, fmt.Errorf("kernels: data is %dx%d, params say %dx%d",
			data.Rows, data.Cols, p.NumPulses, p.NumBins)
	}
	dataBuf, err := machine.NewBufC(mem, p.NumPulses*p.NumBins)
	if err != nil {
		return nil, err
	}
	out, err := machine.NewBufC(mem, grid.NTheta*grid.NR)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.NumPulses; i++ {
		copy(dataBuf.Data[i*p.NumBins:(i+1)*p.NumBins], data.Row(i))
	}
	us := make([]float64, p.NumPulses)
	for i := range us {
		us[i] = p.TrackPos(i)
	}
	k := 4 * math.Pi / p.Wavelength

	for bt := 0; bt < grid.NTheta; bt++ {
		chargeBeamSetup(m)
		theta := grid.Theta(bt)
		ct, st := math.Cos(theta), math.Sin(theta)
		for bi := 0; bi < grid.NR; bi++ {
			m.FMA(3) // r, x, y
			r := grid.Range(bi)
			x := r * ct
			y := r * st
			var acc complex64
			for pi, u := range us {
				// Range to the pulse position: one software hypot
				// (two FMAs + sqrt) plus the index generation.
				m.FMA(4)
				m.Sqrt(1)
				rp := math.Hypot(x-u, y)
				m.Flop(1)
				m.IOp(4)
				ri := int(math.Round(grid.RangeIndex(rp)))
				if ri < 0 || ri >= p.NumBins {
					continue
				}
				v := dataBuf.Load(m, pi*p.NumBins+ri)
				if v == 0 {
					continue
				}
				acc = cadd(m, acc, cmul(m, v, expi(m, float32(k*rp))))
			}
			out.Store(m, bt*grid.NR+bi, acc)
		}
	}
	img := mat.NewC(grid.NTheta, grid.NR)
	for bt := 0; bt < grid.NTheta; bt++ {
		copy(img.Row(bt), out.Data[bt*grid.NR:(bt+1)*grid.NR])
	}
	return img, nil
}
