package kernels

import (
	"testing"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
)

func TestParAutofocusMultiMatchesSingle(t *testing.T) {
	pairs := testPairs(12)
	shifts := autofocus.RangeSweep(-1, 1, 9)

	chSingle := emu.New(emu.E16G3())
	single, err := ParAutofocus(chSingle, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	chMulti := emu.New(emu.E64())
	multi, err := ParAutofocusMulti(chMulti, 4, pairs, shifts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		for j := range single[i] {
			if single[i][j] != multi[i][j] {
				t.Errorf("pair %d shift %d: single %v multi %v", i, j, single[i][j], multi[i][j])
			}
		}
	}
}

func TestParAutofocusMultiScalesThroughput(t *testing.T) {
	// Four pipelines on the 64-core device should process a long stream
	// close to 4x faster than one pipeline: the autofocus traffic stays
	// on-chip, so replicas barely contend (unlike FFBP).
	pairs := testPairs(32)
	shifts := autofocus.RangeSweep(-1, 1, 16)

	ch1 := emu.New(emu.E64())
	if _, err := ParAutofocusMulti(ch1, 1, pairs, shifts); err != nil {
		t.Fatal(err)
	}
	ch4 := emu.New(emu.E64())
	if _, err := ParAutofocusMulti(ch4, 4, pairs, shifts); err != nil {
		t.Fatal(err)
	}
	speedup := ch1.MaxCycles() / ch4.MaxCycles()
	if speedup < 3 || speedup > 4.5 {
		t.Errorf("4-pipeline speedup %v, want ~4", speedup)
	}
}

func TestParAutofocusMultiDeterministic(t *testing.T) {
	pairs := testPairs(8)
	shifts := autofocus.RangeSweep(-1, 1, 5)
	run := func() float64 {
		ch := emu.New(emu.E64())
		if _, err := ParAutofocusMulti(ch, 3, pairs, shifts); err != nil {
			t.Fatal(err)
		}
		return ch.MaxCycles()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: %v, first %v", i, got, first)
		}
	}
}

func TestParAutofocusMultiValidation(t *testing.T) {
	pairs := testPairs(4)
	shifts := autofocus.RangeSweep(-1, 1, 3)
	ch := emu.New(emu.E16G3())
	if _, err := ParAutofocusMulti(ch, 2, pairs, shifts); err == nil {
		t.Error("2 pipelines on 16 cores accepted")
	}
	if _, err := ParAutofocusMulti(ch, 0, pairs, shifts); err == nil {
		t.Error("0 pipelines accepted")
	}
	// More pipelines than pairs still works (some replicas idle).
	ch64 := emu.New(emu.E64())
	scores, err := ParAutofocusMulti(ch64, 4, pairs[:2], shifts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Errorf("%d score rows", len(scores))
	}
}
