package kernels

import (
	"fmt"

	"sarmany/internal/autofocus"
	"sarmany/internal/emu"
	"sarmany/internal/machine"
	"sarmany/internal/mat"
)

// BlockPair is one autofocus work item: the two 6x6 pixel blocks from the
// contributing subaperture images f- and f+.
type BlockPair struct {
	Minus, Plus autofocus.Block
}

// The autofocus workload, following the paper: for every block pair,
// several candidate flight-path compensations are tried ("several
// different flight path compensations are thus tested before a merge"),
// each requiring the full range-interpolation / beam-interpolation /
// correlation / summation pipeline on both blocks. Scores[i][j] is the
// criterion of pair i under shift candidate j; each value equals
// autofocus.Criterion(pair.Minus, pair.Plus, shift) exactly.

const (
	blockPx = autofocus.BlockSize * autofocus.BlockSize
	interpN = autofocus.InterpSize
	// PipelineCores is the number of cores one streaming autofocus
	// pipeline occupies (paper Fig. 9): 2 blocks x (3 range + 3 beam)
	// interpolators plus the common correlation core.
	PipelineCores = 13
)

// resampleBlock runs the charged two-stage Neville interpolation of one
// block under shift s, matching autofocus.Resample bit for bit. The block
// values are assumed already loaded into registers/local storage (the
// caller charges the loads).
func resampleBlock(m machine.Machine, b *autofocus.Block, s autofocus.Shift) autofocus.Interpolated {
	// Range stage: 6 rows x 3 sliding windows.
	var mid [autofocus.BlockSize][interpN]complex64
	for r := 0; r < autofocus.BlockSize; r++ {
		m.FMA(1) // off = DRange + Tilt*r
		off := s.DRange + s.Tilt*float64(r)
		for j := 0; j < interpN; j++ {
			var taps [4]complex64
			copy(taps[:], b[r][j:j+4])
			m.IOp(2)
			mid[r][j] = neville4(m, taps, float32(1.5+off))
		}
	}
	// Beam stage: 3 columns x 3 sliding windows.
	var out autofocus.Interpolated
	for i := 0; i < interpN; i++ {
		for j := 0; j < interpN; j++ {
			taps := [4]complex64{mid[i][j], mid[i+1][j], mid[i+2][j], mid[i+3][j]}
			m.IOp(2)
			out[i][j] = neville4(m, taps, float32(1.5+s.DBeam))
		}
	}
	return out
}

// correlate runs the charged focus-criterion summation (paper eq. 6) over
// two interpolated subimages, matching autofocus.Correlate exactly.
func correlate(m machine.Machine, a, b *autofocus.Interpolated) float64 {
	var sum float64
	for i := 0; i < interpN; i++ {
		for j := 0; j < interpN; j++ {
			pa := abs2(m, a[i][j])
			pb := abs2(m, b[i][j])
			m.FMA(1)
			sum += float64(pa) * float64(pb)
		}
	}
	return sum
}

// loadBlock charges the loads that bring one 6x6 block from buf (packed
// row-major at element offset base) into registers/local storage, and
// returns it.
func loadBlock(m machine.Machine, buf *machine.BufC, base int) autofocus.Block {
	var b autofocus.Block
	for r := 0; r < autofocus.BlockSize; r++ {
		for c := 0; c < autofocus.BlockSize; c++ {
			m.IOp(1)
			b[r][c] = buf.Load(m, base+r*autofocus.BlockSize+c)
		}
	}
	return b
}

// packPairs copies the block pairs into a buffer allocated from mem
// (pair i's minus block at element 2*i*36, plus block at (2*i+1)*36).
func packPairs(mem machine.Alloc, pairs []BlockPair) (*machine.BufC, error) {
	buf, err := machine.NewBufC(mem, 2*blockPx*len(pairs))
	if err != nil {
		return nil, err
	}
	for i, pr := range pairs {
		for r := 0; r < autofocus.BlockSize; r++ {
			copy(buf.Data[(2*i)*blockPx+r*autofocus.BlockSize:], pr.Minus[r][:])
			copy(buf.Data[(2*i+1)*blockPx+r*autofocus.BlockSize:], pr.Plus[r][:])
		}
	}
	return buf, nil
}

// SeqAutofocus evaluates the criterion of every block pair under every
// candidate shift sequentially on machine m, with the input pixel blocks
// streamed from mem. It returns Scores[pair][shift].
func SeqAutofocus(m machine.Machine, mem machine.Alloc, pairs []BlockPair, shifts []autofocus.Shift) ([][]float64, error) {
	if len(pairs) == 0 || len(shifts) == 0 {
		return nil, fmt.Errorf("kernels: autofocus needs at least one pair and one shift")
	}
	buf, err := packPairs(mem, pairs)
	if err != nil {
		return nil, err
	}
	scores := make([][]float64, len(pairs))
	for i := range pairs {
		minus := loadBlock(m, buf, (2*i)*blockPx)
		plus := loadBlock(m, buf, (2*i+1)*blockPx)
		scores[i] = make([]float64, len(shifts))
		for j, s := range shifts {
			a := resampleBlock(m, &minus, autofocus.Shift{})
			b := resampleBlock(m, &plus, s)
			scores[i][j] = correlate(m, &a, &b)
		}
	}
	return scores, nil
}

// afPipeline wires one 13-core streaming pipeline (paper Fig. 9) on the
// 13 cores listed in cores (role r runs on cores[r]): range interpolators
// 0-2 (minus block) and 6-8 (plus block), beam interpolators 3-5 and
// 9-11, correlation core 12. The fault-free placement is contiguous
// ascending IDs; under a fault plan, halted entries are replaced by
// Chip.RemapPlacement before the pipeline is wired.
type afPipeline struct {
	cores     []int // role -> core ID, 13 entries
	pairLo    int   // global index of the pipeline's first pair
	pairs     []BlockPair
	shifts    []autofocus.Shift
	buf       *machine.BufC
	scores    [][]float64 // rows pairLo.. filled by the correlation core
	fwdM      []*emu.Link
	fwdP      []*emu.Link
	r2b       [6]*emu.Link
	b2c       [6]*emu.Link
	resultBuf *machine.BufF
}

// Pipeline-local core roles.
const (
	roleRangeMinus0 = 0
	roleBeamMinus0  = 3
	roleRangePlus0  = 6
	roleBeamPlus0   = 9
	roleCorr        = 12
)

func newAFPipeline(ch *emu.Chip, cores []int, pairLo int, pairs []BlockPair, shifts []autofocus.Shift,
	buf *machine.BufC, scores [][]float64) (*afPipeline, error) {
	pl := &afPipeline{
		cores: cores, pairLo: pairLo, pairs: pairs, shifts: shifts,
		buf: buf, scores: scores,
	}
	pl.fwdM = []*emu.Link{ch.Connect(cores[0], cores[1], 2), ch.Connect(cores[1], cores[2], 2)}
	pl.fwdP = []*emu.Link{ch.Connect(cores[6], cores[7], 2), ch.Connect(cores[7], cores[8], 2)}
	for w := 0; w < 3; w++ {
		pl.r2b[w] = ch.Connect(cores[roleRangeMinus0+w], cores[roleBeamMinus0+w], 4)
		pl.r2b[3+w] = ch.Connect(cores[roleRangePlus0+w], cores[roleBeamPlus0+w], 4)
		pl.b2c[w] = ch.Connect(cores[roleBeamMinus0+w], cores[roleCorr], 4)
		pl.b2c[3+w] = ch.Connect(cores[roleBeamPlus0+w], cores[roleCorr], 4)
	}
	var err error
	pl.resultBuf, err = machine.NewBufF(ch.Ext(), max(1, len(pairs)*len(shifts)))
	return pl, err
}

// run executes the pipeline role of core c (pipeline-local id role).
func (pl *afPipeline) run(c *emu.Core, role int) {
	switch {
	case role == roleRangeMinus0 || role == roleRangePlus0:
		isMinus := role == roleRangeMinus0
		blockSel := 0
		fwd := pl.fwdM[0]
		link := pl.r2b[0]
		if !isMinus {
			blockSel = 1
			fwd = pl.fwdP[0]
			link = pl.r2b[3]
		}
		local, err := machine.NewBufC(c.Bank(2), blockPx)
		if err != nil {
			panic(err)
		}
		for i := range pl.pairs {
			d := c.DMACopyC(local, 0, pl.buf, (2*(pl.pairLo+i)+blockSel)*blockPx, blockPx)
			c.DMAWait(d)
			fwd.Send(c, local.Data)
			blk := loadBlock(c, local, 0)
			pl.rangeCoreWork(c, &blk, 0, isMinus, link)
		}
	case role == roleRangeMinus0+1 || role == roleRangeMinus0+2 ||
		role == roleRangePlus0+1 || role == roleRangePlus0+2:
		isMinus := role < roleRangePlus0
		var in, out *emu.Link
		var w int
		if isMinus {
			w = role - roleRangeMinus0
			in = pl.fwdM[w-1]
			if w == 1 {
				out = pl.fwdM[1]
			}
		} else {
			w = role - roleRangePlus0
			in = pl.fwdP[w-1]
			if w == 1 {
				out = pl.fwdP[1]
			}
		}
		link := pl.r2b[w]
		if !isMinus {
			link = pl.r2b[3+w]
		}
		for range pl.pairs {
			vals := in.Recv(c)
			if out != nil {
				out.Send(c, vals)
			}
			var blk autofocus.Block
			for r := 0; r < autofocus.BlockSize; r++ {
				copy(blk[r][:], vals[r*autofocus.BlockSize:(r+1)*autofocus.BlockSize])
			}
			pl.rangeCoreWork(c, &blk, w, isMinus, link)
		}
	case (role >= roleBeamMinus0 && role < roleBeamMinus0+3) ||
		(role >= roleBeamPlus0 && role < roleBeamPlus0+3):
		isMinus := role < roleBeamPlus0
		w := role - roleBeamMinus0
		if !isMinus {
			w = role - roleBeamPlus0
		}
		var in, out *emu.Link
		if isMinus {
			in, out = pl.r2b[w], pl.b2c[w]
		} else {
			in, out = pl.r2b[3+w], pl.b2c[3+w]
		}
		for range pl.pairs {
			for si := range pl.shifts {
				vals := in.Recv(c)
				s := autofocus.Shift{}
				if !isMinus {
					s = pl.shifts[si]
				}
				var col [3]complex64
				for i := 0; i < interpN; i++ {
					taps := [4]complex64{vals[i], vals[i+1], vals[i+2], vals[i+3]}
					c.IOp(2)
					col[i] = neville4(c, taps, float32(1.5+s.DBeam))
				}
				out.Send(c, col[:])
			}
		}
	case role == roleCorr:
		for i := range pl.pairs {
			for si := range pl.shifts {
				var a, b autofocus.Interpolated
				for w := 0; w < 3; w++ {
					av := pl.b2c[w].Recv(c)
					bv := pl.b2c[3+w].Recv(c)
					for r := 0; r < interpN; r++ {
						a[r][w] = av[r]
						b[r][w] = bv[r]
					}
				}
				sum := correlate(c, &a, &b)
				pl.scores[pl.pairLo+i][si] = sum
				pl.resultBuf.Store(c, i*len(pl.shifts)+si, float32(sum))
			}
		}
	}
}

// rangeCoreWork runs one range core's per-pair inner loop: for every
// candidate shift, interpolate the core's 4-column window across all six
// rows and stream the six results to the paired beam interpolator. Minus-
// block cores always interpolate at the nominal (zero) compensation;
// plus-block cores apply the candidate.
func (pl *afPipeline) rangeCoreWork(c *emu.Core, blk *autofocus.Block, w int, isMinus bool, out *emu.Link) {
	for _, s := range pl.shifts {
		if isMinus {
			s = autofocus.Shift{}
		}
		var vals [autofocus.BlockSize]complex64
		for r := 0; r < autofocus.BlockSize; r++ {
			c.FMA(1)
			off := s.DRange + s.Tilt*float64(r)
			var taps [4]complex64
			copy(taps[:], blk[r][w:w+4])
			c.IOp(2)
			vals[r] = neville4(c, taps, float32(1.5+off))
		}
		out.Send(c, vals[:])
	}
}

// ParAutofocus runs the paper's MPMD streaming implementation (Sec. V-C,
// Fig. 9) on the simulated Epiphany chip: 13 cores in a dataflow pipeline.
// For each of the two pixel blocks, three cores compute the range
// interpolation (each owning one 4-column sliding window, with the input
// block forwarded core-to-core so each sees its shifted window) and three
// cores compute the beam interpolation; a single common core computes the
// correlation and summation and writes the criterion to external memory.
// Intermediate results stream between neighbouring cores over the mesh
// instead of through off-chip memory.
//
// Scores[pair][shift] is bit-identical to SeqAutofocus.
func ParAutofocus(ch *emu.Chip, pairs []BlockPair, shifts []autofocus.Shift) ([][]float64, error) {
	return ParAutofocusMulti(ch, 1, pairs, shifts)
}

// ParAutofocusMulti replicates the 13-core pipeline n times across a
// larger mesh (e.g. four pipelines on the 64-core device the paper's
// conclusions mention), splitting the block-pair stream across replicas.
// Unlike FFBP, the pipeline's traffic stays on-chip, so throughput scales
// with replicas until the input stream saturates the off-chip channel.
func ParAutofocusMulti(ch *emu.Chip, n int, pairs []BlockPair, shifts []autofocus.Shift) ([][]float64, error) {
	if len(pairs) == 0 || len(shifts) == 0 {
		return nil, fmt.Errorf("kernels: autofocus needs at least one pair and one shift")
	}
	if n < 1 {
		return nil, fmt.Errorf("kernels: need at least one pipeline")
	}
	need := n * PipelineCores
	if len(ch.Cores) < need {
		return nil, fmt.Errorf("kernels: %d pipelines need %d cores, chip has %d", n, need, len(ch.Cores))
	}
	// The fault-free placement puts pipeline slot s on core s; a fault
	// plan with halted cores moves those slots to the nearest free live
	// cores, keeping every slot on its own core (the pipeline is MPMD).
	place := make([]int, need)
	for i := range place {
		place[i] = i
	}
	place, err := ch.RemapPlacement(place)
	if err != nil {
		return nil, fmt.Errorf("kernels: autofocus cannot degrade: %w", err)
	}
	buf, err := packPairs(ch.Ext(), pairs)
	if err != nil {
		return nil, err
	}
	scores := make([][]float64, len(pairs))
	for i := range scores {
		scores[i] = make([]float64, len(shifts))
	}
	slices := mat.Partition(len(pairs), n)
	pls := make([]*afPipeline, n)
	for p := 0; p < n; p++ {
		pls[p], err = newAFPipeline(ch, place[p*PipelineCores:(p+1)*PipelineCores], slices[p].Lo,
			pairs[slices[p].Lo:slices[p].Hi], shifts, buf, scores)
		if err != nil {
			return nil, err
		}
	}
	slotOf := make(map[int]int, need)
	maxCore := 0
	for s, core := range place {
		slotOf[core] = s
		if core > maxCore {
			maxCore = core
		}
	}
	ch.Run(maxCore+1, func(c *emu.Core) {
		s, ok := slotOf[c.ID]
		if !ok {
			return // core hosts no pipeline slot (freed by a remap)
		}
		pls[s/PipelineCores].run(c, s%PipelineCores)
	})
	return scores, nil
}
